#include "tensor/half.h"

#include <bit>

#include "tensor/simd.h"
#include "util/check.h"

namespace punica {

void HalfToFloatN(std::span<const f16> src, std::span<float> dst) {
  PUNICA_CHECK(src.size() == dst.size());
  Simd().half_to_float_n(src.data(), dst.data(), src.size());
}

void FloatToHalfN(std::span<const float> src, std::span<f16> dst) {
  PUNICA_CHECK(src.size() == dst.size());
  Simd().float_to_half_n(src.data(), dst.data(), src.size());
}

std::uint16_t FloatToHalfBits(float f) {
  std::uint32_t x = std::bit_cast<std::uint32_t>(f);
  std::uint32_t sign = (x >> 16U) & 0x8000U;
  std::uint32_t exp = (x >> 23U) & 0xFFU;
  std::uint32_t mant = x & 0x7FFFFFU;

  if (exp == 0xFFU) {
    // Inf / NaN. Preserve a non-zero mantissa bit for NaN.
    return static_cast<std::uint16_t>(sign | 0x7C00U |
                                      (mant != 0 ? 0x200U : 0U));
  }

  // Re-bias: fp32 bias 127, fp16 bias 15.
  std::int32_t e = static_cast<std::int32_t>(exp) - 127 + 15;
  if (e >= 0x1F) {
    return static_cast<std::uint16_t>(sign | 0x7C00U);  // overflow → inf
  }
  if (e <= 0) {
    // Subnormal or zero. Shift mantissa (with implicit leading 1) right.
    if (e < -10) return static_cast<std::uint16_t>(sign);  // underflow → 0
    mant |= 0x800000U;  // implicit bit
    std::uint32_t shift = static_cast<std::uint32_t>(14 - e);
    std::uint32_t half_mant = mant >> shift;
    // Round to nearest even on the dropped bits.
    std::uint32_t dropped = mant & ((1U << shift) - 1U);
    std::uint32_t halfway = 1U << (shift - 1U);
    if (dropped > halfway || (dropped == halfway && (half_mant & 1U) != 0)) {
      ++half_mant;
    }
    return static_cast<std::uint16_t>(sign | half_mant);
  }

  // Normal number: keep top 10 mantissa bits, round to nearest even.
  std::uint32_t half_mant = mant >> 13U;
  std::uint32_t dropped = mant & 0x1FFFU;
  std::uint32_t result = sign | (static_cast<std::uint32_t>(e) << 10U) |
                         half_mant;
  if (dropped > 0x1000U || (dropped == 0x1000U && (half_mant & 1U) != 0)) {
    ++result;  // carry may roll into the exponent; that is correct rounding
  }
  return static_cast<std::uint16_t>(result);
}

float HalfBitsToFloat(std::uint16_t bits) {
  std::uint32_t sign = (static_cast<std::uint32_t>(bits) & 0x8000U) << 16U;
  std::uint32_t exp = (bits >> 10U) & 0x1FU;
  std::uint32_t mant = bits & 0x3FFU;

  std::uint32_t out;
  if (exp == 0x1FU) {
    out = sign | 0x7F800000U | (mant << 13U);  // inf / NaN
  } else if (exp == 0) {
    if (mant == 0) {
      out = sign;  // ±0
    } else {
      // Subnormal: normalise by shifting until the implicit bit appears.
      std::int32_t e = -1;
      std::uint32_t m = mant;
      do {
        ++e;
        m <<= 1U;
      } while ((m & 0x400U) == 0);
      out = sign |
            (static_cast<std::uint32_t>(127 - 15 - e) << 23U) |
            ((m & 0x3FFU) << 13U);
    }
  } else {
    out = sign | ((exp + 127U - 15U) << 23U) | (mant << 13U);
  }
  return std::bit_cast<float>(out);
}

}  // namespace punica
