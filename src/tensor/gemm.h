// Dense linear-algebra kernels (fp32 accumulate, optionally fp16 weights)
// on the deterministic parallel compute substrate. These are the "regular
// GEMM" substrate the paper's backbone computation uses; SGMV and the
// baselines are validated against them.
//
// Naming contract (do not mix up): *Set kernels OVERWRITE y; *Acc kernels
// ACCUMULATE into y. The blocked implementations assert nothing silently
// double-accumulates by keeping the contract in the name.
//
// Determinism: every output element is produced by exactly one worker with
// the reduction (k) loop in fixed ascending order, so results are
// bit-identical for any thread count and any tile partition. The inner
// loops run on the runtime-dispatched SIMD layer (tensor/simd.h),
// vectorized across independent output columns — which is why the per-
// element reduction order, and hence this contract, survives
// vectorization on both dispatch paths.
//
// Conventions: row-major; X is [m, k], W is [k, n], Y is [m, n].
#pragma once

#include <span>

#include "tensor/half.h"
#include "tensor/quant.h"
#include "util/compute_context.h"

namespace punica {

/// Y = X @ W  (overwrites Y). Cache-blocked over row blocks × column tiles.
void GemmSet(std::span<const float> x, std::span<const float> w,
             std::span<float> y, int m, int k, int n,
             const ComputeContext& ctx = ComputeContext::Default());

/// Y = X @ W with fp16 weights (overwrites Y; the zeroing happens inside
/// the parallel blocked kernel, not as a separate serial pass).
void GemmSetF16W(std::span<const float> x, std::span<const f16> w,
                 std::span<float> y, int m, int k, int n,
                 const ComputeContext& ctx = ComputeContext::Default());

/// Y += X @ W with fp16 weights (the backbone/LoRA storage format).
/// B-panel friendly: each k-row stripe of W is streamed once per row block.
void GemmAccF16W(std::span<const float> x, std::span<const f16> w,
                 std::span<float> y, int m, int k, int n,
                 const ComputeContext& ctx = ComputeContext::Default());

/// y += x @ W, single row (matrix-vector; the decode-step shape).
/// Parallel over column tiles of W. This is the one kernel that keeps the
/// sparsity skip: with a single x row, a zero activation elides the decode
/// and FMA of a whole W stripe (the dense GEMM block dropped the per-row
/// test — it poisoned the vector inner loop for no win on dense
/// activations).
void GemvAccF16W(std::span<const float> x, std::span<const f16> w,
                 std::span<float> y, int k, int n,
                 const ComputeContext& ctx = ComputeContext::Default());

// --- Groupwise-quantized weight kernels (tensor/quant.h) ---
// W is k rows of QuantBlocksPerRow(n) blocks; the column-tile width is a
// multiple of kQuantBlock, so every stripe the kernels touch starts
// block-aligned. Same blocking, same one-writer/fixed-k-order determinism
// contract as the f16 kernels: the dequantized panel is bit-identical on
// every dispatch path (int code × f16 scale is exact in f32), and the
// fused axpy differs across paths by FMA contraction only.

/// Y = X @ dequant(W)  (overwrites Y).
void GemmSetQW(std::span<const float> x, std::span<const BlockQ8_0> w,
               std::span<float> y, int m, int k, int n,
               const ComputeContext& ctx = ComputeContext::Default());
void GemmSetQW(std::span<const float> x, std::span<const BlockQ4_0> w,
               std::span<float> y, int m, int k, int n,
               const ComputeContext& ctx = ComputeContext::Default());

/// Y += X @ dequant(W).
void GemmAccQW(std::span<const float> x, std::span<const BlockQ8_0> w,
               std::span<float> y, int m, int k, int n,
               const ComputeContext& ctx = ComputeContext::Default());
void GemmAccQW(std::span<const float> x, std::span<const BlockQ4_0> w,
               std::span<float> y, int m, int k, int n,
               const ComputeContext& ctx = ComputeContext::Default());

/// y += x @ dequant(W), single row — the decode-step shape, with the same
/// zero-activation stripe skip as GemvAccF16W.
void GemvAccQW(std::span<const float> x, std::span<const BlockQ8_0> w,
               std::span<float> y, int k, int n,
               const ComputeContext& ctx = ComputeContext::Default());
void GemvAccQW(std::span<const float> x, std::span<const BlockQ4_0> w,
               std::span<float> y, int k, int n,
               const ComputeContext& ctx = ComputeContext::Default());

// --- Dtype dispatch over WeightMatrix ---
// One call site per projection regardless of storage format. Shapes are
// checked against the matrix ([k, n] == [w.rows(), w.cols()]).

/// Y = X @ W (overwrites Y).
void GemmSetW(std::span<const float> x, const WeightMatrix& w,
              std::span<float> y, int m, int k, int n,
              const ComputeContext& ctx = ComputeContext::Default());

/// Y += X @ W.
void GemmAccW(std::span<const float> x, const WeightMatrix& w,
              std::span<float> y, int m, int k, int n,
              const ComputeContext& ctx = ComputeContext::Default());

/// y += x @ W, single row.
void GemvAccW(std::span<const float> x, const WeightMatrix& w,
              std::span<float> y, int k, int n,
              const ComputeContext& ctx = ComputeContext::Default());

/// In-place numerically-stable softmax over a contiguous row.
void SoftmaxInPlace(std::span<float> row);

/// Scales a row by 1/sqrt(sum(x^2)/n + eps) * weight — RMSNorm core.
void RmsNormRow(std::span<const float> x, std::span<const f16> weight,
                std::span<float> out, float eps);

/// SiLU (x * sigmoid(x)) elementwise.
void SiluInPlace(std::span<float> xs);

}  // namespace punica
