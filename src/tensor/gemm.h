// Reference dense linear-algebra kernels (fp32 accumulate, optionally fp16
// weights). These are the "regular GEMM" substrate the paper's backbone
// computation uses; SGMV and the baselines are validated against them.
//
// Conventions: row-major; X is [m, k], W is [k, n], Y is [m, n].
#pragma once

#include <span>

#include "tensor/half.h"

namespace punica {

/// Y = X @ W  (overwrites Y).
void Gemm(std::span<const float> x, std::span<const float> w,
          std::span<float> y, int m, int k, int n);

/// Y += X @ W with fp16 weights (the backbone/LoRA storage format).
void GemmAddF16W(std::span<const float> x, std::span<const f16> w,
                 std::span<float> y, int m, int k, int n);

/// y += x @ W, single row (matrix-vector; the decode-step shape).
void GemvAddF16W(std::span<const float> x, std::span<const f16> w,
                 std::span<float> y, int k, int n);

/// In-place numerically-stable softmax over a contiguous row.
void SoftmaxInPlace(std::span<float> row);

/// Scales a row by 1/sqrt(sum(x^2)/n + eps) * weight — RMSNorm core.
void RmsNormRow(std::span<const float> x, std::span<const f16> weight,
                std::span<float> out, float eps);

/// SiLU (x * sigmoid(x)) elementwise.
void SiluInPlace(std::span<float> xs);

}  // namespace punica
