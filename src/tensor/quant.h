// Groupwise weight quantization (llama.cpp-style Q8_0 / Q4_0 blocks).
//
// Decode in the numeric tier is memory-bound on weight traffic: every
// GemvAccF16W/GemmAccF16W streams the full weight matrix per step. Storing
// weights as 32-element blocks with one shared f16 scale halves (Q8_0,
// 34 B/block vs 64 B f16) or quarters (Q4_0, 18 B/block) the streamed
// bytes, which is a direct decode win and a proportional KV-page capacity
// multiplier in the simulated tier.
//
// Block layouts (bit-compatible with llama.cpp's ggml formats):
//  * Q8_0: one f16 scale d, then 32 int8 q; value_i = d * q_i.
//          d = max|x| / 127, q_i = round(x_i / d).
//  * Q4_0: one f16 scale d, then 16 packed bytes. Byte j holds element j in
//          its LOW nibble and element j+16 in its HIGH nibble (the
//          llama.cpp packing); nibbles are unsigned with an offset of 8:
//          value_i = d * (q_i - 8). d = x_at_max_|x| / -8 (sign kept so the
//          largest-magnitude value lands exactly on q = 0).
//
// Blocks run along the *contiguous* (column) dimension of a row-major
// [rows, cols] matrix, so the GEMM kernels' k-row stripes stay block-
// aligned (the column tile width is a multiple of kQuantBlock). A row whose
// length is not a multiple of 32 pads its final block with zeros.
//
// Determinism: dequantization (int8/int4 × f16 scale) is EXACT in f32 —
// the product has at most 7 + 11 significand bits — so the decoded panel
// is bit-identical on every dispatch path (scalar/avx2/avx512). Fused
// axpy/dot kernels then differ across paths only by FMA contraction,
// exactly the documented f16-path contract.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "tensor/half.h"
#include "tensor/tensor.h"

namespace punica {

/// Storage format of dense model weights (LlamaConfig::weight_dtype).
enum class WeightDtype { kF16 = 0, kQ8_0 = 1, kQ4_0 = 2 };

const char* WeightDtypeName(WeightDtype dtype);
/// Parses "f16" | "q8_0" | "q4_0" (also accepts "q8"/"q4"). Returns false
/// on anything else, leaving *out untouched.
bool ParseWeightDtype(std::string_view s, WeightDtype* out);

/// Elements per quantization group (and per block struct).
inline constexpr std::int64_t kQuantBlock = 32;

struct BlockQ8_0 {
  f16 scale;                ///< d
  std::int8_t qs[kQuantBlock];
};
static_assert(sizeof(BlockQ8_0) == 34, "Q8_0 block is 2 + 32 bytes");

struct BlockQ4_0 {
  f16 scale;                ///< d
  std::uint8_t qs[kQuantBlock / 2];  ///< byte j: elem j (lo), elem j+16 (hi)
};
static_assert(sizeof(BlockQ4_0) == 18, "Q4_0 block is 2 + 16 bytes");

/// Blocks needed to store one `cols`-element row (ceil division).
inline std::int64_t QuantBlocksPerRow(std::int64_t cols) {
  return (cols + kQuantBlock - 1) / kQuantBlock;
}

/// Bytes `params` weights occupy under `dtype`. Exact when row lengths are
/// multiples of 32 (true for every model config's projection dims); a
/// whole-model accounting helper, so per-row tail padding is ignored.
std::int64_t WeightBytesFor(std::int64_t params, WeightDtype dtype);

/// Reference quantize/dequantize routines (portable scalar; quantization is
/// cold path — it runs once at model build). `dst` must hold
/// QuantBlocksPerRow(src.size()) blocks; a partial final block is padded
/// with zero codes. An all-zero (or f16-underflowing) group stores scale 0
/// and zero codes, never a NaN.
void QuantizeRowQ8(std::span<const float> src, BlockQ8_0* dst);
void QuantizeRowQ4(std::span<const float> src, BlockQ4_0* dst);

/// Scalar reference dequant: dst[i] = d * q_i (exact f32 products, the
/// numbers every dispatch path computes with). `src` points at the block
/// containing element 0.
void DequantRowQ8Ref(const BlockQ8_0* src, std::span<float> dst);
void DequantRowQ4Ref(const BlockQ4_0* src, std::span<float> dst);

/// A dense [rows, cols] weight matrix in one of the three storage formats.
/// The f16 path wraps the tensor unchanged (zero conversion cost); the
/// quantized paths hold rows × QuantBlocksPerRow(cols) blocks, quantized
/// row-by-row so slicing/sharding stays row-local.
class WeightMatrix {
 public:
  WeightMatrix() = default;

  /// Wraps (kF16) or quantizes (kQ8_0/kQ4_0) a 2-D f16 tensor.
  /// Quantization is deterministic: it depends only on the f16 bits.
  static WeightMatrix FromF16(Tensor<f16> w, WeightDtype dtype);

  WeightDtype dtype() const { return dtype_; }
  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  /// Tensor-compatible shape accessor (0 = rows, 1 = cols).
  std::int64_t dim(std::size_t i) const { return i == 0 ? rows_ : cols_; }
  std::int64_t blocks_per_row() const { return bpr_; }

  /// Stored bytes (the quantity the capacity accounting scales by dtype).
  std::size_t byte_size() const;

  std::span<const f16> f16_data() const;
  const Tensor<f16>& f16_tensor() const;
  std::span<const BlockQ8_0> q8_data() const;
  std::span<const BlockQ4_0> q4_data() const;

  /// Element access for tests/slicing; valid only on the f16 path.
  f16 at(std::initializer_list<std::int64_t> idx) const {
    return f16_tensor().at(idx);
  }

  /// Dequantizes row r into out (size cols) — the exact f32 values the
  /// kernels compute with, on any path.
  void DequantRow(std::int64_t r, std::span<float> out) const;

  /// Slices rows [row_begin, row_end), preserving the dtype. Quantization
  /// blocks run along the column dimension, so a row slice copies whole
  /// block rows at ANY boundary — the sliced shard is bit-identical to
  /// quantizing the sliced f16 master (quantize and row-slice commute).
  /// This is why the row-parallel shards (O/Down, and LoRA A row slices)
  /// never pay a requantization penalty.
  WeightMatrix SliceRows(std::int64_t row_begin, std::int64_t row_end) const;

  /// Slices columns [col_begin, col_end), preserving the dtype. f16 slices
  /// at any boundary. Quantized formats require col_begin to be a multiple
  /// of kQuantBlock and col_end a multiple or the full width: an aligned
  /// slice copies whole blocks (bit-identical to quantize-after-slice; the
  /// padded tail block of a non-multiple width travels with the last
  /// shard), while a mid-block slice would have to requantize with
  /// different per-group extrema — a silent precision change. Misaligned
  /// quantized requests abort (PUNICA_CHECK); callers that genuinely need a
  /// mid-block column split must slice the f16 master and requantize,
  /// accepting the documented shard-local-blocks exemption (see the q8_0
  /// tp=4 case in tests/integration/determinism_test.cc).
  WeightMatrix SliceCols(std::int64_t col_begin, std::int64_t col_end) const;

  /// Re-encodes this matrix's payload under `dtype` via the f16 master
  /// (f16 source only — requantizing an already-quantized matrix would
  /// silently compound rounding). The shard path: slice the f16 master,
  /// then quantize shard-locally.
  WeightMatrix Requantize(WeightDtype dtype) const;

 private:
  WeightDtype dtype_ = WeightDtype::kF16;
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::int64_t bpr_ = 0;  ///< blocks per row (quantized paths)
  Tensor<f16> f16_;
  std::vector<BlockQ8_0> q8_;
  std::vector<BlockQ4_0> q4_;
};

}  // namespace punica
