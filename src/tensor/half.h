// IEEE-754 binary16 ("half") storage type.
//
// Punica stores model and LoRA weights in fp16 and accumulates in fp32; this
// type reproduces that storage format bit-exactly in portable C++ (round-to-
// nearest-even conversion, subnormals, infinities, NaN), so numeric tests see
// the same quantisation the GPU kernels would.
#pragma once

#include <cstdint>
#include <span>

namespace punica {

std::uint16_t FloatToHalfBits(float f);
float HalfBitsToFloat(std::uint16_t bits);

class f16;

/// Bulk span conversions over contiguous fp16 storage (weight stripes,
/// KV-cache entries, embedding rows). Runtime-SIMD dispatched: F16C when
/// the native path is compiled in and the CPU supports it, the scalar loop
/// otherwise — bit-identical either way for all non-NaN values (both round
/// to nearest even). Spans must be equal-length.
void HalfToFloatN(std::span<const f16> src, std::span<float> dst);
void FloatToHalfN(std::span<const float> src, std::span<f16> dst);

class f16 {
 public:
  f16() = default;
  explicit f16(float f) : bits_(FloatToHalfBits(f)) {}

  static f16 FromBits(std::uint16_t bits) {
    f16 h;
    h.bits_ = bits;
    return h;
  }

  float ToFloat() const { return HalfBitsToFloat(bits_); }
  explicit operator float() const { return ToFloat(); }
  std::uint16_t bits() const { return bits_; }

  friend bool operator==(f16 a, f16 b) { return a.bits_ == b.bits_; }

 private:
  std::uint16_t bits_ = 0;
};

static_assert(sizeof(f16) == 2, "f16 must be 2 bytes (storage format)");

/// Largest finite fp16 value (65504).
inline constexpr float kF16Max = 65504.0f;

/// Relative rounding error bound for a single fp16 round (2^-11).
inline constexpr float kF16Epsilon = 4.8828125e-4f;

}  // namespace punica
