#include "tensor/simd.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "tensor/quant.h"

namespace punica {
namespace {

// --- Portable scalar path ---
// These loops are the exact per-element operations the pre-vectorization
// kernels ran, so PUNICA_SIMD=scalar reproduces those numerics bit-for-bit
// on finite data. (The kernels themselves no longer skip zero activations
// on the dense paths — see gemm.cc — which is observable only with
// non-finite or signed-zero operands that the synthesized weights never
// produce.)

void HalfToFloatScalar(const f16* src, float* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i].ToFloat();
}

void FloatToHalfScalar(const float* src, f16* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = f16(src[i]);
}

void AxpyF32Scalar(float a, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void AxpyF16Scalar(float a, const f16* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i].ToFloat();
}

float DotF16Scalar(const float* a, const f16* b, std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i].ToFloat();
  return acc;
}

void ScaleAddF16Scalar(float* acc, float c, float p, const f16* v,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] = acc[i] * c + p * v[i].ToFloat();
}

void DotF16StripScalar(const float* q, const f16* k, std::size_t stride,
                       std::size_t d, std::size_t n_pos, float scale,
                       float* scores) {
  for (std::size_t j = 0; j < n_pos; ++j) {
    scores[j] = DotF16Scalar(q, k + j * stride, d) * scale;
  }
}

float SoftmaxAccumF16Scalar(const float* scores, float m, const f16* v,
                            std::size_t stride, std::size_t d,
                            std::size_t n_pos, float* acc) {
  float sum = 0.0f;
  for (std::size_t j = 0; j < n_pos; ++j) {
    float p = std::exp(scores[j] - m);
    AxpyF16Scalar(p, v + j * stride, acc, d);
    sum += p;
  }
  return sum;
}

// --- Scalar quantized-weight kernels ---
// Element i of a block row decodes as d * q_i; the product is exact in f32
// (≤ 7 significand bits from the code × 11 from the f16 scale), so the
// decode below defines the numbers every vector path must reproduce
// bit-for-bit.

inline float Q8Value(const BlockQ8_0& b, std::size_t e) {
  return b.scale.ToFloat() * static_cast<float>(b.qs[e]);
}

inline float Q4Value(const BlockQ4_0& b, std::size_t e) {
  const std::uint8_t byte = b.qs[e & (kQuantBlock / 2 - 1)];
  const int code = e < kQuantBlock / 2 ? (byte & 0x0F) : (byte >> 4);
  return b.scale.ToFloat() * static_cast<float>(code - 8);
}

void DequantQ8Scalar(const BlockQ8_0* w, float* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = Q8Value(w[i / kQuantBlock], i % kQuantBlock);
  }
}

void DequantQ4Scalar(const BlockQ4_0* w, float* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = Q4Value(w[i / kQuantBlock], i % kQuantBlock);
  }
}

void AxpyQ8Scalar(float a, const BlockQ8_0* w, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += a * Q8Value(w[i / kQuantBlock], i % kQuantBlock);
  }
}

void AxpyQ4Scalar(float a, const BlockQ4_0* w, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += a * Q4Value(w[i / kQuantBlock], i % kQuantBlock);
  }
}

float DotQ8Scalar(const float* a, const BlockQ8_0* b, std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    acc += a[i] * Q8Value(b[i / kQuantBlock], i % kQuantBlock);
  }
  return acc;
}

float DotQ4Scalar(const float* a, const BlockQ4_0* b, std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    acc += a[i] * Q4Value(b[i / kQuantBlock], i % kQuantBlock);
  }
  return acc;
}

constexpr SimdOps kScalarOps = {
    .level = SimdLevel::kScalar,
    .name = "scalar",
    .half_to_float_n = HalfToFloatScalar,
    .float_to_half_n = FloatToHalfScalar,
    .axpy_f32 = AxpyF32Scalar,
    .axpy_f16 = AxpyF16Scalar,
    .dot_f16 = DotF16Scalar,
    .scale_add_f16 = ScaleAddF16Scalar,
    .dot_f16_strip = DotF16StripScalar,
    .softmax_accum_f16 = SoftmaxAccumF16Scalar,
    .dequant_q8 = DequantQ8Scalar,
    .dequant_q4 = DequantQ4Scalar,
    .axpy_q8 = AxpyQ8Scalar,
    .axpy_q4 = AxpyQ4Scalar,
    .dot_q8 = DotQ8Scalar,
    .dot_q4 = DotQ4Scalar,
};

bool CpuSupportsAvx2() {
#if (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(__i386__))
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
         __builtin_cpu_supports("f16c");
#else
  return false;
#endif
}

bool CpuSupportsAvx512() {
#if (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(__i386__))
  // The TU is compiled with f/bw/vl; gate on all three even though the
  // kernels only strictly need F, so any instruction the compiler picks
  // from those sets is safe.
  return CpuSupportsAvx2() && __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512vl");
#else
  return false;
#endif
}

/// The level's table if its TU was compiled, else nullptr.
const SimdOps* TableFor(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return &kScalarOps;
    case SimdLevel::kAvx2:
      return simd_detail::Avx2OpsOrNull();
    case SimdLevel::kAvx512:
      return simd_detail::Avx512OpsOrNull();
  }
  return &kScalarOps;
}

/// Resolves a requested level to the best available one at or below it
/// (the silent-degradation rule).
const SimdOps* OpsFor(SimdLevel level) {
  for (int l = static_cast<int>(level); l > 0; --l) {
    const auto candidate = static_cast<SimdLevel>(l);
    if (SimdLevelAvailable(candidate)) return TableFor(candidate);
  }
  return &kScalarOps;
}

SimdLevel LevelFromEnv() {
  const char* env = std::getenv("PUNICA_SIMD");
  // Unset (or "native"): best available — request the top tier and let
  // OpsFor degrade through whatever is missing.
  if (env == nullptr || env[0] == '\0') return SimdLevel::kAvx512;
  if (std::strcmp(env, "scalar") == 0) return SimdLevel::kScalar;
  if (std::strcmp(env, "avx2") == 0) return SimdLevel::kAvx2;
  if (std::strcmp(env, "avx512") == 0) return SimdLevel::kAvx512;
  if (std::strcmp(env, "native") == 0) return SimdLevel::kAvx512;
  // A typo here would silently invert what the pin was for (e.g. a
  // reproduction run landing on the vector kernels) — say so once.
  std::fprintf(stderr,
               "punica: unrecognized PUNICA_SIMD=\"%s\" (expected \"scalar\", "
               "\"avx2\", \"avx512\" or \"native\"); using the default (%s)\n",
               env, SimdLevelName(BestSimdLevel()));
  return SimdLevel::kAvx512;
}

std::atomic<const SimdOps*> g_ops{nullptr};

}  // namespace

const SimdOps& Simd() {
  const SimdOps* ops = g_ops.load(std::memory_order_acquire);
  if (ops == nullptr) {
    // First use: resolve env + cpuid exactly once, then publish. A benign
    // race publishes the same pointer twice.
    static const SimdOps* resolved = OpsFor(LevelFromEnv());
    g_ops.store(resolved, std::memory_order_release);
    ops = resolved;
  }
  return *ops;
}

SimdLevel ActiveSimdLevel() { return Simd().level; }

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "?";
}

bool SimdLevelCompiled(SimdLevel level) { return TableFor(level) != nullptr; }

bool SimdLevelAvailable(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kAvx2: {
      static const bool ok =
          SimdLevelCompiled(SimdLevel::kAvx2) && CpuSupportsAvx2();
      return ok;
    }
    case SimdLevel::kAvx512: {
      static const bool ok =
          SimdLevelCompiled(SimdLevel::kAvx512) && CpuSupportsAvx512();
      return ok;
    }
  }
  return false;
}

SimdLevel BestSimdLevel() { return OpsFor(SimdLevel::kAvx512)->level; }

SimdLevel SetSimdLevel(SimdLevel level) {
  SimdLevel prev = Simd().level;  // forces initial resolution
  g_ops.store(OpsFor(level), std::memory_order_release);
  return prev;
}

}  // namespace punica
