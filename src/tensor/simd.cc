#include "tensor/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace punica {
namespace {

// --- Portable scalar path ---
// These loops are the exact per-element operations the pre-vectorization
// kernels ran, so PUNICA_SIMD=scalar reproduces those numerics bit-for-bit
// on finite data. (The kernels themselves no longer skip zero activations
// on the dense paths — see gemm.cc — which is observable only with
// non-finite or signed-zero operands that the synthesized weights never
// produce.)

void HalfToFloatScalar(const f16* src, float* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i].ToFloat();
}

void FloatToHalfScalar(const float* src, f16* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = f16(src[i]);
}

void AxpyF32Scalar(float a, const float* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void AxpyF16Scalar(float a, const f16* x, float* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i].ToFloat();
}

float DotF16Scalar(const float* a, const f16* b, std::size_t n) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i].ToFloat();
  return acc;
}

void ScaleAddF16Scalar(float* acc, float c, float p, const f16* v,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] = acc[i] * c + p * v[i].ToFloat();
}

constexpr SimdOps kScalarOps = {
    SimdLevel::kScalar, "scalar",       HalfToFloatScalar, FloatToHalfScalar,
    AxpyF32Scalar,      AxpyF16Scalar,  DotF16Scalar,      ScaleAddF16Scalar,
};

bool CpuSupportsNative() {
#if (defined(__GNUC__) || defined(__clang__)) && \
    (defined(__x86_64__) || defined(__i386__))
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma") &&
         __builtin_cpu_supports("f16c");
#else
  return false;
#endif
}

const SimdOps* OpsFor(SimdLevel level) {
  if (level == SimdLevel::kNative && NativeSimdAvailable()) {
    return simd_detail::NativeOpsOrNull();
  }
  return &kScalarOps;
}

SimdLevel LevelFromEnv() {
  const char* env = std::getenv("PUNICA_SIMD");
  // Unset: best available ("native" falls back to scalar below when the TU
  // is absent or the CPU lacks the features).
  if (env == nullptr || env[0] == '\0') return SimdLevel::kNative;
  if (std::strcmp(env, "scalar") == 0) return SimdLevel::kScalar;
  if (std::strcmp(env, "native") == 0) return SimdLevel::kNative;
  // A typo here would silently invert what the pin was for (e.g. a
  // reproduction run landing on the vector kernels) — say so once.
  std::fprintf(stderr,
               "punica: unrecognized PUNICA_SIMD=\"%s\" (expected \"scalar\" "
               "or \"native\"); using the default (%s)\n",
               env, NativeSimdAvailable() ? "native" : "scalar");
  return SimdLevel::kNative;
}

std::atomic<const SimdOps*> g_ops{nullptr};

}  // namespace

const SimdOps& Simd() {
  const SimdOps* ops = g_ops.load(std::memory_order_acquire);
  if (ops == nullptr) {
    // First use: resolve env + cpuid exactly once, then publish. A benign
    // race publishes the same pointer twice.
    static const SimdOps* resolved = OpsFor(LevelFromEnv());
    g_ops.store(resolved, std::memory_order_release);
    ops = resolved;
  }
  return *ops;
}

SimdLevel ActiveSimdLevel() { return Simd().level; }

const char* SimdLevelName(SimdLevel level) {
  return level == SimdLevel::kNative ? "native" : "scalar";
}

SimdLevel SetSimdLevel(SimdLevel level) {
  SimdLevel prev = Simd().level;  // forces initial resolution
  g_ops.store(OpsFor(level), std::memory_order_release);
  return prev;
}

bool NativeSimdCompiled() { return simd_detail::NativeOpsOrNull() != nullptr; }

bool NativeSimdAvailable() {
  static const bool available = NativeSimdCompiled() && CpuSupportsNative();
  return available;
}

}  // namespace punica
