// The avx512 SIMD path: AVX-512 F/BW/VL, 512-bit f32 lanes.
//
// Same contract and structure as simd_avx2.cc, one tier up: 16-element
// bodies instead of 8. CMake compiles this TU with -mavx512f -mavx512bw
// -mavx512vl (plus the avx2 set for the scalar-ish edges) and defines
// PUNICA_NATIVE_SIMD when configured with -DPUNICA_NATIVE_SIMD=ON; the
// portable build compiles the stub. Runtime cpuid (simd.cc) gates dispatch
// on avx512f+bw+vl, so a binary carrying this TU still runs (degraded to
// avx2 or scalar) on hardware without them.
//
// Determinism: fixed 16-lane bodies in ascending order, scalar std::fma
// tails, and dot reduces its lane accumulator in one fixed shuffle order
// (512 → 256 → the same 128-bit sequence the avx2 path uses). This is a
// distinct dispatch path: bit-identical to itself at any thread count, and
// within the documented FMA-contraction envelope of the other paths.
// Intrinsics are chosen from AVX512F only where a DQ/BW sibling exists
// (e.g. extractf64x4 rather than extractf32x8) so the compiled code stays
// inside the cpuid gate.
#include "tensor/simd.h"

#if defined(PUNICA_NATIVE_SIMD) && defined(__AVX512F__) && \
    (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include <cmath>

#include "tensor/quant.h"

namespace punica {
namespace {

inline __m256i LoadHalf16(const f16* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

void HalfToFloatAvx512(const f16* src, float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(dst + i, _mm512_cvtph_ps(LoadHalf16(src + i)));
  }
  for (; i < n; ++i) dst[i] = src[i].ToFloat();
}

void FloatToHalfAvx512(const float* src, f16* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m256i h = _mm512_cvtps_ph(_mm512_loadu_ps(src + i),
                                _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), h);
  }
  for (; i < n; ++i) dst[i] = f16(src[i]);
}

void AxpyF32Avx512(float a, const float* x, float* y, std::size_t n) {
  const __m512 va = _mm512_set1_ps(a);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512 vy = _mm512_loadu_ps(y + i);
    _mm512_storeu_ps(y + i, _mm512_fmadd_ps(va, _mm512_loadu_ps(x + i), vy));
  }
  for (; i < n; ++i) y[i] = std::fma(a, x[i], y[i]);
}

void AxpyF16Avx512(float a, const f16* x, float* y, std::size_t n) {
  const __m512 va = _mm512_set1_ps(a);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512 vx = _mm512_cvtph_ps(LoadHalf16(x + i));
    __m512 vy = _mm512_loadu_ps(y + i);
    _mm512_storeu_ps(y + i, _mm512_fmadd_ps(va, vx, vy));
  }
  for (; i < n; ++i) y[i] = std::fma(a, x[i].ToFloat(), y[i]);
}

// Fixed-order horizontal reduction, matching the avx2 path's final 128-bit
// sequence: 512 halves, 256 halves, movehl, shuffle.
inline float ReduceAdd16(__m512 acc) {
  __m256 lo = _mm512_castps512_ps256(acc);
  __m256 hi = _mm256_castpd_ps(
      _mm512_extractf64x4_pd(_mm512_castps_pd(acc), 1));
  __m256 r = _mm256_add_ps(lo, hi);
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(r),
                        _mm256_extractf128_ps(r, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

float DotF16Avx512(const float* a, const f16* b, std::size_t n) {
  __m512 acc = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512 vb = _mm512_cvtph_ps(LoadHalf16(b + i));
    acc = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), vb, acc);
  }
  float sum = ReduceAdd16(acc);
  for (; i < n; ++i) sum = std::fma(a[i], b[i].ToFloat(), sum);
  return sum;
}

void ScaleAddF16Avx512(float* acc, float c, float p, const f16* v,
                       std::size_t n) {
  const __m512 vc = _mm512_set1_ps(c);
  const __m512 vp = _mm512_set1_ps(p);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512 va = _mm512_mul_ps(_mm512_loadu_ps(acc + i), vc);
    __m512 vv = _mm512_cvtph_ps(LoadHalf16(v + i));
    _mm512_storeu_ps(acc + i, _mm512_fmadd_ps(vp, vv, va));
  }
  for (; i < n; ++i) acc[i] = std::fma(p, v[i].ToFloat(), acc[i] * c);
}

// Page-run strips: per position the level's dot/axpy body above, plus a
// prefetch two entries ahead (same rationale as the avx2 path).

void DotF16StripAvx512(const float* q, const f16* k, std::size_t stride,
                       std::size_t d, std::size_t n_pos, float scale,
                       float* scores) {
  for (std::size_t j = 0; j < n_pos; ++j) {
    if (j + 2 < n_pos) {
      _mm_prefetch(reinterpret_cast<const char*>(k + (j + 2) * stride),
                   _MM_HINT_T0);
    }
    scores[j] = DotF16Avx512(q, k + j * stride, d) * scale;
  }
}

float SoftmaxAccumF16Avx512(const float* scores, float m, const f16* v,
                            std::size_t stride, std::size_t d,
                            std::size_t n_pos, float* acc) {
  float sum = 0.0f;
  for (std::size_t j = 0; j < n_pos; ++j) {
    if (j + 2 < n_pos) {
      _mm_prefetch(reinterpret_cast<const char*>(v + (j + 2) * stride),
                   _MM_HINT_T0);
    }
    float p = std::exp(scores[j] - m);
    AxpyF16Avx512(p, v + j * stride, acc, d);
    sum += p;
  }
  return sum;
}

// --- Quantized-weight kernels ---
// A Q8_0 block is 2 groups of 16 int8; a Q4_0 block's 16 bytes hold
// elements 0..15 in the low nibbles and 16..31 in the high nibbles, so each
// nibble plane is one 16-element group. Decode: sign-extend to int32,
// convert, multiply by the broadcast scale (exact in f32). Tails use
// std::fma on the same exact scalar decode.
//
// As on the avx2 path: dequant_* keep the exact d·q product (bit-identical
// to scalar); the fused axpy_* fold the activation into the block scale —
// y += (a·d)·q, one extra rounding on a·d, inside the dispatch-seam
// tolerance and a fixed sequence within this path.

/// Scale decode via hardware cvtph (bit-identical to HalfBitsToFloat;
/// f16 -> f32 is exact) without the out-of-line call per block.
inline float ScaleF32(f16 h) {
  return _mm_cvtss_f32(_mm_cvtph_ps(_mm_cvtsi32_si128(h.bits())));
}

inline float Q8ValueRef(const BlockQ8_0* w, std::size_t i) {
  const BlockQ8_0& b = w[i / kQuantBlock];
  return b.scale.ToFloat() * static_cast<float>(b.qs[i % kQuantBlock]);
}

inline float Q4ValueRef(const BlockQ4_0* w, std::size_t i) {
  const BlockQ4_0& b = w[i / kQuantBlock];
  const std::size_t e = i % kQuantBlock;
  const std::uint8_t byte = b.qs[e & (kQuantBlock / 2 - 1)];
  const int code = e < kQuantBlock / 2 ? (byte & 0x0F) : (byte >> 4);
  return b.scale.ToFloat() * static_cast<float>(code - 8);
}

/// Decoded f32 vector for elements [16g, 16g+16) of a Q8_0 block (g 0..1),
/// before the scale multiply.
inline __m512 Q8Codes16(const BlockQ8_0& b, int g) {
  __m128i q8 = _mm_loadu_si128(
      reinterpret_cast<const __m128i*>(b.qs + 16 * g));
  return _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(q8));
}

/// Decoded f32 vector for elements [16g, 16g+16) of a Q4_0 block (g 0..1),
/// before the scale multiply.
inline __m512 Q4Codes16(const BlockQ4_0& b, int g) {
  __m128i raw = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b.qs));
  const __m128i mask = _mm_set1_epi8(0x0F);
  __m128i nib = g == 0 ? _mm_and_si128(raw, mask)
                       : _mm_and_si128(_mm_srli_epi16(raw, 4), mask);
  __m128i codes = _mm_sub_epi8(nib, _mm_set1_epi8(8));
  return _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(codes));
}

void DequantQ8Avx512(const BlockQ8_0* w, float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + kQuantBlock <= n; i += kQuantBlock) {
    const BlockQ8_0& b = w[i / kQuantBlock];
    const __m512 vd = _mm512_set1_ps(ScaleF32(b.scale));
    for (int g = 0; g < 2; ++g) {
      _mm512_storeu_ps(dst + i + 16 * g, _mm512_mul_ps(Q8Codes16(b, g), vd));
    }
  }
  for (; i < n; ++i) dst[i] = Q8ValueRef(w, i);
}

void DequantQ4Avx512(const BlockQ4_0* w, float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + kQuantBlock <= n; i += kQuantBlock) {
    const BlockQ4_0& b = w[i / kQuantBlock];
    const __m512 vd = _mm512_set1_ps(ScaleF32(b.scale));
    for (int g = 0; g < 2; ++g) {
      _mm512_storeu_ps(dst + i + 16 * g, _mm512_mul_ps(Q4Codes16(b, g), vd));
    }
  }
  for (; i < n; ++i) dst[i] = Q4ValueRef(w, i);
}

void AxpyQ8Avx512(float a, const BlockQ8_0* w, float* y, std::size_t n) {
  std::size_t i = 0;
  for (; i + kQuantBlock <= n; i += kQuantBlock) {
    const BlockQ8_0& b = w[i / kQuantBlock];
    // Keep the streamed weight blocks a few cache lines ahead of the
    // decode: the cvt/FMA work between block loads is long enough that
    // demand misses stop overlapping when w does not fit cache.
    _mm_prefetch(reinterpret_cast<const char*>(&b) + 256, _MM_HINT_T0);
    const __m512 vf = _mm512_set1_ps(a * ScaleF32(b.scale));
    for (int g = 0; g < 2; ++g) {
      __m512 vq = _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(_mm_loadu_si128(
          reinterpret_cast<const __m128i*>(b.qs + 16 * g))));
      __m512 vy = _mm512_loadu_ps(y + i + 16 * g);
      _mm512_storeu_ps(y + i + 16 * g, _mm512_fmadd_ps(vf, vq, vy));
    }
  }
  for (; i < n; ++i) y[i] = std::fma(a, Q8ValueRef(w, i), y[i]);
}

void AxpyQ4Avx512(float a, const BlockQ4_0* w, float* y, std::size_t n) {
  const __m128i mask = _mm_set1_epi8(0x0F);
  const __m128i bias = _mm_set1_epi8(8);
  std::size_t i = 0;
  for (; i + kQuantBlock <= n; i += kQuantBlock) {
    const BlockQ4_0& b = w[i / kQuantBlock];
    _mm_prefetch(reinterpret_cast<const char*>(&b) + 256, _MM_HINT_T0);
    const __m512 vf = _mm512_set1_ps(a * ScaleF32(b.scale));
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b.qs));
    const __m128i grp[2] = {
        _mm_sub_epi8(_mm_and_si128(raw, mask), bias),
        _mm_sub_epi8(_mm_and_si128(_mm_srli_epi16(raw, 4), mask), bias)};
    for (int g = 0; g < 2; ++g) {
      __m512 vq = _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(grp[g]));
      __m512 vy = _mm512_loadu_ps(y + i + 16 * g);
      _mm512_storeu_ps(y + i + 16 * g, _mm512_fmadd_ps(vf, vq, vy));
    }
  }
  for (; i < n; ++i) y[i] = std::fma(a, Q4ValueRef(w, i), y[i]);
}

float DotQ8Avx512(const float* a, const BlockQ8_0* b, std::size_t n) {
  __m512 acc = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + kQuantBlock <= n; i += kQuantBlock) {
    const BlockQ8_0& blk = b[i / kQuantBlock];
    const __m512 vd = _mm512_set1_ps(ScaleF32(blk.scale));
    for (int g = 0; g < 2; ++g) {
      __m512 vw = _mm512_mul_ps(Q8Codes16(blk, g), vd);
      acc = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16 * g), vw, acc);
    }
  }
  float sum = ReduceAdd16(acc);
  for (; i < n; ++i) sum = std::fma(a[i], Q8ValueRef(b, i), sum);
  return sum;
}

float DotQ4Avx512(const float* a, const BlockQ4_0* b, std::size_t n) {
  __m512 acc = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + kQuantBlock <= n; i += kQuantBlock) {
    const BlockQ4_0& blk = b[i / kQuantBlock];
    const __m512 vd = _mm512_set1_ps(ScaleF32(blk.scale));
    for (int g = 0; g < 2; ++g) {
      __m512 vw = _mm512_mul_ps(Q4Codes16(blk, g), vd);
      acc = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16 * g), vw, acc);
    }
  }
  float sum = ReduceAdd16(acc);
  for (; i < n; ++i) sum = std::fma(a[i], Q4ValueRef(b, i), sum);
  return sum;
}

constexpr SimdOps kAvx512Ops = {
    .level = SimdLevel::kAvx512,
    .name = "avx512",
    .half_to_float_n = HalfToFloatAvx512,
    .float_to_half_n = FloatToHalfAvx512,
    .axpy_f32 = AxpyF32Avx512,
    .axpy_f16 = AxpyF16Avx512,
    .dot_f16 = DotF16Avx512,
    .scale_add_f16 = ScaleAddF16Avx512,
    .dot_f16_strip = DotF16StripAvx512,
    .softmax_accum_f16 = SoftmaxAccumF16Avx512,
    .dequant_q8 = DequantQ8Avx512,
    .dequant_q4 = DequantQ4Avx512,
    .axpy_q8 = AxpyQ8Avx512,
    .axpy_q4 = AxpyQ4Avx512,
    .dot_q8 = DotQ8Avx512,
    .dot_q4 = DotQ4Avx512,
};

}  // namespace

namespace simd_detail {
const SimdOps* Avx512OpsOrNull() { return &kAvx512Ops; }
}  // namespace simd_detail

}  // namespace punica

#else  // portable build: no avx512 table

namespace punica::simd_detail {
const SimdOps* Avx512OpsOrNull() { return nullptr; }
}  // namespace punica::simd_detail

#endif
