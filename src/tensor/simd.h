// Runtime-dispatched SIMD primitives for the numeric hot path.
//
// Two implementations of one small ops table (SimdOps):
//  * scalar  — portable C++, compiled everywhere. Bit-identical to the
//              pre-vectorization kernels (same per-element operation order).
//  * native  — AVX2+FMA+F16C (src/tensor/simd_avx2.cc), compiled only when
//              CMake is configured with -DPUNICA_NATIVE_SIMD=ON so every
//              other translation unit stays portable.
//
// Selection: cpuid at first use picks native when the TU was compiled AND
// the CPU reports avx2+fma+f16c; the PUNICA_SIMD=scalar|native environment
// variable overrides (native silently falls back to scalar when
// unavailable); SetSimdLevel() swaps the table at runtime for A/B benching
// and the scalar-vs-native equivalence tests.
//
// Determinism: both paths keep the substrate's contract — the operation
// order for a given element depends only on its position, never on the
// thread count. Kernels vectorize across *independent output columns*
// (axpy/scale_add), so each element's k-reduction stays in ascending order
// on both paths. Cross-path numerics: f16<->f32 conversions are
// bit-identical (F16C and the scalar code both round to nearest even);
// axpy/dot/scale_add differ from scalar by FMA contraction only (the
// multiply is not rounded separately), plus dot's 8-lane accumulators —
// bounded, documented in README "Performance", and asserted by
// tests/tensor/simd_test.cc.
#pragma once

#include <cstddef>

#include "tensor/half.h"

namespace punica {

enum class SimdLevel { kScalar = 0, kNative = 1 };

/// The dispatch table. One instance per implementation; kernels grab the
/// active table once per invocation (`const SimdOps& ops = Simd();`) and
/// call through it in their inner loops.
struct SimdOps {
  SimdLevel level;
  const char* name;

  /// dst[0..n) = decode(src[0..n))  — exact, bit-identical across paths.
  void (*half_to_float_n)(const f16* src, float* dst, std::size_t n);
  /// dst[0..n) = round_to_nearest_even_f16(src[0..n)) — bit-identical
  /// across paths for all non-NaN inputs (NaN payloads may differ).
  void (*float_to_half_n)(const float* src, f16* dst, std::size_t n);
  /// y[0..n) += a * x[0..n)  (exact when a == 1.0f, FMA-contracted
  /// otherwise on the native path).
  void (*axpy_f32)(float a, const float* x, float* y, std::size_t n);
  /// y[0..n) += a * decode(x[0..n))  — fused decode + axpy, one pass.
  void (*axpy_f16)(float a, const f16* x, float* y, std::size_t n);
  /// Σ_i a[i] * decode(b[i]). Native uses 8 lane accumulators reduced in a
  /// fixed shuffle order — deterministic, but a different summation order
  /// than scalar.
  float (*dot_f16)(const float* a, const f16* b, std::size_t n);
  /// acc[0..n) = acc[0..n) * c + p * decode(v[0..n)) — the online-softmax
  /// V accumulation step.
  void (*scale_add_f16)(float* acc, float c, float p, const f16* v,
                        std::size_t n);
};

/// The active table. First call resolves PUNICA_SIMD / cpuid; later calls
/// are one atomic load.
const SimdOps& Simd();

SimdLevel ActiveSimdLevel();
const char* SimdLevelName(SimdLevel level);

/// Swaps the active table (process-wide). Returns the previously active
/// level. Requesting kNative when unavailable resolves to kScalar. Not
/// synchronised against kernels already running on pool workers — switch
/// between kernel invocations, as the benches and tests do.
SimdLevel SetSimdLevel(SimdLevel level);

/// RAII guard forcing a dispatch level for a scope — the seam the
/// scalar-vs-native equivalence tests and the A/B benches switch on.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) : prev_(SetSimdLevel(level)) {}
  ~ScopedSimdLevel() { SetSimdLevel(prev_); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  SimdLevel prev_;
};

/// True when the AVX2+FMA+F16C translation unit was compiled in
/// (CMake -DPUNICA_NATIVE_SIMD=ON).
bool NativeSimdCompiled();
/// True when the native TU is compiled AND cpuid reports avx2+fma+f16c.
/// (One-off conversion call sites want the span HalfToFloatN/FloatToHalfN
/// in tensor/half.h; kernels hoist the table and call through it.)
bool NativeSimdAvailable();

namespace simd_detail {
/// Defined by simd_avx2.cc: the native table, or nullptr when that TU was
/// compiled without PUNICA_NATIVE_SIMD (the portable default).
const SimdOps* NativeOpsOrNull();
}  // namespace simd_detail

}  // namespace punica
