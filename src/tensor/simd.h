// Runtime-dispatched SIMD primitives for the numeric hot path.
//
// Three implementations of one small ops table (SimdOps):
//  * scalar  — portable C++, compiled everywhere. Bit-identical to the
//              pre-vectorization kernels (same per-element operation order).
//  * avx2    — AVX2+FMA+F16C, 256-bit lanes (src/tensor/simd_avx2.cc).
//  * avx512  — AVX-512 F/BW/VL, 512-bit lanes (src/tensor/simd_avx512.cc).
// The vector TUs are compiled only when CMake is configured with
// -DPUNICA_NATIVE_SIMD=ON so every other translation unit stays portable.
//
// Selection: cpuid at first use picks the highest level whose TU was
// compiled AND whose features the CPU reports. The PUNICA_SIMD environment
// variable overrides: "scalar" | "avx2" | "avx512" pin an explicit level
// ("native" is an alias for best-available); a pinned level the CPU or
// build lacks silently degrades to the next available one, so a binary
// pinned to avx512 still runs (on avx2, then scalar) on older hardware.
// SetSimdLevel() swaps the table at runtime for A/B benching and the
// cross-path equivalence tests.
//
// Determinism: every path keeps the substrate's contract — the operation
// order for a given element depends only on its position, never on the
// thread count. Kernels vectorize across *independent output columns*
// (axpy/scale_add), so each element's k-reduction stays in ascending order
// on every path. Cross-path numerics: f16<->f32 conversions are
// bit-identical (F16C, AVX-512 and the scalar code all round to nearest
// even), and the quantized dequant kernels are bit-identical too (an
// int8/int4 code times an f16 scale is exact in f32). axpy/dot/scale_add
// differ from scalar by FMA contraction only (the multiply is not rounded
// separately), plus dot's fixed 8- or 16-lane accumulator reduction —
// bounded, documented in README "Performance", and asserted by
// tests/tensor/simd_test.cc.
#pragma once

#include <cstddef>

#include "tensor/half.h"

namespace punica {

struct BlockQ8_0;
struct BlockQ4_0;

/// Dispatch tiers, ordered: a higher value strictly extends the ISA of the
/// one below. Degradation walks downwards.
enum class SimdLevel { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

inline constexpr int kNumSimdLevels = 3;

/// The dispatch table. One instance per implementation; kernels grab the
/// active table once per invocation (`const SimdOps& ops = Simd();`) and
/// call through it in their inner loops.
struct SimdOps {
  SimdLevel level;
  const char* name;

  /// dst[0..n) = decode(src[0..n))  — exact, bit-identical across paths.
  void (*half_to_float_n)(const f16* src, float* dst, std::size_t n);
  /// dst[0..n) = round_to_nearest_even_f16(src[0..n)) — bit-identical
  /// across paths for all non-NaN inputs (NaN payloads may differ).
  void (*float_to_half_n)(const float* src, f16* dst, std::size_t n);
  /// y[0..n) += a * x[0..n)  (exact when a == 1.0f, FMA-contracted
  /// otherwise on the vector paths).
  void (*axpy_f32)(float a, const float* x, float* y, std::size_t n);
  /// y[0..n) += a * decode(x[0..n))  — fused decode + axpy, one pass.
  void (*axpy_f16)(float a, const f16* x, float* y, std::size_t n);
  /// Σ_i a[i] * decode(b[i]). Vector paths use lane accumulators reduced in
  /// a fixed shuffle order — deterministic, but a different summation order
  /// than scalar.
  float (*dot_f16)(const float* a, const f16* b, std::size_t n);
  /// acc[0..n) = acc[0..n) * c + p * decode(v[0..n)) — the online-softmax
  /// V accumulation step.
  void (*scale_add_f16)(float* acc, float c, float p, const f16* v,
                        std::size_t n);

  // Page-run attention strips: one call processes a whole contiguous run of
  // cache positions (KvRunCursor runs), entries `stride` elements apart.
  // Per position both ops run this level's dot_f16 / axpy_f16 body, so how
  // a KV range is segmented into strip calls never changes the numerics —
  // the property the split-KV determinism contract rests on.
  /// scores[j] = scale · Σ_t q[t] · decode(k[j·stride + t]) for ascending
  /// j in [0, n_pos).
  void (*dot_f16_strip)(const float* q, const f16* k, std::size_t stride,
                        std::size_t d, std::size_t n_pos, float scale,
                        float* scores);
  /// The post-max softmax·V pass over one run: for ascending j,
  /// p = exp(scores[j] − m); acc[0..d) += p · decode(v[j·stride .. +d)).
  /// Returns Σ p. exp is scalar libm on every path.
  float (*softmax_accum_f16)(const float* scores, float m, const f16* v,
                             std::size_t stride, std::size_t d,
                             std::size_t n_pos, float* acc);

  // Groupwise-quantized weight kernels (tensor/quant.h blocks). `w`/`b`
  // point at the block containing element 0 (callers keep stripe starts
  // block-aligned); n is in ELEMENTS and may end mid-block.
  /// dst[0..n) = d * q — EXACT in f32, so bit-identical across paths.
  void (*dequant_q8)(const BlockQ8_0* w, float* dst, std::size_t n);
  void (*dequant_q4)(const BlockQ4_0* w, float* dst, std::size_t n);
  /// y[0..n) += a * dequant(w)[0..n) — fused dequant + axpy, one pass.
  void (*axpy_q8)(float a, const BlockQ8_0* w, float* y, std::size_t n);
  void (*axpy_q4)(float a, const BlockQ4_0* w, float* y, std::size_t n);
  /// Σ_i a[i] * dequant(b)[i], fixed lane-reduction order per path.
  float (*dot_q8)(const float* a, const BlockQ8_0* b, std::size_t n);
  float (*dot_q4)(const float* a, const BlockQ4_0* b, std::size_t n);
};

/// The active table. First call resolves PUNICA_SIMD / cpuid; later calls
/// are one atomic load.
const SimdOps& Simd();

SimdLevel ActiveSimdLevel();
const char* SimdLevelName(SimdLevel level);

/// True when the level's translation unit was compiled in (kScalar always;
/// the vector TUs under CMake -DPUNICA_NATIVE_SIMD=ON on x86).
bool SimdLevelCompiled(SimdLevel level);
/// True when the level is compiled AND cpuid reports its features
/// (avx2+fma+f16c; avx512 additionally f+bw+vl).
bool SimdLevelAvailable(SimdLevel level);
/// Highest available level — what "native" and the unset default resolve to.
SimdLevel BestSimdLevel();

/// Swaps the active table (process-wide). Returns the previously active
/// level. An unavailable level degrades to the next available one below.
/// Not synchronised against kernels already running on pool workers —
/// switch between kernel invocations, as the benches and tests do.
SimdLevel SetSimdLevel(SimdLevel level);

/// RAII guard forcing a dispatch level for a scope — the seam the
/// cross-path equivalence tests and the A/B benches switch on.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) : prev_(SetSimdLevel(level)) {}
  ~ScopedSimdLevel() { SetSimdLevel(prev_); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  SimdLevel prev_;
};

namespace simd_detail {
/// Defined by simd_avx2.cc / simd_avx512.cc: the level's table, or nullptr
/// when that TU was compiled without PUNICA_NATIVE_SIMD (the portable
/// default).
const SimdOps* Avx2OpsOrNull();
const SimdOps* Avx512OpsOrNull();
}  // namespace simd_detail

}  // namespace punica
