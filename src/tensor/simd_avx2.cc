// The native SIMD path: AVX2 + FMA + F16C, 256-bit f32 lanes.
//
// This is the only translation unit in the build that may use the x86
// vector extensions. CMake compiles it with -mavx2 -mfma -mf16c and defines
// PUNICA_NATIVE_SIMD when configured with -DPUNICA_NATIVE_SIMD=ON; in the
// default portable build the file compiles to a stub returning nullptr and
// dispatch stays scalar. Runtime cpuid (simd.cc) keeps a native-enabled
// binary safe on CPUs without the features.
//
// Determinism: every loop below is a fixed sequence for a given (pointer,
// n) — full 8-lane bodies in ascending order, then a scalar tail (std::fma,
// matching the vector body's contraction). dot's lane accumulators reduce
// in one fixed shuffle order. No operation order ever depends on the
// thread count.
#include "tensor/simd.h"

#if defined(PUNICA_NATIVE_SIMD) && \
    (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include <cmath>

namespace punica {
namespace {

inline __m128i LoadHalf8(const f16* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

void HalfToFloatAvx(const f16* src, float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(LoadHalf8(src + i)));
  }
  for (; i < n; ++i) dst[i] = src[i].ToFloat();
}

void FloatToHalfAvx(const float* src, f16* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128i h = _mm256_cvtps_ph(_mm256_loadu_ps(src + i),
                                _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
  }
  for (; i < n; ++i) dst[i] = f16(src[i]);
}

void AxpyF32Avx(float a, const float* x, float* y, std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 vy = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), vy));
  }
  for (; i < n; ++i) y[i] = std::fma(a, x[i], y[i]);
}

void AxpyF16Avx(float a, const f16* x, float* y, std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 vx = _mm256_cvtph_ps(LoadHalf8(x + i));
    __m256 vy = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(va, vx, vy));
  }
  for (; i < n; ++i) y[i] = std::fma(a, x[i].ToFloat(), y[i]);
}

float DotF16Avx(const float* a, const f16* b, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 vb = _mm256_cvtph_ps(LoadHalf8(b + i));
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), vb, acc);
  }
  // Fixed-order horizontal reduction: (lo+hi) pairs, then within the 128-bit
  // half.
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(acc),
                        _mm256_extractf128_ps(acc, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  float sum = _mm_cvtss_f32(s);
  for (; i < n; ++i) sum = std::fma(a[i], b[i].ToFloat(), sum);
  return sum;
}

void ScaleAddF16Avx(float* acc, float c, float p, const f16* v,
                    std::size_t n) {
  const __m256 vc = _mm256_set1_ps(c);
  const __m256 vp = _mm256_set1_ps(p);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 va = _mm256_mul_ps(_mm256_loadu_ps(acc + i), vc);
    __m256 vv = _mm256_cvtph_ps(LoadHalf8(v + i));
    _mm256_storeu_ps(acc + i, _mm256_fmadd_ps(vp, vv, va));
  }
  for (; i < n; ++i) acc[i] = std::fma(p, v[i].ToFloat(), acc[i] * c);
}

constexpr SimdOps kNativeOps = {
    SimdLevel::kNative, "native",    HalfToFloatAvx, FloatToHalfAvx,
    AxpyF32Avx,         AxpyF16Avx,  DotF16Avx,      ScaleAddF16Avx,
};

}  // namespace

namespace simd_detail {
const SimdOps* NativeOpsOrNull() { return &kNativeOps; }
}  // namespace simd_detail

}  // namespace punica

#else  // portable build: no native table

namespace punica::simd_detail {
const SimdOps* NativeOpsOrNull() { return nullptr; }
}  // namespace punica::simd_detail

#endif
