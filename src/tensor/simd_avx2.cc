// The avx2 SIMD path: AVX2 + FMA + F16C, 256-bit f32 lanes.
//
// CMake compiles this TU with -mavx2 -mfma -mf16c and defines
// PUNICA_NATIVE_SIMD when configured with -DPUNICA_NATIVE_SIMD=ON; in the
// default portable build the file compiles to a stub returning nullptr and
// dispatch degrades. Runtime cpuid (simd.cc) keeps a vector-enabled binary
// safe on CPUs without the features. simd_avx512.cc follows the same
// pattern one tier up.
//
// Determinism: every loop below is a fixed sequence for a given (pointer,
// n) — full 8-lane bodies in ascending order, then a scalar tail (std::fma,
// matching the vector body's contraction). dot's lane accumulators reduce
// in one fixed shuffle order. No operation order ever depends on the
// thread count. The quantized dequant bodies compute d * q exactly (both
// factors fit f32), so their output is bit-identical to the scalar path.
#include "tensor/simd.h"

#if defined(PUNICA_NATIVE_SIMD) && \
    (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

#include <cmath>

#include "tensor/quant.h"

namespace punica {
namespace {

inline __m128i LoadHalf8(const f16* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

void HalfToFloatAvx(const f16* src, float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_cvtph_ps(LoadHalf8(src + i)));
  }
  for (; i < n; ++i) dst[i] = src[i].ToFloat();
}

void FloatToHalfAvx(const float* src, f16* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128i h = _mm256_cvtps_ph(_mm256_loadu_ps(src + i),
                                _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), h);
  }
  for (; i < n; ++i) dst[i] = f16(src[i]);
}

void AxpyF32Avx(float a, const float* x, float* y, std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 vy = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), vy));
  }
  for (; i < n; ++i) y[i] = std::fma(a, x[i], y[i]);
}

void AxpyF16Avx(float a, const f16* x, float* y, std::size_t n) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 vx = _mm256_cvtph_ps(LoadHalf8(x + i));
    __m256 vy = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i, _mm256_fmadd_ps(va, vx, vy));
  }
  for (; i < n; ++i) y[i] = std::fma(a, x[i].ToFloat(), y[i]);
}

// Fixed-order horizontal reduction: (lo+hi) pairs, then within the 128-bit
// half.
inline float ReduceAdd8(__m256 acc) {
  __m128 s = _mm_add_ps(_mm256_castps256_ps128(acc),
                        _mm256_extractf128_ps(acc, 1));
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

float DotF16Avx(const float* a, const f16* b, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 vb = _mm256_cvtph_ps(LoadHalf8(b + i));
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), vb, acc);
  }
  float sum = ReduceAdd8(acc);
  for (; i < n; ++i) sum = std::fma(a[i], b[i].ToFloat(), sum);
  return sum;
}

void ScaleAddF16Avx(float* acc, float c, float p, const f16* v,
                    std::size_t n) {
  const __m256 vc = _mm256_set1_ps(c);
  const __m256 vp = _mm256_set1_ps(p);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 va = _mm256_mul_ps(_mm256_loadu_ps(acc + i), vc);
    __m256 vv = _mm256_cvtph_ps(LoadHalf8(v + i));
    _mm256_storeu_ps(acc + i, _mm256_fmadd_ps(vp, vv, va));
  }
  for (; i < n; ++i) acc[i] = std::fma(p, v[i].ToFloat(), acc[i] * c);
}

// Page-run strips: each position runs the level's dot/axpy body above (so
// run segmentation never changes numerics); the only additions are a
// prefetch a couple of entries ahead, keeping the f16 stream in flight
// while the current entry's FMA chain drains.

void DotF16StripAvx(const float* q, const f16* k, std::size_t stride,
                    std::size_t d, std::size_t n_pos, float scale,
                    float* scores) {
  for (std::size_t j = 0; j < n_pos; ++j) {
    if (j + 2 < n_pos) {
      _mm_prefetch(reinterpret_cast<const char*>(k + (j + 2) * stride),
                   _MM_HINT_T0);
    }
    scores[j] = DotF16Avx(q, k + j * stride, d) * scale;
  }
}

float SoftmaxAccumF16Avx(const float* scores, float m, const f16* v,
                         std::size_t stride, std::size_t d, std::size_t n_pos,
                         float* acc) {
  float sum = 0.0f;
  for (std::size_t j = 0; j < n_pos; ++j) {
    if (j + 2 < n_pos) {
      _mm_prefetch(reinterpret_cast<const char*>(v + (j + 2) * stride),
                   _MM_HINT_T0);
    }
    float p = std::exp(scores[j] - m);
    AxpyF16Avx(p, v + j * stride, acc, d);
    sum += p;
  }
  return sum;
}

// --- Quantized-weight kernels ---
// A Q8_0 block is 4 groups of 8 int8; a Q4_0 block is 4 groups of 8
// nibbles. Each group decodes to one 256-bit f32 vector: sign-extend to
// int32, convert, multiply by the broadcast scale (exact — both factors fit
// f32's significand). Tail elements past the last full block go through the
// same scalar decode (also exact) with std::fma.
//
// dequant_* keep the exact d·q product and are bit-identical to the scalar
// path. The fused axpy_* instead fold the row activation into the block
// scale — y += (a·d)·q with one extra rounding on a·d — trading the exact
// form for one multiply less per 8 lanes; the divergence from the scalar
// path stays inside the documented dispatch-seam tolerance, and within
// this path results are a fixed operation sequence, hence bit-stable. The
// scalar tail of a partial block only ever covers the same absolute
// elements (tiles are block-aligned), so path determinism survives any
// tiling.

/// Scale decode via F16C: bit-identical to the software HalfBitsToFloat
/// (f16 -> f32 is exact for every finite value incl. subnormals) without
/// the out-of-line call per block.
inline float ScaleF32(f16 h) {
  return _mm_cvtss_f32(_mm_cvtph_ps(_mm_cvtsi32_si128(h.bits())));
}

inline float Q8ValueRef(const BlockQ8_0* w, std::size_t i) {
  const BlockQ8_0& b = w[i / kQuantBlock];
  return b.scale.ToFloat() * static_cast<float>(b.qs[i % kQuantBlock]);
}

inline float Q4ValueRef(const BlockQ4_0* w, std::size_t i) {
  const BlockQ4_0& b = w[i / kQuantBlock];
  const std::size_t e = i % kQuantBlock;
  const std::uint8_t byte = b.qs[e & (kQuantBlock / 2 - 1)];
  const int code = e < kQuantBlock / 2 ? (byte & 0x0F) : (byte >> 4);
  return b.scale.ToFloat() * static_cast<float>(code - 8);
}

/// Decoded f32 vector for elements [8g, 8g+8) of a Q8_0 block (g in 0..3),
/// before the scale multiply.
inline __m256 Q8Codes8(const BlockQ8_0& b, int g) {
  __m128i q8 = _mm_loadl_epi64(
      reinterpret_cast<const __m128i*>(b.qs + 8 * g));
  return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(q8));
}

/// Decoded f32 vector for elements [8g, 8g+8) of a Q4_0 block (g in 0..3),
/// before the scale multiply. Byte j holds element j (lo nibble) and
/// element j+16 (hi nibble).
inline __m256 Q4Codes8(const BlockQ4_0& b, int g) {
  __m128i raw = _mm_loadl_epi64(
      reinterpret_cast<const __m128i*>(b.qs + (g & 1) * 8));
  const __m128i mask = _mm_set1_epi8(0x0F);
  __m128i nib = g < 2 ? _mm_and_si128(raw, mask)
                      : _mm_and_si128(_mm_srli_epi16(raw, 4), mask);
  __m128i codes = _mm_sub_epi8(nib, _mm_set1_epi8(8));
  return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(codes));
}

void DequantQ8Avx(const BlockQ8_0* w, float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + kQuantBlock <= n; i += kQuantBlock) {
    const BlockQ8_0& b = w[i / kQuantBlock];
    const __m256 vd = _mm256_set1_ps(ScaleF32(b.scale));
    for (int g = 0; g < 4; ++g) {
      _mm256_storeu_ps(dst + i + 8 * g, _mm256_mul_ps(Q8Codes8(b, g), vd));
    }
  }
  for (; i < n; ++i) dst[i] = Q8ValueRef(w, i);
}

void DequantQ4Avx(const BlockQ4_0* w, float* dst, std::size_t n) {
  std::size_t i = 0;
  for (; i + kQuantBlock <= n; i += kQuantBlock) {
    const BlockQ4_0& b = w[i / kQuantBlock];
    const __m256 vd = _mm256_set1_ps(ScaleF32(b.scale));
    for (int g = 0; g < 4; ++g) {
      _mm256_storeu_ps(dst + i + 8 * g, _mm256_mul_ps(Q4Codes8(b, g), vd));
    }
  }
  for (; i < n; ++i) dst[i] = Q4ValueRef(w, i);
}

void AxpyQ8Avx(float a, const BlockQ8_0* w, float* y, std::size_t n) {
  std::size_t i = 0;
  for (; i + kQuantBlock <= n; i += kQuantBlock) {
    const BlockQ8_0& b = w[i / kQuantBlock];
    // Keep the streamed weight blocks a few cache lines ahead of the
    // decode: the cvt/FMA work between block loads is long enough that
    // demand misses stop overlapping when w does not fit cache.
    _mm_prefetch(reinterpret_cast<const char*>(&b) + 256, _MM_HINT_T0);
    const __m256 vf = _mm256_set1_ps(a * ScaleF32(b.scale));
    for (int g = 0; g < 4; ++g) {
      __m256 vq = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_loadl_epi64(
          reinterpret_cast<const __m128i*>(b.qs + 8 * g))));
      __m256 vy = _mm256_loadu_ps(y + i + 8 * g);
      _mm256_storeu_ps(y + i + 8 * g, _mm256_fmadd_ps(vf, vq, vy));
    }
  }
  for (; i < n; ++i) y[i] = std::fma(a, Q8ValueRef(w, i), y[i]);
}

void AxpyQ4Avx(float a, const BlockQ4_0* w, float* y, std::size_t n) {
  const __m128i mask = _mm_set1_epi8(0x0F);
  const __m128i bias = _mm_set1_epi8(8);
  std::size_t i = 0;
  for (; i + kQuantBlock <= n; i += kQuantBlock) {
    const BlockQ4_0& b = w[i / kQuantBlock];
    _mm_prefetch(reinterpret_cast<const char*>(&b) + 256, _MM_HINT_T0);
    const __m256 vf = _mm256_set1_ps(a * ScaleF32(b.scale));
    // One 16-byte load decodes the whole block: lo nibbles are elements
    // 0..15, hi nibbles elements 16..31.
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b.qs));
    const __m128i lo = _mm_sub_epi8(_mm_and_si128(raw, mask), bias);
    const __m128i hi = _mm_sub_epi8(
        _mm_and_si128(_mm_srli_epi16(raw, 4), mask), bias);
    const __m128i grp[4] = {lo, _mm_srli_si128(lo, 8), hi,
                            _mm_srli_si128(hi, 8)};
    for (int g = 0; g < 4; ++g) {
      __m256 vq = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(grp[g]));
      __m256 vy = _mm256_loadu_ps(y + i + 8 * g);
      _mm256_storeu_ps(y + i + 8 * g, _mm256_fmadd_ps(vf, vq, vy));
    }
  }
  for (; i < n; ++i) y[i] = std::fma(a, Q4ValueRef(w, i), y[i]);
}

float DotQ8Avx(const float* a, const BlockQ8_0* b, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + kQuantBlock <= n; i += kQuantBlock) {
    const BlockQ8_0& blk = b[i / kQuantBlock];
    const __m256 vd = _mm256_set1_ps(ScaleF32(blk.scale));
    for (int g = 0; g < 4; ++g) {
      __m256 vw = _mm256_mul_ps(Q8Codes8(blk, g), vd);
      acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8 * g), vw, acc);
    }
  }
  float sum = ReduceAdd8(acc);
  for (; i < n; ++i) sum = std::fma(a[i], Q8ValueRef(b, i), sum);
  return sum;
}

float DotQ4Avx(const float* a, const BlockQ4_0* b, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + kQuantBlock <= n; i += kQuantBlock) {
    const BlockQ4_0& blk = b[i / kQuantBlock];
    const __m256 vd = _mm256_set1_ps(ScaleF32(blk.scale));
    for (int g = 0; g < 4; ++g) {
      __m256 vw = _mm256_mul_ps(Q4Codes8(blk, g), vd);
      acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8 * g), vw, acc);
    }
  }
  float sum = ReduceAdd8(acc);
  for (; i < n; ++i) sum = std::fma(a[i], Q4ValueRef(b, i), sum);
  return sum;
}

constexpr SimdOps kAvx2Ops = {
    .level = SimdLevel::kAvx2,
    .name = "avx2",
    .half_to_float_n = HalfToFloatAvx,
    .float_to_half_n = FloatToHalfAvx,
    .axpy_f32 = AxpyF32Avx,
    .axpy_f16 = AxpyF16Avx,
    .dot_f16 = DotF16Avx,
    .scale_add_f16 = ScaleAddF16Avx,
    .dot_f16_strip = DotF16StripAvx,
    .softmax_accum_f16 = SoftmaxAccumF16Avx,
    .dequant_q8 = DequantQ8Avx,
    .dequant_q4 = DequantQ4Avx,
    .axpy_q8 = AxpyQ8Avx,
    .axpy_q4 = AxpyQ4Avx,
    .dot_q8 = DotQ8Avx,
    .dot_q4 = DotQ4Avx,
};

}  // namespace

namespace simd_detail {
const SimdOps* Avx2OpsOrNull() { return &kAvx2Ops; }
}  // namespace simd_detail

}  // namespace punica

#else  // portable build: no avx2 table

namespace punica::simd_detail {
const SimdOps* Avx2OpsOrNull() { return nullptr; }
}  // namespace punica::simd_detail

#endif
