#include "tensor/gemm.h"

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "tensor/simd.h"
#include "util/check.h"

namespace punica {
namespace {

// Blocking parameters. A task is one (row block, column tile) pair; the k
// loop runs complete and in order inside the task, so the tile sizes affect
// only locality, never numerics. kRowBlock y-row stripes (kRowBlock ×
// kColTile × 4 B) stay L1-resident while each W k-row stripe is streamed
// once per row block.
constexpr int kRowBlock = 8;
constexpr int kColTile = 128;

// Column tiles must start on quant-block boundaries so the quantized
// kernels can address stripes as whole blocks.
static_assert(kColTile % kQuantBlock == 0);

inline std::int64_t CeilDiv(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

// Per-element-type glue for the blocked kernel: how a W k-stripe of
// `width` elements starting at column j_lo of row p is addressed, decoded
// into a task-local panel, and fused into a single-row axpy. The quantized
// stripes are addressed in blocks (j_lo is always a multiple of kColTile,
// hence block-aligned).
template <typename WElem>
struct WStripe;

template <>
struct WStripe<float> {
  static const float* Ptr(const float* w, std::int64_t /*stride*/,
                          std::int64_t p, int j_lo, std::int64_t n) {
    return w + p * n + j_lo;
  }
  static std::size_t Count(int k, int n) {
    return static_cast<std::size_t>(k) * n;
  }
  static std::size_t RowBytes(std::size_t width) {
    return width * sizeof(float);
  }
};

template <>
struct WStripe<f16> {
  static const f16* Ptr(const f16* w, std::int64_t /*stride*/, std::int64_t p,
                        int j_lo, std::int64_t n) {
    return w + p * n + j_lo;
  }
  static std::size_t Count(int k, int n) {
    return static_cast<std::size_t>(k) * n;
  }
  static std::size_t RowBytes(std::size_t width) { return width * sizeof(f16); }
  static void Decode(const SimdOps& ops, const f16* wp, float* panel,
                     std::size_t width) {
    ops.half_to_float_n(wp, panel, width);
  }
  static void Axpy(const SimdOps& ops, float a, const f16* wp, float* y,
                   std::size_t width) {
    ops.axpy_f16(a, wp, y, width);
  }
};

template <>
struct WStripe<BlockQ8_0> {
  static const BlockQ8_0* Ptr(const BlockQ8_0* w, std::int64_t bpr,
                              std::int64_t p, int j_lo, std::int64_t /*n*/) {
    return w + p * bpr + j_lo / kQuantBlock;
  }
  static std::size_t Count(int k, int n) {
    return static_cast<std::size_t>(k) * QuantBlocksPerRow(n);
  }
  static std::size_t RowBytes(std::size_t width) {
    return static_cast<std::size_t>(
               CeilDiv(static_cast<std::int64_t>(width), kQuantBlock)) *
           sizeof(BlockQ8_0);
  }
  static void Decode(const SimdOps& ops, const BlockQ8_0* wp, float* panel,
                     std::size_t width) {
    ops.dequant_q8(wp, panel, width);
  }
  static void Axpy(const SimdOps& ops, float a, const BlockQ8_0* wp, float* y,
                   std::size_t width) {
    ops.axpy_q8(a, wp, y, width);
  }
};

template <>
struct WStripe<BlockQ4_0> {
  static const BlockQ4_0* Ptr(const BlockQ4_0* w, std::int64_t bpr,
                              std::int64_t p, int j_lo, std::int64_t /*n*/) {
    return w + p * bpr + j_lo / kQuantBlock;
  }
  static std::size_t Count(int k, int n) {
    return static_cast<std::size_t>(k) * QuantBlocksPerRow(n);
  }
  static std::size_t RowBytes(std::size_t width) {
    return static_cast<std::size_t>(
               CeilDiv(static_cast<std::int64_t>(width), kQuantBlock)) *
           sizeof(BlockQ4_0);
  }
  static void Decode(const SimdOps& ops, const BlockQ4_0* wp, float* panel,
                     std::size_t width) {
    ops.dequant_q4(wp, panel, width);
  }
  static void Axpy(const SimdOps& ops, float a, const BlockQ4_0* wp, float* y,
                   std::size_t width) {
    ops.axpy_q4(a, wp, y, width);
  }
};

// Software-prefetch the W stripe a few k-rows ahead of the one being
// processed. A column tile narrower than the matrix turns W traffic into
// short bursts separated by an n-element jump; once the decode/FMA work
// between loads fills the out-of-order window, the hardware streamer stops
// running ahead across those jumps and the k loop goes demand-miss-bound
// (~1 GB/s observed at the m=8/k=4096/n=4096 shape when W rotates past the
// LLC, vs ~7 GB/s for the same stride pattern with overlapped misses).
// Pure hint: never touches numerics.
constexpr int kPrefetchRowsAhead = 16;

template <typename Stripe, typename WElem>
inline void PrefetchStripe(const WElem* wp, std::size_t width) {
  const char* p = reinterpret_cast<const char*>(wp);
  const std::size_t bytes = Stripe::RowBytes(width);
  for (std::size_t off = 0; off < bytes; off += 64) __builtin_prefetch(p + off);
}

// Shared blocked micro-kernel: y[rb, jt] (+)= x[rb, :] @ w[:, jt] with each
// element's reduction in ascending-k order. WElem is float, f16, or a
// quant block type. A W k-stripe of the tile is decoded into a task-local
// panel once per row block and reused by all kRowBlock rows (the scalar
// kernel used to re-decode it per row); the j loop is a SIMD axpy across
// independent output columns, which leaves every element's summation order
// untouched. No sparsity branch here: on the dense activations this path
// serves, testing every x value poisons the vector inner loop and
// mispredicts — row-granular skipping lives in the Gemv kernels where a
// hit elides a whole stripe.
template <typename WElem, bool kAccumulate>
void GemmBlocked(std::span<const float> x, std::span<const WElem> w,
                 std::span<float> y, int m, int k, int n,
                 const ComputeContext& ctx) {
  using Stripe = WStripe<WElem>;
  PUNICA_CHECK(x.size() == static_cast<std::size_t>(m) * k);
  PUNICA_CHECK(w.size() == Stripe::Count(k, n));
  PUNICA_CHECK(y.size() == static_cast<std::size_t>(m) * n);
  if (m == 0 || n == 0) return;

  const SimdOps& ops = Simd();
  const std::int64_t bpr = QuantBlocksPerRow(n);
  const std::int64_t row_blocks = CeilDiv(m, kRowBlock);
  const std::int64_t col_tiles = CeilDiv(n, kColTile);
  ctx.ParallelFor(row_blocks * col_tiles, 1, [&](std::int64_t lo,
                                                 std::int64_t hi) {
    alignas(64) float panel[kColTile];
    for (std::int64_t task = lo; task < hi; ++task) {
      const int i_lo = static_cast<int>(task / col_tiles) * kRowBlock;
      const int i_hi = std::min(m, i_lo + kRowBlock);
      const int j_lo = static_cast<int>(task % col_tiles) * kColTile;
      const int j_hi = std::min(n, j_lo + kColTile);
      const auto tile_w = static_cast<std::size_t>(j_hi - j_lo);
      if constexpr (!kAccumulate) {
        for (int i = i_lo; i < i_hi; ++i) {
          float* yi = &y[static_cast<std::size_t>(i) * n];
          std::fill(yi + j_lo, yi + j_hi, 0.0f);
        }
      }
      if constexpr (!std::is_same_v<WElem, float>) {
        // Single-row block (m == 1 projections, row-count tails): the panel
        // round-trip only pays when rows share the decode, so fuse decode
        // and FMA into one pass — the identical operation sequence, hence
        // identical bits on each dispatch path.
        if (i_hi - i_lo == 1) {
          const float* xi = &x[static_cast<std::size_t>(i_lo) * k];
          float* yi = &y[static_cast<std::size_t>(i_lo) * n + j_lo];
          for (int p = 0; p < k; ++p) {
            if (p + kPrefetchRowsAhead < k) {
              PrefetchStripe<Stripe>(
                  Stripe::Ptr(w.data(), bpr, p + kPrefetchRowsAhead, j_lo, n),
                  tile_w);
            }
            Stripe::Axpy(ops, xi[p], Stripe::Ptr(w.data(), bpr, p, j_lo, n),
                         yi, tile_w);
          }
          continue;
        }
      }
      for (int p = 0; p < k; ++p) {
        if (p + kPrefetchRowsAhead < k) {
          PrefetchStripe<Stripe>(
              Stripe::Ptr(w.data(), bpr, p + kPrefetchRowsAhead, j_lo, n),
              tile_w);
        }
        const WElem* wp = Stripe::Ptr(w.data(), bpr, p, j_lo, n);
        const float* wf;
        if constexpr (std::is_same_v<WElem, float>) {
          wf = wp;
        } else {
          Stripe::Decode(ops, wp, panel, tile_w);
          wf = panel;
        }
        for (int i = i_lo; i < i_hi; ++i) {
          ops.axpy_f32(x[static_cast<std::size_t>(i) * k + p], wf,
                       &y[static_cast<std::size_t>(i) * n + j_lo], tile_w);
        }
      }
    }
  });
}

// Single-row y += x @ W over any decoded element type, parallel over column
// tiles, with the zero-activation stripe skip.
template <typename WElem>
void GemvBlocked(std::span<const float> x, std::span<const WElem> w,
                 std::span<float> y, int k, int n, const ComputeContext& ctx) {
  using Stripe = WStripe<WElem>;
  PUNICA_CHECK(x.size() == static_cast<std::size_t>(k));
  PUNICA_CHECK(w.size() == Stripe::Count(k, n));
  PUNICA_CHECK(y.size() == static_cast<std::size_t>(n));
  if (n == 0) return;
  const SimdOps& ops = Simd();
  const std::int64_t bpr = QuantBlocksPerRow(n);
  // One tile per thread, as wide as possible (block-aligned so quantized
  // stripes stay whole blocks). Narrow tiles re-walk the row-major W with a
  // multi-KB stride between consecutive k rows, which defeats the hardware
  // prefetcher and leaves the single-row kernel latency-bound; a
  // thread-wide tile streams its W columns near-sequentially. The width
  // never affects numerics: each y element's k-reduction runs complete and
  // ascending inside its one tile at any width, so outputs stay
  // bit-identical across thread counts.
  const std::int64_t threads = std::max(1, ctx.num_threads());
  const std::int64_t tile_cols =
      CeilDiv(CeilDiv(static_cast<std::int64_t>(n), threads), kQuantBlock) *
      kQuantBlock;
  const std::int64_t col_tiles = CeilDiv(n, tile_cols);
  ctx.ParallelFor(col_tiles, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t tile = lo; tile < hi; ++tile) {
      const int j_lo = static_cast<int>(tile * tile_cols);
      const int j_hi = static_cast<int>(
          std::min<std::int64_t>(n, j_lo + tile_cols));
      const auto tile_w = static_cast<std::size_t>(j_hi - j_lo);
      for (int p = 0; p < k; ++p) {
        const float xv = x[static_cast<std::size_t>(p)];
        // Row-granular sparsity skip: with one x row, a zero activation
        // elides the decode + FMA of an entire W stripe, which pays (unlike
        // the per-row test inside the dense GEMM block).
        if (xv == 0.0f) continue;
        Stripe::Axpy(ops, xv, Stripe::Ptr(w.data(), bpr, p, j_lo, n),
                     &y[static_cast<std::size_t>(j_lo)], tile_w);
      }
    }
  });
}

}  // namespace

void GemmSet(std::span<const float> x, std::span<const float> w,
             std::span<float> y, int m, int k, int n,
             const ComputeContext& ctx) {
  GemmBlocked<float, /*kAccumulate=*/false>(x, w, y, m, k, n, ctx);
}

void GemmSetF16W(std::span<const float> x, std::span<const f16> w,
                 std::span<float> y, int m, int k, int n,
                 const ComputeContext& ctx) {
  GemmBlocked<f16, /*kAccumulate=*/false>(x, w, y, m, k, n, ctx);
}

void GemmAccF16W(std::span<const float> x, std::span<const f16> w,
                 std::span<float> y, int m, int k, int n,
                 const ComputeContext& ctx) {
  GemmBlocked<f16, /*kAccumulate=*/true>(x, w, y, m, k, n, ctx);
}

void GemvAccF16W(std::span<const float> x, std::span<const f16> w,
                 std::span<float> y, int k, int n,
                 const ComputeContext& ctx) {
  GemvBlocked<f16>(x, w, y, k, n, ctx);
}

void GemmSetQW(std::span<const float> x, std::span<const BlockQ8_0> w,
               std::span<float> y, int m, int k, int n,
               const ComputeContext& ctx) {
  GemmBlocked<BlockQ8_0, /*kAccumulate=*/false>(x, w, y, m, k, n, ctx);
}

void GemmSetQW(std::span<const float> x, std::span<const BlockQ4_0> w,
               std::span<float> y, int m, int k, int n,
               const ComputeContext& ctx) {
  GemmBlocked<BlockQ4_0, /*kAccumulate=*/false>(x, w, y, m, k, n, ctx);
}

void GemmAccQW(std::span<const float> x, std::span<const BlockQ8_0> w,
               std::span<float> y, int m, int k, int n,
               const ComputeContext& ctx) {
  GemmBlocked<BlockQ8_0, /*kAccumulate=*/true>(x, w, y, m, k, n, ctx);
}

void GemmAccQW(std::span<const float> x, std::span<const BlockQ4_0> w,
               std::span<float> y, int m, int k, int n,
               const ComputeContext& ctx) {
  GemmBlocked<BlockQ4_0, /*kAccumulate=*/true>(x, w, y, m, k, n, ctx);
}

void GemvAccQW(std::span<const float> x, std::span<const BlockQ8_0> w,
               std::span<float> y, int k, int n, const ComputeContext& ctx) {
  GemvBlocked<BlockQ8_0>(x, w, y, k, n, ctx);
}

void GemvAccQW(std::span<const float> x, std::span<const BlockQ4_0> w,
               std::span<float> y, int k, int n, const ComputeContext& ctx) {
  GemvBlocked<BlockQ4_0>(x, w, y, k, n, ctx);
}

namespace {

// Shape guard shared by the WeightMatrix dispatch wrappers.
void CheckWShape(const WeightMatrix& w, int k, int n) {
  PUNICA_CHECK(w.rows() == k);
  PUNICA_CHECK(w.cols() == n);
}

}  // namespace

void GemmSetW(std::span<const float> x, const WeightMatrix& w,
              std::span<float> y, int m, int k, int n,
              const ComputeContext& ctx) {
  CheckWShape(w, k, n);
  switch (w.dtype()) {
    case WeightDtype::kF16:
      GemmSetF16W(x, w.f16_data(), y, m, k, n, ctx);
      return;
    case WeightDtype::kQ8_0:
      GemmSetQW(x, w.q8_data(), y, m, k, n, ctx);
      return;
    case WeightDtype::kQ4_0:
      GemmSetQW(x, w.q4_data(), y, m, k, n, ctx);
      return;
  }
}

void GemmAccW(std::span<const float> x, const WeightMatrix& w,
              std::span<float> y, int m, int k, int n,
              const ComputeContext& ctx) {
  CheckWShape(w, k, n);
  switch (w.dtype()) {
    case WeightDtype::kF16:
      GemmAccF16W(x, w.f16_data(), y, m, k, n, ctx);
      return;
    case WeightDtype::kQ8_0:
      GemmAccQW(x, w.q8_data(), y, m, k, n, ctx);
      return;
    case WeightDtype::kQ4_0:
      GemmAccQW(x, w.q4_data(), y, m, k, n, ctx);
      return;
  }
}

void GemvAccW(std::span<const float> x, const WeightMatrix& w,
              std::span<float> y, int k, int n, const ComputeContext& ctx) {
  CheckWShape(w, k, n);
  switch (w.dtype()) {
    case WeightDtype::kF16:
      GemvAccF16W(x, w.f16_data(), y, k, n, ctx);
      return;
    case WeightDtype::kQ8_0:
      GemvAccQW(x, w.q8_data(), y, k, n, ctx);
      return;
    case WeightDtype::kQ4_0:
      GemvAccQW(x, w.q4_data(), y, k, n, ctx);
      return;
  }
}

void SoftmaxInPlace(std::span<float> row) {
  if (row.empty()) return;
  float mx = *std::max_element(row.begin(), row.end());
  float sum = 0.0f;
  for (auto& v : row) {
    v = std::exp(v - mx);
    sum += v;
  }
  float inv = 1.0f / sum;
  for (auto& v : row) v *= inv;
}

void RmsNormRow(std::span<const float> x, std::span<const f16> weight,
                std::span<float> out, float eps) {
  PUNICA_CHECK(x.size() == weight.size());
  PUNICA_CHECK(x.size() == out.size());
  double ss = 0.0;
  for (float v : x) ss += static_cast<double>(v) * v;
  float scale = 1.0f / std::sqrt(static_cast<float>(
                           ss / static_cast<double>(x.size())) +
                       eps);
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = x[i] * scale * weight[i].ToFloat();
  }
}

void SiluInPlace(std::span<float> xs) {
  for (auto& v : xs) {
    v = v / (1.0f + std::exp(-v));
  }
}

}  // namespace punica
