#include "tensor/gemm.h"

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "tensor/simd.h"
#include "util/check.h"

namespace punica {
namespace {

// Blocking parameters. A task is one (row block, column tile) pair; the k
// loop runs complete and in order inside the task, so the tile sizes affect
// only locality, never numerics. kRowBlock y-row stripes (kRowBlock ×
// kColTile × 4 B) stay L1-resident while each W k-row stripe is streamed
// once per row block.
constexpr int kRowBlock = 8;
constexpr int kColTile = 128;

inline std::int64_t CeilDiv(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

// Shared blocked micro-kernel: y[rb, jt] (+)= x[rb, :] @ w[:, jt] with each
// element's reduction in ascending-k order. WElem is float or f16. An f16
// W k-stripe of the tile is decoded into a task-local panel once per row
// block and reused by all kRowBlock rows (the scalar kernel used to re-decode
// it per row); the j loop is a SIMD axpy across independent output columns,
// which leaves every element's summation order untouched. No sparsity
// branch here: on the dense activations this path serves, testing every
// x value poisons the vector inner loop and mispredicts — row-granular
// skipping lives in GemvAccF16W where a hit elides a whole stripe.
template <typename WElem, bool kAccumulate>
void GemmBlocked(std::span<const float> x, std::span<const WElem> w,
                 std::span<float> y, int m, int k, int n,
                 const ComputeContext& ctx) {
  PUNICA_CHECK(x.size() == static_cast<std::size_t>(m) * k);
  PUNICA_CHECK(w.size() == static_cast<std::size_t>(k) * n);
  PUNICA_CHECK(y.size() == static_cast<std::size_t>(m) * n);
  if (m == 0 || n == 0) return;

  const SimdOps& ops = Simd();
  const std::int64_t row_blocks = CeilDiv(m, kRowBlock);
  const std::int64_t col_tiles = CeilDiv(n, kColTile);
  ctx.ParallelFor(row_blocks * col_tiles, 1, [&](std::int64_t lo,
                                                 std::int64_t hi) {
    alignas(32) float panel[kColTile];
    for (std::int64_t task = lo; task < hi; ++task) {
      const int i_lo = static_cast<int>(task / col_tiles) * kRowBlock;
      const int i_hi = std::min(m, i_lo + kRowBlock);
      const int j_lo = static_cast<int>(task % col_tiles) * kColTile;
      const int j_hi = std::min(n, j_lo + kColTile);
      const auto tile_w = static_cast<std::size_t>(j_hi - j_lo);
      if constexpr (!kAccumulate) {
        for (int i = i_lo; i < i_hi; ++i) {
          float* yi = &y[static_cast<std::size_t>(i) * n];
          std::fill(yi + j_lo, yi + j_hi, 0.0f);
        }
      }
      if constexpr (std::is_same_v<WElem, f16>) {
        // Single-row block (m == 1 projections, row-count tails): the panel
        // round-trip only pays when rows share the decode, so fuse decode
        // and FMA into one pass — the identical operation sequence, hence
        // identical bits on both dispatch paths.
        if (i_hi - i_lo == 1) {
          const float* xi = &x[static_cast<std::size_t>(i_lo) * k];
          float* yi = &y[static_cast<std::size_t>(i_lo) * n + j_lo];
          for (int p = 0; p < k; ++p) {
            ops.axpy_f16(xi[p], &w[static_cast<std::size_t>(p) * n + j_lo],
                         yi, tile_w);
          }
          continue;
        }
      }
      for (int p = 0; p < k; ++p) {
        const WElem* wp = &w[static_cast<std::size_t>(p) * n + j_lo];
        const float* wf;
        if constexpr (std::is_same_v<WElem, f16>) {
          ops.half_to_float_n(wp, panel, tile_w);
          wf = panel;
        } else {
          wf = wp;
        }
        for (int i = i_lo; i < i_hi; ++i) {
          ops.axpy_f32(x[static_cast<std::size_t>(i) * k + p], wf,
                       &y[static_cast<std::size_t>(i) * n + j_lo], tile_w);
        }
      }
    }
  });
}

}  // namespace

void GemmSet(std::span<const float> x, std::span<const float> w,
             std::span<float> y, int m, int k, int n,
             const ComputeContext& ctx) {
  GemmBlocked<float, /*kAccumulate=*/false>(x, w, y, m, k, n, ctx);
}

void GemmSetF16W(std::span<const float> x, std::span<const f16> w,
                 std::span<float> y, int m, int k, int n,
                 const ComputeContext& ctx) {
  GemmBlocked<f16, /*kAccumulate=*/false>(x, w, y, m, k, n, ctx);
}

void GemmAccF16W(std::span<const float> x, std::span<const f16> w,
                 std::span<float> y, int m, int k, int n,
                 const ComputeContext& ctx) {
  GemmBlocked<f16, /*kAccumulate=*/true>(x, w, y, m, k, n, ctx);
}

void GemvAccF16W(std::span<const float> x, std::span<const f16> w,
                 std::span<float> y, int k, int n,
                 const ComputeContext& ctx) {
  PUNICA_CHECK(x.size() == static_cast<std::size_t>(k));
  PUNICA_CHECK(w.size() == static_cast<std::size_t>(k) * n);
  PUNICA_CHECK(y.size() == static_cast<std::size_t>(n));
  if (n == 0) return;
  const SimdOps& ops = Simd();
  const std::int64_t col_tiles = CeilDiv(n, kColTile);
  ctx.ParallelFor(col_tiles, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t tile = lo; tile < hi; ++tile) {
      const int j_lo = static_cast<int>(tile) * kColTile;
      const int j_hi = std::min(n, j_lo + kColTile);
      const auto tile_w = static_cast<std::size_t>(j_hi - j_lo);
      for (int p = 0; p < k; ++p) {
        const float xv = x[static_cast<std::size_t>(p)];
        // Row-granular sparsity skip: with one x row, a zero activation
        // elides the decode + FMA of an entire W stripe, which pays (unlike
        // the per-row test inside the dense GEMM block).
        if (xv == 0.0f) continue;
        ops.axpy_f16(xv, &w[static_cast<std::size_t>(p) * n + j_lo],
                     &y[static_cast<std::size_t>(j_lo)], tile_w);
      }
    }
  });
}

void SoftmaxInPlace(std::span<float> row) {
  if (row.empty()) return;
  float mx = *std::max_element(row.begin(), row.end());
  float sum = 0.0f;
  for (auto& v : row) {
    v = std::exp(v - mx);
    sum += v;
  }
  float inv = 1.0f / sum;
  for (auto& v : row) v *= inv;
}

void RmsNormRow(std::span<const float> x, std::span<const f16> weight,
                std::span<float> out, float eps) {
  PUNICA_CHECK(x.size() == weight.size());
  PUNICA_CHECK(x.size() == out.size());
  double ss = 0.0;
  for (float v : x) ss += static_cast<double>(v) * v;
  float scale = 1.0f / std::sqrt(static_cast<float>(
                           ss / static_cast<double>(x.size())) +
                       eps);
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = x[i] * scale * weight[i].ToFloat();
  }
}

void SiluInPlace(std::span<float> xs) {
  for (auto& v : xs) {
    v = v / (1.0f + std::exp(-v));
  }
}

}  // namespace punica
