#include "tensor/gemm.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace punica {

void Gemm(std::span<const float> x, std::span<const float> w,
          std::span<float> y, int m, int k, int n) {
  PUNICA_CHECK(x.size() == static_cast<std::size_t>(m) * k);
  PUNICA_CHECK(w.size() == static_cast<std::size_t>(k) * n);
  PUNICA_CHECK(y.size() == static_cast<std::size_t>(m) * n);
  std::fill(y.begin(), y.end(), 0.0f);
  for (int i = 0; i < m; ++i) {
    const float* xi = &x[static_cast<std::size_t>(i) * k];
    float* yi = &y[static_cast<std::size_t>(i) * n];
    for (int p = 0; p < k; ++p) {
      float xv = xi[p];
      if (xv == 0.0f) continue;
      const float* wp = &w[static_cast<std::size_t>(p) * n];
      for (int j = 0; j < n; ++j) {
        yi[j] += xv * wp[j];
      }
    }
  }
}

void GemmAddF16W(std::span<const float> x, std::span<const f16> w,
                 std::span<float> y, int m, int k, int n) {
  PUNICA_CHECK(x.size() == static_cast<std::size_t>(m) * k);
  PUNICA_CHECK(w.size() == static_cast<std::size_t>(k) * n);
  PUNICA_CHECK(y.size() == static_cast<std::size_t>(m) * n);
  for (int i = 0; i < m; ++i) {
    GemvAddF16W(x.subspan(static_cast<std::size_t>(i) * k,
                          static_cast<std::size_t>(k)),
                w,
                y.subspan(static_cast<std::size_t>(i) * n,
                          static_cast<std::size_t>(n)),
                k, n);
  }
}

void GemvAddF16W(std::span<const float> x, std::span<const f16> w,
                 std::span<float> y, int k, int n) {
  PUNICA_CHECK(x.size() == static_cast<std::size_t>(k));
  PUNICA_CHECK(w.size() == static_cast<std::size_t>(k) * n);
  PUNICA_CHECK(y.size() == static_cast<std::size_t>(n));
  for (int p = 0; p < k; ++p) {
    float xv = x[static_cast<std::size_t>(p)];
    if (xv == 0.0f) continue;
    const f16* wp = &w[static_cast<std::size_t>(p) * n];
    for (int j = 0; j < n; ++j) {
      y[static_cast<std::size_t>(j)] += xv * wp[j].ToFloat();
    }
  }
}

void SoftmaxInPlace(std::span<float> row) {
  if (row.empty()) return;
  float mx = *std::max_element(row.begin(), row.end());
  float sum = 0.0f;
  for (auto& v : row) {
    v = std::exp(v - mx);
    sum += v;
  }
  float inv = 1.0f / sum;
  for (auto& v : row) v *= inv;
}

void RmsNormRow(std::span<const float> x, std::span<const f16> weight,
                std::span<float> out, float eps) {
  PUNICA_CHECK(x.size() == weight.size());
  PUNICA_CHECK(x.size() == out.size());
  double ss = 0.0;
  for (float v : x) ss += static_cast<double>(v) * v;
  float scale = 1.0f / std::sqrt(static_cast<float>(
                           ss / static_cast<double>(x.size())) +
                       eps);
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = x[i] * scale * weight[i].ToFloat();
  }
}

void SiluInPlace(std::span<float> xs) {
  for (auto& v : xs) {
    v = v / (1.0f + std::exp(-v));
  }
}

}  // namespace punica
