#include "tensor/gemm.h"

#include <algorithm>
#include <cmath>
#include <type_traits>

#include "util/check.h"

namespace punica {
namespace {

// Blocking parameters. A task is one (row block, column tile) pair; the k
// loop runs complete and in order inside the task, so the tile sizes affect
// only locality, never numerics. kRowBlock y-row stripes (kRowBlock ×
// kColTile × 4 B) stay L1-resident while each W k-row stripe is streamed
// once per row block.
constexpr int kRowBlock = 8;
constexpr int kColTile = 128;

inline std::int64_t CeilDiv(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

// Shared blocked micro-kernel: y[rb, jt] (+)= x[rb, :] @ w[:, jt] with the
// reduction in ascending-k order. WElem is float or f16.
template <typename WElem, bool kAccumulate>
void GemmBlocked(std::span<const float> x, std::span<const WElem> w,
                 std::span<float> y, int m, int k, int n,
                 const ComputeContext& ctx) {
  PUNICA_CHECK(x.size() == static_cast<std::size_t>(m) * k);
  PUNICA_CHECK(w.size() == static_cast<std::size_t>(k) * n);
  PUNICA_CHECK(y.size() == static_cast<std::size_t>(m) * n);
  if (m == 0 || n == 0) return;

  const std::int64_t row_blocks = CeilDiv(m, kRowBlock);
  const std::int64_t col_tiles = CeilDiv(n, kColTile);
  ctx.ParallelFor(row_blocks * col_tiles, 1, [&](std::int64_t lo,
                                                 std::int64_t hi) {
    for (std::int64_t task = lo; task < hi; ++task) {
      const int i_lo = static_cast<int>(task / col_tiles) * kRowBlock;
      const int i_hi = std::min(m, i_lo + kRowBlock);
      const int j_lo = static_cast<int>(task % col_tiles) * kColTile;
      const int j_hi = std::min(n, j_lo + kColTile);
      if constexpr (!kAccumulate) {
        for (int i = i_lo; i < i_hi; ++i) {
          float* yi = &y[static_cast<std::size_t>(i) * n];
          std::fill(yi + j_lo, yi + j_hi, 0.0f);
        }
      }
      for (int p = 0; p < k; ++p) {
        const WElem* wp = &w[static_cast<std::size_t>(p) * n];
        for (int i = i_lo; i < i_hi; ++i) {
          float xv = x[static_cast<std::size_t>(i) * k + p];
          if (xv == 0.0f) continue;
          float* yi = &y[static_cast<std::size_t>(i) * n];
          for (int j = j_lo; j < j_hi; ++j) {
            if constexpr (std::is_same_v<WElem, f16>) {
              yi[j] += xv * wp[j].ToFloat();
            } else {
              yi[j] += xv * wp[j];
            }
          }
        }
      }
    }
  });
}

}  // namespace

void GemmSet(std::span<const float> x, std::span<const float> w,
             std::span<float> y, int m, int k, int n,
             const ComputeContext& ctx) {
  GemmBlocked<float, /*kAccumulate=*/false>(x, w, y, m, k, n, ctx);
}

void GemmSetF16W(std::span<const float> x, std::span<const f16> w,
                 std::span<float> y, int m, int k, int n,
                 const ComputeContext& ctx) {
  GemmBlocked<f16, /*kAccumulate=*/false>(x, w, y, m, k, n, ctx);
}

void GemmAccF16W(std::span<const float> x, std::span<const f16> w,
                 std::span<float> y, int m, int k, int n,
                 const ComputeContext& ctx) {
  GemmBlocked<f16, /*kAccumulate=*/true>(x, w, y, m, k, n, ctx);
}

void GemvAccF16W(std::span<const float> x, std::span<const f16> w,
                 std::span<float> y, int k, int n,
                 const ComputeContext& ctx) {
  GemmBlocked<f16, /*kAccumulate=*/true>(x, w, y, 1, k, n, ctx);
}

void SoftmaxInPlace(std::span<float> row) {
  if (row.empty()) return;
  float mx = *std::max_element(row.begin(), row.end());
  float sum = 0.0f;
  for (auto& v : row) {
    v = std::exp(v - mx);
    sum += v;
  }
  float inv = 1.0f / sum;
  for (auto& v : row) v *= inv;
}

void RmsNormRow(std::span<const float> x, std::span<const f16> weight,
                std::span<float> out, float eps) {
  PUNICA_CHECK(x.size() == weight.size());
  PUNICA_CHECK(x.size() == out.size());
  double ss = 0.0;
  for (float v : x) ss += static_cast<double>(v) * v;
  float scale = 1.0f / std::sqrt(static_cast<float>(
                           ss / static_cast<double>(x.size())) +
                       eps);
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = x[i] * scale * weight[i].ToFloat();
  }
}

void SiluInPlace(std::span<float> xs) {
  for (auto& v : xs) {
    v = v / (1.0f + std::exp(-v));
  }
}

}  // namespace punica
