#include "tensor/quant.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/half.h"
#include "util/check.h"

namespace punica {
namespace {

// Quantizes one group of up to kQuantBlock values. Pure scalar and
// branch-deterministic: the result depends only on the input bits, never on
// the dispatch level or thread count.
BlockQ8_0 QuantizeBlockQ8(const float* x, std::int64_t n) {
  BlockQ8_0 b{};
  float amax = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) amax = std::max(amax, std::fabs(x[i]));
  const f16 d(amax / 127.0f);
  b.scale = d;
  const float df = d.ToFloat();
  if (df == 0.0f) return b;  // all-zero or f16-underflowing group
  const float inv = 1.0f / df;
  for (std::int64_t i = 0; i < n; ++i) {
    const float q = std::nearbyint(x[i] * inv);
    b.qs[i] = static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
  }
  return b;
}

BlockQ4_0 QuantizeBlockQ4(const float* x, std::int64_t n) {
  BlockQ4_0 b{};
  // llama.cpp convention: keep the SIGN of the largest-magnitude value so it
  // quantizes exactly to code 0 (value -8*d).
  float amax = 0.0f;
  float maxv = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) {
    const float a = std::fabs(x[i]);
    if (a > amax) {
      amax = a;
      maxv = x[i];
    }
  }
  const f16 d(maxv / -8.0f);
  b.scale = d;
  const float df = d.ToFloat();
  if (df == 0.0f) {
    // Zero scale: every code decodes to 0 regardless of the nibble, but
    // store the centered code anyway so dequant(q - 8) * 0 == 0 exactly.
    std::memset(b.qs, 0x88, sizeof(b.qs));
    return b;
  }
  const float inv = 1.0f / df;
  std::uint8_t codes[kQuantBlock] = {};
  for (std::int64_t i = 0; i < n; ++i) {
    const float q = std::nearbyint(x[i] * inv) + 8.0f;
    codes[i] = static_cast<std::uint8_t>(std::clamp(q, 0.0f, 15.0f));
  }
  for (std::int64_t i = n; i < kQuantBlock; ++i) codes[i] = 8;  // pad = 0.0
  for (std::int64_t j = 0; j < kQuantBlock / 2; ++j) {
    b.qs[j] = static_cast<std::uint8_t>(codes[j] |
                                        (codes[j + kQuantBlock / 2] << 4));
  }
  return b;
}

}  // namespace

const char* WeightDtypeName(WeightDtype dtype) {
  switch (dtype) {
    case WeightDtype::kF16:
      return "f16";
    case WeightDtype::kQ8_0:
      return "q8_0";
    case WeightDtype::kQ4_0:
      return "q4_0";
  }
  return "?";
}

bool ParseWeightDtype(std::string_view s, WeightDtype* out) {
  if (s == "f16" || s == "fp16" || s == "half") {
    *out = WeightDtype::kF16;
  } else if (s == "q8_0" || s == "q8") {
    *out = WeightDtype::kQ8_0;
  } else if (s == "q4_0" || s == "q4") {
    *out = WeightDtype::kQ4_0;
  } else {
    return false;
  }
  return true;
}

std::int64_t WeightBytesFor(std::int64_t params, WeightDtype dtype) {
  switch (dtype) {
    case WeightDtype::kF16:
      return params * 2;
    case WeightDtype::kQ8_0:
      return QuantBlocksPerRow(params) *
             static_cast<std::int64_t>(sizeof(BlockQ8_0));
    case WeightDtype::kQ4_0:
      return QuantBlocksPerRow(params) *
             static_cast<std::int64_t>(sizeof(BlockQ4_0));
  }
  return params * 2;
}

void QuantizeRowQ8(std::span<const float> src, BlockQ8_0* dst) {
  const std::int64_t n = static_cast<std::int64_t>(src.size());
  const std::int64_t blocks = QuantBlocksPerRow(n);
  for (std::int64_t b = 0; b < blocks; ++b) {
    const std::int64_t lo = b * kQuantBlock;
    dst[b] = QuantizeBlockQ8(src.data() + lo, std::min(kQuantBlock, n - lo));
  }
}

void QuantizeRowQ4(std::span<const float> src, BlockQ4_0* dst) {
  const std::int64_t n = static_cast<std::int64_t>(src.size());
  const std::int64_t blocks = QuantBlocksPerRow(n);
  for (std::int64_t b = 0; b < blocks; ++b) {
    const std::int64_t lo = b * kQuantBlock;
    dst[b] = QuantizeBlockQ4(src.data() + lo, std::min(kQuantBlock, n - lo));
  }
}

void DequantRowQ8Ref(const BlockQ8_0* src, std::span<float> dst) {
  const std::int64_t n = static_cast<std::int64_t>(dst.size());
  for (std::int64_t i = 0; i < n; ++i) {
    const BlockQ8_0& b = src[i / kQuantBlock];
    dst[i] = b.scale.ToFloat() * static_cast<float>(b.qs[i % kQuantBlock]);
  }
}

void DequantRowQ4Ref(const BlockQ4_0* src, std::span<float> dst) {
  const std::int64_t n = static_cast<std::int64_t>(dst.size());
  for (std::int64_t i = 0; i < n; ++i) {
    const BlockQ4_0& b = src[i / kQuantBlock];
    const std::int64_t e = i % kQuantBlock;
    const std::uint8_t byte = b.qs[e % (kQuantBlock / 2)];
    const int code = (e < kQuantBlock / 2) ? (byte & 0x0F) : (byte >> 4);
    dst[i] = b.scale.ToFloat() * static_cast<float>(code - 8);
  }
}

WeightMatrix WeightMatrix::FromF16(Tensor<f16> w, WeightDtype dtype) {
  PUNICA_CHECK_MSG(w.ndim() == 2, "WeightMatrix wants a 2-D tensor");
  WeightMatrix m;
  m.dtype_ = dtype;
  m.rows_ = w.dim(0);
  m.cols_ = w.dim(1);
  if (dtype == WeightDtype::kF16) {
    m.f16_ = std::move(w);
    return m;
  }
  m.bpr_ = QuantBlocksPerRow(m.cols_);
  std::vector<float> row(static_cast<std::size_t>(m.cols_));
  if (dtype == WeightDtype::kQ8_0) {
    m.q8_.resize(static_cast<std::size_t>(m.rows_ * m.bpr_));
    for (std::int64_t r = 0; r < m.rows_; ++r) {
      HalfToFloatN(w.row(r), row);
      QuantizeRowQ8(row, m.q8_.data() + r * m.bpr_);
    }
  } else {
    m.q4_.resize(static_cast<std::size_t>(m.rows_ * m.bpr_));
    for (std::int64_t r = 0; r < m.rows_; ++r) {
      HalfToFloatN(w.row(r), row);
      QuantizeRowQ4(row, m.q4_.data() + r * m.bpr_);
    }
  }
  return m;
}

std::size_t WeightMatrix::byte_size() const {
  switch (dtype_) {
    case WeightDtype::kF16:
      return static_cast<std::size_t>(rows_ * cols_) * sizeof(f16);
    case WeightDtype::kQ8_0:
      return q8_.size() * sizeof(BlockQ8_0);
    case WeightDtype::kQ4_0:
      return q4_.size() * sizeof(BlockQ4_0);
  }
  return 0;
}

std::span<const f16> WeightMatrix::f16_data() const {
  return f16_tensor().data();
}

const Tensor<f16>& WeightMatrix::f16_tensor() const {
  PUNICA_CHECK_MSG(dtype_ == WeightDtype::kF16,
                   "f16 view of a quantized WeightMatrix");
  return f16_;
}

std::span<const BlockQ8_0> WeightMatrix::q8_data() const {
  PUNICA_CHECK_MSG(dtype_ == WeightDtype::kQ8_0, "q8 view of a non-q8 matrix");
  return q8_;
}

std::span<const BlockQ4_0> WeightMatrix::q4_data() const {
  PUNICA_CHECK_MSG(dtype_ == WeightDtype::kQ4_0, "q4 view of a non-q4 matrix");
  return q4_;
}

WeightMatrix WeightMatrix::SliceRows(std::int64_t row_begin,
                                     std::int64_t row_end) const {
  PUNICA_CHECK_MSG(row_begin >= 0 && row_end <= rows_ && row_begin < row_end,
                   "row slice out of range");
  WeightMatrix m;
  m.dtype_ = dtype_;
  m.rows_ = row_end - row_begin;
  m.cols_ = cols_;
  m.bpr_ = bpr_;
  switch (dtype_) {
    case WeightDtype::kF16: {
      m.f16_ = Tensor<f16>({m.rows_, cols_});
      for (std::int64_t r = row_begin; r < row_end; ++r) {
        auto src = f16_.row(r);
        auto dst = m.f16_.row(r - row_begin);
        std::copy(src.begin(), src.end(), dst.begin());
      }
      break;
    }
    case WeightDtype::kQ8_0:
      // Whole block rows: bit-exact at any row boundary.
      m.q8_.assign(q8_.begin() + row_begin * bpr_, q8_.begin() + row_end * bpr_);
      break;
    case WeightDtype::kQ4_0:
      m.q4_.assign(q4_.begin() + row_begin * bpr_, q4_.begin() + row_end * bpr_);
      break;
  }
  return m;
}

WeightMatrix WeightMatrix::SliceCols(std::int64_t col_begin,
                                     std::int64_t col_end) const {
  PUNICA_CHECK_MSG(col_begin >= 0 && col_end <= cols_ && col_begin < col_end,
                   "column slice out of range");
  WeightMatrix m;
  m.dtype_ = dtype_;
  m.rows_ = rows_;
  m.cols_ = col_end - col_begin;
  if (dtype_ == WeightDtype::kF16) {
    m.f16_ = Tensor<f16>({rows_, m.cols_});
    for (std::int64_t r = 0; r < rows_; ++r) {
      auto src = f16_.row(r);
      auto dst = m.f16_.row(r);
      std::copy(src.begin() + col_begin, src.begin() + col_end, dst.begin());
    }
    return m;
  }
  // Quantized: blocks are column-groupwise, so the slice must copy whole
  // blocks. A mid-block boundary would force requantization with different
  // group extrema — refuse loudly rather than silently change precision.
  PUNICA_CHECK_MSG(col_begin % kQuantBlock == 0,
                   "quantized column slice must start on a 32-block boundary");
  PUNICA_CHECK_MSG(col_end % kQuantBlock == 0 || col_end == cols_,
                   "quantized column slice must end on a 32-block boundary "
                   "(or span to the full width)");
  const std::int64_t b_begin = col_begin / kQuantBlock;
  const std::int64_t b_end = QuantBlocksPerRow(col_end);
  m.bpr_ = b_end - b_begin;
  if (dtype_ == WeightDtype::kQ8_0) {
    m.q8_.resize(static_cast<std::size_t>(rows_ * m.bpr_));
    for (std::int64_t r = 0; r < rows_; ++r) {
      std::copy(q8_.begin() + r * bpr_ + b_begin, q8_.begin() + r * bpr_ + b_end,
                m.q8_.begin() + r * m.bpr_);
    }
  } else {
    m.q4_.resize(static_cast<std::size_t>(rows_ * m.bpr_));
    for (std::int64_t r = 0; r < rows_; ++r) {
      std::copy(q4_.begin() + r * bpr_ + b_begin, q4_.begin() + r * bpr_ + b_end,
                m.q4_.begin() + r * m.bpr_);
    }
  }
  return m;
}

WeightMatrix WeightMatrix::Requantize(WeightDtype dtype) const {
  PUNICA_CHECK_MSG(dtype_ == WeightDtype::kF16,
                   "Requantize re-encodes an f16 master; requantizing a "
                   "quantized matrix would compound rounding");
  Tensor<f16> copy({rows_, cols_});
  std::copy(f16_.data().begin(), f16_.data().end(), copy.data().begin());
  return FromF16(std::move(copy), dtype);
}

void WeightMatrix::DequantRow(std::int64_t r, std::span<float> out) const {
  PUNICA_CHECK_MSG(r >= 0 && r < rows_, "row out of range");
  PUNICA_CHECK_MSG(static_cast<std::int64_t>(out.size()) == cols_,
                   "DequantRow wants a full row");
  switch (dtype_) {
    case WeightDtype::kF16:
      HalfToFloatN(f16_.row(r), out);
      return;
    case WeightDtype::kQ8_0:
      DequantRowQ8Ref(q8_.data() + r * bpr_, out);
      return;
    case WeightDtype::kQ4_0:
      DequantRowQ4Ref(q4_.data() + r * bpr_, out);
      return;
  }
}

}  // namespace punica
