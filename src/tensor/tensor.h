// Minimal owning row-major tensor.
//
// The kernels in this repo operate on raw spans for speed and clarity;
// Tensor<T> is the owning container that hands those spans out with shape
// checking. It deliberately supports only what the repro needs: contiguous
// row-major storage, 1–4 dims, element access for tests.
#pragma once

#include <array>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "util/check.h"

namespace punica {

template <typename T>
class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(std::vector<std::int64_t> shape)
      : shape_(std::move(shape)), data_(CheckedNumel(shape_)) {}

  Tensor(std::vector<std::int64_t> shape, std::vector<T> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    PUNICA_CHECK_MSG(data_.size() == CheckedNumel(shape_),
                     "data size must match shape");
  }

  const std::vector<std::int64_t>& shape() const { return shape_; }
  std::int64_t dim(std::size_t i) const { return shape_.at(i); }
  std::size_t ndim() const { return shape_.size(); }
  std::size_t numel() const { return data_.size(); }

  std::span<T> data() { return data_; }
  std::span<const T> data() const { return data_; }
  T* raw() { return data_.data(); }
  const T* raw() const { return data_.data(); }

  /// Row view for a 2-D tensor: tensor.row(i) spans shape[1] elements.
  std::span<T> row(std::int64_t i) {
    PUNICA_CHECK(ndim() == 2);
    PUNICA_CHECK(i >= 0 && i < shape_[0]);
    auto w = static_cast<std::size_t>(shape_[1]);
    return std::span<T>(data_).subspan(static_cast<std::size_t>(i) * w, w);
  }
  std::span<const T> row(std::int64_t i) const {
    PUNICA_CHECK(ndim() == 2);
    PUNICA_CHECK(i >= 0 && i < shape_[0]);
    auto w = static_cast<std::size_t>(shape_[1]);
    return std::span<const T>(data_).subspan(static_cast<std::size_t>(i) * w,
                                             w);
  }

  T& at(std::initializer_list<std::int64_t> idx) {
    return data_[Offset(idx)];
  }
  const T& at(std::initializer_list<std::int64_t> idx) const {
    return data_[Offset(idx)];
  }

  void Fill(T value) { std::fill(data_.begin(), data_.end(), value); }

 private:
  static std::size_t CheckedNumel(const std::vector<std::int64_t>& shape) {
    std::size_t n = 1;
    for (auto d : shape) {
      PUNICA_CHECK_MSG(d >= 0, "negative dimension");
      n *= static_cast<std::size_t>(d);
    }
    return n;
  }

  std::size_t Offset(std::initializer_list<std::int64_t> idx) const {
    PUNICA_CHECK(idx.size() == shape_.size());
    std::size_t off = 0;
    std::size_t d = 0;
    for (auto i : idx) {
      PUNICA_CHECK(i >= 0 && i < shape_[d]);
      off = off * static_cast<std::size_t>(shape_[d]) +
            static_cast<std::size_t>(i);
      ++d;
    }
    return off;
  }

  std::vector<std::int64_t> shape_;
  std::vector<T> data_;
};

}  // namespace punica
