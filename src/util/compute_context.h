// ComputeContext — the deterministic parallel compute substrate every
// numeric-tier kernel runs on.
//
// A context owns one persistent ThreadPool; GEMM, SGMV, attention and the
// layer/model loops take a context (defaulting to the process-wide
// ComputeContext::Default()) and express their parallelism through
// ParallelFor. LlamaModel captures a context at construction, so every
// Engine/EngineBackend sharing that model shares one pool.
//
// Thread-count resolution (ResolveThreadCount):
//   explicit config  >  PUNICA_THREADS env  >  hardware_concurrency.
//
// Tensor parallelism: Split(k) partitions the pool's threads into k
// disjoint worker groups and returns k *view* contexts, one pinned to each
// group. RunGroupTasks(k, fn) runs fn(rank) concurrently with rank r's
// ParallelFors confined to group r, so k TP ranks execute simultaneously
// without sharing threads. Views borrow the root context's pool: they must
// not outlive it, and Split only re-points the partition (calling it while
// regions are in flight is a caller error).
//
// Determinism contract: kernels partition work so each output element is
// computed by exactly one worker with a fixed internal reduction order
// (split-K partials reduce in fixed partition order). Token streams are
// therefore bit-identical for any thread count — asserted by
// tests/integration/determinism_test.cc.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/thread_pool.h"

namespace punica {

struct ComputeConfig {
  /// 0 = resolve from PUNICA_THREADS / hardware_concurrency.
  int num_threads = 0;
  /// Split-KV chunk count for decode attention. 0 = resolve from
  /// PUNICA_ATTN_SPLIT, else the work-size heuristic picks per batch shape;
  /// > 0 forces that split (tests / benches). Purely a scheduling knob:
  /// the attention math is fixed-block, so streams are bit-identical at
  /// any value.
  int attn_split = 0;
};

class ComputeContext {
 public:
  explicit ComputeContext(ComputeConfig config = {});

  /// Root context: pool width. Group view: the group's thread count
  /// (at least 1 — a virtual group's work runs serially on the caller).
  int num_threads() const {
    if (group_ < 0) return pool_->num_threads();
    int w = pool_->group_width(group_);
    return w > 0 ? w : 1;
  }

  /// Deterministic data-parallel loop over [0, n); see ThreadPool.
  /// Allocation-free: the callable is passed by reference, never wrapped
  /// in a std::function. On a group view the region is confined to that
  /// group's threads.
  template <typename Fn>
  void ParallelFor(std::int64_t n, std::int64_t grain, Fn&& fn) const {
    if (group_ >= 0) {
      pool_->ParallelForGroup(group_, n, grain, std::forward<Fn>(fn));
    } else {
      pool_->ParallelFor(n, grain, std::forward<Fn>(fn));
    }
  }

  /// Partitions the pool into `k` disjoint worker groups and returns k view
  /// contexts, view r pinned to group r (see file comment). Views borrow
  /// this context's pool and must not outlive it. Must be called on a root
  /// context.
  std::vector<std::unique_ptr<ComputeContext>> Split(int k) const;

  /// Runs fn(rank) for rank in [0, k) concurrently, rank r pinned to worker
  /// group r (repartitioning the pool to k groups if needed). ParallelFor
  /// calls inside fn(rank) — directly or via a group view — stay inside
  /// group r. Blocks until all ranks return.
  template <typename Fn>
  void RunGroupTasks(int k, Fn&& fn) const {
    pool_->RunGroupTasks(k, std::forward<Fn>(fn));
  }

  /// Forced split-KV chunk count for decode attention (0 = heuristic).
  /// Group views inherit the root's value.
  int attn_split() const { return attn_split_; }

  /// True for a Split() view pinned to one worker group.
  bool is_group_view() const { return group_ >= 0; }
  /// The pinned group index (-1 on a root context).
  int group_index() const { return group_; }
  /// Threads in group `g` under the pool's current partition.
  int group_width(int g) const { return pool_->group_width(g); }

  /// Process-wide shared context (PUNICA_THREADS / hardware default).
  /// Created lazily on first use; persists for the process lifetime.
  static const ComputeContext& Default();

  /// `requested` <= 0 resolves via PUNICA_THREADS, then
  /// hardware_concurrency; the result is clamped to [1, kMaxThreads].
  static int ResolveThreadCount(int requested);

  /// `requested` <= 0 resolves via PUNICA_ATTN_SPLIT (absent/invalid = 0,
  /// the heuristic); the result is clamped to [0, kMaxAttnSplit].
  static int ResolveAttnSplit(int requested);

  static constexpr int kMaxThreads = 256;
  static constexpr int kMaxAttnSplit = 64;

 private:
  ComputeContext(ThreadPool* pool, int group, int attn_split)
      : pool_(pool), group_(group), attn_split_(attn_split) {}

  std::unique_ptr<ThreadPool> owned_pool_;
  // Kernels take `const ComputeContext&` — running work does not mutate the
  // context's observable state, only the pool's internal scheduling.
  ThreadPool* pool_;
  int group_ = -1;  ///< pinned worker group; -1 = root (whole pool)
  int attn_split_ = 0;  ///< forced split-KV chunks; 0 = heuristic
};

}  // namespace punica
