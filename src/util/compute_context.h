// ComputeContext — the deterministic parallel compute substrate every
// numeric-tier kernel runs on.
//
// A context owns one persistent ThreadPool; GEMM, SGMV, attention and the
// layer/model loops take a context (defaulting to the process-wide
// ComputeContext::Default()) and express their parallelism through
// ParallelFor. LlamaModel captures a context at construction, so every
// Engine/EngineBackend sharing that model shares one pool.
//
// Thread-count resolution (ResolveThreadCount):
//   explicit config  >  PUNICA_THREADS env  >  hardware_concurrency.
//
// Determinism contract: kernels partition work so each output element is
// computed by exactly one worker with a fixed internal reduction order
// (split-K partials reduce in fixed partition order). Token streams are
// therefore bit-identical for any thread count — asserted by
// tests/integration/determinism_test.cc.
#pragma once

#include <cstdint>
#include <utility>

#include "util/thread_pool.h"

namespace punica {

struct ComputeConfig {
  /// 0 = resolve from PUNICA_THREADS / hardware_concurrency.
  int num_threads = 0;
};

class ComputeContext {
 public:
  explicit ComputeContext(ComputeConfig config = {});

  int num_threads() const { return pool_.num_threads(); }

  /// Deterministic data-parallel loop over [0, n); see ThreadPool.
  /// Allocation-free: the callable is passed by reference, never wrapped
  /// in a std::function.
  template <typename Fn>
  void ParallelFor(std::int64_t n, std::int64_t grain, Fn&& fn) const {
    pool_.ParallelFor(n, grain, std::forward<Fn>(fn));
  }

  /// Process-wide shared context (PUNICA_THREADS / hardware default).
  /// Created lazily on first use; persists for the process lifetime.
  static const ComputeContext& Default();

  /// `requested` <= 0 resolves via PUNICA_THREADS, then
  /// hardware_concurrency; the result is clamped to [1, kMaxThreads].
  static int ResolveThreadCount(int requested);

  static constexpr int kMaxThreads = 256;

 private:
  // Kernels take `const ComputeContext&` — running work does not mutate the
  // context's observable state, only the pool's internal scheduling.
  mutable ThreadPool pool_;
};

}  // namespace punica
