// Deterministic pseudo-random number generation for tests, workloads and
// synthetic weights.
//
// Pcg32 is O'Neill's PCG-XSH-RR 64/32 generator: tiny state, excellent
// statistical quality, and — unlike std::mt19937 — identical streams across
// standard libraries, which keeps benchmarks and golden tests reproducible.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace punica {

class Pcg32 {
 public:
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  /// Uniform 32-bit word.
  std::uint32_t NextU32();

  /// Uniform in [0, bound). Uses Lemire-style rejection to avoid modulo bias.
  std::uint32_t NextBounded(std::uint32_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform float in [lo, hi).
  float NextFloat(float lo, float hi);

  /// Standard normal via Box–Muller (caches the second deviate).
  double NextGaussian();

  /// Exponential with the given rate parameter (mean 1/rate).
  double NextExponential(double rate);

  /// Fisher–Yates shuffle of an index span.
  template <typename T>
  void Shuffle(std::span<T> xs) {
    for (std::size_t i = xs.size(); i > 1; --i) {
      std::size_t j = NextBounded(static_cast<std::uint32_t>(i));
      std::swap(xs[i - 1], xs[j]);
    }
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Fills a vector with N(0, scale) floats — synthetic weights/activations.
std::vector<float> RandomGaussianVector(std::size_t n, float scale,
                                        Pcg32& rng);

}  // namespace punica
