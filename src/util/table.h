// Plain-text table rendering for the benchmark harnesses: every bench binary
// prints the rows/series of one paper figure through this printer so output
// is uniform and diffable.
#pragma once

#include <string>
#include <vector>

namespace punica {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders with column auto-sizing and a header separator.
  std::string Render() const;

  /// Renders and writes to stdout.
  void Print() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Human-friendly scalar formatting used in bench tables.
std::string FormatSeconds(double s);       ///< "37.2 µs", "1.35 ms", "2.1 s"
std::string FormatBytes(double bytes);     ///< "262.1 KB", "16.8 MB"
std::string FormatFlops(double flops_per_s);  ///< "1.2 GFLOP/s", "98 TFLOP/s"
std::string FormatDouble(double x, int precision = 3);

}  // namespace punica
