#include "util/compute_context.h"

#include <cstdlib>
#include <thread>

namespace punica {

int ComputeContext::ResolveThreadCount(int requested) {
  int n = requested;
  if (n <= 0) {
    const char* env = std::getenv("PUNICA_THREADS");
    if (env != nullptr && env[0] != '\0') {
      n = std::atoi(env);
    }
  }
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (n < 1) n = 1;
  if (n > kMaxThreads) n = kMaxThreads;
  return n;
}

ComputeContext::ComputeContext(ComputeConfig config)
    : pool_(ResolveThreadCount(config.num_threads)) {}

const ComputeContext& ComputeContext::Default() {
  static ComputeContext context;
  return context;
}

}  // namespace punica
