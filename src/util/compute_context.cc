#include "util/compute_context.h"

#include <cstdlib>
#include <thread>

#include "util/check.h"

namespace punica {

int ComputeContext::ResolveThreadCount(int requested) {
  int n = requested;
  if (n <= 0) {
    const char* env = std::getenv("PUNICA_THREADS");
    if (env != nullptr && env[0] != '\0') {
      n = std::atoi(env);
    }
  }
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (n < 1) n = 1;
  if (n > kMaxThreads) n = kMaxThreads;
  return n;
}

int ComputeContext::ResolveAttnSplit(int requested) {
  int s = requested;
  if (s <= 0) {
    const char* env = std::getenv("PUNICA_ATTN_SPLIT");
    if (env != nullptr && env[0] != '\0') {
      s = std::atoi(env);
    }
  }
  if (s < 0) s = 0;
  if (s > kMaxAttnSplit) s = kMaxAttnSplit;
  return s;
}

ComputeContext::ComputeContext(ComputeConfig config)
    : owned_pool_(
          std::make_unique<ThreadPool>(ResolveThreadCount(config.num_threads))),
      pool_(owned_pool_.get()),
      attn_split_(ResolveAttnSplit(config.attn_split)) {}

std::vector<std::unique_ptr<ComputeContext>> ComputeContext::Split(
    int k) const {
  PUNICA_CHECK_MSG(group_ < 0, "Split on a group view is not supported");
  PUNICA_CHECK(k >= 1);
  pool_->Partition(k);
  std::vector<std::unique_ptr<ComputeContext>> views;
  views.reserve(static_cast<std::size_t>(k));
  for (int g = 0; g < k; ++g) {
    views.push_back(std::unique_ptr<ComputeContext>(
        new ComputeContext(pool_, g, attn_split_)));
  }
  return views;
}

const ComputeContext& ComputeContext::Default() {
  static ComputeContext context;
  return context;
}

}  // namespace punica
