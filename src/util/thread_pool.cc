#include "util/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "util/check.h"

namespace punica {
namespace {

// True while this thread is executing chunks of a parallel region; nested
// ParallelFor calls then run inline instead of deadlocking on the pool.
thread_local bool t_in_parallel_region = false;

}  // namespace

struct ThreadPool::State {
  std::mutex run_mutex;  ///< serializes whole jobs across caller threads
  std::mutex mutex;
  std::condition_variable cv_work;  ///< workers wait for a new epoch
  std::condition_variable cv_done;  ///< caller waits for done/active
  std::uint64_t epoch = 0;
  // The current job: fn(arg, lo, hi) over chunk c covers
  // [c·chunk, min(n, (c+1)·chunk)).
  ThreadPool::RangeFn fn = nullptr;
  void* fn_arg = nullptr;
  std::int64_t num_chunks = 0;
  std::int64_t chunk = 0;
  std::int64_t n = 0;
  std::atomic<std::int64_t> next{0};  ///< next chunk to claim
  std::atomic<std::int64_t> done{0};  ///< chunks completed
  int active = 0;                     ///< workers inside the current job
  bool stop = false;
};

// Claims chunks of the current job until none remain; shared by workers
// and the participating caller.
void ThreadPool::RunChunks(RangeFn fn, void* arg, std::int64_t num_chunks,
                           std::int64_t chunk, std::int64_t n,
                           std::atomic<std::int64_t>& next,
                           std::atomic<std::int64_t>& done) {
  t_in_parallel_region = true;
  for (;;) {
    std::int64_t c = next.fetch_add(1);
    if (c >= num_chunks) break;
    std::int64_t lo = c * chunk;
    std::int64_t hi = lo + chunk < n ? lo + chunk : n;
    fn(arg, lo, hi);
    done.fetch_add(1);
  }
  t_in_parallel_region = false;
}

ThreadPool::ThreadPool(int num_threads) : state_(std::make_unique<State>()) {
  PUNICA_CHECK(num_threads >= 1);
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->stop = true;
  }
  state_->cv_work.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerMain() {
  State& s = *state_;
  std::uint64_t seen = 0;
  for (;;) {
    RangeFn fn = nullptr;
    void* arg = nullptr;
    std::int64_t num_chunks = 0, chunk = 0, n = 0;
    {
      std::unique_lock<std::mutex> lock(s.mutex);
      s.cv_work.wait(lock, [&] { return s.stop || s.epoch != seen; });
      if (s.stop) return;
      seen = s.epoch;
      fn = s.fn;
      arg = s.fn_arg;
      num_chunks = s.num_chunks;
      chunk = s.chunk;
      n = s.n;
      ++s.active;
    }
    RunChunks(fn, arg, num_chunks, chunk, n, s.next, s.done);
    {
      std::lock_guard<std::mutex> lock(s.mutex);
      --s.active;
    }
    s.cv_done.notify_all();
  }
}

void ThreadPool::Run(std::int64_t num_chunks, std::int64_t chunk,
                     std::int64_t n, RangeFn fn, void* arg) {
  State& s = *state_;
  // One job at a time: a second caller thread (engines sharing a pool may
  // be stepped from anywhere) must not reset the shared counters while a
  // job is in flight — its region simply serializes after the current one.
  std::lock_guard<std::mutex> run_lock(s.run_mutex);
  {
    std::unique_lock<std::mutex> lock(s.mutex);
    // Drain stragglers of the previous job before reusing the shared
    // counters (a worker may still be between its last claim and --active).
    s.cv_done.wait(lock, [&] { return s.active == 0; });
    s.fn = fn;
    s.fn_arg = arg;
    s.num_chunks = num_chunks;
    s.chunk = chunk;
    s.n = n;
    s.next.store(0);
    s.done.store(0);
    ++s.epoch;
  }
  s.cv_work.notify_all();
  // The caller participates, so all chunks complete even if no worker ever
  // wakes (width-1 pools, forked children).
  RunChunks(fn, arg, num_chunks, chunk, n, s.next, s.done);
  std::unique_lock<std::mutex> lock(s.mutex);
  s.cv_done.wait(lock, [&] { return s.done.load() == num_chunks; });
}

void ThreadPool::ParallelForImpl(std::int64_t n, std::int64_t grain,
                                 RangeFn fn, void* arg) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  if (num_threads() == 1 || n <= grain || t_in_parallel_region) {
    fn(arg, 0, n);
    return;
  }
  // Chunk size adapts to the pool width for load balance; the result does
  // not depend on it (see the determinism contract in the header).
  std::int64_t threads = num_threads();
  std::int64_t chunk = (n + threads * 4 - 1) / (threads * 4);
  if (chunk < grain) chunk = grain;
  std::int64_t num_chunks = (n + chunk - 1) / chunk;
  Run(num_chunks, chunk, n, fn, arg);
}

}  // namespace punica
