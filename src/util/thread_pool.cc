#include "util/thread_pool.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <mutex>

#include "util/check.h"

namespace punica {
namespace {

// True while this thread is executing chunks of a parallel region; nested
// ParallelFor calls then run inline instead of deadlocking on the pool.
thread_local bool t_in_parallel_region = false;

// Set while this thread is executing a group task: ParallelFor calls route
// to ParallelForGroup(t_task_group) on t_task_pool, so a rank's regions fan
// out over its own group's threads only — never a sibling group's.
thread_local ThreadPool* t_task_pool = nullptr;
thread_local int t_task_group = -1;

// Partition arity ceiling; matches ComputeContext::kMaxThreads.
constexpr int kMaxPartition = 256;

// Runs fn(group) on the current thread with the task thread-locals pinned,
// so nested ParallelFors stay inside `group`. Used for the caller-run group
// 0 task and for width-0 virtual groups.
void RunTaskPinned(ThreadPool* pool, int group, void (*fn)(void*, int),
                   void* arg) {
  ThreadPool* prev_pool = t_task_pool;
  int prev_group = t_task_group;
  t_task_pool = pool;
  t_task_group = group;
  fn(arg, group);
  t_task_pool = prev_pool;
  t_task_group = prev_group;
}

}  // namespace

// One worker group: its own region state (the PR 2 epoch/cv protocol,
// verbatim, per group) plus a task slot its leader worker serves.
struct ThreadPool::Group {
  std::mutex mutex;
  std::condition_variable cv_work;  ///< members wait for a new epoch/task
  std::condition_variable cv_done;  ///< poster waits for done/active
  std::uint64_t epoch = 0;
  // The current region job: fn(arg, lo, hi) over chunk c covers
  // [c·chunk, min(n, (c+1)·chunk)).
  ThreadPool::RangeFn fn = nullptr;
  void* fn_arg = nullptr;
  std::int64_t num_chunks = 0;
  std::int64_t chunk = 0;
  std::int64_t n = 0;
  std::atomic<std::int64_t> next{0};  ///< next chunk to claim
  std::atomic<std::int64_t> done{0};  ///< chunks completed
  int active = 0;                     ///< members inside the current job
  // The pending group task (leader-only; groups 1..k-1).
  std::uint64_t task_epoch = 0;
  ThreadPool::TaskFn task_fn = nullptr;
  void* task_arg = nullptr;
};

struct ThreadPool::State {
  std::mutex run_mutex;  ///< serializes root jobs/tasks across callers
  // --- partition (guards assignment; version bump re-points workers) ---
  std::mutex part_mutex;
  std::condition_variable cv_part;  ///< Partition waits for worker acks
  std::atomic<std::uint64_t> version{0};
  std::atomic<bool> stop{false};
  int acked = 0;                 ///< workers that adopted current version
  std::vector<int> assign;       ///< worker index → group
  std::vector<char> is_leader;   ///< worker index → serves the task slot
  std::array<std::atomic<int>, kMaxPartition> width{};  ///< group → threads
  std::vector<std::unique_ptr<Group>> groups;  ///< arena, one per thread
  // --- group-task join ---
  std::mutex task_mutex;
  std::condition_variable cv_tasks_done;
  std::atomic<int> tasks_done{0};
};

// Claims chunks of the current job until none remain; shared by workers
// and the participating poster.
void ThreadPool::RunChunks(RangeFn fn, void* arg, std::int64_t num_chunks,
                           std::int64_t chunk, std::int64_t n,
                           std::atomic<std::int64_t>& next,
                           std::atomic<std::int64_t>& done) {
  t_in_parallel_region = true;
  for (;;) {
    std::int64_t c = next.fetch_add(1);
    if (c >= num_chunks) break;
    std::int64_t lo = c * chunk;
    std::int64_t hi = lo + chunk < n ? lo + chunk : n;
    fn(arg, lo, hi);
    done.fetch_add(1);
  }
  t_in_parallel_region = false;
}

ThreadPool::ThreadPool(int num_threads) : state_(std::make_unique<State>()) {
  PUNICA_CHECK(num_threads >= 1);
  State& s = *state_;
  s.assign.assign(static_cast<std::size_t>(num_threads - 1), 0);
  s.is_leader.assign(static_cast<std::size_t>(num_threads - 1), 0);
  s.groups.reserve(static_cast<std::size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    s.groups.push_back(std::make_unique<Group>());
  }
  s.width[0].store(num_threads);
  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this, i] { WorkerMain(i); });
  }
}

ThreadPool::~ThreadPool() {
  State& s = *state_;
  s.stop.store(true);
  for (auto& g : s.groups) {
    { std::lock_guard<std::mutex> lock(g->mutex); }
    g->cv_work.notify_all();
  }
  for (auto& w : workers_) w.join();
}

int ThreadPool::group_width(int group) const {
  if (group < 0 || group >= num_groups_.load(std::memory_order_acquire)) {
    return 0;
  }
  return state_->width[static_cast<std::size_t>(group)].load();
}

void ThreadPool::WorkerMain(int worker_index) {
  State& s = *state_;
  for (;;) {
    // Adopt the current partition: group membership, role, and a fresh
    // epoch baseline (PartitionLocked resets group epochs to 0 in the same
    // critical section that bumps the version, and nothing can post a job
    // until every worker has acked, so 0 is always the right baseline).
    Group* grp = nullptr;
    std::uint64_t ver = 0;
    bool is_leader = false;
    int my_group = 0;
    {
      std::lock_guard<std::mutex> lock(s.part_mutex);
      if (s.stop.load()) return;
      ver = s.version.load();
      my_group = s.assign[static_cast<std::size_t>(worker_index)];
      is_leader = s.is_leader[static_cast<std::size_t>(worker_index)] != 0;
      grp = s.groups[static_cast<std::size_t>(my_group)].get();
      ++s.acked;
    }
    s.cv_part.notify_all();
    std::uint64_t seen = 0;
    std::uint64_t task_seen = 0;
    for (;;) {
      RangeFn fn = nullptr;
      void* arg = nullptr;
      std::int64_t num_chunks = 0, chunk = 0, n = 0;
      TaskFn task_fn = nullptr;
      void* task_arg = nullptr;
      {
        std::unique_lock<std::mutex> lock(grp->mutex);
        grp->cv_work.wait(lock, [&] {
          return s.stop.load() || s.version.load() != ver ||
                 grp->epoch != seen ||
                 (is_leader && grp->task_epoch != task_seen);
        });
        if (s.stop.load()) return;
        if (s.version.load() != ver) break;  // repartitioned: re-adopt
        if (is_leader && grp->task_epoch != task_seen) {
          task_seen = grp->task_epoch;
          task_fn = grp->task_fn;
          task_arg = grp->task_arg;
        } else {
          seen = grp->epoch;
          fn = grp->fn;
          arg = grp->fn_arg;
          num_chunks = grp->num_chunks;
          chunk = grp->chunk;
          n = grp->n;
          ++grp->active;
        }
      }
      if (task_fn != nullptr) {
        RunTaskPinned(this, my_group, task_fn, task_arg);
        {
          // Regions the task posted advanced this group's epoch with no
          // job for us (we were busy running the task); re-baseline before
          // signalling completion so a later stale epoch is not mistaken
          // for a new job. The next task post happens-after the signal.
          std::lock_guard<std::mutex> lock(grp->mutex);
          seen = grp->epoch;
        }
        s.tasks_done.fetch_add(1);
        { std::lock_guard<std::mutex> lock(s.task_mutex); }
        s.cv_tasks_done.notify_all();
      } else {
        RunChunks(fn, arg, num_chunks, chunk, n, grp->next, grp->done);
        {
          std::lock_guard<std::mutex> lock(grp->mutex);
          --grp->active;
        }
        grp->cv_done.notify_all();
      }
    }
  }
}

void ThreadPool::RunOnGroup(Group& grp, std::int64_t num_chunks,
                            std::int64_t chunk, std::int64_t n, RangeFn fn,
                            void* arg) {
  {
    std::unique_lock<std::mutex> lock(grp.mutex);
    // Drain stragglers of the previous job on this group before reusing
    // the shared counters (a member may still be between its last claim
    // and --active).
    grp.cv_done.wait(lock, [&] { return grp.active == 0; });
    grp.fn = fn;
    grp.fn_arg = arg;
    grp.num_chunks = num_chunks;
    grp.chunk = chunk;
    grp.n = n;
    grp.next.store(0);
    grp.done.store(0);
    ++grp.epoch;
  }
  grp.cv_work.notify_all();
  // The poster participates, so all chunks complete even if no member ever
  // wakes (width-1 groups, forked children).
  RunChunks(fn, arg, num_chunks, chunk, n, grp.next, grp.done);
  std::unique_lock<std::mutex> lock(grp.mutex);
  grp.cv_done.wait(lock, [&] { return grp.done.load() == num_chunks; });
}

void ThreadPool::PartitionLocked(int num_groups) {
  State& s = *state_;
  const int total = num_threads();
  const int num_workers = total - 1;
  std::unique_lock<std::mutex> lock(s.part_mutex);
  s.version.fetch_add(1);
  // Balanced widths: |w_g − w_h| ≤ 1, group 0 first (it contains the
  // external caller). k > T leaves trailing groups width 0 (virtual —
  // their tasks run serially on the caller).
  for (int g = 0; g < kMaxPartition; ++g) {
    int w = g < num_groups
                ? total / num_groups + (g < total % num_groups ? 1 : 0)
                : 0;
    s.width[static_cast<std::size_t>(g)].store(w);
  }
  int w = 0;
  for (int g = 0; g < num_groups && g < total; ++g) {
    int members = s.width[static_cast<std::size_t>(g)].load() -
                  (g == 0 ? 1 : 0);  // group 0 includes the caller
    for (int i = 0; i < members; ++i, ++w) {
      s.assign[static_cast<std::size_t>(w)] = g;
      s.is_leader[static_cast<std::size_t>(w)] = (g > 0 && i == 0) ? 1 : 0;
    }
  }
  PUNICA_CHECK(w == num_workers);
  s.acked = 0;
  // Reset all group epochs under the same critical section: adopting
  // workers baseline at 0, and no job can post until every worker acked.
  for (auto& g : s.groups) {
    std::lock_guard<std::mutex> glock(g->mutex);
    g->epoch = 0;
    g->task_epoch = 0;
  }
  num_groups_.store(num_groups, std::memory_order_release);
  for (auto& g : s.groups) g->cv_work.notify_all();
  s.cv_part.wait(lock, [&] { return s.acked == num_workers; });
}

void ThreadPool::Partition(int num_groups) {
  PUNICA_CHECK(num_groups >= 1 && num_groups <= kMaxPartition);
  PUNICA_CHECK_MSG(!t_in_parallel_region &&
                       !(t_task_pool == this && t_task_group >= 0),
                   "Partition from inside a region/task would deadlock");
  State& s = *state_;
  std::lock_guard<std::mutex> run_lock(s.run_mutex);
  if (num_groups_.load() != num_groups) PartitionLocked(num_groups);
}

void ThreadPool::RunGroupTasksLocked(int num_groups, TaskFn fn, void* arg) {
  State& s = *state_;
  s.tasks_done.store(0);
  const int real = std::min(num_groups, num_threads());
  int posted = 0;
  for (int g = 1; g < real; ++g) {
    Group& grp = *s.groups[static_cast<std::size_t>(g)];
    {
      std::lock_guard<std::mutex> lock(grp.mutex);
      grp.task_fn = fn;
      grp.task_arg = arg;
      ++grp.task_epoch;
    }
    grp.cv_work.notify_all();
    ++posted;
  }
  // The caller runs group 0's task, then any virtual groups', pinned so
  // nested ParallelFors route to the right (or no) group.
  RunTaskPinned(this, 0, fn, arg);
  for (int g = real; g < num_groups; ++g) RunTaskPinned(this, g, fn, arg);
  if (posted > 0) {
    std::unique_lock<std::mutex> lock(s.task_mutex);
    s.cv_tasks_done.wait(lock,
                         [&] { return s.tasks_done.load() == posted; });
  }
}

void ThreadPool::RunGroupTasksImpl(int num_groups, TaskFn fn, void* arg) {
  PUNICA_CHECK(num_groups >= 1 && num_groups <= kMaxPartition);
  if (t_in_parallel_region || (t_task_pool == this && t_task_group >= 0)) {
    // Nested task launch from inside a region or another task: run the
    // tasks serially in-place, keeping the current group pinning so the
    // caller's isolation is preserved.
    for (int g = 0; g < num_groups; ++g) fn(arg, g);
    return;
  }
  State& s = *state_;
  std::lock_guard<std::mutex> run_lock(s.run_mutex);
  if (num_groups_.load() != num_groups) PartitionLocked(num_groups);
  RunGroupTasksLocked(num_groups, fn, arg);
}

void ThreadPool::RunRootSpansLocked(int num_groups, std::int64_t n,
                                    std::int64_t grain, RangeFn fn,
                                    void* arg) {
  State& s = *state_;
  // Contiguous per-group spans proportional to group widths: group g gets
  // [n·cum_g/T, n·cum_{g+1}/T). Every index lands in exactly one span, so
  // the determinism contract is independent of the partition.
  struct SpanCtx {
    ThreadPool* pool;
    RangeFn fn;
    void* arg;
    std::int64_t grain;
    std::int64_t starts[kMaxPartition + 1];
  };
  SpanCtx ctx{this, fn, arg, grain, {}};
  std::int64_t total = num_threads();
  std::int64_t cum = 0;
  for (int g = 0; g < num_groups; ++g) {
    ctx.starts[g] = n * cum / total;
    cum += s.width[static_cast<std::size_t>(g)].load();
  }
  ctx.starts[num_groups] = n;
  RunGroupTasksLocked(
      num_groups,
      [](void* p, int g) {
        auto* c = static_cast<SpanCtx*>(p);
        std::int64_t lo = c->starts[g];
        std::int64_t hi = c->starts[g + 1];
        if (lo >= hi) return;
        struct Shift {
          RangeFn fn;
          void* arg;
          std::int64_t off;
        } shift{c->fn, c->arg, lo};
        c->pool->ParallelForGroupImpl(
            g, hi - lo, c->grain,
            [](void* sp, std::int64_t slo, std::int64_t shi) {
              auto* sh = static_cast<Shift*>(sp);
              sh->fn(sh->arg, slo + sh->off, shi + sh->off);
            },
            &shift);
      },
      &ctx);
}

void ThreadPool::ParallelForGroupImpl(int group, std::int64_t n,
                                      std::int64_t grain, RangeFn fn,
                                      void* arg) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  State& s = *state_;
  std::int64_t width = 0;
  if (group >= 0 && group < num_groups_.load(std::memory_order_acquire)) {
    width = s.width[static_cast<std::size_t>(group)].load();
  }
  if (width <= 1 || n <= grain || t_in_parallel_region) {
    fn(arg, 0, n);
    return;
  }
  // Chunk size adapts to the group width for load balance; the result does
  // not depend on it (see the determinism contract in the header).
  std::int64_t chunk = (n + width * 4 - 1) / (width * 4);
  if (chunk < grain) chunk = grain;
  std::int64_t num_chunks = (n + chunk - 1) / chunk;
  if (num_chunks <= 1) {
    fn(arg, 0, n);
    return;
  }
  RunOnGroup(*s.groups[static_cast<std::size_t>(group)], num_chunks, chunk,
             n, fn, arg);
}

void ThreadPool::ParallelForImpl(std::int64_t n, std::int64_t grain,
                                 RangeFn fn, void* arg) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  if (num_threads() == 1 || n <= grain || t_in_parallel_region) {
    fn(arg, 0, n);
    return;
  }
  if (t_task_pool == this && t_task_group >= 0) {
    // Inside a group task: fan out over this task's group only — sibling
    // groups' threads are running other ranks' work.
    ParallelForGroupImpl(t_task_group, n, grain, fn, arg);
    return;
  }
  State& s = *state_;
  // One root job at a time: a second caller thread (engines sharing a pool
  // may be stepped from anywhere) must not reset the shared counters while
  // a job is in flight — its region simply serializes after the current
  // one.
  std::lock_guard<std::mutex> run_lock(s.run_mutex);
  int num_groups = num_groups_.load(std::memory_order_acquire);
  if (num_groups > 1) {
    RunRootSpansLocked(num_groups, n, grain, fn, arg);
    return;
  }
  // Chunk size adapts to the pool width for load balance; the result does
  // not depend on it (see the determinism contract in the header).
  std::int64_t threads = num_threads();
  std::int64_t chunk = (n + threads * 4 - 1) / (threads * 4);
  if (chunk < grain) chunk = grain;
  std::int64_t num_chunks = (n + chunk - 1) / chunk;
  if (num_chunks <= 1) {
    fn(arg, 0, n);
    return;
  }
  RunOnGroup(*s.groups[0], num_chunks, chunk, n, fn, arg);
}

}  // namespace punica
