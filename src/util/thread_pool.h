// A persistent worker-thread pool with a deterministic ParallelFor and a
// worker-group partition for concurrent tensor-parallel shard execution.
//
// Determinism contract: ParallelFor splits [0, n) into contiguous chunks and
// guarantees each index is visited by exactly one fn(lo, hi) invocation, in
// ascending order within the chunk. If fn writes only outputs derived from
// its index range (never per-worker or per-timing state), the overall result
// is bit-identical for ANY thread count and ANY chunk assignment — the
// property the numeric tier's migration/consolidation tests depend on.
//
// The calling thread participates in the work, so a pool of 1 thread (or a
// fork()ed child whose workers are gone) degrades to a plain serial loop
// rather than deadlocking. Nested ParallelFor calls from inside a worker run
// inline for the same reason.
//
// Worker groups (tensor parallelism): Partition(k) splits the pool's
// threads into k disjoint groups — group 0 contains the external caller
// plus ⌈T/k⌉−1 workers, groups 1..k−1 are led by a dedicated worker each.
// RunGroupTasks(k, fn) then runs fn(g) concurrently, one task per group,
// and a ParallelFor issued from inside task g fans out over group g's
// threads ONLY — it never steals from sibling groups, so two ranks'
// regions can run simultaneously while each preserves the chunked
// determinism contract within its group. A root-level ParallelFor on a
// partitioned pool decomposes the range into per-group contiguous spans
// (proportional to group widths) and runs them as concurrent group tasks;
// chunk boundaries differ from the unpartitioned pool but every index is
// still visited exactly once, so results are bit-identical either way.
//
// ParallelFor is a template dispatched through a raw function pointer, not
// std::function, so launching a region never heap-allocates — it sits on
// the per-layer hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

namespace punica {

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the caller is the Nth thread).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width, caller included (always >= 1).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(lo, hi) over a chunked partition of [0, n). Chunks are at least
  /// `grain` indices (the last may be shorter); serial when the range is
  /// small, the pool is width 1, or the call is nested inside another
  /// parallel region. Safe to call from multiple caller threads: whole
  /// regions serialize, they never interleave chunks. Called from inside a
  /// group task, the region fans out over that group's threads only.
  template <typename Fn>
  void ParallelFor(std::int64_t n, std::int64_t grain, Fn&& fn) {
    ParallelForImpl(n, grain, &InvokeRange<std::remove_reference_t<Fn>>,
                    const_cast<void*>(static_cast<const void*>(&fn)));
  }

  /// Repartitions the pool's threads into `k` disjoint worker groups (see
  /// file comment). Group widths differ by at most one; when k > T the
  /// trailing groups have width 0 and their tasks run serially on the
  /// caller. Must not be called while any region or task is in flight.
  void Partition(int num_groups);

  /// Current partition arity (1 = unpartitioned).
  int num_groups() const {
    return num_groups_.load(std::memory_order_acquire);
  }

  /// Threads in `group` under the current partition (0 for virtual groups,
  /// whose tasks run serially on the caller).
  int group_width(int group) const;

  /// Runs fn(g) for g in [0, k) with each invocation pinned to worker group
  /// g: group 0's task runs on the caller, each other real group's task on
  /// that group's leader worker, concurrently. Repartitions to k groups if
  /// the pool is currently partitioned differently. ParallelFor calls made
  /// inside fn(g) are confined to group g. Blocks until all k tasks finish.
  /// Nested calls (from inside a task or region) run fn serially in-place.
  template <typename Fn>
  void RunGroupTasks(int num_groups, Fn&& fn) {
    RunGroupTasksImpl(num_groups, &InvokeTask<std::remove_reference_t<Fn>>,
                      const_cast<void*>(static_cast<const void*>(&fn)));
  }

  /// ParallelFor pinned to one group of the current partition; serial when
  /// the group has width <= 1 or does not exist. Used by group-view
  /// ComputeContexts; plain callers use ParallelFor, which routes here
  /// automatically from inside a group task.
  template <typename Fn>
  void ParallelForGroup(int group, std::int64_t n, std::int64_t grain,
                        Fn&& fn) {
    ParallelForGroupImpl(group, n, grain,
                         &InvokeRange<std::remove_reference_t<Fn>>,
                         const_cast<void*>(static_cast<const void*>(&fn)));
  }

 private:
  /// Type-erased range callback: arg points at the caller's callable, which
  /// outlives the region (ParallelForImpl returns only when all chunks ran).
  using RangeFn = void (*)(void* arg, std::int64_t lo, std::int64_t hi);
  /// Type-erased group-task callback.
  using TaskFn = void (*)(void* arg, int group);

  template <typename Fn>
  static void InvokeRange(void* arg, std::int64_t lo, std::int64_t hi) {
    (*static_cast<Fn*>(arg))(lo, hi);
  }

  template <typename Fn>
  static void InvokeTask(void* arg, int group) {
    (*static_cast<Fn*>(arg))(group);
  }

  struct Group;
  struct State;
  void WorkerMain(int worker_index);
  void ParallelForImpl(std::int64_t n, std::int64_t grain, RangeFn fn,
                       void* arg);
  void ParallelForGroupImpl(int group, std::int64_t n, std::int64_t grain,
                            RangeFn fn, void* arg);
  void RunGroupTasksImpl(int num_groups, TaskFn fn, void* arg);
  /// Posts tasks to group leaders and joins; requires run_mutex held and
  /// the partition already set to `num_groups`.
  void RunGroupTasksLocked(int num_groups, TaskFn fn, void* arg);
  /// Root-level ParallelFor on a partitioned pool: per-group contiguous
  /// spans, run as concurrent group tasks; requires run_mutex held.
  void RunRootSpansLocked(int num_groups, std::int64_t n, std::int64_t grain,
                          RangeFn fn, void* arg);
  /// Repartition; requires run_mutex held (no jobs or tasks in flight).
  void PartitionLocked(int num_groups);
  /// Dispatches chunks [0, num_chunks) of width `chunk` over [0, n) to one
  /// group's threads; the calling thread participates.
  void RunOnGroup(Group& grp, std::int64_t num_chunks, std::int64_t chunk,
                  std::int64_t n, RangeFn fn, void* arg);
  static void RunChunks(RangeFn fn, void* arg, std::int64_t num_chunks,
                        std::int64_t chunk, std::int64_t n,
                        std::atomic<std::int64_t>& next,
                        std::atomic<std::int64_t>& done);

  std::atomic<int> num_groups_{1};
  std::unique_ptr<State> state_;
  std::vector<std::thread> workers_;
};

}  // namespace punica
