// A persistent worker-thread pool with a deterministic ParallelFor.
//
// Determinism contract: ParallelFor splits [0, n) into contiguous chunks and
// guarantees each index is visited by exactly one fn(lo, hi) invocation, in
// ascending order within the chunk. If fn writes only outputs derived from
// its index range (never per-worker or per-timing state), the overall result
// is bit-identical for ANY thread count and ANY chunk assignment — the
// property the numeric tier's migration/consolidation tests depend on.
//
// The calling thread participates in the work, so a pool of 1 thread (or a
// fork()ed child whose workers are gone) degrades to a plain serial loop
// rather than deadlocking. Nested ParallelFor calls from inside a worker run
// inline for the same reason.
//
// ParallelFor is a template dispatched through a raw function pointer, not
// std::function, so launching a region never heap-allocates — it sits on
// the per-layer hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

namespace punica {

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the caller is the Nth thread).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width, caller included (always >= 1).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(lo, hi) over a chunked partition of [0, n). Chunks are at least
  /// `grain` indices (the last may be shorter); serial when the range is
  /// small, the pool is width 1, or the call is nested inside another
  /// parallel region. Safe to call from multiple caller threads: whole
  /// regions serialize, they never interleave chunks.
  template <typename Fn>
  void ParallelFor(std::int64_t n, std::int64_t grain, Fn&& fn) {
    ParallelForImpl(n, grain, &InvokeRange<std::remove_reference_t<Fn>>,
                    const_cast<void*>(static_cast<const void*>(&fn)));
  }

 private:
  /// Type-erased range callback: arg points at the caller's callable, which
  /// outlives the region (ParallelForImpl returns only when all chunks ran).
  using RangeFn = void (*)(void* arg, std::int64_t lo, std::int64_t hi);

  template <typename Fn>
  static void InvokeRange(void* arg, std::int64_t lo, std::int64_t hi) {
    (*static_cast<Fn*>(arg))(lo, hi);
  }

  struct State;
  void WorkerMain();
  void ParallelForImpl(std::int64_t n, std::int64_t grain, RangeFn fn,
                       void* arg);
  /// Dispatches chunks [0, num_chunks) of width `chunk` over [0, n).
  void Run(std::int64_t num_chunks, std::int64_t chunk, std::int64_t n,
           RangeFn fn, void* arg);
  static void RunChunks(RangeFn fn, void* arg, std::int64_t num_chunks,
                        std::int64_t chunk, std::int64_t n,
                        std::atomic<std::int64_t>& next,
                        std::atomic<std::int64_t>& done);

  std::unique_ptr<State> state_;
  std::vector<std::thread> workers_;
};

}  // namespace punica
