// Lightweight runtime-check utilities.
//
// PUNICA_CHECK is an always-on invariant check (unlike assert it survives
// NDEBUG builds); violations abort with a source location and message.
// Used at module boundaries where a broken precondition means a programming
// error, not a recoverable condition.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace punica {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "PUNICA_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace punica

#define PUNICA_CHECK(cond)                                   \
  do {                                                       \
    if (!(cond)) {                                           \
      ::punica::CheckFailed(__FILE__, __LINE__, #cond, "");  \
    }                                                        \
  } while (false)

#define PUNICA_CHECK_MSG(cond, msg)                           \
  do {                                                        \
    if (!(cond)) {                                            \
      ::punica::CheckFailed(__FILE__, __LINE__, #cond, msg);  \
    }                                                         \
  } while (false)
