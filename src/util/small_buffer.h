// SmallBuffer<T, N> — inline-storage-then-heap scratch for hot-path
// kernels: sized per call, stack-backed for the typical case, heap-backed
// past N elements. This is the stack/heap resolution pattern the attention
// kernels use for per-batch metadata (row lengths, chunk offsets) and for
// the split-KV softmax partials when no persistent workspace is supplied —
// hoisted here so each call site is one Resize instead of an array + vector
// + pointer dance.
//
// Semantics: Resize never shrinks the heap allocation (scratch reuse), and
// element values are NOT preserved across Resize — this is scratch, not a
// container. Elements are default-initialized (i.e. uninitialized for
// trivial T on the inline path); callers fill what they read. Non-copyable:
// data() pointers must never alias a moved-from buffer.
#pragma once

#include <cstddef>
#include <vector>

namespace punica {

template <typename T, std::size_t N>
class SmallBuffer {
 public:
  SmallBuffer() = default;
  explicit SmallBuffer(std::size_t n) { Resize(n); }
  SmallBuffer(const SmallBuffer&) = delete;
  SmallBuffer& operator=(const SmallBuffer&) = delete;

  /// Makes [0, n) addressable. Contents are unspecified after a Resize.
  void Resize(std::size_t n) {
    if (n > N) {
      if (heap_.size() < n) heap_.resize(n);
      data_ = heap_.data();
    } else {
      data_ = inline_;
    }
    size_ = n;
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  static constexpr std::size_t inline_capacity() { return N; }
  bool is_inline() const { return data_ == inline_; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

 private:
  T inline_[N];
  std::vector<T> heap_;
  T* data_ = inline_;
  std::size_t size_ = 0;
};

}  // namespace punica
