#include "util/table.h"

#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace punica {
namespace {

// Display width of a UTF-8 string, counting multi-byte code points (e.g. µ)
// as one column.
std::size_t DisplayWidth(const std::string& s) {
  std::size_t width = 0;
  for (unsigned char c : s) {
    if ((c & 0xC0U) != 0x80U) ++width;  // count non-continuation bytes
  }
  return width;
}

void AppendPadded(std::string& out, const std::string& cell,
                  std::size_t width) {
  out += cell;
  std::size_t w = DisplayWidth(cell);
  for (std::size_t i = w; i < width; ++i) out += ' ';
}

}  // namespace

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  PUNICA_CHECK(!headers_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  PUNICA_CHECK_MSG(cells.size() == headers_.size(),
                   "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::Render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = DisplayWidth(headers_[c]);
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], DisplayWidth(row[c]));
    }
  }

  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    AppendPadded(out, headers_[c], widths[c]);
    out += (c + 1 < headers_.size()) ? "  " : "";
  }
  out += '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += std::string(widths[c], '-');
    out += (c + 1 < headers_.size()) ? "  " : "";
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      AppendPadded(out, row[c], widths[c]);
      out += (c + 1 < row.size()) ? "  " : "";
    }
    out += '\n';
  }
  return out;
}

void Table::Print() const { std::fputs(Render().c_str(), stdout); }

namespace {

std::string FormatWithUnit(double value, const char* unit, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f %s", precision, value, unit);
  return buf;
}

}  // namespace

std::string FormatSeconds(double s) {
  if (s < 0.0) return "-" + FormatSeconds(-s);
  if (s < 1e-3) return FormatWithUnit(s * 1e6, "µs", 1);
  if (s < 1.0) return FormatWithUnit(s * 1e3, "ms", 2);
  return FormatWithUnit(s, "s", 2);
}

std::string FormatBytes(double bytes) {
  if (bytes < 1024.0) return FormatWithUnit(bytes, "B", 0);
  if (bytes < 1024.0 * 1024.0) return FormatWithUnit(bytes / 1024.0, "KB", 1);
  if (bytes < 1024.0 * 1024.0 * 1024.0) {
    return FormatWithUnit(bytes / (1024.0 * 1024.0), "MB", 1);
  }
  return FormatWithUnit(bytes / (1024.0 * 1024.0 * 1024.0), "GB", 2);
}

std::string FormatFlops(double flops_per_s) {
  if (flops_per_s < 1e9) return FormatWithUnit(flops_per_s / 1e6, "MFLOP/s", 2);
  if (flops_per_s < 1e12) {
    return FormatWithUnit(flops_per_s / 1e9, "GFLOP/s", 2);
  }
  return FormatWithUnit(flops_per_s / 1e12, "TFLOP/s", 2);
}

std::string FormatDouble(double x, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, x);
  return buf;
}

}  // namespace punica
