#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace punica {

void RunningStat::Add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  std::size_t total = n_ + other.n_;
  double na = static_cast<double>(n_);
  double nb = static_cast<double>(other.n_);
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = total;
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Percentile(std::span<const double> xs, double q) {
  PUNICA_CHECK(!xs.empty());
  PUNICA_CHECK(q >= 0.0 && q <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  PUNICA_CHECK(hi > lo);
  PUNICA_CHECK(buckets > 0);
}

void Histogram::Add(double x) {
  double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::int64_t>(
      frac * static_cast<double>(counts_.size()));
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i + 1); }

std::string Histogram::Sparkline() const {
  static const char* kLevels[] = {" ", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (auto c : counts_) {
    std::size_t level =
        peak == 0 ? 0 : (c * 8 + peak - 1) / peak;  // ceil to 0..8
    out += kLevels[level];
  }
  return out;
}

void LatencyRecorder::Add(double seconds) {
  stat_.Add(seconds);
  samples_.push_back(seconds);
}

void LatencyRecorder::Merge(const LatencyRecorder& other) {
  stat_.Merge(other.stat_);
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
}

double LatencyRecorder::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  return Percentile(samples_, q);
}

Histogram LatencyRecorder::ToHistogram(double lo, double hi,
                                       std::size_t buckets) const {
  Histogram h(lo, hi, buckets);
  for (double s : samples_) h.Add(s);
  return h;
}

double PrefixCacheStats::HitRate() const {
  return lookups > 0 ? static_cast<double>(hits) /
                           static_cast<double>(lookups)
                     : 0.0;
}

double PrefixCacheStats::TokenSaveRate() const {
  std::int64_t would_be = hit_tokens + prefill_tokens;
  return would_be > 0 ? static_cast<double>(hit_tokens) /
                            static_cast<double>(would_be)
                      : 0.0;
}

std::string PrefixCacheStats::Format() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "prefix cache: %lld/%lld hits (%.0f%%), %lld tokens saved (%.0f%% of "
      "prefill), %lld entries / %lld tokens cached, %lld evictions; pages "
      "%d used / %d shared / %d free",
      static_cast<long long>(hits), static_cast<long long>(lookups),
      100.0 * HitRate(), static_cast<long long>(hit_tokens),
      100.0 * TokenSaveRate(), static_cast<long long>(cached_entries),
      static_cast<long long>(cached_tokens),
      static_cast<long long>(evictions), pages_in_use, shared_pages,
      free_pages);
  return std::string(buf);
}

void TimeSeries::Add(double t, double value) {
  times_.push_back(t);
  values_.push_back(value);
}

std::vector<TimeSeries::WindowRow> TimeSeries::Windows(double window,
                                                       double horizon) const {
  PUNICA_CHECK(window > 0.0);
  auto n_windows = static_cast<std::size_t>(std::ceil(horizon / window));
  std::vector<WindowRow> rows(n_windows);
  for (std::size_t i = 0; i < n_windows; ++i) {
    rows[i] = {static_cast<double>(i) * window, 0.0, 0, 0.0};
  }
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] < 0.0 || times_[i] >= horizon) continue;
    auto w = static_cast<std::size_t>(times_[i] / window);
    w = std::min(w, n_windows - 1);
    rows[w].sum += values_[i];
    ++rows[w].count;
  }
  for (auto& row : rows) {
    row.mean = row.count > 0 ? row.sum / static_cast<double>(row.count) : 0.0;
  }
  return rows;
}

}  // namespace punica
