#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace punica {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
    : state_(0), inc_((stream << 1U) | 1U) {
  NextU32();
  state_ += seed;
  NextU32();
}

std::uint32_t Pcg32::NextU32() {
  std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  auto xorshifted = static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
  auto rot = static_cast<std::uint32_t>(old >> 59U);
  return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
}

std::uint32_t Pcg32::NextBounded(std::uint32_t bound) {
  if (bound <= 1) return 0;
  // Rejection sampling: discard the biased low region.
  std::uint32_t threshold = (~bound + 1U) % bound;
  for (;;) {
    std::uint32_t r = NextU32();
    if (r >= threshold) return r % bound;
  }
}

double Pcg32::NextDouble() {
  // 53 random bits into [0, 1).
  std::uint64_t hi = NextU32();
  std::uint64_t lo = NextU32();
  std::uint64_t bits = ((hi << 32U) | lo) >> 11U;
  return static_cast<double>(bits) * 0x1.0p-53;
}

float Pcg32::NextFloat(float lo, float hi) {
  return lo + static_cast<float>(NextDouble()) * (hi - lo);
}

double Pcg32::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  double z0 = mag * std::cos(2.0 * std::numbers::pi * u2);
  double z1 = mag * std::sin(2.0 * std::numbers::pi * u2);
  cached_gaussian_ = z1;
  has_cached_gaussian_ = true;
  return z0;
}

double Pcg32::NextExponential(double rate) {
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::vector<float> RandomGaussianVector(std::size_t n, float scale,
                                        Pcg32& rng) {
  std::vector<float> out(n);
  for (auto& x : out) {
    x = static_cast<float>(rng.NextGaussian()) * scale;
  }
  return out;
}

}  // namespace punica
