// Small statistics toolkit used by benchmarks, the cluster simulator and the
// statistical sampler tests: streaming moments, percentiles, histograms and
// time-series accumulation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace punica {

/// Streaming mean/variance (Welford). O(1) memory; numerically stable.
class RunningStat {
 public:
  void Add(double x);
  void Merge(const RunningStat& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile with linear interpolation; q in [0, 100]. Copies + sorts.
double Percentile(std::span<const double> xs, double q);

/// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
/// first/last bucket. Used for batch-size and latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void Add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  std::uint64_t total() const { return total_; }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;

  /// Renders a one-line ASCII sparkline ("▁▂▃…") of bucket mass.
  std::string Sparkline() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Latency sample recorder shared by every per-request latency metric in
/// the serving stack: inter-token latency (ITL), time-to-first-token
/// (TTFT), queueing delay and end-to-end latency all accumulate into one of
/// these, so mean/percentile/max definitions are identical everywhere a
/// tail is quoted. Keeps every sample (percentiles need them) plus a
/// RunningStat for O(1) moments; Quantile() shares util/stats Percentile.
class LatencyRecorder {
 public:
  void Add(double seconds);
  void Merge(const LatencyRecorder& other);

  std::size_t count() const { return stat_.count(); }
  bool empty() const { return stat_.count() == 0; }
  double mean() const { return stat_.mean(); }
  double min() const { return stat_.min(); }
  double max() const { return stat_.max(); }
  double sum() const { return stat_.sum(); }
  /// Percentile q in [0, 100] with linear interpolation; 0.0 when empty
  /// (metrics print before any sample exists — e.g. TTFT when every
  /// request was shed).
  double Quantile(double q) const;
  double p50() const { return Quantile(50.0); }
  double p95() const { return Quantile(95.0); }
  double p99() const { return Quantile(99.0); }

  std::span<const double> samples() const { return samples_; }
  /// Fixed-width histogram of the samples over [lo, hi).
  Histogram ToHistogram(double lo, double hi, std::size_t buckets) const;

 private:
  RunningStat stat_;
  std::vector<double> samples_;
};

/// Shared-prefix KV-cache observability: counters accumulated by a serving
/// backend (numeric Engine or simulated GpuRunner) plus point-in-time
/// gauges filled when the snapshot is taken. One struct on both tiers so
/// benches and examples print identical reports.
struct PrefixCacheStats {
  // Counters.
  std::int64_t lookups = 0;     ///< admissions that consulted the index
  std::int64_t hits = 0;        ///< admissions with a usable cached prefix
  std::int64_t hit_tokens = 0;  ///< prefill tokens skipped via cache hits
  std::int64_t prefill_tokens = 0;  ///< prefill tokens actually computed
  std::int64_t insertions = 0;  ///< prefixes registered
  std::int64_t evictions = 0;   ///< entries dropped (LRU, page pressure)
  // Gauges (state at snapshot time).
  std::int64_t cached_entries = 0;
  std::int64_t cached_tokens = 0;
  std::int32_t pages_in_use = 0;
  std::int32_t shared_pages = 0;
  std::int32_t free_pages = 0;

  double HitRate() const;
  /// Fraction of would-be prefill tokens served from cache:
  /// hit_tokens / (hit_tokens + prefill_tokens).
  double TokenSaveRate() const;
  /// One-line human-readable report.
  std::string Format() const;
};

/// Accumulates (time, value) samples and reduces them into fixed windows —
/// e.g. tokens/s per 60-second bucket for the Fig. 13 time series.
class TimeSeries {
 public:
  void Add(double t, double value);

  struct WindowRow {
    double window_start;
    double sum;
    std::size_t count;
    double mean;
  };
  /// Buckets samples into [0,w), [w,2w)… windows over [0, horizon).
  std::vector<WindowRow> Windows(double window, double horizon) const;

  std::size_t size() const { return times_.size(); }
  std::span<const double> times() const { return times_; }
  std::span<const double> values() const { return values_; }

 private:
  std::vector<double> times_;
  std::vector<double> values_;
};

}  // namespace punica
