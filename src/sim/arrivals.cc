#include "sim/arrivals.h"

#include <algorithm>

#include "util/check.h"

namespace punica {

std::vector<double> PoissonArrivals(double rate, double horizon, Pcg32& rng) {
  PUNICA_CHECK(rate >= 0.0);
  std::vector<double> times;
  if (rate == 0.0) return times;
  double t = 0.0;
  for (;;) {
    t += rng.NextExponential(rate);
    if (t >= horizon) break;
    times.push_back(t);
  }
  return times;
}

std::vector<double> PoissonArrivalsKeyed(double rate, std::size_t n,
                                         std::uint64_t seed) {
  PUNICA_CHECK(rate > 0.0);
  std::vector<double> times;
  times.reserve(n);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // Same (seed, key)→stream construction as TenantSystemPromptLen: each
    // gap gets its own generator, so gap i is a pure function of (seed, i).
    Pcg32 rng(seed ^ (0x6C62272E07BB0142ULL +
                      static_cast<std::uint64_t>(i) * 0x9E3779B97F4A7C15ULL));
    t += rng.NextExponential(rate);
    times.push_back(t);
  }
  return times;
}

std::vector<double> PoissonArrivals(
    const std::function<double(double)>& rate, double rate_max,
    double horizon, Pcg32& rng) {
  PUNICA_CHECK(rate_max > 0.0);
  std::vector<double> times;
  double t = 0.0;
  for (;;) {
    t += rng.NextExponential(rate_max);
    if (t >= horizon) break;
    double lambda = rate(t);
    PUNICA_CHECK_MSG(lambda <= rate_max * (1.0 + 1e-9),
                     "rate exceeds the thinning bound");
    if (rng.NextDouble() < lambda / rate_max) {
      times.push_back(t);
    }
  }
  return times;
}

double RampRate(double t, double horizon, double peak) {
  if (t < 0.0 || t >= horizon) return 0.0;
  double half = horizon / 2.0;
  double frac = t < half ? t / half : (horizon - t) / half;
  return std::max(0.0, peak * frac);
}

}  // namespace punica
