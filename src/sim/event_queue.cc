#include "sim/event_queue.h"

#include "util/check.h"

namespace punica {

void EventQueue::Schedule(double time, Callback cb) {
  PUNICA_CHECK_MSG(time >= now_, "cannot schedule into the past");
  heap_.push(Event{time, next_seq_++, std::move(cb)});
}

bool EventQueue::RunNext() {
  if (heap_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB-ish —
  // copy the callback instead (events are small).
  Event ev = heap_.top();
  heap_.pop();
  now_ = ev.time;
  ev.cb();
  return true;
}

void EventQueue::RunUntil(double t_end) {
  while (!heap_.empty() && heap_.top().time <= t_end) {
    RunNext();
  }
  if (now_ < t_end) now_ = t_end;
}

void EventQueue::RunAll() {
  while (RunNext()) {
  }
}

}  // namespace punica
