// Discrete-event simulation engine.
//
// The cluster experiments (Fig. 13) run one simulated hour of serving: GPU
// step completions, request arrivals and scheduler decisions are events on a
// single virtual timeline. Events at equal timestamps run in scheduling
// order (FIFO tiebreak) so simulations are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace punica {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` at absolute simulated time `time` (must be ≥ now).
  void Schedule(double time, Callback cb);

  /// Schedules `cb` `delay` seconds from now.
  void ScheduleAfter(double delay, Callback cb) {
    Schedule(now_ + delay, std::move(cb));
  }

  /// Pops and runs the earliest event; returns false when empty.
  bool RunNext();

  /// Runs events until the queue is empty or the next event is after
  /// `t_end`; the clock ends at min(t_end, last event time).
  void RunUntil(double t_end);

  /// Drains the queue completely.
  void RunAll();

  double now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  // FIFO tiebreak for equal timestamps
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace punica
