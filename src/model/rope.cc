#include "model/rope.h"

#include <cmath>
#include <cstdint>

#include "util/check.h"

namespace punica {

void ApplyRope(std::span<float> x, int num_heads, int head_dim,
               std::int64_t pos, float theta) {
  PUNICA_CHECK(head_dim % 2 == 0);
  PUNICA_CHECK(x.size() == static_cast<std::size_t>(num_heads) *
                               static_cast<std::size_t>(head_dim));
  for (int h = 0; h < num_heads; ++h) {
    float* head = &x[static_cast<std::size_t>(h) *
                     static_cast<std::size_t>(head_dim)];
    for (int i = 0; i < head_dim / 2; ++i) {
      float freq = std::pow(theta, -2.0f * static_cast<float>(i) /
                                       static_cast<float>(head_dim));
      float angle = static_cast<float>(pos) * freq;
      float c = std::cos(angle);
      float s = std::sin(angle);
      float x0 = head[2 * i];
      float x1 = head[2 * i + 1];
      head[2 * i] = x0 * c - x1 * s;
      head[2 * i + 1] = x0 * s + x1 * c;
    }
  }
}

}  // namespace punica
