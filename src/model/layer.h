// A full Llama transformer layer with batched LoRA addons on all seven dense
// projections — the numeric core the paper's runtime invokes per layer.
//
// Batch convention (paper §6): prefill requests first (each contributing its
// chunk of prompt tokens), decode requests after (one token each). Dense
// projections and LoRA addons treat all tokens as one [tokens, h] batch;
// self-attention splits into BatchPrefill / BatchDecode kernels.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/lora.h"
#include "core/segment.h"
#include "kvcache/kvcache.h"
#include "model/config.h"
#include "tensor/tensor.h"
#include "util/compute_context.h"

namespace punica {

/// Dense weights of one transformer layer, row-major [h_in, h_out] in the
/// config's weight_dtype (f16 or a tensor/quant.h groupwise format). The
/// norms stay f16 — they are O(hidden) and feed exact per-element scaling.
struct LayerWeights {
  WeightMatrix proj[kNumProj];
  Tensor<f16> attn_norm;  ///< [hidden]
  Tensor<f16> mlp_norm;   ///< [hidden]

  /// Draws the same seeded f16 master weights regardless of dtype, then
  /// quantizes per config.weight_dtype — deterministic, and dtype variants
  /// of one (config, seed) share the underlying parameters.
  static LayerWeights Random(const LlamaConfig& config, std::uint64_t seed);
};

/// LoRA adapters for one layer: one (A, B) pair per projection.
struct LoraLayerWeights {
  LoraAB proj[kNumProj];

  static LoraLayerWeights Random(const LlamaConfig& config, int rank,
                                 std::uint64_t seed);
  std::size_t byte_size() const;
};

/// A whole LoRA model: adapters for every layer.
struct LoraModelWeights {
  std::vector<LoraLayerWeights> layers;
  int rank = 0;

  static LoraModelWeights Random(const LlamaConfig& config, int rank,
                                 std::uint64_t seed);
  std::size_t byte_size() const;
};

/// One request's slice of a batched model invocation.
struct BatchEntry {
  SeqId seq = 0;              ///< KvCache sequence
  LoraId lora = -1;           ///< -1 = backbone only
  std::int32_t num_tokens = 0;  ///< chunk length (1 for decode)
  std::int64_t pos_offset = 0;  ///< cache position of the chunk's first token
  bool is_prefill = false;
  /// False for a non-final prefill chunk (chunked prefill): the entry's
  /// last row is mid-prompt, so its next-token logits are meaningless —
  /// the model skips the LM head for it and emits nothing.
  bool emit_logits = true;
};

/// Batch metadata built once per model invocation and reused by every layer
/// (BatchLen) and every projection (SGMV segments) — paper §6.
struct ModelBatch {
  std::vector<BatchEntry> entries;       ///< prefills first, then decodes
  BatchLen batch_len;
  Segments segments;                     ///< over token rows, by LoRA id
  std::vector<SeqId> decode_seqs;        ///< seqs of the decode tail
  std::vector<std::int64_t> row_pos;     ///< cache position per token row
  std::vector<SeqId> row_seq;            ///< sequence per token row

  int total_tokens() const { return batch_len.total_tokens(); }

  /// Validates ordering (prefills first) and derives all metadata.
  static ModelBatch Build(std::vector<BatchEntry> entries);
};

/// Scratch buffers for a layer forward; sized for the current token count
/// and reused across layers and invocations to avoid reallocation.
class LayerWorkspace {
 public:
  void Resize(const LlamaConfig& config, int tokens, int max_rank);

  std::vector<float> normed;    ///< [tokens, h]
  std::vector<float> q;         ///< [tokens, h]
  std::vector<float> k;         ///< [tokens, kv]
  std::vector<float> v;         ///< [tokens, kv]
  std::vector<float> attn_out;  ///< [tokens, h]
  std::vector<float> gate;      ///< [tokens, ffn]
  std::vector<float> up;        ///< [tokens, ffn]
  std::vector<float> lora_tmp;  ///< [tokens, max_rank·(1+kMaxSplitKPartitions)]
                                ///< — v rows + SGMV split-K scratch (see
                                ///< BatchedLoraAddon's workspace contract)
  std::vector<float> attn_scratch;  ///< split-KV softmax partials; grown on
                                    ///< demand by the attention kernels and
                                    ///< reused across layers/invocations
};

/// Runs one transformer layer in place over activations `x` ([tokens, h]).
/// `seg_lora[i]` is the LoRA model for segment i (nullptr = backbone only);
/// adapters for this layer are taken from seg_lora[i]->layers[layer].
/// K/V for every row is written into the cache at row_pos (the cache must
/// already be extended to cover those positions).
void LayerForward(const LlamaConfig& config, const LayerWeights& weights,
                  std::span<const LoraModelWeights* const> seg_lora,
                  const ModelBatch& batch, int layer, PagedKvCache& kv,
                  std::span<float> x, LayerWorkspace& ws,
                  const ComputeContext& ctx = ComputeContext::Default());

}  // namespace punica
