// Llama-architecture model configurations.
//
// The paper evaluates LoRA fine-tunes of Llama-2 7B/13B/70B; these configs
// drive both the analytical GPU cost model (at paper scale) and the real
// CPU numeric model (at tiny scale for correctness tests and examples).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "tensor/quant.h"

namespace punica {

struct LlamaConfig {
  std::string name;
  int hidden_size = 0;     ///< model dimension h
  int num_layers = 0;      ///< L
  int num_heads = 0;       ///< query heads
  int num_kv_heads = 0;    ///< KV heads (GQA when < num_heads)
  int ffn_hidden = 0;      ///< MLP intermediate size (SwiGLU)
  int vocab_size = 0;
  float rope_theta = 10000.0f;
  float rms_eps = 1e-5f;
  /// Storage format of the dense projections + LM head (tensor/quant.h).
  /// Embeddings, norms and LoRA adapters stay f16. Weights are quantized
  /// deterministically from the same seeded f16 master weights, so two
  /// models differing only in dtype share the underlying parameters.
  WeightDtype weight_dtype = WeightDtype::kF16;

  int head_dim() const { return hidden_size / num_heads; }
  int kv_dim() const { return num_kv_heads * head_dim(); }

  /// Dense-projection parameter count for one transformer layer:
  /// q,o: h·h; k,v: h·kv; gate,up: h·ffn; down: ffn·h.
  std::int64_t params_per_layer() const;

  /// Whole-model parameters (layers + embedding + lm head).
  std::int64_t total_params() const;

  /// Stored bytes of one layer's dense projections under weight_dtype
  /// (2 B/param at f16; 34/64ths of that at q8_0, 18/64ths at q4_0) — the
  /// term every capacity/latency account downstream scales by.
  std::int64_t layer_weight_bytes() const {
    return WeightBytesFor(params_per_layer(), weight_dtype);
  }
  /// Whole-model stored bytes: quantized layers + LM head, f16 embedding.
  std::int64_t total_weight_bytes() const {
    const std::int64_t embed =
        static_cast<std::int64_t>(vocab_size) * hidden_size;
    return WeightBytesFor(params_per_layer() * num_layers + embed,
                          weight_dtype) +
           embed * 2;
  }

  /// LoRA adapter parameters for one layer at rank r: each of the 7
  /// projections gets A [h_in, r] + B [r, h_out].
  std::int64_t lora_params_per_layer(int rank) const;
  std::int64_t lora_total_params(int rank) const {
    return lora_params_per_layer(rank) * num_layers;
  }
  std::int64_t lora_total_bytes(int rank) const {
    return lora_total_params(rank) * 2;
  }

  /// KvCache bytes per token across all layers (2 · L · kv_dim fp16).
  std::int64_t kv_bytes_per_token() const {
    return static_cast<std::int64_t>(2) * num_layers * kv_dim() * 2;
  }
};

/// The seven dense projections LoRA is applied to (paper §2.2: "all dense
/// projections"; §6: segment indices reused 7·L times).
enum class Proj : int {
  kQ = 0,
  kK,
  kV,
  kO,
  kGate,
  kUp,
  kDown,
};
inline constexpr int kNumProj = 7;

/// Input/output dims of a projection under a config.
struct ProjShape {
  int h_in = 0;
  int h_out = 0;
};
ProjShape ShapeOf(const LlamaConfig& config, Proj proj);

LlamaConfig Llama7B();
LlamaConfig Llama13B();
LlamaConfig Llama70B();

/// A Llama-shaped model tiny enough for exact CPU execution in tests and
/// examples (hidden 64, 2 layers, GQA 4:2, vocab 256).
LlamaConfig TinyLlama();

/// Slightly larger tiny config with more layers for end-to-end tests.
LlamaConfig TinyLlama4L();

}  // namespace punica
