// Batched attention over the paged KvCache — the FlashInfer-style interface
// the paper uses (§6): a BatchPrefill kernel for the leading prefill tokens
// (causal within the prompt) and a BatchDecode kernel for the trailing
// decode tokens (each attends over its sequence's full cache), with no
// padding anywhere. GQA is supported (query-head groups share a KV head).
//
// Execution (flash-decoding over page runs): the KV range of every
// (token, head) pair is evaluated as ascending fixed-length blocks of
// kAttnBlockLen positions. Each block's softmax partial (max, normaliser,
// unnormalised V accumulator) is computed in two passes over the block's
// contiguous page runs (KvRunCursor + the SimdOps strip entries), and the
// partials fold left-to-right in ascending block order. Because the block
// structure is anchored at absolute position 0 and the fold order is fixed,
// the result is bit-identical whether blocks are folded inline or computed
// by S parallel split-KV chunks and folded afterwards — at any thread
// count, split size and SIMD level. Tasks group the GQA query heads that
// share a KV head, block-interleaved, so each cache block streams from
// memory once per group; per head the arithmetic sequence is unchanged. A
// work-size heuristic picks the split from the task count vs. the
// context's worker count (ComputeConfig::attn_split / PUNICA_ATTN_SPLIT
// force it).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kvcache/kvcache.h"
#include "model/config.h"
#include "util/compute_context.h"

namespace punica {

/// Fixed softmax block length (cache positions per partial). Part of the
/// numerics contract: attention is always evaluated as ascending blocks of
/// this length folded left-to-right, independent of split size and thread
/// count — which is what makes split-KV bit-deterministic. Changing it
/// changes streams.
inline constexpr std::int64_t kAttnBlockLen = 128;

/// Largest head_dim the kernels' fixed per-task scratch covers.
inline constexpr int kMaxAttnHeadDim = 256;

/// Attention for one prefill request chunk.
/// `q` is [chunk_len, num_heads·head_dim] with RoPE already applied.
/// K/V for positions [0, pos_offset + chunk_len) must already be in the
/// cache; token j of the chunk attends causally over [0, pos_offset + j].
/// Output overwrites `out` ([chunk_len, num_heads·head_dim]).
/// `scratch` (optional, grown on demand) holds split-KV partials so the
/// steady-state hot path never allocates; null falls back to call-local
/// SmallBuffer storage.
void BatchPrefillAttention(const LlamaConfig& config, const PagedKvCache& kv,
                           SeqId seq, int layer, std::int64_t pos_offset,
                           std::span<const float> q, std::span<float> out,
                           const ComputeContext& ctx =
                               ComputeContext::Default(),
                           std::vector<float>* scratch = nullptr);

/// Attention for a batch of decode tokens: row i of `q` belongs to seqs[i]
/// and attends over that sequence's entire cache [0, SeqLen). Output rows
/// align with input rows.
void BatchDecodeAttention(const LlamaConfig& config, const PagedKvCache& kv,
                          std::span<const SeqId> seqs, int layer,
                          std::span<const float> q, std::span<float> out,
                          const ComputeContext& ctx =
                              ComputeContext::Default(),
                          std::vector<float>* scratch = nullptr);

/// Head-ranged variants for tensor parallelism: the caller owns query heads
/// [head_begin, head_end) and `q`/`out` are [..., (head_end−head_begin)·D]
/// slices. KV heads are addressed globally (head/group), so ranks read
/// their slice of the shared cache layout.
void BatchPrefillAttentionRanged(const LlamaConfig& config,
                                 const PagedKvCache& kv, SeqId seq, int layer,
                                 std::int64_t pos_offset,
                                 std::span<const float> q,
                                 std::span<float> out, int head_begin,
                                 int head_end,
                                 const ComputeContext& ctx =
                                     ComputeContext::Default(),
                                 std::vector<float>* scratch = nullptr);
void BatchDecodeAttentionRanged(const LlamaConfig& config,
                                const PagedKvCache& kv,
                                std::span<const SeqId> seqs, int layer,
                                std::span<const float> q, std::span<float> out,
                                int head_begin, int head_end,
                                const ComputeContext& ctx =
                                    ComputeContext::Default(),
                                std::vector<float>* scratch = nullptr);

}  // namespace punica
