// Batched attention over the paged KvCache — the FlashInfer-style interface
// the paper uses (§6): a BatchPrefill kernel for the leading prefill tokens
// (causal within the prompt) and a BatchDecode kernel for the trailing
// decode tokens (each attends over its sequence's full cache), with no
// padding anywhere. GQA is supported (query-head groups share a KV head).
#pragma once

#include <cstdint>
#include <span>

#include "kvcache/kvcache.h"
#include "model/config.h"
#include "util/compute_context.h"

namespace punica {

/// Attention for one prefill request chunk.
/// `q` is [chunk_len, num_heads·head_dim] with RoPE already applied.
/// K/V for positions [0, pos_offset + chunk_len) must already be in the
/// cache; token j of the chunk attends causally over [0, pos_offset + j].
/// Output overwrites `out` ([chunk_len, num_heads·head_dim]).
/// Parallel over (token, head) pairs: each output head slice has exactly
/// one writer, so results are thread-count invariant.
void BatchPrefillAttention(const LlamaConfig& config, const PagedKvCache& kv,
                           SeqId seq, int layer, std::int64_t pos_offset,
                           std::span<const float> q, std::span<float> out,
                           const ComputeContext& ctx =
                               ComputeContext::Default());

/// Attention for a batch of decode tokens: row i of `q` belongs to seqs[i]
/// and attends over that sequence's entire cache [0, SeqLen). Output rows
/// align with input rows. Parallel over (row, head) pairs.
void BatchDecodeAttention(const LlamaConfig& config, const PagedKvCache& kv,
                          std::span<const SeqId> seqs, int layer,
                          std::span<const float> q, std::span<float> out,
                          const ComputeContext& ctx =
                              ComputeContext::Default());

/// Head-ranged variants for tensor parallelism: the caller owns query heads
/// [head_begin, head_end) and `q`/`out` are [..., (head_end−head_begin)·D]
/// slices. KV heads are addressed globally (head/group), so ranks read
/// their slice of the shared cache layout.
void BatchPrefillAttentionRanged(const LlamaConfig& config,
                                 const PagedKvCache& kv, SeqId seq, int layer,
                                 std::int64_t pos_offset,
                                 std::span<const float> q,
                                 std::span<float> out, int head_begin,
                                 int head_end,
                                 const ComputeContext& ctx =
                                     ComputeContext::Default());
void BatchDecodeAttentionRanged(const LlamaConfig& config,
                                const PagedKvCache& kv,
                                std::span<const SeqId> seqs, int layer,
                                std::span<const float> q, std::span<float> out,
                                int head_begin, int head_end,
                                const ComputeContext& ctx =
                                    ComputeContext::Default());

}  // namespace punica
