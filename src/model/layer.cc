#include "model/layer.h"

#include <algorithm>
#include <cmath>

#include "model/attention.h"
#include "model/rope.h"
#include "tensor/gemm.h"
#include "util/check.h"
#include "util/rng.h"

namespace punica {
namespace {

Tensor<f16> RandomF16(std::vector<std::int64_t> shape, float scale,
                      Pcg32& rng) {
  Tensor<f16> t(std::move(shape));
  for (auto& v : t.data()) {
    v = f16(static_cast<float>(rng.NextGaussian()) * scale);
  }
  return t;
}

}  // namespace

LayerWeights LayerWeights::Random(const LlamaConfig& config,
                                  std::uint64_t seed) {
  Pcg32 rng(seed);
  LayerWeights w;
  for (int p = 0; p < kNumProj; ++p) {
    ProjShape s = ShapeOf(config, static_cast<Proj>(p));
    float scale = 1.0f / std::sqrt(static_cast<float>(s.h_in));
    // Residual scaling (GPT-2-style, depth-linear): the two projections
    // that write into the residual stream shrink by 1/(2·num_layers), so
    // with random weights the stream stays dominated by the token
    // embedding instead of accumulated layer noise. Without it the final
    // hidden state is mostly noise and greedy argmax sits on razor-thin
    // margins — every downstream stream comparison then measures
    // tie-breaking luck instead of numerics.
    if (static_cast<Proj>(p) == Proj::kO || static_cast<Proj>(p) == Proj::kDown) {
      scale /= 2.0f * static_cast<float>(config.num_layers);
    }
    // Draw the f16 master weights from the same RNG stream at every dtype,
    // then quantize: the dtype selects the storage, never the parameters.
    w.proj[p] = WeightMatrix::FromF16(RandomF16({s.h_in, s.h_out}, scale, rng),
                                      config.weight_dtype);
  }
  w.attn_norm = Tensor<f16>({config.hidden_size});
  w.mlp_norm = Tensor<f16>({config.hidden_size});
  for (auto& v : w.attn_norm.data()) v = f16(1.0f);
  for (auto& v : w.mlp_norm.data()) v = f16(1.0f);
  return w;
}

LoraLayerWeights LoraLayerWeights::Random(const LlamaConfig& config, int rank,
                                          std::uint64_t seed) {
  LoraLayerWeights w;
  for (int p = 0; p < kNumProj; ++p) {
    ProjShape s = ShapeOf(config, static_cast<Proj>(p));
    w.proj[p] = LoraAB::Random(s.h_in, s.h_out, rank,
                               seed * 31 + static_cast<std::uint64_t>(p));
  }
  return w;
}

std::size_t LoraLayerWeights::byte_size() const {
  std::size_t total = 0;
  for (const auto& p : proj) total += p.byte_size();
  return total;
}

LoraModelWeights LoraModelWeights::Random(const LlamaConfig& config, int rank,
                                          std::uint64_t seed) {
  LoraModelWeights w;
  w.rank = rank;
  w.layers.reserve(static_cast<std::size_t>(config.num_layers));
  for (int l = 0; l < config.num_layers; ++l) {
    w.layers.push_back(LoraLayerWeights::Random(
        config, rank, seed * 1000003 + static_cast<std::uint64_t>(l)));
  }
  return w;
}

std::size_t LoraModelWeights::byte_size() const {
  std::size_t total = 0;
  for (const auto& l : layers) total += l.byte_size();
  return total;
}

ModelBatch ModelBatch::Build(std::vector<BatchEntry> entries) {
  ModelBatch batch;
  batch.entries = std::move(entries);

  bool seen_decode = false;
  std::vector<std::int32_t> prefill_lengths;
  std::vector<LoraId> row_lora;
  for (const auto& e : batch.entries) {
    PUNICA_CHECK_MSG(e.num_tokens > 0, "entry must contribute tokens");
    if (e.is_prefill) {
      PUNICA_CHECK_MSG(!seen_decode, "prefills must precede decodes");
      prefill_lengths.push_back(e.num_tokens);
    } else {
      PUNICA_CHECK_MSG(e.num_tokens == 1, "decode entries are single-token");
      PUNICA_CHECK_MSG(e.emit_logits, "decode entries always emit");
      seen_decode = true;
      batch.decode_seqs.push_back(e.seq);
    }
    for (std::int32_t j = 0; j < e.num_tokens; ++j) {
      row_lora.push_back(e.lora);
      batch.row_pos.push_back(e.pos_offset + j);
      batch.row_seq.push_back(e.seq);
    }
  }
  batch.batch_len = BuildBatchLen(prefill_lengths,
                                  static_cast<int>(batch.decode_seqs.size()));
  batch.segments = BuildSegments(row_lora);
  return batch;
}

void LayerWorkspace::Resize(const LlamaConfig& config, int tokens,
                            int max_rank) {
  auto t = static_cast<std::size_t>(tokens);
  normed.assign(t * static_cast<std::size_t>(config.hidden_size), 0.0f);
  q.assign(t * static_cast<std::size_t>(config.hidden_size), 0.0f);
  k.assign(t * static_cast<std::size_t>(config.kv_dim()), 0.0f);
  v.assign(t * static_cast<std::size_t>(config.kv_dim()), 0.0f);
  attn_out.assign(t * static_cast<std::size_t>(config.hidden_size), 0.0f);
  gate.assign(t * static_cast<std::size_t>(config.ffn_hidden), 0.0f);
  up.assign(t * static_cast<std::size_t>(config.ffn_hidden), 0.0f);
  // v rows plus room for the SGMV shrink's split-K partials, so the LoRA
  // addon never allocates inside Step (see BatchedLoraAddon's contract).
  // resize, not assign: the addon zeroes the v prefix itself and the
  // partials tail is documented as clobbered-uninitialized.
  lora_tmp.resize(t * static_cast<std::size_t>(std::max(max_rank, 1)) *
                  (1 + static_cast<std::size_t>(kMaxSplitKPartitions)));
}

namespace {

/// Grain for elementwise ParallelFor loops (residual adds, SiLU·up): small
/// enough to split across workers on big FFN buffers, large enough that a
/// tiny decode batch runs inline.
constexpr std::int64_t kElemGrain = 4096;

/// Dense projection + batched LoRA addon for all token rows.
void ProjectWithLora(const LlamaConfig& config, const LayerWeights& weights,
                     std::span<const LoraModelWeights* const> seg_lora,
                     const ModelBatch& batch, int layer, Proj proj,
                     std::span<const float> in, std::span<float> out,
                     std::span<float> lora_tmp, const ComputeContext& ctx) {
  ProjShape shape = ShapeOf(config, proj);
  int tokens = batch.total_tokens();
  GemmSetW(in, weights.proj[static_cast<int>(proj)], out, tokens, shape.h_in,
           shape.h_out, ctx);

  std::vector<const LoraAB*> adapters(seg_lora.size(), nullptr);
  bool any = false;
  for (std::size_t i = 0; i < seg_lora.size(); ++i) {
    if (seg_lora[i] != nullptr) {
      adapters[i] =
          &seg_lora[i]->layers[static_cast<std::size_t>(layer)]
               .proj[static_cast<int>(proj)];
      any = true;
    }
  }
  if (any) {
    BatchedLoraAddon(out, in, adapters, batch.segments.offsets, shape.h_in,
                     shape.h_out, lora_tmp, ctx);
  }
}

}  // namespace

void LayerForward(const LlamaConfig& config, const LayerWeights& weights,
                  std::span<const LoraModelWeights* const> seg_lora,
                  const ModelBatch& batch, int layer, PagedKvCache& kv,
                  std::span<float> x, LayerWorkspace& ws,
                  const ComputeContext& ctx) {
  const int tokens = batch.total_tokens();
  const auto h = static_cast<std::size_t>(config.hidden_size);
  const auto kvd = static_cast<std::size_t>(config.kv_dim());
  PUNICA_CHECK(x.size() == static_cast<std::size_t>(tokens) * h);
  PUNICA_CHECK(seg_lora.size() ==
               static_cast<std::size_t>(batch.segments.num_segments()));

  // --- Attention block ---
  // Token rows are independent in every non-attention op of the layer, so
  // they parallelize with one writer per row.
  ctx.ParallelFor(tokens, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t t = lo; t < hi; ++t) {
      RmsNormRow(x.subspan(static_cast<std::size_t>(t) * h, h),
                 weights.attn_norm.data(),
                 std::span<float>(ws.normed).subspan(
                     static_cast<std::size_t>(t) * h, h),
                 config.rms_eps);
    }
  });

  ProjectWithLora(config, weights, seg_lora, batch, layer, Proj::kQ,
                  ws.normed, ws.q, ws.lora_tmp, ctx);
  ProjectWithLora(config, weights, seg_lora, batch, layer, Proj::kK,
                  ws.normed, ws.k, ws.lora_tmp, ctx);
  ProjectWithLora(config, weights, seg_lora, batch, layer, Proj::kV,
                  ws.normed, ws.v, ws.lora_tmp, ctx);

  // RoPE on Q (all query heads) and K (KV heads), then write K/V into the
  // paged cache at each row's absolute position (distinct positions, so
  // rows write disjoint cache entries).
  ctx.ParallelFor(tokens, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t t = lo; t < hi; ++t) {
      std::int64_t pos = batch.row_pos[static_cast<std::size_t>(t)];
      ApplyRope(std::span<float>(ws.q).subspan(
                    static_cast<std::size_t>(t) * h, h),
                config.num_heads, config.head_dim(), pos, config.rope_theta);
      ApplyRope(std::span<float>(ws.k).subspan(
                    static_cast<std::size_t>(t) * kvd, kvd),
                config.num_kv_heads, config.head_dim(), pos,
                config.rope_theta);
      SeqId seq = batch.row_seq[static_cast<std::size_t>(t)];
      FloatToHalfN(std::span<const float>(ws.k).subspan(
                       static_cast<std::size_t>(t) * kvd, kvd),
                   kv.Entry(seq, layer, pos, KvSlot::kKey));
      FloatToHalfN(std::span<const float>(ws.v).subspan(
                       static_cast<std::size_t>(t) * kvd, kvd),
                   kv.Entry(seq, layer, pos, KvSlot::kValue));
    }
  });

  // BatchPrefill over the leading prefill chunks, BatchDecode over the tail.
  std::size_t row = 0;
  for (const auto& e : batch.entries) {
    if (!e.is_prefill) break;
    auto chunk = static_cast<std::size_t>(e.num_tokens);
    BatchPrefillAttention(
        config, kv, e.seq, layer, e.pos_offset,
        std::span<const float>(ws.q).subspan(row * h, chunk * h),
        std::span<float>(ws.attn_out).subspan(row * h, chunk * h), ctx,
        &ws.attn_scratch);
    row += chunk;
  }
  if (!batch.decode_seqs.empty()) {
    auto n_dec = batch.decode_seqs.size();
    BatchDecodeAttention(
        config, kv, batch.decode_seqs, layer,
        std::span<const float>(ws.q).subspan(row * h, n_dec * h),
        std::span<float>(ws.attn_out).subspan(row * h, n_dec * h), ctx,
        &ws.attn_scratch);
  }

  // Output projection (+LoRA) and residual. ws.normed is reused as the
  // projection result buffer.
  ProjectWithLora(config, weights, seg_lora, batch, layer, Proj::kO,
                  ws.attn_out, ws.normed, ws.lora_tmp, ctx);
  ctx.ParallelFor(static_cast<std::int64_t>(x.size()), kElemGrain,
                  [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      x[static_cast<std::size_t>(i)] += ws.normed[static_cast<std::size_t>(i)];
    }
  });

  // --- MLP block (SwiGLU) ---
  ctx.ParallelFor(tokens, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t t = lo; t < hi; ++t) {
      RmsNormRow(x.subspan(static_cast<std::size_t>(t) * h, h),
                 weights.mlp_norm.data(),
                 std::span<float>(ws.normed).subspan(
                     static_cast<std::size_t>(t) * h, h),
                 config.rms_eps);
    }
  });
  ProjectWithLora(config, weights, seg_lora, batch, layer, Proj::kGate,
                  ws.normed, ws.gate, ws.lora_tmp, ctx);
  ProjectWithLora(config, weights, seg_lora, batch, layer, Proj::kUp,
                  ws.normed, ws.up, ws.lora_tmp, ctx);
  ctx.ParallelFor(static_cast<std::int64_t>(ws.gate.size()), kElemGrain,
                  [&](std::int64_t lo, std::int64_t hi) {
    auto slice = std::span<float>(ws.gate).subspan(
        static_cast<std::size_t>(lo), static_cast<std::size_t>(hi - lo));
    SiluInPlace(slice);
    for (std::int64_t i = lo; i < hi; ++i) {
      ws.gate[static_cast<std::size_t>(i)] *=
          ws.up[static_cast<std::size_t>(i)];
    }
  });
  ProjectWithLora(config, weights, seg_lora, batch, layer, Proj::kDown,
                  ws.gate, ws.attn_out, ws.lora_tmp, ctx);
  ctx.ParallelFor(static_cast<std::int64_t>(x.size()), kElemGrain,
                  [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      x[static_cast<std::size_t>(i)] +=
          ws.attn_out[static_cast<std::size_t>(i)];
    }
  });
}

}  // namespace punica
