#include "model/sampler.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/check.h"

namespace punica {

Sampler::Sampler(SamplerConfig config) : config_(config) {
  PUNICA_CHECK(config_.temperature >= 0.0);
  PUNICA_CHECK(config_.top_k >= 0);
  PUNICA_CHECK(config_.top_p > 0.0 && config_.top_p <= 1.0);
}

std::int32_t ArgMaxToken(std::span<const float> logits) {
  PUNICA_CHECK(!logits.empty());
  return static_cast<std::int32_t>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

std::int32_t Sampler::Sample(std::span<const float> logits,
                             Pcg32& rng) const {
  PUNICA_CHECK(!logits.empty());
  if (config_.temperature == 0.0) return ArgMaxToken(logits);

  // Work on (logit, index) pairs sorted descending so top-k and top-p are
  // prefix truncations.
  std::vector<std::int32_t> order(logits.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    float la = logits[static_cast<std::size_t>(a)];
    float lb = logits[static_cast<std::size_t>(b)];
    if (la != lb) return la > lb;
    return a < b;
  });

  std::size_t keep = order.size();
  if (config_.top_k > 0) {
    keep = std::min(keep, static_cast<std::size_t>(config_.top_k));
  }

  // Softmax over the kept prefix at the given temperature.
  float max_logit = logits[static_cast<std::size_t>(order[0])];
  std::vector<double> probs(keep);
  double total = 0.0;
  for (std::size_t i = 0; i < keep; ++i) {
    double z = (logits[static_cast<std::size_t>(order[i])] - max_logit) /
               config_.temperature;
    probs[i] = std::exp(z);
    total += probs[i];
  }
  for (auto& p : probs) p /= total;

  if (config_.top_p < 1.0) {
    double mass = 0.0;
    std::size_t cut = keep;
    for (std::size_t i = 0; i < keep; ++i) {
      mass += probs[i];
      if (mass >= config_.top_p) {
        cut = i + 1;
        break;
      }
    }
    keep = cut;
    double kept_mass = 0.0;
    for (std::size_t i = 0; i < keep; ++i) kept_mass += probs[i];
    for (std::size_t i = 0; i < keep; ++i) probs[i] /= kept_mass;
  }

  double u = rng.NextDouble();
  double acc = 0.0;
  for (std::size_t i = 0; i < keep; ++i) {
    acc += probs[i];
    if (u < acc) return order[i];
  }
  return order[keep - 1];  // rounding guard
}

}  // namespace punica
