// Numeric Megatron-style tensor parallelism (Shoeybi et al.) — the parallel
// scheme the paper uses to serve the 70B model on 8 GPUs (Fig. 12; "Punica
// and vLLM achieve the same performance because their parallel schemes are
// the same").
//
// Sharding per transformer layer over `tp` ranks:
//   * Q/K/V projections: column-parallel, sliced along heads — rank r owns
//     query heads [r·H/tp, (r+1)·H/tp) and KV heads [r·N/tp, (r+1)·N/tp).
//   * O projection: row-parallel (input rows follow the Q slice); partial
//     outputs are summed by an all-reduce.
//   * Gate/Up: column-parallel along the FFN dimension; Down: row-parallel;
//     second all-reduce after Down.
//   * Norm weights replicated.
// Each rank writes its own slice of every KvCache entry and attends over
// its own heads, so attention needs no communication.
//
// Executed sequentially rank-by-rank on CPU (simulated SPMD); the result is
// numerically equivalent (up to fp32 reduction order) to the single-GPU
// LayerForward, which the tests assert.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/layer.h"

namespace punica {

/// One layer's weights sharded over tp ranks.
struct TpShardedLayer {
  std::vector<LayerWeights> ranks;  ///< per-rank weight slices
  Tensor<f16> attn_norm;            ///< replicated
  Tensor<f16> mlp_norm;             ///< replicated
  int tp = 1;
};

/// Slices a full layer into tp shards. Requires num_heads, num_kv_heads and
/// ffn_hidden to be divisible by tp (true for Llama-2 70B at tp=8).
TpShardedLayer ShardLayer(const LlamaConfig& config,
                          const LayerWeights& full, int tp);

/// Per-rank model config (heads and FFN divided by tp) used for the rank's
/// local GEMM shapes.
LlamaConfig RankConfig(const LlamaConfig& config, int tp);

/// Runs one backbone transformer layer under tensor parallelism: each rank
/// computes its partial attention and MLP contributions; the two all-reduce
/// points sum partials across ranks into the residual stream. Semantics
/// match LayerForward with a null LoRA view (backbone-only). The rank loop
/// stays serial (it models the NCCL reduction order); each rank's kernels
/// run on `ctx`.
void TpLayerForward(const LlamaConfig& config, const TpShardedLayer& layer,
                    const ModelBatch& batch, int layer_idx, PagedKvCache& kv,
                    std::span<float> x,
                    const ComputeContext& ctx = ComputeContext::Default());

/// Byte count a single rank holds for one layer (the per-GPU memory the
/// cost model's tp division assumes).
std::int64_t RankLayerBytes(const LlamaConfig& config, int tp);

}  // namespace punica
