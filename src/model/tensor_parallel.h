// Numeric Megatron-style tensor parallelism (Shoeybi et al.) — the parallel
// scheme the paper uses to serve the 70B model on 8 GPUs (Fig. 12; "Punica
// and vLLM achieve the same performance because their parallel schemes are
// the same").
//
// Sharding per transformer layer over `tp` ranks:
//   * Q/K/V projections: column-parallel, sliced along heads — rank r owns
//     query heads [r·H/tp, (r+1)·H/tp) and KV heads [r·N/tp, (r+1)·N/tp).
//   * O projection: row-parallel (input rows follow the Q slice); partial
//     outputs are summed by an all-reduce.
//   * Gate/Up: column-parallel along the FFN dimension; Down: row-parallel;
//     second all-reduce after Down.
//   * Norm weights replicated.
// Each rank writes its own slice of every KvCache entry and attends over
// its own heads, so attention needs no communication.
//
// LoRA adapters shard the same way (ShardLoraModel): on the column-parallel
// seams B is column-sliced and A replicated — each rank runs its own SGMV
// shrink over the replicated input and expands into its own output slice;
// on the row-parallel seams A is row-sliced to match the dense input rows
// and B replicated — rank r's delta x_r·A_r·B lands in its pre-all-reduce
// partial, and Σ_r x_r·A_r·B = x·A·B by linearity, so the existing
// fixed-rank-order all-reduce folds the adapter delta at no extra
// communication cost. The LoRA rank dimension is never sharded, so any
// adapter rank (divisible by tp or not) shards exactly; adapters stay f16,
// so LoRA sharding adds no quantization exemptions at any tp.
//
// Execution: each rank computes its partials into its own slice of a
// TpWorkspace — either sequentially rank-by-rank (serial mode) or
// concurrently, one rank per disjoint ComputeContext worker group. The two
// all-reduce seams (after O and after Down) then sum the per-rank partial
// buffers in **fixed ascending rank order** on the root context — the same
// one-writer/fixed-reduction-order construction the split-K kernels use —
// so the result is bit-identical between serial and concurrent execution
// at any thread count, SIMD level and weight dtype. Relative to the
// single-GPU LayerForward the per-rank regrouping changes the fp32
// summation order at the two seams, so activations agree only numerically
// (column-parallel outputs, including the KV cache, stay bit-exact).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/layer.h"

namespace punica {

/// One layer's weights sharded over tp ranks.
struct TpShardedLayer {
  std::vector<LayerWeights> ranks;  ///< per-rank weight slices
  Tensor<f16> attn_norm;            ///< replicated
  Tensor<f16> mlp_norm;             ///< replicated
  int tp = 1;
};

/// Slices a full layer into tp shards. Requires num_heads, num_kv_heads and
/// ffn_hidden to be divisible by tp (true for Llama-2 70B at tp=8).
TpShardedLayer ShardLayer(const LlamaConfig& config,
                          const LayerWeights& full, int tp);

/// Per-rank model config (heads and FFN divided by tp) used for the rank's
/// local GEMM shapes.
LlamaConfig RankConfig(const LlamaConfig& config, int tp);

/// A LoRA adapter model sharded over tp ranks, mirroring the dense split.
/// ranks[r].layers[l].proj[p] is rank r's (A, B) slice for that projection:
/// column-parallel seams (Q/K/V/Gate/Up) hold A replicated + B
/// column-sliced; row-parallel seams (O/Down) hold A row-sliced + B
/// replicated. `rank` is the (unsharded) LoRA rank dimension.
struct TpShardedLora {
  std::vector<LoraModelWeights> ranks;
  int rank = 0;
  int tp = 1;
};

/// Slices a full adapter model into tp shards along the dense seams.
/// Requires the same divisibility as ShardLayer; the LoRA rank itself need
/// not divide tp (it is never split). Adapters are f16, so every slice is
/// exact — no block-alignment constraint, unlike quantized backbone shards.
TpShardedLora ShardLoraModel(const LlamaConfig& config,
                             const LoraModelWeights& full, int tp);

/// Per-rank activation buffers for TpLayerForward, stacked rank-major so
/// concurrent ranks write disjoint slices. Resize only grows; steady-state
/// forward passes are allocation-free.
struct TpWorkspace {
  std::vector<float> normed;    ///< [tokens, h] — shared, read-only in ranks
  std::vector<float> q;         ///< [tp][tokens, heads_pr·d]
  std::vector<float> k;         ///< [tp][tokens, kv_heads_pr·d]
  std::vector<float> v;         ///< [tp][tokens, kv_heads_pr·d]
  std::vector<float> attn_out;  ///< [tp][tokens, heads_pr·d]
  std::vector<float> gate;      ///< [tp][tokens, ffn_pr]
  std::vector<float> up;        ///< [tp][tokens, ffn_pr]
  std::vector<float> partial;   ///< [tp][tokens, h] — all-reduce inputs
  std::vector<std::vector<float>> attn_scratch;  ///< per-rank split-KV
                                                 ///< partials (disjoint so
                                                 ///< concurrent ranks never
                                                 ///< share scratch)
  std::vector<std::vector<float>> lora_tmp;  ///< per-rank SGMV v rows +
                                             ///< split-K scratch (see
                                             ///< BatchedLoraAddon's
                                             ///< workspace contract);
                                             ///< disjoint per rank so
                                             ///< concurrent ranks never
                                             ///< share the shrink buffer
  void Resize(const LlamaConfig& config, int tp, int tokens,
              int max_rank = 1);
};

/// Runs one transformer layer under tensor parallelism: each rank computes
/// its partial attention and MLP contributions into `ws`; the two
/// all-reduce seams sum partials across ranks into the residual stream in
/// fixed ascending rank order. Semantics match LayerForward over the same
/// per-segment LoRA view: `seg_lora[i]` is the sharded adapter for segment
/// i (nullptr = backbone-only; empty span = all-backbone batch). Each rank
/// runs its own SGMV shrink/expand over its shard with the batch's segment
/// grouping unchanged.
///
/// `rank_ctxs` empty: the rank loop runs serially, every rank's kernels on
/// `ctx` (models the SPMD schedule without concurrency). `rank_ctxs` with
/// tp group-view contexts (from ctx.Split(tp)): ranks run concurrently,
/// rank r's kernels confined to worker group r. Both modes compute the
/// identical fp32 expression per element, so their outputs — and hence
/// decoded streams — are bit-identical, with or without LoRA segments.
void TpLayerForward(const LlamaConfig& config, const TpShardedLayer& layer,
                    const ModelBatch& batch, int layer_idx, PagedKvCache& kv,
                    std::span<float> x, TpWorkspace& ws,
                    const ComputeContext& ctx,
                    std::span<const ComputeContext* const> rank_ctxs = {},
                    std::span<const TpShardedLora* const> seg_lora = {});

/// Convenience overload for tests: serial rank loop, local workspace.
void TpLayerForward(const LlamaConfig& config, const TpShardedLayer& layer,
                    const ModelBatch& batch, int layer_idx, PagedKvCache& kv,
                    std::span<float> x,
                    const ComputeContext& ctx = ComputeContext::Default(),
                    std::span<const TpShardedLora* const> seg_lora = {});

/// Byte count a single rank holds for one layer (the per-GPU memory the
/// cost model's tp division assumes).
std::int64_t RankLayerBytes(const LlamaConfig& config, int tp);

}  // namespace punica
