// A complete (small-scale) Llama-architecture model runnable on CPU:
// embedding → L transformer layers (with multi-LoRA batched addons) →
// final RMSNorm → LM head. Used by correctness tests, the examples and the
// end-to-end tiny-model serving demos; paper-scale performance numbers come
// from the analytical cost model instead.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "kvcache/kvcache.h"
#include "model/config.h"
#include "model/layer.h"
#include "model/tensor_parallel.h"
#include "tensor/tensor.h"

namespace punica {

class LlamaModel {
 public:
  /// Builds a model with random weights (deterministic in `seed`). All
  /// forward passes run on `ctx` (nullptr = the process-wide default
  /// context), so every Engine sharing this model shares one thread pool.
  ///
  /// `tp` > 1 stores each layer Megatron-sharded over tp ranks and runs
  /// layers through TpLayerForward: concurrently by default (rank r's
  /// kernels pinned to worker group r of ctx's pool via ctx->Split(tp)),
  /// or — with tp_concurrent=false — as the serial rank loop, which is
  /// bit-identical to concurrent execution by the fixed-rank-order
  /// all-reduce construction. The same seed draws the same f16 master
  /// weights at every tp, so tp changes only the execution schedule.
  /// LoRA batches run at any tp: AddLora shards each adapter over the
  /// ranks (ShardLoraModel) and every rank runs its own SGMV
  /// shrink/expand, the row-parallel deltas folding through the existing
  /// all-reduce.
  LlamaModel(const LlamaConfig& config, std::uint64_t seed,
             const ComputeContext* ctx = nullptr, int tp = 1,
             bool tp_concurrent = true);

  const LlamaConfig& config() const { return config_; }
  const ComputeContext& context() const { return *ctx_; }
  /// Tensor-parallel degree (1 = single-GPU execution).
  int tp() const { return tp_; }
  /// True when TP ranks execute concurrently on disjoint worker groups.
  bool tp_concurrent() const { return !rank_ctx_ptrs_.empty(); }
  /// Rank r's worker-group view context (nullptr unless tp-concurrent).
  const ComputeContext* rank_context(int r) const {
    return r >= 0 && r < static_cast<int>(rank_ctx_ptrs_.size())
               ? rank_ctx_ptrs_[static_cast<std::size_t>(r)]
               : nullptr;
  }

  /// Registers a random LoRA model under `id`. Deterministic in (seed).
  void AddLora(LoraId id, int rank, std::uint64_t seed);
  void AddLora(LoraId id, LoraModelWeights weights);
  const LoraModelWeights* GetLora(LoraId id) const;
  /// Per-rank adapter shards for `id` (nullptr when tp == 1 or unknown).
  const TpShardedLora* GetLoraShards(LoraId id) const;
  std::size_t num_loras() const { return loras_.size(); }

  /// Runs one batched invocation. `token_ids` has one id per token row
  /// (prompt tokens for prefill entries, the previous output token for
  /// decode entries). The KvCache must already be extended so that every
  /// row position is in range. Returns next-token logits, one row per batch
  /// entry (the logits at each entry's final token). Entries with
  /// emit_logits=false (non-final chunks of a chunked prefill) still write
  /// K/V but skip the LM head; their logits row stays zero.
  ///
  /// Not reentrant: Forward mutates the model's shared workspace, so a
  /// model (and hence the engines over it) must be stepped by one caller
  /// thread at a time — the shared ComputeContext only serializes the
  /// parallel regions themselves, not whole forward passes.
  Tensor<float> Forward(const ModelBatch& batch,
                        std::span<const std::int32_t> token_ids,
                        PagedKvCache& kv);

  /// Greedy decoding helper: Forward + per-entry argmax.
  std::vector<std::int32_t> ForwardGreedy(
      const ModelBatch& batch, std::span<const std::int32_t> token_ids,
      PagedKvCache& kv);

  /// A KvCacheConfig matching this model's geometry.
  KvCacheConfig MakeKvConfig(std::int32_t num_pages, int page_size = 16) const;

  static std::int32_t ArgMax(std::span<const float> logits);

 private:
  LlamaConfig config_;
  const ComputeContext* ctx_;  ///< never null after construction
  int tp_ = 1;
  Tensor<f16> embedding_;  ///< [vocab, hidden] — always f16 (gather path)
  WeightMatrix lm_head_;   ///< [hidden, vocab] in config.weight_dtype
  Tensor<f16> final_norm_; ///< [hidden]
  std::vector<LayerWeights> layers_;       ///< tp == 1
  std::vector<TpShardedLayer> tp_layers_;  ///< tp > 1
  std::unordered_map<LoraId, std::unique_ptr<LoraModelWeights>> loras_;
  /// tp > 1: each registered adapter sharded over the ranks alongside the
  /// full copy in loras_ (which stays the source of truth for byte
  /// accounting and re-sharding).
  std::unordered_map<LoraId, std::unique_ptr<TpShardedLora>> tp_loras_;
  LayerWorkspace ws_;
  TpWorkspace tp_ws_;
  /// Worker-group views from ctx_->Split(tp) (empty = serial rank loop).
  std::vector<std::unique_ptr<ComputeContext>> rank_ctxs_;
  std::vector<const ComputeContext*> rank_ctx_ptrs_;
};

}  // namespace punica
