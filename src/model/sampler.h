// Token samplers over next-token logits: greedy, temperature, top-k and
// top-p (nucleus). The serving examples default to greedy (deterministic);
// the stochastic samplers are seeded per request so streams stay
// reproducible across runs and across migration.
#pragma once

#include <cstdint>
#include <span>

#include "util/rng.h"

namespace punica {

struct SamplerConfig {
  double temperature = 1.0;  ///< 0 = greedy (argmax)
  int top_k = 0;             ///< 0 = disabled
  double top_p = 1.0;        ///< 1 = disabled
};

class Sampler {
 public:
  explicit Sampler(SamplerConfig config = {});

  /// Draws one token id from the (unnormalised) logits.
  std::int32_t Sample(std::span<const float> logits, Pcg32& rng) const;

  const SamplerConfig& config() const { return config_; }

 private:
  SamplerConfig config_;
};

/// Argmax with lowest-index tiebreak (the greedy path).
std::int32_t ArgMaxToken(std::span<const float> logits);

}  // namespace punica
