// Rotary positional embedding (Llama style): rotates each consecutive pair
// within a head's dimension by a position- and frequency-dependent angle.
// Applied to Q and K after projection, before K is written to the KvCache.
#pragma once

#include <cstdint>
#include <span>

namespace punica {

/// Applies RoPE in place to one token's multi-head vector.
/// `x` is [num_heads · head_dim]; `pos` is the absolute token position.
/// Pairing convention: (x[2i], x[2i+1]) within each head, frequencies
/// theta^(-2i/head_dim) — the GPT-NeoX/Llama interleaved variant.
void ApplyRope(std::span<float> x, int num_heads, int head_dim,
               std::int64_t pos, float theta);

}  // namespace punica
