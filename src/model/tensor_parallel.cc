#include "model/tensor_parallel.h"

#include <algorithm>

#include "model/attention.h"
#include "model/rope.h"
#include "tensor/gemm.h"
#include "util/check.h"

namespace punica {
namespace {

Tensor<f16> SliceColumns(const Tensor<f16>& w, std::int64_t col_begin,
                         std::int64_t col_end) {
  PUNICA_CHECK(w.ndim() == 2);
  std::int64_t rows = w.dim(0);
  std::int64_t cols = w.dim(1);
  PUNICA_CHECK(col_begin >= 0 && col_end <= cols && col_begin < col_end);
  Tensor<f16> out({rows, col_end - col_begin});
  for (std::int64_t i = 0; i < rows; ++i) {
    auto src = w.row(i);
    auto dst = out.row(i);
    std::copy(src.begin() + col_begin, src.begin() + col_end, dst.begin());
  }
  return out;
}

Tensor<f16> SliceRows(const Tensor<f16>& w, std::int64_t row_begin,
                      std::int64_t row_end) {
  PUNICA_CHECK(w.ndim() == 2);
  PUNICA_CHECK(row_begin >= 0 && row_end <= w.dim(0) && row_begin < row_end);
  Tensor<f16> out({row_end - row_begin, w.dim(1)});
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    auto src = w.row(i);
    auto dst = out.row(i - row_begin);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

}  // namespace

LlamaConfig RankConfig(const LlamaConfig& config, int tp) {
  PUNICA_CHECK(tp >= 1);
  PUNICA_CHECK_MSG(config.num_heads % tp == 0, "heads must divide tp");
  PUNICA_CHECK_MSG(config.num_kv_heads % tp == 0, "kv heads must divide tp");
  PUNICA_CHECK_MSG(config.ffn_hidden % tp == 0, "ffn must divide tp");
  LlamaConfig rank = config;
  rank.num_heads = config.num_heads / tp;
  rank.num_kv_heads = config.num_kv_heads / tp;
  rank.ffn_hidden = config.ffn_hidden / tp;
  // hidden_size stays global: inputs are replicated, outputs reduced.
  return rank;
}

TpShardedLayer ShardLayer(const LlamaConfig& config, const LayerWeights& full,
                          int tp) {
  RankConfig(config, tp);  // validates divisibility
  // Shards are sliced from f16 MASTER weights and quantized per shard
  // afterwards. Slicing quantized blocks directly would be lossy anyway
  // (dequant→f16 re-rounds d·q), and post-slice quantization keeps each
  // rank's block boundaries local to its own columns.
  PUNICA_CHECK_MSG(
      full.proj[0].dtype() == WeightDtype::kF16,
      "ShardLayer slices f16 master weights; shards are quantized "
      "to config.weight_dtype after the slice");
  const auto quantize = [&config](WeightMatrix sliced) {
    if (config.weight_dtype == WeightDtype::kF16) return sliced;
    return sliced.Requantize(config.weight_dtype);
  };
  TpShardedLayer sharded;
  sharded.tp = tp;
  int d = config.head_dim();
  std::int64_t q_cols = static_cast<std::int64_t>(config.num_heads / tp) * d;
  std::int64_t kv_cols =
      static_cast<std::int64_t>(config.num_kv_heads / tp) * d;
  std::int64_t f_cols = config.ffn_hidden / tp;
  for (int r = 0; r < tp; ++r) {
    LayerWeights shard;
    shard.proj[static_cast<int>(Proj::kQ)] =
        quantize(full.proj[static_cast<int>(Proj::kQ)].SliceCols(
            r * q_cols, (r + 1) * q_cols));
    shard.proj[static_cast<int>(Proj::kK)] =
        quantize(full.proj[static_cast<int>(Proj::kK)].SliceCols(
            r * kv_cols, (r + 1) * kv_cols));
    shard.proj[static_cast<int>(Proj::kV)] =
        quantize(full.proj[static_cast<int>(Proj::kV)].SliceCols(
            r * kv_cols, (r + 1) * kv_cols));
    shard.proj[static_cast<int>(Proj::kO)] =
        quantize(full.proj[static_cast<int>(Proj::kO)].SliceRows(
            r * q_cols, (r + 1) * q_cols));
    shard.proj[static_cast<int>(Proj::kGate)] =
        quantize(full.proj[static_cast<int>(Proj::kGate)].SliceCols(
            r * f_cols, (r + 1) * f_cols));
    shard.proj[static_cast<int>(Proj::kUp)] =
        quantize(full.proj[static_cast<int>(Proj::kUp)].SliceCols(
            r * f_cols, (r + 1) * f_cols));
    shard.proj[static_cast<int>(Proj::kDown)] =
        quantize(full.proj[static_cast<int>(Proj::kDown)].SliceRows(
            r * f_cols, (r + 1) * f_cols));
    sharded.ranks.push_back(std::move(shard));
  }
  sharded.attn_norm = Tensor<f16>({config.hidden_size});
  sharded.mlp_norm = Tensor<f16>({config.hidden_size});
  std::copy(full.attn_norm.data().begin(), full.attn_norm.data().end(),
            sharded.attn_norm.data().begin());
  std::copy(full.mlp_norm.data().begin(), full.mlp_norm.data().end(),
            sharded.mlp_norm.data().begin());
  return sharded;
}

TpShardedLora ShardLoraModel(const LlamaConfig& config,
                             const LoraModelWeights& full, int tp) {
  RankConfig(config, tp);  // validates divisibility of the dense seams
  TpShardedLora sharded;
  sharded.tp = tp;
  sharded.rank = full.rank;
  const int d = config.head_dim();
  const std::int64_t q_cols =
      static_cast<std::int64_t>(config.num_heads / tp) * d;
  const std::int64_t kv_cols =
      static_cast<std::int64_t>(config.num_kv_heads / tp) * d;
  const std::int64_t f_cols = config.ffn_hidden / tp;
  // Column-parallel seam: B column-sliced to the rank's output columns,
  // A replicated (each rank re-runs the cheap h_in→r shrink itself — the
  // redundant FLOPs are r/h_out of the projection, far below an extra
  // all-gather of v).
  const auto col_shard = [](const LoraAB& ab, std::int64_t b, std::int64_t e) {
    LoraAB out;
    out.rank = ab.rank;
    out.h_in = ab.h_in;
    out.h_out = static_cast<int>(e - b);
    out.a = SliceRows(ab.a, 0, ab.a.dim(0));  // replicated copy
    out.b = SliceColumns(ab.b, b, e);
    return out;
  };
  // Row-parallel seam: A row-sliced to match the rank's dense input rows,
  // B replicated; the delta sums across ranks inside the existing
  // all-reduce (Σ_r x_r·A_r·B = x·A·B).
  const auto row_shard = [](const LoraAB& ab, std::int64_t b, std::int64_t e) {
    LoraAB out;
    out.rank = ab.rank;
    out.h_in = static_cast<int>(e - b);
    out.h_out = ab.h_out;
    out.a = SliceRows(ab.a, b, e);
    out.b = SliceColumns(ab.b, 0, ab.b.dim(1));  // replicated copy
    return out;
  };
  for (int r = 0; r < tp; ++r) {
    LoraModelWeights rank_w;
    rank_w.rank = full.rank;
    rank_w.layers.reserve(full.layers.size());
    for (const LoraLayerWeights& layer : full.layers) {
      LoraLayerWeights lw;
      lw.proj[static_cast<int>(Proj::kQ)] = col_shard(
          layer.proj[static_cast<int>(Proj::kQ)], r * q_cols, (r + 1) * q_cols);
      lw.proj[static_cast<int>(Proj::kK)] =
          col_shard(layer.proj[static_cast<int>(Proj::kK)], r * kv_cols,
                    (r + 1) * kv_cols);
      lw.proj[static_cast<int>(Proj::kV)] =
          col_shard(layer.proj[static_cast<int>(Proj::kV)], r * kv_cols,
                    (r + 1) * kv_cols);
      lw.proj[static_cast<int>(Proj::kO)] = row_shard(
          layer.proj[static_cast<int>(Proj::kO)], r * q_cols, (r + 1) * q_cols);
      lw.proj[static_cast<int>(Proj::kGate)] =
          col_shard(layer.proj[static_cast<int>(Proj::kGate)], r * f_cols,
                    (r + 1) * f_cols);
      lw.proj[static_cast<int>(Proj::kUp)] =
          col_shard(layer.proj[static_cast<int>(Proj::kUp)], r * f_cols,
                    (r + 1) * f_cols);
      lw.proj[static_cast<int>(Proj::kDown)] =
          row_shard(layer.proj[static_cast<int>(Proj::kDown)], r * f_cols,
                    (r + 1) * f_cols);
      rank_w.layers.push_back(std::move(lw));
    }
    sharded.ranks.push_back(std::move(rank_w));
  }
  return sharded;
}

void TpWorkspace::Resize(const LlamaConfig& config, int tp, int tokens,
                         int max_rank) {
  const auto t = static_cast<std::size_t>(tokens);
  const auto h = static_cast<std::size_t>(config.hidden_size);
  const auto d = static_cast<std::size_t>(config.head_dim());
  const auto p = static_cast<std::size_t>(tp);
  const std::size_t q_w = static_cast<std::size_t>(config.num_heads / tp) * d;
  const std::size_t kv_w =
      static_cast<std::size_t>(config.num_kv_heads / tp) * d;
  const std::size_t f_pr = static_cast<std::size_t>(config.ffn_hidden / tp);
  auto grow = [](std::vector<float>& v, std::size_t n) {
    if (v.size() < n) v.resize(n);
  };
  grow(normed, t * h);
  grow(q, p * t * q_w);
  grow(k, p * t * kv_w);
  grow(v, p * t * kv_w);
  grow(attn_out, p * t * q_w);
  grow(gate, p * t * f_pr);
  grow(up, p * t * f_pr);
  grow(partial, p * t * h);
  // One split-KV attention scratch per rank (grown on demand by the
  // attention kernels): concurrent ranks must never share partial buffers.
  if (attn_scratch.size() < p) attn_scratch.resize(p);
  // One SGMV workspace per rank (v rows + split-K partials, the
  // BatchedLoraAddon contract), so concurrent ranks never share the shrink
  // buffer and the addon never allocates in the forward hot path.
  if (lora_tmp.size() < p) lora_tmp.resize(p);
  const std::size_t lt =
      t * static_cast<std::size_t>(std::max(max_rank, 1)) *
      (1 + static_cast<std::size_t>(kMaxSplitKPartitions));
  for (auto& per_rank : lora_tmp) {
    if (per_rank.size() < lt) per_rank.resize(lt);
  }
}

void TpLayerForward(const LlamaConfig& config, const TpShardedLayer& layer,
                    const ModelBatch& batch, int layer_idx, PagedKvCache& kv,
                    std::span<float> x, TpWorkspace& ws,
                    const ComputeContext& ctx,
                    std::span<const ComputeContext* const> rank_ctxs,
                    std::span<const TpShardedLora* const> seg_lora) {
  const int tp = layer.tp;
  const int tokens = batch.total_tokens();
  const auto h = static_cast<std::size_t>(config.hidden_size);
  PUNICA_CHECK(x.size() == static_cast<std::size_t>(tokens) * h);
  PUNICA_CHECK(static_cast<int>(layer.ranks.size()) == tp);
  const bool concurrent = !rank_ctxs.empty();
  if (concurrent) {
    PUNICA_CHECK(static_cast<int>(rank_ctxs.size()) == tp);
  }
  bool any_lora = false;
  if (!seg_lora.empty()) {
    PUNICA_CHECK(seg_lora.size() ==
                 static_cast<std::size_t>(batch.segments.num_segments()));
    for (const TpShardedLora* l : seg_lora) {
      if (l == nullptr) continue;
      PUNICA_CHECK_MSG(l->tp == tp,
                       "LoRA shards were built for a different tp degree");
      any_lora = true;
    }
  }
  int max_rank = 1;
  for (const TpShardedLora* l : seg_lora) {
    if (l != nullptr) max_rank = std::max(max_rank, l->rank);
  }
  const int d = config.head_dim();
  const int heads_pr = config.num_heads / tp;
  const int kv_heads_pr = config.num_kv_heads / tp;
  const int f_pr = config.ffn_hidden / tp;
  const auto q_w = static_cast<std::size_t>(heads_pr) *
                   static_cast<std::size_t>(d);
  const auto kv_w = static_cast<std::size_t>(kv_heads_pr) *
                    static_cast<std::size_t>(d);
  ws.Resize(config, tp, tokens, max_rank);

  // Rank r's batched SGMV addon for one projection: y += x·A_r·B_r over the
  // batch's unchanged segment grouping, through rank r's private workspace.
  // On column-parallel seams y is the rank's output slice; on row-parallel
  // seams y is the rank's pre-all-reduce partial, so the reduce folds the
  // adapter delta alongside the dense partials.
  const auto lora_addon = [&](int r, Proj proj, std::span<const float> in,
                              std::span<float> out, int h_in, int h_out,
                              const ComputeContext& rctx) {
    if (!any_lora) return;
    std::vector<const LoraAB*> adapters(seg_lora.size(), nullptr);
    bool any = false;
    for (std::size_t i = 0; i < seg_lora.size(); ++i) {
      if (seg_lora[i] != nullptr) {
        adapters[i] = &seg_lora[i]
                           ->ranks[static_cast<std::size_t>(r)]
                           .layers[static_cast<std::size_t>(layer_idx)]
                           .proj[static_cast<int>(proj)];
        any = true;
      }
    }
    if (any) {
      BatchedLoraAddon(out, in, adapters, batch.segments.offsets, h_in, h_out,
                       ws.lora_tmp[static_cast<std::size_t>(r)], rctx);
    }
  };
  const std::size_t q_stride = static_cast<std::size_t>(tokens) * q_w;
  const std::size_t kv_stride = static_cast<std::size_t>(tokens) * kv_w;
  const std::size_t f_stride =
      static_cast<std::size_t>(tokens) * static_cast<std::size_t>(f_pr);
  const std::size_t h_stride = static_cast<std::size_t>(tokens) * h;
  const std::span<float> normed(ws.normed.data(), h_stride);

  // Runs rank_fn(r, rank_ctx) for every rank: concurrently on disjoint
  // worker groups, or as a plain serial loop on the root context. Both
  // paths execute the identical per-element fp32 expression — ranks write
  // disjoint workspace slices and meet only at the reduce below — so the
  // modes are bit-identical by construction.
  const auto for_each_rank = [&](const auto& rank_fn) {
    if (concurrent) {
      ctx.RunGroupTasks(tp, [&](int r) {
        rank_fn(r, *rank_ctxs[static_cast<std::size_t>(r)]);
      });
    } else {
      for (int r = 0; r < tp; ++r) rank_fn(r, ctx);
    }
  };

  // The deterministic all-reduce: per-rank partials sum into the residual
  // stream in fixed ascending rank order, whatever order the ranks
  // *finished* in (a deterministic stand-in for NCCL's fixed ring order).
  const auto reduce_partials = [&] {
    const float* partial = ws.partial.data();
    ctx.ParallelFor(static_cast<std::int64_t>(x.size()), 2048,
                    [&](std::int64_t lo, std::int64_t hi) {
                      for (std::int64_t i = lo; i < hi; ++i) {
                        auto u = static_cast<std::size_t>(i);
                        float acc = partial[u];
                        for (int r = 1; r < tp; ++r) {
                          acc += partial[static_cast<std::size_t>(r) *
                                             h_stride +
                                         u];
                        }
                        x[u] += acc;
                      }
                    });
  };

  // --- Attention block ---
  ctx.ParallelFor(tokens, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t t = lo; t < hi; ++t) {
      RmsNormRow(x.subspan(static_cast<std::size_t>(t) * h, h),
                 layer.attn_norm.data(),
                 normed.subspan(static_cast<std::size_t>(t) * h, h),
                 config.rms_eps);
    }
  });

  for_each_rank([&](int r, const ComputeContext& rctx) {
    const auto ur = static_cast<std::size_t>(r);
    const LayerWeights& shard = layer.ranks[ur];
    const std::span<float> q(ws.q.data() + ur * q_stride, q_stride);
    const std::span<float> k(ws.k.data() + ur * kv_stride, kv_stride);
    const std::span<float> v(ws.v.data() + ur * kv_stride, kv_stride);
    const std::span<float> attn_out(ws.attn_out.data() + ur * q_stride,
                                    q_stride);
    const std::span<float> partial(ws.partial.data() + ur * h_stride,
                                   h_stride);
    GemmSetW(normed, shard.proj[static_cast<int>(Proj::kQ)], q, tokens,
             config.hidden_size, heads_pr * d, rctx);
    GemmSetW(normed, shard.proj[static_cast<int>(Proj::kK)], k, tokens,
             config.hidden_size, kv_heads_pr * d, rctx);
    GemmSetW(normed, shard.proj[static_cast<int>(Proj::kV)], v, tokens,
             config.hidden_size, kv_heads_pr * d, rctx);
    // Column-parallel LoRA: B is sliced to this rank's output columns, A is
    // replicated — the addon lands before RoPE, matching LayerForward.
    lora_addon(r, Proj::kQ, normed, q, config.hidden_size, heads_pr * d,
               rctx);
    lora_addon(r, Proj::kK, normed, k, config.hidden_size, kv_heads_pr * d,
               rctx);
    lora_addon(r, Proj::kV, normed, v, config.hidden_size, kv_heads_pr * d,
               rctx);

    // RoPE on this rank's heads; write this rank's KV slice of each entry
    // (disjoint across ranks, so concurrent ranks never share a writer).
    rctx.ParallelFor(tokens, 1, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t t = lo; t < hi; ++t) {
        std::int64_t pos = batch.row_pos[static_cast<std::size_t>(t)];
        ApplyRope(q.subspan(static_cast<std::size_t>(t) * q_w, q_w),
                  heads_pr, d, pos, config.rope_theta);
        ApplyRope(k.subspan(static_cast<std::size_t>(t) * kv_w, kv_w),
                  kv_heads_pr, d, pos, config.rope_theta);
        SeqId seq = batch.row_seq[static_cast<std::size_t>(t)];
        auto k_entry = kv.Entry(seq, layer_idx, pos, KvSlot::kKey);
        auto v_entry = kv.Entry(seq, layer_idx, pos, KvSlot::kValue);
        std::size_t off = ur * kv_w;
        FloatToHalfN(std::span<const float>(k).subspan(
                         static_cast<std::size_t>(t) * kv_w, kv_w),
                     k_entry.subspan(off, kv_w));
        FloatToHalfN(std::span<const float>(v).subspan(
                         static_cast<std::size_t>(t) * kv_w, kv_w),
                     v_entry.subspan(off, kv_w));
      }
    });

    // Attention over this rank's query heads (no communication needed).
    int head_begin = r * heads_pr;
    int head_end = head_begin + heads_pr;
    std::size_t row = 0;
    for (const auto& e : batch.entries) {
      if (!e.is_prefill) break;
      auto chunk = static_cast<std::size_t>(e.num_tokens);
      BatchPrefillAttentionRanged(
          config, kv, e.seq, layer_idx, e.pos_offset,
          std::span<const float>(q).subspan(row * q_w, chunk * q_w),
          attn_out.subspan(row * q_w, chunk * q_w), head_begin, head_end,
          rctx, &ws.attn_scratch[ur]);
      row += chunk;
    }
    if (!batch.decode_seqs.empty()) {
      auto n_dec = batch.decode_seqs.size();
      BatchDecodeAttentionRanged(
          config, kv, batch.decode_seqs, layer_idx,
          std::span<const float>(q).subspan(row * q_w, n_dec * q_w),
          attn_out.subspan(row * q_w, n_dec * q_w), head_begin, head_end,
          rctx, &ws.attn_scratch[ur]);
    }

    // Row-parallel O projection: this rank's partial [tokens, h]. The LoRA
    // delta (A row-sliced, B replicated) adds into the partial, so the
    // fixed-rank-order all-reduce folds it with the dense partials.
    GemmSetW(attn_out, shard.proj[static_cast<int>(Proj::kO)], partial,
             tokens, heads_pr * d, config.hidden_size, rctx);
    lora_addon(r, Proj::kO, attn_out, partial, heads_pr * d,
               config.hidden_size, rctx);
  });
  reduce_partials();

  // --- MLP block ---
  ctx.ParallelFor(tokens, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t t = lo; t < hi; ++t) {
      RmsNormRow(x.subspan(static_cast<std::size_t>(t) * h, h),
                 layer.mlp_norm.data(),
                 normed.subspan(static_cast<std::size_t>(t) * h, h),
                 config.rms_eps);
    }
  });
  for_each_rank([&](int r, const ComputeContext& rctx) {
    const auto ur = static_cast<std::size_t>(r);
    const LayerWeights& shard = layer.ranks[ur];
    const std::span<float> gate(ws.gate.data() + ur * f_stride, f_stride);
    const std::span<float> up(ws.up.data() + ur * f_stride, f_stride);
    const std::span<float> partial(ws.partial.data() + ur * h_stride,
                                   h_stride);
    GemmSetW(normed, shard.proj[static_cast<int>(Proj::kGate)], gate, tokens,
             config.hidden_size, f_pr, rctx);
    GemmSetW(normed, shard.proj[static_cast<int>(Proj::kUp)], up, tokens,
             config.hidden_size, f_pr, rctx);
    // Column-parallel LoRA on the FFN seams, before the SwiGLU nonlinearity.
    lora_addon(r, Proj::kGate, normed, gate, config.hidden_size, f_pr, rctx);
    lora_addon(r, Proj::kUp, normed, up, config.hidden_size, f_pr, rctx);
    SiluInPlace(gate);
    for (std::size_t i = 0; i < gate.size(); ++i) gate[i] *= up[i];
    // Row-parallel Down projection: this rank's partial [tokens, h]; the
    // LoRA delta folds through the second all-reduce like O above.
    GemmSetW(gate, shard.proj[static_cast<int>(Proj::kDown)], partial,
             tokens, f_pr, config.hidden_size, rctx);
    lora_addon(r, Proj::kDown, gate, partial, f_pr, config.hidden_size,
               rctx);
  });
  reduce_partials();
}

void TpLayerForward(const LlamaConfig& config, const TpShardedLayer& layer,
                    const ModelBatch& batch, int layer_idx, PagedKvCache& kv,
                    std::span<float> x, const ComputeContext& ctx,
                    std::span<const TpShardedLora* const> seg_lora) {
  TpWorkspace ws;
  TpLayerForward(config, layer, batch, layer_idx, kv, x, ws, ctx, {},
                 seg_lora);
}

std::int64_t RankLayerBytes(const LlamaConfig& config, int tp) {
  RankConfig(config, tp);
  return config.layer_weight_bytes() / tp +
         static_cast<std::int64_t>(config.hidden_size) * 2 * 2;  // norms
}

}  // namespace punica
