#include "model/tensor_parallel.h"

#include <algorithm>

#include "model/attention.h"
#include "model/rope.h"
#include "tensor/gemm.h"
#include "util/check.h"

namespace punica {
namespace {

Tensor<f16> SliceColumns(const Tensor<f16>& w, std::int64_t col_begin,
                         std::int64_t col_end) {
  PUNICA_CHECK(w.ndim() == 2);
  std::int64_t rows = w.dim(0);
  std::int64_t cols = w.dim(1);
  PUNICA_CHECK(col_begin >= 0 && col_end <= cols && col_begin < col_end);
  Tensor<f16> out({rows, col_end - col_begin});
  for (std::int64_t i = 0; i < rows; ++i) {
    auto src = w.row(i);
    auto dst = out.row(i);
    std::copy(src.begin() + col_begin, src.begin() + col_end, dst.begin());
  }
  return out;
}

Tensor<f16> SliceRows(const Tensor<f16>& w, std::int64_t row_begin,
                      std::int64_t row_end) {
  PUNICA_CHECK(w.ndim() == 2);
  PUNICA_CHECK(row_begin >= 0 && row_end <= w.dim(0) && row_begin < row_end);
  Tensor<f16> out({row_end - row_begin, w.dim(1)});
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    auto src = w.row(i);
    auto dst = out.row(i - row_begin);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

}  // namespace

LlamaConfig RankConfig(const LlamaConfig& config, int tp) {
  PUNICA_CHECK(tp >= 1);
  PUNICA_CHECK_MSG(config.num_heads % tp == 0, "heads must divide tp");
  PUNICA_CHECK_MSG(config.num_kv_heads % tp == 0, "kv heads must divide tp");
  PUNICA_CHECK_MSG(config.ffn_hidden % tp == 0, "ffn must divide tp");
  LlamaConfig rank = config;
  rank.num_heads = config.num_heads / tp;
  rank.num_kv_heads = config.num_kv_heads / tp;
  rank.ffn_hidden = config.ffn_hidden / tp;
  // hidden_size stays global: inputs are replicated, outputs reduced.
  return rank;
}

TpShardedLayer ShardLayer(const LlamaConfig& config, const LayerWeights& full,
                          int tp) {
  RankConfig(config, tp);  // validates divisibility
  // Shards are sliced from f16 MASTER weights and quantized per shard
  // afterwards. Slicing quantized blocks directly would be lossy anyway
  // (dequant→f16 re-rounds d·q), and post-slice quantization keeps each
  // rank's block boundaries local to its own columns.
  PUNICA_CHECK_MSG(
      full.proj[0].dtype() == WeightDtype::kF16,
      "ShardLayer slices f16 master weights; shards are quantized "
      "to config.weight_dtype after the slice");
  const auto quantize = [&config](Tensor<f16> t) {
    return WeightMatrix::FromF16(std::move(t), config.weight_dtype);
  };
  TpShardedLayer sharded;
  sharded.tp = tp;
  int d = config.head_dim();
  std::int64_t q_cols = static_cast<std::int64_t>(config.num_heads / tp) * d;
  std::int64_t kv_cols =
      static_cast<std::int64_t>(config.num_kv_heads / tp) * d;
  std::int64_t f_cols = config.ffn_hidden / tp;
  for (int r = 0; r < tp; ++r) {
    LayerWeights shard;
    shard.proj[static_cast<int>(Proj::kQ)] = quantize(
        SliceColumns(full.proj[static_cast<int>(Proj::kQ)].f16_tensor(),
                     r * q_cols, (r + 1) * q_cols));
    shard.proj[static_cast<int>(Proj::kK)] = quantize(
        SliceColumns(full.proj[static_cast<int>(Proj::kK)].f16_tensor(),
                     r * kv_cols, (r + 1) * kv_cols));
    shard.proj[static_cast<int>(Proj::kV)] = quantize(
        SliceColumns(full.proj[static_cast<int>(Proj::kV)].f16_tensor(),
                     r * kv_cols, (r + 1) * kv_cols));
    shard.proj[static_cast<int>(Proj::kO)] = quantize(
        SliceRows(full.proj[static_cast<int>(Proj::kO)].f16_tensor(),
                  r * q_cols, (r + 1) * q_cols));
    shard.proj[static_cast<int>(Proj::kGate)] = quantize(
        SliceColumns(full.proj[static_cast<int>(Proj::kGate)].f16_tensor(),
                     r * f_cols, (r + 1) * f_cols));
    shard.proj[static_cast<int>(Proj::kUp)] = quantize(
        SliceColumns(full.proj[static_cast<int>(Proj::kUp)].f16_tensor(),
                     r * f_cols, (r + 1) * f_cols));
    shard.proj[static_cast<int>(Proj::kDown)] = quantize(
        SliceRows(full.proj[static_cast<int>(Proj::kDown)].f16_tensor(),
                  r * f_cols, (r + 1) * f_cols));
    sharded.ranks.push_back(std::move(shard));
  }
  sharded.attn_norm = Tensor<f16>({config.hidden_size});
  sharded.mlp_norm = Tensor<f16>({config.hidden_size});
  std::copy(full.attn_norm.data().begin(), full.attn_norm.data().end(),
            sharded.attn_norm.data().begin());
  std::copy(full.mlp_norm.data().begin(), full.mlp_norm.data().end(),
            sharded.mlp_norm.data().begin());
  return sharded;
}

void TpWorkspace::Resize(const LlamaConfig& config, int tp, int tokens) {
  const auto t = static_cast<std::size_t>(tokens);
  const auto h = static_cast<std::size_t>(config.hidden_size);
  const auto d = static_cast<std::size_t>(config.head_dim());
  const auto p = static_cast<std::size_t>(tp);
  const std::size_t q_w = static_cast<std::size_t>(config.num_heads / tp) * d;
  const std::size_t kv_w =
      static_cast<std::size_t>(config.num_kv_heads / tp) * d;
  const std::size_t f_pr = static_cast<std::size_t>(config.ffn_hidden / tp);
  auto grow = [](std::vector<float>& v, std::size_t n) {
    if (v.size() < n) v.resize(n);
  };
  grow(normed, t * h);
  grow(q, p * t * q_w);
  grow(k, p * t * kv_w);
  grow(v, p * t * kv_w);
  grow(attn_out, p * t * q_w);
  grow(gate, p * t * f_pr);
  grow(up, p * t * f_pr);
  grow(partial, p * t * h);
  // One split-KV attention scratch per rank (grown on demand by the
  // attention kernels): concurrent ranks must never share partial buffers.
  if (attn_scratch.size() < p) attn_scratch.resize(p);
}

void TpLayerForward(const LlamaConfig& config, const TpShardedLayer& layer,
                    const ModelBatch& batch, int layer_idx, PagedKvCache& kv,
                    std::span<float> x, TpWorkspace& ws,
                    const ComputeContext& ctx,
                    std::span<const ComputeContext* const> rank_ctxs) {
  const int tp = layer.tp;
  const int tokens = batch.total_tokens();
  const auto h = static_cast<std::size_t>(config.hidden_size);
  PUNICA_CHECK(x.size() == static_cast<std::size_t>(tokens) * h);
  PUNICA_CHECK(static_cast<int>(layer.ranks.size()) == tp);
  const bool concurrent = !rank_ctxs.empty();
  if (concurrent) {
    PUNICA_CHECK(static_cast<int>(rank_ctxs.size()) == tp);
  }
  const int d = config.head_dim();
  const int heads_pr = config.num_heads / tp;
  const int kv_heads_pr = config.num_kv_heads / tp;
  const int f_pr = config.ffn_hidden / tp;
  const auto q_w = static_cast<std::size_t>(heads_pr) *
                   static_cast<std::size_t>(d);
  const auto kv_w = static_cast<std::size_t>(kv_heads_pr) *
                    static_cast<std::size_t>(d);
  ws.Resize(config, tp, tokens);
  const std::size_t q_stride = static_cast<std::size_t>(tokens) * q_w;
  const std::size_t kv_stride = static_cast<std::size_t>(tokens) * kv_w;
  const std::size_t f_stride =
      static_cast<std::size_t>(tokens) * static_cast<std::size_t>(f_pr);
  const std::size_t h_stride = static_cast<std::size_t>(tokens) * h;
  const std::span<float> normed(ws.normed.data(), h_stride);

  // Runs rank_fn(r, rank_ctx) for every rank: concurrently on disjoint
  // worker groups, or as a plain serial loop on the root context. Both
  // paths execute the identical per-element fp32 expression — ranks write
  // disjoint workspace slices and meet only at the reduce below — so the
  // modes are bit-identical by construction.
  const auto for_each_rank = [&](const auto& rank_fn) {
    if (concurrent) {
      ctx.RunGroupTasks(tp, [&](int r) {
        rank_fn(r, *rank_ctxs[static_cast<std::size_t>(r)]);
      });
    } else {
      for (int r = 0; r < tp; ++r) rank_fn(r, ctx);
    }
  };

  // The deterministic all-reduce: per-rank partials sum into the residual
  // stream in fixed ascending rank order, whatever order the ranks
  // *finished* in (a deterministic stand-in for NCCL's fixed ring order).
  const auto reduce_partials = [&] {
    const float* partial = ws.partial.data();
    ctx.ParallelFor(static_cast<std::int64_t>(x.size()), 2048,
                    [&](std::int64_t lo, std::int64_t hi) {
                      for (std::int64_t i = lo; i < hi; ++i) {
                        auto u = static_cast<std::size_t>(i);
                        float acc = partial[u];
                        for (int r = 1; r < tp; ++r) {
                          acc += partial[static_cast<std::size_t>(r) *
                                             h_stride +
                                         u];
                        }
                        x[u] += acc;
                      }
                    });
  };

  // --- Attention block ---
  ctx.ParallelFor(tokens, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t t = lo; t < hi; ++t) {
      RmsNormRow(x.subspan(static_cast<std::size_t>(t) * h, h),
                 layer.attn_norm.data(),
                 normed.subspan(static_cast<std::size_t>(t) * h, h),
                 config.rms_eps);
    }
  });

  for_each_rank([&](int r, const ComputeContext& rctx) {
    const auto ur = static_cast<std::size_t>(r);
    const LayerWeights& shard = layer.ranks[ur];
    const std::span<float> q(ws.q.data() + ur * q_stride, q_stride);
    const std::span<float> k(ws.k.data() + ur * kv_stride, kv_stride);
    const std::span<float> v(ws.v.data() + ur * kv_stride, kv_stride);
    const std::span<float> attn_out(ws.attn_out.data() + ur * q_stride,
                                    q_stride);
    const std::span<float> partial(ws.partial.data() + ur * h_stride,
                                   h_stride);
    GemmSetW(normed, shard.proj[static_cast<int>(Proj::kQ)], q, tokens,
             config.hidden_size, heads_pr * d, rctx);
    GemmSetW(normed, shard.proj[static_cast<int>(Proj::kK)], k, tokens,
             config.hidden_size, kv_heads_pr * d, rctx);
    GemmSetW(normed, shard.proj[static_cast<int>(Proj::kV)], v, tokens,
             config.hidden_size, kv_heads_pr * d, rctx);

    // RoPE on this rank's heads; write this rank's KV slice of each entry
    // (disjoint across ranks, so concurrent ranks never share a writer).
    rctx.ParallelFor(tokens, 1, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t t = lo; t < hi; ++t) {
        std::int64_t pos = batch.row_pos[static_cast<std::size_t>(t)];
        ApplyRope(q.subspan(static_cast<std::size_t>(t) * q_w, q_w),
                  heads_pr, d, pos, config.rope_theta);
        ApplyRope(k.subspan(static_cast<std::size_t>(t) * kv_w, kv_w),
                  kv_heads_pr, d, pos, config.rope_theta);
        SeqId seq = batch.row_seq[static_cast<std::size_t>(t)];
        auto k_entry = kv.Entry(seq, layer_idx, pos, KvSlot::kKey);
        auto v_entry = kv.Entry(seq, layer_idx, pos, KvSlot::kValue);
        std::size_t off = ur * kv_w;
        FloatToHalfN(std::span<const float>(k).subspan(
                         static_cast<std::size_t>(t) * kv_w, kv_w),
                     k_entry.subspan(off, kv_w));
        FloatToHalfN(std::span<const float>(v).subspan(
                         static_cast<std::size_t>(t) * kv_w, kv_w),
                     v_entry.subspan(off, kv_w));
      }
    });

    // Attention over this rank's query heads (no communication needed).
    int head_begin = r * heads_pr;
    int head_end = head_begin + heads_pr;
    std::size_t row = 0;
    for (const auto& e : batch.entries) {
      if (!e.is_prefill) break;
      auto chunk = static_cast<std::size_t>(e.num_tokens);
      BatchPrefillAttentionRanged(
          config, kv, e.seq, layer_idx, e.pos_offset,
          std::span<const float>(q).subspan(row * q_w, chunk * q_w),
          attn_out.subspan(row * q_w, chunk * q_w), head_begin, head_end,
          rctx, &ws.attn_scratch[ur]);
      row += chunk;
    }
    if (!batch.decode_seqs.empty()) {
      auto n_dec = batch.decode_seqs.size();
      BatchDecodeAttentionRanged(
          config, kv, batch.decode_seqs, layer_idx,
          std::span<const float>(q).subspan(row * q_w, n_dec * q_w),
          attn_out.subspan(row * q_w, n_dec * q_w), head_begin, head_end,
          rctx, &ws.attn_scratch[ur]);
    }

    // Row-parallel O projection: this rank's partial [tokens, h].
    GemmSetW(attn_out, shard.proj[static_cast<int>(Proj::kO)], partial,
             tokens, heads_pr * d, config.hidden_size, rctx);
  });
  reduce_partials();

  // --- MLP block ---
  ctx.ParallelFor(tokens, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t t = lo; t < hi; ++t) {
      RmsNormRow(x.subspan(static_cast<std::size_t>(t) * h, h),
                 layer.mlp_norm.data(),
                 normed.subspan(static_cast<std::size_t>(t) * h, h),
                 config.rms_eps);
    }
  });
  for_each_rank([&](int r, const ComputeContext& rctx) {
    const auto ur = static_cast<std::size_t>(r);
    const LayerWeights& shard = layer.ranks[ur];
    const std::span<float> gate(ws.gate.data() + ur * f_stride, f_stride);
    const std::span<float> up(ws.up.data() + ur * f_stride, f_stride);
    const std::span<float> partial(ws.partial.data() + ur * h_stride,
                                   h_stride);
    GemmSetW(normed, shard.proj[static_cast<int>(Proj::kGate)], gate, tokens,
             config.hidden_size, f_pr, rctx);
    GemmSetW(normed, shard.proj[static_cast<int>(Proj::kUp)], up, tokens,
             config.hidden_size, f_pr, rctx);
    SiluInPlace(gate);
    for (std::size_t i = 0; i < gate.size(); ++i) gate[i] *= up[i];
    // Row-parallel Down projection: this rank's partial [tokens, h].
    GemmSetW(gate, shard.proj[static_cast<int>(Proj::kDown)], partial,
             tokens, f_pr, config.hidden_size, rctx);
  });
  reduce_partials();
}

void TpLayerForward(const LlamaConfig& config, const TpShardedLayer& layer,
                    const ModelBatch& batch, int layer_idx, PagedKvCache& kv,
                    std::span<float> x, const ComputeContext& ctx) {
  TpWorkspace ws;
  TpLayerForward(config, layer, batch, layer_idx, kv, x, ws, ctx, {});
}

std::int64_t RankLayerBytes(const LlamaConfig& config, int tp) {
  RankConfig(config, tp);
  return config.layer_weight_bytes() / tp +
         static_cast<std::int64_t>(config.hidden_size) * 2 * 2;  // norms
}

}  // namespace punica
