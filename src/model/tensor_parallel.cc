#include "model/tensor_parallel.h"

#include <algorithm>

#include "model/attention.h"
#include "model/rope.h"
#include "tensor/gemm.h"
#include "util/check.h"

namespace punica {
namespace {

Tensor<f16> SliceColumns(const Tensor<f16>& w, std::int64_t col_begin,
                         std::int64_t col_end) {
  PUNICA_CHECK(w.ndim() == 2);
  std::int64_t rows = w.dim(0);
  std::int64_t cols = w.dim(1);
  PUNICA_CHECK(col_begin >= 0 && col_end <= cols && col_begin < col_end);
  Tensor<f16> out({rows, col_end - col_begin});
  for (std::int64_t i = 0; i < rows; ++i) {
    auto src = w.row(i);
    auto dst = out.row(i);
    std::copy(src.begin() + col_begin, src.begin() + col_end, dst.begin());
  }
  return out;
}

Tensor<f16> SliceRows(const Tensor<f16>& w, std::int64_t row_begin,
                      std::int64_t row_end) {
  PUNICA_CHECK(w.ndim() == 2);
  PUNICA_CHECK(row_begin >= 0 && row_end <= w.dim(0) && row_begin < row_end);
  Tensor<f16> out({row_end - row_begin, w.dim(1)});
  for (std::int64_t i = row_begin; i < row_end; ++i) {
    auto src = w.row(i);
    auto dst = out.row(i - row_begin);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

}  // namespace

LlamaConfig RankConfig(const LlamaConfig& config, int tp) {
  PUNICA_CHECK(tp >= 1);
  PUNICA_CHECK_MSG(config.num_heads % tp == 0, "heads must divide tp");
  PUNICA_CHECK_MSG(config.num_kv_heads % tp == 0, "kv heads must divide tp");
  PUNICA_CHECK_MSG(config.ffn_hidden % tp == 0, "ffn must divide tp");
  LlamaConfig rank = config;
  rank.num_heads = config.num_heads / tp;
  rank.num_kv_heads = config.num_kv_heads / tp;
  rank.ffn_hidden = config.ffn_hidden / tp;
  // hidden_size stays global: inputs are replicated, outputs reduced.
  return rank;
}

TpShardedLayer ShardLayer(const LlamaConfig& config, const LayerWeights& full,
                          int tp) {
  RankConfig(config, tp);  // validates divisibility
  // Shards are sliced from f16 MASTER weights and quantized per shard
  // afterwards. Slicing quantized blocks directly would be lossy anyway
  // (dequant→f16 re-rounds d·q), and post-slice quantization keeps each
  // rank's block boundaries local to its own columns.
  PUNICA_CHECK_MSG(
      full.proj[0].dtype() == WeightDtype::kF16,
      "ShardLayer slices f16 master weights; shards are quantized "
      "to config.weight_dtype after the slice");
  const auto quantize = [&config](Tensor<f16> t) {
    return WeightMatrix::FromF16(std::move(t), config.weight_dtype);
  };
  TpShardedLayer sharded;
  sharded.tp = tp;
  int d = config.head_dim();
  std::int64_t q_cols = static_cast<std::int64_t>(config.num_heads / tp) * d;
  std::int64_t kv_cols =
      static_cast<std::int64_t>(config.num_kv_heads / tp) * d;
  std::int64_t f_cols = config.ffn_hidden / tp;
  for (int r = 0; r < tp; ++r) {
    LayerWeights shard;
    shard.proj[static_cast<int>(Proj::kQ)] = quantize(
        SliceColumns(full.proj[static_cast<int>(Proj::kQ)].f16_tensor(),
                     r * q_cols, (r + 1) * q_cols));
    shard.proj[static_cast<int>(Proj::kK)] = quantize(
        SliceColumns(full.proj[static_cast<int>(Proj::kK)].f16_tensor(),
                     r * kv_cols, (r + 1) * kv_cols));
    shard.proj[static_cast<int>(Proj::kV)] = quantize(
        SliceColumns(full.proj[static_cast<int>(Proj::kV)].f16_tensor(),
                     r * kv_cols, (r + 1) * kv_cols));
    shard.proj[static_cast<int>(Proj::kO)] = quantize(
        SliceRows(full.proj[static_cast<int>(Proj::kO)].f16_tensor(),
                  r * q_cols, (r + 1) * q_cols));
    shard.proj[static_cast<int>(Proj::kGate)] = quantize(
        SliceColumns(full.proj[static_cast<int>(Proj::kGate)].f16_tensor(),
                     r * f_cols, (r + 1) * f_cols));
    shard.proj[static_cast<int>(Proj::kUp)] = quantize(
        SliceColumns(full.proj[static_cast<int>(Proj::kUp)].f16_tensor(),
                     r * f_cols, (r + 1) * f_cols));
    shard.proj[static_cast<int>(Proj::kDown)] = quantize(
        SliceRows(full.proj[static_cast<int>(Proj::kDown)].f16_tensor(),
                  r * f_cols, (r + 1) * f_cols));
    sharded.ranks.push_back(std::move(shard));
  }
  sharded.attn_norm = Tensor<f16>({config.hidden_size});
  sharded.mlp_norm = Tensor<f16>({config.hidden_size});
  std::copy(full.attn_norm.data().begin(), full.attn_norm.data().end(),
            sharded.attn_norm.data().begin());
  std::copy(full.mlp_norm.data().begin(), full.mlp_norm.data().end(),
            sharded.mlp_norm.data().begin());
  return sharded;
}

void TpLayerForward(const LlamaConfig& config, const TpShardedLayer& layer,
                    const ModelBatch& batch, int layer_idx, PagedKvCache& kv,
                    std::span<float> x, const ComputeContext& ctx) {
  const int tp = layer.tp;
  const int tokens = batch.total_tokens();
  const auto h = static_cast<std::size_t>(config.hidden_size);
  PUNICA_CHECK(x.size() == static_cast<std::size_t>(tokens) * h);
  PUNICA_CHECK(static_cast<int>(layer.ranks.size()) == tp);
  const int d = config.head_dim();
  const int heads_pr = config.num_heads / tp;
  const int kv_heads_pr = config.num_kv_heads / tp;
  const int f_pr = config.ffn_hidden / tp;
  const auto q_w = static_cast<std::size_t>(heads_pr) *
                   static_cast<std::size_t>(d);
  const auto kv_w = static_cast<std::size_t>(kv_heads_pr) *
                    static_cast<std::size_t>(d);

  // --- Attention block ---
  std::vector<float> normed(static_cast<std::size_t>(tokens) * h);
  for (int t = 0; t < tokens; ++t) {
    RmsNormRow(x.subspan(static_cast<std::size_t>(t) * h, h),
               layer.attn_norm.data(),
               std::span<float>(normed).subspan(
                   static_cast<std::size_t>(t) * h, h),
               config.rms_eps);
  }

  // The all-reduce accumulator: partial O-projection outputs sum here in
  // rank order (a deterministic stand-in for NCCL's reduction).
  std::vector<float> attn_reduced(x.size(), 0.0f);
  std::vector<float> q(static_cast<std::size_t>(tokens) * q_w);
  std::vector<float> k(static_cast<std::size_t>(tokens) * kv_w);
  std::vector<float> v(static_cast<std::size_t>(tokens) * kv_w);
  std::vector<float> attn_out(q.size());

  for (int r = 0; r < tp; ++r) {
    const LayerWeights& shard = layer.ranks[static_cast<std::size_t>(r)];
    GemmSetW(normed, shard.proj[static_cast<int>(Proj::kQ)], q, tokens,
             config.hidden_size, heads_pr * d, ctx);
    GemmSetW(normed, shard.proj[static_cast<int>(Proj::kK)], k, tokens,
             config.hidden_size, kv_heads_pr * d, ctx);
    GemmSetW(normed, shard.proj[static_cast<int>(Proj::kV)], v, tokens,
             config.hidden_size, kv_heads_pr * d, ctx);

    // RoPE on this rank's heads; write this rank's KV slice of each entry.
    for (int t = 0; t < tokens; ++t) {
      std::int64_t pos = batch.row_pos[static_cast<std::size_t>(t)];
      ApplyRope(std::span<float>(q).subspan(
                    static_cast<std::size_t>(t) * q_w, q_w),
                heads_pr, d, pos, config.rope_theta);
      ApplyRope(std::span<float>(k).subspan(
                    static_cast<std::size_t>(t) * kv_w, kv_w),
                kv_heads_pr, d, pos, config.rope_theta);
      SeqId seq = batch.row_seq[static_cast<std::size_t>(t)];
      auto k_entry = kv.Entry(seq, layer_idx, pos, KvSlot::kKey);
      auto v_entry = kv.Entry(seq, layer_idx, pos, KvSlot::kValue);
      std::size_t off = static_cast<std::size_t>(r) * kv_w;
      FloatToHalfN(std::span<const float>(k).subspan(
                       static_cast<std::size_t>(t) * kv_w, kv_w),
                   k_entry.subspan(off, kv_w));
      FloatToHalfN(std::span<const float>(v).subspan(
                       static_cast<std::size_t>(t) * kv_w, kv_w),
                   v_entry.subspan(off, kv_w));
    }

    // Attention over this rank's query heads (no communication needed).
    int head_begin = r * heads_pr;
    int head_end = head_begin + heads_pr;
    std::size_t row = 0;
    for (const auto& e : batch.entries) {
      if (!e.is_prefill) break;
      auto chunk = static_cast<std::size_t>(e.num_tokens);
      BatchPrefillAttentionRanged(
          config, kv, e.seq, layer_idx, e.pos_offset,
          std::span<const float>(q).subspan(row * q_w, chunk * q_w),
          std::span<float>(attn_out).subspan(row * q_w, chunk * q_w),
          head_begin, head_end, ctx);
      row += chunk;
    }
    if (!batch.decode_seqs.empty()) {
      auto n_dec = batch.decode_seqs.size();
      BatchDecodeAttentionRanged(
          config, kv, batch.decode_seqs, layer_idx,
          std::span<const float>(q).subspan(row * q_w, n_dec * q_w),
          std::span<float>(attn_out).subspan(row * q_w, n_dec * q_w),
          head_begin, head_end, ctx);
    }

    // Row-parallel O projection: partial [tokens, h], reduced across ranks.
    GemmAccW(attn_out, shard.proj[static_cast<int>(Proj::kO)], attn_reduced,
             tokens, heads_pr * d, config.hidden_size, ctx);
  }
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += attn_reduced[i];

  // --- MLP block ---
  for (int t = 0; t < tokens; ++t) {
    RmsNormRow(x.subspan(static_cast<std::size_t>(t) * h, h),
               layer.mlp_norm.data(),
               std::span<float>(normed).subspan(
                   static_cast<std::size_t>(t) * h, h),
               config.rms_eps);
  }
  std::vector<float> mlp_reduced(x.size(), 0.0f);
  std::vector<float> gate(static_cast<std::size_t>(tokens) *
                          static_cast<std::size_t>(f_pr));
  std::vector<float> up(gate.size());
  for (int r = 0; r < tp; ++r) {
    const LayerWeights& shard = layer.ranks[static_cast<std::size_t>(r)];
    GemmSetW(normed, shard.proj[static_cast<int>(Proj::kGate)], gate, tokens,
             config.hidden_size, f_pr, ctx);
    GemmSetW(normed, shard.proj[static_cast<int>(Proj::kUp)], up, tokens,
             config.hidden_size, f_pr, ctx);
    SiluInPlace(gate);
    for (std::size_t i = 0; i < gate.size(); ++i) gate[i] *= up[i];
    GemmAccW(gate, shard.proj[static_cast<int>(Proj::kDown)], mlp_reduced,
             tokens, f_pr, config.hidden_size, ctx);
  }
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += mlp_reduced[i];
}

std::int64_t RankLayerBytes(const LlamaConfig& config, int tp) {
  RankConfig(config, tp);
  return config.layer_weight_bytes() / tp +
         static_cast<std::int64_t>(config.hidden_size) * 2 * 2;  // norms
}

}  // namespace punica
