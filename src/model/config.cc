#include "model/config.h"

#include "util/check.h"

namespace punica {

std::int64_t LlamaConfig::params_per_layer() const {
  auto h = static_cast<std::int64_t>(hidden_size);
  auto kv = static_cast<std::int64_t>(kv_dim());
  auto f = static_cast<std::int64_t>(ffn_hidden);
  // q: h→h, k: h→kv, v: h→kv, o: h→h, gate: h→f, up: h→f, down: f→h
  return h * h * 2 + h * kv * 2 + h * f * 3;
}

std::int64_t LlamaConfig::total_params() const {
  auto embed = static_cast<std::int64_t>(vocab_size) * hidden_size;
  return params_per_layer() * num_layers + embed * 2;  // tied-ish head
}

std::int64_t LlamaConfig::lora_params_per_layer(int rank) const {
  PUNICA_CHECK(rank > 0);
  std::int64_t total = 0;
  for (int p = 0; p < kNumProj; ++p) {
    ProjShape s = ShapeOf(*this, static_cast<Proj>(p));
    total += static_cast<std::int64_t>(s.h_in) * rank +
             static_cast<std::int64_t>(rank) * s.h_out;
  }
  return total;
}

ProjShape ShapeOf(const LlamaConfig& config, Proj proj) {
  int h = config.hidden_size;
  int kv = config.kv_dim();
  int f = config.ffn_hidden;
  switch (proj) {
    case Proj::kQ:
      return {h, h};
    case Proj::kK:
    case Proj::kV:
      return {h, kv};
    case Proj::kO:
      return {h, h};
    case Proj::kGate:
    case Proj::kUp:
      return {h, f};
    case Proj::kDown:
      return {f, h};
  }
  PUNICA_CHECK_MSG(false, "unknown projection");
  return {};
}

LlamaConfig Llama7B() {
  return {.name = "llama2-7b",
          .hidden_size = 4096,
          .num_layers = 32,
          .num_heads = 32,
          .num_kv_heads = 32,
          .ffn_hidden = 11008,
          .vocab_size = 32000};
}

LlamaConfig Llama13B() {
  return {.name = "llama2-13b",
          .hidden_size = 5120,
          .num_layers = 40,
          .num_heads = 40,
          .num_kv_heads = 40,
          .ffn_hidden = 13824,
          .vocab_size = 32000};
}

LlamaConfig Llama70B() {
  return {.name = "llama2-70b",
          .hidden_size = 8192,
          .num_layers = 80,
          .num_heads = 64,
          .num_kv_heads = 8,  // Llama-2 70B uses GQA
          .ffn_hidden = 28672,
          .vocab_size = 32000};
}

LlamaConfig TinyLlama() {
  return {.name = "tiny-llama",
          .hidden_size = 64,
          .num_layers = 2,
          .num_heads = 4,
          .num_kv_heads = 2,
          .ffn_hidden = 128,
          .vocab_size = 256};
}

LlamaConfig TinyLlama4L() {
  return {.name = "tiny-llama-4l",
          .hidden_size = 96,
          .num_layers = 4,
          .num_heads = 6,
          .num_kv_heads = 3,
          .ffn_hidden = 192,
          .vocab_size = 512};
}

}  // namespace punica
