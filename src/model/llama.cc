#include "model/llama.h"

#include <algorithm>
#include <cmath>

#include "tensor/gemm.h"
#include "util/check.h"
#include "util/rng.h"

namespace punica {

LlamaModel::LlamaModel(const LlamaConfig& config, std::uint64_t seed,
                       const ComputeContext* ctx, int tp, bool tp_concurrent)
    : config_(config),
      ctx_(ctx != nullptr ? ctx : &ComputeContext::Default()),
      tp_(tp) {
  PUNICA_CHECK(tp >= 1);
  Pcg32 rng(seed);
  float embed_scale = 1.0f / std::sqrt(static_cast<float>(config.hidden_size));
  embedding_ = Tensor<f16>({config.vocab_size, config.hidden_size});
  for (auto& v : embedding_.data()) {
    v = f16(static_cast<float>(rng.NextGaussian()) * embed_scale);
  }
  // Shift-tied LM head (weight tying à la GPT-2/Gemma, shifted by one):
  // head column v is the embedding row of token v-1, so the residual
  // stream's embedding component makes "input token + 1" the well-separated
  // greedy argmax. An untied random head scores a random hidden state
  // against random directions — near-uniform logits whose argmax flips
  // under any perturbation, so stream comparisons (the quant quality gate,
  // the determinism suites) would measure tie-breaking luck instead of
  // model numerics. The head stays its own tensor: it is stored — and
  // quantized — separately, so shapes and byte accounting are unchanged.
  Tensor<f16> lm_head({config.hidden_size, config.vocab_size});
  for (std::int64_t v = 0; v < config.vocab_size; ++v) {
    std::int64_t src = (v + config.vocab_size - 1) % config.vocab_size;
    for (std::int64_t i = 0; i < config.hidden_size; ++i) {
      lm_head.at({i, v}) = embedding_.at({src, i});
    }
  }
  // Same f16 draw at every dtype; quantization only changes the storage.
  // The embedding stays f16 — it is a per-row gather, not a GEMM operand.
  lm_head_ = WeightMatrix::FromF16(std::move(lm_head), config.weight_dtype);
  final_norm_ = Tensor<f16>({config.hidden_size});
  for (auto& v : final_norm_.data()) v = f16(1.0f);
  if (tp == 1) {
    layers_.reserve(static_cast<std::size_t>(config.num_layers));
    for (int l = 0; l < config.num_layers; ++l) {
      layers_.push_back(LayerWeights::Random(
          config, seed * 7919 + static_cast<std::uint64_t>(l) + 1));
    }
  } else {
    // Same seeded f16 master draw as tp=1 (LayerWeights::Random draws f16
    // masters regardless of dtype), sharded Megatron-style per rank and
    // quantized to config.weight_dtype after the slice — so tp changes the
    // execution schedule, never the parameters.
    LlamaConfig master_config = config;
    master_config.weight_dtype = WeightDtype::kF16;
    tp_layers_.reserve(static_cast<std::size_t>(config.num_layers));
    for (int l = 0; l < config.num_layers; ++l) {
      LayerWeights full = LayerWeights::Random(
          master_config, seed * 7919 + static_cast<std::uint64_t>(l) + 1);
      tp_layers_.push_back(ShardLayer(config_, full, tp));
    }
    if (tp_concurrent) {
      rank_ctxs_ = ctx_->Split(tp);
      rank_ctx_ptrs_.reserve(rank_ctxs_.size());
      for (const auto& view : rank_ctxs_) {
        rank_ctx_ptrs_.push_back(view.get());
      }
    }
  }
}

void LlamaModel::AddLora(LoraId id, int rank, std::uint64_t seed) {
  AddLora(id, LoraModelWeights::Random(config_, rank, seed));
}

void LlamaModel::AddLora(LoraId id, LoraModelWeights weights) {
  PUNICA_CHECK(weights.layers.size() ==
               static_cast<std::size_t>(config_.num_layers));
  if (tp_ > 1) {
    // Distribute the adapter over the ranks up front (the per-GPU load
    // step), so Forward only gathers pointers.
    tp_loras_[id] =
        std::make_unique<TpShardedLora>(ShardLoraModel(config_, weights, tp_));
  }
  loras_[id] = std::make_unique<LoraModelWeights>(std::move(weights));
}

const LoraModelWeights* LlamaModel::GetLora(LoraId id) const {
  auto it = loras_.find(id);
  return it == loras_.end() ? nullptr : it->second.get();
}

const TpShardedLora* LlamaModel::GetLoraShards(LoraId id) const {
  auto it = tp_loras_.find(id);
  return it == tp_loras_.end() ? nullptr : it->second.get();
}

Tensor<float> LlamaModel::Forward(const ModelBatch& batch,
                                  std::span<const std::int32_t> token_ids,
                                  PagedKvCache& kv) {
  const int tokens = batch.total_tokens();
  PUNICA_CHECK(token_ids.size() == static_cast<std::size_t>(tokens));
  const auto h = static_cast<std::size_t>(config_.hidden_size);

  // Resolve each segment's LoRA model once per invocation.
  std::vector<const LoraModelWeights*> seg_lora;
  seg_lora.reserve(batch.segments.lora_ids.size());
  int max_rank = 1;
  for (LoraId id : batch.segments.lora_ids) {
    const LoraModelWeights* w = id >= 0 ? GetLora(id) : nullptr;
    PUNICA_CHECK_MSG(id < 0 || w != nullptr,
                     "batch references an unloaded LoRA model");
    seg_lora.push_back(w);
    if (w != nullptr) max_rank = std::max(max_rank, w->rank);
  }

  // Embedding lookup: one writer per token row.
  std::vector<float> x(static_cast<std::size_t>(tokens) * h);
  for (int t = 0; t < tokens; ++t) {
    std::int32_t id = token_ids[static_cast<std::size_t>(t)];
    PUNICA_CHECK(id >= 0 && id < config_.vocab_size);
  }
  ctx_->ParallelFor(tokens, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t t = lo; t < hi; ++t) {
      auto row = embedding_.row(token_ids[static_cast<std::size_t>(t)]);
      HalfToFloatN(row, std::span<float>(x).subspan(
                            static_cast<std::size_t>(t) * h, h));
    }
  });

  if (tp_ == 1) {
    ws_.Resize(config_, tokens, max_rank);
    for (int l = 0; l < config_.num_layers; ++l) {
      LayerForward(config_, layers_[static_cast<std::size_t>(l)], seg_lora,
                   batch, l, kv, x, ws_, *ctx_);
    }
  } else {
    // Gather each segment's per-rank adapter shards (built at AddLora).
    std::vector<const TpShardedLora*> seg_shards;
    seg_shards.reserve(batch.segments.lora_ids.size());
    for (LoraId id : batch.segments.lora_ids) {
      const TpShardedLora* s = id >= 0 ? GetLoraShards(id) : nullptr;
      PUNICA_CHECK_MSG(id < 0 || s != nullptr,
                       "batch references a LoRA model with no TP shards");
      seg_shards.push_back(s);
    }
    for (int l = 0; l < config_.num_layers; ++l) {
      TpLayerForward(config_, tp_layers_[static_cast<std::size_t>(l)], batch,
                     l, kv, x, tp_ws_, *ctx_,
                     std::span<const ComputeContext* const>(rank_ctx_ptrs_),
                     seg_shards);
    }
  }

  // Final norm + LM head on each entry's last token row. The entry loop is
  // serial; the vocab-wide Gemv parallelizes over column tiles inside.
  // Non-emitting entries (a chunked prefill's non-final chunks) skip the
  // whole head — their last row is mid-prompt — and keep a zeroed logits
  // row, so the vocab-wide Gemv is only ever paid for rows that sample.
  auto num_entries = batch.entries.size();
  Tensor<float> logits(
      {static_cast<std::int64_t>(num_entries), config_.vocab_size});
  std::vector<float> normed(h);
  std::size_t row = 0;
  for (std::size_t e = 0; e < num_entries; ++e) {
    row += static_cast<std::size_t>(batch.entries[e].num_tokens);
    if (!batch.entries[e].emit_logits) continue;
    std::size_t last = row - 1;
    RmsNormRow(std::span<const float>(x).subspan(last * h, h),
               final_norm_.data(), normed, config_.rms_eps);
    auto out = logits.row(static_cast<std::int64_t>(e));
    GemmSetW(normed, lm_head_, out, 1, config_.hidden_size,
             config_.vocab_size, *ctx_);
  }
  return logits;
}

std::vector<std::int32_t> LlamaModel::ForwardGreedy(
    const ModelBatch& batch, std::span<const std::int32_t> token_ids,
    PagedKvCache& kv) {
  Tensor<float> logits = Forward(batch, token_ids, kv);
  std::vector<std::int32_t> out;
  out.reserve(batch.entries.size());
  for (std::int64_t e = 0; e < logits.dim(0); ++e) {
    // -1 for non-emitting entries: using a partial chunk's "token" is a
    // caller bug, and -1 fails the embedding range check loudly.
    out.push_back(batch.entries[static_cast<std::size_t>(e)].emit_logits
                      ? ArgMax(logits.row(e))
                      : -1);
  }
  return out;
}

KvCacheConfig LlamaModel::MakeKvConfig(std::int32_t num_pages,
                                       int page_size) const {
  return {.num_layers = config_.num_layers,
          .num_kv_heads = config_.num_kv_heads,
          .head_dim = config_.head_dim(),
          .page_size = page_size,
          .num_pages = num_pages};
}

std::int32_t LlamaModel::ArgMax(std::span<const float> logits) {
  PUNICA_CHECK(!logits.empty());
  return static_cast<std::int32_t>(
      std::max_element(logits.begin(), logits.end()) - logits.begin());
}

}  // namespace punica
