#include "model/attention.h"

#include <array>
#include <cmath>
#include <vector>

#include "tensor/simd.h"
#include "util/check.h"

namespace punica {
namespace {

// Online-softmax single-query attention over cache positions [0, kv_len) of
// one sequence, one query head. This is the streaming formulation
// FlashAttention/FlashInfer use: one pass, running max and normaliser, no
// score materialisation. Per position, the K/V page entries are decoded in
// bulk inside the fused SIMD ops: dot_f16 for the q·k score (decode + FMA
// in one pass over head_dim) and scale_add_f16 for the V accumulation.
void AttendOneHead(const PagedKvCache& kv, SeqId seq, int layer, int kv_head,
                   int head_dim, std::int64_t kv_len,
                   std::span<const float> q_head, std::span<float> out_head,
                   float scale) {
  const SimdOps& ops = Simd();
  float running_max = -INFINITY;
  float normaliser = 0.0f;
  std::vector<float> acc(static_cast<std::size_t>(head_dim), 0.0f);
  std::size_t head_off = static_cast<std::size_t>(kv_head) *
                         static_cast<std::size_t>(head_dim);
  for (std::int64_t pos = 0; pos < kv_len; ++pos) {
    auto k_entry = kv.Entry(seq, layer, pos, KvSlot::kKey);
    float score = ops.dot_f16(q_head.data(), k_entry.data() + head_off,
                              static_cast<std::size_t>(head_dim)) *
                  scale;
    float new_max = std::max(running_max, score);
    float correction = std::exp(running_max - new_max);
    float p = std::exp(score - new_max);
    normaliser = normaliser * correction + p;
    auto v_entry = kv.Entry(seq, layer, pos, KvSlot::kValue);
    ops.scale_add_f16(acc.data(), correction, p, v_entry.data() + head_off,
                      static_cast<std::size_t>(head_dim));
    running_max = new_max;
  }
  float inv = normaliser > 0.0f ? 1.0f / normaliser : 0.0f;
  for (int d = 0; d < head_dim; ++d) {
    out_head[static_cast<std::size_t>(d)] =
        acc[static_cast<std::size_t>(d)] * inv;
  }
}

// Attention for one token and one *local* head index (the head_begin-based
// offset into q/out); the global head picks the shared KV head under GQA.
void AttendTokenHead(const LlamaConfig& config, const PagedKvCache& kv,
                     SeqId seq, int layer, std::int64_t kv_len,
                     std::span<const float> q, std::span<float> out,
                     int head_begin, int local_head) {
  int head_dim = config.head_dim();
  int group = config.num_heads / config.num_kv_heads;
  float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  int kv_head = (head_begin + local_head) / group;
  auto q_head =
      q.subspan(static_cast<std::size_t>(local_head) *
                    static_cast<std::size_t>(head_dim),
                static_cast<std::size_t>(head_dim));
  auto out_head =
      out.subspan(static_cast<std::size_t>(local_head) *
                      static_cast<std::size_t>(head_dim),
                  static_cast<std::size_t>(head_dim));
  AttendOneHead(kv, seq, layer, kv_head, head_dim, kv_len, q_head, out_head,
                scale);
}

void CheckRange(const LlamaConfig& config, int head_begin, int head_end) {
  PUNICA_CHECK(config.num_heads % config.num_kv_heads == 0);
  PUNICA_CHECK(head_begin >= 0);
  PUNICA_CHECK(head_end > head_begin);
  PUNICA_CHECK(head_end <= config.num_heads);
}

}  // namespace

void BatchPrefillAttentionRanged(const LlamaConfig& config,
                                 const PagedKvCache& kv, SeqId seq, int layer,
                                 std::int64_t pos_offset,
                                 std::span<const float> q,
                                 std::span<float> out, int head_begin,
                                 int head_end, const ComputeContext& ctx) {
  CheckRange(config, head_begin, head_end);
  const std::int64_t heads = head_end - head_begin;
  std::size_t width = static_cast<std::size_t>(heads) *
                      static_cast<std::size_t>(config.head_dim());
  PUNICA_CHECK(q.size() % width == 0);
  PUNICA_CHECK(q.size() == out.size());
  auto chunk_len = static_cast<std::int64_t>(q.size() / width);
  PUNICA_CHECK(kv.SeqLen(seq) >= pos_offset + chunk_len);
  // One (token, head) pair per task; the online-softmax pass over the cache
  // is sequential within the task, so each out slice is order-fixed.
  ctx.ParallelFor(chunk_len * heads, 1, [&](std::int64_t lo,
                                            std::int64_t hi) {
    for (std::int64_t task = lo; task < hi; ++task) {
      std::int64_t j = task / heads;
      int local_head = static_cast<int>(task % heads);
      std::int64_t kv_len = pos_offset + j + 1;  // causal
      AttendTokenHead(config, kv, seq, layer, kv_len,
                      q.subspan(static_cast<std::size_t>(j) * width, width),
                      out.subspan(static_cast<std::size_t>(j) * width, width),
                      head_begin, local_head);
    }
  });
}

void BatchDecodeAttentionRanged(const LlamaConfig& config,
                                const PagedKvCache& kv,
                                std::span<const SeqId> seqs, int layer,
                                std::span<const float> q, std::span<float> out,
                                int head_begin, int head_end,
                                const ComputeContext& ctx) {
  CheckRange(config, head_begin, head_end);
  const std::int64_t heads = head_end - head_begin;
  std::size_t width = static_cast<std::size_t>(heads) *
                      static_cast<std::size_t>(config.head_dim());
  PUNICA_CHECK(q.size() == seqs.size() * width);
  PUNICA_CHECK(q.size() == out.size());
  // Resolve each row's cache length once, not once per (row, head) task.
  // Stack storage for typical decode batches keeps the per-layer hot path
  // allocation-free.
  constexpr std::size_t kStackSeqs = 64;
  std::array<std::int64_t, kStackSeqs> stack_lens;
  std::vector<std::int64_t> heap_lens;
  std::int64_t* kv_lens = stack_lens.data();
  if (seqs.size() > kStackSeqs) {
    heap_lens.resize(seqs.size());
    kv_lens = heap_lens.data();
  }
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    kv_lens[i] = kv.SeqLen(seqs[i]);
    PUNICA_CHECK(kv_lens[i] > 0);
  }
  ctx.ParallelFor(static_cast<std::int64_t>(seqs.size()) * heads, 1,
                  [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t task = lo; task < hi; ++task) {
      auto i = static_cast<std::size_t>(task / heads);
      int local_head = static_cast<int>(task % heads);
      AttendTokenHead(config, kv, seqs[i], layer, kv_lens[i],
                      q.subspan(i * width, width),
                      out.subspan(i * width, width), head_begin, local_head);
    }
  });
}

void BatchPrefillAttention(const LlamaConfig& config, const PagedKvCache& kv,
                           SeqId seq, int layer, std::int64_t pos_offset,
                           std::span<const float> q, std::span<float> out,
                           const ComputeContext& ctx) {
  BatchPrefillAttentionRanged(config, kv, seq, layer, pos_offset, q, out, 0,
                              config.num_heads, ctx);
}

void BatchDecodeAttention(const LlamaConfig& config, const PagedKvCache& kv,
                          std::span<const SeqId> seqs, int layer,
                          std::span<const float> q, std::span<float> out,
                          const ComputeContext& ctx) {
  BatchDecodeAttentionRanged(config, kv, seqs, layer, q, out, 0,
                             config.num_heads, ctx);
}

}  // namespace punica
