#include "model/attention.h"

#include <algorithm>
#include <cmath>

#include "tensor/simd.h"
#include "util/check.h"
#include "util/small_buffer.h"

namespace punica {
namespace {

// Inline capacity for per-call metadata: decode batches up to this many
// rows resolve kv lengths and split offsets on the stack (the hot path);
// bigger batches and long prefill chunks spill to reused heap storage.
constexpr std::size_t kStackRows = 64;

/// One attention row: a query token and the cache range it attends over.
struct RowInfo {
  SeqId seq = 0;
  std::int64_t kv_len = 0;
};

/// Query heads per task: GQA query heads sharing one KV head are evaluated
/// together, block-interleaved, so each K/V cache block is streamed from
/// memory once per task instead of once per query head (the cache bytes
/// are the decode roofline). Capped so the per-task stack scratch stays
/// bounded; a wider GQA group becomes several tasks over the same KV head.
constexpr int kMaxSegHeads = 8;

/// A run of consecutive local query heads sharing one KV head.
struct HeadSeg {
  std::int32_t lo = 0;  ///< first local head
  std::int32_t hi = 0;  ///< one past the last local head
};

/// Computes the softmax partials of cache positions [begin, end) — one math
/// block — for `n_h` consecutive query heads sharing one KV head. Two
/// passes over the block's page runs: scores for every position
/// (dot_f16_strip per K run per head, so a run is loaded once for the whole
/// group while L1-hot), the exact block max per head, then the softmax·V
/// accumulation (softmax_accum_f16 per V run per head) in ascending
/// position order. Per head this is exactly the single-head sequence — run
/// boundaries are fixed by the page geometry and the absolute block grid,
/// never by the split, thread count or head grouping, so each head's
/// partial is a fixed arithmetic sequence. Head t's partial is written to
/// out0[t·out_stride]: {m, s, acc[0..d)} (acc zeroed here). `scores` needs
/// n_h · kAttnBlockLen floats.
void ComputeBlockPartialGroup(const SimdOps& ops, KvRunCursor& kcur,
                              KvRunCursor& vcur, const float* q0, int n_h,
                              std::size_t head_off, std::size_t stride,
                              int d, std::int64_t begin, std::int64_t end,
                              float scale, float* scores, float* out0,
                              std::size_t out_stride) {
  kcur.Seek(begin);
  vcur.Seek(begin);
  KvRun run;
  std::int64_t done = 0;
  while (kcur.Next(end, &run)) {
    for (int t = 0; t < n_h; ++t) {
      ops.dot_f16_strip(q0 + static_cast<std::size_t>(t) * d,
                        run.data + head_off, stride,
                        static_cast<std::size_t>(d),
                        static_cast<std::size_t>(run.len), scale,
                        scores + static_cast<std::size_t>(t) * kAttnBlockLen +
                            done);
    }
    done += run.len;
  }
  const std::int64_t n = end - begin;
  for (int t = 0; t < n_h; ++t) {
    const float* sp = scores + static_cast<std::size_t>(t) * kAttnBlockLen;
    float m = -INFINITY;
    for (std::int64_t j = 0; j < n; ++j) m = std::max(m, sp[j]);
    float* slot = out0 + static_cast<std::size_t>(t) * out_stride;
    slot[0] = m;
    slot[1] = 0.0f;
    std::fill(slot + 2, slot + 2 + d, 0.0f);
  }
  std::int64_t off = 0;
  while (vcur.Next(end, &run)) {
    for (int t = 0; t < n_h; ++t) {
      float* slot = out0 + static_cast<std::size_t>(t) * out_stride;
      slot[1] += ops.softmax_accum_f16(
          scores + static_cast<std::size_t>(t) * kAttnBlockLen + off,
          slot[0], run.data + head_off, stride, static_cast<std::size_t>(d),
          static_cast<std::size_t>(run.len), slot + 2);
    }
    off += run.len;
  }
}

/// Folds one block partial into the running (m, s, acc) state. This is the
/// ONLY way partials ever combine — a left fold in ascending block order —
/// on both the inline path and the split-KV path, so the non-associative
/// softmax merge is always the same arithmetic sequence. Seeded with
/// (m = −inf, s = 0, acc = 0): exp(−inf − m') = 0 makes the first fold an
/// exact copy-in.
inline void FoldBlock(float bm, float bs, const float* bacc, int d, float* m,
                      float* s, float* acc) {
  const float new_m = std::max(*m, bm);
  const float alpha = std::exp(*m - new_m);
  const float beta = std::exp(bm - new_m);
  for (int i = 0; i < d; ++i) acc[i] = acc[i] * alpha + beta * bacc[i];
  *s = *s * alpha + beta * bs;
  *m = new_m;
}

inline void NormalizeOut(float s, int d, float* out_head) {
  const float inv = s > 0.0f ? 1.0f / s : 0.0f;
  for (int i = 0; i < d; ++i) out_head[i] *= inv;
}

/// The unsplit path: every block of one (row, head-segment) task computed
/// and folded inline. Each head's output slice doubles as its fold
/// accumulator — no per-task heap allocation anywhere (the old kernel's
/// std::vector acc). Per head the block/fold sequence is identical to a
/// one-head-per-task schedule; grouping only changes which task runs it.
void AttendSegInline(const SimdOps& ops, const PagedKvCache& kv,
                     const RowInfo& row, int layer, const HeadSeg& seg,
                     std::size_t head_off, std::size_t stride, int d,
                     const float* q0, float* out0, float scale) {
  const int n_h = seg.hi - seg.lo;
  KvRunCursor kcur(kv, row.seq, layer, KvSlot::kKey, head_off);
  KvRunCursor vcur(kv, row.seq, layer, KvSlot::kValue, head_off);
  float scores[kMaxSegHeads * kAttnBlockLen];
  // Per-head block partial {m, s, acc[d]} plus the running fold (m, s).
  float partial[kMaxSegHeads * (2 + kMaxAttnHeadDim)];
  const std::size_t pstride = static_cast<std::size_t>(d) + 2;
  float m[kMaxSegHeads];
  float s[kMaxSegHeads];
  for (int t = 0; t < n_h; ++t) {
    m[t] = -INFINITY;
    s[t] = 0.0f;
    float* oh = out0 + static_cast<std::size_t>(t) * d;
    std::fill(oh, oh + d, 0.0f);
  }
  for (std::int64_t b0 = 0; b0 < row.kv_len; b0 += kAttnBlockLen) {
    const std::int64_t b1 = std::min(row.kv_len, b0 + kAttnBlockLen);
    ComputeBlockPartialGroup(ops, kcur, vcur, q0, n_h, head_off, stride, d,
                             b0, b1, scale, scores, partial, pstride);
    for (int t = 0; t < n_h; ++t) {
      const float* slot = partial + static_cast<std::size_t>(t) * pstride;
      FoldBlock(slot[0], slot[1], slot + 2, d, &m[t], &s[t],
                out0 + static_cast<std::size_t>(t) * d);
    }
  }
  for (int t = 0; t < n_h; ++t) {
    NormalizeOut(s[t], d, out0 + static_cast<std::size_t>(t) * d);
  }
}

/// Work-size heuristic (split-KV chunk count): split only when the batch's
/// (row × head-segment) tasks under-fill the worker pool — the long-context
/// single-sequence decode that otherwise leaves most workers idle — and
/// the longest row spans at least two blocks. Any S computes the identical
/// stream (the block math is fixed), so this is purely a scheduling choice
/// and may depend on the thread count without breaking determinism.
int PickSplit(const ComputeContext& ctx, std::int64_t tasks,
              std::int64_t max_kv_len) {
  const int forced = ctx.attn_split();
  if (forced > 0) return forced;
  const auto threads = static_cast<std::int64_t>(ctx.num_threads());
  if (threads <= 1 || tasks <= 0) return 1;
  if (tasks >= 2 * threads) return 1;
  if (max_kv_len < 2 * kAttnBlockLen) return 1;
  // Oversubscribe ~3 chunks per worker: chunk costs vary (tail blocks,
  // page effects) and the pool assigns chunks dynamically.
  const std::int64_t s = (3 * threads + tasks - 1) / tasks;
  return static_cast<int>(
      std::clamp<std::int64_t>(s, 1, ComputeContext::kMaxAttnSplit));
}

/// Shared core of all four entry points: attention of `rows` query tokens
/// over their cache ranges, for local heads [0, heads) mapping to global
/// heads [head_begin, head_begin + heads).
void AttendRowsRanged(const LlamaConfig& config, const PagedKvCache& kv,
                      std::span<const RowInfo> rows, int layer,
                      std::span<const float> q, std::span<float> out,
                      int head_begin, int heads, const ComputeContext& ctx,
                      std::vector<float>* scratch) {
  const SimdOps& ops = Simd();
  const int d = config.head_dim();
  PUNICA_CHECK(d <= kMaxAttnHeadDim);
  const int group = config.num_heads / config.num_kv_heads;
  const std::size_t width = static_cast<std::size_t>(heads) *
                            static_cast<std::size_t>(d);
  const std::size_t stride = kv.config().token_entry_elems();
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  const auto n_rows = static_cast<std::int64_t>(rows.size());
  const std::int64_t pairs = n_rows * heads;

  std::int64_t max_kv_len = 0;
  for (const RowInfo& r : rows) max_kv_len = std::max(max_kv_len, r.kv_len);

  const auto head_off_of = [&](int local_head) {
    return static_cast<std::size_t>((head_begin + local_head) / group) *
           static_cast<std::size_t>(d);
  };

  // Head segments: maximal runs of local query heads sharing one KV head
  // (capped at kMaxSegHeads). Tasks are (row, segment), so one task streams
  // each cache block once for its whole GQA group. A rank's head range need
  // not be group-aligned — the first/last segments may be partial groups.
  SmallBuffer<HeadSeg, 64> segs(static_cast<std::size_t>(heads));
  std::int64_t n_segs = 0;
  for (int lh = 0; lh < heads;) {
    const int gh = head_begin + lh;
    const int group_end = (gh / group + 1) * group - head_begin;
    const int hi = std::min({heads, group_end, lh + kMaxSegHeads});
    segs[static_cast<std::size_t>(n_segs++)] = {lh, hi};
    lh = hi;
  }
  const std::int64_t n_tasks = n_rows * n_segs;

  const int S = PickSplit(ctx, n_tasks, max_kv_len);

  // Per-row block counts and per-row chunk counts (min(S, blocks)), as
  // prefix sums so tasks and partial slots index by flat offset.
  SmallBuffer<std::int64_t, kStackRows + 1> block_off;
  SmallBuffer<std::int64_t, kStackRows + 1> chunk_off;
  std::int64_t total_blocks = 0;
  std::int64_t total_chunks = 0;
  if (S > 1) {
    block_off.Resize(static_cast<std::size_t>(n_rows) + 1);
    chunk_off.Resize(static_cast<std::size_t>(n_rows) + 1);
    block_off[0] = chunk_off[0] = 0;
    for (std::int64_t i = 0; i < n_rows; ++i) {
      const std::int64_t blocks =
          (rows[static_cast<std::size_t>(i)].kv_len + kAttnBlockLen - 1) /
          kAttnBlockLen;
      total_blocks += blocks;
      total_chunks += std::min<std::int64_t>(S, blocks);
      block_off[static_cast<std::size_t>(i) + 1] = total_blocks;
      chunk_off[static_cast<std::size_t>(i) + 1] = total_chunks;
    }
  }

  if (S <= 1 || total_chunks == n_rows) {
    // One task per (row, head segment) — the whole-range inline fold; each
    // out slice has exactly one writer.
    ctx.ParallelFor(n_tasks, 1, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t task = lo; task < hi; ++task) {
        const auto row = static_cast<std::size_t>(task / n_segs);
        const HeadSeg seg = segs[static_cast<std::size_t>(task % n_segs)];
        AttendSegInline(
            ops, kv, rows[row], layer, seg, head_off_of(seg.lo), stride, d,
            q.data() + row * width + static_cast<std::size_t>(seg.lo) * d,
            out.data() + row * width + static_cast<std::size_t>(seg.lo) * d,
            scale);
      }
    });
    return;
  }

  // Split-KV: phase A computes every block's raw partial into workspace
  // scratch — never pre-folded, so the fold below is the same sequence the
  // inline path runs — and phase B folds them in ascending block order.
  // Partial slot layout: [total_blocks][heads][2 + d] floats (m, s, acc).
  const std::size_t slot_elems = static_cast<std::size_t>(d) + 2;
  const std::size_t need =
      static_cast<std::size_t>(total_blocks * heads) * slot_elems;
  SmallBuffer<float, 4096> local_partials;
  float* partials;
  if (scratch != nullptr) {
    if (scratch->size() < need) scratch->resize(need);
    partials = scratch->data();
  } else {
    local_partials.Resize(need);
    partials = local_partials.data();
  }

  ctx.ParallelFor(total_chunks * n_segs, 1, [&](std::int64_t lo,
                                                std::int64_t hi) {
    for (std::int64_t task = lo; task < hi; ++task) {
      const std::int64_t cg = task / n_segs;
      const HeadSeg seg = segs[static_cast<std::size_t>(task % n_segs)];
      // Row containing global chunk cg: chunk_off[row] <= cg < [row + 1].
      const std::int64_t row =
          std::upper_bound(chunk_off.data() + 1, chunk_off.data() + n_rows + 1,
                           cg) -
          (chunk_off.data() + 1);
      const auto ri = static_cast<std::size_t>(row);
      const std::int64_t c = cg - chunk_off[ri];
      const std::int64_t blocks = block_off[ri + 1] - block_off[ri];
      const std::int64_t chunks = chunk_off[ri + 1] - chunk_off[ri];
      const std::int64_t b_lo = c * blocks / chunks;
      const std::int64_t b_hi = (c + 1) * blocks / chunks;
      const std::size_t head_off = head_off_of(seg.lo);
      const float* q0 =
          q.data() + ri * width + static_cast<std::size_t>(seg.lo) * d;
      KvRunCursor kcur(kv, rows[ri].seq, layer, KvSlot::kKey, head_off);
      KvRunCursor vcur(kv, rows[ri].seq, layer, KvSlot::kValue, head_off);
      float scores[kMaxSegHeads * kAttnBlockLen];
      for (std::int64_t b = b_lo; b < b_hi; ++b) {
        const std::int64_t p0 = b * kAttnBlockLen;
        const std::int64_t p1 =
            std::min(rows[ri].kv_len, p0 + kAttnBlockLen);
        float* slot0 =
            partials + (static_cast<std::size_t>(block_off[ri] + b) *
                            static_cast<std::size_t>(heads) +
                        static_cast<std::size_t>(seg.lo)) *
                           slot_elems;
        ComputeBlockPartialGroup(ops, kcur, vcur, q0, seg.hi - seg.lo,
                                 head_off, stride, d, p0, p1, scale, scores,
                                 slot0, slot_elems);
      }
    }
  });

  ctx.ParallelFor(pairs, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t task = lo; task < hi; ++task) {
      const auto ri = static_cast<std::size_t>(task / heads);
      const int lh = static_cast<int>(task % heads);
      float* out_head =
          out.data() + ri * width + static_cast<std::size_t>(lh) * d;
      std::fill(out_head, out_head + d, 0.0f);
      float m = -INFINITY;
      float s = 0.0f;
      const std::int64_t blocks = block_off[ri + 1] - block_off[ri];
      for (std::int64_t b = 0; b < blocks; ++b) {
        const float* slot_p =
            partials + (static_cast<std::size_t>(block_off[ri] + b) *
                            static_cast<std::size_t>(heads) +
                        static_cast<std::size_t>(lh)) *
                           slot_elems;
        FoldBlock(slot_p[0], slot_p[1], slot_p + 2, d, &m, &s, out_head);
      }
      NormalizeOut(s, d, out_head);
    }
  });
}

void CheckRange(const LlamaConfig& config, int head_begin, int head_end) {
  PUNICA_CHECK(config.num_heads % config.num_kv_heads == 0);
  PUNICA_CHECK(head_begin >= 0);
  PUNICA_CHECK(head_end > head_begin);
  PUNICA_CHECK(head_end <= config.num_heads);
}

}  // namespace

void BatchPrefillAttentionRanged(const LlamaConfig& config,
                                 const PagedKvCache& kv, SeqId seq, int layer,
                                 std::int64_t pos_offset,
                                 std::span<const float> q,
                                 std::span<float> out, int head_begin,
                                 int head_end, const ComputeContext& ctx,
                                 std::vector<float>* scratch) {
  CheckRange(config, head_begin, head_end);
  const int heads = head_end - head_begin;
  const std::size_t width = static_cast<std::size_t>(heads) *
                            static_cast<std::size_t>(config.head_dim());
  PUNICA_CHECK(q.size() % width == 0);
  PUNICA_CHECK(q.size() == out.size());
  const auto chunk_len = static_cast<std::int64_t>(q.size() / width);
  PUNICA_CHECK(kv.SeqLen(seq) >= pos_offset + chunk_len);
  SmallBuffer<RowInfo, kStackRows> rows(static_cast<std::size_t>(chunk_len));
  for (std::int64_t j = 0; j < chunk_len; ++j) {
    rows[static_cast<std::size_t>(j)] = {seq, pos_offset + j + 1};  // causal
  }
  AttendRowsRanged(config, kv, {rows.data(), rows.size()}, layer, q, out,
                   head_begin, heads, ctx, scratch);
}

void BatchDecodeAttentionRanged(const LlamaConfig& config,
                                const PagedKvCache& kv,
                                std::span<const SeqId> seqs, int layer,
                                std::span<const float> q, std::span<float> out,
                                int head_begin, int head_end,
                                const ComputeContext& ctx,
                                std::vector<float>* scratch) {
  CheckRange(config, head_begin, head_end);
  const int heads = head_end - head_begin;
  const std::size_t width = static_cast<std::size_t>(heads) *
                            static_cast<std::size_t>(config.head_dim());
  PUNICA_CHECK(q.size() == seqs.size() * width);
  PUNICA_CHECK(q.size() == out.size());
  // Resolve each row's cache length once, not once per (row, head) task.
  SmallBuffer<RowInfo, kStackRows> rows(seqs.size());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    rows[i] = {seqs[i], kv.SeqLen(seqs[i])};
    PUNICA_CHECK(rows[i].kv_len > 0);
  }
  AttendRowsRanged(config, kv, {rows.data(), rows.size()}, layer, q, out,
                   head_begin, heads, ctx, scratch);
}

void BatchPrefillAttention(const LlamaConfig& config, const PagedKvCache& kv,
                           SeqId seq, int layer, std::int64_t pos_offset,
                           std::span<const float> q, std::span<float> out,
                           const ComputeContext& ctx,
                           std::vector<float>* scratch) {
  BatchPrefillAttentionRanged(config, kv, seq, layer, pos_offset, q, out, 0,
                              config.num_heads, ctx, scratch);
}

void BatchDecodeAttention(const LlamaConfig& config, const PagedKvCache& kv,
                          std::span<const SeqId> seqs, int layer,
                          std::span<const float> q, std::span<float> out,
                          const ComputeContext& ctx,
                          std::vector<float>* scratch) {
  BatchDecodeAttentionRanged(config, kv, seqs, layer, q, out, 0,
                             config.num_heads, ctx, scratch);
}

}  // namespace punica
