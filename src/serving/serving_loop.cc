#include "serving/serving_loop.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <thread>

#include "serving/load_generator.h"
#include "util/check.h"

namespace punica {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

ServingLoop::ServingLoop(std::vector<ExecutionBackend*> backends,
                         ServingLoopConfig config)
    : config_(config),
      backends_(std::move(backends)),
      scheduler_(backends_) {
  PUNICA_CHECK(!backends_.empty());
  PUNICA_CHECK(config_.door_capacity >= 1);
  PUNICA_CHECK(config_.shed_slack > 0.0);
  busy_.assign(backends_.size(), false);
  pending_wake_.assign(backends_.size(), kInf);
}

ServingRequest* ServingLoop::Accept(const SubmitSpec& spec) {
  PUNICA_CHECK(spec.max_new_tokens >= 1);
  requests_.push_back(ServingRequest::FromSpec(next_id_++, spec));
  ServingRequest* req = &requests_.back();
  requests_by_id_[req->id] = req;
  return req;
}

void ServingLoop::OnArrival(ServingRequest* req, double now) {
  ++metrics_.offered;
  door_.push_back({req, next_seq_++});
  if (door_.size() > config_.door_capacity) {
    // Overflow backpressure: among *unprotected* waiters, shed the one
    // least likely to ever be good — lowest priority, then
    // longest-waiting, then earliest accepted. When every waiter is
    // protected the bound still binds: the incoming request (pushed last)
    // is refused, since deferring is no longer possible.
    std::size_t victim = door_.size() - 1;
    bool found = false;
    for (std::size_t i = 0; i < door_.size(); ++i) {
      const ServingRequest& a = *door_[i].req;
      if (a.priority >= config_.protected_priority) continue;
      if (!found) {
        victim = i;
        found = true;
        continue;
      }
      const ServingRequest& b = *door_[victim].req;
      if (a.priority != b.priority) {
        if (a.priority < b.priority) victim = i;
      } else if (a.arrival_time != b.arrival_time) {
        if (a.arrival_time < b.arrival_time) victim = i;
      } else if (door_[i].seq < door_[victim].seq) {
        victim = i;
      }
    }
    Shed(victim);
  }
  if (!threaded_) TryAdmit(now);
}

void ServingLoop::Shed(std::size_t door_index) {
  ServingRequest* req = door_.at(door_index).req;
  req->phase = RequestPhase::kCancelled;
  ++metrics_.shed;
  requests_by_id_.erase(req->id);
  door_.erase(door_.begin() + static_cast<std::ptrdiff_t>(door_index));
}

bool ServingLoop::AnyBackendCanAdmit(const ServingRequest& req) const {
  for (int g = 0; g < scheduler_.num_gpus(); ++g) {
    if (scheduler_.IsGpuEnabled(g) && scheduler_.backend(g)->CanAdmit(req)) {
      return true;
    }
  }
  return false;
}

std::size_t ServingLoop::TryAdmit(double now) {
  // Hopeless-waiter shedding: an unprotected request that has already
  // overshot `shed_slack ×` its TTFT target can no longer be good; serving
  // it would burn capacity a fresher request could convert into goodput.
  double stale_after = config_.shed_slack * config_.slo.ttft_target_s;
  for (std::size_t i = 0; i < door_.size();) {
    const ServingRequest& r = *door_[i].req;
    if (r.priority < config_.protected_priority &&
        now - r.arrival_time > stale_after) {
      Shed(i);
    } else {
      ++i;
    }
  }
  // Admission order: priority classes first (defer low over high), FCFS
  // within a class, accept sequence as the final deterministic tiebreak.
  std::sort(door_.begin(), door_.end(),
            [](const DoorEntry& a, const DoorEntry& b) {
              if (a.req->priority != b.req->priority) {
                return a.req->priority > b.req->priority;
              }
              if (a.req->arrival_time != b.req->arrival_time) {
                return a.req->arrival_time < b.req->arrival_time;
              }
              return a.seq < b.seq;
            });
  std::size_t admitted = 0;
  std::vector<int> woken;
  for (std::size_t i = 0; i < door_.size();) {
    ServingRequest* r = door_[i].req;
    if (AnyBackendCanAdmit(*r)) {
      int gpu = scheduler_.Submit(r, now);
      PUNICA_CHECK_MSG(gpu >= 0, "admission raced the capacity check");
      door_.erase(door_.begin() + static_cast<std::ptrdiff_t>(i));
      ++admitted;
      woken.push_back(gpu);
    } else {
      // Deferred: keep scanning so one oversized request cannot idle the
      // cluster (priority stays a preference, not a hard barrier).
      ++i;
    }
  }
  WakeGpus(woken);
  return admitted;
}

void ServingLoop::WakeGpus(const std::vector<int>& gpus) {
  if (threaded_) return;  // RunThreaded polls every backend each pass
  for (int g : gpus) MaybeStartStep(g);
}

void ServingLoop::MaybeStartStep(int gpu) {
  if (threaded_) return;
  auto gi = static_cast<std::size_t>(gpu);
  if (busy_[gi]) return;
  ExecutionBackend& backend = *backends_[gi];
  double now = events_.now();

  std::vector<int> touched =
      scheduler_.MigrateForKvPressure(gpu, now, &migrations_);

  if (backend.HasRunnableWork(now)) {
    StepResult result = backend.Step(now);
    PUNICA_CHECK(result.batch_size > 0);
    busy_[gi] = true;
    events_.ScheduleAfter(result.latency, [this, gpu, result] {
      busy_[static_cast<std::size_t>(gpu)] = false;
      double done = events_.now();
      HandleStepResult(gpu, result, done);
      WakeGpus(scheduler_.PumpQueue(done));
      // Freed capacity first (continuous batching refills the working set),
      // then restart this GPU.
      TryAdmit(done);
      MaybeStartStep(gpu);
    });
  } else if (auto ready = backend.NextReadyTime(now); ready.has_value()) {
    if (*ready < pending_wake_[gi] - 1e-12) {
      pending_wake_[gi] = *ready;
      events_.Schedule(*ready, [this, gpu] {
        pending_wake_[static_cast<std::size_t>(gpu)] = kInf;
        MaybeStartStep(gpu);
      });
    }
  }

  WakeGpus(touched);
}

void ServingLoop::HandleStepResult(int gpu, const StepResult& result,
                                   double now) {
  (void)gpu;
  metrics_.total_new_tokens += result.new_tokens;
  for (const auto& e : result.emitted) {
    if (config_.record_streams) {
      streams_[e.request_id].push_back(e.token);
    }
    auto it = last_emit_.find(e.request_id);
    if (it != last_emit_.end()) {
      metrics_.itl.Add(now - it->second);
    } else if (threaded_) {
      // Real-threads mode measures wall-clock SLOs: re-stamp the first
      // token with the loop clock. (Backends stamped virtual/modeled
      // times, which don't advance at wall pace here.)
      auto rit = requests_by_id_.find(e.request_id);
      if (rit != requests_by_id_.end()) rit->second->first_token_time = now;
    }
    last_emit_[e.request_id] = now;
  }
  for (std::int64_t id : result.finished) {
    auto it = requests_by_id_.find(id);
    if (it == requests_by_id_.end()) continue;
    if (threaded_) it->second->finish_time = now;
    metrics_.RecordFinished(*it->second, config_.slo);
    requests_by_id_.erase(it);
    last_emit_.erase(id);
  }
}

void ServingLoop::RunVirtual(const std::vector<SubmitSpec>& offered) {
  PUNICA_CHECK_MSG(!ran_, "a ServingLoop instance runs one workload");
  ran_ = true;
  for (const auto& spec : offered) {
    ServingRequest* req = Accept(spec);
    // Equal arrival times run in offered order (EventQueue FIFO tiebreak),
    // so the replay is deterministic end to end.
    events_.Schedule(spec.arrival_time,
                     [this, req] { OnArrival(req, events_.now()); });
  }
  events_.RunAll();
  end_time_ = events_.now();
  // Whatever is still at the door could never be admitted (no event can
  // free capacity anymore): account it as shed, not silently dropped.
  while (!door_.empty()) Shed(0);
  for (ServingRequest* r : scheduler_.queue()) {
    ++metrics_.shed;
    requests_by_id_.erase(r->id);
  }
}

void ServingLoop::RunVirtual(const std::vector<TraceRequest>& trace) {
  std::vector<SubmitSpec> specs;
  specs.reserve(trace.size());
  for (const auto& r : trace) specs.push_back(SpecFromTrace(r));
  RunVirtual(specs);
}

bool ServingLoop::StepOnceThreaded(double now) {
  bool stepped = false;
  for (int g = 0; g < scheduler_.num_gpus(); ++g) {
    ExecutionBackend& backend = *backends_[static_cast<std::size_t>(g)];
    scheduler_.MigrateForKvPressure(g, now, &migrations_);
    if (backend.HasRunnableWork(now)) {
      StepResult result = backend.Step(now);
      PUNICA_CHECK(result.batch_size > 0);
      // Wall-clock timestamps throughout: HandleStepResult re-stamps
      // first-token/finish with the loop clock, since backend-stamped
      // virtual times don't advance at wall pace.
      HandleStepResult(g, result, now);
      stepped = true;
    }
  }
  if (stepped) scheduler_.PumpQueue(now);
  return stepped;
}

void ServingLoop::RunThreaded(ArrivalQueue& queue) {
  PUNICA_CHECK_MSG(!ran_, "a ServingLoop instance runs one workload");
  ran_ = true;
  threaded_ = true;
  auto start = std::chrono::steady_clock::now();
  auto now_s = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  // Arrival stamps come from the producer's clock, which started before
  // this loop's: clamp so no request "arrives" in the loop's future (the
  // mirror of ClusterDriver::SubmitExternal's past-stamp clamp). Stamps in
  // the past are kept — that lag is real queueing and must be charged.
  auto accept = [this, &now_s](const SubmitSpec& spec) {
    double now = now_s();
    ServingRequest* req = Accept(spec);
    req->arrival_time = std::min(req->arrival_time, now);
    OnArrival(req, now);
  };
  bool open = true;  // producers may still push
  for (;;) {
    bool any_work = false;
    for (const auto* b : backends_) any_work = any_work || b->HasAnyWork();
    bool idle = door_.empty() && !any_work && scheduler_.queue_size() == 0;
    if (open && idle) {
      // Nothing to serve: block until the next arrival (or shutdown)
      // instead of spinning.
      if (auto spec = queue.Pop(); spec.has_value()) {
        accept(*spec);
      } else {
        open = false;
      }
    }
    if (open) {
      while (auto spec = queue.TryPop()) accept(*spec);
      if (queue.shutdown() && queue.size() == 0) open = false;
    }
    double now = now_s();
    std::size_t admitted = TryAdmit(now);
    bool stepped = StepOnceThreaded(now);

    bool work_left = false;
    for (const auto* b : backends_) work_left = work_left || b->HasAnyWork();
    if (!open && !work_left && scheduler_.queue_size() == 0) {
      if (door_.empty()) break;
      if (!stepped && admitted == 0) {
        // No producer, no runnable work, nothing admitted: the residue at
        // the door is unservable — shed it rather than spin forever.
        while (!door_.empty()) Shed(0);
        break;
      }
    }
    if (!stepped && admitted == 0) {
      // Waiting on an adapter load or a mid-schedule lull.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }
  end_time_ = now_s();
}

}  // namespace punica
