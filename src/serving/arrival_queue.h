// Thread-safe bounded arrival queue: the hand-off point between request
// submitters (frontend threads, the open-loop load generator) and the
// serving loop that drains them into the engine.
//
// The bound is the backpressure mechanism: when the consumer falls behind,
// producers either block in Push (closed-loop client behaviour) or get a
// refusal from TryPush (open-loop shed-at-the-door behaviour). Shutdown
// wakes every blocked thread; Pops keep draining the residue so accepted
// work is never silently dropped.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

#include "runtime/submit_spec.h"

namespace punica {

class ArrivalQueue {
 public:
  explicit ArrivalQueue(std::size_t capacity);

  ArrivalQueue(const ArrivalQueue&) = delete;
  ArrivalQueue& operator=(const ArrivalQueue&) = delete;

  /// Blocks while the queue is full. Returns false (dropping `spec`) when
  /// the queue is shut down before space frees up.
  bool Push(SubmitSpec spec);

  /// Non-blocking: false when the queue is full or shut down.
  bool TryPush(SubmitSpec spec);

  /// Blocks while the queue is empty. Returns nullopt only when the queue
  /// is shut down *and* fully drained.
  std::optional<SubmitSpec> Pop();

  /// Non-blocking: nullopt when currently empty (shut down or not).
  std::optional<SubmitSpec> TryPop();

  /// Irreversible: wakes all blocked producers and consumers. Subsequent
  /// pushes fail; pops drain whatever was already accepted.
  void Shutdown();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  bool shutdown() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<SubmitSpec> items_;
  bool shutdown_ = false;
};

}  // namespace punica
