#include "serving/load_generator.h"

#include <chrono>
#include <utility>

#include "sim/arrivals.h"
#include "util/check.h"

namespace punica {

std::vector<TraceRequest> GenerateOpenLoopLoad(const OpenLoopSpec& spec) {
  PUNICA_CHECK(spec.num_requests >= 1);
  std::vector<double> times = PoissonArrivalsKeyed(
      spec.rate_rps, static_cast<std::size_t>(spec.num_requests), spec.seed);
  return GenerateOpenLoopTrace(std::move(times), spec.num_models,
                               spec.zipf_alpha, spec.seed, spec.lengths,
                               spec.shared_prefix, spec.priority_classes);
}

SubmitSpec SpecFromTrace(const TraceRequest& r) {
  SubmitSpec spec;
  spec.lora = r.lora_id;
  spec.prompt_len = r.prompt_len;
  spec.max_new_tokens = r.output_len;
  spec.arrival_time = r.arrival_time;
  spec.priority = r.priority;
  spec.shared_prefix_len = r.shared_prefix_len;
  spec.prefix_group = r.prefix_group;
  return spec;
}

TraceSubmitter::TraceSubmitter(std::vector<SubmitSpec> specs,
                               double time_scale)
    : specs_(std::move(specs)), time_scale_(time_scale) {
  PUNICA_CHECK(time_scale_ > 0.0);
}

TraceSubmitter::~TraceSubmitter() { Join(); }

void TraceSubmitter::Start(ArrivalQueue* queue, int num_threads) {
  PUNICA_CHECK(queue != nullptr);
  PUNICA_CHECK(num_threads >= 1);
  PUNICA_CHECK_MSG(threads_.empty(), "submitter fleet already started");
  queue_ = queue;
  remaining_.store(num_threads);
  auto start = std::chrono::steady_clock::now();
  for (int t = 0; t < num_threads; ++t) {
    threads_.emplace_back([this, t, num_threads, start] {
      for (std::size_t i = static_cast<std::size_t>(t); i < specs_.size();
           i += static_cast<std::size_t>(num_threads)) {
        auto due = start + std::chrono::duration_cast<
                               std::chrono::steady_clock::duration>(
                               std::chrono::duration<double>(
                                   specs_[i].arrival_time * time_scale_));
        std::this_thread::sleep_until(due);
        // Rescale the arrival stamp to the same (scaled) clock the sleep
        // used, so the consumer's wall-clock timeline is self-consistent.
        SubmitSpec spec = specs_[i];
        spec.arrival_time *= time_scale_;
        // Blocking push: the bounded queue is the backpressure point.
        if (!queue_->Push(std::move(spec))) break;  // shut down under us
      }
      // The last submitter standing closes the queue, so a consumer
      // blocked in Pop wakes and drains without anyone calling Join first.
      if (remaining_.fetch_sub(1) == 1) queue_->Shutdown();
    });
  }
}

void TraceSubmitter::Join() {
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  queue_ = nullptr;
}

}  // namespace punica
