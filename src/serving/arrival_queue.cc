#include "serving/arrival_queue.h"

#include "util/check.h"

namespace punica {

ArrivalQueue::ArrivalQueue(std::size_t capacity) : capacity_(capacity) {
  PUNICA_CHECK_MSG(capacity >= 1, "arrival queue needs a positive bound");
}

bool ArrivalQueue::Push(SubmitSpec spec) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock,
                 [this] { return shutdown_ || items_.size() < capacity_; });
  if (shutdown_) return false;
  items_.push_back(std::move(spec));
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool ArrivalQueue::TryPush(SubmitSpec spec) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(spec));
  }
  not_empty_.notify_one();
  return true;
}

std::optional<SubmitSpec> ArrivalQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [this] { return shutdown_ || !items_.empty(); });
  if (items_.empty()) return std::nullopt;  // shut down and drained
  SubmitSpec spec = std::move(items_.front());
  items_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return spec;
}

std::optional<SubmitSpec> ArrivalQueue::TryPop() {
  std::unique_lock<std::mutex> lock(mu_);
  if (items_.empty()) return std::nullopt;
  SubmitSpec spec = std::move(items_.front());
  items_.pop_front();
  lock.unlock();
  not_full_.notify_one();
  return spec;
}

void ArrivalQueue::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::size_t ArrivalQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

bool ArrivalQueue::shutdown() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_;
}

}  // namespace punica
