// The open-loop serving loop: decouples request *arrival* from engine
// *readiness*.
//
// Requests enter a bounded, priority-ordered front door (the admission
// buffer). The loop admits them into the Scheduler → ExecutionBackend
// machinery only when some backend has capacity; until then they wait at
// the door, and under overload the door sheds: on overflow it drops the
// lowest-priority entry, and any unprotected entry that has already waited
// past `shed_slack ×` its TTFT target is dropped as hopeless (it could no
// longer be "good" — serving it would only burn capacity that a fresher
// request could convert into goodput). Higher-priority tenants are
// *deferred over*, never shed, up to the door bound.
//
// Two clocks, one loop body:
//   * RunVirtual — arrivals and step completions are events on a
//     discrete-event queue (sim/event_queue). Fully deterministic: the
//     same offered schedule yields bit-identical token streams and SLO
//     metrics at any thread count and SIMD level.
//   * RunThreaded — drains a live ArrivalQueue fed by submitter threads.
//     The wall clock (seconds since the loop started) drives arrivals and
//     step initiation; per-step service time still comes from the backend.
//     This is the mode wall-clock benches use.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "runtime/backend.h"
#include "sched/scheduler.h"
#include "serving/arrival_queue.h"
#include "serving/metrics.h"
#include "serving/slo.h"
#include "sim/event_queue.h"
#include "workload/trace.h"

namespace punica {

struct ServingLoopConfig {
  SloSpec slo;
  /// Front-door bound: arrivals beyond this shed the lowest-priority
  /// waiter (the bounded-buffer form of backpressure).
  std::size_t door_capacity = 256;
  /// An unprotected request that has waited longer than
  /// `shed_slack × slo.ttft_target_s` at the door is shed as hopeless.
  double shed_slack = 4.0;
  /// Requests with priority ≥ this are never shed — only deferred. Set
  /// above every class to make shedding purely overflow-driven.
  std::int32_t protected_priority = 1;
  /// Collect per-request token streams (determinism checks; turn off for
  /// long sweeps to save memory).
  bool record_streams = true;
};

class ServingLoop {
 public:
  /// Drives caller-owned backends (which must outlive the loop). A loop
  /// instance runs one workload: construct fresh per run.
  explicit ServingLoop(std::vector<ExecutionBackend*> backends,
                       ServingLoopConfig config = {});

  /// Virtual-time replay: schedules every spec's arrival on the event
  /// queue and runs until all admitted work drains. Specs may carry real
  /// prompt tokens (numeric tier) or synthetic lengths (simulated tier).
  void RunVirtual(const std::vector<SubmitSpec>& offered);

  /// Trace convenience overload (synthetic prompts).
  void RunVirtual(const std::vector<TraceRequest>& trace);

  /// Real-threads mode: consumes `queue` until it is shut down and fully
  /// drained, then finishes the in-flight work. Blocks the calling thread.
  void RunThreaded(ArrivalQueue& queue);

  const ServingMetrics& metrics() const { return metrics_; }
  /// Per-request emitted tokens, keyed by loop-assigned request id (specs
  /// are numbered 0, 1, 2, … in offered order). Real ids on the numeric
  /// tier, sequence tags on the simulated tier.
  const std::map<std::int64_t, std::vector<std::int32_t>>& streams() const {
    return streams_;
  }
  std::int64_t migrations() const { return migrations_; }
  /// Post-run inspection of every accepted request (stable storage, ids in
  /// offered order): phase tells finished vs shed, and the stamped
  /// arrival/admit/first-token/finish times are all there.
  const std::deque<ServingRequest>& requests() const { return requests_; }
  /// Clock value when the run drained (virtual seconds for RunVirtual,
  /// wall-clock seconds since start for RunThreaded).
  double end_time() const { return end_time_; }

 private:
  struct DoorEntry {
    ServingRequest* req;
    std::uint64_t seq;  ///< arrival tiebreak (monotone per accept)
  };

  ServingRequest* Accept(const SubmitSpec& spec);
  void OnArrival(ServingRequest* req, double now);
  void Shed(std::size_t door_index);
  bool AnyBackendCanAdmit(const ServingRequest& req) const;
  /// Sheds stale unprotected waiters, then admits in (priority desc,
  /// arrival, seq) order, scanning past entries no backend can take yet.
  /// Returns the number admitted.
  std::size_t TryAdmit(double now);
  void MaybeStartStep(int gpu);
  void HandleStepResult(int gpu, const StepResult& result, double now);
  void WakeGpus(const std::vector<int>& gpus);
  /// One pass over the backends in real-threads mode; true if any stepped.
  bool StepOnceThreaded(double now);

  ServingLoopConfig config_;
  std::vector<ExecutionBackend*> backends_;
  Scheduler scheduler_;
  EventQueue events_;
  bool threaded_ = false;  ///< suppress event scheduling in RunThreaded
  std::deque<ServingRequest> requests_;  ///< stable storage
  std::unordered_map<std::int64_t, ServingRequest*> requests_by_id_;
  std::vector<DoorEntry> door_;
  std::uint64_t next_seq_ = 0;
  std::int64_t next_id_ = 0;
  std::vector<bool> busy_;
  std::vector<double> pending_wake_;
  std::unordered_map<std::int64_t, double> last_emit_;  ///< for ITL gaps
  std::map<std::int64_t, std::vector<std::int32_t>> streams_;
  ServingMetrics metrics_;
  std::int64_t migrations_ = 0;
  double end_time_ = 0.0;
  bool ran_ = false;
};

}  // namespace punica
