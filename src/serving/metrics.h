// First-class SLO metrics for open-loop serving, built on
// util/stats::LatencyRecorder so every latency family (TTFT, queueing,
// end-to-end, inter-token) reports the same mean/quantile surface.
#pragma once

#include <cstdint>

#include "runtime/request.h"
#include "serving/slo.h"
#include "util/stats.h"

namespace punica {

/// Aggregated over one serving run. All latencies are in seconds and dated
/// from *arrival* (front-door entry), not admission — queueing is part of
/// the user experience, so it is part of the SLO.
struct ServingMetrics {
  LatencyRecorder ttft;        ///< first token − arrival
  LatencyRecorder queue_wait;  ///< first backend admission − arrival
  LatencyRecorder e2e;         ///< finish − arrival
  LatencyRecorder itl;         ///< per-token decode gaps (streamed emissions)

  std::int64_t offered = 0;   ///< requests that reached the front door
  std::int64_t finished = 0;
  std::int64_t shed = 0;      ///< dropped by admission (overflow or stale)
  std::int64_t good = 0;      ///< finished within both SLO targets
  std::int64_t total_new_tokens = 0;

  /// Folds a finished request into the recorders and the goodput counter,
  /// reading the timestamps the backends stamped (arrival_time, admit_time,
  /// first_token_time, finish_time).
  void RecordFinished(const ServingRequest& req, const SloSpec& slo);

  /// Goodput: good / offered. Shed requests were offered but can never be
  /// good, so load shedding honestly depresses this number.
  double goodput() const {
    return offered > 0 ? static_cast<double>(good) /
                             static_cast<double>(offered)
                       : 0.0;
  }
};

/// True when a finished request met both targets: TTFT within
/// `ttft_target_s` and mean inter-token time within `itl_target_s`.
bool MeetsSlo(const ServingRequest& req, const SloSpec& slo);

}  // namespace punica
