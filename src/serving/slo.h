// Per-request service-level objectives for open-loop serving.
//
// Goodput — the fraction of *offered* requests that finish within their
// targets — is the paper-style headline for a multi-tenant deployment:
// unlike raw throughput it cannot be gamed by starving latecomers, and
// unlike mean latency it counts shed requests against the system.
#pragma once

namespace punica {

struct SloSpec {
  /// Time-to-first-token target (seconds from *arrival*, so queueing at the
  /// front door counts against it).
  double ttft_target_s = 1.0;
  /// Per-output-token target: a finished request must average at most this
  /// between tokens ((e2e − ttft) / (tokens − 1), the TPOT form).
  double itl_target_s = 0.25;
};

}  // namespace punica
