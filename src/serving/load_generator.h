// Open-loop load generation: requests arrive on their own schedule, whether
// or not the engine keeps up (the regime where queueing, shedding and SLO
// misses actually happen — a closed loop self-throttles and hides them).
//
// Two delivery modes share the same trace:
//   * virtual time — hand the trace to ServingLoop::RunVirtual, which
//     replays arrivals on the discrete-event clock (deterministic);
//   * real threads — TraceSubmitter spawns submitter threads that sleep
//     until each wall-clock arrival and push into an ArrivalQueue
//     (the mode wall-clock benches and the MPSC stress path use).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "serving/arrival_queue.h"
#include "workload/lengths.h"
#include "workload/trace.h"

namespace punica {

/// Knobs for a Poisson open-loop workload. Arrival gaps come from
/// PoissonArrivalsKeyed, so the schedule is a pure function of
/// (seed, rate, index) — the same spec replays bit-identically.
struct OpenLoopSpec {
  double rate_rps = 8.0;  ///< offered load (requests per second)
  int num_requests = 256;
  std::uint64_t seed = 0xC0FFEE;
  int num_models = 8;
  double zipf_alpha = 1.5;
  ShareGptLengthSampler::Params lengths = {};
  SharedPrefixSpec shared_prefix = {};
  std::int32_t priority_classes = 1;
};

/// Generates the open-loop trace for `spec` (deterministic in the spec).
std::vector<TraceRequest> GenerateOpenLoopLoad(const OpenLoopSpec& spec);

/// Converts one trace row into the unified submission surface (synthetic
/// prompt lengths — the simulated tier; the numeric tier builds its own
/// specs with real token ids).
SubmitSpec SpecFromTrace(const TraceRequest& r);

/// Real-threads delivery: replays `specs` against the wall clock through a
/// fleet of submitter threads. Thread t handles specs t, t+N, t+2N, …,
/// sleeping until each arrival (scaled by `time_scale`; < 1 compresses;
/// arrival stamps are rescaled to match) and blocking in
/// ArrivalQueue::Push when the consumer lags — the backpressure path. The
/// last submitter to finish shuts the queue down, so a consumer loop
/// (e.g. ServingLoop::RunThreaded) drains and returns on its own; Join()
/// then just reaps the threads.
class TraceSubmitter {
 public:
  explicit TraceSubmitter(std::vector<SubmitSpec> specs,
                          double time_scale = 1.0);
  ~TraceSubmitter();

  /// Spawns `num_threads` submitters feeding `queue` (borrowed; must
  /// outlive Join). Call once.
  void Start(ArrivalQueue* queue, int num_threads);

  /// Joins all submitters. Idempotent (the destructor calls it too).
  void Join();

 private:
  std::vector<SubmitSpec> specs_;
  double time_scale_;
  ArrivalQueue* queue_ = nullptr;
  std::vector<std::thread> threads_;
  std::atomic<int> remaining_{0};  ///< submitters still running
};

}  // namespace punica
