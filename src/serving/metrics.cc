#include "serving/metrics.h"

#include "util/check.h"

namespace punica {

bool MeetsSlo(const ServingRequest& req, const SloSpec& slo) {
  if (req.phase != RequestPhase::kFinished) return false;
  if (req.first_token_time < 0.0 || req.finish_time < 0.0) return false;
  double ttft = req.first_token_time - req.arrival_time;
  if (ttft > slo.ttft_target_s) return false;
  if (req.generated > 1) {
    double tpot = (req.finish_time - req.first_token_time) /
                  static_cast<double>(req.generated - 1);
    if (tpot > slo.itl_target_s) return false;
  }
  return true;
}

void ServingMetrics::RecordFinished(const ServingRequest& req,
                                    const SloSpec& slo) {
  PUNICA_CHECK_MSG(req.first_token_time >= req.arrival_time &&
                       req.finish_time >= req.first_token_time,
                   "finished request with inconsistent timestamps");
  ++finished;
  ttft.Add(req.first_token_time - req.arrival_time);
  e2e.Add(req.finish_time - req.arrival_time);
  if (req.admit_time >= 0.0) {
    queue_wait.Add(req.admit_time - req.arrival_time);
  }
  if (MeetsSlo(req, slo)) ++good;
}

}  // namespace punica
