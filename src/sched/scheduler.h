// The Punica cluster scheduler (paper §5.1, §5.3).
//
// Routing rule for a new request: among backends satisfying the constraints
// (below max batch size, enough KvCache memory), prefer the one whose
// shared-prefix KV cache covers the most of the request's prefill
// (prefix affinity — tenant-mates co-locate, so system prompts are paid
// once per GPU); then the *largest* working set; ties go to the highest
// GPU UUID. This concentrates load — busy GPUs stay busy, lightly loaded
// GPUs drain, idle GPUs stay idle — enabling cluster scale-down. When no
// backend qualifies, requests queue and are admitted FCFS as capacity
// frees.
//
// Migration is built from cancellation: evict (newest first, preserving
// FCFS) + re-add elsewhere with prompt+generated recomputation.
//
// The scheduler is tier-agnostic: it drives ExecutionBackend, so the same
// routing/migration/consolidation logic serves the simulated tier
// (GpuRunner over the cost model) and the numeric tier (EngineBackend over
// a real model).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "runtime/backend.h"
#include "runtime/request.h"

namespace punica {

class Scheduler {
 public:
  explicit Scheduler(std::vector<ExecutionBackend*> backends);

  /// Routes a request. Returns the backend index it was assigned to, or -1
  /// when all backends are full and the request was queued. `exclude_gpu`
  /// (optional, -1 = none) prevents bouncing a migrating request back to
  /// its source.
  int Submit(ServingRequest* req, double now, int exclude_gpu = -1);

  /// Admits queued requests FCFS while any backend can take them. Returns
  /// the set of backend indices that received work.
  std::vector<int> PumpQueue(double now);

  /// Handles KvCache pressure on `gpu`: evicts that backend's chosen
  /// victims and re-routes each one (same path as a new request). Returns
  /// backends that received migrated requests. Increments `migration_count`
  /// per move.
  std::vector<int> MigrateForKvPressure(int gpu, double now,
                                        std::int64_t* migration_count);

  /// One round of periodic consolidation: move the newest request of the
  /// most lightly loaded (non-empty, non-largest) backend to the most
  /// loaded backend that can admit it. Returns the receiving index, or -1
  /// if no beneficial move exists.
  int ConsolidateOnce(double now, std::int64_t* migration_count);

  /// Cancels a request wherever it lives (queue or backend). Returns true
  /// if it was found.
  bool Cancel(std::int64_t request_id);

  std::size_t queue_size() const { return queue_.size(); }
  const std::deque<ServingRequest*>& queue() const { return queue_; }
  ExecutionBackend* backend(int gpu) const {
    return backends_.at(static_cast<std::size_t>(gpu));
  }
  int num_gpus() const { return static_cast<int>(backends_.size()); }

  /// Backend availability (cloud allocate/deallocate, §5.1). Disabled
  /// backends receive no new work; disabling requires an empty working set.
  void SetGpuEnabled(int gpu, bool enabled);
  bool IsGpuEnabled(int gpu) const {
    return enabled_.at(static_cast<std::size_t>(gpu));
  }
  int num_enabled_gpus() const;

  /// Cluster scale advice (paper §5.1): more GPUs are needed when no lightly
  /// loaded GPU exists; zero-load GPUs can be released.
  struct ScaleAdvice {
    bool need_more_gpus = false;
    std::vector<int> releasable_gpus;
  };
  ScaleAdvice Advise() const;

 private:
  int PickGpuFor(const ServingRequest& req, int exclude_gpu) const;
  void Enqueue(ServingRequest* req);

  std::vector<ExecutionBackend*> backends_;
  std::vector<bool> enabled_;
  std::deque<ServingRequest*> queue_;  ///< kept FCFS by (arrival_time, id)
};

}  // namespace punica
