// The Punica cluster scheduler (paper §5.1, §5.3).
//
// Routing rule for a new request: among GPUs satisfying the constraints
// (below max batch size, enough KvCache memory), pick the one with the
// *largest* working set; ties go to the highest GPU UUID. This concentrates
// load — busy GPUs stay busy, lightly loaded GPUs drain, idle GPUs stay
// idle — enabling cluster scale-down. When no GPU qualifies, requests queue
// and are admitted FCFS as capacity frees.
//
// Migration is built from cancellation: evict (newest first, preserving
// FCFS) + re-add elsewhere with prompt+generated recomputation.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "runtime/request.h"
#include "runtime/runner.h"

namespace punica {

class Scheduler {
 public:
  explicit Scheduler(std::vector<GpuRunner*> runners);

  /// Routes a request. Returns the GPU index it was assigned to, or -1 when
  /// all GPUs are full and the request was queued. `exclude_gpu` (optional,
  /// -1 = none) prevents bouncing a migrating request back to its source.
  int Submit(ServingRequest* req, double now, int exclude_gpu = -1);

  /// Admits queued requests FCFS while any GPU can take them. Returns the
  /// set of GPU indices that received work.
  std::vector<int> PumpQueue(double now);

  /// Handles KvCache pressure on `gpu`: evicts that runner's chosen victims
  /// and re-routes each one (same path as a new request). Returns GPUs that
  /// received migrated requests. Increments `migration_count` per move.
  std::vector<int> MigrateForKvPressure(int gpu, double now,
                                        std::int64_t* migration_count);

  /// One round of periodic consolidation: move the newest request of the
  /// most lightly loaded (non-empty, non-largest) GPU to the most loaded GPU
  /// that can admit it. Returns the receiving GPU index, or -1 if no
  /// beneficial move exists.
  int ConsolidateOnce(double now, std::int64_t* migration_count);

  /// Cancels a request wherever it lives (queue or GPU). Returns true if it
  /// was found.
  bool Cancel(std::int64_t request_id);

  std::size_t queue_size() const { return queue_.size(); }
  const std::deque<ServingRequest*>& queue() const { return queue_; }
  GpuRunner* runner(int gpu) const { return runners_.at(static_cast<std::size_t>(gpu)); }
  int num_gpus() const { return static_cast<int>(runners_.size()); }

  /// GPU availability (cloud allocate/deallocate, §5.1). Disabled GPUs
  /// receive no new work; disabling requires an empty working set.
  void SetGpuEnabled(int gpu, bool enabled);
  bool IsGpuEnabled(int gpu) const {
    return enabled_.at(static_cast<std::size_t>(gpu));
  }
  int num_enabled_gpus() const;

  /// Cluster scale advice (paper §5.1): more GPUs are needed when no lightly
  /// loaded GPU exists; zero-load GPUs can be released.
  struct ScaleAdvice {
    bool need_more_gpus = false;
    std::vector<int> releasable_gpus;
  };
  ScaleAdvice Advise() const;

 private:
  int PickGpuFor(const ServingRequest& req, int exclude_gpu) const;
  void Enqueue(ServingRequest* req);

  std::vector<GpuRunner*> runners_;
  std::vector<bool> enabled_;
  std::deque<ServingRequest*> queue_;  ///< kept FCFS by (arrival_time, id)
};

}  // namespace punica
