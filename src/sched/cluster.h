// Discrete-event cluster driver: wires execution backends, the scheduler
// and an event queue into a full serving deployment (the paper's cluster
// experiment, Fig. 13, and the single-GPU / tensor-parallel text-generation
// experiments, Figs. 11–12, when configured with one backend).
//
// Two construction modes share every code path after the constructor:
//   * simulated tier — the driver builds one GpuRunner per GPU from
//     ClusterConfig (cost-model virtual time, synthetic tokens);
//   * numeric tier — the caller passes ExecutionBackend pointers (e.g.
//     EngineBackend over real engines), and the same scheduler, migration,
//     consolidation and streaming machinery drives real text generation.
#pragma once

#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "gpu/costmodel.h"
#include "runtime/backend.h"
#include "runtime/runner.h"
#include "sched/autoscale.h"
#include "sched/scheduler.h"
#include "sim/event_queue.h"
#include "util/stats.h"
#include "workload/trace.h"

namespace punica {

struct ClusterConfig {
  int num_gpus = 16;
  RunnerConfig runner;
  LlamaConfig model;
  bool enable_consolidation = true;
  double consolidation_interval_s = 60.0;
  /// Cloud autoscaling (§5.1): when enabled, the driver starts with
  /// `initial_gpus` (highest UUIDs) in service and acquires/releases GPUs
  /// from the `num_gpus` pool on each autoscale tick.
  bool enable_autoscale = false;
  int initial_gpus = -1;  ///< -1 = all
  double autoscale_interval_s = 30.0;
  AutoscalePolicy autoscale;
};

struct ClusterStats {
  TimeSeries arrivals;               ///< (arrival time, 1)
  TimeSeries tokens;                 ///< (step completion, tokens emitted)
  std::vector<TimeSeries> gpu_batch; ///< per GPU: (step start, batch size)
  std::int64_t finished_requests = 0;
  std::int64_t migrations = 0;
  std::int64_t total_new_tokens = 0;
  std::int64_t total_steps = 0;
  LatencyRecorder request_latency;     ///< finish − arrival
  LatencyRecorder first_token_latency; ///< TTFT, dated from arrival
  RunningStat step_batch_size;
  double makespan = 0.0;
  std::vector<double> gpu_busy_s;    ///< per GPU accumulated busy time
  TimeSeries active_gpus;            ///< (autoscale tick, GPUs in service)
  std::int64_t gpu_acquisitions = 0;
  std::int64_t gpu_releases = 0;
};

class ClusterDriver {
 public:
  /// Simulated tier: builds `config.num_gpus` cost-model runners.
  ClusterDriver(const ClusterConfig& config, const CostModel* cost_model);

  /// Any tier: drives caller-owned backends (which must outlive the
  /// driver). `config.num_gpus`/`config.runner`/`config.model` are ignored;
  /// the consolidation/autoscale knobs apply as usual.
  ClusterDriver(std::vector<ExecutionBackend*> backends,
                const ClusterConfig& config = {});

  /// Copies the trace into stable storage and schedules arrival events.
  void SubmitTrace(const std::vector<TraceRequest>& trace);

  /// Submits an externally-owned request (frontend path, Fig. 2) at the
  /// current simulated time. The caller keeps ownership and must keep the
  /// request alive until it finishes or is cancelled.
  void SubmitExternal(ServingRequest* req);

  /// Cancels an externally-owned request (user disconnect) and forgets it;
  /// the caller may free the request afterwards. Returns true if it was
  /// still queued or running.
  bool CancelExternal(std::int64_t request_id);

  /// Per-step emission callback, fired at each step's completion time with
  /// the step's emitted tokens (real ids on the numeric tier, sequence tags
  /// on the simulated tier) and finished ids. Used by frontends to stream
  /// tokens back to users.
  using EmissionCallback =
      std::function<void(const StepResult& result, double now)>;
  void SetEmissionCallback(EmissionCallback cb) {
    emission_cb_ = std::move(cb);
  }

  /// Runs the deployment until all work drains (or `horizon` passes).
  void Run(double horizon = std::numeric_limits<double>::infinity());

  const ClusterStats& stats() const { return stats_; }
  Scheduler& scheduler() { return *scheduler_; }
  EventQueue& events() { return events_; }
  const std::deque<ServingRequest>& requests() const { return requests_; }
  int num_backends() const { return static_cast<int>(backends_.size()); }

 private:
  void Init();
  void OnArrival(ServingRequest* req);
  void MaybeStartStep(int gpu);
  void OnStepDone(int gpu, const StepResult& result);
  void WakeGpus(const std::vector<int>& gpus);
  void ScheduleConsolidation();
  void ScheduleAutoscale();

  ClusterConfig config_;
  std::vector<std::unique_ptr<GpuRunner>> owned_runners_;  ///< sim tier only
  std::vector<ExecutionBackend*> backends_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<AutoscaleController> autoscaler_;
  EventQueue events_;
  std::deque<ServingRequest> requests_;  ///< stable request storage
  std::unordered_map<std::int64_t, ServingRequest*> requests_by_id_;
  std::vector<bool> busy_;
  std::vector<double> pending_wake_;     ///< earliest scheduled wake per GPU
  ClusterStats stats_;
  EmissionCallback emission_cb_;
  int timer_events_pending_ = 0;  ///< consolidation/autoscale timers in
                                  ///< flight — they must not keep each
                                  ///< other (or themselves) alive

  /// True while any non-timer event (arrival, step completion, wake) is
  /// scheduled — the condition for periodic timers to stay alive.
  bool HasNonTimerEvents() const {
    return static_cast<int>(events_.pending()) > timer_events_pending_;
  }
};

}  // namespace punica
