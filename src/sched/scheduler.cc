#include "sched/scheduler.h"

#include <algorithm>

#include "util/check.h"

namespace punica {

Scheduler::Scheduler(std::vector<ExecutionBackend*> backends)
    : backends_(std::move(backends)), enabled_(backends_.size(), true) {
  PUNICA_CHECK(!backends_.empty());
}

void Scheduler::SetGpuEnabled(int gpu, bool enabled) {
  auto gi = static_cast<std::size_t>(gpu);
  if (!enabled) {
    PUNICA_CHECK_MSG(backends_.at(gi)->working_set_size() == 0,
                     "cannot release a GPU with active requests");
  }
  enabled_.at(gi) = enabled;
}

int Scheduler::num_enabled_gpus() const {
  int n = 0;
  for (bool e : enabled_) {
    if (e) ++n;
  }
  return n;
}

int Scheduler::PickGpuFor(const ServingRequest& req, int exclude_gpu) const {
  int best = -1;
  int best_load = -1;
  std::int64_t best_hit = -1;
  for (int g = 0; g < num_gpus(); ++g) {
    if (g == exclude_gpu) continue;
    if (!enabled_[static_cast<std::size_t>(g)]) continue;
    const ExecutionBackend* r = backends_[static_cast<std::size_t>(g)];
    if (!r->CanAdmit(req)) continue;
    // Prefix affinity first: a backend whose shared-prefix cache already
    // holds this request's prefix turns prefill compute into page aliasing,
    // and steering tenant-mates together is also what *creates* such
    // backends. Then largest working set (load concentration for
    // scale-down); ties go to the highest GPU UUID (we use the GPU index
    // as the UUID ordering). Backends without a prefix cache report 0
    // everywhere, preserving the original routing exactly.
    std::int64_t hit = r->PrefixHitTokens(req);
    int load = r->working_set_size();
    if (hit > best_hit || (hit == best_hit && load > best_load) ||
        (hit == best_hit && load == best_load && g > best)) {
      best = g;
      best_load = load;
      best_hit = hit;
    }
  }
  return best;
}

void Scheduler::Enqueue(ServingRequest* req) {
  // FCFS by (arrival_time, id); a migrated request re-enters at its original
  // arrival position, preserving first-come-first-serve semantics.
  auto pos = std::upper_bound(
      queue_.begin(), queue_.end(), req,
      [](const ServingRequest* a, const ServingRequest* b) {
        if (a->arrival_time != b->arrival_time) {
          return a->arrival_time < b->arrival_time;
        }
        return a->id < b->id;
      });
  req->phase = RequestPhase::kQueued;
  queue_.insert(pos, req);
}

int Scheduler::Submit(ServingRequest* req, double now, int exclude_gpu) {
  PUNICA_CHECK(req != nullptr);
  // FCFS: a brand-new request may not jump over already-queued ones. A
  // migrating request arrived before everything still queued behind it, so
  // the arrival-order check naturally lets it re-enter directly.
  if (!queue_.empty()) {
    const ServingRequest* head = queue_.front();
    bool precedes_queue =
        req->arrival_time < head->arrival_time ||
        (req->arrival_time == head->arrival_time && req->id < head->id);
    if (!precedes_queue) {
      Enqueue(req);
      return -1;
    }
  }
  int gpu = PickGpuFor(*req, exclude_gpu);
  if (gpu < 0) {
    Enqueue(req);
    return -1;
  }
  backends_[static_cast<std::size_t>(gpu)]->Admit(req, now);
  return gpu;
}

std::vector<int> Scheduler::PumpQueue(double now) {
  std::vector<int> touched;
  while (!queue_.empty()) {
    ServingRequest* head = queue_.front();
    int gpu = PickGpuFor(*head, /*exclude_gpu=*/-1);
    if (gpu < 0) break;  // FCFS: never skip the head
    queue_.pop_front();
    backends_[static_cast<std::size_t>(gpu)]->Admit(head, now);
    touched.push_back(gpu);
  }
  return touched;
}

std::vector<int> Scheduler::MigrateForKvPressure(
    int gpu, double now, std::int64_t* migration_count) {
  ExecutionBackend* source = backends_.at(static_cast<std::size_t>(gpu));
  std::vector<int> touched;
  for (std::int64_t id : source->SelectEvictionVictims(now)) {
    ServingRequest* req = source->Find(id);
    PUNICA_CHECK(req != nullptr);
    // Evict (cancellation primitive): the KvCache is released here; the
    // destination rebuilds it by re-prefilling prompt + generated tokens.
    source->Cancel(id);
    ++req->migrations;
    if (migration_count != nullptr) ++*migration_count;
    int dest = Submit(req, now, /*exclude_gpu=*/gpu);
    if (dest >= 0) touched.push_back(dest);
  }
  return touched;
}

int Scheduler::ConsolidateOnce(double now, std::int64_t* migration_count) {
  // Donor: the most lightly loaded non-empty GPU. Receiver: the most loaded
  // GPU (highest UUID tiebreak) that can admit the donor's newest request
  // and is strictly busier — so moves always concentrate load.
  int donor = -1;
  int donor_load = 0;
  for (int g = 0; g < num_gpus(); ++g) {
    if (!enabled_[static_cast<std::size_t>(g)]) continue;
    int load = backends_[static_cast<std::size_t>(g)]->working_set_size();
    if (load == 0) continue;
    if (donor < 0 || load < donor_load ||
        (load == donor_load && g < donor)) {
      donor = g;
      donor_load = load;
    }
  }
  if (donor < 0) return -1;
  ServingRequest* req =
      backends_[static_cast<std::size_t>(donor)]->NewestRequest();
  PUNICA_CHECK(req != nullptr);

  int receiver = -1;
  int receiver_load = -1;
  for (int g = 0; g < num_gpus(); ++g) {
    if (g == donor) continue;
    if (!enabled_[static_cast<std::size_t>(g)]) continue;
    const ExecutionBackend* r = backends_[static_cast<std::size_t>(g)];
    if (!r->CanAdmit(*req)) continue;
    int load = r->working_set_size();
    if (load <= donor_load) continue;  // only consolidate upward
    if (load > receiver_load || (load == receiver_load && g > receiver)) {
      receiver = g;
      receiver_load = load;
    }
  }
  if (receiver < 0) return -1;

  backends_[static_cast<std::size_t>(donor)]->Cancel(req->id);
  ++req->migrations;
  if (migration_count != nullptr) ++*migration_count;
  backends_[static_cast<std::size_t>(receiver)]->Admit(req, now);
  return receiver;
}

bool Scheduler::Cancel(std::int64_t request_id) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if ((*it)->id == request_id) {
      (*it)->phase = RequestPhase::kCancelled;
      queue_.erase(it);
      return true;
    }
  }
  for (ExecutionBackend* r : backends_) {
    ServingRequest* req = r->Find(request_id);
    if (req != nullptr) {
      req->phase = RequestPhase::kCancelled;
      r->Cancel(request_id);
      return true;
    }
  }
  return false;
}

Scheduler::ScaleAdvice Scheduler::Advise() const {
  ScaleAdvice advice;
  bool any_light = false;
  for (int g = 0; g < num_gpus(); ++g) {
    if (!enabled_[static_cast<std::size_t>(g)]) continue;
    const ExecutionBackend* r = backends_[static_cast<std::size_t>(g)];
    int load = r->working_set_size();
    if (load == 0) advice.releasable_gpus.push_back(g);
    if (load < (r->max_batch_size() * 3) / 4) any_light = true;
  }
  advice.need_more_gpus = !any_light;
  return advice;
}

}  // namespace punica
