#include "sched/cluster.h"

#include <algorithm>

#include "util/check.h"

namespace punica {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

ClusterDriver::ClusterDriver(const ClusterConfig& config,
                             const CostModel* cost_model)
    : config_(config) {
  PUNICA_CHECK(config.num_gpus >= 1);
  PUNICA_CHECK(cost_model != nullptr);
  for (int g = 0; g < config.num_gpus; ++g) {
    owned_runners_.push_back(std::make_unique<GpuRunner>(
        g, config.runner, config.model, cost_model));
    backends_.push_back(owned_runners_.back().get());
  }
  Init();
}

ClusterDriver::ClusterDriver(std::vector<ExecutionBackend*> backends,
                             const ClusterConfig& config)
    : config_(config), backends_(std::move(backends)) {
  PUNICA_CHECK(!backends_.empty());
  config_.num_gpus = static_cast<int>(backends_.size());
  Init();
}

void ClusterDriver::Init() {
  auto n = backends_.size();
  scheduler_ = std::make_unique<Scheduler>(backends_);
  if (config_.enable_autoscale) {
    autoscaler_ = std::make_unique<AutoscaleController>(scheduler_.get(),
                                                        config_.autoscale);
    int initial = config_.initial_gpus < 0 ? static_cast<int>(n)
                                           : config_.initial_gpus;
    PUNICA_CHECK(initial >= 1 && initial <= static_cast<int>(n));
    // Start with the highest UUIDs in service (consistent with routing).
    for (int g = 0; g < static_cast<int>(n) - initial; ++g) {
      scheduler_->SetGpuEnabled(g, false);
    }
  }
  busy_.assign(n, false);
  pending_wake_.assign(n, kInf);
  stats_.gpu_batch.resize(n);
  stats_.gpu_busy_s.assign(n, 0.0);
}

void ClusterDriver::SubmitTrace(const std::vector<TraceRequest>& trace) {
  for (const auto& t : trace) {
    requests_.push_back(ServingRequest{.id = t.id,
                                       .lora_id = t.lora_id,
                                       .prompt_len = t.prompt_len,
                                       .output_len = t.output_len,
                                       .arrival_time = t.arrival_time});
    ServingRequest* req = &requests_.back();
    requests_by_id_[req->id] = req;
    events_.Schedule(t.arrival_time, [this, req] { OnArrival(req); });
  }
  if (config_.enable_consolidation) ScheduleConsolidation();
  if (config_.enable_autoscale) ScheduleAutoscale();
}

void ClusterDriver::ScheduleAutoscale() {
  ++timer_events_pending_;
  events_.ScheduleAfter(config_.autoscale_interval_s, [this] {
    --timer_events_pending_;
    AutoscaleController::Decision d = autoscaler_->Tick();
    stats_.gpu_acquisitions = autoscaler_->total_acquisitions();
    stats_.gpu_releases = autoscaler_->total_releases();
    stats_.active_gpus.Add(events_.now(),
                           static_cast<double>(autoscaler_->active_gpus()));
    if (d.acquired_gpu >= 0) {
      WakeGpus(scheduler_->PumpQueue(events_.now()));
    }
    if (HasNonTimerEvents()) ScheduleAutoscale();
  });
}

void ClusterDriver::ScheduleConsolidation() {
  ++timer_events_pending_;
  events_.ScheduleAfter(config_.consolidation_interval_s, [this] {
    --timer_events_pending_;
    // One consolidation round: keep moving requests while a beneficial move
    // exists (bounded defensively).
    for (int moves = 0; moves < 16; ++moves) {
      int receiver = scheduler_->ConsolidateOnce(events_.now(),
                                                 &stats_.migrations);
      if (receiver < 0) break;
      MaybeStartStep(receiver);
    }
    // Keep the periodic timer alive while real events (arrivals, steps,
    // wakes) remain; timers must not keep each other alive.
    if (HasNonTimerEvents()) ScheduleConsolidation();
  });
}

void ClusterDriver::SubmitExternal(ServingRequest* req) {
  PUNICA_CHECK(req != nullptr);
  // An external request cannot have arrived before the instant it is
  // submitted: clamp so a default arrival_time of 0 on a mid-run
  // submission neither jumps the FCFS queue nor skews latency stats.
  req->arrival_time = std::max(req->arrival_time, events_.now());
  requests_by_id_[req->id] = req;
  OnArrival(req);
}

bool ClusterDriver::CancelExternal(std::int64_t request_id) {
  // Forget the borrowed pointer first: once cancelled, the owner (e.g. a
  // frontend session) may free the request.
  requests_by_id_.erase(request_id);
  return scheduler_->Cancel(request_id);
}

void ClusterDriver::OnArrival(ServingRequest* req) {
  stats_.arrivals.Add(events_.now(), 1.0);
  int gpu = scheduler_->Submit(req, events_.now());
  if (gpu >= 0) MaybeStartStep(gpu);
}

void ClusterDriver::WakeGpus(const std::vector<int>& gpus) {
  for (int g : gpus) MaybeStartStep(g);
}

void ClusterDriver::MaybeStartStep(int gpu) {
  auto gi = static_cast<std::size_t>(gpu);
  if (busy_[gi]) return;
  ExecutionBackend& backend = *backends_[gi];
  double now = events_.now();

  // KvCache pressure check: migrate victims before stepping (§5.3).
  std::vector<int> touched =
      scheduler_->MigrateForKvPressure(gpu, now, &stats_.migrations);

  if (backend.HasRunnableWork(now)) {
    StepResult result = backend.Step(now);
    PUNICA_CHECK(result.batch_size > 0);
    busy_[gi] = true;
    stats_.gpu_batch[gi].Add(now, result.batch_size);
    stats_.step_batch_size.Add(result.batch_size);
    stats_.gpu_busy_s[gi] += result.latency;
    ++stats_.total_steps;
    events_.ScheduleAfter(result.latency, [this, gpu, result] {
      busy_[static_cast<std::size_t>(gpu)] = false;
      OnStepDone(gpu, result);
    });
  } else if (auto ready = backend.NextReadyTime(now); ready.has_value()) {
    // Adapters still loading: wake when the earliest copy completes.
    if (*ready < pending_wake_[gi] - 1e-12) {
      pending_wake_[gi] = *ready;
      events_.Schedule(*ready, [this, gpu] {
        pending_wake_[static_cast<std::size_t>(gpu)] = kInf;
        MaybeStartStep(gpu);
      });
    }
  } else {
    stats_.gpu_batch[gi].Add(now, 0.0);  // idle sample
  }

  // Migration destinations may now have new work.
  WakeGpus(touched);
}

void ClusterDriver::OnStepDone(int gpu, const StepResult& result) {
  double now = events_.now();
  stats_.tokens.Add(now, static_cast<double>(result.new_tokens));
  stats_.total_new_tokens += result.new_tokens;
  stats_.makespan = std::max(stats_.makespan, now);
  // Record finish stats *before* the emission callback: a frontend may free
  // a finished request's session (and thus the ServingRequest) as soon as
  // it learns the stream ended.
  for (std::int64_t id : result.finished) {
    auto it = requests_by_id_.find(id);
    // A request can be cancelled (and forgotten) while the step that
    // finishes it is still in flight; skip it rather than touch freed state.
    if (it == requests_by_id_.end()) continue;
    const ServingRequest& req = *it->second;
    ++stats_.finished_requests;
    stats_.request_latency.Add(req.finish_time - req.arrival_time);
    if (req.first_token_time >= 0.0) {
      stats_.first_token_latency.Add(req.first_token_time -
                                     req.arrival_time);
    }
    requests_by_id_.erase(it);
  }
  if (emission_cb_) emission_cb_(result, now);
  WakeGpus(scheduler_->PumpQueue(now));
  MaybeStartStep(gpu);
}

void ClusterDriver::Run(double horizon) {
  if (horizon == kInf) {
    events_.RunAll();
  } else {
    events_.RunUntil(horizon);
  }
}

}  // namespace punica
