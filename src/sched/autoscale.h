// Cloud autoscaling controller (paper §5.1):
//   (1) "If no lightly loaded GPU exists in the cluster, Punica should
//        request more GPUs."
//   (2) "Punica can return the GPU resources for GPU servers with no load."
//
// The controller drives the Scheduler's GPU-enabled mask: the full runner
// vector stands in for the cloud's machine pool; enabling a GPU models
// acquiring a server, disabling one models returning it. The consolidating
// placement policy is what makes (2) effective — idle GPUs stay idle, so
// they become returnable instead of hovering at load 1.
#pragma once

#include <cstdint>

#include "sched/scheduler.h"

namespace punica {

struct AutoscalePolicy {
  int min_gpus = 1;   ///< never scale below this
  int max_gpus = -1;  ///< -1 = the scheduler's full pool
  /// Hysteresis: require this many consecutive idle ticks before releasing
  /// a GPU (avoids thrashing on bursty arrivals).
  int release_after_idle_ticks = 2;
};

class AutoscaleController {
 public:
  AutoscaleController(Scheduler* scheduler, AutoscalePolicy policy = {});

  struct Decision {
    int acquired_gpu = -1;  ///< GPU brought into service this tick, or -1
    int released_gpu = -1;  ///< GPU returned to the cloud this tick, or -1
  };

  /// One control period: applies the paper's two rules (at most one
  /// acquisition and one release per tick).
  Decision Tick();

  int active_gpus() const { return scheduler_->num_enabled_gpus(); }
  std::int64_t total_acquisitions() const { return acquisitions_; }
  std::int64_t total_releases() const { return releases_; }

 private:
  Scheduler* scheduler_;
  AutoscalePolicy policy_;
  std::vector<int> idle_ticks_;  ///< consecutive idle ticks per GPU
  std::int64_t acquisitions_ = 0;
  std::int64_t releases_ = 0;
};

}  // namespace punica
