#include "sched/autoscale.h"

#include "util/check.h"

namespace punica {

AutoscaleController::AutoscaleController(Scheduler* scheduler,
                                         AutoscalePolicy policy)
    : scheduler_(scheduler),
      policy_(policy),
      idle_ticks_(static_cast<std::size_t>(scheduler->num_gpus()), 0) {
  PUNICA_CHECK(scheduler_ != nullptr);
  PUNICA_CHECK(policy_.min_gpus >= 1);
  if (policy_.max_gpus < 0) policy_.max_gpus = scheduler_->num_gpus();
  PUNICA_CHECK(policy_.max_gpus <= scheduler_->num_gpus());
  PUNICA_CHECK(policy_.min_gpus <= policy_.max_gpus);
}

AutoscaleController::Decision AutoscaleController::Tick() {
  Decision decision;

  // Track idleness for hysteresis.
  for (int g = 0; g < scheduler_->num_gpus(); ++g) {
    auto gi = static_cast<std::size_t>(g);
    bool idle = scheduler_->IsGpuEnabled(g) &&
                scheduler_->backend(g)->working_set_size() == 0 &&
                !scheduler_->backend(g)->HasAnyWork();
    idle_ticks_[gi] = idle ? idle_ticks_[gi] + 1 : 0;
  }

  Scheduler::ScaleAdvice advice = scheduler_->Advise();

  // Rule 1: scale up when nothing is lightly loaded. Acquire the highest-
  // UUID disabled GPU (consistent with the routing tiebreak).
  if (advice.need_more_gpus && active_gpus() < policy_.max_gpus) {
    for (int g = scheduler_->num_gpus() - 1; g >= 0; --g) {
      if (!scheduler_->IsGpuEnabled(g)) {
        scheduler_->SetGpuEnabled(g, true);
        idle_ticks_[static_cast<std::size_t>(g)] = 0;
        ++acquisitions_;
        decision.acquired_gpu = g;
        break;
      }
    }
    return decision;  // never acquire and release in one tick
  }

  // Rule 2: release the lowest-UUID GPU that has been idle long enough.
  if (active_gpus() > policy_.min_gpus) {
    for (int g = 0; g < scheduler_->num_gpus(); ++g) {
      auto gi = static_cast<std::size_t>(g);
      if (scheduler_->IsGpuEnabled(g) &&
          idle_ticks_[gi] >= policy_.release_after_idle_ticks) {
        scheduler_->SetGpuEnabled(g, false);
        idle_ticks_[gi] = 0;
        ++releases_;
        decision.released_gpu = g;
        break;
      }
    }
  }
  return decision;
}

}  // namespace punica
