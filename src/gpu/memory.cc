#include "gpu/memory.h"

#include <cstdio>

#include "util/check.h"
#include "util/table.h"

namespace punica {

std::int64_t MemoryPlan::MaxConcurrentSequences(
    std::int64_t expected_seq_len) const {
  PUNICA_CHECK(expected_seq_len > 0);
  return kv_capacity_tokens / expected_seq_len;
}

MemoryPlan PlanMemory(const MemoryPlanRequest& request) {
  PUNICA_CHECK(request.tp_degree >= 1);
  PUNICA_CHECK(request.lora_slots >= 0);
  PUNICA_CHECK(request.usable_fraction > 0.0 &&
               request.usable_fraction <= 1.0);
  MemoryPlan plan;
  plan.total_bytes = static_cast<std::int64_t>(
      static_cast<double>(request.gpu.memory_bytes) *
      request.usable_fraction);
  plan.weight_bytes =
      request.model.total_weight_bytes() / request.tp_degree;
  plan.adapter_bytes =
      request.model.lora_total_bytes(request.lora_rank) / request.tp_degree;
  plan.lora_slab_bytes = plan.adapter_bytes * request.lora_slots;
  plan.activation_bytes = request.activation_reserve_bytes;

  std::int64_t committed =
      plan.weight_bytes + plan.lora_slab_bytes + plan.activation_bytes;
  if (committed >= plan.total_bytes) {
    plan.feasible = false;
    if (plan.weight_bytes >= plan.total_bytes) {
      plan.infeasible_reason =
          "backbone shard does not fit device memory (increase tp)";
    } else {
      plan.infeasible_reason =
          "no memory left for KvCache after weights + LoRA slab";
    }
    return plan;
  }

  plan.kv_budget_bytes = plan.total_bytes - committed;
  // KvCache is sharded with the model: each GPU stores its kv-head slice.
  std::int64_t per_token =
      request.model.kv_bytes_per_token() / request.tp_degree;
  plan.kv_capacity_tokens = plan.kv_budget_bytes / per_token;
  plan.kv_capacity_pages = static_cast<std::int32_t>(
      plan.kv_capacity_tokens / request.kv_page_size);
  plan.feasible = plan.kv_capacity_pages > 0;
  if (!plan.feasible) {
    plan.infeasible_reason = "KvCache budget below one page";
  }
  return plan;
}

std::string DescribePlan(const MemoryPlanRequest& request,
                         const MemoryPlan& plan) {
  Table t({"component", "bytes", "share"});
  auto share = [&](std::int64_t bytes) {
    return FormatDouble(100.0 * static_cast<double>(bytes) /
                            static_cast<double>(plan.total_bytes),
                        1) +
           "%";
  };
  t.AddRow({"usable device memory", FormatBytes(
                static_cast<double>(plan.total_bytes)), "100%"});
  t.AddRow({"backbone weights (/tp=" + std::to_string(request.tp_degree) +
                ")",
            FormatBytes(static_cast<double>(plan.weight_bytes)),
            share(plan.weight_bytes)});
  t.AddRow({"LoRA slab (" + std::to_string(request.lora_slots) +
                " adapters, r=" + std::to_string(request.lora_rank) + ")",
            FormatBytes(static_cast<double>(plan.lora_slab_bytes)),
            share(plan.lora_slab_bytes)});
  t.AddRow({"activation workspace",
            FormatBytes(static_cast<double>(plan.activation_bytes)),
            share(plan.activation_bytes)});
  t.AddRow({"KvCache",
            FormatBytes(static_cast<double>(plan.kv_budget_bytes)),
            share(plan.kv_budget_bytes)});
  std::string out = t.Render();
  char line[160];
  if (plan.feasible) {
    std::snprintf(line, sizeof(line),
                  "KvCache capacity: %lld tokens (%d pages of %d)\n",
                  static_cast<long long>(plan.kv_capacity_tokens),
                  plan.kv_capacity_pages, request.kv_page_size);
  } else {
    std::snprintf(line, sizeof(line), "INFEASIBLE: %s\n",
                  plan.infeasible_reason.c_str());
  }
  out += line;
  return out;
}

}  // namespace punica
