// Hardware specifications for the analytical performance model.
//
// The paper's testbeds: #1 = one NVIDIA A100 80GB (SXM), #2 = two HGX A100
// 40GB 8-GPU servers with NvSwitch. The roofline constants below (312 TFLOP/s
// FP16 tensor-core peak, 1.935 TB/s HBM bandwidth) are the exact lines drawn
// in the paper's Fig. 7.
#pragma once

#include <cstdint>
#include <string>

namespace punica {

struct GpuSpec {
  std::string name;
  double fp16_flops = 0.0;        ///< peak FP16 tensor-core FLOP/s
  double hbm_bytes_per_s = 0.0;   ///< peak HBM bandwidth
  std::int64_t memory_bytes = 0;  ///< device memory
  double pcie_bytes_per_s = 0.0;  ///< effective host→device bandwidth
  double nvlink_bytes_per_s = 0.0;  ///< per-GPU NvSwitch bandwidth
  int sm_count = 108;             ///< streaming multiprocessors (occupancy
                                  ///< denominator for the split-KV term)
};

GpuSpec A100Sxm80GB();
GpuSpec A100Sxm40GB();

}  // namespace punica
