// Analytical A100 latency model.
//
// This module substitutes for the paper's GPU testbeds: per-kernel latency is
// modelled as launch/setup overhead plus a roofline term
// max(FLOP / (eff_c · peak), bytes / (eff_m · bandwidth)), with efficiency
// and overhead constants calibrated to the latency anchors the paper reports
// (37 µs SGMV pair at batch 1, 11–34 ms 7B decode steps, ~2 ms LoRA model
// load over PCIe Gen4 ×16, 5–6 s prefill at batch 32 · len 2048, …). Every
// bench binary regenerates a paper figure by sweeping workloads through this
// model; the numeric kernels in src/core are the exact-math counterparts.
//
// All returned latencies are in seconds.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gpu/specs.h"
#include "model/config.h"

namespace punica {

/// Tunable model constants; defaults are the calibrated values. Kept public
/// so ablation benches can sweep them.
struct CostModelParams {
  // Kernel launch / host-side overheads.
  double kernel_launch_s = 4e-6;       ///< one CUDA kernel launch+setup
  double sgmv_pair_overhead_s = 36e-6; ///< two SGMV launches + grid sync +
                                       ///< segment-index handling (host);
                                       ///< paid when the operator is invoked
                                       ///< standalone (Figs. 8–9)
  double sgmv_pipelined_overhead_s = 8e-6;  ///< per-pair cost inside a model
                                            ///< forward, where launches
                                            ///< pipeline with no host sync —
                                            ///< 7 pairs · L layers ⇒ the
                                            ///< paper's ~2 ms/token addon
  double attn_kernel_overhead_s = 8e-6;
  double layer_overhead_s = 8e-6;      ///< fused norms/RoPE/elementwise
  double step_overhead_s = 4e-3;       ///< per model invocation: Python
                                       ///< driver, sampling, RPC, scheduler
  // Efficiency fractions of peak.
  double gemm_flop_eff = 0.50;         ///< big-GEMM tensor-core efficiency
  double weight_stream_eff = 0.80;     ///< HBM eff. for dense weight streams
  double attn_mem_eff = 0.70;          ///< paged KvCache gather efficiency
  double sgmv_mem_eff = 0.90;          ///< SGMV coalesced streaming
  // Gather-MV (distinct-LoRA) streaming: effective bandwidth grows with the
  // contiguous row length of the weight matrix (coalescing), saturating at
  // sgmv_mem_eff · HBM. Calibrated to the Fig. 9 rank sweep.
  double gmv_base_frac = 0.072;        ///< fraction of HBM at 16-byte rows
  double gmv_chunk_exponent = 0.60;    ///< fit to Fig. 9's 72/75/89/118 µs
                                       ///< Distinct rank sweep
  double kernel_min_s = 0.4e-6;        ///< device-side minimum kernel time
  // Tensor parallelism.
  double allreduce_overhead_s = 150e-6;  ///< per all-reduce latency (NCCL
                                         ///< small-message floor + sync)
  // Split-KV decode attention (the FlashDecoding shape the CPU kernel now
  // implements). With splitting (the default, matching the modelled
  // FlashInfer kernels), chunking each (sequence, kv_head) range restores
  // full SM occupancy and the pure memory roofline above applies as-is —
  // the term is neutral. Setting attn_split_kv = false models the serial
  // kernel — one CTA per (sequence, kv_head) — whose decode latency
  // divides by the achieved parallel fraction min(1, ctas / sm_count):
  // the honesty check that a single-sequence long-context decode cannot
  // hit the roofline without splitting.
  bool attn_split_kv = true;
};

/// One model invocation's shape, as seen by the cost model: a (possibly
/// empty) set of prefill chunks plus a tail of decode tokens, with LoRA
/// segment sizes over all token rows.
struct StepShape {
  std::vector<std::int32_t> prefill_chunks;   ///< tokens per prefill request
  std::vector<std::int64_t> prefill_kv_lens;  ///< cache len after each chunk
  std::vector<std::int64_t> decode_kv_lens;   ///< cache len per decode row
  std::vector<std::int32_t> lora_segment_rows;  ///< rows per LoRA segment
                                                ///< (empty = backbone only)
  int lora_rank = 16;
  int tp_degree = 1;

  int total_tokens() const;
  int batch_size() const {
    return static_cast<int>(prefill_chunks.size() + decode_kv_lens.size());
  }
};

class CostModel {
 public:
  explicit CostModel(GpuSpec gpu, CostModelParams params = {})
      : gpu_(std::move(gpu)), params_(params) {}

  const GpuSpec& gpu() const { return gpu_; }
  const CostModelParams& params() const { return params_; }
  CostModelParams& mutable_params() { return params_; }

  // --- SGMV / LoRA operator (Figs. 7–9) ---

  /// Device-only time of one SGMV launch over `segment_rows` segments with
  /// per-segment [h_in, h_out] fp16 weights (excludes launch overhead; this
  /// is what a CUDA-event measurement would see — used by the roofline).
  double SgmvKernelTime(std::span<const std::int32_t> segment_rows, int h_in,
                        int h_out) const;

  /// Host-visible latency of the two-launch LoRA addon for one projection:
  /// shrink (h_in → rank) then expand (rank → h_out).
  double SgmvPairLatency(std::span<const std::int32_t> segment_rows, int h_in,
                         int h_out, int rank) const;

  /// All seven projections' LoRA addons for one transformer layer. Under
  /// tensor parallelism the A/B shards follow the Megatron column/row split,
  /// so kernel IO divides by `tp` (launch overheads do not).
  double LoraLayerAddonLatency(const LlamaConfig& config,
                               std::span<const std::int32_t> segment_rows,
                               int rank, int tp = 1) const;

  // --- Backbone kernels ---

  /// Dense projections of one layer over `tokens` rows (weight-stream +
  /// compute roofline), divided over `tp` GPUs.
  double DenseLayerLatency(const LlamaConfig& config, int tokens,
                           int tp) const;

  /// BatchPrefill attention kernel (causal) over the given chunks.
  double AttentionPrefillLatency(const LlamaConfig& config,
                                 std::span<const std::int32_t> chunks,
                                 std::span<const std::int64_t> kv_lens,
                                 int tp) const;

  /// BatchDecode attention kernel: one token per sequence, reads each
  /// sequence's whole cache.
  double AttentionDecodeLatency(const LlamaConfig& config,
                                std::span<const std::int64_t> kv_lens,
                                int tp) const;

  /// One transformer layer for a mixed batch (dense + LoRA + attention).
  double LayerLatency(const LlamaConfig& config, const StepShape& shape) const;

  /// Full model invocation: L layers + embedding/LM head + allreduce (TP) +
  /// per-invocation runtime overhead.
  double StepLatency(const LlamaConfig& config, const StepShape& shape) const;

  /// Convenience: pure-decode step, uniform kv length (Fig. 1).
  double DecodeStepLatency(const LlamaConfig& config, int batch_size,
                           std::int64_t kv_len, int tp = 1) const;
  /// Convenience: pure-prefill step, uniform prompt length (Fig. 1).
  double PrefillStepLatency(const LlamaConfig& config, int batch_size,
                            std::int64_t prompt_len, int tp = 1) const;

  // --- Weight movement (§5.2) ---

  /// Host→device copy of one layer's LoRA adapters.
  double LoraLoadLayerLatency(const LlamaConfig& config, int rank) const;
  /// Host→device copy of a whole LoRA model.
  double LoraLoadModelLatency(const LlamaConfig& config, int rank) const;
  /// The §5.2 alternative: layer-by-layer loading overlapped with the
  /// forward pass — layer l's copy hides behind layer l−1's compute, so the
  /// visible stall is the first layer's copy plus any per-layer copy time
  /// exceeding the per-layer compute time.
  double LoraLoadLayerwiseStall(const LlamaConfig& config, int rank,
                                double layer_compute_s) const;

  // --- Memory capacity ---

  /// KvCache tokens that fit on one GPU after backbone weights (divided by
  /// tp), a LoRA working set and a runtime reserve.
  std::int64_t KvCacheCapacityTokens(const LlamaConfig& config, int tp = 1,
                                     std::int64_t lora_reserve_bytes =
                                         2LL * 1024 * 1024 * 1024) const;

 private:
  double TensorCoreTime(double flop) const {
    return flop / (gpu_.fp16_flops * params_.gemm_flop_eff);
  }

  GpuSpec gpu_;
  CostModelParams params_;
};

}  // namespace punica
