// GPU memory planning (paper §3): "each GPU loads the backbone pre-trained
// large language model. A large fraction of GPU memory is reserved for
// KvCache. Only the LoRA components of models are swapped in when needed."
//
// The planner turns (GPU, model, tp, LoRA budget) into the concrete numbers
// the runtime needs: KvCache token/page capacity, how many adapters the
// LoRA slab holds, and a feasibility verdict — e.g. 70B does not fit one
// 40 GB A100 at tp=1 but fits at tp=8.
#pragma once

#include <cstdint>
#include <string>

#include "gpu/specs.h"
#include "model/config.h"

namespace punica {

struct MemoryPlanRequest {
  GpuSpec gpu;
  LlamaConfig model;
  int tp_degree = 1;
  int lora_rank = 16;
  int lora_slots = 32;        ///< resident adapters to budget for
  int kv_page_size = 16;      ///< tokens per KvCache page
  double usable_fraction = 0.95;  ///< headroom for allocator/runtime
  std::int64_t activation_reserve_bytes = 1LL << 30;  ///< workspace slab
};

struct MemoryPlan {
  bool feasible = false;
  std::string infeasible_reason;

  std::int64_t total_bytes = 0;       ///< usable device memory
  std::int64_t weight_bytes = 0;      ///< backbone shard (÷ tp)
  std::int64_t lora_slab_bytes = 0;   ///< lora_slots adapters (÷ tp)
  std::int64_t activation_bytes = 0;
  std::int64_t kv_budget_bytes = 0;   ///< what remains for KvCache

  std::int64_t kv_capacity_tokens = 0;
  std::int32_t kv_capacity_pages = 0;
  std::int64_t adapter_bytes = 0;     ///< one adapter's shard size

  /// Max concurrent requests at an expected sequence length.
  std::int64_t MaxConcurrentSequences(std::int64_t expected_seq_len) const;
};

MemoryPlan PlanMemory(const MemoryPlanRequest& request);

/// Renders the plan as a human-readable breakdown (used by examples).
std::string DescribePlan(const MemoryPlanRequest& request,
                         const MemoryPlan& plan);

}  // namespace punica
