#include "gpu/costmodel.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"

namespace punica {

int StepShape::total_tokens() const {
  int t = 0;
  for (auto c : prefill_chunks) t += c;
  return t + static_cast<int>(decode_kv_lens.size());
}

namespace {

double SumChunks(std::span<const std::int32_t> xs) {
  return static_cast<double>(
      std::accumulate(xs.begin(), xs.end(), std::int64_t{0}));
}

}  // namespace

double CostModel::SgmvKernelTime(std::span<const std::int32_t> segment_rows,
                                 int h_in, int h_out) const {
  PUNICA_CHECK(h_in > 0 && h_out > 0);
  double sn = SumChunks(segment_rows);
  if (sn == 0.0) return 0.0;
  double n = 0.0;
  for (auto rows : segment_rows) {
    if (rows > 0) n += 1.0;
  }

  // Weight traffic: each non-empty segment streams its [h_in, h_out] matrix
  // once. Effective bandwidth depends on the contiguous row length
  // (h_out · 2 bytes): the shrink kernel's thin rows coalesce poorly — the
  // paper's "totally IO-bound" gather-MV case — while expand rows stream at
  // near-full bandwidth.
  double weight_bytes = n * static_cast<double>(h_in) * h_out * 2.0;
  double chunk_bytes = static_cast<double>(h_out) * 2.0;
  double frac = params_.gmv_base_frac *
                std::pow(chunk_bytes / 16.0, params_.gmv_chunk_exponent);
  frac = std::min(frac, params_.sgmv_mem_eff);
  double weight_time = weight_bytes / (gpu_.hbm_bytes_per_s * frac);

  double act_bytes = sn * (h_in + h_out) * 2.0;
  double act_time = act_bytes / (gpu_.hbm_bytes_per_s * params_.sgmv_mem_eff);

  double flop = sn * h_in * h_out * 2.0;
  double compute_time = TensorCoreTime(flop);

  return std::max({weight_time + act_time, compute_time, params_.kernel_min_s});
}

double CostModel::SgmvPairLatency(std::span<const std::int32_t> segment_rows,
                                  int h_in, int h_out, int rank) const {
  double shrink = SgmvKernelTime(segment_rows, h_in, rank);
  double expand = SgmvKernelTime(segment_rows, rank, h_out);
  return params_.sgmv_pair_overhead_s + shrink + expand;
}

double CostModel::LoraLayerAddonLatency(
    const LlamaConfig& config, std::span<const std::int32_t> segment_rows,
    int rank, int tp) const {
  PUNICA_CHECK(tp >= 1);
  // Inside a model forward the 7 kernel pairs pipeline back-to-back with no
  // host-side sync, so each pair pays the pipelined overhead rather than the
  // standalone sgmv_pair_overhead_s of the microbenchmarks. With tensor
  // parallelism the adapter shards follow the backbone's Megatron split, so
  // the kernel-time (IO/compute) portion divides across GPUs.
  double total = 0.0;
  for (int p = 0; p < kNumProj; ++p) {
    ProjShape s = ShapeOf(config, static_cast<Proj>(p));
    total += params_.sgmv_pipelined_overhead_s +
             (SgmvKernelTime(segment_rows, s.h_in, rank) +
              SgmvKernelTime(segment_rows, rank, s.h_out)) /
                 tp;
  }
  return total;
}

double CostModel::DenseLayerLatency(const LlamaConfig& config, int tokens,
                                    int tp) const {
  PUNICA_CHECK(tp >= 1);
  double weight_bytes =
      static_cast<double>(config.layer_weight_bytes()) / tp;
  double weight_time =
      weight_bytes / (gpu_.hbm_bytes_per_s * params_.weight_stream_eff);
  double flop =
      2.0 * tokens * static_cast<double>(config.params_per_layer()) / tp;
  double compute_time = TensorCoreTime(flop);
  // Activation IO is dwarfed by weights at decode batch sizes; fold it in
  // via the weight-stream term. Seven projections ≈ four fused launches.
  double launches = 4.0 * params_.kernel_launch_s;
  return std::max(weight_time, compute_time) + launches;
}

double CostModel::AttentionPrefillLatency(
    const LlamaConfig& config, std::span<const std::int32_t> chunks,
    std::span<const std::int64_t> kv_lens, int tp) const {
  if (chunks.empty()) return 0.0;
  PUNICA_CHECK(chunks.size() == kv_lens.size());
  double flop = 0.0;
  double kv_bytes = 0.0;
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    // QK^T and PV: 2 GEMMs of [chunk, d] × [d, kv] per head ⇒ 4·chunk·kv·h
    // FLOP total. The chunk occupies the *last* `chunk` positions of the
    // kv span (a prefix-cache hit prefills only the uncached suffix, so
    // chunk < kv); token j of the chunk attends causally over
    // (kv − chunk) + j + 1 positions, averaging (kv − chunk) + (chunk+1)/2.
    // With chunk == kv this reduces to the classic kv/2 + 1/2 half-span.
    double chunk = chunks[i];
    double kv = static_cast<double>(kv_lens[i]);
    flop += 4.0 * chunk * ((kv - chunk) + (chunk + 1.0) * 0.5) *
            config.hidden_size;
    kv_bytes += kv * 2.0 * config.kv_dim() * 2.0;
  }
  flop /= tp;
  kv_bytes /= tp;
  double compute = flop / (gpu_.fp16_flops * params_.gemm_flop_eff * 0.8);
  double memory = kv_bytes / (gpu_.hbm_bytes_per_s * params_.attn_mem_eff);
  return std::max(compute, memory) + params_.attn_kernel_overhead_s;
}

double CostModel::AttentionDecodeLatency(
    const LlamaConfig& config, std::span<const std::int64_t> kv_lens,
    int tp) const {
  if (kv_lens.empty()) return 0.0;
  double kv_bytes = 0.0;
  for (auto len : kv_lens) {
    kv_bytes += static_cast<double>(len) * 2.0 * config.kv_dim() * 2.0;
  }
  kv_bytes /= tp;
  double memory = kv_bytes / (gpu_.hbm_bytes_per_s * params_.attn_mem_eff);
  // Occupancy (split-KV parallel fraction): the memory roofline assumes
  // every SM streams cache bytes. Split-KV chunking achieves that for any
  // batch shape, so the default is the plain roofline. The serial kernel
  // runs one CTA per (sequence, kv_head) per rank and stalls on a
  // fraction of the machine at small batch — scale its latency by the
  // idle fraction.
  if (!params_.attn_split_kv) {
    double ctas = static_cast<double>(kv_lens.size()) *
                  (static_cast<double>(config.num_kv_heads) / tp);
    double fraction =
        std::min(1.0, ctas / static_cast<double>(gpu_.sm_count));
    if (fraction > 0.0) memory /= fraction;
  }
  return memory + params_.attn_kernel_overhead_s;
}

double CostModel::LayerLatency(const LlamaConfig& config,
                               const StepShape& shape) const {
  int tokens = shape.total_tokens();
  if (tokens == 0) return 0.0;
  int tp = shape.tp_degree;
  double t = DenseLayerLatency(config, tokens, tp);
  t += AttentionPrefillLatency(config, shape.prefill_chunks,
                               shape.prefill_kv_lens, tp);
  t += AttentionDecodeLatency(config, shape.decode_kv_lens, tp);
  if (!shape.lora_segment_rows.empty()) {
    t += LoraLayerAddonLatency(config, shape.lora_segment_rows,
                               shape.lora_rank, tp);
  }
  if (tp > 1) {
    // Two all-reduces per layer (post-attention, post-MLP) over the token
    // activations; ring cost ≈ 2·(tp-1)/tp of the payload per GPU.
    double payload = static_cast<double>(tokens) * config.hidden_size * 2.0;
    double ring = 2.0 * payload * 2.0 * (tp - 1) / tp / gpu_.nvlink_bytes_per_s;
    t += ring + 2.0 * params_.allreduce_overhead_s;
  }
  return t + params_.layer_overhead_s;
}

double CostModel::StepLatency(const LlamaConfig& config,
                              const StepShape& shape) const {
  int tokens = shape.total_tokens();
  if (tokens == 0) return 0.0;
  double t = LayerLatency(config, shape) * config.num_layers;
  // Embedding + LM head: stream both tables once. The embedding is always
  // f16 (gather path); the LM head is stored in config.weight_dtype.
  const std::int64_t head_params =
      static_cast<std::int64_t>(config.vocab_size) * config.hidden_size;
  double head_bytes =
      (static_cast<double>(head_params) * 2.0 +
       static_cast<double>(WeightBytesFor(head_params, config.weight_dtype))) /
      shape.tp_degree;
  t += head_bytes / (gpu_.hbm_bytes_per_s * params_.weight_stream_eff);
  return t + params_.step_overhead_s;
}

double CostModel::DecodeStepLatency(const LlamaConfig& config, int batch_size,
                                    std::int64_t kv_len, int tp) const {
  StepShape shape;
  shape.decode_kv_lens.assign(static_cast<std::size_t>(batch_size), kv_len);
  shape.tp_degree = tp;
  return StepLatency(config, shape);
}

double CostModel::PrefillStepLatency(const LlamaConfig& config,
                                     int batch_size, std::int64_t prompt_len,
                                     int tp) const {
  StepShape shape;
  shape.prefill_chunks.assign(static_cast<std::size_t>(batch_size),
                              static_cast<std::int32_t>(prompt_len));
  shape.prefill_kv_lens.assign(static_cast<std::size_t>(batch_size),
                               prompt_len);
  shape.tp_degree = tp;
  return StepLatency(config, shape);
}

double CostModel::LoraLoadLayerLatency(const LlamaConfig& config,
                                       int rank) const {
  double bytes = static_cast<double>(config.lora_params_per_layer(rank)) * 2.0;
  return bytes / gpu_.pcie_bytes_per_s + 10e-6;
}

double CostModel::LoraLoadModelLatency(const LlamaConfig& config,
                                       int rank) const {
  double bytes = static_cast<double>(config.lora_total_bytes(rank));
  return bytes / gpu_.pcie_bytes_per_s + 10e-6;
}

double CostModel::LoraLoadLayerwiseStall(const LlamaConfig& config, int rank,
                                         double layer_compute_s) const {
  PUNICA_CHECK(layer_compute_s >= 0.0);
  double per_layer = LoraLoadLayerLatency(config, rank);
  double overlap_deficit = std::max(0.0, per_layer - layer_compute_s);
  // First layer's copy cannot hide; later layers stall only by the deficit.
  return per_layer + overlap_deficit * (config.num_layers - 1);
}

std::int64_t CostModel::KvCacheCapacityTokens(
    const LlamaConfig& config, int tp, std::int64_t lora_reserve_bytes) const {
  double usable = static_cast<double>(gpu_.memory_bytes) * 0.95;
  double weights = static_cast<double>(config.total_weight_bytes()) / tp;
  double reserve = static_cast<double>(lora_reserve_bytes);
  double kv_budget = usable - weights - reserve;
  if (kv_budget <= 0.0) return 0;
  double per_token = static_cast<double>(config.kv_bytes_per_token()) / tp;
  return static_cast<std::int64_t>(kv_budget / per_token);
}

}  // namespace punica
