#include "gpu/specs.h"

namespace punica {

GpuSpec A100Sxm80GB() {
  return {.name = "A100-SXM4-80GB",
          .fp16_flops = 312e12,
          .hbm_bytes_per_s = 1.935e12,
          .memory_bytes = 80LL * 1000 * 1000 * 1000,
          .pcie_bytes_per_s = 25e9,    // PCIe Gen4 x16, effective
          .nvlink_bytes_per_s = 600e9,
          .sm_count = 108};  // GA100, both SXM variants
}

GpuSpec A100Sxm40GB() {
  GpuSpec spec = A100Sxm80GB();
  spec.name = "A100-SXM4-40GB";
  spec.memory_bytes = 40LL * 1000 * 1000 * 1000;
  spec.hbm_bytes_per_s = 1.555e12;  // 40GB HBM2 variant
  return spec;
}

}  // namespace punica
