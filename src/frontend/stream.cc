#include "frontend/stream.h"

#include "util/check.h"

namespace punica {

void TokenStream::Push(std::int32_t token, double timestamp) {
  PUNICA_CHECK_MSG(state_ == StreamEnd::kOpen, "push on a closed stream");
  pending_.push_back(token);
  ++total_pushed_;
  if (first_token_time_ < 0.0) first_token_time_ = timestamp;
  last_token_time_ = timestamp;
}

void TokenStream::Close(StreamEnd reason) {
  PUNICA_CHECK(reason != StreamEnd::kOpen);
  // Closing twice is a no-op only if the reason matches; conflicting
  // closes indicate a protocol bug.
  if (state_ != StreamEnd::kOpen) {
    PUNICA_CHECK_MSG(state_ == reason, "conflicting stream close");
    return;
  }
  state_ = reason;
}

std::int32_t TokenStream::Next() {
  PUNICA_CHECK_MSG(!pending_.empty(), "Next() on an empty stream");
  std::int32_t token = pending_.front();
  pending_.pop_front();
  return token;
}

std::vector<std::int32_t> TokenStream::DrainAll() {
  std::vector<std::int32_t> out(pending_.begin(), pending_.end());
  pending_.clear();
  return out;
}

}  // namespace punica
