#include "frontend/stream.h"

#include "util/check.h"

namespace punica {

void TokenStream::Push(std::int32_t token, double timestamp) {
  PUNICA_CHECK_MSG(state_ == StreamEnd::kOpen, "push on a closed stream");
  ++total_pushed_;
  if (first_token_time_ < 0.0) first_token_time_ = timestamp;
  last_token_time_ = timestamp;
  if (on_token_) {
    on_token_(token, timestamp);
  } else {
    pending_.push_back({token, timestamp});
  }
}

void TokenStream::Close(StreamEnd reason) {
  PUNICA_CHECK(reason != StreamEnd::kOpen);
  // Closing twice is a no-op only if the reason matches; conflicting
  // closes indicate a protocol bug.
  if (state_ != StreamEnd::kOpen) {
    PUNICA_CHECK_MSG(state_ == reason, "conflicting stream close");
    return;
  }
  state_ = reason;
  if (on_close_) on_close_(reason);
}

void TokenStream::Subscribe(TokenCallback on_token, CloseCallback on_close) {
  PUNICA_CHECK(on_token != nullptr);
  on_token_ = std::move(on_token);
  on_close_ = std::move(on_close);
  // Deliver anything buffered before the subscription, preserving order
  // and each token's original push timestamp.
  while (!pending_.empty()) {
    Pending p = pending_.front();
    pending_.pop_front();
    on_token_(p.token, p.timestamp);
  }
  if (closed() && on_close_) on_close_(state_);
}

std::int32_t TokenStream::Next() {
  PUNICA_CHECK_MSG(!pending_.empty(), "Next() on an empty stream");
  std::int32_t token = pending_.front().token;
  pending_.pop_front();
  return token;
}

std::vector<std::int32_t> TokenStream::DrainAll() {
  std::vector<std::int32_t> out;
  out.reserve(pending_.size());
  for (const Pending& p : pending_) out.push_back(p.token);
  pending_.clear();
  return out;
}

}  // namespace punica
