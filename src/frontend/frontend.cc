#include "frontend/frontend.h"

#include "util/check.h"

namespace punica {

Frontend::Frontend(int frontend_id, SchedulerApi api, std::int64_t id_base,
                   std::int64_t id_stride)
    : frontend_id_(frontend_id),
      api_(std::move(api)),
      next_id_(id_base),
      id_stride_(id_stride) {
  PUNICA_CHECK(api_.submit != nullptr);
  PUNICA_CHECK(api_.cancel != nullptr);
  PUNICA_CHECK(id_stride_ >= 1);
}

RequestHandle Frontend::Submit(const SubmitSpec& spec) {
  PUNICA_CHECK(spec.EffectivePromptLen() > 0);
  PUNICA_CHECK(spec.max_new_tokens > 0);
  std::int64_t id = next_id_;
  next_id_ += id_stride_;
  Session session;
  session.request = std::make_unique<ServingRequest>(
      ServingRequest::FromSpec(id, spec));
  ServingRequest* req = session.request.get();
  sessions_.emplace(id, std::move(session));
  ++total_submitted_;
  api_.submit(req);
  return RequestHandle(id);
}

TokenStream* Frontend::Stream(RequestHandle h) {
  auto it = sessions_.find(h.id());
  return it == sessions_.end() ? nullptr : &it->second.stream;
}

const TokenStream* Frontend::Stream(RequestHandle h) const {
  auto it = sessions_.find(h.id());
  return it == sessions_.end() ? nullptr : &it->second.stream;
}

bool Frontend::Owns(RequestHandle h) const {
  return sessions_.contains(h.id());
}

bool Frontend::Subscribe(RequestHandle h,
                         TokenStream::TokenCallback on_token,
                         TokenStream::CloseCallback on_close) {
  auto it = sessions_.find(h.id());
  if (it == sessions_.end()) return false;
  if (it->second.stream.closed()) {
    // Already over: detach the session before delivering the backlog and
    // close so reentrant Release/Disconnect from the callbacks can't
    // double-erase it.
    Session session = std::move(it->second);
    sessions_.erase(it);
    session.stream.Subscribe(std::move(on_token), std::move(on_close));
    return true;
  }
  it->second.stream.Subscribe(std::move(on_token), std::move(on_close));
  // The backlog delivery may have re-entered this frontend; re-find.
  it = sessions_.find(h.id());
  if (it != sessions_.end() && it->second.stream.closed()) {
    sessions_.erase(it);
  }
  return true;
}

void Frontend::Disconnect(RequestHandle h) {
  auto it = sessions_.find(h.id());
  if (it == sessions_.end()) return;  // unknown or already released
  // The user is gone; detach the session before Close() so a subscriber's
  // on_close calling Release/Disconnect can't double-erase it.
  Session session = std::move(it->second);
  sessions_.erase(it);
  if (!session.stream.closed()) {
    api_.cancel(h.id());
    session.stream.Close(StreamEnd::kCancelled);
  }
}

bool Frontend::Release(RequestHandle h) {
  auto it = sessions_.find(h.id());
  if (it == sessions_.end()) return false;
  if (!it->second.stream.closed()) return false;  // still producing
  sessions_.erase(it);
  return true;
}

void Frontend::OnStep(const StepResult& result, double now) {
  for (const EmittedToken& e : result.emitted) {
    OnToken(e.request_id, e.token, now);
  }
  for (std::int64_t id : result.finished) OnFinished(id, now);
}

void Frontend::OnToken(std::int64_t request_id, std::int32_t token,
                       double now) {
  auto it = sessions_.find(request_id);
  if (it == sessions_.end()) return;  // another frontend's request
  if (it->second.stream.closed()) return;  // raced with a disconnect
  it->second.stream.Push(token, now);
}

void Frontend::OnFinished(std::int64_t request_id, double now) {
  (void)now;
  auto it = sessions_.find(request_id);
  if (it == sessions_.end()) return;
  if (it->second.stream.subscribed()) {
    // Subscribed consumers received every token already — the session frees
    // itself so long traces don't accumulate finished sessions. Detach it
    // from the map *before* Close() delivers on_close, so a callback that
    // calls Release/Disconnect (natural cleanup) can't double-erase.
    Session session = std::move(it->second);
    sessions_.erase(it);
    if (!session.stream.closed()) session.stream.Close(StreamEnd::kFinished);
    return;
  }
  if (!it->second.stream.closed()) {
    it->second.stream.Close(StreamEnd::kFinished);
  }
}

std::size_t Frontend::active_streams() const {
  std::size_t n = 0;
  for (const auto& [id, session] : sessions_) {
    if (!session.stream.closed()) ++n;
  }
  return n;
}

}  // namespace punica
