#include "frontend/frontend.h"

#include "util/check.h"

namespace punica {

Frontend::Frontend(int frontend_id, SchedulerApi api, std::int64_t id_base,
                   std::int64_t id_stride)
    : frontend_id_(frontend_id),
      api_(std::move(api)),
      next_id_(id_base),
      id_stride_(id_stride) {
  PUNICA_CHECK(api_.submit != nullptr);
  PUNICA_CHECK(api_.cancel != nullptr);
  PUNICA_CHECK(id_stride_ >= 1);
}

std::int64_t Frontend::Submit(LoraId lora, std::int32_t prompt_len,
                              std::int32_t output_len, double now) {
  PUNICA_CHECK(prompt_len > 0);
  PUNICA_CHECK(output_len > 0);
  std::int64_t id = next_id_;
  next_id_ += id_stride_;
  Session session;
  session.request = std::make_unique<ServingRequest>(
      ServingRequest{.id = id,
                     .lora_id = lora,
                     .prompt_len = prompt_len,
                     .output_len = output_len,
                     .arrival_time = now});
  ServingRequest* req = session.request.get();
  sessions_.emplace(id, std::move(session));
  api_.submit(req);
  return id;
}

TokenStream& Frontend::Stream(std::int64_t request_id) {
  auto it = sessions_.find(request_id);
  PUNICA_CHECK_MSG(it != sessions_.end(), "unknown request id");
  return it->second.stream;
}

const TokenStream& Frontend::Stream(std::int64_t request_id) const {
  auto it = sessions_.find(request_id);
  PUNICA_CHECK_MSG(it != sessions_.end(), "unknown request id");
  return it->second.stream;
}

bool Frontend::Owns(std::int64_t request_id) const {
  return sessions_.contains(request_id);
}

void Frontend::Disconnect(std::int64_t request_id) {
  auto it = sessions_.find(request_id);
  PUNICA_CHECK_MSG(it != sessions_.end(), "unknown request id");
  if (it->second.stream.closed()) return;  // already done
  api_.cancel(request_id);
  it->second.stream.Close(StreamEnd::kCancelled);
}

void Frontend::OnToken(std::int64_t request_id, double now) {
  auto it = sessions_.find(request_id);
  if (it == sessions_.end()) return;  // another frontend's request
  if (it->second.stream.closed()) return;  // raced with a disconnect
  // In simulation the token *content* is synthetic (a per-request counter);
  // ordering and timing are what the serving tier is responsible for.
  it->second.stream.Push(it->second.next_token_tag++, now);
}

void Frontend::OnFinished(std::int64_t request_id, double now) {
  (void)now;
  auto it = sessions_.find(request_id);
  if (it == sessions_.end()) return;
  if (!it->second.stream.closed()) {
    it->second.stream.Close(StreamEnd::kFinished);
  }
}

std::size_t Frontend::active_streams() const {
  std::size_t n = 0;
  for (const auto& [id, session] : sessions_) {
    if (!session.stream.closed()) ++n;
  }
  return n;
}

}  // namespace punica
