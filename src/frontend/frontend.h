// Frontend servers (paper Fig. 2): accept end-user requests, forward them to
// the scheduler (unary RPC in the paper; direct call here), and stream
// generated tokens back to each user. User disconnects become scheduler
// cancellations — the same primitive migration is built from (§5.3).
//
// The frontend owns the ServingRequest objects for its users; the cluster
// driver/scheduler only borrows them (mirroring the paper's split where
// request state lives at the serving tier, not on GPUs). It is tier-neutral:
// submissions are SubmitSpecs, so the same frontend streams synthetic tags
// from the simulated tier or real token ids from the numeric tier.
//
// Session lifetime (bounded memory over long traces): a session is freed
// when the user disconnects, when a *subscribed* stream finishes (tokens
// were already delivered), or when the consumer releases it explicitly;
// `total_submitted()` is a monotonic counter, not the live-session count.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "frontend/stream.h"
#include "runtime/backend.h"
#include "runtime/request.h"
#include "runtime/submit_spec.h"

namespace punica {

class Frontend {
 public:
  /// Wiring to the scheduler tier. `submit` routes a new request (the unary
  /// RPC); `cancel` propagates user disconnects.
  struct SchedulerApi {
    std::function<void(ServingRequest*)> submit;
    std::function<bool(std::int64_t)> cancel;
  };

  /// `id_base`/`id_stride` partition the request-id space across frontends
  /// so ids never collide (frontend i issues id_base + k·id_stride).
  Frontend(int frontend_id, SchedulerApi api, std::int64_t id_base = 0,
           std::int64_t id_stride = 1);

  int frontend_id() const { return frontend_id_; }

  /// User-facing: submit a generation request; returns the handle whose
  /// TokenStream the user consumes.
  RequestHandle Submit(const SubmitSpec& spec);

  /// The response stream for a request of this frontend, or nullptr when
  /// the handle is unknown (another frontend's request, an invalid handle,
  /// or a session already released) — never aborts.
  TokenStream* Stream(RequestHandle h);
  const TokenStream* Stream(RequestHandle h) const;
  bool Owns(RequestHandle h) const;

  /// Subscriber mode: tokens for `h` are delivered through `on_token` as
  /// they arrive (nothing is buffered), and the session frees itself when
  /// the stream finishes. Returns false when the handle is unknown.
  bool Subscribe(RequestHandle h, TokenStream::TokenCallback on_token,
                 TokenStream::CloseCallback on_close = nullptr);

  /// User disconnect: cancels upstream, closes and frees the session.
  void Disconnect(RequestHandle h);

  /// Frees a finished (pull-mode) session once the consumer is done with
  /// it. Returns false when the handle is unknown or the stream is still
  /// open.
  bool Release(RequestHandle h);

  /// Runner-side callbacks (wired to ClusterDriver's emission callback).
  /// Unknown ids (other frontends' requests) are ignored.
  void OnStep(const StepResult& result, double now);
  void OnToken(std::int64_t request_id, std::int32_t token, double now);
  void OnFinished(std::int64_t request_id, double now);

  std::size_t active_streams() const;
  std::size_t live_sessions() const { return sessions_.size(); }
  /// Requests ever submitted through this frontend (monotonic; unaffected
  /// by session reclamation).
  std::size_t total_submitted() const { return total_submitted_; }

 private:
  struct Session {
    std::unique_ptr<ServingRequest> request;
    TokenStream stream;
  };

  int frontend_id_;
  SchedulerApi api_;
  std::int64_t next_id_;
  std::int64_t id_stride_;
  std::size_t total_submitted_ = 0;
  std::map<std::int64_t, Session> sessions_;
};

}  // namespace punica
