// Frontend servers (paper Fig. 2): accept end-user requests, forward them to
// the scheduler (unary RPC in the paper; direct call here), and stream
// generated tokens back to each user. User disconnects become scheduler
// cancellations — the same primitive migration is built from (§5.3).
//
// The frontend owns the ServingRequest objects for its users; the cluster
// driver/scheduler only borrows them (mirroring the paper's split where
// request state lives at the serving tier, not on GPUs).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "frontend/stream.h"
#include "runtime/request.h"

namespace punica {

class Frontend {
 public:
  /// Wiring to the scheduler tier. `submit` routes a new request (the unary
  /// RPC); `cancel` propagates user disconnects.
  struct SchedulerApi {
    std::function<void(ServingRequest*)> submit;
    std::function<bool(std::int64_t)> cancel;
  };

  /// `id_base`/`id_stride` partition the request-id space across frontends
  /// so ids never collide (frontend i issues id_base + k·id_stride).
  Frontend(int frontend_id, SchedulerApi api, std::int64_t id_base = 0,
           std::int64_t id_stride = 1);

  int frontend_id() const { return frontend_id_; }

  /// User-facing: submit a prompt for a LoRA model; returns the request id
  /// whose TokenStream the user consumes.
  std::int64_t Submit(LoraId lora, std::int32_t prompt_len,
                      std::int32_t output_len, double now);

  /// The response stream for a request of this frontend.
  TokenStream& Stream(std::int64_t request_id);
  const TokenStream& Stream(std::int64_t request_id) const;
  bool Owns(std::int64_t request_id) const;

  /// User disconnect: cancels upstream and closes the stream.
  void Disconnect(std::int64_t request_id);

  /// Runner-side callbacks (wired to ClusterDriver's emission callback).
  /// Unknown ids (other frontends' requests) are ignored.
  void OnToken(std::int64_t request_id, double now);
  void OnFinished(std::int64_t request_id, double now);

  std::size_t active_streams() const;
  std::size_t total_submitted() const { return sessions_.size(); }

 private:
  struct Session {
    std::unique_ptr<ServingRequest> request;
    TokenStream stream;
    std::int32_t next_token_tag = 0;  ///< synthetic token ids in simulation
  };

  int frontend_id_;
  SchedulerApi api_;
  std::int64_t next_id_;
  std::int64_t id_stride_;
  std::map<std::int64_t, Session> sessions_;
};

}  // namespace punica
