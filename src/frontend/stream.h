// Token streams: the user-visible half of the serving path (paper Fig. 2 —
// "as GPUs generate new tokens, new tokens are streamed from the runners to
// the scheduler, to the frontends, and finally to the end-users").
//
// Single-threaded deterministic queue semantics: producers (the frontend's
// runner-side callbacks) push token chunks; the consumer drains them in
// order. Closing records why the stream ended.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

namespace punica {

enum class StreamEnd {
  kOpen,         ///< still producing
  kFinished,     ///< request reached its stopping condition
  kCancelled,    ///< cancelled upstream (user disconnect)
};

class TokenStream {
 public:
  /// Producer side.
  void Push(std::int32_t token, double timestamp);
  void Close(StreamEnd reason);

  /// Consumer side.
  bool HasNext() const { return !pending_.empty(); }
  std::int32_t Next();

  StreamEnd state() const { return state_; }
  bool closed() const { return state_ != StreamEnd::kOpen; }
  std::size_t total_pushed() const { return total_pushed_; }
  double first_token_time() const { return first_token_time_; }
  double last_token_time() const { return last_token_time_; }

  /// Drains everything still pending.
  std::vector<std::int32_t> DrainAll();

 private:
  std::deque<std::int32_t> pending_;
  StreamEnd state_ = StreamEnd::kOpen;
  std::size_t total_pushed_ = 0;
  double first_token_time_ = -1.0;
  double last_token_time_ = -1.0;
};

}  // namespace punica
