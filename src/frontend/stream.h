// Token streams: the user-visible half of the serving path (paper Fig. 2 —
// "as GPUs generate new tokens, new tokens are streamed from the runners to
// the scheduler, to the frontends, and finally to the end-users").
//
// Single-threaded deterministic semantics with two consumption modes:
//   * pull — producers push token chunks, the consumer drains them in
//     order (HasNext/Next/DrainAll);
//   * subscribe — the consumer registers a callback and tokens are
//     delivered as they are pushed (anything already pending is delivered
//     at subscription time), so nothing is buffered.
// Tokens are real ids on the numeric tier and per-request sequence tags on
// the simulated tier. Closing records why the stream ended.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

namespace punica {

enum class StreamEnd {
  kOpen,         ///< still producing
  kFinished,     ///< request reached its stopping condition
  kCancelled,    ///< cancelled upstream (user disconnect)
};

class TokenStream {
 public:
  using TokenCallback =
      std::function<void(std::int32_t token, double timestamp)>;
  using CloseCallback = std::function<void(StreamEnd reason)>;

  /// Producer side.
  void Push(std::int32_t token, double timestamp);
  void Close(StreamEnd reason);

  /// Pull-based consumer side.
  bool HasNext() const { return !pending_.empty(); }
  std::int32_t Next();
  /// Drains everything still pending.
  std::vector<std::int32_t> DrainAll();

  /// Subscriber mode: future pushes are delivered through `on_token`
  /// instead of being queued; pending tokens are delivered immediately
  /// with their original push timestamps. `on_close` (optional) fires when
  /// the stream closes — immediately if it already has. Callbacks must not
  /// destroy this stream synchronously (release the owning session from
  /// `on_close`, not from `on_token`).
  void Subscribe(TokenCallback on_token, CloseCallback on_close = nullptr);
  bool subscribed() const { return on_token_ != nullptr; }

  StreamEnd state() const { return state_; }
  bool closed() const { return state_ != StreamEnd::kOpen; }
  std::size_t total_pushed() const { return total_pushed_; }
  double first_token_time() const { return first_token_time_; }
  double last_token_time() const { return last_token_time_; }

 private:
  struct Pending {
    std::int32_t token;
    double timestamp;
  };
  std::deque<Pending> pending_;
  TokenCallback on_token_;
  CloseCallback on_close_;
  StreamEnd state_ = StreamEnd::kOpen;
  std::size_t total_pushed_ = 0;
  double first_token_time_ = -1.0;
  double last_token_time_ = -1.0;
};

}  // namespace punica
