// The batched LoRA addon operator and LoRA weight containers (paper §4).
//
// A LoRA adapter for one dense projection W ∈ R^{h1×h2} is a pair
// A ∈ R^{h1×r}, B ∈ R^{r×h2}; the fine-tuned projection is W + A·B.
// The batched addon  y += x·A·B  is computed as two SGMV launches through a
// zero-initialised rank-width workspace v:
//     v  = SGMV-shrink(x, A)        (h → r)
//     y += SGMV-expand(v, B)        (r → h)
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/segment.h"
#include "core/sgmv.h"
#include "tensor/tensor.h"

namespace punica {

/// One projection's LoRA pair. A is [h_in, rank], B is [rank, h_out].
struct LoraAB {
  Tensor<f16> a;
  Tensor<f16> b;
  int rank = 0;
  int h_in = 0;
  int h_out = 0;

  static LoraAB Random(int h_in, int h_out, int rank, std::uint64_t seed);
  std::size_t byte_size() const {
    return (a.numel() + b.numel()) * sizeof(f16);
  }
};

/// Applies the batched LoRA addon for one projection:
///   y[s[i]:s[i+1]] += x[s[i]:s[i+1]] · A_i · B_i
/// `adapters[i]` may be nullptr for a backbone-only segment (skipped).
/// `workspace` must hold rows · max_rank floats; it is used as the
/// intermediate v and zeroed internally. Any extra capacity beyond that
/// backs the shrink kernel's split-K partials (rows · kMaxSplitKPartitions
/// · max_rank floats avoids all hot-path allocation); smaller workspaces
/// stay correct and merely allocate inside.
void BatchedLoraAddon(std::span<float> y, std::span<const float> x,
                      std::span<const LoraAB* const> adapters,
                      std::span<const std::int32_t> seg, int h_in, int h_out,
                      std::span<float> workspace,
                      const ComputeContext& ctx = ComputeContext::Default());

/// Convenience for tests: single-adapter addon over the whole batch.
void LoraAddonSingle(std::span<float> y, std::span<const float> x,
                     const LoraAB& adapter, int rows);

/// FLOP/IO cost of the two-launch addon (sum of shrink + expand SGMV costs).
SgmvCost LoraAddonCostOf(std::span<const std::int32_t> seg, int h_in,
                         int h_out, int rank);

/// Registry of LoRA adapters for one projection shape, keyed by LoraId —
/// the per-GPU "which adapters are resident" table. Lookup returns nullptr
/// for unknown ids so callers can treat missing adapters as backbone-only.
class LoraRegistry {
 public:
  /// Registers (or replaces) an adapter. Returns its byte size.
  std::size_t Put(LoraId id, LoraAB adapter);
  const LoraAB* Get(LoraId id) const;
  bool Contains(LoraId id) const { return Get(id) != nullptr; }
  std::size_t Erase(LoraId id);  ///< Returns bytes freed (0 if absent).
  std::size_t size() const { return adapters_.size(); }
  std::size_t total_bytes() const { return total_bytes_; }

  /// Gathers per-segment weight pointers for a Segments descriptor.
  std::vector<const LoraAB*> GatherSegmentWeights(const Segments& seg) const;

 private:
  std::unordered_map<LoraId, std::unique_ptr<LoraAB>> adapters_;
  std::size_t total_bytes_ = 0;
};

}  // namespace punica
