// Segment descriptors for SGMV and batch metadata for mixed prefill/decode
// invocations.
//
// The paper groups batch rows that use the same LoRA model into contiguous
// segments: seg.offsets = {s_0=0, s_1, …, s_n = batch_size} and
// seg.lora_ids[i] names the LoRA model applied to rows [s_i, s_{i+1}).
// SGMV segment indices and BatchLen are computed once per model invocation
// and reused across all layers (the paper notes this avoids recomputing them
// L times for BatchLen and 7·L times for SGMV).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace punica {

using LoraId = std::int64_t;

/// A contiguous partition of the batch rows by LoRA model.
struct Segments {
  std::vector<std::int32_t> offsets;  ///< n+1 entries; offsets[0] == 0.
  std::vector<LoraId> lora_ids;       ///< n entries, one per segment.

  int num_segments() const { return static_cast<int>(lora_ids.size()); }
  int total_rows() const { return offsets.empty() ? 0 : offsets.back(); }
  int segment_rows(int i) const { return offsets[i + 1] - offsets[i]; }

  /// Structural validity: monotone offsets starting at 0, matching sizes,
  /// no empty segment, and no two adjacent segments with the same id
  /// (adjacent duplicates should have been merged).
  bool IsValid() const;
};

/// Builds segments from per-row LoRA ids by merging *consecutive* equal ids.
/// Rows must already be ordered so equal ids are adjacent if maximal
/// batching efficiency is desired (see GroupRowsByLora); this function does
/// not reorder.
Segments BuildSegments(std::span<const LoraId> per_row_lora_ids);

/// Computes a permutation that groups rows with equal LoRA ids consecutively
/// while preserving the relative order of rows within a group and the order
/// of first appearance between groups (stable grouping — this keeps prefill
/// rows in front when the runtime pre-sorts them, matching §6 of the paper).
std::vector<std::int32_t> GroupRowsByLora(std::span<const LoraId> ids);

/// Applies `perm` to rows of a row-major [rows, width] buffer: out row i is
/// input row perm[i].
void PermuteRows(std::span<const float> in, std::span<float> out,
                 std::span<const std::int32_t> perm, int width);

/// Inverse permutation.
std::vector<std::int32_t> InvertPermutation(std::span<const std::int32_t> p);

/// Batch metadata for one model invocation (paper §6 "BatchLen"): prefill
/// requests are concatenated in front (each contributing its prompt length in
/// tokens), decode requests follow with one token each.
struct BatchLen {
  std::vector<std::int32_t> prefill_starts;  ///< start token index per prefill
  std::int32_t prefill_tokens = 0;           ///< total tokens in prefill part
  std::int32_t num_decode = 0;               ///< decode requests (1 token each)

  int total_tokens() const { return prefill_tokens + num_decode; }
  int num_prefill() const { return static_cast<int>(prefill_starts.size()); }
  bool IsValid() const;
};

/// Builds BatchLen from per-prefill prompt lengths and a decode count.
BatchLen BuildBatchLen(std::span<const std::int32_t> prefill_lengths,
                       int num_decode);

}  // namespace punica
