#include "core/sgmv.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "tensor/simd.h"
#include "util/check.h"

namespace punica {
namespace {

void ValidateArgs(const SgmvArgs& a) {
  PUNICA_CHECK(a.h_in > 0 && a.h_out > 0);
  PUNICA_CHECK(!a.seg.empty());
  PUNICA_CHECK(a.seg.front() == 0);
  PUNICA_CHECK(a.weights.size() + 1 == a.seg.size());
  int rows = a.seg.back();
  PUNICA_CHECK(a.x.size() ==
               static_cast<std::size_t>(rows) * static_cast<std::size_t>(a.h_in));
  PUNICA_CHECK(a.y.size() == static_cast<std::size_t>(rows) *
                                 static_cast<std::size_t>(a.h_out));
  for (std::size_t i = 0; i + 1 < a.seg.size(); ++i) {
    PUNICA_CHECK_MSG(a.seg[i] <= a.seg[i + 1], "segment offsets must be "
                                               "non-decreasing");
  }
}

// The weight pointer covering `row` — the gather the GPU kernel performs
// per thread block. A binary search over the (non-decreasing) offsets so
// parallel tasks can be indexed by row with no allocation: the last
// segment starting at or before `row` is the non-empty one covering it.
const f16* WeightForRow(const SgmvArgs& a, std::int64_t row) {
  auto it = std::upper_bound(a.seg.begin(), a.seg.end(), row);
  auto s = static_cast<std::size_t>(it - a.seg.begin()) - 1;
  return a.weights[s];  // nullptr = backbone-only segment
}

}  // namespace

int SplitKPartitions(int h_in) {
  // Chunk the reduction dimension into ~256-wide slices, capped at 8
  // partitions (the GPU heuristic caps at the SM count budget per segment).
  constexpr int kChunk = 256;
  int parts = (h_in + kChunk - 1) / kChunk;
  return std::clamp(parts, 1, kMaxSplitKPartitions);
}

void SgmvShrink(const SgmvArgs& a, const ComputeContext& ctx,
                std::span<float> scratch) {
  ValidateArgs(a);
  const std::int64_t rows = a.seg.back();
  if (rows == 0) return;
  const int k_parts = SplitKPartitions(a.h_in);
  const int chunk = (a.h_in + k_parts - 1) / k_parts;

  // Phase 1: each (row, partition) block computes a partial over its
  // k-chunk on whichever worker claims it — the analogue of per-threadblock
  // partial sums before the grid sync. The partial layout depends only on
  // (row, partition), never on the worker. Left uninitialized here: each
  // slice has exactly one phase-1 writer, which zeroes it first, and
  // phase 2 never reads slices of null-weight rows. Backed by the caller's
  // scratch when it is large enough (the hot-path case).
  const std::size_t partials_size = static_cast<std::size_t>(rows) *
                                    static_cast<std::size_t>(k_parts) *
                                    static_cast<std::size_t>(a.h_out);
  std::unique_ptr<float[]> owned;
  float* partials = scratch.data();
  if (scratch.size() < partials_size) {
    owned = std::make_unique_for_overwrite<float[]>(partials_size);
    partials = owned.get();
  }
  const SimdOps& ops = Simd();
  ctx.ParallelFor(rows * k_parts, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t task = lo; task < hi; ++task) {
      const auto row = static_cast<std::size_t>(task / k_parts);
      const int p = static_cast<int>(task % k_parts);
      const f16* w = WeightForRow(a, static_cast<std::int64_t>(row));
      if (w == nullptr) continue;
      const float* xr = &a.x[row * static_cast<std::size_t>(a.h_in)];
      float* part = &partials[(row * static_cast<std::size_t>(k_parts) +
                               static_cast<std::size_t>(p)) *
                              static_cast<std::size_t>(a.h_out)];
      std::fill(part, part + a.h_out, 0.0f);
      int k_lo = p * chunk;
      int k_hi = std::min(a.h_in, k_lo + chunk);
      // Fused decode + axpy across the h_out columns: each part element's
      // reduction stays in ascending-kk order. x here is a dense hidden
      // state, so no sparsity test in the inner loop.
      for (int kk = k_lo; kk < k_hi; ++kk) {
        ops.axpy_f16(xr[kk],
                     &w[static_cast<std::size_t>(kk) *
                        static_cast<std::size_t>(a.h_out)],
                     part, static_cast<std::size_t>(a.h_out));
      }
    }
  });

  // Phase 2: reduce partials in fixed ascending partition order — one
  // worker per row, so each y element has exactly one writer and one
  // summation order regardless of thread count. Accumulating into the
  // partition-0 slice (scratch, documented clobbered) keeps the per-element
  // order identical to the scalar acc loop; a == 1.0f makes the FMA exact,
  // so this reduction is bit-identical on both dispatch paths.
  ctx.ParallelFor(rows, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t r = lo; r < hi; ++r) {
      const auto row = static_cast<std::size_t>(r);
      if (WeightForRow(a, r) == nullptr) continue;
      float* yr = &a.y[row * static_cast<std::size_t>(a.h_out)];
      const auto h_out = static_cast<std::size_t>(a.h_out);
      float* part0 = &partials[row * static_cast<std::size_t>(k_parts) *
                               h_out];
      for (int p = 1; p < k_parts; ++p) {
        ops.axpy_f32(1.0f, part0 + static_cast<std::size_t>(p) * h_out,
                     part0, h_out);
      }
      ops.axpy_f32(1.0f, part0, yr, h_out);
    }
  });
}

void SgmvExpand(const SgmvArgs& a, const ComputeContext& ctx) {
  ValidateArgs(a);
  const std::int64_t rows = a.seg.back();
  if (rows == 0) return;
  // Column-split schedule: tile the (large) output dimension; each
  // (row, tile) block is computed independently, exactly like dispatching
  // v·B^(tile) to separate thread blocks whose results concatenate. The
  // k (rank) loop runs outermost over a task-local accumulator panel so the
  // fused decode + axpy vectorizes across the tile's columns while each
  // element keeps its ascending-kk reduction order; the final yr add is
  // exact (a == 1.0f), matching the scalar acc-then-add structure bit for
  // bit on the scalar path.
  constexpr int kTile = 128;
  const SimdOps& ops = Simd();
  const std::int64_t num_tiles = (a.h_out + kTile - 1) / kTile;
  ctx.ParallelFor(rows * num_tiles, 1, [&](std::int64_t lo, std::int64_t hi) {
    alignas(32) float panel[kTile];
    for (std::int64_t task = lo; task < hi; ++task) {
      const auto row = static_cast<std::size_t>(task / num_tiles);
      const f16* w = WeightForRow(a, static_cast<std::int64_t>(row));
      if (w == nullptr) continue;
      const int j_lo = static_cast<int>(task % num_tiles) * kTile;
      const int j_hi = std::min(a.h_out, j_lo + kTile);
      const auto tile_w = static_cast<std::size_t>(j_hi - j_lo);
      const float* xr = &a.x[row * static_cast<std::size_t>(a.h_in)];
      float* yr = &a.y[row * static_cast<std::size_t>(a.h_out)];
      std::fill(panel, panel + tile_w, 0.0f);
      for (int kk = 0; kk < a.h_in; ++kk) {
        ops.axpy_f16(xr[kk],
                     &w[static_cast<std::size_t>(kk) *
                            static_cast<std::size_t>(a.h_out) +
                        static_cast<std::size_t>(j_lo)],
                     panel, tile_w);
      }
      ops.axpy_f32(1.0f, panel, yr + j_lo, tile_w);
    }
  });
}

void SgmvReference(const SgmvArgs& a) {
  ValidateArgs(a);
  const int num_segments = static_cast<int>(a.weights.size());
  for (int s = 0; s < num_segments; ++s) {
    const f16* w = a.weights[static_cast<std::size_t>(s)];
    if (w == nullptr) continue;
    for (std::int32_t row = a.seg[static_cast<std::size_t>(s)];
         row < a.seg[static_cast<std::size_t>(s) + 1]; ++row) {
      for (int j = 0; j < a.h_out; ++j) {
        float acc = 0.0f;
        for (int kk = 0; kk < a.h_in; ++kk) {
          acc += a.x[static_cast<std::size_t>(row) *
                         static_cast<std::size_t>(a.h_in) +
                     static_cast<std::size_t>(kk)] *
                 w[static_cast<std::size_t>(kk) *
                       static_cast<std::size_t>(a.h_out) +
                   static_cast<std::size_t>(j)]
                     .ToFloat();
        }
        a.y[static_cast<std::size_t>(row) * static_cast<std::size_t>(a.h_out) +
            static_cast<std::size_t>(j)] += acc;
      }
    }
  }
}

SgmvCost SgmvCostOf(std::span<const std::int32_t> seg, int h_in, int h_out) {
  PUNICA_CHECK(!seg.empty());
  double sn = seg.back();
  double n = static_cast<double>(seg.size()) - 1.0;
  SgmvCost cost;
  cost.flop = sn * h_in * h_out * 2.0;
  cost.io_bytes = (sn * (h_in + h_out) + n * h_in * h_out) * 2.0;
  return cost;
}

}  // namespace punica
