#include "core/sgmv.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace punica {
namespace {

void ValidateArgs(const SgmvArgs& a) {
  PUNICA_CHECK(a.h_in > 0 && a.h_out > 0);
  PUNICA_CHECK(!a.seg.empty());
  PUNICA_CHECK(a.seg.front() == 0);
  PUNICA_CHECK(a.weights.size() + 1 == a.seg.size());
  int rows = a.seg.back();
  PUNICA_CHECK(a.x.size() ==
               static_cast<std::size_t>(rows) * static_cast<std::size_t>(a.h_in));
  PUNICA_CHECK(a.y.size() == static_cast<std::size_t>(rows) *
                                 static_cast<std::size_t>(a.h_out));
  for (std::size_t i = 0; i + 1 < a.seg.size(); ++i) {
    PUNICA_CHECK_MSG(a.seg[i] <= a.seg[i + 1], "segment offsets must be "
                                               "non-decreasing");
  }
}

}  // namespace

int SplitKPartitions(int h_in) {
  // Chunk the reduction dimension into ~256-wide slices, capped at 8
  // partitions (the GPU heuristic caps at the SM count budget per segment).
  constexpr int kChunk = 256;
  int parts = (h_in + kChunk - 1) / kChunk;
  return std::clamp(parts, 1, 8);
}

void SgmvShrink(const SgmvArgs& a) {
  ValidateArgs(a);
  const int k_parts = SplitKPartitions(a.h_in);
  const int chunk = (a.h_in + k_parts - 1) / k_parts;
  // Phase 1: each (row, partition) computes a partial over its k-chunk —
  // the analogue of per-threadblock partial sums before the grid sync.
  // Phase 2: fixed-order reduction across partitions.
  std::vector<float> partials(static_cast<std::size_t>(k_parts) *
                              static_cast<std::size_t>(a.h_out));
  const int num_segments = static_cast<int>(a.weights.size());
  for (int s = 0; s < num_segments; ++s) {
    const f16* w = a.weights[static_cast<std::size_t>(s)];
    if (w == nullptr) continue;  // segment without a LoRA (backbone-only row)
    for (std::int32_t row = a.seg[static_cast<std::size_t>(s)];
         row < a.seg[static_cast<std::size_t>(s) + 1]; ++row) {
      const float* xr =
          &a.x[static_cast<std::size_t>(row) * static_cast<std::size_t>(a.h_in)];
      std::fill(partials.begin(), partials.end(), 0.0f);
      for (int p = 0; p < k_parts; ++p) {
        int k_lo = p * chunk;
        int k_hi = std::min(a.h_in, k_lo + chunk);
        float* part = &partials[static_cast<std::size_t>(p) *
                                static_cast<std::size_t>(a.h_out)];
        for (int kk = k_lo; kk < k_hi; ++kk) {
          float xv = xr[kk];
          if (xv == 0.0f) continue;
          const f16* wrow = &w[static_cast<std::size_t>(kk) *
                               static_cast<std::size_t>(a.h_out)];
          for (int j = 0; j < a.h_out; ++j) {
            part[j] += xv * wrow[j].ToFloat();
          }
        }
      }
      float* yr = &a.y[static_cast<std::size_t>(row) *
                       static_cast<std::size_t>(a.h_out)];
      for (int j = 0; j < a.h_out; ++j) {
        float acc = 0.0f;
        for (int p = 0; p < k_parts; ++p) {
          acc += partials[static_cast<std::size_t>(p) *
                              static_cast<std::size_t>(a.h_out) +
                          static_cast<std::size_t>(j)];
        }
        yr[j] += acc;
      }
    }
  }
}

void SgmvExpand(const SgmvArgs& a) {
  ValidateArgs(a);
  // Column-split schedule: tile the (large) output dimension; each tile is
  // computed independently, exactly like dispatching v·B^(tile) to separate
  // thread blocks whose results concatenate.
  constexpr int kTile = 128;
  const int num_segments = static_cast<int>(a.weights.size());
  for (int s = 0; s < num_segments; ++s) {
    const f16* w = a.weights[static_cast<std::size_t>(s)];
    if (w == nullptr) continue;
    for (int j_lo = 0; j_lo < a.h_out; j_lo += kTile) {
      int j_hi = std::min(a.h_out, j_lo + kTile);
      for (std::int32_t row = a.seg[static_cast<std::size_t>(s)];
           row < a.seg[static_cast<std::size_t>(s) + 1]; ++row) {
        const float* xr = &a.x[static_cast<std::size_t>(row) *
                               static_cast<std::size_t>(a.h_in)];
        float* yr = &a.y[static_cast<std::size_t>(row) *
                         static_cast<std::size_t>(a.h_out)];
        for (int j = j_lo; j < j_hi; ++j) {
          float acc = 0.0f;
          for (int kk = 0; kk < a.h_in; ++kk) {
            acc += xr[kk] * w[static_cast<std::size_t>(kk) *
                                  static_cast<std::size_t>(a.h_out) +
                              static_cast<std::size_t>(j)]
                                .ToFloat();
          }
          yr[j] += acc;
        }
      }
    }
  }
}

void SgmvReference(const SgmvArgs& a) {
  ValidateArgs(a);
  const int num_segments = static_cast<int>(a.weights.size());
  for (int s = 0; s < num_segments; ++s) {
    const f16* w = a.weights[static_cast<std::size_t>(s)];
    if (w == nullptr) continue;
    for (std::int32_t row = a.seg[static_cast<std::size_t>(s)];
         row < a.seg[static_cast<std::size_t>(s) + 1]; ++row) {
      for (int j = 0; j < a.h_out; ++j) {
        float acc = 0.0f;
        for (int kk = 0; kk < a.h_in; ++kk) {
          acc += a.x[static_cast<std::size_t>(row) *
                         static_cast<std::size_t>(a.h_in) +
                     static_cast<std::size_t>(kk)] *
                 w[static_cast<std::size_t>(kk) *
                       static_cast<std::size_t>(a.h_out) +
                   static_cast<std::size_t>(j)]
                     .ToFloat();
        }
        a.y[static_cast<std::size_t>(row) * static_cast<std::size_t>(a.h_out) +
            static_cast<std::size_t>(j)] += acc;
      }
    }
  }
}

SgmvCost SgmvCostOf(std::span<const std::int32_t> seg, int h_in, int h_out) {
  PUNICA_CHECK(!seg.empty());
  double sn = seg.back();
  double n = static_cast<double>(seg.size()) - 1.0;
  SgmvCost cost;
  cost.flop = sn * h_in * h_out * 2.0;
  cost.io_bytes = (sn * (h_in + h_out) + n * h_in * h_out) * 2.0;
  return cost;
}

}  // namespace punica
