#include "core/sgmv.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "util/check.h"

namespace punica {
namespace {

void ValidateArgs(const SgmvArgs& a) {
  PUNICA_CHECK(a.h_in > 0 && a.h_out > 0);
  PUNICA_CHECK(!a.seg.empty());
  PUNICA_CHECK(a.seg.front() == 0);
  PUNICA_CHECK(a.weights.size() + 1 == a.seg.size());
  int rows = a.seg.back();
  PUNICA_CHECK(a.x.size() ==
               static_cast<std::size_t>(rows) * static_cast<std::size_t>(a.h_in));
  PUNICA_CHECK(a.y.size() == static_cast<std::size_t>(rows) *
                                 static_cast<std::size_t>(a.h_out));
  for (std::size_t i = 0; i + 1 < a.seg.size(); ++i) {
    PUNICA_CHECK_MSG(a.seg[i] <= a.seg[i + 1], "segment offsets must be "
                                               "non-decreasing");
  }
}

// The weight pointer covering `row` — the gather the GPU kernel performs
// per thread block. A binary search over the (non-decreasing) offsets so
// parallel tasks can be indexed by row with no allocation: the last
// segment starting at or before `row` is the non-empty one covering it.
const f16* WeightForRow(const SgmvArgs& a, std::int64_t row) {
  auto it = std::upper_bound(a.seg.begin(), a.seg.end(), row);
  auto s = static_cast<std::size_t>(it - a.seg.begin()) - 1;
  return a.weights[s];  // nullptr = backbone-only segment
}

}  // namespace

int SplitKPartitions(int h_in) {
  // Chunk the reduction dimension into ~256-wide slices, capped at 8
  // partitions (the GPU heuristic caps at the SM count budget per segment).
  constexpr int kChunk = 256;
  int parts = (h_in + kChunk - 1) / kChunk;
  return std::clamp(parts, 1, kMaxSplitKPartitions);
}

void SgmvShrink(const SgmvArgs& a, const ComputeContext& ctx,
                std::span<float> scratch) {
  ValidateArgs(a);
  const std::int64_t rows = a.seg.back();
  if (rows == 0) return;
  const int k_parts = SplitKPartitions(a.h_in);
  const int chunk = (a.h_in + k_parts - 1) / k_parts;

  // Phase 1: each (row, partition) block computes a partial over its
  // k-chunk on whichever worker claims it — the analogue of per-threadblock
  // partial sums before the grid sync. The partial layout depends only on
  // (row, partition), never on the worker. Left uninitialized here: each
  // slice has exactly one phase-1 writer, which zeroes it first, and
  // phase 2 never reads slices of null-weight rows. Backed by the caller's
  // scratch when it is large enough (the hot-path case).
  const std::size_t partials_size = static_cast<std::size_t>(rows) *
                                    static_cast<std::size_t>(k_parts) *
                                    static_cast<std::size_t>(a.h_out);
  std::unique_ptr<float[]> owned;
  float* partials = scratch.data();
  if (scratch.size() < partials_size) {
    owned = std::make_unique_for_overwrite<float[]>(partials_size);
    partials = owned.get();
  }
  ctx.ParallelFor(rows * k_parts, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t task = lo; task < hi; ++task) {
      const auto row = static_cast<std::size_t>(task / k_parts);
      const int p = static_cast<int>(task % k_parts);
      const f16* w = WeightForRow(a, static_cast<std::int64_t>(row));
      if (w == nullptr) continue;
      const float* xr = &a.x[row * static_cast<std::size_t>(a.h_in)];
      float* part = &partials[(row * static_cast<std::size_t>(k_parts) +
                               static_cast<std::size_t>(p)) *
                              static_cast<std::size_t>(a.h_out)];
      std::fill(part, part + a.h_out, 0.0f);
      int k_lo = p * chunk;
      int k_hi = std::min(a.h_in, k_lo + chunk);
      for (int kk = k_lo; kk < k_hi; ++kk) {
        float xv = xr[kk];
        if (xv == 0.0f) continue;
        const f16* wrow = &w[static_cast<std::size_t>(kk) *
                             static_cast<std::size_t>(a.h_out)];
        for (int j = 0; j < a.h_out; ++j) {
          part[j] += xv * wrow[j].ToFloat();
        }
      }
    }
  });

  // Phase 2: reduce partials in fixed ascending partition order — one
  // worker per row, so each y element has exactly one writer and one
  // summation order regardless of thread count.
  ctx.ParallelFor(rows, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t r = lo; r < hi; ++r) {
      const auto row = static_cast<std::size_t>(r);
      if (WeightForRow(a, r) == nullptr) continue;
      float* yr = &a.y[row * static_cast<std::size_t>(a.h_out)];
      const float* row_part = &partials[row * static_cast<std::size_t>(
                                                  k_parts) *
                                        static_cast<std::size_t>(a.h_out)];
      for (int j = 0; j < a.h_out; ++j) {
        float acc = 0.0f;
        for (int p = 0; p < k_parts; ++p) {
          acc += row_part[static_cast<std::size_t>(p) *
                              static_cast<std::size_t>(a.h_out) +
                          static_cast<std::size_t>(j)];
        }
        yr[j] += acc;
      }
    }
  });
}

void SgmvExpand(const SgmvArgs& a, const ComputeContext& ctx) {
  ValidateArgs(a);
  const std::int64_t rows = a.seg.back();
  if (rows == 0) return;
  // Column-split schedule: tile the (large) output dimension; each
  // (row, tile) block is computed independently, exactly like dispatching
  // v·B^(tile) to separate thread blocks whose results concatenate.
  constexpr int kTile = 128;
  const std::int64_t num_tiles = (a.h_out + kTile - 1) / kTile;
  ctx.ParallelFor(rows * num_tiles, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t task = lo; task < hi; ++task) {
      const auto row = static_cast<std::size_t>(task / num_tiles);
      const f16* w = WeightForRow(a, static_cast<std::int64_t>(row));
      if (w == nullptr) continue;
      const int j_lo = static_cast<int>(task % num_tiles) * kTile;
      const int j_hi = std::min(a.h_out, j_lo + kTile);
      const float* xr = &a.x[row * static_cast<std::size_t>(a.h_in)];
      float* yr = &a.y[row * static_cast<std::size_t>(a.h_out)];
      for (int j = j_lo; j < j_hi; ++j) {
        float acc = 0.0f;
        for (int kk = 0; kk < a.h_in; ++kk) {
          acc += xr[kk] * w[static_cast<std::size_t>(kk) *
                                static_cast<std::size_t>(a.h_out) +
                            static_cast<std::size_t>(j)]
                              .ToFloat();
        }
        yr[j] += acc;
      }
    }
  });
}

void SgmvReference(const SgmvArgs& a) {
  ValidateArgs(a);
  const int num_segments = static_cast<int>(a.weights.size());
  for (int s = 0; s < num_segments; ++s) {
    const f16* w = a.weights[static_cast<std::size_t>(s)];
    if (w == nullptr) continue;
    for (std::int32_t row = a.seg[static_cast<std::size_t>(s)];
         row < a.seg[static_cast<std::size_t>(s) + 1]; ++row) {
      for (int j = 0; j < a.h_out; ++j) {
        float acc = 0.0f;
        for (int kk = 0; kk < a.h_in; ++kk) {
          acc += a.x[static_cast<std::size_t>(row) *
                         static_cast<std::size_t>(a.h_in) +
                     static_cast<std::size_t>(kk)] *
                 w[static_cast<std::size_t>(kk) *
                       static_cast<std::size_t>(a.h_out) +
                   static_cast<std::size_t>(j)]
                     .ToFloat();
        }
        a.y[static_cast<std::size_t>(row) * static_cast<std::size_t>(a.h_out) +
            static_cast<std::size_t>(j)] += acc;
      }
    }
  }
}

SgmvCost SgmvCostOf(std::span<const std::int32_t> seg, int h_in, int h_out) {
  PUNICA_CHECK(!seg.empty());
  double sn = seg.back();
  double n = static_cast<double>(seg.size()) - 1.0;
  SgmvCost cost;
  cost.flop = sn * h_in * h_out * 2.0;
  cost.io_bytes = (sn * (h_in + h_out) + n * h_in * h_out) * 2.0;
  return cost;
}

}  // namespace punica
