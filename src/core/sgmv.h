// SGMV — Segmented Gather Matrix-Vector multiplication (paper §4).
//
// Semantics (Fig. 3):   Y[s[i]:s[i+1], :] += X[s[i]:s[i+1], :] @ W[i]
// where the batch rows are partitioned into contiguous segments and each
// segment multiplies its own weight matrix (gathered by pointer, never
// materialised — this is the IO advantage over Gather-BMM).
//
// Two schedules mirror the CUDA kernel split:
//  * SgmvShrink — h_in large (hidden dim), h_out small (LoRA rank). The GPU
//    kernel uses Split-K: partition the reduction dimension across thread
//    blocks, then reduce partial sums after a grid sync. The CPU
//    implementation reproduces the same two-phase structure (deterministic
//    partials then a tree-order reduction) so numerics match the schedule.
//  * SgmvExpand — h_in small (rank), h_out large. The GPU kernel splits the
//    output-column dimension across thread blocks; each tile is independent.
//
// Accumulation is fp32 over fp16 weights, as on tensor cores.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/half.h"
#include "util/compute_context.h"

namespace punica {

/// Per-segment weight pointers: w[i] points at an [h_in, h_out] row-major
/// fp16 matrix (the gather is by pointer indirection).
struct SgmvArgs {
  std::span<float> y;                    ///< [rows, h_out], accumulated into
  std::span<const float> x;              ///< [rows, h_in]
  std::span<const f16* const> weights;   ///< num_segments pointers
  std::span<const std::int32_t> seg;     ///< num_segments+1 offsets
  int h_in = 0;
  int h_out = 0;
};

/// Y += X @ W[seg] with the shrink (Split-K) schedule. Requires h_out to be
/// the small dimension in spirit but works for any shape. The (row,
/// partition) blocks map onto pool workers; per-partition fp32 partials
/// reduce in fixed partition order, so results are bit-identical for any
/// thread count. `scratch` (optional) backs the partials when it holds at
/// least rows · SplitKPartitions(h_in) · h_out floats — pass a reused
/// buffer on hot paths to avoid the per-call allocation; contents need not
/// be initialized and are clobbered.
void SgmvShrink(const SgmvArgs& args,
                const ComputeContext& ctx = ComputeContext::Default(),
                std::span<float> scratch = {});

/// Y += X @ W[seg] with the expand (column-split) schedule. The (row,
/// column-tile) blocks are independent and map onto pool workers.
void SgmvExpand(const SgmvArgs& args,
                const ComputeContext& ctx = ComputeContext::Default());

/// Plain reference implementation (naive loops) used as the test oracle.
void SgmvReference(const SgmvArgs& args);

/// FLOP/IO accounting from the paper's roofline analysis (§7.1):
///   FLOP = s_n · h_i · h_o · 2
///   IO   = [s_n · (h_i + h_o) + n · h_i · h_o] · 2 bytes
struct SgmvCost {
  double flop = 0.0;
  double io_bytes = 0.0;
  double arithmetic_intensity() const {
    return io_bytes > 0.0 ? flop / io_bytes : 0.0;
  }
};
SgmvCost SgmvCostOf(std::span<const std::int32_t> seg, int h_in, int h_out);

/// Number of Split-K partitions the shrink schedule uses for a given
/// reduction length (mirrors the GPU heuristic: enough partitions to fill
/// SMs, at least 1, reduction chunks of ~256). Never exceeds
/// kMaxSplitKPartitions — callers sizing shrink scratch can rely on it.
int SplitKPartitions(int h_in);
inline constexpr int kMaxSplitKPartitions = 8;

}  // namespace punica
