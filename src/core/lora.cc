#include "core/lora.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace punica {

LoraAB LoraAB::Random(int h_in, int h_out, int rank, std::uint64_t seed) {
  PUNICA_CHECK(h_in > 0 && h_out > 0 && rank > 0);
  Pcg32 rng(seed);
  LoraAB w;
  w.rank = rank;
  w.h_in = h_in;
  w.h_out = h_out;
  w.a = Tensor<f16>({h_in, rank});
  w.b = Tensor<f16>({rank, h_out});
  // Kaiming-style scale for A; B small (LoRA initialises B=0 for training,
  // but serving benchmarks need non-trivial values — paper uses random
  // weights since values do not affect latency).
  float scale_a = 1.0f / std::sqrt(static_cast<float>(h_in));
  float scale_b = 1.0f / std::sqrt(static_cast<float>(rank));
  for (auto& v : w.a.data()) {
    v = f16(static_cast<float>(rng.NextGaussian()) * scale_a);
  }
  for (auto& v : w.b.data()) {
    v = f16(static_cast<float>(rng.NextGaussian()) * scale_b);
  }
  return w;
}

void BatchedLoraAddon(std::span<float> y, std::span<const float> x,
                      std::span<const LoraAB* const> adapters,
                      std::span<const std::int32_t> seg, int h_in, int h_out,
                      std::span<float> workspace, const ComputeContext& ctx) {
  PUNICA_CHECK(!seg.empty());
  PUNICA_CHECK(adapters.size() + 1 == seg.size());
  const int rows = seg.back();
  if (rows == 0) return;

  int max_rank = 0;
  for (const auto* a : adapters) {
    if (a == nullptr) continue;
    PUNICA_CHECK_MSG(a->h_in == h_in && a->h_out == h_out,
                     "adapter shape mismatch");
    max_rank = std::max(max_rank, a->rank);
  }
  if (max_rank == 0) return;  // all segments backbone-only
  PUNICA_CHECK(workspace.size() >= static_cast<std::size_t>(rows) *
                                       static_cast<std::size_t>(max_rank));

  auto v = workspace.first(static_cast<std::size_t>(rows) *
                           static_cast<std::size_t>(max_rank));
  std::fill(v.begin(), v.end(), 0.0f);

  // Launch 1: v = x · A   (shrink). Mixed ranks are handled by padding the
  // rank dimension of v to max_rank; each segment writes only its own rank
  // columns (the GPU kernel uses per-segment rank the same way).
  std::vector<const f16*> a_ptrs(adapters.size(), nullptr);
  std::vector<const f16*> b_ptrs(adapters.size(), nullptr);
  for (std::size_t i = 0; i < adapters.size(); ++i) {
    if (adapters[i] != nullptr) {
      a_ptrs[i] = adapters[i]->a.raw();
      b_ptrs[i] = adapters[i]->b.raw();
    }
  }

  bool uniform_rank = true;
  for (const auto* a : adapters) {
    if (a != nullptr && a->rank != max_rank) uniform_rank = false;
  }

  if (uniform_rank) {
    // Workspace beyond the v rows backs the shrink's split-K partials
    // (LayerWorkspace sizes it for that); SgmvShrink allocates only when
    // the tail is too small.
    SgmvArgs shrink{v, x, a_ptrs, seg, h_in, max_rank};
    SgmvShrink(shrink, ctx, workspace.subspan(v.size()));
    SgmvArgs expand{y, v, b_ptrs, seg, max_rank, h_out};
    SgmvExpand(expand, ctx);
    return;
  }

  // Mixed ranks: run each segment as its own single-segment SGMV pair so the
  // workspace stride stays max_rank but the math uses the true rank.
  for (std::size_t i = 0; i + 1 < seg.size(); ++i) {
    const LoraAB* ad = adapters[i];
    if (ad == nullptr) continue;
    std::int32_t lo = seg[i];
    std::int32_t hi = seg[i + 1];
    int seg_rows = hi - lo;
    if (seg_rows <= 0) continue;
    std::vector<std::int32_t> sub_seg = {0, seg_rows};
    std::vector<float> sub_v(static_cast<std::size_t>(seg_rows) *
                             static_cast<std::size_t>(ad->rank));
    const f16* ap = ad->a.raw();
    const f16* bp = ad->b.raw();
    std::span<const f16* const> a_one(&ap, 1);
    std::span<const f16* const> b_one(&bp, 1);
    SgmvArgs shrink{sub_v,
                    x.subspan(static_cast<std::size_t>(lo) *
                                  static_cast<std::size_t>(h_in),
                              static_cast<std::size_t>(seg_rows) *
                                  static_cast<std::size_t>(h_in)),
                    a_one, sub_seg, h_in, ad->rank};
    // The workspace tail is big enough for any sub-segment's partials
    // (seg_rows <= rows, ad->rank <= max_rank), so no allocation here
    // either.
    SgmvShrink(shrink, ctx, workspace.subspan(v.size()));
    SgmvArgs expand{y.subspan(static_cast<std::size_t>(lo) *
                                  static_cast<std::size_t>(h_out),
                              static_cast<std::size_t>(seg_rows) *
                                  static_cast<std::size_t>(h_out)),
                    sub_v, b_one, sub_seg, ad->rank, h_out};
    SgmvExpand(expand, ctx);
  }
}

void LoraAddonSingle(std::span<float> y, std::span<const float> x,
                     const LoraAB& adapter, int rows) {
  std::vector<std::int32_t> seg = {0, rows};
  const LoraAB* ptr = &adapter;
  std::vector<float> workspace(static_cast<std::size_t>(rows) *
                               static_cast<std::size_t>(adapter.rank));
  BatchedLoraAddon(y, x, std::span<const LoraAB* const>(&ptr, 1), seg,
                   adapter.h_in, adapter.h_out, workspace);
}

SgmvCost LoraAddonCostOf(std::span<const std::int32_t> seg, int h_in,
                         int h_out, int rank) {
  SgmvCost shrink = SgmvCostOf(seg, h_in, rank);
  SgmvCost expand = SgmvCostOf(seg, rank, h_out);
  return {shrink.flop + expand.flop, shrink.io_bytes + expand.io_bytes};
}

std::size_t LoraRegistry::Put(LoraId id, LoraAB adapter) {
  std::size_t bytes = adapter.byte_size();
  auto it = adapters_.find(id);
  if (it != adapters_.end()) {
    total_bytes_ -= it->second->byte_size();
    *it->second = std::move(adapter);
  } else {
    adapters_.emplace(id, std::make_unique<LoraAB>(std::move(adapter)));
  }
  total_bytes_ += bytes;
  return bytes;
}

const LoraAB* LoraRegistry::Get(LoraId id) const {
  auto it = adapters_.find(id);
  return it == adapters_.end() ? nullptr : it->second.get();
}

std::size_t LoraRegistry::Erase(LoraId id) {
  auto it = adapters_.find(id);
  if (it == adapters_.end()) return 0;
  std::size_t bytes = it->second->byte_size();
  total_bytes_ -= bytes;
  adapters_.erase(it);
  return bytes;
}

std::vector<const LoraAB*> LoraRegistry::GatherSegmentWeights(
    const Segments& seg) const {
  std::vector<const LoraAB*> out;
  out.reserve(seg.lora_ids.size());
  for (auto id : seg.lora_ids) {
    out.push_back(Get(id));
  }
  return out;
}

}  // namespace punica
