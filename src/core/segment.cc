#include "core/segment.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "util/check.h"

namespace punica {

bool Segments::IsValid() const {
  if (offsets.size() != lora_ids.size() + 1) return false;
  if (offsets.empty() || offsets.front() != 0) return false;
  for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i + 1] <= offsets[i]) return false;  // empty or reversed
  }
  for (std::size_t i = 0; i + 1 < lora_ids.size(); ++i) {
    if (lora_ids[i] == lora_ids[i + 1]) return false;  // unmerged duplicate
  }
  return true;
}

Segments BuildSegments(std::span<const LoraId> per_row_lora_ids) {
  Segments seg;
  seg.offsets.push_back(0);
  for (std::size_t i = 0; i < per_row_lora_ids.size(); ++i) {
    if (seg.lora_ids.empty() ||
        seg.lora_ids.back() != per_row_lora_ids[i]) {
      if (!seg.lora_ids.empty()) {
        seg.offsets.push_back(static_cast<std::int32_t>(i));
      }
      seg.lora_ids.push_back(per_row_lora_ids[i]);
    }
  }
  if (!per_row_lora_ids.empty()) {
    seg.offsets.push_back(static_cast<std::int32_t>(per_row_lora_ids.size()));
  }
  PUNICA_CHECK(per_row_lora_ids.empty() || seg.IsValid());
  return seg;
}

std::vector<std::int32_t> GroupRowsByLora(std::span<const LoraId> ids) {
  // Stable bucket sort by first-appearance order of each LoRA id.
  std::unordered_map<LoraId, std::int32_t> first_seen;
  std::int32_t next_group = 0;
  std::vector<std::int32_t> group_of(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto [it, inserted] = first_seen.try_emplace(ids[i], next_group);
    if (inserted) ++next_group;
    group_of[i] = it->second;
  }
  std::vector<std::int32_t> perm(ids.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    perm[i] = static_cast<std::int32_t>(i);
  }
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::int32_t a, std::int32_t b) {
                     return group_of[static_cast<std::size_t>(a)] <
                            group_of[static_cast<std::size_t>(b)];
                   });
  return perm;
}

void PermuteRows(std::span<const float> in, std::span<float> out,
                 std::span<const std::int32_t> perm, int width) {
  PUNICA_CHECK(width > 0);
  PUNICA_CHECK(in.size() == perm.size() * static_cast<std::size_t>(width));
  PUNICA_CHECK(out.size() == in.size());
  auto w = static_cast<std::size_t>(width);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    auto src = static_cast<std::size_t>(perm[i]);
    std::memcpy(&out[i * w], &in[src * w], w * sizeof(float));
  }
}

std::vector<std::int32_t> InvertPermutation(std::span<const std::int32_t> p) {
  std::vector<std::int32_t> inv(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    auto j = static_cast<std::size_t>(p[i]);
    PUNICA_CHECK(j < p.size());
    inv[j] = static_cast<std::int32_t>(i);
  }
  return inv;
}

bool BatchLen::IsValid() const {
  if (prefill_tokens < 0 || num_decode < 0) return false;
  std::int32_t prev = -1;
  for (auto s : prefill_starts) {
    if (s < 0 || s >= prefill_tokens) return false;
    if (s <= prev) return false;
    prev = s;
  }
  if (!prefill_starts.empty() && prefill_starts.front() != 0) return false;
  if (prefill_starts.empty() && prefill_tokens != 0) return false;
  return true;
}

BatchLen BuildBatchLen(std::span<const std::int32_t> prefill_lengths,
                       int num_decode) {
  BatchLen bl;
  bl.num_decode = num_decode;
  std::int32_t cursor = 0;
  for (auto len : prefill_lengths) {
    PUNICA_CHECK_MSG(len > 0, "prefill length must be positive");
    bl.prefill_starts.push_back(cursor);
    cursor += len;
  }
  bl.prefill_tokens = cursor;
  PUNICA_CHECK(bl.IsValid());
  return bl;
}

}  // namespace punica
