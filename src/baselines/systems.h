// Behavioural models of the baseline serving systems (paper §7.2, Figs.
// 11–12) and a closed-loop text-generation simulator that drives them and
// Punica over identical traces.
//
// What each system can and cannot do (the paper's relaxations included):
//   HuggingFace Transformers + PEFT — LoRA compute, same-LoRA-only batching,
//     inseparable KvCache (a batch finishes together), no FlashAttention,
//     unfused LayerNorm, heavy per-step framework overhead.
//   DeepSpeed + PEFT — LoRA compute, same-LoRA-only batching, inseparable
//     KvCache, optimised kernels.
//   FasterTransformer (backbone-only) — no LoRA cost at all (relaxation in
//     its favour), same-model-only batching, inseparable KvCache.
//   vLLM (backbone-only) — no LoRA cost, same-model-only batching, paged
//     KvCache + continuous batching.
//   Punica — LoRA via SGMV, cross-LoRA continuous batching, paged KvCache.
// Model-switching cost is omitted for all baselines (paper relaxation).
#pragma once

#include <span>
#include <string>

#include "gpu/costmodel.h"
#include "workload/trace.h"

namespace punica {

enum class ServingSystem {
  kHuggingFace,
  kDeepSpeed,
  kFasterTransformer,
  kVllm,
  kPunica,
};

inline constexpr ServingSystem kAllServingSystems[] = {
    ServingSystem::kHuggingFace, ServingSystem::kDeepSpeed,
    ServingSystem::kFasterTransformer, ServingSystem::kVllm,
    ServingSystem::kPunica};

struct SystemTraits {
  std::string name;
  bool lora_compute = false;       ///< pays per-layer LoRA addon cost
  bool cross_lora_batching = false;
  bool continuous_batching = false;  ///< separable KvCache
  bool prefix_sharing = false;  ///< ref-counted paged KvCache with a prefix
                                ///< index (Punica); effective only when the
                                ///< TextGenConfig opts in AND the trace
                                ///< carries shared prefixes
  double attn_inefficiency = 1.0;  ///< ×on attention (no FlashAttention etc.)
  double extra_layer_overhead_s = 0.0;  ///< unfused elementwise ops
  double step_overhead_s = 4e-3;   ///< per-invocation framework overhead
};

SystemTraits TraitsOf(ServingSystem system);

struct TextGenConfig {
  int max_batch_size = 32;  ///< paper: 32 for all systems
  int lora_rank = 16;
  int tp_degree = 1;
  int prefill_limit = 1;    ///< prefills per invocation (continuous systems)
  bool prefix_cache = false;  ///< shared-prefix reuse on capable systems
  /// Chunked-prefill step token budget (0 = unlimited) on continuous
  /// systems: decodes always all run; pending prefills consume what
  /// remains of the budget FCFS as chunks (runtime/chunking.h — the same
  /// split the Engine and GpuRunner step with). Bounds the decode stall a
  /// long prompt can inject.
  std::int64_t max_step_tokens = 0;
};

struct TextGenResult {
  std::string system;
  double makespan_s = 0.0;
  std::int64_t tokens_generated = 0;
  double throughput_tok_s = 0.0;
  std::int64_t invocations = 0;
  double mean_decode_batch = 0.0;  ///< the paper's "batch sizes (1–3)" claim
  std::int64_t wasted_decode_slots = 0;  ///< inseparable-KvCache padding
                                         ///< rows (Fig. 6's waste)
  std::int64_t prefill_tokens = 0;       ///< prefill rows actually computed
  std::int64_t prefill_tokens_saved = 0; ///< skipped via shared prefixes
  /// Inter-token latency over every consecutive same-request emission pair
  /// (the decode-stall distribution a long prefill inflates; continuous
  /// systems only — 0 when fewer than 2 samples).
  double mean_inter_token_s = 0.0;
  double p95_inter_token_s = 0.0;
  double max_inter_token_s = 0.0;
  /// SLO view (continuous systems only): TTFT and admission wait are dated
  /// from each request's *arrival time*, so open-loop traces charge the
  /// time spent waiting to join the working set. Closed-loop traces (all
  /// arrivals at 0) date from the start of the run — the FCFS queueing
  /// delay — which is why these are quantiles, not means alone.
  double ttft_p50_s = 0.0;
  double ttft_p95_s = 0.0;
  double queue_wait_mean_s = 0.0;  ///< admission − arrival
};

/// Closed-loop single-server simulation: all requests available at t=0,
/// FCFS, max batch 32. One GPU unless cfg.tp_degree > 1 (then one model
/// replica sharded over tp GPUs, as in Fig. 12).
TextGenResult SimulateTextGen(ServingSystem system,
                              std::span<const TraceRequest> trace,
                              const LlamaConfig& model, const CostModel& cm,
                              const TextGenConfig& cfg = {});

/// Step latency assembly shared by the simulator: cost-model roofline plus
/// the system's inefficiency deltas.
double SystemStepLatency(const SystemTraits& traits, const LlamaConfig& model,
                         const CostModel& cm, const StepShape& shape);

}  // namespace punica
