#include "baselines/lora_ops.h"

#include <algorithm>
#include <vector>

#include "tensor/gemm.h"
#include "util/check.h"

namespace punica {

void LoopLoraApply(std::span<float> y, std::span<const float> x,
                   std::span<const LoraAB* const> adapters,
                   std::span<const std::int32_t> seg, int h_in, int h_out) {
  PUNICA_CHECK(!seg.empty());
  PUNICA_CHECK(adapters.size() + 1 == seg.size());
  for (std::size_t i = 0; i + 1 < seg.size(); ++i) {
    const LoraAB* ad = adapters[i];
    if (ad == nullptr) continue;
    PUNICA_CHECK(ad->h_in == h_in && ad->h_out == h_out);
    int lo = seg[i];
    int rows = seg[i + 1] - lo;
    if (rows <= 0) continue;
    auto x_seg = x.subspan(static_cast<std::size_t>(lo) *
                               static_cast<std::size_t>(h_in),
                           static_cast<std::size_t>(rows) *
                               static_cast<std::size_t>(h_in));
    auto y_seg = y.subspan(static_cast<std::size_t>(lo) *
                               static_cast<std::size_t>(h_out),
                           static_cast<std::size_t>(rows) *
                               static_cast<std::size_t>(h_out));
    std::vector<float> v(static_cast<std::size_t>(rows) *
                         static_cast<std::size_t>(ad->rank));
    GemmAccF16W(x_seg, ad->a.data(), v, rows, h_in, ad->rank);
    GemmAccF16W(v, ad->b.data(), y_seg, rows, ad->rank, h_out);
  }
}

void GatherBmmLoraApply(std::span<float> y, std::span<const float> x,
                        std::span<const LoraAB* const> adapters,
                        std::span<const std::int32_t> seg, int h_in,
                        int h_out, GatherBmmStats* stats) {
  PUNICA_CHECK(!seg.empty());
  PUNICA_CHECK(adapters.size() + 1 == seg.size());
  const int rows = seg.back();
  if (rows == 0) return;
  int rank = 0;
  for (const auto* ad : adapters) {
    if (ad != nullptr) {
      PUNICA_CHECK_MSG(rank == 0 || ad->rank == rank,
                       "Gather-BMM baseline assumes uniform rank");
      rank = ad->rank;
    }
  }
  if (rank == 0) return;

  // Gather phase 1: stack per-row copies of A ([rows, h_in, rank]).
  std::vector<f16> stacked_a(static_cast<std::size_t>(rows) *
                             static_cast<std::size_t>(h_in) *
                             static_cast<std::size_t>(rank));
  // Gather phase 2 target: stacked B ([rows, rank, h_out]).
  std::vector<f16> stacked_b(static_cast<std::size_t>(rows) *
                             static_cast<std::size_t>(rank) *
                             static_cast<std::size_t>(h_out));
  std::vector<bool> has_adapter(static_cast<std::size_t>(rows), false);
  for (std::size_t i = 0; i + 1 < seg.size(); ++i) {
    const LoraAB* ad = adapters[i];
    if (ad == nullptr) continue;
    for (std::int32_t r = seg[i]; r < seg[i + 1]; ++r) {
      auto ri = static_cast<std::size_t>(r);
      has_adapter[ri] = true;
      std::copy(ad->a.data().begin(), ad->a.data().end(),
                stacked_a.begin() + static_cast<std::ptrdiff_t>(
                                        ri * ad->a.numel()));
      std::copy(ad->b.data().begin(), ad->b.data().end(),
                stacked_b.begin() + static_cast<std::ptrdiff_t>(
                                        ri * ad->b.numel()));
    }
  }

  if (stats != nullptr) {
    double n = 0.0;
    for (const auto* ad : adapters) {
      if (ad != nullptr) n += 1.0;
    }
    double per_model =
        (static_cast<double>(h_in) * rank + static_cast<double>(rank) * h_out) *
        2.0;
    stats->gather_read_bytes = n * per_model;
    stats->gather_write_bytes = static_cast<double>(rows) * per_model;
    stats->bmm_weight_read_bytes = stats->gather_write_bytes;
  }

  // BMM 1: v[r] = x[r] · A_stack[r];  BMM 2: y[r] += v[r] · B_stack[r].
  std::vector<float> v(static_cast<std::size_t>(rank));
  for (int r = 0; r < rows; ++r) {
    auto ri = static_cast<std::size_t>(r);
    if (!has_adapter[ri]) continue;
    std::fill(v.begin(), v.end(), 0.0f);
    auto x_row = x.subspan(ri * static_cast<std::size_t>(h_in),
                           static_cast<std::size_t>(h_in));
    std::span<const f16> a_row(&stacked_a[ri * static_cast<std::size_t>(h_in) *
                                          static_cast<std::size_t>(rank)],
                               static_cast<std::size_t>(h_in) *
                                   static_cast<std::size_t>(rank));
    GemvAccF16W(x_row, a_row, v, h_in, rank);
    auto y_row = y.subspan(ri * static_cast<std::size_t>(h_out),
                           static_cast<std::size_t>(h_out));
    std::span<const f16> b_row(&stacked_b[ri * static_cast<std::size_t>(rank) *
                                          static_cast<std::size_t>(h_out)],
                               static_cast<std::size_t>(rank) *
                                   static_cast<std::size_t>(h_out));
    GemvAccF16W(v, b_row, y_row, rank, h_out);
  }
}

namespace {

double SumRows(std::span<const std::int32_t> segment_rows) {
  double sn = 0.0;
  for (auto r : segment_rows) sn += r;
  return sn;
}

double CountSegments(std::span<const std::int32_t> segment_rows) {
  double n = 0.0;
  for (auto r : segment_rows) {
    if (r > 0) n += 1.0;
  }
  return n;
}

}  // namespace

double LoopLoraLatency(const CostModel& cm,
                       std::span<const std::int32_t> segment_rows, int h_in,
                       int h_out, int rank) {
  // Each LoRA model runs as its own kernel pair at its own batch size; the
  // per-pair launch overhead is paid n times — why Loop "behaves terribly"
  // in the Distinct case.
  double total = 0.0;
  for (auto rows : segment_rows) {
    if (rows <= 0) continue;
    std::int32_t one[] = {rows};
    total += cm.SgmvPairLatency(one, h_in, h_out, rank);
  }
  return total;
}

double GatherOnlyLatency(const CostModel& cm,
                         std::span<const std::int32_t> segment_rows, int h_in,
                         int h_out, int rank) {
  double sn = SumRows(segment_rows);
  double n = CountSegments(segment_rows);
  if (sn == 0.0 || n == 0.0) return 0.0;
  double per_model =
      (static_cast<double>(h_in) * rank + static_cast<double>(rank) * h_out) *
      2.0;
  // Gather reads each distinct model once and writes one copy per row.
  // torch-style gather achieves a fraction of peak bandwidth on this
  // scatter-copy pattern.
  double bytes = n * per_model + sn * per_model;
  constexpr double kGatherBwEff = 0.35;
  return 2.0 * cm.params().kernel_launch_s +
         bytes / (cm.gpu().hbm_bytes_per_s * kGatherBwEff);
}

double BmmOnlyLatency(const CostModel& cm,
                      std::span<const std::int32_t> segment_rows, int h_in,
                      int h_out, int rank) {
  double sn = SumRows(segment_rows);
  if (sn == 0.0) return 0.0;
  double per_model =
      (static_cast<double>(h_in) * rank + static_cast<double>(rank) * h_out) *
      2.0;
  // BMM must re-read the s_n stacked matrices Gather just wrote (weight
  // reuse is gone), plus activations; per-matrix batch size is 1 so tensor
  // cores are idle — but the reads are contiguous, so bandwidth is decent.
  double act_bytes = sn * (h_in + 2.0 * rank + h_out) * 2.0;
  double bytes = sn * per_model + act_bytes;
  double flop = sn * (static_cast<double>(h_in) * rank +
                      static_cast<double>(rank) * h_out) *
                2.0;
  double mem = bytes / (cm.gpu().hbm_bytes_per_s * 0.75);
  double compute = flop / (cm.gpu().fp16_flops * 0.05);  // no tensor cores
  return 2.0 * cm.params().kernel_launch_s + std::max(mem, compute);
}

double GatherBmmLoraLatency(const CostModel& cm,
                            std::span<const std::int32_t> segment_rows,
                            int h_in, int h_out, int rank) {
  return GatherOnlyLatency(cm, segment_rows, h_in, h_out, rank) +
         BmmOnlyLatency(cm, segment_rows, h_in, h_out, rank) +
         cm.params().sgmv_pair_overhead_s;  // same host-side pairing cost
}

}  // namespace punica
