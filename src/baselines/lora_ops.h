// Baseline implementations of the batched LoRA operator (paper §7.1,
// Fig. 8): a Python-style Loop over LoRA models and Gather-BMM (stack each
// row's weight matrices, then batched matmul). Both compute exactly the same
// result as the SGMV-based operator — the equivalence is tested — but with
// very different IO behaviour, which the latency models quantify.
#pragma once

#include <cstdint>
#include <span>

#include "core/lora.h"
#include "gpu/costmodel.h"

namespace punica {

/// Loop baseline: one independent (dense) A·B application per segment —
/// semantically a for-loop over LoRA models, each running at its own small
/// batch size.
void LoopLoraApply(std::span<float> y, std::span<const float> x,
                   std::span<const LoraAB* const> adapters,
                   std::span<const std::int32_t> seg, int h_in, int h_out);

/// Gather-BMM baseline IO accounting.
struct GatherBmmStats {
  double gather_read_bytes = 0.0;   ///< n · (h_i·r + r·h_o) · 2
  double gather_write_bytes = 0.0;  ///< s_n · (h_i·r + r·h_o) · 2
  double bmm_weight_read_bytes = 0.0;  ///< equal to gather_write_bytes
};

/// Gather-BMM baseline: materialises a stacked per-row weight tensor
/// (the Gather), then performs a batched matrix multiplication per row
/// (torch.bmm semantics). Gather+BMM run twice (A then B).
void GatherBmmLoraApply(std::span<float> y, std::span<const float> x,
                        std::span<const LoraAB* const> adapters,
                        std::span<const std::int32_t> seg, int h_in, int h_out,
                        GatherBmmStats* stats = nullptr);

// --- A100 latency models (Fig. 8 projection) ---

/// Loop: per-segment kernel-pair launches, each at the segment's batch size.
double LoopLoraLatency(const CostModel& cm,
                       std::span<const std::int32_t> segment_rows, int h_in,
                       int h_out, int rank);

/// Gather-BMM: two Gather launches + two BMM launches; Gather writes
/// (and BMM re-reads) s_n stacked matrices — the s_n·h_i·h_o·2-element IO
/// overhead the paper calls out versus SGMV.
double GatherBmmLoraLatency(const CostModel& cm,
                            std::span<const std::int32_t> segment_rows,
                            int h_in, int h_out, int rank);

/// The Gather step alone and the BMM step alone (the reference curves the
/// paper plots alongside).
double GatherOnlyLatency(const CostModel& cm,
                         std::span<const std::int32_t> segment_rows, int h_in,
                         int h_out, int rank);
double BmmOnlyLatency(const CostModel& cm,
                      std::span<const std::int32_t> segment_rows, int h_in,
                      int h_out, int rank);

}  // namespace punica
