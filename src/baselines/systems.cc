#include "baselines/systems.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <vector>

#include "runtime/chunking.h"
#include "util/check.h"
#include "util/stats.h"

namespace punica {

SystemTraits TraitsOf(ServingSystem system) {
  switch (system) {
    case ServingSystem::kHuggingFace:
      // No FlashAttention (≈3× attention cost including the KvCache
      // concatenation rewrite), unfused LayerNorm (+2·~105 µs per layer),
      // Python-heavy per-step driver.
      return {.name = "HuggingFace Transformers",
              .lora_compute = true,
              .cross_lora_batching = false,
              .continuous_batching = false,
              .attn_inefficiency = 3.0,
              .extra_layer_overhead_s = 210e-6,
              .step_overhead_s = 15e-3};
    case ServingSystem::kDeepSpeed:
      return {.name = "DeepSpeed",
              .lora_compute = true,
              .cross_lora_batching = false,
              .continuous_batching = false,
              .attn_inefficiency = 1.0,
              .extra_layer_overhead_s = 0.0,
              .step_overhead_s = 5e-3};
    case ServingSystem::kFasterTransformer:
      return {.name = "FasterTransformer (backbone-only)",
              .lora_compute = false,
              .cross_lora_batching = false,
              .continuous_batching = false,
              .attn_inefficiency = 1.0,
              .extra_layer_overhead_s = 0.0,
              .step_overhead_s = 3e-3};
    case ServingSystem::kVllm:
      return {.name = "vLLM (backbone-only)",
              .lora_compute = false,
              .cross_lora_batching = false,
              .continuous_batching = true,
              .attn_inefficiency = 1.0,
              .extra_layer_overhead_s = 0.0,
              .step_overhead_s = 4e-3};
    case ServingSystem::kPunica:
      return {.name = "Punica",
              .lora_compute = true,
              .cross_lora_batching = true,
              .continuous_batching = true,
              .prefix_sharing = true,
              .attn_inefficiency = 1.0,
              .extra_layer_overhead_s = 0.0,
              .step_overhead_s = 4e-3};
  }
  PUNICA_CHECK_MSG(false, "unknown system");
  return {};
}

double SystemStepLatency(const SystemTraits& traits, const LlamaConfig& model,
                         const CostModel& cm, const StepShape& shape) {
  double base = cm.StepLatency(model, shape);
  // Attention inefficiency and unfused-op overheads apply per layer.
  double deltas = 0.0;
  if (traits.attn_inefficiency > 1.0) {
    double attn =
        cm.AttentionPrefillLatency(model, shape.prefill_chunks,
                                   shape.prefill_kv_lens, shape.tp_degree) +
        cm.AttentionDecodeLatency(model, shape.decode_kv_lens,
                                  shape.tp_degree);
    deltas += (traits.attn_inefficiency - 1.0) * attn * model.num_layers;
  }
  deltas += traits.extra_layer_overhead_s * model.num_layers;
  deltas += traits.step_overhead_s - cm.params().step_overhead_s;
  return base + deltas;
}

namespace {

struct SimRequest {
  const TraceRequest* req;
  std::int64_t kv_len = 0;  ///< resident tokens (aliased prefix + chunks)
  std::int32_t generated = 0;
  bool prefilled = false;
  std::int32_t prefix_hit = 0;  ///< prompt tokens served by a shared prefix
  double admit_time = 0.0;  ///< when the request joined the working set
  double last_emit = -1.0;  ///< completion time of the latest emitted token
  bool Done() const { return generated >= req->output_len; }
};

/// One prefill chunk of a step shape: `chunk` token rows attending over
/// `kv_len` cache positions (the causal-span term the cost model prices for
/// prefix hits and budget chunks alike).
struct PrefillChunkShape {
  std::int32_t chunk = 0;
  std::int64_t kv_len = 0;
  LoraId lora = 0;
};

StepShape MakeShape(const SystemTraits& traits, const TextGenConfig& cfg,
                    std::span<const PrefillChunkShape> prefills,
                    std::span<const SimRequest* const> decodes) {
  StepShape shape;
  shape.tp_degree = cfg.tp_degree;
  shape.lora_rank = cfg.lora_rank;
  std::unordered_map<LoraId, std::int32_t> rows_by_lora;
  for (const PrefillChunkShape& p : prefills) {
    shape.prefill_chunks.push_back(p.chunk);
    shape.prefill_kv_lens.push_back(p.kv_len);
    rows_by_lora[p.lora] += p.chunk;
  }
  for (const SimRequest* s : decodes) {
    shape.decode_kv_lens.push_back(s->kv_len + 1);
    rows_by_lora[s->req->lora_id] += 1;
  }
  if (traits.lora_compute) {
    for (const auto& [lora, rows] : rows_by_lora) {
      shape.lora_segment_rows.push_back(rows);
    }
  }
  return shape;
}

/// Fills the inter-token latency digest from the collected emission gaps.
/// LatencyRecorder quantiles share util/stats Percentile, so every tail
/// metric in the codebase uses one definition.
void FinishInterTokenStats(const LatencyRecorder& itl, TextGenResult& result) {
  if (itl.empty()) return;
  result.mean_inter_token_s = itl.mean();
  result.p95_inter_token_s = itl.p95();
  result.max_inter_token_s = itl.max();
}

/// Batch-to-completion systems (HF / DeepSpeed / FasterTransformer):
/// consecutive same-LoRA FCFS run forms a batch; the batch prefills together
/// and decodes until *every* member reaches its stop (inseparable KvCache —
/// shorter requests burn wasted slots, Fig. 6).
TextGenResult SimulateBatchToCompletion(const SystemTraits& traits,
                                        std::span<const TraceRequest> trace,
                                        const LlamaConfig& model,
                                        const CostModel& cm,
                                        const TextGenConfig& cfg) {
  TextGenResult result;
  result.system = traits.name;
  double t = 0.0;
  std::size_t idx = 0;
  RunningStat decode_batch;
  while (idx < trace.size()) {
    // Same-LoRA FCFS prefix (baselines cannot batch across LoRA models).
    std::vector<SimRequest> batch;
    LoraId lora = trace[idx].lora_id;
    while (idx < trace.size() && trace[idx].lora_id == lora &&
           static_cast<int>(batch.size()) < cfg.max_batch_size) {
      batch.push_back(SimRequest{&trace[idx]});
      ++idx;
    }

    // Batched prefill (one invocation; these systems prefill whole batches).
    {
      std::vector<PrefillChunkShape> prefills;
      for (auto& s : batch) {
        prefills.push_back({.chunk = s.req->prompt_len,
                            .kv_len = s.req->prompt_len,
                            .lora = s.req->lora_id});
      }
      StepShape shape = MakeShape(traits, cfg, prefills, {});
      t += SystemStepLatency(traits, model, cm, shape);
      ++result.invocations;
      for (auto& s : batch) {
        s.prefilled = true;
        s.kv_len = s.req->prompt_len;
        s.generated = 1;
        ++result.tokens_generated;
        result.prefill_tokens += s.req->prompt_len;
      }
    }

    // Decode until the longest member finishes; everyone stays in the batch.
    std::int32_t max_out = 0;
    for (const auto& s : batch) max_out = std::max(max_out, s.req->output_len);
    for (std::int32_t step = 1; step < max_out; ++step) {
      std::vector<const SimRequest*> decodes;
      for (auto& s : batch) decodes.push_back(&s);
      StepShape shape = MakeShape(traits, cfg, {}, decodes);
      t += SystemStepLatency(traits, model, cm, shape);
      ++result.invocations;
      int active = 0;
      for (auto& s : batch) {
        s.kv_len += 1;  // padding rows still consume compute and KvCache
        if (!s.Done()) {
          s.generated += 1;
          ++result.tokens_generated;
          ++active;
        } else {
          ++result.wasted_decode_slots;
        }
      }
      decode_batch.Add(static_cast<double>(batch.size()));
      (void)active;
    }
  }
  result.makespan_s = t;
  result.throughput_tok_s =
      static_cast<double>(result.tokens_generated) / std::max(t, 1e-12);
  result.mean_decode_batch = decode_batch.count() > 0 ? decode_batch.mean()
                                                      : 0.0;
  return result;
}

/// Continuous-batching systems (vLLM / Punica): separable paged KvCache;
/// requests join and leave the working set independently. vLLM still only
/// batches one LoRA "model" at a time; Punica batches across LoRA models.
TextGenResult SimulateContinuous(const SystemTraits& traits,
                                 std::span<const TraceRequest> trace,
                                 const LlamaConfig& model, const CostModel& cm,
                                 const TextGenConfig& cfg) {
  TextGenResult result;
  result.system = traits.name;
  double t = 0.0;
  std::size_t idx = 0;
  std::deque<SimRequest> working;
  RunningStat decode_batch;
  // Shared-prefix cache: tenant groups whose system prompt is resident.
  // The closed-loop simulator has no KvCache capacity limit, so entries
  // are never evicted — the single-GPU counterpart of the page-level LRU.
  const bool share = traits.prefix_sharing && cfg.prefix_cache;
  std::unordered_map<std::int64_t, std::int32_t> cached;

  auto can_admit_lora = [&](LoraId lora) {
    if (traits.cross_lora_batching) return true;
    for (const auto& s : working) {
      if (s.req->lora_id != lora) return false;
    }
    return true;
  };

  LatencyRecorder itl;         ///< inter-token emission gaps
  LatencyRecorder ttft;        ///< first token − arrival
  LatencyRecorder queue_wait;  ///< admission − arrival

  while (idx < trace.size() || !working.empty()) {
    // Open-loop traces: a request only exists once it has arrived. When the
    // server drains ahead of the next arrival, fast-forward the clock to it
    // (closed-loop traces all arrive at 0, so this never fires there).
    if (working.empty() && idx < trace.size()) {
      t = std::max(t, trace[idx].arrival_time);
    }
    // Admit FCFS while the head has arrived, is compatible and the batch
    // has room.
    while (idx < trace.size() && trace[idx].arrival_time <= t &&
           static_cast<int>(working.size()) < cfg.max_batch_size &&
           can_admit_lora(trace[idx].lora_id)) {
      working.push_back(SimRequest{&trace[idx]});
      working.back().admit_time = t;
      queue_wait.Add(t - trace[idx].arrival_time);
      ++idx;
    }
    PUNICA_CHECK(!working.empty());

    // One invocation: up to prefill_limit prefills + all decodes, the
    // prefills chunked under the step token budget (a mid-prefill request
    // resumes at kv_len; a fresh one starts at its prefix hit).
    std::vector<SimRequest*> prefills;
    std::vector<SimRequest*> decodes;
    for (auto& s : working) {
      if (!s.prefilled &&
          static_cast<int>(prefills.size()) < cfg.prefill_limit) {
        prefills.push_back(&s);
      } else if (s.prefilled) {
        decodes.push_back(&s);
      }
    }
    // Resolve prefix hits at prefill time (a group-mate's earlier prefill
    // may have registered the prefix since this request arrived); committed
    // to the request only when its first chunk actually runs.
    std::vector<std::int32_t> hits(prefills.size(), 0);
    std::vector<std::int64_t> remaining;
    for (std::size_t i = 0; i < prefills.size(); ++i) {
      SimRequest* s = prefills[i];
      if (s->kv_len == 0 && share && s->req->prefix_group >= 0 &&
          s->req->shared_prefix_len > 0) {
        auto it = cached.find(s->req->prefix_group);
        if (it != cached.end()) {
          hits[i] = std::min({it->second, s->req->shared_prefix_len,
                              s->req->prompt_len - 1});
        }
      }
      std::int64_t start = s->kv_len == 0 ? hits[i] : s->kv_len;
      remaining.push_back(s->req->prompt_len - start);
    }
    std::vector<std::int64_t> chunks = SplitPrefillChunks(
        remaining, static_cast<std::int64_t>(decodes.size()),
        cfg.max_step_tokens);

    std::vector<PrefillChunkShape> chunk_shapes;
    for (std::size_t i = 0; i < prefills.size(); ++i) {
      if (chunks[i] == 0) continue;  // budget-deferred this step
      std::int64_t start =
          prefills[i]->kv_len == 0 ? hits[i] : prefills[i]->kv_len;
      chunk_shapes.push_back(
          {.chunk = static_cast<std::int32_t>(chunks[i]),
           .kv_len = start + chunks[i],
           .lora = prefills[i]->req->lora_id});
    }
    StepShape shape = MakeShape(traits, cfg, chunk_shapes, decodes);
    t += SystemStepLatency(traits, model, cm, shape);
    ++result.invocations;
    if (!decodes.empty()) {
      decode_batch.Add(static_cast<double>(decodes.size()));
    }

    for (std::size_t i = 0; i < prefills.size(); ++i) {
      if (chunks[i] == 0) continue;
      SimRequest& s = *prefills[i];
      bool first_chunk = s.kv_len == 0;
      if (first_chunk) {
        s.prefix_hit = hits[i];
        result.prefill_tokens_saved += s.prefix_hit;
      }
      std::int64_t start = first_chunk ? hits[i] : s.kv_len;
      s.kv_len = start + chunks[i];
      result.prefill_tokens += chunks[i];
      if (s.kv_len < s.req->prompt_len) continue;  // mid-prefill
      s.prefilled = true;
      s.generated = 1;
      ++result.tokens_generated;
      s.last_emit = t;  // first token: no gap sample yet
      ttft.Add(t - s.req->arrival_time);
      if (share && s.req->prefix_group >= 0 && s.req->shared_prefix_len > 0) {
        cached.try_emplace(s.req->prefix_group, s.req->shared_prefix_len);
      }
    }
    for (SimRequest* s : decodes) {
      s->kv_len += 1;
      s->generated += 1;
      ++result.tokens_generated;
      if (s->last_emit >= 0.0) itl.Add(t - s->last_emit);
      s->last_emit = t;
    }
    // Continuous batching: finished requests leave immediately.
    std::erase_if(working, [](const SimRequest& s) { return s.Done(); });
  }
  result.makespan_s = t;
  result.throughput_tok_s =
      static_cast<double>(result.tokens_generated) / std::max(t, 1e-12);
  result.mean_decode_batch = decode_batch.count() > 0 ? decode_batch.mean()
                                                      : 0.0;
  FinishInterTokenStats(itl, result);
  result.ttft_p50_s = ttft.p50();
  result.ttft_p95_s = ttft.p95();
  result.queue_wait_mean_s = queue_wait.mean();
  return result;
}

}  // namespace

TextGenResult SimulateTextGen(ServingSystem system,
                              std::span<const TraceRequest> trace,
                              const LlamaConfig& model, const CostModel& cm,
                              const TextGenConfig& cfg) {
  PUNICA_CHECK(!trace.empty());
  SystemTraits traits = TraitsOf(system);
  if (traits.continuous_batching) {
    return SimulateContinuous(traits, trace, model, cm, cfg);
  }
  return SimulateBatchToCompletion(traits, trace, model, cm, cfg);
}

}  // namespace punica
