#include "baselines/systems.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <vector>

#include "util/check.h"
#include "util/stats.h"

namespace punica {

SystemTraits TraitsOf(ServingSystem system) {
  switch (system) {
    case ServingSystem::kHuggingFace:
      // No FlashAttention (≈3× attention cost including the KvCache
      // concatenation rewrite), unfused LayerNorm (+2·~105 µs per layer),
      // Python-heavy per-step driver.
      return {.name = "HuggingFace Transformers",
              .lora_compute = true,
              .cross_lora_batching = false,
              .continuous_batching = false,
              .attn_inefficiency = 3.0,
              .extra_layer_overhead_s = 210e-6,
              .step_overhead_s = 15e-3};
    case ServingSystem::kDeepSpeed:
      return {.name = "DeepSpeed",
              .lora_compute = true,
              .cross_lora_batching = false,
              .continuous_batching = false,
              .attn_inefficiency = 1.0,
              .extra_layer_overhead_s = 0.0,
              .step_overhead_s = 5e-3};
    case ServingSystem::kFasterTransformer:
      return {.name = "FasterTransformer (backbone-only)",
              .lora_compute = false,
              .cross_lora_batching = false,
              .continuous_batching = false,
              .attn_inefficiency = 1.0,
              .extra_layer_overhead_s = 0.0,
              .step_overhead_s = 3e-3};
    case ServingSystem::kVllm:
      return {.name = "vLLM (backbone-only)",
              .lora_compute = false,
              .cross_lora_batching = false,
              .continuous_batching = true,
              .attn_inefficiency = 1.0,
              .extra_layer_overhead_s = 0.0,
              .step_overhead_s = 4e-3};
    case ServingSystem::kPunica:
      return {.name = "Punica",
              .lora_compute = true,
              .cross_lora_batching = true,
              .continuous_batching = true,
              .prefix_sharing = true,
              .attn_inefficiency = 1.0,
              .extra_layer_overhead_s = 0.0,
              .step_overhead_s = 4e-3};
  }
  PUNICA_CHECK_MSG(false, "unknown system");
  return {};
}

double SystemStepLatency(const SystemTraits& traits, const LlamaConfig& model,
                         const CostModel& cm, const StepShape& shape) {
  double base = cm.StepLatency(model, shape);
  // Attention inefficiency and unfused-op overheads apply per layer.
  double deltas = 0.0;
  if (traits.attn_inefficiency > 1.0) {
    double attn =
        cm.AttentionPrefillLatency(model, shape.prefill_chunks,
                                   shape.prefill_kv_lens, shape.tp_degree) +
        cm.AttentionDecodeLatency(model, shape.decode_kv_lens,
                                  shape.tp_degree);
    deltas += (traits.attn_inefficiency - 1.0) * attn * model.num_layers;
  }
  deltas += traits.extra_layer_overhead_s * model.num_layers;
  deltas += traits.step_overhead_s - cm.params().step_overhead_s;
  return base + deltas;
}

namespace {

struct SimRequest {
  const TraceRequest* req;
  std::int64_t kv_len = 0;
  std::int32_t generated = 0;
  bool prefilled = false;
  std::int32_t prefix_hit = 0;  ///< prompt tokens served by a shared prefix
  bool Done() const { return generated >= req->output_len; }
};

StepShape MakeShape(const SystemTraits& traits, const TextGenConfig& cfg,
                    std::span<const SimRequest* const> prefills,
                    std::span<const SimRequest* const> decodes) {
  StepShape shape;
  shape.tp_degree = cfg.tp_degree;
  shape.lora_rank = cfg.lora_rank;
  std::unordered_map<LoraId, std::int32_t> rows_by_lora;
  for (const SimRequest* s : prefills) {
    // A shared-prefix hit prefills only the uncached suffix; attention
    // still spans the whole prompt (the cost model's prefix-hit term).
    shape.prefill_chunks.push_back(s->req->prompt_len - s->prefix_hit);
    shape.prefill_kv_lens.push_back(s->req->prompt_len);
    rows_by_lora[s->req->lora_id] += s->req->prompt_len - s->prefix_hit;
  }
  for (const SimRequest* s : decodes) {
    shape.decode_kv_lens.push_back(s->kv_len + 1);
    rows_by_lora[s->req->lora_id] += 1;
  }
  if (traits.lora_compute) {
    for (const auto& [lora, rows] : rows_by_lora) {
      shape.lora_segment_rows.push_back(rows);
    }
  }
  return shape;
}

/// Batch-to-completion systems (HF / DeepSpeed / FasterTransformer):
/// consecutive same-LoRA FCFS run forms a batch; the batch prefills together
/// and decodes until *every* member reaches its stop (inseparable KvCache —
/// shorter requests burn wasted slots, Fig. 6).
TextGenResult SimulateBatchToCompletion(const SystemTraits& traits,
                                        std::span<const TraceRequest> trace,
                                        const LlamaConfig& model,
                                        const CostModel& cm,
                                        const TextGenConfig& cfg) {
  TextGenResult result;
  result.system = traits.name;
  double t = 0.0;
  std::size_t idx = 0;
  RunningStat decode_batch;
  while (idx < trace.size()) {
    // Same-LoRA FCFS prefix (baselines cannot batch across LoRA models).
    std::vector<SimRequest> batch;
    LoraId lora = trace[idx].lora_id;
    while (idx < trace.size() && trace[idx].lora_id == lora &&
           static_cast<int>(batch.size()) < cfg.max_batch_size) {
      batch.push_back(SimRequest{&trace[idx]});
      ++idx;
    }

    // Batched prefill (one invocation; these systems prefill whole batches).
    {
      std::vector<const SimRequest*> prefills;
      for (auto& s : batch) prefills.push_back(&s);
      StepShape shape = MakeShape(traits, cfg, prefills, {});
      t += SystemStepLatency(traits, model, cm, shape);
      ++result.invocations;
      for (auto& s : batch) {
        s.prefilled = true;
        s.kv_len = s.req->prompt_len;
        s.generated = 1;
        ++result.tokens_generated;
        result.prefill_tokens += s.req->prompt_len;
      }
    }

    // Decode until the longest member finishes; everyone stays in the batch.
    std::int32_t max_out = 0;
    for (const auto& s : batch) max_out = std::max(max_out, s.req->output_len);
    for (std::int32_t step = 1; step < max_out; ++step) {
      std::vector<const SimRequest*> decodes;
      for (auto& s : batch) decodes.push_back(&s);
      StepShape shape = MakeShape(traits, cfg, {}, decodes);
      t += SystemStepLatency(traits, model, cm, shape);
      ++result.invocations;
      int active = 0;
      for (auto& s : batch) {
        s.kv_len += 1;  // padding rows still consume compute and KvCache
        if (!s.Done()) {
          s.generated += 1;
          ++result.tokens_generated;
          ++active;
        } else {
          ++result.wasted_decode_slots;
        }
      }
      decode_batch.Add(static_cast<double>(batch.size()));
      (void)active;
    }
  }
  result.makespan_s = t;
  result.throughput_tok_s =
      static_cast<double>(result.tokens_generated) / std::max(t, 1e-12);
  result.mean_decode_batch = decode_batch.count() > 0 ? decode_batch.mean()
                                                      : 0.0;
  return result;
}

/// Continuous-batching systems (vLLM / Punica): separable paged KvCache;
/// requests join and leave the working set independently. vLLM still only
/// batches one LoRA "model" at a time; Punica batches across LoRA models.
TextGenResult SimulateContinuous(const SystemTraits& traits,
                                 std::span<const TraceRequest> trace,
                                 const LlamaConfig& model, const CostModel& cm,
                                 const TextGenConfig& cfg) {
  TextGenResult result;
  result.system = traits.name;
  double t = 0.0;
  std::size_t idx = 0;
  std::deque<SimRequest> working;
  RunningStat decode_batch;
  // Shared-prefix cache: tenant groups whose system prompt is resident.
  // The closed-loop simulator has no KvCache capacity limit, so entries
  // are never evicted — the single-GPU counterpart of the page-level LRU.
  const bool share = traits.prefix_sharing && cfg.prefix_cache;
  std::unordered_map<std::int64_t, std::int32_t> cached;

  auto can_admit_lora = [&](LoraId lora) {
    if (traits.cross_lora_batching) return true;
    for (const auto& s : working) {
      if (s.req->lora_id != lora) return false;
    }
    return true;
  };

  while (idx < trace.size() || !working.empty()) {
    // Admit FCFS while the head is compatible and the batch has room.
    while (idx < trace.size() &&
           static_cast<int>(working.size()) < cfg.max_batch_size &&
           can_admit_lora(trace[idx].lora_id)) {
      working.push_back(SimRequest{&trace[idx]});
      ++idx;
    }
    PUNICA_CHECK(!working.empty());

    // One invocation: up to prefill_limit prefills + all decodes.
    std::vector<SimRequest*> prefills;
    std::vector<SimRequest*> decodes;
    for (auto& s : working) {
      if (!s.prefilled &&
          static_cast<int>(prefills.size()) < cfg.prefill_limit) {
        prefills.push_back(&s);
      } else if (s.prefilled) {
        decodes.push_back(&s);
      }
    }
    // Resolve prefix hits at prefill time (a group-mate's earlier prefill
    // may have registered the prefix since this request arrived).
    for (SimRequest* s : prefills) {
      if (!share || s->req->prefix_group < 0 ||
          s->req->shared_prefix_len <= 0) {
        continue;
      }
      auto it = cached.find(s->req->prefix_group);
      if (it != cached.end()) {
        s->prefix_hit = std::min({it->second, s->req->shared_prefix_len,
                                  s->req->prompt_len - 1});
      }
    }
    StepShape shape = MakeShape(traits, cfg, prefills, decodes);
    t += SystemStepLatency(traits, model, cm, shape);
    ++result.invocations;
    if (!decodes.empty()) {
      decode_batch.Add(static_cast<double>(decodes.size()));
    }

    for (auto& s : working) {
      bool was_prefill =
          std::find(prefills.begin(), prefills.end(), &s) != prefills.end();
      bool was_decode =
          std::find(decodes.begin(), decodes.end(), &s) != decodes.end();
      if (was_prefill) {
        s.prefilled = true;
        s.kv_len = s.req->prompt_len;
        s.generated = 1;
        ++result.tokens_generated;
        result.prefill_tokens += s.req->prompt_len - s.prefix_hit;
        result.prefill_tokens_saved += s.prefix_hit;
        if (share && s.req->prefix_group >= 0 &&
            s.req->shared_prefix_len > 0) {
          cached.try_emplace(s.req->prefix_group, s.req->shared_prefix_len);
        }
      } else if (was_decode) {
        s.kv_len += 1;
        s.generated += 1;
        ++result.tokens_generated;
      }
    }
    // Continuous batching: finished requests leave immediately.
    std::erase_if(working, [](const SimRequest& s) { return s.Done(); });
  }
  result.makespan_s = t;
  result.throughput_tok_s =
      static_cast<double>(result.tokens_generated) / std::max(t, 1e-12);
  result.mean_decode_batch = decode_batch.count() > 0 ? decode_batch.mean()
                                                      : 0.0;
  return result;
}

}  // namespace

TextGenResult SimulateTextGen(ServingSystem system,
                              std::span<const TraceRequest> trace,
                              const LlamaConfig& model, const CostModel& cm,
                              const TextGenConfig& cfg) {
  PUNICA_CHECK(!trace.empty());
  SystemTraits traits = TraitsOf(system);
  if (traits.continuous_batching) {
    return SimulateContinuous(traits, trace, model, cm, cfg);
  }
  return SimulateBatchToCompletion(traits, trace, model, cm, cfg);
}

}  // namespace punica
