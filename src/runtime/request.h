// The serving request state machine shared by the runner, scheduler and
// cluster driver.
//
// A request arrives with a LoRA id, a prompt and (in simulation) a known
// output length standing in for the stopping condition (end-of-sequence or
// length limit). `generated` survives migration: the new GPU re-prefills
// prompt + generated tokens to rebuild the KvCache (recomputation, §5.3).
#pragma once

#include <cstdint>

#include "core/segment.h"

namespace punica {

enum class RequestPhase {
  kQueued,    ///< waiting at the scheduler
  kAssigned,  ///< in some GPU's working set
  kFinished,
  kCancelled,  ///< user cancellation (not migration)
};

struct ServingRequest {
  std::int64_t id = 0;
  LoraId lora_id = 0;
  std::int32_t prompt_len = 0;
  std::int32_t output_len = 0;  ///< stopping condition (tokens to generate)
  double arrival_time = 0.0;

  // Mutable progress.
  RequestPhase phase = RequestPhase::kQueued;
  std::int32_t generated = 0;
  double first_token_time = -1.0;
  double finish_time = -1.0;
  int migrations = 0;

  bool Done() const { return generated >= output_len; }
  /// Tokens a re-prefill must process: original prompt + everything
  /// generated so far (the recomputation path).
  std::int32_t PrefillTokensNeeded() const { return prompt_len + generated; }
};

}  // namespace punica
