// The serving request state machine shared by the runner, scheduler and
// cluster driver — on both tiers.
//
// A request arrives with a LoRA id, a prompt and a stopping condition
// (max_new_tokens, optionally an EOS token on the numeric tier). On the
// simulated tier the prompt is just a length; on the numeric tier
// `prompt_tokens`/`generated_tokens` carry the real ids. Progress survives
// migration: the new backend re-prefills prompt + generated to rebuild the
// KvCache (recomputation, §5.3).
#pragma once

#include <cstdint>
#include <vector>

#include "core/segment.h"
#include "runtime/submit_spec.h"

namespace punica {

enum class RequestPhase {
  kQueued,    ///< waiting at the scheduler
  kAssigned,  ///< in some backend's working set
  kFinished,
  kCancelled,  ///< user cancellation (not migration)
};

struct ServingRequest {
  std::int64_t id = 0;
  LoraId lora_id = 0;
  std::int32_t prompt_len = 0;
  std::int32_t output_len = 0;  ///< stopping condition (tokens to generate)
  double arrival_time = 0.0;
  std::vector<std::int32_t> prompt_tokens;  ///< real ids (numeric tier only)
  std::int32_t eos_token = -1;  ///< per-request early stop (-1 = none)
  /// Shared-prefix annotation (simulated tier): the first
  /// `shared_prefix_len` prompt tokens are the `prefix_group` tenant's
  /// system prompt. The numeric tier matches real token ids instead.
  std::int32_t shared_prefix_len = 0;
  std::int64_t prefix_group = -1;
  /// SLO class (higher = more important); the serving front door uses it to
  /// order admission and pick shedding victims.
  std::int32_t priority = 0;

  // Mutable progress.
  RequestPhase phase = RequestPhase::kQueued;
  std::int32_t generated = 0;
  std::vector<std::int32_t> generated_tokens;  ///< real ids (numeric tier)
  bool stopped_early = false;  ///< EOS hit before output_len (numeric tier)
  /// When a backend first admitted the request (-1 until then). With
  /// `arrival_time` this gives the queueing delay; it is not reset by
  /// migration, so TTFT stays dated from the first admission.
  double admit_time = -1.0;
  double first_token_time = -1.0;
  double finish_time = -1.0;
  int migrations = 0;

  bool Done() const { return stopped_early || generated >= output_len; }
  /// Tokens a re-prefill must process: original prompt + everything
  /// generated so far (the recomputation path).
  std::int32_t PrefillTokensNeeded() const { return prompt_len + generated; }
  bool has_real_tokens() const { return !prompt_tokens.empty(); }

  static ServingRequest FromSpec(std::int64_t id, const SubmitSpec& spec) {
    ServingRequest req;
    req.id = id;
    req.lora_id = spec.lora;
    req.prompt_len = spec.EffectivePromptLen();
    req.output_len = spec.max_new_tokens;
    req.arrival_time = spec.arrival_time;
    req.prompt_tokens = spec.prompt_tokens;
    req.eos_token = spec.eos_token;
    req.shared_prefix_len = spec.shared_prefix_len;
    req.prefix_group = spec.prefix_group;
    req.priority = spec.priority;
    return req;
  }
};

/// Everything needed to resume a request elsewhere (migration, §5.3): the
/// destination re-prefills prompt + generated. On the simulated tier the
/// token vectors are empty and the synthetic lengths carry the state.
struct RequestSnapshot {
  std::int64_t request_id = -1;
  LoraId lora = -1;
  std::vector<std::int32_t> prompt;     ///< real ids (numeric tier)
  std::vector<std::int32_t> generated;  ///< real ids generated so far
  std::int32_t prompt_len = 0;          ///< synthetic lengths (both tiers)
  std::int32_t generated_len = 0;
  int max_new_tokens = 0;
  std::int32_t eos_token = -1;  ///< resolved stop token at the source

  static RequestSnapshot FromRequest(const ServingRequest& req) {
    return {.request_id = req.id,
            .lora = req.lora_id,
            .prompt = req.prompt_tokens,
            .generated = req.generated_tokens,
            .prompt_len = req.prompt_len,
            .generated_len = req.generated,
            .max_new_tokens = req.output_len,
            .eos_token = req.eos_token};
  }
};

}  // namespace punica
