// Numeric single-GPU serving engine: the runnable counterpart of GpuRunner.
//
// GpuRunner simulates paper-scale serving through the cost model; Engine
// actually executes a (tiny) Llama model on CPU with the same batching
// discipline — continuous batching over a paged KvCache, at most
// `prefill_limit` prefills per invocation, token rows grouped by LoRA id so
// SGMV segments are maximal, and cancellation/migration via prompt+generated
// recomputation. Its outputs are bit-deterministic. To drive it through the
// cluster scheduler, wrap it in EngineBackend (runtime/engine_backend.h).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "kvcache/kvcache.h"
#include "model/llama.h"
#include "runtime/backend.h"
#include "runtime/submit_spec.h"

namespace punica {

struct EngineConfig {
  int max_batch_size = 32;
  int prefill_limit = 1;
  /// Engine-wide early-stop token (-1 = none). A SubmitSpec may carry its
  /// own `eos_token`; when both are set they must agree — the snapshot /
  /// migration path asserts this so a request never changes its stopping
  /// condition by moving between engines.
  std::int32_t eos_token = -1;
};

class Engine {
 public:
  /// The engine borrows the model (shared across engines — one backbone
  /// copy, as on a GPU) and owns its KvCache.
  Engine(LlamaModel* model, const KvCacheConfig& kv_config,
         EngineConfig config = {});

  /// Admits a request described by `spec` (prompt_tokens must be real ids).
  /// Aborts if the working set is full — callers queue.
  RequestHandle AddRequest(const SubmitSpec& spec);

  /// Re-admits a migrated request; its KvCache is rebuilt by re-prefilling
  /// prompt + generated in its first step. Asserts the snapshot's stop
  /// condition agrees with this engine's EngineConfig::eos_token.
  RequestHandle AddMigrated(const RequestSnapshot& snapshot);

  /// Cancels a request and returns its snapshot (empty when unknown).
  /// Releases the KvCache immediately (the evict half of migration).
  std::optional<RequestSnapshot> Cancel(std::int64_t id);
  std::optional<RequestSnapshot> Cancel(RequestHandle h) {
    return Cancel(h.id());
  }

  bool HasWork() const { return !active_.empty(); }
  int working_set_size() const { return static_cast<int>(active_.size()); }
  bool CanAdmit() const {
    return working_set_size() < config_.max_batch_size;
  }

  /// Runs one batched model invocation (prefills first, grouped by LoRA).
  /// The unified StepResult's `latency` is 0 — the engine is not
  /// time-aware; EngineBackend assigns virtual-time cost.
  StepResult Step();

  /// KvCache-pressure victim query (§5.3): engine-local ids (newest first)
  /// that must be cancelled before the next step's page demand fits.
  std::vector<std::int64_t> SelectEvictionVictims() const;

  /// Tokens generated so far (valid for finished requests too).
  const std::vector<std::int32_t>* Output(std::int64_t id) const;
  const std::vector<std::int32_t>* Output(RequestHandle h) const {
    return Output(h.id());
  }

  /// The stop token a request admitted under `spec` would run with.
  std::int32_t ResolveEos(std::int32_t spec_eos) const;

  const EngineConfig& config() const { return config_; }
  const KvCacheConfig& kv_config() const { return kv_.config(); }
  std::int32_t kv_free_pages() const { return kv_.free_pages(); }

  /// The compute substrate every Step runs on — the model's context, so all
  /// engines sharing one model (one backbone copy) share one thread pool.
  const ComputeContext& context() const { return model_->context(); }

 private:
  struct Slot {
    LoraId lora = -1;
    std::vector<std::int32_t> prompt;  ///< original prompt
    int max_new_tokens = 0;
    std::int32_t eos_token = -1;  ///< resolved stop token for this request
    SeqId seq = -1;
    bool needs_prefill = true;
    std::int32_t resume_from = 0;  ///< generated tokens to re-prefill
    std::uint64_t admit_seq = 0;
  };

  std::int64_t Admit(Slot slot, std::vector<std::int32_t> generated);
  bool IsDone(const Slot& slot, const std::vector<std::int32_t>& out) const;
  /// The ids the next invocation would prefill (FCFS by admission, cut to
  /// prefill_limit) — the one plan both Step and the victim query project.
  std::vector<std::int64_t> PlannedPrefillIds() const;

  LlamaModel* model_;
  PagedKvCache kv_;
  EngineConfig config_;
  std::map<std::int64_t, Slot> active_;
  std::map<std::int64_t, std::vector<std::int32_t>> outputs_;
  std::int64_t next_id_ = 0;
  std::uint64_t next_admit_seq_ = 0;
};

}  // namespace punica
