// Numeric single-GPU serving engine: the runnable counterpart of GpuRunner.
//
// GpuRunner simulates paper-scale serving through the cost model; Engine
// actually executes a (tiny) Llama model on CPU with the same batching
// discipline — continuous batching over a paged KvCache, at most
// `prefill_limit` prefills per invocation, token rows grouped by LoRA id so
// SGMV segments are maximal, and cancellation/migration via prompt+generated
// recomputation. Its outputs are bit-deterministic. To drive it through the
// cluster scheduler, wrap it in EngineBackend (runtime/engine_backend.h).
//
// Chunked prefill (EngineConfig::max_step_tokens): instead of prefilling a
// request's whole uncached suffix in one invocation — stalling every
// in-flight decode stream behind a long prompt — Step splits pending
// prefills into budget-sized chunks that share each invocation with all
// runnable decodes (runtime/chunking.h holds the split definition shared
// with the simulated tier). A chunk attends over all previously written KV
// via the BatchPrefillAttention pos_offset path; non-final chunks skip the
// LM head and emit nothing. Page demand, victim projection and mid-prefill
// cancellation are all chunk-granular: a partially-prefilled chain is
// registered in the prefix index on Cancel, so migration rebuilds from it.
//
// Shared-prefix KV cache: admissions consult a PrefixIndex over token ids;
// on a hit the request's sequence forks from the cached holder (ref-counted
// page aliasing, kvcache/kvcache.h) and Step prefills only the uncached
// suffix. Completed prefills register the prompt; cancellation (the
// migration evict) registers prompt+generated so a re-admitted request
// rebuilds from any surviving prefix instead of recomputing from token
// zero. Under page pressure, cached prefixes are evicted LRU before the
// engine reports migration victims. Because cached K/V bits are exactly
// what a cold prefill would write (one writer per element, fixed reduction
// order), a prefix-hit stream is bit-identical to the cold-start stream.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "kvcache/kvcache.h"
#include "kvcache/prefix_index.h"
#include "model/llama.h"
#include "runtime/backend.h"
#include "runtime/submit_spec.h"
#include "util/stats.h"

namespace punica {

struct EngineConfig {
  int max_batch_size = 32;
  int prefill_limit = 1;
  /// Per-step token budget for chunked prefill (0 = unlimited, the
  /// unchunked behaviour). A step carries at most this many token rows,
  /// decode rows included: decodes always all run, and pending prefills
  /// consume what remains of the budget FCFS as chunks (see
  /// runtime/chunking.h for the shared split definition). SLO-derivable:
  /// budget ≈ tolerable inter-token stall / per-token step cost. Chunked
  /// streams are bit-identical to unchunked streams at any budget — only
  /// step boundaries move, never K/V bits or reduction orders.
  std::int64_t max_step_tokens = 0;
  /// Engine-wide early-stop token (-1 = none). A SubmitSpec may carry its
  /// own `eos_token`; when both are set they must agree — the snapshot /
  /// migration path asserts this so a request never changes its stopping
  /// condition by moving between engines.
  std::int32_t eos_token = -1;
  /// Shared-prefix KV cache (on by default; a cold index is a no-op).
  bool enable_prefix_cache = true;
  /// Smallest prefix worth caching or reusing, in tokens.
  std::int32_t min_prefix_tokens = 1;
  /// Entry cap; LRU beyond it. Page pressure evicts earlier regardless.
  std::int32_t max_cached_prefixes = 64;
};

class Engine {
 public:
  /// The engine borrows the model (shared across engines — one backbone
  /// copy, as on a GPU) and owns its KvCache.
  Engine(LlamaModel* model, const KvCacheConfig& kv_config,
         EngineConfig config = {});

  /// Admits a request described by `spec` (prompt_tokens must be real ids).
  /// Aborts if the working set is full — callers queue.
  RequestHandle AddRequest(const SubmitSpec& spec);

  /// Re-admits a migrated request; its KvCache is rebuilt in its first step
  /// by re-prefilling prompt + generated — minus any surviving cached
  /// prefix. Asserts the snapshot's stop condition agrees with this
  /// engine's EngineConfig::eos_token.
  RequestHandle AddMigrated(const RequestSnapshot& snapshot);

  /// Cancels a request and returns its snapshot (empty when unknown).
  /// Releases the KvCache immediately (the evict half of migration) —
  /// though its prefix may stay cached for a cheap rebuild.
  std::optional<RequestSnapshot> Cancel(std::int64_t id);
  std::optional<RequestSnapshot> Cancel(RequestHandle h) {
    return Cancel(h.id());
  }

  bool HasWork() const { return !active_.empty(); }
  int working_set_size() const { return static_cast<int>(active_.size()); }
  bool CanAdmit() const {
    return working_set_size() < config_.max_batch_size;
  }

  /// Runs one batched model invocation (prefill chunks first, grouped by
  /// LoRA, then every decode). Under a max_step_tokens budget a prefill may
  /// span several steps; it emits its first token only when its final chunk
  /// runs. The unified StepResult's `latency` is 0 — the engine is not
  /// time-aware; EngineBackend assigns virtual-time cost.
  StepResult Step();

  /// KvCache-pressure victim query (§5.3): engine-local ids (newest first)
  /// that must be cancelled before the next step's page demand fits.
  /// Pages reclaimable by evicting cached prefixes count as headroom — the
  /// cache yields before requests migrate.
  std::vector<std::int64_t> SelectEvictionVictims() const;

  /// Tokens generated so far (valid for finished requests too).
  const std::vector<std::int32_t>* Output(std::int64_t id) const;
  const std::vector<std::int32_t>* Output(RequestHandle h) const {
    return Output(h.id());
  }

  /// The stop token a request admitted under `spec` would run with.
  std::int32_t ResolveEos(std::int32_t spec_eos) const;

  // --- Shared-prefix cache introspection (allocator → scheduler thread) ---

  /// Cached-prefix tokens an admission with this (LoRA, prompt+generated)
  /// chain would skip (0 = cold). Keyed on the LoRA id too: K/V bits carry
  /// per-request adapter addons, so same text under a different adapter
  /// shares nothing. Pure query: no recency update.
  std::int64_t PrefixHitTokens(LoraId lora,
                               std::span<const std::int32_t> prompt,
                               std::span<const std::int32_t> generated) const;
  /// New pages an admission would need for its re-prefill chain plus one
  /// decode slot, net of the cached prefix it would alias.
  std::int32_t PagesNeededForAdmission(
      LoraId lora, std::span<const std::int32_t> prompt,
      std::span<const std::int32_t> generated) const;
  /// Page-feasibility of an admission: PagesNeededForAdmission against
  /// free + reclaimable headroom, with the hit's own entry excluded from
  /// the reclaimable side (it must stay cached for the hit to be real).
  bool CanAdmitPages(LoraId lora, std::span<const std::int32_t> prompt,
                     std::span<const std::int32_t> generated) const;
  /// free pages + pages that evicting every unpinned cached prefix would
  /// return to the pool.
  std::int32_t AvailablePages() const;
  /// Counters plus point-in-time gauges.
  PrefixCacheStats prefix_cache_stats() const;

  const EngineConfig& config() const { return config_; }
  const KvCacheConfig& kv_config() const { return kv_.config(); }
  std::int32_t kv_free_pages() const { return kv_.free_pages(); }
  std::int32_t kv_shared_pages() const { return kv_.shared_pages(); }

  /// The compute substrate every Step runs on — the model's context, so all
  /// engines sharing one model (one backbone copy) share one thread pool.
  const ComputeContext& context() const { return model_->context(); }

  /// The model's tensor-parallel degree (1 = single-GPU execution).
  int tp() const { return model_->tp(); }

 private:
  /// Slot phases: `needs_prefill` is true from admission until the final
  /// prefill chunk completes. Mid-prefill (the chunked-prefill state) is
  /// `needs_prefill && SeqLen(seq) > 0`: the cache holds the chain's first
  /// SeqLen tokens (cached-prefix alias + computed chunks) and the next
  /// chunk resumes at that position. The prefix-cache hit is resolved and
  /// forked at the FIRST chunk only.
  struct Slot {
    LoraId lora = -1;
    std::vector<std::int32_t> prompt;  ///< original prompt
    int max_new_tokens = 0;
    std::int32_t eos_token = -1;  ///< resolved stop token for this request
    SeqId seq = -1;
    bool needs_prefill = true;
    std::int32_t resume_from = 0;  ///< generated tokens to re-prefill
    std::int64_t prefix_cached = 0;  ///< chain tokens served by the cache
                                     ///< (resolved at the first chunk)
    std::uint64_t admit_seq = 0;
  };

  struct ChainMatch {
    std::int64_t entry = -1;  ///< -1 = no usable cached prefix
    SeqId seq = -1;           ///< the entry's holder sequence
    std::int64_t usable = 0;  ///< chain tokens a fork would reuse
  };
  /// Index lookup for a (LoRA, prompt+generated) chain, with the
  /// keep-one-token-for-logits cap and min_prefix_tokens gate applied.
  ChainMatch LookupChain(LoraId lora, std::span<const std::int32_t> prompt,
                         std::span<const std::int32_t> generated) const;

  std::int64_t Admit(Slot slot, std::vector<std::int32_t> generated);
  bool IsDone(const Slot& slot, const std::vector<std::int32_t>& out) const;

  /// One planned prefill of the next step: resume point, chunk length and
  /// whether the prefix-cache hit is still unresolved (first chunk). The
  /// first chunk's index match rides along so Step never repeats the
  /// O(chain) lookup the plan already did.
  struct PlannedPrefill {
    std::int64_t id = -1;
    std::int64_t start = 0;  ///< chain tokens already in KV (fork boundary
                             ///< for a first chunk)
    std::int64_t chunk = 0;  ///< tokens this step (0 = budget-deferred)
    std::int64_t total = 0;  ///< full re-prefill chain length
    bool first_chunk = false;
    ChainMatch hit;          ///< first chunk only: the fork to take
  };
  /// The step everyone projects: planned prefills (FCFS, cut to
  /// prefill_limit, chunked by max_step_tokens) plus every decode. Slots in
  /// `exclude` (victim simulation) are treated as already evicted.
  /// `hit_memo` (optional) caches first-chunk index lookups per slot id —
  /// the victim loop replans repeatedly while the index cannot change, so
  /// each O(chain) trie walk should run once, not once per candidate.
  struct StepPlan {
    std::vector<PlannedPrefill> prefills;
    std::vector<std::int64_t> decode_ids;
  };
  StepPlan PlanStep(const std::vector<std::int64_t>* exclude = nullptr,
                    std::map<std::int64_t, ChainMatch>* hit_memo =
                        nullptr) const;
  /// New pages this step needs for one planned prefill chunk, including the
  /// fork-boundary CoW copy on a first chunk.
  std::int32_t PagesForPlannedPrefill(const PlannedPrefill& p) const;

  /// Extends `seq`, evicting LRU cached prefixes on page exhaustion.
  /// Aborts when the pool is short even with an empty cache — the caller
  /// should have migrated requests first.
  void ExtendOrReclaim(SeqId seq, std::int64_t tokens);
  /// Non-fatal variant: false when the pool cannot cover the growth even
  /// after evicting every unpinned cached prefix. Prefill chunks use it to
  /// shrink/defer gracefully when the world drifted between the victim
  /// projection and this step (see Step).
  bool TryExtendOrReclaim(SeqId seq, std::int64_t tokens);
  bool EvictOneCachedPrefix();
  /// Registers the first `n_tokens` of `slot.seq`'s chain in the index.
  void RegisterPrefix(const Slot& slot, std::span<const std::int32_t> chain,
                      std::int64_t n_tokens);
  /// New pages the next step needs for this slot, including a potential
  /// copy-on-write of a shared partial tail page.
  /// Pages a chain of `target_len` tokens needs beyond a `usable`-token
  /// aliased prefix (including the partial-boundary CoW copy) — the one
  /// formula admission and Step both price with.
  std::int32_t NewPagesFor(std::int64_t target_len, std::int64_t usable) const;
  /// New pages the next step needs for one decode slot (one token, plus a
  /// potential CoW copy of a shared partial tail page).
  std::int32_t DecodeGrowthPages(const Slot& slot) const;
  /// `exclude_entry` ≥ 0 is treated as staying cached (admission math).
  std::int32_t ReclaimableCachePages(std::int64_t exclude_entry = -1) const;

  LlamaModel* model_;
  PagedKvCache kv_;
  EngineConfig config_;
  PrefixIndex prefix_;
  PrefixCacheStats cache_stats_;  ///< counters; gauges filled on snapshot
  std::map<std::int64_t, Slot> active_;
  std::map<std::int64_t, std::vector<std::int32_t>> outputs_;
  std::int64_t next_id_ = 0;
  std::uint64_t next_admit_seq_ = 0;
};

}  // namespace punica
