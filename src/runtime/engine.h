// Numeric single-GPU serving engine: the runnable counterpart of GpuRunner.
//
// GpuRunner simulates paper-scale serving through the cost model; Engine
// actually executes a (tiny) Llama model on CPU with the same batching
// discipline — continuous batching over a paged KvCache, at most
// `prefill_limit` prefills per invocation, token rows grouped by LoRA id so
// SGMV segments are maximal, and cancellation/migration via prompt+generated
// recomputation. Examples and integration tests drive this engine end to
// end; its outputs are bit-deterministic.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "kvcache/kvcache.h"
#include "model/llama.h"

namespace punica {

struct EngineConfig {
  int max_batch_size = 32;
  int prefill_limit = 1;
  std::int32_t eos_token = -1;  ///< optional early-stop token (-1 = none)
};

/// Everything needed to resume a request elsewhere (migration, §5.3): the
/// destination re-prefills prompt + generated.
struct RequestSnapshot {
  LoraId lora = -1;
  std::vector<std::int32_t> prompt;
  std::vector<std::int32_t> generated;
  int max_new_tokens = 0;
};

class Engine {
 public:
  /// The engine borrows the model (shared across engines — one backbone
  /// copy, as on a GPU) and owns its KvCache.
  Engine(LlamaModel* model, const KvCacheConfig& kv_config,
         EngineConfig config = {});

  /// Admits a request. Aborts if the working set is full — callers queue.
  std::int64_t AddRequest(LoraId lora, std::vector<std::int32_t> prompt,
                          int max_new_tokens);

  /// Re-admits a migrated request; its KvCache is rebuilt by re-prefilling
  /// prompt + generated in its first step.
  std::int64_t AddMigrated(const RequestSnapshot& snapshot);

  /// Cancels a request and returns its snapshot (empty when unknown).
  /// Releases the KvCache immediately (the evict half of migration).
  std::optional<RequestSnapshot> Cancel(std::int64_t id);

  bool HasWork() const { return !active_.empty(); }
  int working_set_size() const { return static_cast<int>(active_.size()); }
  bool CanAdmit() const {
    return working_set_size() < config_.max_batch_size;
  }

  struct StepResult {
    std::vector<std::pair<std::int64_t, std::int32_t>> emitted;
    std::vector<std::int64_t> finished;
    int batch_size = 0;
    int prefill_requests = 0;
    int num_segments = 0;  ///< SGMV segments in this invocation
  };

  /// Runs one batched model invocation (prefills first, grouped by LoRA).
  StepResult Step();

  /// Tokens generated so far (valid for finished requests too).
  const std::vector<std::int32_t>* Output(std::int64_t id) const;

  const KvCacheConfig& kv_config() const { return kv_.config(); }
  std::int32_t kv_free_pages() const { return kv_.free_pages(); }

 private:
  struct Slot {
    LoraId lora = -1;
    std::vector<std::int32_t> prompt;  ///< original prompt
    int max_new_tokens = 0;
    SeqId seq = -1;
    bool needs_prefill = true;
    std::int32_t resume_from = 0;  ///< generated tokens to re-prefill
    std::uint64_t admit_seq = 0;
  };

  std::int64_t Admit(Slot slot, std::vector<std::int32_t> generated);
  bool IsDone(const Slot& slot, const std::vector<std::int32_t>& out) const;

  LlamaModel* model_;
  PagedKvCache kv_;
  EngineConfig config_;
  std::map<std::int64_t, Slot> active_;
  std::map<std::int64_t, std::vector<std::int32_t>> outputs_;
  std::int64_t next_id_ = 0;
  std::uint64_t next_admit_seq_ = 0;
};

}  // namespace punica
