// The unified request-submission surface shared by both serving tiers.
//
// A SubmitSpec describes *what* to generate: which LoRA model, the prompt
// (real token ids on the numeric tier, or just a synthetic length on the
// simulated tier), how many tokens to produce, and an optional early-stop
// token. Frontend::Submit and Engine::AddRequest both take a SubmitSpec and
// return a RequestHandle, so callers are written once and run against either
// tier.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/segment.h"

namespace punica {

struct SubmitSpec {
  LoraId lora = -1;  ///< -1 = backbone only (no adapter)

  /// Real prompt token ids (numeric tier). When empty, `prompt_len` below
  /// describes a synthetic prompt (simulated tier).
  std::vector<std::int32_t> prompt_tokens;
  /// Synthetic prompt length; ignored when `prompt_tokens` is non-empty.
  std::int32_t prompt_len = 0;

  std::int32_t max_new_tokens = 0;
  double arrival_time = 0.0;
  /// SLO class (higher = more important). Only the open-loop serving front
  /// door acts on it — backends treat all admitted requests the same.
  std::int32_t priority = 0;

  /// Shared-prefix annotation for the simulated tier: the first
  /// `shared_prefix_len` prompt tokens are a per-tenant system prompt
  /// identified by `prefix_group` (e.g. the LoRA/tenant id). The numeric
  /// tier ignores these — its prefix index matches real token ids.
  std::int32_t shared_prefix_len = 0;
  std::int64_t prefix_group = -1;  ///< -1 = no shared prefix

  /// Optional stop condition: generation ends early when this token is
  /// emitted (-1 = length-only stopping). Only meaningful on the numeric
  /// tier; must agree with the engine-wide EngineConfig::eos_token when
  /// both are set.
  std::int32_t eos_token = -1;

  std::int32_t EffectivePromptLen() const {
    return prompt_tokens.empty()
               ? prompt_len
               : static_cast<std::int32_t>(prompt_tokens.size());
  }
};

/// Lightweight, type-safe wrapper around the raw int64 request id that the
/// serving tier hands back on submission. Invalid handles (default
/// constructed) compare false.
class RequestHandle {
 public:
  RequestHandle() = default;
  explicit RequestHandle(std::int64_t id) : id_(id) {}

  std::int64_t id() const { return id_; }
  bool valid() const { return id_ >= 0; }
  explicit operator bool() const { return valid(); }

  friend bool operator==(RequestHandle a, RequestHandle b) {
    return a.id_ == b.id_;
  }
  friend bool operator!=(RequestHandle a, RequestHandle b) {
    return !(a == b);
  }
  friend bool operator<(RequestHandle a, RequestHandle b) {
    return a.id_ < b.id_;
  }

 private:
  std::int64_t id_ = -1;
};

}  // namespace punica
