// Chunked-prefill budget arithmetic — the ONE definition of how a step's
// token budget splits pending prefills into chunks, shared by every tier:
// the numeric Engine, the simulated GpuRunner and the closed-loop text-gen
// simulator all call SplitPrefillChunks, so a budget produces identical
// chunk sequences (and hence identical cost-model shapes and page/token
// demand projections) everywhere. tests/runtime/chunking_test.cc pins the
// semantics and asserts the tiers agree step by step.
//
// Semantics: a step carries at most `max_step_tokens` token rows, decode
// rows included. Decodes are never trimmed — they are the latency-sensitive
// work the budget exists to protect — so the prefill share of the budget is
// what remains after one row per runnable decode. Prefills consume that
// share FCFS; the head prefill always gets at least one token even when
// decodes alone exceed the budget (prefill must make progress, or a full
// decode batch would starve admissions forever). max_step_tokens <= 0 means
// unlimited: every prefill runs its whole remaining suffix in one chunk,
// which is exactly the pre-chunking behaviour.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

namespace punica {

/// Splits a step's prefill token budget over the planned prefills.
/// `remaining[i]` is prefill i's uncomputed suffix length (FCFS order);
/// `num_decodes` is the count of decode rows sharing the step. Returns one
/// chunk length per prefill, aligned with `remaining`; a 0 means the
/// prefill sits this step out entirely (budget exhausted by earlier
/// prefills). Chunks never exceed `remaining[i]`.
inline std::vector<std::int64_t> SplitPrefillChunks(
    std::span<const std::int64_t> remaining, std::int64_t num_decodes,
    std::int64_t max_step_tokens) {
  std::vector<std::int64_t> chunks(remaining.size(), 0);
  if (remaining.empty()) return chunks;
  if (max_step_tokens <= 0) {
    for (std::size_t i = 0; i < remaining.size(); ++i) {
      chunks[i] = remaining[i];
    }
    return chunks;
  }
  // The progress floor: at least one prefill token per step, whatever the
  // decode batch size.
  std::int64_t budget =
      std::max<std::int64_t>(max_step_tokens - num_decodes, 1);
  for (std::size_t i = 0; i < remaining.size() && budget > 0; ++i) {
    chunks[i] = std::min(remaining[i], budget);
    budget -= chunks[i];
  }
  return chunks;
}

}  // namespace punica
