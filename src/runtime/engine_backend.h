// EngineBackend: the numeric tier of the ExecutionBackend interface.
//
// Wraps an Engine (real tiny-Llama execution) so Scheduler, ClusterDriver,
// migration and consolidation drive real text generation through exactly the
// code paths the simulated tier uses. The adapter owns the translation
// between serving-tier request ids (issued by frontends) and the engine's
// internal ids, keeps the caller-owned ServingRequest progress fields in
// sync (generated tokens, first-token/finish times, phase), and maps the
// engine's page-granular KvCache pressure onto the victim query.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "runtime/backend.h"
#include "runtime/engine.h"

namespace punica {

struct EngineBackendConfig {
  /// Virtual-time cost per batched invocation. The engine itself is not
  /// time-aware; the cluster driver schedules step completions this far
  /// into the future, which keeps event ordering deterministic.
  double step_latency_s = 1e-3;
};

class EngineBackend : public ExecutionBackend {
 public:
  /// Borrows the engine (one per "GPU"; the model behind it is shared).
  EngineBackend(int backend_id, Engine* engine,
                EngineBackendConfig config = {});

  int backend_id() const override { return backend_id_; }
  int max_batch_size() const override;

  bool CanAdmit(const ServingRequest& req) const override;
  std::int64_t PrefixHitTokens(const ServingRequest& req) const override;
  void Admit(ServingRequest* req, double now) override;
  std::optional<RequestSnapshot> Cancel(std::int64_t request_id) override;

  bool HasRunnableWork(double now) const override;
  bool HasAnyWork() const override;
  std::optional<double> NextReadyTime(double now) const override;
  std::vector<std::int64_t> SelectEvictionVictims(double now) const override;
  StepResult Step(double now) override;

  int working_set_size() const override;
  ServingRequest* Find(std::int64_t request_id) const override;
  ServingRequest* NewestRequest() const override;

  Engine& engine() { return *engine_; }

  /// The compute substrate this backend steps on (the engine's model's
  /// context — shared by every backend over the same backbone).
  const ComputeContext& context() const { return engine_->context(); }

  /// The engine's tensor-parallel degree (1 = single-GPU execution).
  int tp() const { return engine_->tp(); }

 private:
  struct Slot {
    ServingRequest* req = nullptr;
    std::int64_t engine_id = -1;
    std::uint64_t admit_seq = 0;
  };

  int backend_id_;
  Engine* engine_;
  EngineBackendConfig config_;
  std::map<std::int64_t, Slot> slots_;            ///< by serving request id
  std::map<std::int64_t, std::int64_t> by_engine_id_;
  std::uint64_t next_admit_seq_ = 0;
};

}  // namespace punica
