#include "runtime/engine_backend.h"

#include "util/check.h"

namespace punica {

EngineBackend::EngineBackend(int backend_id, Engine* engine,
                             EngineBackendConfig config)
    : backend_id_(backend_id), engine_(engine), config_(config) {
  PUNICA_CHECK(engine_ != nullptr);
  PUNICA_CHECK(config_.step_latency_s > 0.0);
}

int EngineBackend::max_batch_size() const {
  return engine_->config().max_batch_size;
}

bool EngineBackend::CanAdmit(const ServingRequest& req) const {
  if (!engine_->CanAdmit()) return false;
  // Page-granular headroom for the re-prefill chunk plus one decode slot,
  // net of any cached prefix the admission would alias; pages reclaimable
  // by evicting cached prefixes count as headroom (the engine reclaims
  // them on demand inside Step), except the hit's own entry — it must
  // stay cached for the hit to be real.
  return engine_->CanAdmitPages(req.lora_id, req.prompt_tokens,
                                req.generated_tokens);
}

std::int64_t EngineBackend::PrefixHitTokens(const ServingRequest& req) const {
  return engine_->PrefixHitTokens(req.lora_id, req.prompt_tokens,
                                  req.generated_tokens);
}

void EngineBackend::Admit(ServingRequest* req, double now) {
  PUNICA_CHECK(req != nullptr);
  if (req->admit_time < 0.0) req->admit_time = now;
  PUNICA_CHECK_MSG(req->has_real_tokens(),
                   "the numeric tier needs real prompt tokens; "
                   "set SubmitSpec::prompt_tokens");
  PUNICA_CHECK_MSG(!slots_.contains(req->id),
                   "request already on this backend");
  RequestHandle engine_handle;
  if (req->generated > 0) {
    // Migration re-add: rebuild the KvCache from prompt + generated.
    PUNICA_CHECK_MSG(
        static_cast<std::int32_t>(req->generated_tokens.size()) ==
            req->generated,
        "numeric progress out of sync with the generated-token record");
    // The snapshot carries the stop token resolved at first admission;
    // AddMigrated asserts the destination agrees rather than re-resolving
    // (which would silently change the stop condition).
    engine_handle = engine_->AddMigrated(RequestSnapshot::FromRequest(*req));
  } else {
    // First admission: resolve the effective stop token (per-request or
    // engine-wide default) and pin it on the request, so migration
    // preserves it verbatim.
    req->eos_token = engine_->ResolveEos(req->eos_token);
    SubmitSpec spec;
    spec.lora = req->lora_id;
    spec.prompt_tokens = req->prompt_tokens;
    spec.max_new_tokens = req->output_len;
    spec.arrival_time = req->arrival_time;
    spec.eos_token = req->eos_token;
    engine_handle = engine_->AddRequest(spec);
  }
  Slot slot;
  slot.req = req;
  slot.engine_id = engine_handle.id();
  slot.admit_seq = next_admit_seq_++;
  by_engine_id_[slot.engine_id] = req->id;
  slots_.emplace(req->id, slot);
  req->phase = RequestPhase::kAssigned;
}

std::optional<RequestSnapshot> EngineBackend::Cancel(
    std::int64_t request_id) {
  auto it = slots_.find(request_id);
  if (it == slots_.end()) return std::nullopt;
  ServingRequest* req = it->second.req;
  auto snap = engine_->Cancel(it->second.engine_id);
  PUNICA_CHECK_MSG(snap.has_value(),
                   "backend slot had no engine-side request");
  // Sync the caller-owned request: generated tokens are the migration state.
  req->generated_tokens = snap->generated;
  req->generated = static_cast<std::int32_t>(snap->generated.size());
  by_engine_id_.erase(it->second.engine_id);
  slots_.erase(it);
  snap->request_id = request_id;
  snap->prompt_len = req->prompt_len;
  snap->generated_len = req->generated;
  return snap;
}

bool EngineBackend::HasRunnableWork(double now) const {
  (void)now;  // no adapter-load latency on the numeric tier
  return engine_->HasWork();
}

bool EngineBackend::HasAnyWork() const { return engine_->HasWork(); }

std::optional<double> EngineBackend::NextReadyTime(double now) const {
  (void)now;
  return std::nullopt;
}

std::vector<std::int64_t> EngineBackend::SelectEvictionVictims(
    double now) const {
  (void)now;
  std::vector<std::int64_t> victims;
  for (std::int64_t engine_id : engine_->SelectEvictionVictims()) {
    victims.push_back(by_engine_id_.at(engine_id));
  }
  return victims;
}

StepResult EngineBackend::Step(double now) {
  StepResult result = engine_->Step();
  result.latency = result.batch_size > 0 ? config_.step_latency_s : 0.0;
  double completion = now + result.latency;
  // Translate engine-local ids to serving-tier ids and sync the
  // caller-owned request state.
  for (auto& e : result.emitted) {
    std::int64_t request_id = by_engine_id_.at(e.request_id);
    e.request_id = request_id;
    ServingRequest* req = slots_.at(request_id).req;
    req->generated_tokens.push_back(e.token);
    req->generated += 1;
    if (req->first_token_time < 0.0) req->first_token_time = completion;
  }
  for (auto& id : result.finished) {
    std::int64_t request_id = by_engine_id_.at(id);
    id = request_id;
    auto it = slots_.find(request_id);
    ServingRequest* req = it->second.req;
    if (req->generated < req->output_len) req->stopped_early = true;  // EOS
    req->phase = RequestPhase::kFinished;
    req->finish_time = completion;
    by_engine_id_.erase(it->second.engine_id);
    slots_.erase(it);
  }
  return result;
}

int EngineBackend::working_set_size() const {
  return static_cast<int>(slots_.size());
}

ServingRequest* EngineBackend::Find(std::int64_t request_id) const {
  auto it = slots_.find(request_id);
  return it == slots_.end() ? nullptr : it->second.req;
}

ServingRequest* EngineBackend::NewestRequest() const {
  const Slot* newest = nullptr;
  for (const auto& [id, slot] : slots_) {
    if (newest == nullptr || slot.admit_seq > newest->admit_seq) {
      newest = &slot;
    }
  }
  return newest == nullptr ? nullptr : newest->req;
}

}  // namespace punica
