// ExecutionBackend: the one serving interface both tiers implement.
//
// The paper's serving path (Fig. 2: frontends → scheduler → runners) exists
// in this repo twice: GpuRunner simulates paper-scale GPUs through the
// analytical cost model (virtual time, synthetic tokens), while Engine
// executes a real tiny Llama on CPU (wall-clock-free, real token ids). This
// interface is what lets Scheduler, ClusterDriver, migration and
// consolidation run unchanged over either tier: admission constraints,
// cancel-with-snapshot (the §5.3 migration primitive), batched stepping and
// the KvCache-pressure victim query all have one shape.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "runtime/request.h"

namespace punica {

/// One token emitted by a step. `token` is the real id on numeric backends;
/// on the simulated tier it is a per-request sequence tag (0, 1, 2, …) —
/// ordering and timing are what that tier is responsible for, not content.
struct EmittedToken {
  std::int64_t request_id = 0;
  std::int32_t token = -1;
};

/// Result of one batched model invocation, shared by both tiers.
struct StepResult {
  double latency = 0.0;      ///< virtual-time cost of the invocation
  int batch_size = 0;        ///< requests in the invocation
  int prefill_requests = 0;  ///< prefill entries (chunks count, even partial)
  int prefill_tokens = 0;       ///< prefill tokens actually computed
  int prefix_hit_tokens = 0;    ///< prefill tokens skipped via cached prefixes
  /// Prefill entries whose chunk did NOT finish the prompt this step
  /// (chunked prefill): they emitted nothing and will take further chunks.
  int partial_prefills = 0;
  /// Prefill tokens still pending across the working set after this step —
  /// the backlog a step-token budget is amortizing.
  std::int64_t deferred_prefill_tokens = 0;
  int new_tokens = 0;        ///< tokens emitted (first tokens + decode)
  int num_segments = 0;      ///< SGMV segments in this invocation
  std::vector<EmittedToken> emitted;
  std::vector<std::int64_t> finished;  ///< ids that reached their stop
};

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  /// Stable identifier (the GPU UUID stand-in used for routing tiebreaks).
  virtual int backend_id() const = 0;
  virtual int max_batch_size() const = 0;

  // --- Admission (scheduler-facing, paper §5.1 constraints) ---

  /// Constraint check: below max batch size and enough KvCache headroom for
  /// the request's re-prefill (prompt + generated + one step).
  virtual bool CanAdmit(const ServingRequest& req) const = 0;

  /// Prefill tokens this backend's shared-prefix cache would serve for
  /// `req` (0 = cold). The scheduler uses it as a routing affinity signal;
  /// backends without a prefix cache keep the default.
  virtual std::int64_t PrefixHitTokens(const ServingRequest& req) const {
    (void)req;
    return 0;
  }

  /// Adds a request to the working set. The request object stays owned by
  /// the caller (the serving tier); a request with progress re-prefills
  /// prompt + generated in its first step (migration re-add).
  virtual void Admit(ServingRequest* req, double now) = 0;

  /// Removes a request (migration-evict or user cancel), releasing its
  /// KvCache, and returns a snapshot of everything needed to resume it
  /// elsewhere. nullopt when the id is not in the working set.
  virtual std::optional<RequestSnapshot> Cancel(std::int64_t request_id) = 0;

  // --- Execution ---

  /// True when some request could run at time `now` (adapter ready).
  virtual bool HasRunnableWork(double now) const = 0;
  /// True when any request is assigned (runnable or still loading).
  virtual bool HasAnyWork() const = 0;
  /// Earliest time a currently-blocked request becomes runnable (nullopt
  /// when nothing is blocked).
  virtual std::optional<double> NextReadyTime(double now) const = 0;

  /// KvCache-pressure victim query (§5.3): requests (newest first) that must
  /// be evicted before the next step fits. Empty when the next step fits.
  virtual std::vector<std::int64_t> SelectEvictionVictims(double now) const = 0;

  /// Runs one batched model invocation at time `now`.
  virtual StepResult Step(double now) = 0;

  // --- Introspection ---

  virtual int working_set_size() const = 0;
  /// The request with this id, or nullptr when not in the working set.
  virtual ServingRequest* Find(std::int64_t request_id) const = 0;
  /// The most recently admitted request (migration-victim order), or
  /// nullptr when the working set is empty.
  virtual ServingRequest* NewestRequest() const = 0;
};

}  // namespace punica
