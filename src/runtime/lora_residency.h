// On-demand LoRA weight loading (paper §5.2).
//
// LoRA adapters are ~1% of the backbone and live in host memory; loading one
// is an asynchronous host→device copy (~2 ms over PCIe Gen4 ×16) that
// overlaps with compute. A request whose adapter is still in flight simply
// sits out of the batch until the copy's ready time passes — "by the end of
// the model execution, the weight already finished loading."
//
// Device-side adapter memory is a fixed budget managed LRU; pinned (in-use)
// adapters are never evicted.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/segment.h"

namespace punica {

class LoraResidency {
 public:
  /// `capacity_bytes` of device memory reserved for adapters;
  /// `adapter_bytes` the (uniform) size of one adapter;
  /// `load_latency_s` the PCIe copy time for one adapter.
  LoraResidency(std::int64_t capacity_bytes, std::int64_t adapter_bytes,
                double load_latency_s);

  /// Ensures `id` is resident or loading. Returns the absolute time at which
  /// the adapter is usable (== `now` when already resident). May evict
  /// least-recently-used unpinned adapters to make room.
  double Touch(LoraId id, double now);

  /// True when resident and its load has completed by `now`.
  bool IsReady(LoraId id, double now) const;

  void Pin(LoraId id);
  void Unpin(LoraId id);

  std::size_t resident_count() const { return entries_.size(); }
  std::int64_t used_bytes() const { return used_bytes_; }
  std::int64_t capacity_bytes() const { return capacity_bytes_; }
  std::uint64_t load_count() const { return load_count_; }
  std::uint64_t hit_count() const { return hit_count_; }

 private:
  struct Entry {
    double ready_time = 0.0;
    std::uint64_t last_use = 0;
    int pins = 0;
  };

  void EvictIfNeeded();

  std::int64_t capacity_bytes_;
  std::int64_t adapter_bytes_;
  double load_latency_s_;
  std::unordered_map<LoraId, Entry> entries_;
  std::int64_t used_bytes_ = 0;
  std::uint64_t use_clock_ = 0;
  std::uint64_t load_count_ = 0;
  std::uint64_t hit_count_ = 0;
};

}  // namespace punica
