// The per-GPU Punica runner (paper §5): a continuous-batching execution loop
// over a working set of requests, with
//   * mixed prefill + decode invocations (prefill batch limited to 1, §5),
//     chunked under an optional per-step token budget (max_step_tokens)
//     using the same split definition as the numeric Engine,
//   * LoRA-grouped batch ordering feeding SGMV segments,
//   * on-demand LoRA loading overlapped with compute (§5.2),
//   * KvCache token accounting with evict-newest victim selection for
//     migration under memory pressure (§5.3).
//
// This runner is the simulated tier of the ExecutionBackend interface: step
// latency comes from the analytical CostModel, so cluster-scale experiments
// run in virtual time. The numeric tier (real tiny-model execution) is
// EngineBackend over Engine; the scheduler drives either through the same
// interface.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "gpu/costmodel.h"
#include "model/config.h"
#include "runtime/backend.h"
#include "runtime/lora_residency.h"
#include "runtime/request.h"
#include "util/stats.h"

namespace punica {

/// Victim selection under KvCache pressure. The paper evicts the *newest*
/// request, preserving FCFS; kOldest is provided for the ablation bench
/// (it migrates the requests with the largest caches, maximising wasted
/// recomputation and starving the oldest requests).
enum class EvictPolicy { kNewest, kOldest };

struct RunnerConfig {
  int max_batch_size = 32;  ///< profiled sweet spot on A100 (paper §5.1)
  int prefill_limit = 1;    ///< prefill requests per invocation (paper §5)
  /// Per-step token budget for chunked prefill (0 = unlimited). Decode
  /// rows count against it and are never trimmed; pending prefills consume
  /// the remainder FCFS as chunks — the same SplitPrefillChunks definition
  /// (runtime/chunking.h) the numeric Engine steps with, so both tiers
  /// produce identical chunk sequences for identical workloads.
  std::int64_t max_step_tokens = 0;
  EvictPolicy evict_policy = EvictPolicy::kNewest;
  std::int64_t kv_capacity_tokens = 0;
  /// Shared-prefix KV cache (token-granular counterpart of the numeric
  /// tier's page-level sharing). Only requests annotated with a
  /// prefix_group / shared_prefix_len participate, so traces without
  /// shared system prompts behave exactly as before.
  bool enable_prefix_cache = true;
  int tp_degree = 1;
  int lora_rank = 16;
  std::int64_t lora_budget_bytes = 2LL * 1024 * 1024 * 1024;
  std::int64_t lora_adapter_bytes = 80LL * 1024 * 1024;
  double lora_load_latency_s = 2e-3;
};

class GpuRunner : public ExecutionBackend {
 public:
  GpuRunner(int gpu_id, const RunnerConfig& config,
            const LlamaConfig& model_config, const CostModel* cost_model);

  int gpu_id() const { return gpu_id_; }
  const RunnerConfig& config() const { return config_; }

  // --- ExecutionBackend ---

  int backend_id() const override { return gpu_id_; }
  int max_batch_size() const override { return config_.max_batch_size; }

  /// Constraint check: below max batch size and enough KvCache headroom.
  bool CanAdmit(const ServingRequest& req) const override;

  /// Prefill tokens this GPU's cached tenant prefix would cover for `req`
  /// (the scheduler's affinity signal).
  std::int64_t PrefixHitTokens(const ServingRequest& req) const override;

  /// Adds a request to the working set; kicks off its LoRA load if needed.
  /// The request joins batches once its adapter is ready.
  void Admit(ServingRequest* req, double now) override;

  /// Removes a request (migration-evict or user cancel), releasing its
  /// KvCache. The snapshot carries the synthetic prompt/generated lengths;
  /// all real state lives in the caller-owned ServingRequest.
  std::optional<RequestSnapshot> Cancel(std::int64_t request_id) override;

  /// True when some request could run at time `now` (adapter ready).
  bool HasRunnableWork(double now) const override;
  /// True when any request is assigned (runnable or still loading).
  bool HasAnyWork() const override { return !slots_.empty(); }
  /// Earliest time a currently-blocked request becomes runnable (or nullopt).
  std::optional<double> NextReadyTime(double now) const override;

  /// Requests (newest first) that must be evicted before the next step fits
  /// in the KvCache — the migration victims of §5.3. Empty when the next
  /// step fits.
  std::vector<std::int64_t> SelectEvictionVictims(double now) const override;

  /// Runs one batched model invocation at time `now`. Emitted tokens carry
  /// the per-request sequence tag (generated count − 1), not real ids.
  StepResult Step(double now) override;

  int working_set_size() const override {
    return static_cast<int>(slots_.size());
  }
  /// The request with this id, or nullptr when not in the working set.
  ServingRequest* Find(std::int64_t request_id) const override;
  /// The most recently admitted request (migration-victim order), or
  /// nullptr when the working set is empty.
  ServingRequest* NewestRequest() const override;

  // --- Simulated-tier introspection ---

  /// KvCache tokens a request needs if admitted now (prompt + already
  /// generated + one step of headroom).
  std::int64_t KvTokensNeeded(const ServingRequest& req) const;
  std::int64_t kv_used_tokens() const { return kv_used_tokens_; }
  std::int64_t kv_free_tokens() const {
    return config_.kv_capacity_tokens - kv_used_tokens_;
  }
  std::vector<std::int64_t> WorkingIds() const;
  const LoraResidency& lora_residency() const { return lora_; }
  /// Counters plus point-in-time gauges (token-denominated on this tier:
  /// pages_in_use/free report tokens, shared_pages reports cached tokens).
  PrefixCacheStats prefix_cache_stats() const;
  std::int64_t prefix_cached_tokens() const;

 private:
  /// `needs_prefill` is true from admission until the final prefill chunk;
  /// mid-prefill (chunked prefill) is `needs_prefill && kv_len > 0` —
  /// kv_len tracks the tokens resident so far (cache-aliased prefix
  /// included), growing chunk by chunk.
  struct Slot {
    ServingRequest* req = nullptr;
    std::int64_t kv_len = 0;   ///< tokens cached on this GPU
    bool needs_prefill = true;
    std::int64_t prefix_hit = 0;  ///< prefill tokens served by the cache
                                  ///< (resolved at the first chunk)
    std::uint64_t admit_seq = 0;
    double lora_ready_time = 0.0;
  };

  /// A cached tenant prefix: `tokens` KvCache tokens owned by the cache
  /// (charged once, shared by every resident request of the group).
  struct CachedPrefix {
    std::int64_t tokens = 0;
    std::uint64_t stamp = 0;  ///< logical recency (deterministic LRU)
  };

  /// One planned prefill: resume point and chunk length under the step
  /// token budget. The cache hit is resolved at the first chunk (plan
  /// time) — the numeric tier resolves at prefill time too, so
  /// tenant-mates admitted in one wave still hit once the first registers.
  struct PlannedPrefill {
    const Slot* slot = nullptr;
    std::int64_t start = 0;  ///< tokens already resident (the hit, for a
                             ///< first chunk)
    std::int64_t chunk = 0;  ///< tokens this step (0 = budget-deferred)
    std::int64_t total = 0;  ///< full re-prefill length
    bool first_chunk = false;
  };
  struct PlannedStep {
    std::vector<PlannedPrefill> prefills;
    std::vector<const Slot*> decodes;
    std::int64_t kv_growth = 0;
  };
  /// Plans the next step; requests in `exclude` (victim simulation) are
  /// treated as already evicted.
  PlannedStep PlanStep(double now,
                       const std::vector<std::int64_t>* exclude =
                           nullptr) const;

  void ReleaseSlot(std::map<std::int64_t, Slot>::iterator it);
  /// Prefill tokens the cache covers for `req` right now (0 = cold).
  std::int64_t HitTokens(const ServingRequest& req) const;
  /// Cached tokens held by groups with no resident request — reclaimable
  /// without touching live state (the token analogue of exclusively
  /// entry-held pages).
  std::int64_t ReclaimableCacheTokens() const;
  bool EvictOneCachedPrefix();
  /// True when any resident slot belongs to `group`.
  bool GroupResident(std::int64_t group) const;

  int gpu_id_;
  RunnerConfig config_;
  LlamaConfig model_config_;
  const CostModel* cost_model_;
  std::map<std::int64_t, Slot> slots_;  ///< ordered by request id (stable)
  std::map<std::int64_t, CachedPrefix> prefix_cache_;  ///< by prefix_group
  std::map<std::int64_t, int> group_residents_;  ///< resident slots per group
  PrefixCacheStats cache_stats_;
  std::uint64_t cache_clock_ = 0;
  std::int64_t kv_used_tokens_ = 0;
  std::uint64_t next_admit_seq_ = 0;
  LoraResidency lora_;
};

}  // namespace punica
