#include "runtime/engine.h"

#include <algorithm>

#include "util/check.h"

namespace punica {

Engine::Engine(LlamaModel* model, const KvCacheConfig& kv_config,
               EngineConfig config)
    : model_(model), kv_(kv_config), config_(config) {
  PUNICA_CHECK(model_ != nullptr);
  PUNICA_CHECK(config_.max_batch_size > 0);
  PUNICA_CHECK(config_.prefill_limit >= 1);
}

std::int64_t Engine::Admit(Slot slot, std::vector<std::int32_t> generated) {
  PUNICA_CHECK_MSG(CanAdmit(), "working set full; queue at the caller");
  PUNICA_CHECK(!slot.prompt.empty());
  slot.seq = kv_.CreateSequence();
  slot.admit_seq = next_admit_seq_++;
  std::int64_t id = next_id_++;
  outputs_[id] = std::move(generated);
  active_.emplace(id, std::move(slot));
  return id;
}

std::int64_t Engine::AddRequest(LoraId lora,
                                std::vector<std::int32_t> prompt,
                                int max_new_tokens) {
  PUNICA_CHECK(max_new_tokens >= 1);
  Slot slot;
  slot.lora = lora;
  slot.prompt = std::move(prompt);
  slot.max_new_tokens = max_new_tokens;
  return Admit(std::move(slot), {});
}

std::int64_t Engine::AddMigrated(const RequestSnapshot& snapshot) {
  Slot slot;
  slot.lora = snapshot.lora;
  slot.prompt = snapshot.prompt;
  slot.max_new_tokens = snapshot.max_new_tokens;
  slot.resume_from = static_cast<std::int32_t>(snapshot.generated.size());
  return Admit(std::move(slot), snapshot.generated);
}

std::optional<RequestSnapshot> Engine::Cancel(std::int64_t id) {
  auto it = active_.find(id);
  if (it == active_.end()) return std::nullopt;
  RequestSnapshot snap;
  snap.lora = it->second.lora;
  snap.prompt = it->second.prompt;
  snap.generated = outputs_.at(id);
  snap.max_new_tokens = it->second.max_new_tokens;
  kv_.FreeSequence(it->second.seq);
  active_.erase(it);
  return snap;
}

bool Engine::IsDone(const Slot& slot,
                    const std::vector<std::int32_t>& out) const {
  if (static_cast<int>(out.size()) >= slot.max_new_tokens) return true;
  return config_.eos_token >= 0 && !out.empty() &&
         out.back() == config_.eos_token;
}

Engine::StepResult Engine::Step() {
  StepResult result;
  if (active_.empty()) return result;

  // Select up to prefill_limit prefills (FCFS) and all decodes.
  std::vector<std::pair<std::int64_t, Slot*>> prefills;
  std::vector<std::pair<std::int64_t, Slot*>> decodes;
  {
    std::vector<std::pair<std::int64_t, Slot*>> want_prefill;
    for (auto& [id, slot] : active_) {
      if (slot.needs_prefill) {
        want_prefill.emplace_back(id, &slot);
      } else {
        decodes.emplace_back(id, &slot);
      }
    }
    std::sort(want_prefill.begin(), want_prefill.end(),
              [](const auto& a, const auto& b) {
                return a.second->admit_seq < b.second->admit_seq;
              });
    if (static_cast<int>(want_prefill.size()) > config_.prefill_limit) {
      want_prefill.resize(static_cast<std::size_t>(config_.prefill_limit));
    }
    prefills = std::move(want_prefill);
  }
  if (prefills.empty() && decodes.empty()) return result;

  // Group by LoRA id within each section so SGMV segments are maximal; the
  // prefill tail and decode head can then share a segment (paper §6).
  auto by_lora = [](const auto& a, const auto& b) {
    if (a.second->lora != b.second->lora) {
      return a.second->lora < b.second->lora;
    }
    return a.second->admit_seq < b.second->admit_seq;
  };
  std::stable_sort(prefills.begin(), prefills.end(), by_lora);
  std::stable_sort(decodes.begin(), decodes.end(), by_lora);
  if (!prefills.empty() && !decodes.empty()) {
    // Rotate decodes so the head shares the last prefill's LoRA when one
    // exists.
    LoraId tail = prefills.back().second->lora;
    auto match = std::find_if(decodes.begin(), decodes.end(),
                              [&](const auto& d) {
                                return d.second->lora == tail;
                              });
    if (match != decodes.end()) {
      std::rotate(decodes.begin(), match, decodes.end());
    }
  }

  // Build batch entries and token rows. KvCache is extended up front so the
  // layer can write K/V at every row position.
  std::vector<BatchEntry> entries;
  std::vector<std::int32_t> token_ids;
  for (auto& [id, slot] : prefills) {
    const auto& out = outputs_.at(id);
    std::int32_t chunk =
        static_cast<std::int32_t>(slot->prompt.size()) + slot->resume_from;
    PUNICA_CHECK_MSG(kv_.Extend(slot->seq, chunk),
                     "KvCache exhausted; migrate requests first");
    entries.push_back({.seq = slot->seq,
                       .lora = slot->lora,
                       .num_tokens = chunk,
                       .pos_offset = 0,
                       .is_prefill = true});
    token_ids.insert(token_ids.end(), slot->prompt.begin(),
                     slot->prompt.end());
    token_ids.insert(token_ids.end(), out.begin(),
                     out.begin() + slot->resume_from);
  }
  for (auto& [id, slot] : decodes) {
    std::int64_t pos = kv_.SeqLen(slot->seq);
    PUNICA_CHECK_MSG(kv_.Extend(slot->seq, 1),
                     "KvCache exhausted; migrate requests first");
    entries.push_back({.seq = slot->seq,
                       .lora = slot->lora,
                       .num_tokens = 1,
                       .pos_offset = pos,
                       .is_prefill = false});
    token_ids.push_back(outputs_.at(id).back());
  }

  ModelBatch batch = ModelBatch::Build(std::move(entries));
  result.num_segments = batch.segments.num_segments();
  result.batch_size = static_cast<int>(prefills.size() + decodes.size());
  result.prefill_requests = static_cast<int>(prefills.size());

  std::vector<std::int32_t> next = model_->ForwardGreedy(batch, token_ids,
                                                         kv_);

  // Apply results in entry order: prefills first, then decodes.
  std::size_t out_idx = 0;
  auto apply = [&](std::int64_t id, Slot* slot, bool was_prefill) {
    std::int32_t token = next[out_idx++];
    auto& out = outputs_.at(id);
    out.push_back(token);
    result.emitted.emplace_back(id, token);
    if (was_prefill) slot->needs_prefill = false;
    if (IsDone(*slot, out)) {
      kv_.FreeSequence(slot->seq);
      result.finished.push_back(id);
      active_.erase(id);
    }
  };
  for (auto& [id, slot] : prefills) apply(id, slot, true);
  for (auto& [id, slot] : decodes) apply(id, slot, false);
  return result;
}

const std::vector<std::int32_t>* Engine::Output(std::int64_t id) const {
  auto it = outputs_.find(id);
  return it == outputs_.end() ? nullptr : &it->second;
}

}  // namespace punica
