#include "runtime/engine.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"

namespace punica {
namespace {

/// The re-prefill chain of a request: prompt followed by the generated
/// tokens that must be recomputed (migration resume).
std::vector<std::int32_t> Chain(std::span<const std::int32_t> prompt,
                                std::span<const std::int32_t> generated,
                                std::int64_t resume) {
  std::vector<std::int32_t> chain(prompt.begin(), prompt.end());
  chain.insert(chain.end(), generated.begin(),
               generated.begin() + static_cast<std::ptrdiff_t>(resume));
  return chain;
}

/// Prefix-index key: the LoRA id leads the token string, because cached
/// K/V bits depend on the adapter (the K/V projections carry per-request
/// LoRA addons) — two tenants sharing literal prompt text share nothing in
/// the cache. Every key carries the tag, so position 0 only ever compares
/// tags against tags.
std::vector<std::int32_t> IndexKey(LoraId lora,
                                   std::span<const std::int32_t> chain) {
  std::vector<std::int32_t> key;
  key.reserve(chain.size() + 1);
  key.push_back(static_cast<std::int32_t>(lora));
  key.insert(key.end(), chain.begin(), chain.end());
  return key;
}

}  // namespace

Engine::Engine(LlamaModel* model, const KvCacheConfig& kv_config,
               EngineConfig config)
    : model_(model), kv_(kv_config), config_(config) {
  PUNICA_CHECK(model_ != nullptr);
  PUNICA_CHECK(config_.max_batch_size > 0);
  PUNICA_CHECK(config_.prefill_limit >= 1);
  PUNICA_CHECK(config_.min_prefix_tokens >= 1);
  PUNICA_CHECK(config_.max_cached_prefixes >= 0);
}

std::int32_t Engine::ResolveEos(std::int32_t spec_eos) const {
  if (spec_eos >= 0 && config_.eos_token >= 0) {
    PUNICA_CHECK_MSG(spec_eos == config_.eos_token,
                     "request and engine disagree on the EOS token");
  }
  return spec_eos >= 0 ? spec_eos : config_.eos_token;
}

std::int64_t Engine::Admit(Slot slot, std::vector<std::int32_t> generated) {
  // Admission-failure audit: every check precedes KvCache mutation, so a
  // failed admission can never leak a sequence or page references. The
  // prefix-cache lookup happens at prefill time (not here): a tenant-mate
  // admitted in the same wave may register the prefix before this slot's
  // prefill runs, and a fork taken now could go stale under eviction.
  PUNICA_CHECK_MSG(CanAdmit(), "working set full; queue at the caller");
  PUNICA_CHECK(!slot.prompt.empty());
  slot.seq = kv_.CreateSequence();
  slot.admit_seq = next_admit_seq_++;
  std::int64_t id = next_id_++;
  outputs_[id] = std::move(generated);
  active_.emplace(id, std::move(slot));
  return id;
}

RequestHandle Engine::AddRequest(const SubmitSpec& spec) {
  PUNICA_CHECK(spec.max_new_tokens >= 1);
  PUNICA_CHECK_MSG(!spec.prompt_tokens.empty(),
                   "the numeric engine needs real prompt tokens");
  Slot slot;
  slot.lora = spec.lora;
  slot.prompt = spec.prompt_tokens;
  slot.max_new_tokens = spec.max_new_tokens;
  slot.eos_token = ResolveEos(spec.eos_token);
  return RequestHandle(Admit(std::move(slot), {}));
}

RequestHandle Engine::AddMigrated(const RequestSnapshot& snapshot) {
  // A migrated request must keep the stopping condition it started with:
  // the destination engine may not silently apply a different EOS token.
  if (config_.eos_token >= 0) {
    PUNICA_CHECK_MSG(snapshot.eos_token == config_.eos_token,
                     "migration changed the EOS stop condition");
  }
  Slot slot;
  slot.lora = snapshot.lora;
  slot.prompt = snapshot.prompt;
  slot.max_new_tokens = snapshot.max_new_tokens;
  slot.eos_token = snapshot.eos_token;
  slot.resume_from = static_cast<std::int32_t>(snapshot.generated.size());
  // Admit's index lookup covers prompt + generated, so a surviving prefix
  // (registered when this request was evicted here, or by a sibling with
  // the same system prompt) shrinks the rebuild instead of recomputing the
  // whole history.
  return RequestHandle(Admit(std::move(slot), snapshot.generated));
}

void Engine::RegisterPrefix(const Slot& slot,
                            std::span<const std::int32_t> chain,
                            std::int64_t n_tokens) {
  if (!config_.enable_prefix_cache) return;
  if (n_tokens < config_.min_prefix_tokens ||
      config_.max_cached_prefixes == 0) {
    return;
  }
  std::vector<std::int32_t> key = IndexKey(
      slot.lora, chain.subspan(0, static_cast<std::size_t>(n_tokens)));
  if (std::optional<std::int64_t> existing = prefix_.FindExact(key)) {
    // Already cached — the hot steady-state path. Touch and stop before
    // any fork (no Retain/Release churn over the prompt's pages) and
    // before any cap eviction (re-registration must not thrash unrelated
    // entries).
    prefix_.Touch(*existing);
    return;
  }
  SeqId holder = kv_.ForkFrom(slot.seq, n_tokens);
  PrefixIndex::InsertResult r = prefix_.Insert(key, holder);
  PUNICA_CHECK(r.inserted);
  ++cache_stats_.insertions;
  // Respect the entry cap (LRU yields; the just-inserted entry carries
  // the freshest stamp, so it is only ever evicted when everything older
  // is pinned).
  while (static_cast<std::int32_t>(prefix_.size()) >
         config_.max_cached_prefixes) {
    if (!EvictOneCachedPrefix()) break;
  }
}

bool Engine::EvictOneCachedPrefix() {
  std::optional<std::int64_t> victim = prefix_.LruVictim();
  if (!victim.has_value()) return false;
  kv_.FreeSequence(prefix_.Erase(*victim));
  ++cache_stats_.evictions;
  return true;
}

void Engine::ExtendOrReclaim(SeqId seq, std::int64_t tokens) {
  while (!kv_.Extend(seq, tokens)) {
    PUNICA_CHECK_MSG(EvictOneCachedPrefix(),
                     "KvCache exhausted; migrate requests first");
  }
}

std::optional<RequestSnapshot> Engine::Cancel(std::int64_t id) {
  auto it = active_.find(id);
  if (it == active_.end()) return std::nullopt;
  Slot& slot = it->second;
  RequestSnapshot snap;
  snap.request_id = id;
  snap.lora = slot.lora;
  snap.prompt = slot.prompt;
  snap.generated = outputs_.at(id);
  snap.prompt_len = static_cast<std::int32_t>(snap.prompt.size());
  snap.generated_len = static_cast<std::int32_t>(snap.generated.size());
  snap.max_new_tokens = slot.max_new_tokens;
  snap.eos_token = slot.eos_token;
  // The evict half of migration: register the whole computed chain before
  // releasing it, so a re-admission (AddMigrated, consolidation bounce-back)
  // rebuilds from the surviving prefix instead of re-prefilling everything.
  // Skipped for never-prefilled slots — their cache holds nothing beyond
  // what the index already has.
  if (!slot.needs_prefill) {
    std::vector<std::int32_t> chain =
        Chain(slot.prompt, snap.generated,
              static_cast<std::int64_t>(snap.generated.size()));
    RegisterPrefix(slot, chain, kv_.SeqLen(slot.seq));
  }
  kv_.FreeSequence(slot.seq);
  active_.erase(it);
  return snap;
}

bool Engine::IsDone(const Slot& slot,
                    const std::vector<std::int32_t>& out) const {
  if (static_cast<int>(out.size()) >= slot.max_new_tokens) return true;
  return slot.eos_token >= 0 && !out.empty() &&
         out.back() == slot.eos_token;
}

std::vector<std::int64_t> Engine::PlannedPrefillIds() const {
  std::vector<std::int64_t> ids;
  for (const auto& [id, slot] : active_) {
    if (slot.needs_prefill) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end(), [this](std::int64_t a, std::int64_t b) {
    return active_.at(a).admit_seq < active_.at(b).admit_seq;
  });
  if (static_cast<int>(ids.size()) > config_.prefill_limit) {
    ids.resize(static_cast<std::size_t>(config_.prefill_limit));
  }
  return ids;
}

std::int32_t Engine::NewPagesFor(std::int64_t target_len,
                                 std::int64_t usable) const {
  // The one pages-for-a-chain-with-hit formula: pages beyond the aliased
  // whole pages, plus one CoW copy when the fork boundary is partial.
  // Admission (GrowthPages, CanAdmitPages, PagesNeededForAdmission) and
  // Step's fork+ExtendOrReclaim must agree on this arithmetic.
  std::int32_t pages = kv_.config().PagesNeeded(target_len) -
                       kv_.config().PagesNeeded(usable);
  if (usable % kv_.config().page_size != 0) pages += 1;
  return pages;
}

std::int32_t Engine::GrowthPages(std::int64_t id, const Slot& slot) const {
  if (slot.needs_prefill) {
    // The prefill will fork the longest cached prefix of its chain and
    // extend to the full chain; a partial boundary page costs a CoW copy.
    const auto& out = outputs_.at(id);
    std::int64_t total =
        static_cast<std::int64_t>(slot.prompt.size()) + slot.resume_from;
    std::int64_t usable = PrefixHitTokens(
        slot.lora, slot.prompt,
        std::span<const std::int32_t>(out).first(
            static_cast<std::size_t>(slot.resume_from)));
    return NewPagesFor(total, usable);
  }
  std::int64_t cur = kv_.SeqLen(slot.seq);
  std::int32_t pages =
      kv_.config().PagesNeeded(cur + 1) - kv_.SeqPages(slot.seq);
  // Copy-on-write: a decode that writes into a shared partial tail page
  // (the prompt boundary aliased by a cache entry) deep-copies it first.
  if (cur % kv_.config().page_size != 0 &&
      kv_.PageRefCount(slot.seq, kv_.SeqPages(slot.seq) - 1) > 1) {
    pages += 1;
  }
  return pages;
}

std::int32_t Engine::ReclaimableCachePages(std::int64_t exclude_entry) const {
  // A page returns to the pool when every reference is dropped; evicting
  // all unpinned entries frees exactly the pages whose references all come
  // from those entries. `exclude_entry` (if ≥ 0) is treated as staying
  // cached — the admission path uses it so a hit's own entry never doubles
  // as evictable headroom.
  std::unordered_map<PageId, std::int32_t> entry_refs;
  for (const auto& [id, seq] : prefix_.EvictableEntries()) {
    if (id == exclude_entry) continue;
    for (PageId p : kv_.PageTable(seq)) ++entry_refs[p];
  }
  std::int32_t reclaimable = 0;
  for (const auto& [page, refs] : entry_refs) {
    if (kv_.PageRefCount(page) == refs) ++reclaimable;
  }
  return reclaimable;
}

std::int32_t Engine::AvailablePages() const {
  return kv_.free_pages() + ReclaimableCachePages();
}

Engine::ChainMatch Engine::LookupChain(
    LoraId lora, std::span<const std::int32_t> prompt,
    std::span<const std::int32_t> generated) const {
  ChainMatch cm;
  if (!config_.enable_prefix_cache) return cm;
  auto chain_len = static_cast<std::int64_t>(prompt.size()) +
                   static_cast<std::int64_t>(generated.size());
  if (chain_len == 0) return cm;
  // One flat key: LoRA tag + prompt + generated, no intermediate chain
  // copy — this runs per backend per routing decision.
  std::vector<std::int32_t> key;
  key.reserve(static_cast<std::size_t>(chain_len) + 1);
  key.push_back(static_cast<std::int32_t>(lora));
  key.insert(key.end(), prompt.begin(), prompt.end());
  key.insert(key.end(), generated.begin(), generated.end());
  PrefixIndex::Match m = prefix_.Lookup(key);
  std::int64_t usable = std::min(m.matched_tokens - 1, chain_len - 1);
  if (usable < config_.min_prefix_tokens) return cm;
  cm.entry = m.entry;
  cm.usable = usable;
  return cm;
}

std::int64_t Engine::PrefixHitTokens(
    LoraId lora, std::span<const std::int32_t> prompt,
    std::span<const std::int32_t> generated) const {
  return LookupChain(lora, prompt, generated).usable;
}

std::int32_t Engine::PagesNeededForAdmission(
    LoraId lora, std::span<const std::int32_t> prompt,
    std::span<const std::int32_t> generated) const {
  auto chain_len = static_cast<std::int64_t>(prompt.size()) +
                   static_cast<std::int64_t>(generated.size());
  // Re-prefill chain plus one decode slot, net of the aliased prefix.
  return NewPagesFor(chain_len + 1,
                     LookupChain(lora, prompt, generated).usable);
}

bool Engine::CanAdmitPages(LoraId lora,
                           std::span<const std::int32_t> prompt,
                           std::span<const std::int32_t> generated) const {
  auto chain_len = static_cast<std::int64_t>(prompt.size()) +
                   static_cast<std::int64_t>(generated.size());
  ChainMatch cm = LookupChain(lora, prompt, generated);
  std::int32_t pages = NewPagesFor(chain_len + 1, cm.usable);
  // The hit nets out the aliased pages on the assumption that its entry
  // stays cached — so that same entry must not be counted as reclaimable
  // headroom (double-counting admits infeasible requests, which then
  // bounce through the migration path forever).
  return pages <= kv_.free_pages() + ReclaimableCachePages(cm.entry);
}

PrefixCacheStats Engine::prefix_cache_stats() const {
  PrefixCacheStats s = cache_stats_;
  s.cached_entries = static_cast<std::int64_t>(prefix_.size());
  s.cached_tokens = prefix_.cached_tokens();
  s.pages_in_use = kv_.used_pages();
  s.shared_pages = kv_.shared_pages();
  s.free_pages = kv_.free_pages();
  return s;
}

std::vector<std::int64_t> Engine::SelectEvictionVictims() const {
  // Project the page demand of the next step exactly as Step() will run
  // it: the planned prefills plus every decode. Pages reclaimable from the
  // prefix cache count as free — Step evicts cached prefixes on demand
  // before any request must migrate.
  std::vector<std::int64_t> planned = PlannedPrefillIds();
  auto in_plan = [&](std::int64_t id) {
    if (!active_.at(id).needs_prefill) return true;
    for (std::int64_t pid : planned) {
      if (pid == id) return true;
    }
    return false;
  };

  std::int32_t demand = 0;
  for (const auto& [id, slot] : active_) {
    if (in_plan(id)) demand += GrowthPages(id, slot);
  }
  std::int32_t free = AvailablePages();
  if (demand <= free) return {};

  // Evict the newest requests (max admit_seq) until the step fits,
  // preserving FCFS (§5.3). Evicting releases a slot's exclusively held
  // pages (shared pages stay with their other holders) and removes its
  // contribution to this step's growth. Strictly newest-first, even
  // page-less prefills beyond the cut: skipping one would let it be
  // promoted into the prefill plan after a planned prefill below it is
  // evicted, adding page demand this projection never counted.
  std::vector<std::pair<std::int64_t, const Slot*>> by_newest;
  for (const auto& [id, slot] : active_) by_newest.emplace_back(id, &slot);
  std::sort(by_newest.begin(), by_newest.end(),
            [](const auto& a, const auto& b) {
              return a.second->admit_seq > b.second->admit_seq;
            });

  std::vector<std::int64_t> victims;
  for (const auto& [id, slot] : by_newest) {
    if (demand <= free) break;
    for (std::int32_t i = 0; i < kv_.SeqPages(slot->seq); ++i) {
      if (kv_.PageRefCount(slot->seq, i) == 1) ++free;
    }
    if (in_plan(id)) demand -= GrowthPages(id, *slot);
    victims.push_back(id);
  }
  return victims;
}

StepResult Engine::Step() {
  StepResult result;
  if (active_.empty()) return result;

  // Select up to prefill_limit prefills (FCFS) and all decodes — the same
  // plan SelectEvictionVictims projects page demand for.
  std::vector<std::pair<std::int64_t, Slot*>> prefills;
  std::vector<std::pair<std::int64_t, Slot*>> decodes;
  for (std::int64_t id : PlannedPrefillIds()) {
    prefills.emplace_back(id, &active_.at(id));
  }
  for (auto& [id, slot] : active_) {
    if (!slot.needs_prefill) decodes.emplace_back(id, &slot);
  }
  if (prefills.empty() && decodes.empty()) return result;

  // Group by LoRA id within each section so SGMV segments are maximal; the
  // prefill tail and decode head can then share a segment (paper §6).
  auto by_lora = [](const auto& a, const auto& b) {
    if (a.second->lora != b.second->lora) {
      return a.second->lora < b.second->lora;
    }
    return a.second->admit_seq < b.second->admit_seq;
  };
  std::stable_sort(prefills.begin(), prefills.end(), by_lora);
  std::stable_sort(decodes.begin(), decodes.end(), by_lora);
  if (!prefills.empty() && !decodes.empty()) {
    // Rotate decodes so the head shares the last prefill's LoRA when one
    // exists.
    LoraId tail = prefills.back().second->lora;
    auto match = std::find_if(decodes.begin(), decodes.end(),
                              [&](const auto& d) {
                                return d.second->lora == tail;
                              });
    if (match != decodes.end()) {
      std::rotate(decodes.begin(), match, decodes.end());
    }
  }

  // Resolve every prefill's cache hit and take its fork BEFORE any
  // ExtendOrReclaim runs: forking is refcount-only (never allocates), and
  // once a slot holds its aliased pages, reclaim-eviction of the source
  // entry cannot change the slot's page demand — so the demand
  // SelectEvictionVictims projected stays exactly the demand this step
  // realizes. (Resolving lazily instead would let an earlier prefill's
  // reclaim evict an entry a later prefill was projected to hit, aborting
  // in a state the victim query declared safe.) Hits resolve at prefill
  // time, not admission: a tenant-mate admitted in the same wave has
  // registered its prompt by now.
  std::vector<std::vector<std::int32_t>> prefill_chains;
  std::vector<std::int64_t> pinned_entries;
  prefill_chains.reserve(prefills.size());
  for (auto& [id, slot] : prefills) {
    const auto& out = outputs_.at(id);
    std::vector<std::int32_t> chain =
        Chain(slot->prompt, out, slot->resume_from);
    auto total = static_cast<std::int64_t>(chain.size());
    if (config_.enable_prefix_cache) {
      ++cache_stats_.lookups;
      PrefixIndex::Match m = prefix_.Lookup(IndexKey(slot->lora, chain));
      // matched_tokens counts the LoRA tag; the model must still see at
      // least one token row per prefill to emit the next-token logits, so
      // a full-chain hit reuses all but the last.
      std::int64_t usable = std::min(m.matched_tokens - 1, total - 1);
      if (usable >= config_.min_prefix_tokens) {
        kv_.FreeSequence(slot->seq);
        slot->seq = kv_.ForkFrom(m.seq, usable);
        slot->prefix_cached = usable;
        prefix_.Touch(m.entry);
        // Pin the source for the rest of this step: page refcounts already
        // keep the forked K/V alive, but pinning stops ExtendOrReclaim in
        // this same batch from evicting an entry that is demonstrably hot.
        prefix_.Pin(m.entry);
        pinned_entries.push_back(m.entry);
        ++cache_stats_.hits;
        cache_stats_.hit_tokens += usable;
      }
    }
    prefill_chains.push_back(std::move(chain));
  }

  // Build batch entries and token rows. KvCache is extended up front (the
  // fork aliases whole shared pages; Extend deep-copies the partial
  // boundary page — CoW — then grows) so the layer can write K/V at every
  // row position. A prefill covers only the uncached suffix of its chain:
  // the cached prefix's pages hold bits identical to what this prefill
  // would have written.
  std::vector<BatchEntry> entries;
  std::vector<std::int32_t> token_ids;
  for (std::size_t p = 0; p < prefills.size(); ++p) {
    auto& [id, slot] = prefills[p];
    const std::vector<std::int32_t>& chain = prefill_chains[p];
    auto total = static_cast<std::int64_t>(chain.size());
    std::int64_t suffix = total - slot->prefix_cached;
    PUNICA_CHECK(suffix >= 1);
    ExtendOrReclaim(slot->seq, suffix);
    entries.push_back({.seq = slot->seq,
                       .lora = slot->lora,
                       .num_tokens = static_cast<std::int32_t>(suffix),
                       .pos_offset = slot->prefix_cached,
                       .is_prefill = true});
    token_ids.insert(
        token_ids.end(),
        chain.begin() + static_cast<std::ptrdiff_t>(slot->prefix_cached),
        chain.end());
    result.prefill_tokens += static_cast<int>(suffix);
    result.prefix_hit_tokens += static_cast<int>(slot->prefix_cached);
    cache_stats_.prefill_tokens += suffix;
  }
  for (auto& [id, slot] : decodes) {
    std::int64_t pos = kv_.SeqLen(slot->seq);
    ExtendOrReclaim(slot->seq, 1);
    entries.push_back({.seq = slot->seq,
                       .lora = slot->lora,
                       .num_tokens = 1,
                       .pos_offset = pos,
                       .is_prefill = false});
    token_ids.push_back(outputs_.at(id).back());
  }

  ModelBatch batch = ModelBatch::Build(std::move(entries));
  result.num_segments = batch.segments.num_segments();
  result.batch_size = static_cast<int>(prefills.size() + decodes.size());
  result.prefill_requests = static_cast<int>(prefills.size());

  std::vector<std::int32_t> next = model_->ForwardGreedy(batch, token_ids,
                                                         kv_);

  // Apply results in entry order: prefills first, then decodes.
  std::size_t out_idx = 0;
  auto apply = [&](std::int64_t id, Slot* slot, bool was_prefill) {
    std::int32_t token = next[out_idx++];
    auto& out = outputs_.at(id);
    out.push_back(token);
    result.emitted.push_back({id, token});
    ++result.new_tokens;
    if (was_prefill) {
      slot->needs_prefill = false;
      // The prompt is now fully cached in this sequence — make it
      // discoverable for the next tenant-mate (a refcount alias, no copy).
      RegisterPrefix(*slot, slot->prompt,
                     static_cast<std::int64_t>(slot->prompt.size()));
    }
    if (IsDone(*slot, out)) {
      kv_.FreeSequence(slot->seq);
      result.finished.push_back(id);
      active_.erase(id);
    }
  };
  for (auto& [id, slot] : prefills) apply(id, slot, true);
  for (auto& [id, slot] : decodes) apply(id, slot, false);
  for (std::int64_t entry : pinned_entries) prefix_.Unpin(entry);
  return result;
}

const std::vector<std::int32_t>* Engine::Output(std::int64_t id) const {
  auto it = outputs_.find(id);
  return it == outputs_.end() ? nullptr : &it->second;
}

}  // namespace punica
