#include "runtime/engine.h"

#include <algorithm>
#include <tuple>
#include <unordered_map>

#include "runtime/chunking.h"
#include "util/check.h"

namespace punica {
namespace {

/// The re-prefill chain of a request: prompt followed by the generated
/// tokens that must be recomputed (migration resume).
std::vector<std::int32_t> Chain(std::span<const std::int32_t> prompt,
                                std::span<const std::int32_t> generated,
                                std::int64_t resume) {
  std::vector<std::int32_t> chain(prompt.begin(), prompt.end());
  chain.insert(chain.end(), generated.begin(),
               generated.begin() + static_cast<std::ptrdiff_t>(resume));
  return chain;
}

/// Prefix-index key: the LoRA id leads the token string, because cached
/// K/V bits depend on the adapter (the K/V projections carry per-request
/// LoRA addons) — two tenants sharing literal prompt text share nothing in
/// the cache. Every key carries the tag, so position 0 only ever compares
/// tags against tags.
std::vector<std::int32_t> IndexKey(LoraId lora,
                                   std::span<const std::int32_t> chain) {
  std::vector<std::int32_t> key;
  key.reserve(chain.size() + 1);
  key.push_back(static_cast<std::int32_t>(lora));
  key.insert(key.end(), chain.begin(), chain.end());
  return key;
}

}  // namespace

Engine::Engine(LlamaModel* model, const KvCacheConfig& kv_config,
               EngineConfig config)
    : model_(model), kv_(kv_config), config_(config) {
  PUNICA_CHECK(model_ != nullptr);
  PUNICA_CHECK(config_.max_batch_size > 0);
  PUNICA_CHECK(config_.prefill_limit >= 1);
  PUNICA_CHECK(config_.min_prefix_tokens >= 1);
  PUNICA_CHECK(config_.max_cached_prefixes >= 0);
}

std::int32_t Engine::ResolveEos(std::int32_t spec_eos) const {
  if (spec_eos >= 0 && config_.eos_token >= 0) {
    PUNICA_CHECK_MSG(spec_eos == config_.eos_token,
                     "request and engine disagree on the EOS token");
  }
  return spec_eos >= 0 ? spec_eos : config_.eos_token;
}

std::int64_t Engine::Admit(Slot slot, std::vector<std::int32_t> generated) {
  // Admission-failure audit: every check precedes KvCache mutation, so a
  // failed admission can never leak a sequence or page references. The
  // prefix-cache lookup happens at prefill time (not here): a tenant-mate
  // admitted in the same wave may register the prefix before this slot's
  // prefill runs, and a fork taken now could go stale under eviction.
  PUNICA_CHECK_MSG(CanAdmit(), "working set full; queue at the caller");
  PUNICA_CHECK(!slot.prompt.empty());
  slot.seq = kv_.CreateSequence();
  slot.admit_seq = next_admit_seq_++;
  std::int64_t id = next_id_++;
  outputs_[id] = std::move(generated);
  active_.emplace(id, std::move(slot));
  return id;
}

RequestHandle Engine::AddRequest(const SubmitSpec& spec) {
  PUNICA_CHECK(spec.max_new_tokens >= 1);
  PUNICA_CHECK_MSG(!spec.prompt_tokens.empty(),
                   "the numeric engine needs real prompt tokens");
  Slot slot;
  slot.lora = spec.lora;
  slot.prompt = spec.prompt_tokens;
  slot.max_new_tokens = spec.max_new_tokens;
  slot.eos_token = ResolveEos(spec.eos_token);
  return RequestHandle(Admit(std::move(slot), {}));
}

RequestHandle Engine::AddMigrated(const RequestSnapshot& snapshot) {
  // A migrated request must keep the stopping condition it started with:
  // the destination engine may not silently apply a different EOS token.
  if (config_.eos_token >= 0) {
    PUNICA_CHECK_MSG(snapshot.eos_token == config_.eos_token,
                     "migration changed the EOS stop condition");
  }
  Slot slot;
  slot.lora = snapshot.lora;
  slot.prompt = snapshot.prompt;
  slot.max_new_tokens = snapshot.max_new_tokens;
  slot.eos_token = snapshot.eos_token;
  slot.resume_from = static_cast<std::int32_t>(snapshot.generated.size());
  // Admit's index lookup covers prompt + generated, so a surviving prefix
  // (registered when this request was evicted here, or by a sibling with
  // the same system prompt) shrinks the rebuild instead of recomputing the
  // whole history.
  return RequestHandle(Admit(std::move(slot), snapshot.generated));
}

void Engine::RegisterPrefix(const Slot& slot,
                            std::span<const std::int32_t> chain,
                            std::int64_t n_tokens) {
  if (!config_.enable_prefix_cache) return;
  if (n_tokens < config_.min_prefix_tokens ||
      config_.max_cached_prefixes == 0) {
    return;
  }
  std::vector<std::int32_t> key = IndexKey(
      slot.lora, chain.subspan(0, static_cast<std::size_t>(n_tokens)));
  if (std::optional<std::int64_t> existing = prefix_.FindExact(key)) {
    // Already cached — the hot steady-state path. Touch and stop before
    // any fork (no Retain/Release churn over the prompt's pages) and
    // before any cap eviction (re-registration must not thrash unrelated
    // entries).
    prefix_.Touch(*existing);
    return;
  }
  SeqId holder = kv_.ForkFrom(slot.seq, n_tokens);
  PrefixIndex::InsertResult r = prefix_.Insert(key, holder);
  PUNICA_CHECK(r.inserted);
  ++cache_stats_.insertions;
  // Respect the entry cap (LRU yields; the just-inserted entry carries
  // the freshest stamp, so it is only ever evicted when everything older
  // is pinned).
  while (static_cast<std::int32_t>(prefix_.size()) >
         config_.max_cached_prefixes) {
    if (!EvictOneCachedPrefix()) break;
  }
}

bool Engine::EvictOneCachedPrefix() {
  std::optional<std::int64_t> victim = prefix_.LruVictim();
  if (!victim.has_value()) return false;
  kv_.FreeSequence(prefix_.Erase(*victim));
  ++cache_stats_.evictions;
  return true;
}

bool Engine::TryExtendOrReclaim(SeqId seq, std::int64_t tokens) {
  while (!kv_.Extend(seq, tokens)) {
    if (!EvictOneCachedPrefix()) return false;
  }
  return true;
}

void Engine::ExtendOrReclaim(SeqId seq, std::int64_t tokens) {
  PUNICA_CHECK_MSG(TryExtendOrReclaim(seq, tokens),
                   "KvCache exhausted; migrate requests first");
}

std::optional<RequestSnapshot> Engine::Cancel(std::int64_t id) {
  auto it = active_.find(id);
  if (it == active_.end()) return std::nullopt;
  Slot& slot = it->second;
  RequestSnapshot snap;
  snap.request_id = id;
  snap.lora = slot.lora;
  snap.prompt = slot.prompt;
  snap.generated = outputs_.at(id);
  snap.prompt_len = static_cast<std::int32_t>(snap.prompt.size());
  snap.generated_len = static_cast<std::int32_t>(snap.generated.size());
  snap.max_new_tokens = slot.max_new_tokens;
  snap.eos_token = slot.eos_token;
  // The evict half of migration: register the computed chain prefix before
  // releasing it, so a re-admission (AddMigrated, consolidation bounce-back)
  // rebuilds from the surviving prefix instead of re-prefilling everything.
  // Chunk-granular: a mid-prefill slot registers exactly the tokens its
  // chunks (plus any forked prefix) have written so far — the partial chain
  // a chunked prefill leaves behind is just as rebuildable as a whole one.
  // Never-stepped slots hold nothing.
  if (kv_.SeqLen(slot.seq) > 0) {
    std::vector<std::int32_t> chain =
        Chain(slot.prompt, snap.generated,
              static_cast<std::int64_t>(snap.generated.size()));
    RegisterPrefix(slot, chain, kv_.SeqLen(slot.seq));
  }
  kv_.FreeSequence(slot.seq);
  active_.erase(it);
  return snap;
}

bool Engine::IsDone(const Slot& slot,
                    const std::vector<std::int32_t>& out) const {
  if (static_cast<int>(out.size()) >= slot.max_new_tokens) return true;
  return slot.eos_token >= 0 && !out.empty() &&
         out.back() == slot.eos_token;
}

Engine::StepPlan Engine::PlanStep(
    const std::vector<std::int64_t>* exclude,
    std::map<std::int64_t, ChainMatch>* hit_memo) const {
  auto excluded = [&](std::int64_t id) {
    return exclude != nullptr &&
           std::find(exclude->begin(), exclude->end(), id) != exclude->end();
  };
  StepPlan plan;
  std::vector<std::int64_t> prefill_ids;
  for (const auto& [id, slot] : active_) {
    if (excluded(id)) continue;
    if (slot.needs_prefill) {
      prefill_ids.push_back(id);
    } else {
      plan.decode_ids.push_back(id);
    }
  }
  // FCFS by admission, cut to prefill_limit. A mid-prefill slot is by
  // construction among the oldest pending prefills (it made the cut when
  // its first chunk ran and the cut is stable), so it keeps its place in
  // the plan until its final chunk completes.
  std::sort(prefill_ids.begin(), prefill_ids.end(),
            [this](std::int64_t a, std::int64_t b) {
              return active_.at(a).admit_seq < active_.at(b).admit_seq;
            });
  if (static_cast<int>(prefill_ids.size()) > config_.prefill_limit) {
    prefill_ids.resize(static_cast<std::size_t>(config_.prefill_limit));
  }
  std::vector<std::int64_t> remaining;
  for (std::int64_t id : prefill_ids) {
    const Slot& slot = active_.at(id);
    PlannedPrefill p;
    p.id = id;
    p.total =
        static_cast<std::int64_t>(slot.prompt.size()) + slot.resume_from;
    std::int64_t consumed = kv_.SeqLen(slot.seq);
    p.first_chunk = consumed == 0;
    if (p.first_chunk) {
      // The fork the first chunk will take. Pure query; the index cannot
      // change between this plan and the fork inside the same Step, so
      // Step reuses the match verbatim instead of repeating the O(chain)
      // lookup — and the victim loop memoizes it across its replans.
      bool memoized = false;
      if (hit_memo != nullptr) {
        auto it = hit_memo->find(id);
        if (it != hit_memo->end()) {
          p.hit = it->second;
          memoized = true;
        }
      }
      if (!memoized) {
        const auto& out = outputs_.at(id);
        p.hit = LookupChain(slot.lora, slot.prompt,
                            std::span<const std::int32_t>(out).first(
                                static_cast<std::size_t>(slot.resume_from)));
        if (hit_memo != nullptr) (*hit_memo)[id] = p.hit;
      }
      p.start = p.hit.usable;
    } else {
      p.start = consumed;
    }
    remaining.push_back(p.total - p.start);
    plan.prefills.push_back(p);
  }
  std::vector<std::int64_t> chunks = SplitPrefillChunks(
      remaining, static_cast<std::int64_t>(plan.decode_ids.size()),
      config_.max_step_tokens);
  for (std::size_t i = 0; i < plan.prefills.size(); ++i) {
    plan.prefills[i].chunk = chunks[i];
  }
  return plan;
}

std::int32_t Engine::NewPagesFor(std::int64_t target_len,
                                 std::int64_t usable) const {
  // The one pages-for-a-chain-with-hit formula: pages beyond the aliased
  // whole pages, plus one CoW copy when the fork boundary is partial.
  // Admission (CanAdmitPages, PagesNeededForAdmission), the victim
  // projection (PagesForPlannedPrefill's first-chunk branch) and Step's
  // fork+ExtendOrReclaim must agree on this arithmetic.
  std::int32_t pages = kv_.config().PagesNeeded(target_len) -
                       kv_.config().PagesNeeded(usable);
  if (usable % kv_.config().page_size != 0) pages += 1;
  return pages;
}

std::int32_t Engine::PagesForPlannedPrefill(const PlannedPrefill& p) const {
  if (p.chunk == 0) return 0;
  if (p.first_chunk) {
    // The chunk forks the cached prefix at `start` and extends to
    // start+chunk; a partial fork boundary costs a CoW copy.
    return NewPagesFor(p.start + p.chunk, p.start);
  }
  const Slot& slot = active_.at(p.id);
  std::int32_t pages = kv_.config().PagesNeeded(p.start + p.chunk) -
                       kv_.SeqPages(slot.seq);
  // After a chunk has extended the sequence its tail page is exclusively
  // owned (Extend deep-copies a shared boundary before growing), but price
  // the CoW copy if it ever weren't.
  if (p.start % kv_.config().page_size != 0 &&
      kv_.PageRefCount(slot.seq, kv_.SeqPages(slot.seq) - 1) > 1) {
    pages += 1;
  }
  return pages;
}

std::int32_t Engine::DecodeGrowthPages(const Slot& slot) const {
  std::int64_t cur = kv_.SeqLen(slot.seq);
  std::int32_t pages =
      kv_.config().PagesNeeded(cur + 1) - kv_.SeqPages(slot.seq);
  // Copy-on-write: a decode that writes into a shared partial tail page
  // (the prompt boundary aliased by a cache entry) deep-copies it first.
  if (cur % kv_.config().page_size != 0 &&
      kv_.PageRefCount(slot.seq, kv_.SeqPages(slot.seq) - 1) > 1) {
    pages += 1;
  }
  return pages;
}

std::int32_t Engine::ReclaimableCachePages(std::int64_t exclude_entry) const {
  // A page returns to the pool when every reference is dropped; evicting
  // all unpinned entries frees exactly the pages whose references all come
  // from those entries. `exclude_entry` (if ≥ 0) is treated as staying
  // cached — the admission path uses it so a hit's own entry never doubles
  // as evictable headroom.
  std::unordered_map<PageId, std::int32_t> entry_refs;
  for (const auto& [id, seq] : prefix_.EvictableEntries()) {
    if (id == exclude_entry) continue;
    for (PageId p : kv_.PageTable(seq)) ++entry_refs[p];
  }
  std::int32_t reclaimable = 0;
  for (const auto& [page, refs] : entry_refs) {
    if (kv_.PageRefCount(page) == refs) ++reclaimable;
  }
  return reclaimable;
}

std::int32_t Engine::AvailablePages() const {
  return kv_.free_pages() + ReclaimableCachePages();
}

Engine::ChainMatch Engine::LookupChain(
    LoraId lora, std::span<const std::int32_t> prompt,
    std::span<const std::int32_t> generated) const {
  ChainMatch cm;
  if (!config_.enable_prefix_cache) return cm;
  auto chain_len = static_cast<std::int64_t>(prompt.size()) +
                   static_cast<std::int64_t>(generated.size());
  if (chain_len == 0) return cm;
  // One flat key: LoRA tag + prompt + generated, no intermediate chain
  // copy — this runs per backend per routing decision.
  std::vector<std::int32_t> key;
  key.reserve(static_cast<std::size_t>(chain_len) + 1);
  key.push_back(static_cast<std::int32_t>(lora));
  key.insert(key.end(), prompt.begin(), prompt.end());
  key.insert(key.end(), generated.begin(), generated.end());
  PrefixIndex::Match m = prefix_.Lookup(key);
  std::int64_t usable = std::min(m.matched_tokens - 1, chain_len - 1);
  if (usable < config_.min_prefix_tokens) return cm;
  cm.entry = m.entry;
  cm.seq = m.seq;
  cm.usable = usable;
  return cm;
}

std::int64_t Engine::PrefixHitTokens(
    LoraId lora, std::span<const std::int32_t> prompt,
    std::span<const std::int32_t> generated) const {
  return LookupChain(lora, prompt, generated).usable;
}

std::int32_t Engine::PagesNeededForAdmission(
    LoraId lora, std::span<const std::int32_t> prompt,
    std::span<const std::int32_t> generated) const {
  auto chain_len = static_cast<std::int64_t>(prompt.size()) +
                   static_cast<std::int64_t>(generated.size());
  // Re-prefill chain plus one decode slot, net of the aliased prefix.
  return NewPagesFor(chain_len + 1,
                     LookupChain(lora, prompt, generated).usable);
}

bool Engine::CanAdmitPages(LoraId lora,
                           std::span<const std::int32_t> prompt,
                           std::span<const std::int32_t> generated) const {
  auto chain_len = static_cast<std::int64_t>(prompt.size()) +
                   static_cast<std::int64_t>(generated.size());
  ChainMatch cm = LookupChain(lora, prompt, generated);
  std::int32_t pages = NewPagesFor(chain_len + 1, cm.usable);
  // The hit nets out the aliased pages on the assumption that its entry
  // stays cached — so that same entry must not be counted as reclaimable
  // headroom (double-counting admits infeasible requests, which then
  // bounce through the migration path forever).
  return pages <= kv_.free_pages() + ReclaimableCachePages(cm.entry);
}

PrefixCacheStats Engine::prefix_cache_stats() const {
  PrefixCacheStats s = cache_stats_;
  s.cached_entries = static_cast<std::int64_t>(prefix_.size());
  s.cached_tokens = prefix_.cached_tokens();
  s.pages_in_use = kv_.used_pages();
  s.shared_pages = kv_.shared_pages();
  s.free_pages = kv_.free_pages();
  return s;
}

std::vector<std::int64_t> Engine::SelectEvictionVictims() const {
  // Project the page demand of the next step exactly as Step() will run it
  // after the caller cancels the victims: chunk-granular prefill growth
  // (prefill is NOT atomic — only the next chunk's pages are demanded)
  // plus one token per decode. Pages reclaimable from the prefix cache
  // count as free — Step evicts cached prefixes on demand before any
  // request must migrate. Evicting a victim changes the plan itself (its
  // budget share is redistributed to the remaining chunks, a pending
  // prefill may be promoted into the prefill_limit cut), so every eviction
  // triggers a full replan instead of decrementing a stale demand total —
  // the projection and the realized step can never disagree.
  std::vector<std::int64_t> victims;
  std::map<std::int64_t, ChainMatch> hit_memo;
  std::int32_t available = AvailablePages();
  while (true) {
    StepPlan plan = PlanStep(&victims, &hit_memo);
    std::int32_t demand = 0;
    for (const PlannedPrefill& p : plan.prefills) {
      demand += PagesForPlannedPrefill(p);
    }
    for (std::int64_t id : plan.decode_ids) {
      demand += DecodeGrowthPages(active_.at(id));
    }
    if (demand <= available) break;

    // Evict the newest remaining request (max admit_seq), preserving FCFS
    // (§5.3). A cancel frees the victim's exclusively held pages; shared
    // pages stay with their other holders (at worst becoming
    // cache-reclaimable, which this projection conservatively ignores).
    std::int64_t victim_id = -1;
    const Slot* victim = nullptr;
    for (const auto& [id, slot] : active_) {
      if (std::find(victims.begin(), victims.end(), id) != victims.end()) {
        continue;
      }
      if (victim == nullptr || slot.admit_seq > victim->admit_seq) {
        victim = &slot;
        victim_id = id;
      }
    }
    if (victim == nullptr) break;  // nothing left to evict
    for (std::int32_t i = 0; i < kv_.SeqPages(victim->seq); ++i) {
      if (kv_.PageRefCount(victim->seq, i) == 1) ++available;
    }
    victims.push_back(victim_id);
  }
  return victims;
}

StepResult Engine::Step() {
  StepResult result;
  if (active_.empty()) return result;

  // The one step plan SelectEvictionVictims projects page demand for:
  // up to prefill_limit prefills (FCFS), chunked by max_step_tokens, plus
  // all decodes. Budget-deferred prefills (chunk 0) sit this step out.
  StepPlan plan = PlanStep();
  struct PrefillWork {
    std::int64_t id = -1;
    Slot* slot = nullptr;
    PlannedPrefill planned;
  };
  std::vector<PrefillWork> prefills;
  for (const PlannedPrefill& p : plan.prefills) {
    if (p.chunk > 0) prefills.push_back({p.id, &active_.at(p.id), p});
  }
  std::vector<std::pair<std::int64_t, Slot*>> decodes;
  for (std::int64_t id : plan.decode_ids) {
    decodes.emplace_back(id, &active_.at(id));
  }
  if (prefills.empty() && decodes.empty()) return result;

  // Group by LoRA id within each section so SGMV segments are maximal; the
  // prefill tail and decode head can then share a segment (paper §6). One
  // ordering definition, two container-shaped adapters.
  auto slot_order = [](const Slot* a, const Slot* b) {
    return std::tie(a->lora, a->admit_seq) < std::tie(b->lora, b->admit_seq);
  };
  std::stable_sort(prefills.begin(), prefills.end(),
                   [&](const PrefillWork& a, const PrefillWork& b) {
                     return slot_order(a.slot, b.slot);
                   });
  std::stable_sort(decodes.begin(), decodes.end(),
                   [&](const auto& a, const auto& b) {
                     return slot_order(a.second, b.second);
                   });
  if (!prefills.empty() && !decodes.empty()) {
    // Rotate decodes so the head shares the last prefill's LoRA when one
    // exists.
    LoraId tail = prefills.back().slot->lora;
    auto match = std::find_if(decodes.begin(), decodes.end(),
                              [&](const auto& d) {
                                return d.second->lora == tail;
                              });
    if (match != decodes.end()) {
      std::rotate(decodes.begin(), match, decodes.end());
    }
  }

  // Resolve every first-chunk prefill's cache hit and take its fork BEFORE
  // any ExtendOrReclaim runs: forking is refcount-only (never allocates),
  // and once a slot holds its aliased pages, reclaim-eviction of the
  // source entry cannot change the slot's page demand — so the demand
  // SelectEvictionVictims projected stays exactly the demand this step
  // realizes. (Resolving lazily instead would let an earlier prefill's
  // reclaim evict an entry a later prefill was projected to hit, aborting
  // in a state the victim query declared safe.) Hits resolve at prefill
  // time, not admission: a tenant-mate admitted in the same wave has
  // registered its prompt by now. Later chunks resume the fork taken here.
  std::vector<std::int64_t> pinned_entries;
  for (PrefillWork& pw : prefills) {
    if (!pw.planned.first_chunk || !config_.enable_prefix_cache) continue;
    Slot* slot = pw.slot;
    ++cache_stats_.lookups;
    // The match resolved at plan time IS the fork taken — nothing touched
    // the index between PlanStep and here.
    const ChainMatch& cm = pw.planned.hit;
    if (cm.entry >= 0) {
      kv_.FreeSequence(slot->seq);
      slot->seq = kv_.ForkFrom(cm.seq, cm.usable);
      slot->prefix_cached = cm.usable;
      prefix_.Touch(cm.entry);
      // Pin the source for the rest of this step: page refcounts already
      // keep the forked K/V alive, but pinning stops ExtendOrReclaim in
      // this same batch from evicting an entry that is demonstrably hot.
      prefix_.Pin(cm.entry);
      pinned_entries.push_back(cm.entry);
      ++cache_stats_.hits;
      cache_stats_.hit_tokens += cm.usable;
      // Credit the skip at the fork, where it is realized — a first chunk
      // deferred by pool drift after forking still reported its hit.
      result.prefix_hit_tokens += static_cast<int>(cm.usable);
    }
  }

  // Build batch entries and token rows. KvCache is extended chunk-by-chunk
  // (the fork aliases whole shared pages; Extend deep-copies the partial
  // boundary page — CoW — then grows) so the layer can write K/V at every
  // row position. A chunk covers rows [start, start+chunk) of its chain
  // and attends over everything before it via pos_offset; only the final
  // chunk emits logits.
  std::vector<BatchEntry> entries;
  std::vector<std::int32_t> token_ids;
  std::vector<PrefillWork> ran_prefills;  ///< chunks that made it in
  for (PrefillWork& pw : prefills) {
    Slot* slot = pw.slot;
    PUNICA_CHECK(kv_.SeqLen(slot->seq) == pw.planned.start);
    PUNICA_CHECK(pw.planned.chunk >= 1);
    // Graceful degradation when the world drifted between the victim
    // projection and this step: cancelling a victim REGISTERS its chain,
    // and a planned prefill hitting that fresh entry redistributes the
    // budget to later prefills — demanding pages the projection never
    // counted. Chunk boundaries never change bits, so shrink the chunk to
    // what the pool actually holds (halving keeps the probe logarithmic)
    // and defer the prefill entirely when not even one token fits.
    std::int64_t chunk = pw.planned.chunk;
    while (chunk > 0 && !TryExtendOrReclaim(slot->seq, chunk)) {
      chunk /= 2;
    }
    if (chunk == 0) continue;  // deferred; decodes still run
    pw.planned.chunk = chunk;
    bool final_chunk = pw.planned.start + chunk == pw.planned.total;
    entries.push_back({.seq = slot->seq,
                       .lora = slot->lora,
                       .num_tokens = static_cast<std::int32_t>(chunk),
                       .pos_offset = pw.planned.start,
                       .is_prefill = true,
                       .emit_logits = final_chunk});
    // Rows [start, start+chunk) of the chain prompt ⧺ generated[:resume] —
    // indexed in place, no per-chunk chain copy.
    const auto& out = outputs_.at(pw.id);
    auto prompt_len = static_cast<std::int64_t>(slot->prompt.size());
    for (std::int64_t i = pw.planned.start; i < pw.planned.start + chunk;
         ++i) {
      token_ids.push_back(
          i < prompt_len
              ? slot->prompt[static_cast<std::size_t>(i)]
              : out[static_cast<std::size_t>(i - prompt_len)]);
    }
    result.prefill_tokens += static_cast<int>(chunk);
    cache_stats_.prefill_tokens += chunk;
    ran_prefills.push_back(pw);
  }
  for (auto& [id, slot] : decodes) {
    std::int64_t pos = kv_.SeqLen(slot->seq);
    // A decode must run — if its one token cannot fit even with an empty
    // cache, the engine is genuinely over-committed and the caller failed
    // to migrate first.
    ExtendOrReclaim(slot->seq, 1);
    entries.push_back({.seq = slot->seq,
                       .lora = slot->lora,
                       .num_tokens = 1,
                       .pos_offset = pos,
                       .is_prefill = false});
    token_ids.push_back(outputs_.at(id).back());
  }
  PUNICA_CHECK_MSG(!entries.empty(),
                   "KvCache exhausted; migrate requests first");

  ModelBatch batch = ModelBatch::Build(std::move(entries));
  result.num_segments = batch.segments.num_segments();
  result.batch_size = static_cast<int>(ran_prefills.size() + decodes.size());
  result.prefill_requests = static_cast<int>(ran_prefills.size());

  std::vector<std::int32_t> next = model_->ForwardGreedy(batch, token_ids,
                                                         kv_);

  // Apply results in entry order: prefill chunks first, then decodes. A
  // non-final chunk consumes its (zeroed) logits row and emits nothing —
  // the slot stays in the prefilling phase with its progress in SeqLen.
  std::size_t out_idx = 0;
  auto apply = [&](std::int64_t id, Slot* slot, bool was_prefill) {
    std::int32_t token = next[out_idx++];
    auto& out = outputs_.at(id);
    out.push_back(token);
    result.emitted.push_back({id, token});
    ++result.new_tokens;
    if (was_prefill) {
      slot->needs_prefill = false;
      // The prompt is now fully cached in this sequence — make it
      // discoverable for the next tenant-mate (a refcount alias, no copy).
      RegisterPrefix(*slot, slot->prompt,
                     static_cast<std::int64_t>(slot->prompt.size()));
    }
    if (IsDone(*slot, out)) {
      kv_.FreeSequence(slot->seq);
      result.finished.push_back(id);
      active_.erase(id);
    }
  };
  for (PrefillWork& pw : ran_prefills) {
    bool final_chunk =
        pw.planned.start + pw.planned.chunk == pw.planned.total;
    if (final_chunk) {
      apply(pw.id, pw.slot, true);
    } else {
      ++out_idx;  // skip the non-emitting entry's logits row
      ++result.partial_prefills;
    }
  }
  for (auto& [id, slot] : decodes) apply(id, slot, false);
  for (std::int64_t entry : pinned_entries) prefix_.Unpin(entry);
  for (const auto& [id, slot] : active_) {
    if (!slot.needs_prefill) continue;
    result.deferred_prefill_tokens +=
        static_cast<std::int64_t>(slot.prompt.size()) + slot.resume_from -
        kv_.SeqLen(slot.seq);
  }
  return result;
}

const std::vector<std::int32_t>* Engine::Output(std::int64_t id) const {
  auto it = outputs_.find(id);
  return it == outputs_.end() ? nullptr : &it->second;
}

}  // namespace punica
