#include "runtime/engine.h"

#include <algorithm>

#include "util/check.h"

namespace punica {

Engine::Engine(LlamaModel* model, const KvCacheConfig& kv_config,
               EngineConfig config)
    : model_(model), kv_(kv_config), config_(config) {
  PUNICA_CHECK(model_ != nullptr);
  PUNICA_CHECK(config_.max_batch_size > 0);
  PUNICA_CHECK(config_.prefill_limit >= 1);
}

std::int32_t Engine::ResolveEos(std::int32_t spec_eos) const {
  if (spec_eos >= 0 && config_.eos_token >= 0) {
    PUNICA_CHECK_MSG(spec_eos == config_.eos_token,
                     "request and engine disagree on the EOS token");
  }
  return spec_eos >= 0 ? spec_eos : config_.eos_token;
}

std::int64_t Engine::Admit(Slot slot, std::vector<std::int32_t> generated) {
  PUNICA_CHECK_MSG(CanAdmit(), "working set full; queue at the caller");
  PUNICA_CHECK(!slot.prompt.empty());
  slot.seq = kv_.CreateSequence();
  slot.admit_seq = next_admit_seq_++;
  std::int64_t id = next_id_++;
  outputs_[id] = std::move(generated);
  active_.emplace(id, std::move(slot));
  return id;
}

RequestHandle Engine::AddRequest(const SubmitSpec& spec) {
  PUNICA_CHECK(spec.max_new_tokens >= 1);
  PUNICA_CHECK_MSG(!spec.prompt_tokens.empty(),
                   "the numeric engine needs real prompt tokens");
  Slot slot;
  slot.lora = spec.lora;
  slot.prompt = spec.prompt_tokens;
  slot.max_new_tokens = spec.max_new_tokens;
  slot.eos_token = ResolveEos(spec.eos_token);
  return RequestHandle(Admit(std::move(slot), {}));
}

RequestHandle Engine::AddMigrated(const RequestSnapshot& snapshot) {
  // A migrated request must keep the stopping condition it started with:
  // the destination engine may not silently apply a different EOS token.
  if (config_.eos_token >= 0) {
    PUNICA_CHECK_MSG(snapshot.eos_token == config_.eos_token,
                     "migration changed the EOS stop condition");
  }
  Slot slot;
  slot.lora = snapshot.lora;
  slot.prompt = snapshot.prompt;
  slot.max_new_tokens = snapshot.max_new_tokens;
  slot.eos_token = snapshot.eos_token;
  slot.resume_from = static_cast<std::int32_t>(snapshot.generated.size());
  return RequestHandle(Admit(std::move(slot), snapshot.generated));
}

std::optional<RequestSnapshot> Engine::Cancel(std::int64_t id) {
  auto it = active_.find(id);
  if (it == active_.end()) return std::nullopt;
  RequestSnapshot snap;
  snap.request_id = id;
  snap.lora = it->second.lora;
  snap.prompt = it->second.prompt;
  snap.generated = outputs_.at(id);
  snap.prompt_len = static_cast<std::int32_t>(snap.prompt.size());
  snap.generated_len = static_cast<std::int32_t>(snap.generated.size());
  snap.max_new_tokens = it->second.max_new_tokens;
  snap.eos_token = it->second.eos_token;
  kv_.FreeSequence(it->second.seq);
  active_.erase(it);
  return snap;
}

bool Engine::IsDone(const Slot& slot,
                    const std::vector<std::int32_t>& out) const {
  if (static_cast<int>(out.size()) >= slot.max_new_tokens) return true;
  return slot.eos_token >= 0 && !out.empty() &&
         out.back() == slot.eos_token;
}

std::vector<std::int64_t> Engine::PlannedPrefillIds() const {
  std::vector<std::int64_t> ids;
  for (const auto& [id, slot] : active_) {
    if (slot.needs_prefill) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end(), [this](std::int64_t a, std::int64_t b) {
    return active_.at(a).admit_seq < active_.at(b).admit_seq;
  });
  if (static_cast<int>(ids.size()) > config_.prefill_limit) {
    ids.resize(static_cast<std::size_t>(config_.prefill_limit));
  }
  return ids;
}

std::vector<std::int64_t> Engine::SelectEvictionVictims() const {
  // Project the page demand of the next step exactly as Step() will run
  // it: the planned prefills plus every decode.
  std::vector<std::int64_t> planned = PlannedPrefillIds();
  auto in_plan = [&](std::int64_t id) {
    if (!active_.at(id).needs_prefill) return true;
    for (std::int64_t pid : planned) {
      if (pid == id) return true;
    }
    return false;
  };
  auto growth_pages = [this](const Slot& slot) -> std::int32_t {
    if (slot.needs_prefill) {
      // The sequence exists but holds no pages yet; a prefill extends it
      // by the whole re-prefill chunk.
      std::int32_t chunk =
          static_cast<std::int32_t>(slot.prompt.size()) + slot.resume_from;
      return kv_.config().PagesNeeded(chunk);
    }
    std::int64_t len = kv_.SeqLen(slot.seq);
    return kv_.config().PagesNeeded(len + 1) - kv_.SeqPages(slot.seq);
  };

  std::int32_t demand = 0;
  for (const auto& [id, slot] : active_) {
    if (in_plan(id)) demand += growth_pages(slot);
  }
  std::int32_t free = kv_.free_pages();
  if (demand <= free) return {};

  // Evict the newest requests (max admit_seq) until the step fits,
  // preserving FCFS (§5.3). Evicting releases a slot's held pages and
  // removes its contribution to this step's growth. Strictly newest-first,
  // even page-less prefills beyond the cut: skipping one would let it be
  // promoted into the prefill plan after a planned prefill below it is
  // evicted, adding page demand this projection never counted.
  std::vector<std::pair<std::int64_t, const Slot*>> by_newest;
  for (const auto& [id, slot] : active_) by_newest.emplace_back(id, &slot);
  std::sort(by_newest.begin(), by_newest.end(),
            [](const auto& a, const auto& b) {
              return a.second->admit_seq > b.second->admit_seq;
            });

  std::vector<std::int64_t> victims;
  for (const auto& [id, slot] : by_newest) {
    if (demand <= free) break;
    free += kv_.SeqPages(slot->seq);
    if (in_plan(id)) demand -= growth_pages(*slot);
    victims.push_back(id);
  }
  return victims;
}

StepResult Engine::Step() {
  StepResult result;
  if (active_.empty()) return result;

  // Select up to prefill_limit prefills (FCFS) and all decodes — the same
  // plan SelectEvictionVictims projects page demand for.
  std::vector<std::pair<std::int64_t, Slot*>> prefills;
  std::vector<std::pair<std::int64_t, Slot*>> decodes;
  for (std::int64_t id : PlannedPrefillIds()) {
    prefills.emplace_back(id, &active_.at(id));
  }
  for (auto& [id, slot] : active_) {
    if (!slot.needs_prefill) decodes.emplace_back(id, &slot);
  }
  if (prefills.empty() && decodes.empty()) return result;

  // Group by LoRA id within each section so SGMV segments are maximal; the
  // prefill tail and decode head can then share a segment (paper §6).
  auto by_lora = [](const auto& a, const auto& b) {
    if (a.second->lora != b.second->lora) {
      return a.second->lora < b.second->lora;
    }
    return a.second->admit_seq < b.second->admit_seq;
  };
  std::stable_sort(prefills.begin(), prefills.end(), by_lora);
  std::stable_sort(decodes.begin(), decodes.end(), by_lora);
  if (!prefills.empty() && !decodes.empty()) {
    // Rotate decodes so the head shares the last prefill's LoRA when one
    // exists.
    LoraId tail = prefills.back().second->lora;
    auto match = std::find_if(decodes.begin(), decodes.end(),
                              [&](const auto& d) {
                                return d.second->lora == tail;
                              });
    if (match != decodes.end()) {
      std::rotate(decodes.begin(), match, decodes.end());
    }
  }

  // Build batch entries and token rows. KvCache is extended up front so the
  // layer can write K/V at every row position.
  std::vector<BatchEntry> entries;
  std::vector<std::int32_t> token_ids;
  for (auto& [id, slot] : prefills) {
    const auto& out = outputs_.at(id);
    std::int32_t chunk =
        static_cast<std::int32_t>(slot->prompt.size()) + slot->resume_from;
    PUNICA_CHECK_MSG(kv_.Extend(slot->seq, chunk),
                     "KvCache exhausted; migrate requests first");
    entries.push_back({.seq = slot->seq,
                       .lora = slot->lora,
                       .num_tokens = chunk,
                       .pos_offset = 0,
                       .is_prefill = true});
    token_ids.insert(token_ids.end(), slot->prompt.begin(),
                     slot->prompt.end());
    token_ids.insert(token_ids.end(), out.begin(),
                     out.begin() + slot->resume_from);
    result.prefill_tokens += chunk;
  }
  for (auto& [id, slot] : decodes) {
    std::int64_t pos = kv_.SeqLen(slot->seq);
    PUNICA_CHECK_MSG(kv_.Extend(slot->seq, 1),
                     "KvCache exhausted; migrate requests first");
    entries.push_back({.seq = slot->seq,
                       .lora = slot->lora,
                       .num_tokens = 1,
                       .pos_offset = pos,
                       .is_prefill = false});
    token_ids.push_back(outputs_.at(id).back());
  }

  ModelBatch batch = ModelBatch::Build(std::move(entries));
  result.num_segments = batch.segments.num_segments();
  result.batch_size = static_cast<int>(prefills.size() + decodes.size());
  result.prefill_requests = static_cast<int>(prefills.size());

  std::vector<std::int32_t> next = model_->ForwardGreedy(batch, token_ids,
                                                         kv_);

  // Apply results in entry order: prefills first, then decodes.
  std::size_t out_idx = 0;
  auto apply = [&](std::int64_t id, Slot* slot, bool was_prefill) {
    std::int32_t token = next[out_idx++];
    auto& out = outputs_.at(id);
    out.push_back(token);
    result.emitted.push_back({id, token});
    ++result.new_tokens;
    if (was_prefill) slot->needs_prefill = false;
    if (IsDone(*slot, out)) {
      kv_.FreeSequence(slot->seq);
      result.finished.push_back(id);
      active_.erase(id);
    }
  };
  for (auto& [id, slot] : prefills) apply(id, slot, true);
  for (auto& [id, slot] : decodes) apply(id, slot, false);
  return result;
}

const std::vector<std::int32_t>* Engine::Output(std::int64_t id) const {
  auto it = outputs_.find(id);
  return it == outputs_.end() ? nullptr : &it->second;
}

}  // namespace punica
