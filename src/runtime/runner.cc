#include "runtime/runner.h"

#include <algorithm>
#include <unordered_map>

#include "runtime/chunking.h"
#include "util/check.h"

namespace punica {

GpuRunner::GpuRunner(int gpu_id, const RunnerConfig& config,
                     const LlamaConfig& model_config,
                     const CostModel* cost_model)
    : gpu_id_(gpu_id),
      config_(config),
      model_config_(model_config),
      cost_model_(cost_model),
      lora_(config.lora_budget_bytes, config.lora_adapter_bytes,
            config.lora_load_latency_s) {
  PUNICA_CHECK(cost_model_ != nullptr);
  PUNICA_CHECK(config.max_batch_size > 0);
  PUNICA_CHECK(config.kv_capacity_tokens > 0);
}

std::int64_t GpuRunner::HitTokens(const ServingRequest& req) const {
  if (!config_.enable_prefix_cache) return 0;
  if (req.prefix_group < 0 || req.shared_prefix_len <= 0) return 0;
  auto it = prefix_cache_.find(req.prefix_group);
  if (it == prefix_cache_.end()) return 0;
  // The cache covers the tenant's system prompt; at least one token always
  // prefills (the numeric tier needs a row to emit logits — the simulated
  // tier mirrors the discipline so both predict the same shapes).
  std::int64_t cap = static_cast<std::int64_t>(req.PrefillTokensNeeded()) - 1;
  return std::min({it->second.tokens,
                   static_cast<std::int64_t>(req.shared_prefix_len), cap});
}

std::int64_t GpuRunner::PrefixHitTokens(const ServingRequest& req) const {
  return HitTokens(req);
}

bool GpuRunner::GroupResident(std::int64_t group) const {
  auto it = group_residents_.find(group);
  return it != group_residents_.end() && it->second > 0;
}

std::int64_t GpuRunner::ReclaimableCacheTokens() const {
  std::int64_t total = 0;
  for (const auto& [group, entry] : prefix_cache_) {
    if (!GroupResident(group)) total += entry.tokens;
  }
  return total;
}

bool GpuRunner::EvictOneCachedPrefix() {
  // LRU over entries with no resident request (a resident request's tokens
  // alias the entry's — evicting it would orphan their accounting).
  std::optional<std::int64_t> victim;
  std::uint64_t best_stamp = 0;
  for (const auto& [group, entry] : prefix_cache_) {
    if (GroupResident(group)) continue;
    if (!victim.has_value() || entry.stamp < best_stamp) {
      victim = group;
      best_stamp = entry.stamp;
    }
  }
  if (!victim.has_value()) return false;
  kv_used_tokens_ -= prefix_cache_.at(*victim).tokens;
  prefix_cache_.erase(*victim);
  ++cache_stats_.evictions;
  return true;
}

std::int64_t GpuRunner::prefix_cached_tokens() const {
  std::int64_t total = 0;
  for (const auto& [group, entry] : prefix_cache_) total += entry.tokens;
  return total;
}

PrefixCacheStats GpuRunner::prefix_cache_stats() const {
  PrefixCacheStats s = cache_stats_;
  s.cached_entries = static_cast<std::int64_t>(prefix_cache_.size());
  s.cached_tokens = prefix_cached_tokens();
  // Token-denominated gauges on the simulated tier.
  s.pages_in_use = static_cast<std::int32_t>(kv_used_tokens_);
  s.shared_pages = static_cast<std::int32_t>(s.cached_tokens);
  s.free_pages = static_cast<std::int32_t>(kv_free_tokens());
  return s;
}

std::int64_t GpuRunner::KvTokensNeeded(const ServingRequest& req) const {
  return static_cast<std::int64_t>(req.PrefillTokensNeeded()) + 1 -
         HitTokens(req);
}

bool GpuRunner::CanAdmit(const ServingRequest& req) const {
  if (working_set_size() >= config_.max_batch_size) return false;
  // Tokens reclaimable from idle cached prefixes count as headroom — Step
  // evicts them on demand before requests must migrate. But a hit assumes
  // its own entry STAYS cached, so that entry must not double as evictable
  // headroom (double-counting admits infeasible requests, which then
  // livelock through the migration path).
  std::int64_t reclaimable = ReclaimableCacheTokens();
  if (HitTokens(req) > 0 && !GroupResident(req.prefix_group)) {
    reclaimable -= prefix_cache_.at(req.prefix_group).tokens;
  }
  return KvTokensNeeded(req) <= kv_free_tokens() + reclaimable;
}

void GpuRunner::Admit(ServingRequest* req, double now) {
  PUNICA_CHECK(req != nullptr);
  PUNICA_CHECK_MSG(!slots_.contains(req->id), "request already on this GPU");
  PUNICA_CHECK_MSG(working_set_size() < config_.max_batch_size,
                   "admission beyond max batch size");
  if (req->admit_time < 0.0) req->admit_time = now;
  Slot slot;
  slot.req = req;
  slot.admit_seq = next_admit_seq_++;
  // The prefix hit is resolved at prefill time (PlanStep), not here — a
  // tenant-mate admitted in the same wave registers the prefix first, and
  // a slot evicted before it ever prefills must not record a hit.
  if (req->prefix_group >= 0) ++group_residents_[req->prefix_group];
  if (req->lora_id >= 0) {
    slot.lora_ready_time = lora_.Touch(req->lora_id, now);
    lora_.Pin(req->lora_id);
  } else {
    slot.lora_ready_time = now;
  }
  req->phase = RequestPhase::kAssigned;
  slots_.emplace(req->id, slot);
}

void GpuRunner::ReleaseSlot(std::map<std::int64_t, Slot>::iterator it) {
  // A slot's charged tokens are kv_len minus the tokens aliased from the
  // tenant's cached prefix (those stay resident — and become reclaimable
  // once the group has no resident request). Chunk-granular: a mid-prefill
  // slot holds exactly its consumed chunks; a slot evicted before its
  // first chunk holds nothing (kv_len and prefix_hit both still 0,
  // whatever its prospective hit would have been).
  kv_used_tokens_ -= it->second.kv_len - it->second.prefix_hit;
  if (it->second.req->prefix_group >= 0) {
    auto g = group_residents_.find(it->second.req->prefix_group);
    if (--g->second == 0) group_residents_.erase(g);
  }
  if (it->second.req->lora_id >= 0) {
    lora_.Unpin(it->second.req->lora_id);
  }
  slots_.erase(it);
}

std::optional<RequestSnapshot> GpuRunner::Cancel(std::int64_t request_id) {
  auto it = slots_.find(request_id);
  if (it == slots_.end()) return std::nullopt;
  RequestSnapshot snap = RequestSnapshot::FromRequest(*it->second.req);
  ReleaseSlot(it);
  return snap;
}

bool GpuRunner::HasRunnableWork(double now) const {
  for (const auto& [id, slot] : slots_) {
    if (slot.lora_ready_time <= now + 1e-12) return true;
  }
  return false;
}

std::optional<double> GpuRunner::NextReadyTime(double now) const {
  std::optional<double> best;
  for (const auto& [id, slot] : slots_) {
    if (slot.lora_ready_time > now + 1e-12) {
      if (!best.has_value() || slot.lora_ready_time < *best) {
        best = slot.lora_ready_time;
      }
    }
  }
  return best;
}

GpuRunner::PlannedStep GpuRunner::PlanStep(
    double now, const std::vector<std::int64_t>* exclude) const {
  auto excluded = [&](std::int64_t id) {
    return exclude != nullptr &&
           std::find(exclude->begin(), exclude->end(), id) != exclude->end();
  };
  PlannedStep plan;
  std::vector<const Slot*> prefill_candidates;
  for (const auto& [id, slot] : slots_) {
    if (excluded(id)) continue;
    if (slot.lora_ready_time > now + 1e-12) continue;  // adapter in flight
    if (slot.needs_prefill) {
      prefill_candidates.push_back(&slot);
    } else {
      plan.decodes.push_back(&slot);
    }
  }
  // Prefill batch limited to prefill_limit per invocation (FCFS by
  // admission order) to bound the latency penalty on in-flight decodes.
  std::sort(prefill_candidates.begin(), prefill_candidates.end(),
            [](const Slot* a, const Slot* b) {
              return a->admit_seq < b->admit_seq;
            });
  if (static_cast<int>(prefill_candidates.size()) > config_.prefill_limit) {
    prefill_candidates.resize(static_cast<std::size_t>(config_.prefill_limit));
  }
  std::vector<std::int64_t> remaining;
  for (const Slot* s : prefill_candidates) {
    // A prefix-cache hit prefills (and allocates) only the uncached
    // suffix; a mid-prefill slot resumes at its consumed length. Resolved
    // here so the step that executes this plan and the victim projection
    // price identical shapes.
    PlannedPrefill p;
    p.slot = s;
    p.total = s->req->PrefillTokensNeeded();
    p.first_chunk = s->kv_len == 0;
    p.start = p.first_chunk ? HitTokens(*s->req) : s->kv_len;
    remaining.push_back(p.total - p.start);
    plan.prefills.push_back(p);
  }
  std::vector<std::int64_t> chunks = SplitPrefillChunks(
      remaining, static_cast<std::int64_t>(plan.decodes.size()),
      config_.max_step_tokens);
  for (std::size_t i = 0; i < plan.prefills.size(); ++i) {
    plan.prefills[i].chunk = chunks[i];
    plan.kv_growth += chunks[i];
  }
  plan.kv_growth += static_cast<std::int64_t>(plan.decodes.size());
  return plan;
}

std::vector<std::int64_t> GpuRunner::SelectEvictionVictims(double now) const {
  // Project the token demand of the next step exactly as Step() will run
  // it after the caller evicts the victims: chunk-granular prefill growth
  // (prefill is NOT atomic — only the next chunk's tokens are demanded)
  // plus one token per decode. Evicting a victim changes the plan itself
  // (its budget share redistributes to the remaining chunks, a pending
  // prefill may be promoted into the prefill_limit cut), so every eviction
  // triggers a full replan instead of decrementing a stale total. Victims
  // go newest-first (max admit_seq), preserving FCFS (§5.3); kOldest
  // inverts the order for the ablation bench. An evicted slot releases its
  // exclusively held tokens — its tenant's cached prefix stays, becoming
  // reclaimable (which this projection conservatively ignores).
  const bool newest_first = config_.evict_policy == EvictPolicy::kNewest;
  std::vector<std::int64_t> victims;
  std::int64_t freed = 0;
  while (true) {
    PlannedStep plan = PlanStep(now, &victims);
    std::int64_t projected = kv_used_tokens_ - freed + plan.kv_growth -
                             ReclaimableCacheTokens();
    if (projected <= config_.kv_capacity_tokens) break;

    const Slot* victim = nullptr;
    for (const auto& [id, slot] : slots_) {
      if (std::find(victims.begin(), victims.end(), id) != victims.end()) {
        continue;
      }
      if (victim == nullptr ||
          (newest_first ? slot.admit_seq > victim->admit_seq
                        : slot.admit_seq < victim->admit_seq)) {
        victim = &slot;
      }
    }
    if (victim == nullptr) break;  // nothing left to evict
    freed += victim->kv_len - victim->prefix_hit;
    victims.push_back(victim->req->id);
  }
  return victims;
}

StepResult GpuRunner::Step(double now) {
  PlannedStep plan = PlanStep(now);
  StepResult result;
  if (plan.prefills.empty() && plan.decodes.empty()) return result;
  while (kv_used_tokens_ + plan.kv_growth > config_.kv_capacity_tokens &&
         EvictOneCachedPrefix()) {
  }
  PUNICA_CHECK_MSG(
      kv_used_tokens_ + plan.kv_growth <= config_.kv_capacity_tokens,
      "step would overflow KvCache; evict victims first");

  // Build the cost-model shape. Token rows group by LoRA id (the runtime
  // orders same-LoRA requests consecutively before building SGMV segments).
  // A prefill contributes only its chunk as token rows — the uncached
  // suffix slice the budget grants it this step — but attention still
  // reads the whole kv span up to the chunk's end: the
  // (kv − chunk) + (chunk+1)/2 causal-span term the cost model prices, for
  // prefix hits and budget chunks alike (one shared definition).
  StepShape shape;
  shape.tp_degree = config_.tp_degree;
  shape.lora_rank = config_.lora_rank;
  std::unordered_map<LoraId, std::int32_t> rows_by_lora;
  int chunked_prefills = 0;
  for (const PlannedPrefill& p : plan.prefills) {
    if (p.chunk == 0) continue;  // budget-deferred this step
    const Slot* s = p.slot;
    ++chunked_prefills;
    shape.prefill_chunks.push_back(static_cast<std::int32_t>(p.chunk));
    shape.prefill_kv_lens.push_back(p.start + p.chunk);
    if (s->req->lora_id >= 0) {
      rows_by_lora[s->req->lora_id] += static_cast<std::int32_t>(p.chunk);
    }
    cache_stats_.prefill_tokens += p.chunk;
    if (p.first_chunk) {
      result.prefix_hit_tokens += static_cast<int>(p.start);
      if (config_.enable_prefix_cache && s->req->prefix_group >= 0 &&
          s->req->shared_prefix_len > 0) {
        ++cache_stats_.lookups;
        if (p.start > 0) {
          prefix_cache_.at(s->req->prefix_group).stamp = cache_clock_++;
          ++cache_stats_.hits;
          cache_stats_.hit_tokens += p.start;
        }
      }
    }
  }
  for (const Slot* s : plan.decodes) {
    shape.decode_kv_lens.push_back(s->kv_len + 1);
    if (s->req->lora_id >= 0) rows_by_lora[s->req->lora_id] += 1;
  }
  for (const auto& [lora, rows] : rows_by_lora) {
    shape.lora_segment_rows.push_back(rows);
  }

  result.latency = cost_model_->StepLatency(model_config_, shape);
  result.batch_size =
      static_cast<int>(chunked_prefills + plan.decodes.size());
  result.prefill_requests = chunked_prefills;
  result.num_segments = static_cast<int>(shape.lora_segment_rows.size());
  for (auto c : shape.prefill_chunks) result.prefill_tokens += c;

  double completion = now + result.latency;

  // Apply state transitions. Collect the plan by id first: releasing
  // mutates slots_.
  std::vector<PlannedPrefill> prefill_plan;
  std::vector<std::int64_t> decode_ids;
  for (const PlannedPrefill& p : plan.prefills) {
    if (p.chunk > 0) prefill_plan.push_back(p);
  }
  for (const Slot* s : plan.decodes) decode_ids.push_back(s->req->id);

  // The emitted "token" on this tier is the per-request sequence tag
  // (generated count − 1): content is synthetic, ordering and timing are
  // what the simulation is responsible for. A non-final chunk emits
  // nothing — the request's first token waits for its last chunk.
  for (const PlannedPrefill& p : prefill_plan) {
    std::int64_t id = p.slot->req->id;
    Slot& slot = slots_.at(id);
    if (p.first_chunk) {
      // The hit resolved at plan time becomes the slot's share of the
      // tenant's cache-owned tokens.
      slot.prefix_hit = p.start;
    }
    slot.kv_len = p.start + p.chunk;
    kv_used_tokens_ += p.chunk;
    if (slot.kv_len < p.total) {
      ++result.partial_prefills;
      continue;
    }
    slot.needs_prefill = false;
    // The tenant's system prompt is now resident — register it so the next
    // group-mate's prefill skips it (ownership of those tokens moves to
    // the cache entry; memory totals are unchanged, mirroring refcounted
    // page aliasing on the numeric tier).
    if (config_.enable_prefix_cache && slot.req->prefix_group >= 0 &&
        slot.req->shared_prefix_len > 0 && slot.prefix_hit == 0) {
      auto covered = std::min(
          p.total, static_cast<std::int64_t>(slot.req->shared_prefix_len));
      auto [it, inserted] = prefix_cache_.try_emplace(
          slot.req->prefix_group,
          CachedPrefix{.tokens = covered, .stamp = cache_clock_});
      ++cache_clock_;
      if (inserted) {
        slot.prefix_hit = covered;  // those tokens now belong to the cache
        ++cache_stats_.insertions;
      } else {
        it->second.stamp = cache_clock_ - 1;
      }
    }
    slot.req->generated += 1;
    ++result.new_tokens;
    result.emitted.push_back({id, slot.req->generated - 1});
    if (slot.req->first_token_time < 0.0) {
      slot.req->first_token_time = completion;
    }
  }
  for (auto id : decode_ids) {
    Slot& slot = slots_.at(id);
    slot.kv_len += 1;
    kv_used_tokens_ += 1;
    slot.req->generated += 1;
    ++result.new_tokens;
    result.emitted.push_back({id, slot.req->generated - 1});
  }

  for (const PlannedPrefill& p : prefill_plan) {
    auto it = slots_.find(p.slot->req->id);
    if (it->second.req->Done()) {
      it->second.req->phase = RequestPhase::kFinished;
      it->second.req->finish_time = completion;
      result.finished.push_back(it->first);
      ReleaseSlot(it);
    }
  }
  for (auto id : decode_ids) {
    auto it = slots_.find(id);
    if (it->second.req->Done()) {
      it->second.req->phase = RequestPhase::kFinished;
      it->second.req->finish_time = completion;
      result.finished.push_back(id);
      ReleaseSlot(it);
    }
  }
  for (const auto& [id, slot] : slots_) {
    if (!slot.needs_prefill) continue;
    result.deferred_prefill_tokens +=
        slot.req->PrefillTokensNeeded() - slot.kv_len;
  }
  return result;
}

ServingRequest* GpuRunner::Find(std::int64_t request_id) const {
  auto it = slots_.find(request_id);
  return it == slots_.end() ? nullptr : it->second.req;
}

ServingRequest* GpuRunner::NewestRequest() const {
  const Slot* newest = nullptr;
  for (const auto& [id, slot] : slots_) {
    if (newest == nullptr || slot.admit_seq > newest->admit_seq) {
      newest = &slot;
    }
  }
  return newest == nullptr ? nullptr : newest->req;
}

std::vector<std::int64_t> GpuRunner::WorkingIds() const {
  std::vector<std::int64_t> ids;
  ids.reserve(slots_.size());
  for (const auto& [id, slot] : slots_) ids.push_back(id);
  return ids;
}

}  // namespace punica
