#include "runtime/lora_residency.h"

#include <algorithm>

#include "util/check.h"

namespace punica {

LoraResidency::LoraResidency(std::int64_t capacity_bytes,
                             std::int64_t adapter_bytes,
                             double load_latency_s)
    : capacity_bytes_(capacity_bytes),
      adapter_bytes_(adapter_bytes),
      load_latency_s_(load_latency_s) {
  PUNICA_CHECK(adapter_bytes > 0);
  PUNICA_CHECK_MSG(capacity_bytes >= adapter_bytes,
                   "budget must fit at least one adapter");
}

double LoraResidency::Touch(LoraId id, double now) {
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    it->second.last_use = ++use_clock_;
    ++hit_count_;
    return std::max(it->second.ready_time, now);
  }
  used_bytes_ += adapter_bytes_;
  EvictIfNeeded();
  Entry entry;
  entry.ready_time = now + load_latency_s_;
  entry.last_use = ++use_clock_;
  entries_.emplace(id, entry);
  ++load_count_;
  return entry.ready_time;
}

void LoraResidency::EvictIfNeeded() {
  while (used_bytes_ > capacity_bytes_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.pins > 0) continue;
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    PUNICA_CHECK_MSG(victim != entries_.end(),
                     "all resident adapters are pinned; budget too small");
    entries_.erase(victim);
    used_bytes_ -= adapter_bytes_;
  }
}

bool LoraResidency::IsReady(LoraId id, double now) const {
  auto it = entries_.find(id);
  return it != entries_.end() && it->second.ready_time <= now + 1e-12;
}

void LoraResidency::Pin(LoraId id) {
  auto it = entries_.find(id);
  PUNICA_CHECK_MSG(it != entries_.end(), "pin of non-resident adapter");
  ++it->second.pins;
}

void LoraResidency::Unpin(LoraId id) {
  auto it = entries_.find(id);
  PUNICA_CHECK_MSG(it != entries_.end(), "unpin of non-resident adapter");
  PUNICA_CHECK(it->second.pins > 0);
  --it->second.pins;
}

}  // namespace punica
