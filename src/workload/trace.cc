#include "workload/trace.h"

#include "sim/arrivals.h"
#include "util/check.h"

namespace punica {

std::int32_t TenantSystemPromptLen(const SharedPrefixSpec& spec,
                                   std::uint64_t seed, LoraId tenant) {
  if (!spec.enabled) return 0;
  PUNICA_CHECK(spec.min_tokens >= 1);
  PUNICA_CHECK(spec.max_tokens >= spec.min_tokens);
  // Hash (seed, tenant) into its own stream so the length depends only on
  // the tenant, not on how many requests preceded it in the trace.
  Pcg32 rng(seed ^ (0xA24BAED4963EE407ULL +
                    static_cast<std::uint64_t>(tenant) * 0x9E3779B97F4A7C15ULL));
  auto range =
      static_cast<std::uint32_t>(spec.max_tokens - spec.min_tokens + 1);
  return spec.min_tokens + static_cast<std::int32_t>(rng.NextBounded(range));
}

std::int32_t TenantPriority(std::int32_t classes, std::uint64_t seed,
                            LoraId tenant) {
  if (classes <= 1) return 0;
  Pcg32 rng(seed ^ (0x27D4EB2F165667C5ULL +
                    static_cast<std::uint64_t>(tenant) * 0x9E3779B97F4A7C15ULL));
  return static_cast<std::int32_t>(
      rng.NextBounded(static_cast<std::uint32_t>(classes)));
}

void AssignPoissonArrivals(std::vector<TraceRequest>& trace, double rate,
                           std::uint64_t seed) {
  std::vector<double> times = PoissonArrivalsKeyed(rate, trace.size(), seed);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i].arrival_time = times[i];
  }
}

namespace {

void ApplySharedPrefix(const SharedPrefixSpec& spec, std::uint64_t seed,
                       TraceRequest& r) {
  std::int32_t sys = TenantSystemPromptLen(spec, seed, r.lora_id);
  if (sys <= 0) return;
  r.prompt_len += sys;
  r.shared_prefix_len = sys;
  r.prefix_group = r.lora_id;
}

}  // namespace

std::vector<TraceRequest> GenerateClosedLoopTrace(const TraceSpec& spec) {
  PUNICA_CHECK(spec.num_requests >= 1);
  Pcg32 id_rng(spec.seed);
  Pcg32 len_rng(spec.seed ^ 0x9E3779B97F4A7C15ULL);
  ShareGptLengthSampler sampler(spec.lengths);
  std::vector<LoraId> lora_ids = AssignLoraIds(
      spec.popularity, spec.num_requests, id_rng, spec.zipf_alpha);

  std::vector<TraceRequest> trace;
  trace.reserve(static_cast<std::size_t>(spec.num_requests));
  for (int i = 0; i < spec.num_requests; ++i) {
    LengthSample len = sampler.Sample(len_rng);
    trace.push_back({.id = i,
                     .arrival_time = 0.0,
                     .lora_id = lora_ids[static_cast<std::size_t>(i)],
                     .prompt_len = len.prompt_len,
                     .output_len = len.output_len});
    ApplySharedPrefix(spec.shared_prefix, spec.seed, trace.back());
    trace.back().priority =
        TenantPriority(spec.priority_classes, spec.seed, trace.back().lora_id);
  }
  return trace;
}

std::vector<TraceRequest> GenerateOpenLoopTrace(
    std::vector<double> arrival_times, int num_models, double zipf_alpha,
    std::uint64_t seed, ShareGptLengthSampler::Params lengths,
    SharedPrefixSpec shared_prefix, std::int32_t priority_classes) {
  Pcg32 rng(seed);
  ShareGptLengthSampler sampler(lengths);
  ZipfAlphaSampler zipf(num_models, zipf_alpha);
  std::vector<TraceRequest> trace;
  trace.reserve(arrival_times.size());
  for (std::size_t i = 0; i < arrival_times.size(); ++i) {
    LengthSample len = sampler.Sample(rng);
    trace.push_back({.id = static_cast<std::int64_t>(i),
                     .arrival_time = arrival_times[i],
                     .lora_id = zipf.Sample(rng),
                     .prompt_len = len.prompt_len,
                     .output_len = len.output_len});
    ApplySharedPrefix(shared_prefix, seed, trace.back());
    trace.back().priority =
        TenantPriority(priority_classes, seed, trace.back().lora_id);
  }
  return trace;
}

std::int64_t TotalOutputTokens(const std::vector<TraceRequest>& trace) {
  std::int64_t total = 0;
  for (const auto& r : trace) total += r.output_len;
  return total;
}

std::int64_t TotalPromptTokens(const std::vector<TraceRequest>& trace) {
  std::int64_t total = 0;
  for (const auto& r : trace) total += r.prompt_len;
  return total;
}

}  // namespace punica
