// Request traces: the unit of work flowing through the serving experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "core/segment.h"
#include "workload/lengths.h"
#include "workload/popularity.h"

namespace punica {

struct TraceRequest {
  std::int64_t id = 0;
  double arrival_time = 0.0;  ///< 0 for closed-loop (all available at start)
  LoraId lora_id = 0;
  std::int32_t prompt_len = 0;
  std::int32_t output_len = 0;
  /// The first `shared_prefix_len` prompt tokens are the tenant's system
  /// prompt, shared by every request with the same `prefix_group` — the
  /// prefix-cache workload knob (0 / -1 = nothing shared).
  std::int32_t shared_prefix_len = 0;
  std::int64_t prefix_group = -1;
  /// SLO class for open-loop admission (higher = more important). The
  /// serving front door defers and, under overload, sheds priority-0
  /// traffic first; 0 (the default) keeps closed-loop traces unchanged.
  std::int32_t priority = 0;
};

/// Per-tenant shared system prompts: each tenant (LoRA id) gets a system
/// prompt of a length drawn once per tenant from [min_tokens, max_tokens];
/// every request of that tenant carries it as a shared prefix on top of its
/// sampled per-request prompt. This is the multi-tenant reality the paper's
/// workload abstracts away — and what a shared-prefix KV cache exploits.
struct SharedPrefixSpec {
  bool enabled = false;
  std::int32_t min_tokens = 128;
  std::int32_t max_tokens = 512;
};

struct TraceSpec {
  int num_requests = 1000;
  Popularity popularity = Popularity::kDistinct;
  double zipf_alpha = 1.5;
  std::uint64_t seed = 0xC0FFEE;
  ShareGptLengthSampler::Params lengths = {};
  SharedPrefixSpec shared_prefix = {};
  /// SLO classes: each tenant is assigned a priority in [0, classes) drawn
  /// deterministically from (seed, tenant). 1 (the default) keeps every
  /// request at priority 0 — the closed-loop behaviour.
  std::int32_t priority_classes = 1;
};

/// Closed-loop trace (paper §7.2: "We generate 1000 requests … batch in a
/// first-come-first-serve manner"): all requests available at t=0.
std::vector<TraceRequest> GenerateClosedLoopTrace(const TraceSpec& spec);

/// Open-loop trace for the cluster experiment: arrival times supplied by a
/// Poisson process; LoRA ids drawn online from Zipf-α over `num_models`.
std::vector<TraceRequest> GenerateOpenLoopTrace(
    std::vector<double> arrival_times, int num_models, double zipf_alpha,
    std::uint64_t seed, ShareGptLengthSampler::Params lengths = {},
    SharedPrefixSpec shared_prefix = {}, std::int32_t priority_classes = 1);

/// Total output tokens of a trace (the throughput denominator).
std::int64_t TotalOutputTokens(const std::vector<TraceRequest>& trace);

/// Total prompt tokens (the prefill-work denominator for cache benches).
std::int64_t TotalPromptTokens(const std::vector<TraceRequest>& trace);

/// The system-prompt length of `tenant` under `spec` — deterministic in
/// (seed, tenant), independent of request order. 0 when disabled.
std::int32_t TenantSystemPromptLen(const SharedPrefixSpec& spec,
                                   std::uint64_t seed, LoraId tenant);

/// The SLO class of `tenant`: uniform in [0, classes), deterministic in
/// (seed, tenant), independent of request order. 0 when classes <= 1.
std::int32_t TenantPriority(std::int32_t classes, std::uint64_t seed,
                            LoraId tenant);

/// Stamps an open-loop Poisson arrival schedule (`rate` req/s) onto a
/// trace, replacing its arrival times. Gaps come from PoissonArrivalsKeyed,
/// so request i's arrival depends only on (seed, rate, i) and a saved v3
/// CSV replays bit-identically. The trace keeps its FCFS order (arrival
/// times are non-decreasing by construction).
void AssignPoissonArrivals(std::vector<TraceRequest>& trace, double rate,
                           std::uint64_t seed);

}  // namespace punica
