// Request traces: the unit of work flowing through the serving experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "core/segment.h"
#include "workload/lengths.h"
#include "workload/popularity.h"

namespace punica {

struct TraceRequest {
  std::int64_t id = 0;
  double arrival_time = 0.0;  ///< 0 for closed-loop (all available at start)
  LoraId lora_id = 0;
  std::int32_t prompt_len = 0;
  std::int32_t output_len = 0;
};

struct TraceSpec {
  int num_requests = 1000;
  Popularity popularity = Popularity::kDistinct;
  double zipf_alpha = 1.5;
  std::uint64_t seed = 0xC0FFEE;
  ShareGptLengthSampler::Params lengths = {};
};

/// Closed-loop trace (paper §7.2: "We generate 1000 requests … batch in a
/// first-come-first-serve manner"): all requests available at t=0.
std::vector<TraceRequest> GenerateClosedLoopTrace(const TraceSpec& spec);

/// Open-loop trace for the cluster experiment: arrival times supplied by a
/// Poisson process; LoRA ids drawn online from Zipf-α over `num_models`.
std::vector<TraceRequest> GenerateOpenLoopTrace(
    std::vector<double> arrival_times, int num_models, double zipf_alpha,
    std::uint64_t seed, ShareGptLengthSampler::Params lengths = {});

/// Total output tokens of a trace (the throughput denominator).
std::int64_t TotalOutputTokens(const std::vector<TraceRequest>& trace);

}  // namespace punica
