#include "workload/lengths.h"

#include <algorithm>
#include <cmath>

namespace punica {

std::int32_t ShareGptLengthSampler::SampleOne(Pcg32& rng, double mu,
                                              double sigma) const {
  double z = rng.NextGaussian();
  double len = std::exp(mu + sigma * z);
  auto rounded = static_cast<std::int32_t>(std::lround(len));
  return std::clamp(rounded, params_.min_len, params_.max_len);
}

LengthSample ShareGptLengthSampler::Sample(Pcg32& rng) const {
  LengthSample s;
  s.prompt_len = SampleOne(rng, params_.prompt_mu, params_.prompt_sigma);
  s.output_len = SampleOne(rng, params_.output_mu, params_.output_sigma);
  return s;
}

double ShareGptLengthSampler::UnclippedPromptMean() const {
  return std::exp(params_.prompt_mu +
                  params_.prompt_sigma * params_.prompt_sigma / 2.0);
}

double ShareGptLengthSampler::UnclippedOutputMean() const {
  return std::exp(params_.output_mu +
                  params_.output_sigma * params_.output_sigma / 2.0);
}

}  // namespace punica
