#include "workload/popularity.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace punica {

std::string ToString(Popularity p) {
  switch (p) {
    case Popularity::kDistinct:
      return "Distinct";
    case Popularity::kUniform:
      return "Uniform";
    case Popularity::kSkewed:
      return "Skewed";
    case Popularity::kIdentical:
      return "Identical";
  }
  return "?";
}

int NumModelsFor(Popularity p, int n, double zipf_alpha) {
  PUNICA_CHECK(n >= 1);
  switch (p) {
    case Popularity::kDistinct:
      return n;
    case Popularity::kUniform:
      return static_cast<int>(
          std::ceil(std::sqrt(static_cast<double>(n))));
    case Popularity::kSkewed: {
      // Enough models that the least popular one still expects ≥ ~1 request:
      // α^{-(m-1)} · n / Z ≈ 1  ⇒  m ≈ log_α(n).
      PUNICA_CHECK(zipf_alpha > 1.0);
      int m = static_cast<int>(
          std::ceil(std::log(static_cast<double>(n)) / std::log(zipf_alpha)));
      return std::max(1, m);
    }
    case Popularity::kIdentical:
      return 1;
  }
  return 1;
}

std::vector<LoraId> AssignLoraIds(Popularity p, int n, Pcg32& rng,
                                  double zipf_alpha) {
  std::vector<LoraId> ids;
  ids.reserve(static_cast<std::size_t>(n));
  switch (p) {
    case Popularity::kDistinct:
      for (int i = 0; i < n; ++i) ids.push_back(i);
      break;
    case Popularity::kUniform: {
      int m = NumModelsFor(p, n, zipf_alpha);
      for (int i = 0; i < n; ++i) {
        ids.push_back(rng.NextBounded(static_cast<std::uint32_t>(m)));
      }
      break;
    }
    case Popularity::kSkewed: {
      ZipfAlphaSampler sampler(NumModelsFor(p, n, zipf_alpha), zipf_alpha);
      for (int i = 0; i < n; ++i) ids.push_back(sampler.Sample(rng));
      break;
    }
    case Popularity::kIdentical:
      ids.assign(static_cast<std::size_t>(n), 0);
      break;
  }
  return ids;
}

ZipfAlphaSampler::ZipfAlphaSampler(int num_models, double alpha) {
  PUNICA_CHECK(num_models >= 1);
  PUNICA_CHECK(alpha > 1.0);
  std::vector<double> weights(static_cast<std::size_t>(num_models));
  double w = 1.0;
  double total = 0.0;
  for (auto& x : weights) {
    x = w;
    total += w;
    w /= alpha;
  }
  cdf_.resize(weights.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i] / total;
    cdf_[i] = acc;
  }
  cdf_.back() = 1.0;  // guard against rounding
}

LoraId ZipfAlphaSampler::Sample(Pcg32& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<LoraId>(it - cdf_.begin());
}

double ZipfAlphaSampler::ProbabilityOf(int i) const {
  PUNICA_CHECK(i >= 0 && i < num_models());
  auto idx = static_cast<std::size_t>(i);
  return idx == 0 ? cdf_[0] : cdf_[idx] - cdf_[idx - 1];
}

}  // namespace punica
