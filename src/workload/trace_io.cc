#include "workload/trace_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace punica {

namespace {
// v2 appends the shared-prefix columns; v1 files still load (fields default
// to "nothing shared").
constexpr const char* kHeader =
    "id,arrival_time,lora_id,prompt_len,output_len,shared_prefix_len,"
    "prefix_group";
constexpr const char* kHeaderV1 = "id,arrival_time,lora_id,prompt_len,output_len";
}  // namespace

std::string TraceToCsv(const std::vector<TraceRequest>& trace) {
  std::string out = kHeader;
  out += '\n';
  char line[128];
  for (const auto& r : trace) {
    std::snprintf(line, sizeof(line),
                  "%" PRId64 ",%.9g,%" PRId64 ",%d,%d,%d,%" PRId64 "\n",
                  r.id, r.arrival_time, r.lora_id, r.prompt_len, r.output_len,
                  r.shared_prefix_len, r.prefix_group);
    out += line;
  }
  return out;
}

std::vector<TraceRequest> TraceFromCsv(const std::string& csv) {
  std::istringstream in(csv);
  std::string line;
  PUNICA_CHECK_MSG(static_cast<bool>(std::getline(in, line)),
                   "empty trace file");
  bool v1 = line == kHeaderV1;
  PUNICA_CHECK_MSG(line == kHeader || v1, "unexpected trace header");
  std::vector<TraceRequest> trace;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    TraceRequest r;
    long long id = 0;
    long long lora = 0;
    long long group = -1;
    int parsed = std::sscanf(line.c_str(), "%lld,%lf,%lld,%d,%d,%d,%lld",
                             &id, &r.arrival_time, &lora, &r.prompt_len,
                             &r.output_len, &r.shared_prefix_len, &group);
    PUNICA_CHECK_MSG(parsed == (v1 ? 5 : 7), "malformed trace row");
    r.prefix_group = group;
    r.id = id;
    r.lora_id = lora;
    PUNICA_CHECK_MSG(r.prompt_len > 0 && r.output_len > 0,
                     "non-positive lengths in trace row");
    trace.push_back(r);
  }
  return trace;
}

void SaveTraceCsv(const std::string& path,
                  const std::vector<TraceRequest>& trace) {
  std::ofstream out(path, std::ios::trunc);
  PUNICA_CHECK_MSG(out.good(), "cannot open trace file for writing");
  out << TraceToCsv(trace);
  PUNICA_CHECK_MSG(out.good(), "trace write failed");
}

std::vector<TraceRequest> LoadTraceCsv(const std::string& path) {
  std::ifstream in(path);
  PUNICA_CHECK_MSG(in.good(), "cannot open trace file for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  return TraceFromCsv(buf.str());
}

}  // namespace punica
