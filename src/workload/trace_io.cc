#include "workload/trace_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace punica {

namespace {
// Format history (every version serialises the open-loop arrival timestamp
// in the `arrival_time` column — second field since v1):
//   v1  id,arrival_time,lora_id,prompt_len,output_len
//   v2  + shared_prefix_len,prefix_group   (shared system prompts)
//   v3  + priority                         (SLO class for open-loop
//                                           admission: shed/defer order)
// Older files still load; missing fields default to "nothing shared" /
// priority 0.
constexpr const char* kHeader =
    "id,arrival_time,lora_id,prompt_len,output_len,shared_prefix_len,"
    "prefix_group,priority";
constexpr const char* kHeaderV2 =
    "id,arrival_time,lora_id,prompt_len,output_len,shared_prefix_len,"
    "prefix_group";
constexpr const char* kHeaderV1 = "id,arrival_time,lora_id,prompt_len,output_len";
}  // namespace

std::string TraceToCsv(const std::vector<TraceRequest>& trace) {
  std::string out = kHeader;
  out += '\n';
  char line[160];
  for (const auto& r : trace) {
    std::snprintf(line, sizeof(line),
                  "%" PRId64 ",%.9g,%" PRId64 ",%d,%d,%d,%" PRId64 ",%d\n",
                  r.id, r.arrival_time, r.lora_id, r.prompt_len, r.output_len,
                  r.shared_prefix_len, r.prefix_group, r.priority);
    out += line;
  }
  return out;
}

std::vector<TraceRequest> TraceFromCsv(const std::string& csv) {
  std::istringstream in(csv);
  std::string line;
  PUNICA_CHECK_MSG(static_cast<bool>(std::getline(in, line)),
                   "empty trace file");
  int version = line == kHeaderV1 ? 1 : line == kHeaderV2 ? 2
                : line == kHeader ? 3 : 0;
  PUNICA_CHECK_MSG(version != 0, "unexpected trace header");
  int expected_fields = version == 1 ? 5 : version == 2 ? 7 : 8;
  std::vector<TraceRequest> trace;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    TraceRequest r;
    long long id = 0;
    long long lora = 0;
    long long group = -1;
    int parsed = std::sscanf(line.c_str(), "%lld,%lf,%lld,%d,%d,%d,%lld,%d",
                             &id, &r.arrival_time, &lora, &r.prompt_len,
                             &r.output_len, &r.shared_prefix_len, &group,
                             &r.priority);
    PUNICA_CHECK_MSG(parsed == expected_fields, "malformed trace row");
    r.prefix_group = group;
    r.id = id;
    r.lora_id = lora;
    PUNICA_CHECK_MSG(r.prompt_len > 0 && r.output_len > 0,
                     "non-positive lengths in trace row");
    trace.push_back(r);
  }
  return trace;
}

void SaveTraceCsv(const std::string& path,
                  const std::vector<TraceRequest>& trace) {
  std::ofstream out(path, std::ios::trunc);
  PUNICA_CHECK_MSG(out.good(), "cannot open trace file for writing");
  out << TraceToCsv(trace);
  PUNICA_CHECK_MSG(out.good(), "trace write failed");
}

std::vector<TraceRequest> LoadTraceCsv(const std::string& path) {
  std::ifstream in(path);
  PUNICA_CHECK_MSG(in.good(), "cannot open trace file for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  return TraceFromCsv(buf.str());
}

}  // namespace punica
