#include "workload/trace_io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace punica {

namespace {
constexpr const char* kHeader = "id,arrival_time,lora_id,prompt_len,output_len";
}  // namespace

std::string TraceToCsv(const std::vector<TraceRequest>& trace) {
  std::string out = kHeader;
  out += '\n';
  char line[128];
  for (const auto& r : trace) {
    std::snprintf(line, sizeof(line),
                  "%" PRId64 ",%.9g,%" PRId64 ",%d,%d\n", r.id,
                  r.arrival_time, r.lora_id, r.prompt_len, r.output_len);
    out += line;
  }
  return out;
}

std::vector<TraceRequest> TraceFromCsv(const std::string& csv) {
  std::istringstream in(csv);
  std::string line;
  PUNICA_CHECK_MSG(static_cast<bool>(std::getline(in, line)),
                   "empty trace file");
  PUNICA_CHECK_MSG(line == kHeader, "unexpected trace header");
  std::vector<TraceRequest> trace;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    TraceRequest r;
    long long id = 0;
    long long lora = 0;
    int parsed = std::sscanf(line.c_str(), "%lld,%lf,%lld,%d,%d", &id,
                             &r.arrival_time, &lora, &r.prompt_len,
                             &r.output_len);
    PUNICA_CHECK_MSG(parsed == 5, "malformed trace row");
    r.id = id;
    r.lora_id = lora;
    PUNICA_CHECK_MSG(r.prompt_len > 0 && r.output_len > 0,
                     "non-positive lengths in trace row");
    trace.push_back(r);
  }
  return trace;
}

void SaveTraceCsv(const std::string& path,
                  const std::vector<TraceRequest>& trace) {
  std::ofstream out(path, std::ios::trunc);
  PUNICA_CHECK_MSG(out.good(), "cannot open trace file for writing");
  out << TraceToCsv(trace);
  PUNICA_CHECK_MSG(out.good(), "trace write failed");
}

std::vector<TraceRequest> LoadTraceCsv(const std::string& path) {
  std::ifstream in(path);
  PUNICA_CHECK_MSG(in.good(), "cannot open trace file for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  return TraceFromCsv(buf.str());
}

}  // namespace punica
