// Trace record/replay: CSV serialisation of request traces so experiments
// can be rerun bit-identically, shared, or regenerated against other
// systems. Format (one header + one row per request; v3 — v2/v1 files
// load with the missing fields defaulted):
//
//   id,arrival_time,lora_id,prompt_len,output_len,shared_prefix_len,
//   prefix_group,priority
#pragma once

#include <string>
#include <vector>

#include "workload/trace.h"

namespace punica {

std::string TraceToCsv(const std::vector<TraceRequest>& trace);

/// Parses a CSV produced by TraceToCsv. Aborts on malformed rows (traces
/// are trusted internal artefacts, not user input).
std::vector<TraceRequest> TraceFromCsv(const std::string& csv);

/// File round-trip helpers. SaveTraceCsv aborts when the file cannot be
/// written; LoadTraceCsv when it cannot be read.
void SaveTraceCsv(const std::string& path,
                  const std::vector<TraceRequest>& trace);
std::vector<TraceRequest> LoadTraceCsv(const std::string& path);

}  // namespace punica
