// LoRA model popularity distributions (paper §7, "Workloads"):
//   Distinct  — every request uses its own LoRA model.
//   Uniform   — ⌈√n⌉ models, all equally popular.
//   Skewed    — popularity follows the paper's Zipf-α rule: the i-th most
//               popular model receives α× the requests of the (i+1)-th,
//               i.e. geometric weights α^{-i} (α = 1.5 in the paper).
//   Identical — all requests use one model.
#pragma once

#include <string>
#include <vector>

#include "core/segment.h"
#include "util/rng.h"

namespace punica {

enum class Popularity { kDistinct, kUniform, kSkewed, kIdentical };

inline constexpr Popularity kAllPopularities[] = {
    Popularity::kDistinct, Popularity::kUniform, Popularity::kSkewed,
    Popularity::kIdentical};

std::string ToString(Popularity p);

/// Number of LoRA models used for `n` requests under each distribution.
int NumModelsFor(Popularity p, int n, double zipf_alpha = 1.5);

/// Assigns a LoRA id to each of `n` requests. Ids are in [0, NumModelsFor).
/// Deterministic in `rng`'s state.
std::vector<LoraId> AssignLoraIds(Popularity p, int n, Pcg32& rng,
                                  double zipf_alpha = 1.5);

/// Online sampler for the cluster experiment: draws one LoRA id per arrival
/// from the Skewed (geometric/Zipf-α) distribution over `num_models` models.
class ZipfAlphaSampler {
 public:
  ZipfAlphaSampler(int num_models, double alpha);

  LoraId Sample(Pcg32& rng) const;
  int num_models() const { return static_cast<int>(cdf_.size()); }
  /// Probability of model i (for statistical tests).
  double ProbabilityOf(int i) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace punica
