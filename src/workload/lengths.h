// Prompt/response length distributions.
//
// The paper samples lengths from ShareGPT conversations. We substitute a
// clipped lognormal fit to the published ShareGPT summary statistics
// (mean prompt ≈ 161 tokens, mean response ≈ 338 tokens, heavy right tail,
// lengths clipped to [4, 2048]) — the distribution *shape* (a mix of short
// chats and long generations) is what drives batching and KvCache pressure.
#pragma once

#include <cstdint>

#include "util/rng.h"

namespace punica {

struct LengthSample {
  std::int32_t prompt_len = 0;
  std::int32_t output_len = 0;
};

class ShareGptLengthSampler {
 public:
  ShareGptLengthSampler() = default;

  /// Lognormal parameters (log-space mean/σ) and clip bounds.
  struct Params {
    double prompt_mu = 4.45;   ///< median ≈ 86, mean ≈ 166 tokens
    double prompt_sigma = 1.15;
    double output_mu = 5.30;   ///< median ≈ 200, mean ≈ 330 tokens
    double output_sigma = 1.00;
    std::int32_t min_len = 4;
    std::int32_t max_len = 2048;
  };

  explicit ShareGptLengthSampler(Params params) : params_(params) {}

  LengthSample Sample(Pcg32& rng) const;
  const Params& params() const { return params_; }

  /// Analytic mean of the *unclipped* lognormal (for sanity tests).
  double UnclippedPromptMean() const;
  double UnclippedOutputMean() const;

 private:
  std::int32_t SampleOne(Pcg32& rng, double mu, double sigma) const;

  Params params_;
};

}  // namespace punica
