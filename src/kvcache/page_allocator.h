// Fixed-pool, reference-counted page allocator for the paged KvCache
// (paper §5.4, extended with vLLM-style page sharing).
//
// Alloc hands out a page with refcount 1; Retain/Release adjust the count
// and a page returns to the free list when its count reaches zero. Sharing
// a prompt prefix across sequences is then a Retain per aliased page —
// redundant prefill compute becomes page-table pointer copies. Releasing a
// free page ("double free"), retaining a free page ("over-retain") and
// touching foreign pages are programming errors and abort. The pool size is
// fixed at construction — KvCache memory is a reserved slice of GPU memory,
// never grown.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace punica {

using PageId = std::int32_t;

class PageAllocator {
 public:
  explicit PageAllocator(std::int32_t num_pages);

  /// Returns nullopt when the pool is exhausted (KvCache pressure — the
  /// caller evicts cached prefixes and/or triggers request migration, §5.3).
  /// A fresh page starts with refcount 1.
  std::optional<PageId> Alloc();

  /// Adds one reference to an allocated page (prefix sharing).
  void Retain(PageId page);

  /// Drops one reference; the page returns to the free list at zero.
  void Release(PageId page);

  std::int32_t capacity() const { return capacity_; }
  std::int32_t free_pages() const {
    return static_cast<std::int32_t>(free_list_.size());
  }
  std::int32_t used_pages() const { return capacity_ - free_pages(); }
  /// Pages with more than one reference (the sharing gauge).
  std::int32_t shared_pages() const { return shared_pages_; }
  bool IsAllocated(PageId page) const { return RefCount(page) > 0; }
  std::int32_t RefCount(PageId page) const;

 private:
  std::int32_t capacity_;
  std::vector<PageId> free_list_;
  std::vector<std::int32_t> ref_counts_;
  std::int32_t shared_pages_ = 0;
};

}  // namespace punica
