// Fixed-pool page allocator for the paged KvCache (paper §5.4).
//
// O(1) alloc/free over a free list; double-free and foreign-page frees are
// programming errors and abort. The pool size is fixed at construction —
// KvCache memory is a reserved slice of GPU memory, never grown.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace punica {

using PageId = std::int32_t;

class PageAllocator {
 public:
  explicit PageAllocator(std::int32_t num_pages);

  /// Returns nullopt when the pool is exhausted (KvCache pressure — the
  /// caller triggers request migration, §5.3).
  std::optional<PageId> Alloc();

  void Free(PageId page);

  std::int32_t capacity() const { return capacity_; }
  std::int32_t free_pages() const {
    return static_cast<std::int32_t>(free_list_.size());
  }
  std::int32_t used_pages() const { return capacity_ - free_pages(); }
  bool IsAllocated(PageId page) const;

 private:
  std::int32_t capacity_;
  std::vector<PageId> free_list_;
  std::vector<bool> allocated_;
};

}  // namespace punica
