#include "kvcache/kvcache.h"

#include <algorithm>

#include "util/check.h"

namespace punica {

PagedKvCache::PagedKvCache(const KvCacheConfig& config)
    : config_(config),
      allocator_(config.num_pages),
      storage_(static_cast<std::size_t>(config.num_pages) *
               config.page_elems()) {
  PUNICA_CHECK(config.num_layers > 0);
  PUNICA_CHECK(config.num_kv_heads > 0);
  PUNICA_CHECK(config.head_dim > 0);
  PUNICA_CHECK(config.page_size > 0);
}

SeqId PagedKvCache::CreateSequence() {
  SeqId id = next_seq_++;
  seqs_.emplace(id, SeqState{});
  return id;
}

SeqId PagedKvCache::ForkFrom(SeqId src, std::int64_t n_tokens) {
  const SeqState& src_st = GetSeq(src);
  PUNICA_CHECK(n_tokens >= 0);
  PUNICA_CHECK_MSG(n_tokens <= src_st.len, "fork beyond source length");
  SeqState st;
  st.len = n_tokens;
  std::int32_t pages = config_.PagesNeeded(n_tokens);
  st.pages.reserve(static_cast<std::size_t>(pages));
  for (std::int32_t i = 0; i < pages; ++i) {
    PageId p = src_st.pages[static_cast<std::size_t>(i)];
    allocator_.Retain(p);
    st.pages.push_back(p);
  }
  SeqId id = next_seq_++;
  seqs_.emplace(id, std::move(st));
  return id;
}

bool PagedKvCache::Extend(SeqId seq, std::int64_t tokens) {
  PUNICA_CHECK(tokens >= 0);
  SeqState& st = GetSeq(seq);
  if (tokens == 0) return true;
  std::int64_t new_len = st.len + tokens;
  std::int32_t need = config_.PagesNeeded(new_len);

  // CoW: growth writes into the current tail page when it is partially
  // filled; if that page is shared, deep-copy it first so shared pages are
  // never written. The copy is page-granular (all layers, K and V).
  bool cow = st.len % config_.page_size != 0 &&
             allocator_.RefCount(st.pages.back()) > 1;

  // Reserve every page this growth needs up front so failure rolls back
  // cleanly with no partial state.
  std::vector<PageId> newly;
  std::int32_t grow = need - static_cast<std::int32_t>(st.pages.size());
  while (static_cast<std::int32_t>(newly.size()) < grow + (cow ? 1 : 0)) {
    auto page = allocator_.Alloc();
    if (!page.has_value()) {
      for (PageId p : newly) allocator_.Release(p);
      return false;
    }
    newly.push_back(*page);
  }

  std::size_t next = 0;
  if (cow) {
    PageId fresh = newly[next++];
    PageId old = st.pages.back();
    std::copy_n(storage_.begin() +
                    static_cast<std::ptrdiff_t>(
                        static_cast<std::size_t>(old) * config_.page_elems()),
                static_cast<std::ptrdiff_t>(config_.page_elems()),
                storage_.begin() +
                    static_cast<std::ptrdiff_t>(static_cast<std::size_t>(
                                                    fresh) *
                                                config_.page_elems()));
    st.pages.back() = fresh;
    allocator_.Release(old);
  }
  st.pages.insert(st.pages.end(), newly.begin() + static_cast<std::ptrdiff_t>(
                                                      next),
                  newly.end());
  st.len = new_len;
  return true;
}

void PagedKvCache::FreeSequence(SeqId seq) {
  SeqState& st = GetSeq(seq);
  for (PageId p : st.pages) allocator_.Release(p);
  seqs_.erase(seq);
}

bool PagedKvCache::Contains(SeqId seq) const {
  return seqs_.contains(seq);
}

std::int64_t PagedKvCache::SeqLen(SeqId seq) const { return GetSeq(seq).len; }

std::int32_t PagedKvCache::SeqPages(SeqId seq) const {
  return static_cast<std::int32_t>(GetSeq(seq).pages.size());
}

std::int32_t PagedKvCache::PageRefCount(SeqId seq,
                                        std::int32_t page_idx) const {
  const SeqState& st = GetSeq(seq);
  PUNICA_CHECK(page_idx >= 0 &&
               page_idx < static_cast<std::int32_t>(st.pages.size()));
  return allocator_.RefCount(st.pages[static_cast<std::size_t>(page_idx)]);
}

std::size_t PagedKvCache::EntryOffset(const SeqState& st, int layer,
                                      std::int64_t pos, KvSlot slot) const {
  PUNICA_CHECK(layer >= 0 && layer < config_.num_layers);
  PUNICA_CHECK_MSG(pos >= 0 && pos < st.len, "position beyond sequence");
  auto page_idx = static_cast<std::size_t>(pos / config_.page_size);
  auto slot_idx = static_cast<std::size_t>(pos % config_.page_size);
  PageId page = st.pages[page_idx];
  // Layout within a page: [L, 2, N, P, D] — slot-in-page is the P axis.
  std::size_t entry = config_.token_entry_elems();
  std::size_t off =
      static_cast<std::size_t>(page) * config_.page_elems() +
      static_cast<std::size_t>(layer) * 2 * entry *
          static_cast<std::size_t>(config_.page_size) +
      static_cast<std::size_t>(slot) * entry *
          static_cast<std::size_t>(config_.page_size) +
      slot_idx * entry;
  return off;
}

std::span<f16> PagedKvCache::Entry(SeqId seq, int layer, std::int64_t pos,
                                   KvSlot slot) {
  const SeqState& st = GetSeq(seq);
  std::size_t off = EntryOffset(st, layer, pos, slot);
  PUNICA_CHECK_MSG(
      allocator_.RefCount(
          st.pages[static_cast<std::size_t>(pos / config_.page_size)]) == 1,
      "write to shared page");
  return std::span<f16>(storage_).subspan(off, config_.token_entry_elems());
}

std::span<const f16> PagedKvCache::Entry(SeqId seq, int layer,
                                         std::int64_t pos,
                                         KvSlot slot) const {
  const SeqState& st = GetSeq(seq);
  std::size_t off = EntryOffset(st, layer, pos, slot);
  return std::span<const f16>(storage_).subspan(off,
                                                config_.token_entry_elems());
}

std::span<const PageId> PagedKvCache::PageTable(SeqId seq) const {
  return GetSeq(seq).pages;
}

KvRunCursor::KvRunCursor(const PagedKvCache& kv, SeqId seq, int layer,
                         KvSlot slot, std::size_t prefetch_elem_off) {
  const KvCacheConfig& config = kv.config_;
  PUNICA_CHECK(layer >= 0 && layer < config.num_layers);
  const PagedKvCache::SeqState& st = kv.GetSeq(seq);
  storage_ = kv.storage_.data();
  pages_ = st.pages.data();
  page_elems_ = config.page_elems();
  entry_ = config.token_entry_elems();
  ls_off_ = static_cast<std::size_t>(layer) * 2 * entry_ *
                static_cast<std::size_t>(config.page_size) +
            static_cast<std::size_t>(slot) * entry_ *
                static_cast<std::size_t>(config.page_size);
  prefetch_off_ = prefetch_elem_off;
  page_size_ = config.page_size;
  seq_len_ = st.len;
}

bool KvRunCursor::Next(std::int64_t limit, KvRun* run) {
  if (limit > seq_len_) limit = seq_len_;
  if (pos_ >= limit) return false;
  const std::int64_t page_idx = pos_ / page_size_;
  const std::int64_t slot_idx = pos_ % page_size_;
  const std::int64_t run_end =
      std::min(limit, (page_idx + 1) * page_size_);
  run->data = storage_ +
              static_cast<std::size_t>(pages_[page_idx]) * page_elems_ +
              ls_off_ + static_cast<std::size_t>(slot_idx) * entry_;
  run->first_pos = pos_;
  run->len = static_cast<std::int32_t>(run_end - pos_);
  if (run_end < limit) {
#if defined(__GNUC__) || defined(__clang__)
    // The next page will be consumed by a following Next(): start its head
    // slice towards the caller now (4 lines ≈ one f16 head_dim=128 slice).
    const char* next = reinterpret_cast<const char*>(
        storage_ +
        static_cast<std::size_t>(pages_[page_idx + 1]) * page_elems_ +
        ls_off_ + prefetch_off_);
    for (int line = 0; line < 4; ++line) {
      __builtin_prefetch(next + 64 * line, 0, 3);
    }
#endif
  }
  pos_ = run_end;
  return true;
}

const PagedKvCache::SeqState& PagedKvCache::GetSeq(SeqId seq) const {
  auto it = seqs_.find(seq);
  PUNICA_CHECK_MSG(it != seqs_.end(), "unknown sequence");
  return it->second;
}

PagedKvCache::SeqState& PagedKvCache::GetSeq(SeqId seq) {
  auto it = seqs_.find(seq);
  PUNICA_CHECK_MSG(it != seqs_.end(), "unknown sequence");
  return it->second;
}

}  // namespace punica
