#include "kvcache/page_allocator.h"

#include "util/check.h"

namespace punica {

PageAllocator::PageAllocator(std::int32_t num_pages)
    : capacity_(num_pages), ref_counts_(static_cast<std::size_t>(num_pages)) {
  PUNICA_CHECK(num_pages >= 0);
  free_list_.reserve(static_cast<std::size_t>(num_pages));
  // Push in reverse so pages are handed out in ascending order, which makes
  // tests and traces easier to read.
  for (PageId p = num_pages - 1; p >= 0; --p) {
    free_list_.push_back(p);
  }
}

std::optional<PageId> PageAllocator::Alloc() {
  if (free_list_.empty()) return std::nullopt;
  PageId p = free_list_.back();
  free_list_.pop_back();
  ref_counts_[static_cast<std::size_t>(p)] = 1;
  return p;
}

void PageAllocator::Retain(PageId page) {
  PUNICA_CHECK_MSG(page >= 0 && page < capacity_, "foreign page");
  std::int32_t& rc = ref_counts_[static_cast<std::size_t>(page)];
  PUNICA_CHECK_MSG(rc > 0, "over-retain: page is free");
  if (++rc == 2) ++shared_pages_;
}

void PageAllocator::Release(PageId page) {
  PUNICA_CHECK_MSG(page >= 0 && page < capacity_, "foreign page");
  std::int32_t& rc = ref_counts_[static_cast<std::size_t>(page)];
  PUNICA_CHECK_MSG(rc > 0, "double free");
  if (rc-- == 2) --shared_pages_;
  if (rc == 0) free_list_.push_back(page);
}

std::int32_t PageAllocator::RefCount(PageId page) const {
  PUNICA_CHECK(page >= 0 && page < capacity_);
  return ref_counts_[static_cast<std::size_t>(page)];
}

}  // namespace punica
