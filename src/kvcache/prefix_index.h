// PrefixIndex: a trie over token ids mapping an incoming prompt to its
// longest cached prefix.
//
// Each entry is a cached prefix — a token string plus the KvCache sequence
// (a read-only "holder" fork) whose pages carry its K/V. Lookup walks the
// trie along the query and returns the deepest match together with an entry
// whose sequence covers it, so the caller can ForkFrom(entry.seq, matched)
// and prefill only the uncached suffix. Eviction is LRU over unpinned
// entries under page pressure; recency is a logical clock (deterministic —
// no wall time), so serving runs replay bit-identically.
//
// The index stores no pages itself: evicting an entry frees only the
// index's references; pages shared with live sequences stay allocated
// (refcounts in PageAllocator are the ground truth).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "kvcache/kvcache.h"

namespace punica {

class PrefixIndex {
 public:
  struct Match {
    std::int64_t entry = -1;  ///< -1 = no cached prefix
    SeqId seq = -1;           ///< holder sequence covering the match
    std::int64_t matched_tokens = 0;
  };

  struct InsertResult {
    std::int64_t entry = -1;
    bool inserted = false;  ///< false = exact duplicate; existing was touched
  };

  /// Longest cached prefix of `tokens` (does not update recency).
  Match Lookup(std::span<const std::int32_t> tokens) const;

  /// The entry whose tokens equal `tokens` exactly, or nullopt — the cheap
  /// already-registered probe (no fork, no insert) for hot re-registration
  /// paths.
  std::optional<std::int64_t> FindExact(
      std::span<const std::int32_t> tokens) const;

  /// Registers `tokens` as a cached prefix held by `seq`. An exact
  /// duplicate touches the existing entry instead and reports
  /// inserted=false — the caller then frees its redundant holder sequence.
  InsertResult Insert(std::span<const std::int32_t> tokens, SeqId seq);

  /// Marks the entry most-recently-used.
  void Touch(std::int64_t entry);

  /// Pinned entries are skipped by LruVictim (a request is mid-prefill from
  /// them). Pins nest.
  void Pin(std::int64_t entry);
  void Unpin(std::int64_t entry);

  /// Removes the entry and returns its holder sequence — the caller frees
  /// it. The entry must not be pinned.
  SeqId Erase(std::int64_t entry);

  /// Least-recently-used unpinned entry, or nullopt when all are pinned or
  /// the index is empty.
  std::optional<std::int64_t> LruVictim() const;

  /// All unpinned entries with their holder sequences, in id order — the
  /// reclaimable-page projection input.
  std::vector<std::pair<std::int64_t, SeqId>> EvictableEntries() const;

  std::size_t size() const { return entries_.size(); }
  /// Total tokens across cached entries (observability).
  std::int64_t cached_tokens() const { return cached_tokens_; }
  SeqId entry_seq(std::int64_t entry) const;
  bool contains(std::int64_t entry) const { return entries_.contains(entry); }

 private:
  struct Node {
    std::map<std::int32_t, std::unique_ptr<Node>> children;
    std::int64_t entry = -1;  ///< entry ending exactly here (-1 = none)
    std::int64_t rep = -1;    ///< smallest entry id in this subtree
  };

  struct Entry {
    std::vector<std::int32_t> tokens;
    SeqId seq = -1;
    int pins = 0;
    std::uint64_t stamp = 0;  ///< logical recency
  };

  Entry& GetEntry(std::int64_t entry);
  const Entry& GetEntry(std::int64_t entry) const;

  Node root_;
  std::map<std::int64_t, Entry> entries_;
  std::int64_t next_entry_ = 0;
  std::uint64_t clock_ = 0;
  std::int64_t cached_tokens_ = 0;
};

}  // namespace punica
