// Paged KvCache with the paper's separable layout (§5.4):
//
//     [ Σ_i ⌈S_i/P⌉ , L, 2, N, P, D ]
//
// i.e. storage is a pool of pages; one page holds P token slots of K and V
// for *all* L layers of one sequence. The batch dimension is outermost
// (page-granular, per-sequence page tables), so sequences join and leave a
// batch independently — this is what enables continuous batching, unlike the
// HuggingFace [L, 2, B, N, S, D] layout where requests that enter a batch
// together must finish together (Fig. 6).
//
// Sharing (vLLM-style prefix reuse): ForkFrom creates a sequence whose first
// n tokens alias another sequence's pages via reference counts — whole
// shared pages are never copied. Copy-on-write happens at page granularity:
// a shared page is never written, because Extend on a sequence whose partial
// tail page is shared deep-copies that one boundary page first. The mutable
// Entry accessor asserts the invariant.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "kvcache/page_allocator.h"
#include "tensor/half.h"

namespace punica {

using SeqId = std::int64_t;

struct KvCacheConfig {
  int num_layers = 0;
  int num_kv_heads = 0;
  int head_dim = 0;
  int page_size = 16;   ///< P: token slots per page
  std::int32_t num_pages = 0;

  /// Elements per (layer, K-or-V, token) entry.
  std::size_t token_entry_elems() const {
    return static_cast<std::size_t>(num_kv_heads) *
           static_cast<std::size_t>(head_dim);
  }
  /// fp16 elements in one page across all layers, K and V, P slots.
  std::size_t page_elems() const {
    return static_cast<std::size_t>(num_layers) * 2 *
           token_entry_elems() * static_cast<std::size_t>(page_size);
  }
  std::size_t page_bytes() const { return page_elems() * sizeof(f16); }
  std::int32_t PagesNeeded(std::int64_t seq_len) const {
    return static_cast<std::int32_t>(
        (seq_len + page_size - 1) / page_size);
  }
};

enum class KvSlot : int { kKey = 0, kValue = 1 };

/// One contiguous strip of K or V entries: `len` consecutive token
/// positions starting at `first_pos`, whose entries sit token_entry_elems()
/// apart in page storage (the P axis of the [L, 2, N, P, D] page layout).
struct KvRun {
  const f16* data = nullptr;  ///< entry of first_pos (num_kv_heads·head_dim)
  std::int64_t first_pos = 0;
  std::int32_t len = 0;
};

class PagedKvCache;

/// Forward iterator over the contiguous page runs of one (sequence, layer,
/// K|V) column. Construction resolves the sequence (one hash lookup) and
/// the layer/slot offset once; each Next() then costs one page-table index
/// and yields up to page_size positions — amortizing the per-position
/// lookup + bounds checks the Entry accessor pays, which is where the
/// serial decode-attention kernel spent its time. When a run ends at a page
/// boundary with more positions ahead, Next() software-prefetches the next
/// page's slice at `prefetch_elem_off` (callers pass their head offset) so
/// DRAM-resident pages are in flight before the SIMD strip reaches them.
///
/// Snapshot semantics: the cursor caches raw storage pointers; Extend /
/// FreeSequence / CoW on the cache invalidate it. Read-only and safe to use
/// from many threads over one cache concurrently.
class KvRunCursor {
 public:
  KvRunCursor(const PagedKvCache& kv, SeqId seq, int layer, KvSlot slot,
              std::size_t prefetch_elem_off = 0);

  /// Jumps to an absolute position in [0, SeqLen].
  void Seek(std::int64_t pos) { pos_ = pos; }
  std::int64_t pos() const { return pos_; }

  /// Yields the next run, clipped at min(limit, SeqLen); false once the
  /// cursor has reached it. Advances past the returned run.
  bool Next(std::int64_t limit, KvRun* run);

 private:
  const f16* storage_ = nullptr;
  const PageId* pages_ = nullptr;
  std::size_t page_elems_ = 0;
  std::size_t entry_ = 0;    ///< token entry stride (elements)
  std::size_t ls_off_ = 0;   ///< (layer, slot) offset within a page
  std::size_t prefetch_off_ = 0;
  std::int64_t page_size_ = 0;
  std::int64_t seq_len_ = 0;
  std::int64_t pos_ = 0;
};

class PagedKvCache {
 public:
  explicit PagedKvCache(const KvCacheConfig& config);

  const KvCacheConfig& config() const { return config_; }

  /// Creates a sequence with zero tokens. Caller extends it before writing.
  SeqId CreateSequence();

  /// Creates a sequence whose first `n_tokens` alias `src`'s cached K/V:
  /// every covering page is shared by refcount (no data moves). Requires
  /// n_tokens ≤ SeqLen(src). The fork itself never allocates — a partial
  /// boundary page is deep-copied lazily by the first Extend that would
  /// write into it (copy-on-write).
  SeqId ForkFrom(SeqId src, std::int64_t n_tokens);

  /// Grows the sequence by `tokens` slots, allocating pages on demand and
  /// deep-copying a shared partial tail page first (CoW) so the growth can
  /// be written. Returns false (and rolls back) when the pool cannot cover
  /// the growth — the KvCache-pressure signal that triggers prefix-cache
  /// eviction and then migration.
  bool Extend(SeqId seq, std::int64_t tokens);

  /// Releases all page references of a sequence and forgets it. Pages still
  /// aliased by other sequences stay allocated.
  void FreeSequence(SeqId seq);

  bool Contains(SeqId seq) const;
  std::int64_t SeqLen(SeqId seq) const;
  std::int32_t SeqPages(SeqId seq) const;
  std::int32_t free_pages() const { return allocator_.free_pages(); }
  std::int32_t used_pages() const { return allocator_.used_pages(); }
  std::int32_t shared_pages() const { return allocator_.shared_pages(); }
  std::size_t num_sequences() const { return seqs_.size(); }
  /// Reference count of one of `seq`'s pages (sharing introspection).
  std::int32_t PageRefCount(SeqId seq, std::int32_t page_idx) const;
  /// Reference count by physical page id.
  std::int32_t PageRefCount(PageId page) const {
    return allocator_.RefCount(page);
  }

  /// Mutable K or V entry for (sequence, layer, token position):
  /// num_kv_heads·head_dim fp16 values. Position must be < SeqLen, and the
  /// covering page must be exclusively owned (the CoW invariant: a shared
  /// page is never written).
  std::span<f16> Entry(SeqId seq, int layer, std::int64_t pos, KvSlot slot);
  std::span<const f16> Entry(SeqId seq, int layer, std::int64_t pos,
                             KvSlot slot) const;

  /// The page table (for tests / introspection).
  std::span<const PageId> PageTable(SeqId seq) const;

 private:
  struct SeqState {
    std::vector<PageId> pages;
    std::int64_t len = 0;
  };

  std::size_t EntryOffset(const SeqState& st, int layer, std::int64_t pos,
                          KvSlot slot) const;
  const SeqState& GetSeq(SeqId seq) const;
  SeqState& GetSeq(SeqId seq);

  friend class KvRunCursor;  ///< reads SeqState + storage once at setup

  KvCacheConfig config_;
  PageAllocator allocator_;
  std::vector<f16> storage_;
  std::unordered_map<SeqId, SeqState> seqs_;
  SeqId next_seq_ = 0;
};

}  // namespace punica
