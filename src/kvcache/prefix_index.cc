#include "kvcache/prefix_index.h"

#include <algorithm>

#include "util/check.h"

namespace punica {

PrefixIndex::Match PrefixIndex::Lookup(
    std::span<const std::int32_t> tokens) const {
  const Node* node = &root_;
  std::int64_t depth = 0;
  for (std::int32_t tok : tokens) {
    auto it = node->children.find(tok);
    if (it == node->children.end()) break;
    node = it->second.get();
    ++depth;
  }
  if (depth == 0 || node->rep < 0) return {};
  // Every entry in the subtree of the deepest matched node shares the
  // query's first `depth` tokens, so the representative's holder sequence
  // covers the match.
  const Entry& e = GetEntry(node->rep);
  return {.entry = node->rep, .seq = e.seq, .matched_tokens = depth};
}

std::optional<std::int64_t> PrefixIndex::FindExact(
    std::span<const std::int32_t> tokens) const {
  const Node* node = &root_;
  for (std::int32_t tok : tokens) {
    auto it = node->children.find(tok);
    if (it == node->children.end()) return std::nullopt;
    node = it->second.get();
  }
  if (node == &root_ || node->entry < 0) return std::nullopt;
  return node->entry;
}

PrefixIndex::InsertResult PrefixIndex::Insert(
    std::span<const std::int32_t> tokens, SeqId seq) {
  PUNICA_CHECK_MSG(!tokens.empty(), "empty prefix");
  Node* node = &root_;
  std::vector<Node*> path;
  path.reserve(tokens.size());
  for (std::int32_t tok : tokens) {
    auto it = node->children.find(tok);
    if (it == node->children.end()) {
      it = node->children.emplace(tok, std::make_unique<Node>()).first;
    }
    node = it->second.get();
    path.push_back(node);
  }
  if (node->entry >= 0) {
    Touch(node->entry);
    return {.entry = node->entry, .inserted = false};
  }
  std::int64_t id = next_entry_++;
  Entry e;
  e.tokens.assign(tokens.begin(), tokens.end());
  e.seq = seq;
  e.stamp = clock_++;
  cached_tokens_ += static_cast<std::int64_t>(tokens.size());
  entries_.emplace(id, std::move(e));
  node->entry = id;
  for (Node* n : path) {
    if (n->rep < 0 || id < n->rep) n->rep = id;
  }
  return {.entry = id, .inserted = true};
}

void PrefixIndex::Touch(std::int64_t entry) { GetEntry(entry).stamp = clock_++; }

void PrefixIndex::Pin(std::int64_t entry) { ++GetEntry(entry).pins; }

void PrefixIndex::Unpin(std::int64_t entry) {
  Entry& e = GetEntry(entry);
  PUNICA_CHECK_MSG(e.pins > 0, "unbalanced unpin");
  --e.pins;
}

SeqId PrefixIndex::Erase(std::int64_t entry) {
  Entry& e = GetEntry(entry);
  PUNICA_CHECK_MSG(e.pins == 0, "erase of pinned entry");
  SeqId seq = e.seq;

  // Walk the entry's path, unmark it, prune childless unmarked nodes
  // bottom-up and recompute subtree representatives for what remains.
  std::vector<std::pair<Node*, std::int32_t>> path;  // (parent, edge token)
  Node* node = &root_;
  for (std::int32_t tok : e.tokens) {
    path.emplace_back(node, tok);
    node = node->children.at(tok).get();
  }
  PUNICA_CHECK(node->entry == entry);
  node->entry = -1;

  cached_tokens_ -= static_cast<std::int64_t>(e.tokens.size());
  entries_.erase(entry);

  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    Node* parent = it->first;
    Node* child = parent->children.at(it->second).get();
    if (child->entry < 0 && child->children.empty()) {
      parent->children.erase(it->second);
      continue;
    }
    std::int64_t rep = child->entry;
    for (const auto& [tok, grand] : child->children) {
      if (rep < 0 || (grand->rep >= 0 && grand->rep < rep)) rep = grand->rep;
    }
    child->rep = rep;
  }
  {
    std::int64_t rep = -1;
    for (const auto& [tok, child] : root_.children) {
      if (rep < 0 || (child->rep >= 0 && child->rep < rep)) rep = child->rep;
    }
    root_.rep = rep;
  }
  return seq;
}

std::optional<std::int64_t> PrefixIndex::LruVictim() const {
  std::optional<std::int64_t> best;
  std::uint64_t best_stamp = 0;
  for (const auto& [id, e] : entries_) {
    if (e.pins > 0) continue;
    if (!best.has_value() || e.stamp < best_stamp) {
      best = id;
      best_stamp = e.stamp;
    }
  }
  return best;
}

std::vector<std::pair<std::int64_t, SeqId>> PrefixIndex::EvictableEntries()
    const {
  std::vector<std::pair<std::int64_t, SeqId>> out;
  out.reserve(entries_.size());
  for (const auto& [id, e] : entries_) {
    if (e.pins == 0) out.emplace_back(id, e.seq);
  }
  return out;
}

SeqId PrefixIndex::entry_seq(std::int64_t entry) const {
  return GetEntry(entry).seq;
}

PrefixIndex::Entry& PrefixIndex::GetEntry(std::int64_t entry) {
  auto it = entries_.find(entry);
  PUNICA_CHECK_MSG(it != entries_.end(), "unknown prefix entry");
  return it->second;
}

const PrefixIndex::Entry& PrefixIndex::GetEntry(std::int64_t entry) const {
  auto it = entries_.find(entry);
  PUNICA_CHECK_MSG(it != entries_.end(), "unknown prefix entry");
  return it->second;
}

}  // namespace punica
