// Figure 1: batching effects in the Prefill and Decode stages.
// Llama-2 7B on one A100-80GB; batch size 1–32, sequence lengths
// {128, 512, 1024, 1536, 2048}. Paper anchor points: decode bs1 ≈ 11 ms
// (short) / 17 ms (long); bs32 ≈ 13 ms / 34 ms; prefill ∝ batch size,
// reaching seconds at bs32·len2048.
//
// Appendix rows reproduce §5.2's on-demand LoRA loading latencies.
#include "bench_common.h"
#include "model/config.h"

namespace punica {
namespace {

void Run() {
  bench::PrintHeader("Figure 1", "Prefill / Decode latency vs batch size");
  CostModel cm((A100Sxm80GB()));
  LlamaConfig model = Llama7B();
  const int lens[] = {128, 512, 1024, 1536, 2048};
  const int batches[] = {1, 2, 4, 8, 16, 24, 32};

  {
    Table t({"batch", "len=128", "len=512", "len=1024", "len=1536",
             "len=2048"});
    for (int b : batches) {
      std::vector<std::string> row = {std::to_string(b)};
      for (int len : lens) {
        row.push_back(FormatSeconds(cm.PrefillStepLatency(model, b, len)));
      }
      t.AddRow(row);
    }
    std::printf("Prefill latency (7B):\n");
    t.Print();
  }

  {
    Table t({"batch", "len=128", "len=512", "len=1024", "len=1536",
             "len=2048"});
    for (int b : batches) {
      std::vector<std::string> row = {std::to_string(b)};
      for (int len : lens) {
        row.push_back(FormatSeconds(cm.DecodeStepLatency(model, b, len)));
      }
      t.AddRow(row);
    }
    std::printf("\nDecode step latency (7B):\n");
    t.Print();
  }

  {
    std::printf("\nOn-demand LoRA loading over PCIe Gen4 x16 (paper §5.2: "
                "~50 µs/layer, ~2 ms/model). The last column is the §5.2\n"
                "alternative — layer-by-layer copies overlapped with a "
                "busy decode step's per-layer compute:\n");
    StepShape busy;
    busy.decode_kv_lens.assign(32, 1024);
    double layer_compute = cm.LayerLatency(model, busy);
    Table t({"rank", "per layer", "whole model (async)",
             "layerwise overlap stall"});
    for (int rank : {8, 16, 32, 64}) {
      t.AddRow({std::to_string(rank),
                FormatSeconds(cm.LoraLoadLayerLatency(model, rank)),
                FormatSeconds(cm.LoraLoadModelLatency(model, rank)),
                FormatSeconds(cm.LoraLoadLayerwiseStall(model, rank,
                                                        layer_compute))});
    }
    t.Print();
    std::printf("(both are ≪ the thousands of ~30 ms decode steps a request "
                "runs, which is why\n Punica opts for the simpler "
                "whole-model async copy — §5.2)\n");
  }
}

}  // namespace
}  // namespace punica

int main() {
  punica::Run();
  return 0;
}
