// Ablation benches for the design decisions DESIGN.md §5 calls out:
//   A. SGMV segment grouping (grouped vs one-segment-per-request)
//   B. Prefill batch limit (paper fixes it at 1 to bound decode latency)
//   C. Max batch size 32 (the paper's profiled throughput/latency sweet spot)
//   D. Evict-newest vs evict-oldest migration under KvCache pressure
//   E. Periodic consolidation on/off (GPU releasability)
#include <cstdio>

#include "bench_common.h"
#include "baselines/systems.h"
#include "sched/cluster.h"
#include "sim/arrivals.h"
#include "workload/trace.h"

namespace punica {
namespace {

void AblationGrouping(const CostModel& cm) {
  std::printf("A. SGMV segment grouping (Skewed workload, h=4096, r=16):\n");
  Table t({"batch", "grouped segments", "grouped", "ungrouped",
           "speedup"});
  for (int b : {8, 16, 32, 64}) {
    auto grouped = bench::SegmentRowsFor(Popularity::kSkewed, b);
    std::vector<std::int32_t> ungrouped(static_cast<std::size_t>(b), 1);
    double tg = cm.SgmvPairLatency(grouped, 4096, 4096, 16);
    double tu = cm.SgmvPairLatency(ungrouped, 4096, 4096, 16);
    t.AddRow({std::to_string(b), std::to_string(grouped.size()),
              FormatSeconds(tg), FormatSeconds(tu),
              FormatDouble(tu / tg, 2) + "x"});
  }
  t.Print();
  std::printf("\n");
}

std::vector<TraceRequest> AblationTrace(int n, Popularity pop) {
  TraceSpec spec;
  spec.num_requests = n;
  spec.popularity = pop;
  spec.seed = 0xAB1A7E;
  return GenerateClosedLoopTrace(spec);
}

void AblationPrefillLimit(const CostModel& cm) {
  std::printf("B. Prefill requests per invocation (Punica, 7B, Skewed, "
              "closed loop):\n");
  Table t({"prefill limit", "throughput", "invocations"});
  auto trace = AblationTrace(500, Popularity::kSkewed);
  for (int limit : {1, 2, 4, 8}) {
    TextGenConfig cfg;
    cfg.prefill_limit = limit;
    auto r = SimulateTextGen(ServingSystem::kPunica, trace, Llama7B(), cm,
                             cfg);
    t.AddRow({std::to_string(limit),
              FormatDouble(r.throughput_tok_s, 0) + " tok/s",
              std::to_string(r.invocations)});
  }
  t.Print();
  std::printf("(larger limits help closed-loop throughput slightly but put "
              "whole prompts\n ahead of every waiting decode — the paper "
              "bounds the latency hit with limit 1)\n\n");
}

void AblationMaxBatch(const CostModel& cm) {
  std::printf("C. Max batch size (open loop, 1 GPU, 7B, 1.5 req/s "
              "Poisson):\n");
  Table t({"max batch", "mean latency", "p-ish max latency", "tok/s",
           "mean step batch"});
  for (int max_batch : {4, 8, 16, 32, 64, 128}) {
    ClusterConfig cfg;
    cfg.num_gpus = 1;
    cfg.model = Llama7B();
    cfg.runner.max_batch_size = max_batch;
    cfg.runner.kv_capacity_tokens = cm.KvCacheCapacityTokens(cfg.model);
    ClusterDriver driver(cfg, &cm);
    Pcg32 rng(77);
    auto arrivals = PoissonArrivals(1.5, 600.0, rng);
    driver.SubmitTrace(GenerateOpenLoopTrace(arrivals, 16, 1.5, 3));
    driver.Run();
    const auto& s = driver.stats();
    double tokps = static_cast<double>(s.total_new_tokens) / s.makespan;
    t.AddRow({std::to_string(max_batch),
              FormatSeconds(s.request_latency.mean()),
              FormatSeconds(s.request_latency.max()),
              FormatDouble(tokps, 0),
              FormatDouble(s.step_batch_size.mean(), 1)});
  }
  t.Print();
  std::printf("(throughput saturates near 32 while the latency tail keeps "
              "growing — the\n paper's profiled sweet spot)\n\n");
}

void AblationEvictPolicy(const CostModel& cm) {
  std::printf("D. Migration victim selection under KvCache pressure "
              "(2 GPUs, tight cache):\n");
  Table t({"policy", "migrations", "re-prefill tokens", "mean latency",
           "max latency"});
  for (EvictPolicy policy : {EvictPolicy::kNewest, EvictPolicy::kOldest}) {
    ClusterConfig cfg;
    cfg.num_gpus = 2;
    cfg.model = Llama7B();
    cfg.runner.max_batch_size = 16;
    cfg.runner.kv_capacity_tokens = 4000;  // tight: forces migrations
    cfg.runner.evict_policy = policy;
    ClusterDriver driver(cfg, &cm);
    TraceSpec spec;
    spec.num_requests = 48;
    spec.popularity = Popularity::kSkewed;
    spec.seed = 4242;
    spec.lengths.prompt_mu = 5.0;
    spec.lengths.output_mu = 5.5;  // long generations keep caches growing
    driver.SubmitTrace(GenerateClosedLoopTrace(spec));
    driver.Run();
    const auto& s = driver.stats();
    // Re-prefill work = every migrated request re-processes its prompt +
    // generated prefix; count prefill tokens beyond the first pass.
    std::int64_t reprefill = 0;
    for (const auto& req : driver.requests()) {
      reprefill += req.migrations * req.prompt_len;  // lower bound
    }
    t.AddRow({policy == EvictPolicy::kNewest ? "evict-newest (paper)"
                                             : "evict-oldest",
              std::to_string(s.migrations), std::to_string(reprefill),
              FormatSeconds(s.request_latency.mean()),
              FormatSeconds(s.request_latency.max())});
  }
  t.Print();
  std::printf("(evict-oldest discards the largest caches — fewer but "
              "costlier migrations — and\n violates FCFS: note the "
              "worst-case latency tail. Evict-newest keeps arrival order\n "
              "intact, which is why the paper builds migration on it)\n\n");
}

void AblationConsolidation(const CostModel& cm) {
  std::printf("E. Periodic consolidation (8 GPUs, ramp-down load):\n");
  Table t({"consolidation", "migrations", "mean GPU release time",
           "release-time spread", "mean latency"});
  for (bool enabled : {true, false}) {
    ClusterConfig cfg;
    cfg.num_gpus = 8;
    cfg.model = Llama7B();
    cfg.runner.max_batch_size = 16;
    cfg.runner.kv_capacity_tokens = cm.KvCacheCapacityTokens(cfg.model);
    cfg.enable_consolidation = enabled;
    cfg.consolidation_interval_s = 20.0;
    ClusterDriver driver(cfg, &cm);
    Pcg32 rng(13);
    auto arrivals = PoissonArrivals(
        [&](double t) { return RampRate(t, 900.0, 20.0); }, 20.0, 900.0,
        rng);
    driver.SubmitTrace(GenerateOpenLoopTrace(arrivals, 32, 1.5, 5));
    driver.Run();
    const auto& s = driver.stats();
    // Release time = a GPU's last non-empty batch; consolidation pulls
    // stragglers off draining GPUs so most GPUs release *early* (only the
    // busiest keeps running), widening the spread and freeing machines.
    RunningStat release;
    for (const auto& series : s.gpu_batch) {
      double last_busy = 0.0;
      auto ts = series.times();
      auto vs = series.values();
      for (std::size_t i = 0; i < ts.size(); ++i) {
        if (vs[i] > 0.0) last_busy = std::max(last_busy, ts[i]);
      }
      if (last_busy > 0.0) release.Add(last_busy);
    }
    t.AddRow({enabled ? "on (20s period)" : "off",
              std::to_string(s.migrations),
              FormatSeconds(release.mean()),
              FormatSeconds(release.max() - release.min()),
              FormatSeconds(s.request_latency.mean())});
  }
  t.Print();
  std::printf("(the gain is modest by design: the busiest-GPU placement rule "
              "already\n concentrates load, so consolidation only has to "
              "clean up stragglers stranded\n by KvCache-pressure migrations "
              "— it narrows the release-time spread)\n");
}

void Run() {
  bench::PrintHeader("Ablations", "design-choice sweeps (DESIGN.md §5)");
  CostModel cm((A100Sxm80GB()));
  AblationGrouping(cm);
  AblationPrefillLimit(cm);
  AblationMaxBatch(cm);
  AblationEvictPolicy(cm);
  AblationConsolidation(cm);
}

}  // namespace
}  // namespace punica

int main() {
  punica::Run();
  return 0;
}
