// Shared helpers for the figure-reproduction benchmarks. Every bench binary
// prints the rows/series of one paper figure via util::Table, using the
// calibrated A100 cost model (and, where marked, real CPU kernel timings).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <vector>

#include "core/segment.h"
#include "gpu/costmodel.h"
#include "gpu/specs.h"
#include "util/rng.h"
#include "util/table.h"
#include "workload/popularity.h"

namespace punica::bench {

/// Segment-size layout (rows per LoRA segment) for a given popularity
/// distribution at a given batch size — the shapes swept in Figs. 7–10.
inline std::vector<std::int32_t> SegmentRowsFor(Popularity pop,
                                                int batch_size,
                                                std::uint64_t seed = 42) {
  Pcg32 rng(seed);
  std::vector<LoraId> ids = AssignLoraIds(pop, batch_size, rng);
  auto perm = GroupRowsByLora(ids);
  std::vector<LoraId> grouped;
  grouped.reserve(ids.size());
  for (auto p : perm) grouped.push_back(ids[static_cast<std::size_t>(p)]);
  Segments seg = BuildSegments(grouped);
  std::vector<std::int32_t> rows;
  for (int i = 0; i < seg.num_segments(); ++i) {
    rows.push_back(seg.segment_rows(i));
  }
  return rows;
}

/// Wall-clock timing of a real CPU kernel: median of `reps` runs.
inline double TimeCpu(const std::function<void()>& fn, int reps = 5) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto stop = std::chrono::steady_clock::now();
    times.push_back(std::chrono::duration<double>(stop - start).count());
  }
  std::sort(times.begin(), times.end());
  return times[static_cast<std::size_t>(reps / 2)];
}

inline void PrintHeader(const char* figure, const char* description,
                        const GpuSpec& spec = A100Sxm80GB()) {
  std::printf("=======================================================\n");
  std::printf("%s — %s\n", figure, description);
  std::printf("Cost model: %s (calibrated roofline; see DESIGN.md §2)\n",
              spec.name.c_str());
  std::printf("=======================================================\n\n");
}

}  // namespace punica::bench
