// Figure 10: transformer layer latency with the LoRA operator incorporated.
// 7B and 13B configurations, sequence lengths 512 and 2048, batch 1–32,
// four popularity distributions.
//
// Expected shapes: latency nearly identical across distributions (the LoRA
// addon is small next to dense projections + attention — the property that
// lets Punica schedule different LoRA models as if one); batching effect
// stronger at len 512 (+~72% from bs 1→32) than at len 2048.
#include "bench_common.h"
#include "model/config.h"

namespace punica {
namespace {

void Run() {
  bench::PrintHeader("Figure 10", "Transformer layer latency (LoRA rank 16)");
  CostModel cm((A100Sxm80GB()));

  for (const LlamaConfig& model : {Llama7B(), Llama13B()}) {
    for (int len : {512, 2048}) {
      std::printf("%s, len=%d:\n", model.name.c_str(), len);
      Table t({"batch", "Distinct", "Uniform", "Skewed", "Identical",
               "spread"});
      for (int b : {1, 4, 8, 16, 24, 32}) {
        std::vector<std::string> row = {std::to_string(b)};
        double lo = 1e18, hi = 0.0;
        for (Popularity pop : kAllPopularities) {
          StepShape shape;
          shape.decode_kv_lens.assign(static_cast<std::size_t>(b), len);
          shape.lora_segment_rows = bench::SegmentRowsFor(pop, b);
          shape.lora_rank = 16;
          double t_layer = cm.LayerLatency(model, shape);
          lo = std::min(lo, t_layer);
          hi = std::max(hi, t_layer);
          row.push_back(FormatSeconds(t_layer));
        }
        row.push_back(FormatDouble((hi / lo - 1.0) * 100.0, 1) + "%");
        t.AddRow(row);
      }
      t.Print();
      std::printf("\n");
    }
  }
}

}  // namespace
}  // namespace punica

int main() {
  punica::Run();
  return 0;
}
