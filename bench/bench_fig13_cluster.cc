// Figure 13: one-hour cluster deployment on 16 simulated A100s serving 7B.
// Request rate ramps up to a peak at t=30 min and back down (Poisson
// arrivals); LoRA popularity is Zipf-1.5 (the Skewed workload).
//
// Prints the three panels as 3-minute windows: request rate (req/s), text
// generation throughput (tok/s), and per-GPU batch-size means — plus a
// consolidation summary. Expected shape: busy GPUs run at max batch size;
// load concentrates on high-UUID GPUs; idle GPUs stay idle (releasable).
//
// Flags: --max-batch N (default 32) sweeps the scheduler constant
// (DESIGN.md §5.3); --peak R sets the peak request rate (default 30 req/s).
#include <cstdlib>
#include <cstring>

#include "bench_common.h"
#include "sched/cluster.h"
#include "sim/arrivals.h"
#include "workload/trace.h"

namespace punica {
namespace {

void Run(int max_batch, double peak_rate) {
  bench::PrintHeader("Figure 13", "Cluster deployment (16 GPUs, 1 hour, "
                                  "Zipf-1.5, 7B)");
  CostModel cm((A100Sxm80GB()));
  const double kHorizon = 3600.0;

  ClusterConfig cfg;
  cfg.num_gpus = 16;
  cfg.model = Llama7B();
  cfg.runner.max_batch_size = max_batch;
  cfg.runner.kv_capacity_tokens = cm.KvCacheCapacityTokens(cfg.model);
  cfg.runner.lora_load_latency_s = cm.LoraLoadModelLatency(cfg.model, 16);
  cfg.consolidation_interval_s = 60.0;
  // Cloud autoscaling (§5.1): start small, acquire under load, release
  // idle GPUs back to the provider.
  cfg.enable_autoscale = true;
  cfg.initial_gpus = 2;
  cfg.autoscale_interval_s = 30.0;
  cfg.autoscale.min_gpus = 1;

  Pcg32 rng(20240613);
  auto arrivals = PoissonArrivals(
      [&](double t) { return RampRate(t, kHorizon, peak_rate); }, peak_rate,
      kHorizon, rng);
  auto trace = GenerateOpenLoopTrace(arrivals, /*num_models=*/64,
                                     /*zipf_alpha=*/1.5, /*seed=*/7);
  std::printf("max batch %d, peak %.1f req/s, %zu requests, %lld output "
              "tokens, KvCache %lld tokens/GPU\n\n",
              max_batch, peak_rate, trace.size(),
              static_cast<long long>(TotalOutputTokens(trace)),
              static_cast<long long>(cfg.runner.kv_capacity_tokens));

  ClusterDriver driver(cfg, &cm);
  driver.SubmitTrace(trace);
  driver.Run();
  const ClusterStats& stats = driver.stats();

  const double kWindow = 180.0;
  double horizon = std::max(kHorizon, stats.makespan) + kWindow;
  auto req_windows = stats.arrivals.Windows(kWindow, horizon);
  auto tok_windows = stats.tokens.Windows(kWindow, horizon);

  auto active_windows = stats.active_gpus.Windows(kWindow, horizon);
  Table t({"t (min)", "req/s", "tok/s", "busy GPUs", "in service",
           "per-GPU batch (mean)"});
  for (std::size_t w = 0; w < req_windows.size(); ++w) {
    double t_lo = req_windows[w].window_start;
    int busy_gpus = 0;
    RunningStat batch_mean;
    for (int g = 0; g < cfg.num_gpus; ++g) {
      auto gw = stats.gpu_batch[static_cast<std::size_t>(g)].Windows(
          kWindow, horizon);
      double mean = gw[w].count > 0 ? gw[w].mean : 0.0;
      if (mean > 0.5) ++busy_gpus;
      batch_mean.Add(mean);
    }
    std::string in_service =
        active_windows[w].count > 0
            ? FormatDouble(active_windows[w].mean, 1)
            : "-";
    t.AddRow({FormatDouble(t_lo / 60.0, 0),
              FormatDouble(req_windows[w].sum / kWindow, 2),
              FormatDouble(tok_windows[w].sum / kWindow, 0),
              std::to_string(busy_gpus), in_service,
              FormatDouble(batch_mean.mean(), 1)});
  }
  t.Print();

  std::printf("\nSummary:\n");
  Table s({"metric", "value"});
  s.AddRow({"requests finished", std::to_string(stats.finished_requests)});
  s.AddRow({"tokens generated", std::to_string(stats.total_new_tokens)});
  s.AddRow({"model invocations", std::to_string(stats.total_steps)});
  s.AddRow({"migrations", std::to_string(stats.migrations)});
  s.AddRow({"mean step batch size",
            FormatDouble(stats.step_batch_size.mean(), 1)});
  s.AddRow({"mean request latency",
            FormatSeconds(stats.request_latency.mean())});
  s.AddRow({"p50 / p99 request latency",
            FormatSeconds(stats.request_latency.p50()) + " / " +
                FormatSeconds(stats.request_latency.p99())});
  s.AddRow({"mean time-to-first-token",
            FormatSeconds(stats.first_token_latency.mean())});
  s.AddRow({"makespan", FormatSeconds(stats.makespan)});
  s.AddRow({"GPU acquisitions / releases (autoscale)",
            std::to_string(stats.gpu_acquisitions) + " / " +
                std::to_string(stats.gpu_releases)});
  int unused = 0;
  for (double busy : stats.gpu_busy_s) {
    if (busy == 0.0) ++unused;
  }
  s.AddRow({"GPUs never used (consolidation)", std::to_string(unused)});
  s.Print();

  std::printf("\nPer-GPU busy time (consolidation skews load to high "
              "UUIDs):\n");
  Table g({"GPU", "busy", "utilisation"});
  for (int i = 0; i < cfg.num_gpus; ++i) {
    double busy = stats.gpu_busy_s[static_cast<std::size_t>(i)];
    g.AddRow({std::to_string(i), FormatSeconds(busy),
              FormatDouble(busy / kHorizon * 100.0, 1) + "%"});
  }
  g.Print();
}

}  // namespace
}  // namespace punica

int main(int argc, char** argv) {
  int max_batch = 32;
  double peak = 30.0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--max-batch") == 0) {
      max_batch = std::atoi(argv[i + 1]);
    } else if (std::strcmp(argv[i], "--peak") == 0) {
      peak = std::atof(argv[i + 1]);
    }
  }
  punica::Run(max_batch > 0 ? max_batch : 32, peak > 0 ? peak : 10.0);
  return 0;
}
