// Figure 12: 70B model with Megatron-style tensor parallelism across 8
// A100-40GB GPUs (Testbed #2), vLLM (backbone-only) vs Punica, four
// popularity distributions.
//
// Paper anchors: Punica ≈ 441–446 tok/s regardless of distribution; vLLM ≈
// 21–25 tok/s on the multi-LoRA workloads and ≈ 457 tok/s on Identical
// (where the two systems' parallel schemes coincide).
//
// Second half: a *measured* numeric-tier TP sweep. The same Engine decode
// workload runs at tp ∈ {1, 2, 4, 8} over one fixed-size thread pool, so
// the only variable is how the worker-group executor carves the pool into
// rank groups. --json PATH emits BENCH_tp.json ("bench": "tp_scaling");
// scripts/check_bench.py gates the tp=4 speedup floor in release CI.
#include <cstring>
#include <memory>

#include "bench_common.h"
#include "baselines/systems.h"
#include "gpu/specs.h"
#include "model/llama.h"
#include "runtime/engine.h"
#include "util/compute_context.h"
#include "workload/trace.h"

namespace punica {
namespace {

void Run() {
  bench::PrintHeader("Figure 12", "70B text generation, tensor parallel x8",
                     A100Sxm40GB());
  CostModel cm((A100Sxm40GB()));
  LlamaConfig model = Llama70B();
  TextGenConfig cfg;
  cfg.tp_degree = 8;

  Table t({"system", "Distinct", "Uniform", "Skewed", "Identical"});
  for (ServingSystem sys : {ServingSystem::kVllm, ServingSystem::kPunica}) {
    std::vector<std::string> row = {TraitsOf(sys).name};
    for (Popularity pop : kAllPopularities) {
      TraceSpec spec;
      spec.num_requests = 1000;
      spec.popularity = pop;
      spec.seed = 0xC0FFEE;
      auto trace = GenerateClosedLoopTrace(spec);
      TextGenResult r = SimulateTextGen(sys, trace, model, cm, cfg);
      row.push_back(FormatDouble(r.throughput_tok_s, 0) + " tok/s");
    }
    t.AddRow(row);
  }
  t.Print();
  std::printf("\nKvCache capacity per 8-GPU replica: %lld tokens\n",
              static_cast<long long>(
                  cm.KvCacheCapacityTokens(model, 8) * 8));
}

/// The measured sweep's model: big enough that per-rank GEMMs dominate the
/// fixed per-step costs, with heads/KV-heads/ffn divisible by every swept
/// degree. Matches tests/model/tp_costmodel_agreement_test.cc.
LlamaConfig MeasuredConfig() {
  return {.name = "tp-bench",
          .hidden_size = 256,
          .num_layers = 4,
          .num_heads = 8,
          .num_kv_heads = 8,
          .ffn_hidden = 1024,
          .vocab_size = 512};
}

struct MeasuredPoint {
  int tp = 0;
  double tok_s = 0.0;
  std::int64_t tokens = 0;
};

/// Runs 8 decode-heavy streams (8-token prompts, 64 new tokens each)
/// through a real Engine at the given TP degree on a pool of `threads`
/// workers and returns the best-of-`reps` throughput. tp > 1 splits the
/// pool into tp disjoint rank groups running concurrently, with the
/// deterministic fixed-rank-order all-reduce at the O/Down seams.
MeasuredPoint MeasureTp(int tp, int threads, int reps) {
  LlamaConfig config = MeasuredConfig();
  ComputeContext ctx({.num_threads = threads});
  LlamaModel model(config, /*seed=*/7, &ctx, tp, /*tp_concurrent=*/tp > 1);

  double best = 1e30;
  std::int64_t tokens = 0;
  for (int r = 0; r < reps; ++r) {
    Engine engine(&model, model.MakeKvConfig(/*num_pages=*/512),
                  EngineConfig{.max_batch_size = 8});
    for (int s = 0; s < 8; ++s) {
      std::vector<std::int32_t> prompt;
      for (int i = 0; i < 8; ++i) prompt.push_back((s * 17 + i * 3) % 256);
      engine.AddRequest(
          {.lora = -1, .prompt_tokens = prompt, .max_new_tokens = 64});
    }
    std::int64_t emitted = 0;
    auto start = std::chrono::steady_clock::now();
    while (engine.HasWork()) emitted += engine.Step().new_tokens;
    auto stop = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(stop - start).count();
    if (secs < best) best = secs;
    tokens = emitted;
  }
  return {tp, static_cast<double>(tokens) / best, tokens};
}

void RunMeasured(const char* json_path, int total_threads, int reps) {
  std::printf("\nMeasured numeric-tier TP sweep (real CPU execution)\n");
  std::printf("model: %d hidden / %d layers / %d heads, f16; pool fixed at "
              "%d threads; best of %d\n\n",
              MeasuredConfig().hidden_size, MeasuredConfig().num_layers,
              MeasuredConfig().num_heads, total_threads, reps);

  // The cost model's overhead-free roofline predicts near-ideal division of
  // the compute terms (see TpCostModelAgreement.RooflinePredicts...): quote
  // it next to the measurement as the cross-validation column.
  CostModel roofline((A100Sxm80GB()));
  auto& p = roofline.mutable_params();
  p.kernel_launch_s = 0.0;
  p.attn_kernel_overhead_s = 0.0;
  p.layer_overhead_s = 0.0;
  p.step_overhead_s = 0.0;
  p.allreduce_overhead_s = 0.0;
  double pred1 = roofline.DecodeStepLatency(MeasuredConfig(), 8, 64, 1);

  FILE* json = nullptr;
  if (json_path != nullptr) {
    json = std::fopen(json_path, "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path);
      std::exit(1);
    }
    std::fprintf(json,
                 "{\n  \"bench\": \"tp_scaling\",\n"
                 "  \"total_threads\": %d,\n  \"rows\": [\n",
                 total_threads);
  }

  // Two sweeps over the same provisioned pool size:
  //  * per_rank — rank r gets exactly one worker, so tp=N occupies N of the
  //    machine's workers: the classic "1 GPU vs N GPUs" TP scaling curve,
  //    the one the cost model's roofline prediction cross-validates.
  //  * fixed_pool — the pool stays `total_threads` workers at every degree
  //    and tp=N re-partitions it into N groups of total_threads/N: speedup
  //    here isolates the execution *schedule* (smaller sync domains, ranks
  //    overlapping) with zero extra hardware.
  Table t({"mode", "tp", "tok/s", "speedup", "roofline speedup"});
  bool first = true;
  for (const char* mode : {"per_rank", "fixed_pool"}) {
    bool per_rank = std::strcmp(mode, "per_rank") == 0;
    MeasuredPoint base;
    for (int tp : {1, 2, 4, 8}) {
      MeasuredPoint pt =
          MeasureTp(tp, per_rank ? tp : total_threads, reps);
      if (tp == 1) base = pt;
      double speedup = pt.tok_s / base.tok_s;
      double predicted =
          pred1 / roofline.DecodeStepLatency(MeasuredConfig(), 8, 64, tp);
      t.AddRow({mode, std::to_string(tp), FormatDouble(pt.tok_s, 0),
                FormatDouble(speedup, 2) + "x",
                FormatDouble(predicted, 2) + "x"});
      if (json != nullptr) {
        std::fprintf(json,
                     "%s    {\"mode\": \"%s\", \"tp\": %d, "
                     "\"tok_s\": %.2f, \"speedup\": %.4f, "
                     "\"predicted_speedup\": %.4f}",
                     first ? "" : ",\n", mode, tp, pt.tok_s, speedup,
                     predicted);
        first = false;
      }
    }
  }
  t.Print();
  std::printf(
      "\nReading the table:\n"
      " * per_rank gives every rank one worker (tp=N uses N workers): the\n"
      "   measured analogue of the roofline column, which predicts\n"
      "   near-ideal N since every compute term shards. The gap is the\n"
      "   unsharded embedding/LM-head fraction plus scheduling; with fewer\n"
      "   than N free cores the curve flattens — the ratio measures the\n"
      "   machine's real parallelism, which is exactly what CI's speedup\n"
      "   floors assert (>= 2.0 at tp=4 on a 4-core runner).\n"
      " * fixed_pool never grows the pool (%d workers at every degree):\n"
      "   speedup comes only from the execution schedule — per-rank\n"
      "   kernels sized 1/N synchronizing at the two all-reduce seams\n"
      "   instead of pool-wide barriers per region. On a single-core host\n"
      "   both modes measure ~1.0x by construction.\n"
      " * Absolute tok/s is machine-class specific; CI gates the same-run\n"
      "   speedup ratios (runner speed cancels), not the rates.\n",
      total_threads);
  if (json != nullptr) {
    std::fprintf(json, "\n  ]\n}\n");
    if (std::ferror(json) != 0 || std::fclose(json) != 0) {
      std::fprintf(stderr, "error writing %s\n", json_path);
      std::exit(1);
    }
    std::printf("\nwrote %s\n", json_path);
  }
}

}  // namespace
}  // namespace punica

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  int total_threads = 8;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      total_threads = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[i + 1]);
    }
  }
  if (total_threads < 1) total_threads = 1;
  if (reps < 1) reps = 1;
  punica::Run();
  punica::RunMeasured(json_path, total_threads, reps);
  return 0;
}
