// Figure 12: 70B model with Megatron-style tensor parallelism across 8
// A100-40GB GPUs (Testbed #2), vLLM (backbone-only) vs Punica, four
// popularity distributions.
//
// Paper anchors: Punica ≈ 441–446 tok/s regardless of distribution; vLLM ≈
// 21–25 tok/s on the multi-LoRA workloads and ≈ 457 tok/s on Identical
// (where the two systems' parallel schemes coincide).
#include "bench_common.h"
#include "baselines/systems.h"
#include "gpu/specs.h"
#include "workload/trace.h"

namespace punica {
namespace {

void Run() {
  bench::PrintHeader("Figure 12", "70B text generation, tensor parallel x8",
                     A100Sxm40GB());
  CostModel cm((A100Sxm40GB()));
  LlamaConfig model = Llama70B();
  TextGenConfig cfg;
  cfg.tp_degree = 8;

  Table t({"system", "Distinct", "Uniform", "Skewed", "Identical"});
  for (ServingSystem sys : {ServingSystem::kVllm, ServingSystem::kPunica}) {
    std::vector<std::string> row = {TraitsOf(sys).name};
    for (Popularity pop : kAllPopularities) {
      TraceSpec spec;
      spec.num_requests = 1000;
      spec.popularity = pop;
      spec.seed = 0xC0FFEE;
      auto trace = GenerateClosedLoopTrace(spec);
      TextGenResult r = SimulateTextGen(sys, trace, model, cm, cfg);
      row.push_back(FormatDouble(r.throughput_tok_s, 0) + " tok/s");
    }
    t.AddRow(row);
  }
  t.Print();
  std::printf("\nKvCache capacity per 8-GPU replica: %lld tokens\n",
              static_cast<long long>(
                  cm.KvCacheCapacityTokens(model, 8) * 8));
}

}  // namespace
}  // namespace punica

int main() {
  punica::Run();
  return 0;
}
