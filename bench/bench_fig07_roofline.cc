// Figure 7: roofline plot of the SGMV kernel (expand: h_i=16, h_o=4096),
// batch size 1–64 under the four popularity distributions.
//
// Prints (arithmetic intensity, achieved FLOP/s) pairs per distribution —
// the series the paper plots against the A100's 1.935 TB/s bandwidth
// diagonal and 312 TFLOP/s ceiling. Expected shape: Identical tracks the
// bandwidth diagonal; Distinct rises vertically at constant intensity;
// Uniform/Skewed sit in between.
#include "bench_common.h"
#include "core/sgmv.h"

namespace punica {
namespace {

void Run() {
  bench::PrintHeader("Figure 7", "Roofline of the SGMV kernel");
  CostModel cm((A100Sxm80GB()));
  const int h_in = 16, h_out = 4096;

  std::printf("Rooflines: memory diagonal %s × AI; compute ceiling %s\n\n",
              FormatBytes(cm.gpu().hbm_bytes_per_s).c_str(),
              FormatFlops(cm.gpu().fp16_flops).c_str());

  for (Popularity pop : kAllPopularities) {
    Table t({"batch", "segments", "FLOP", "IO bytes", "intensity",
             "kernel time", "achieved FLOP/s", "% of roofline"});
    for (int b : {1, 2, 4, 8, 16, 32, 48, 64}) {
      auto rows = bench::SegmentRowsFor(pop, b);
      std::vector<std::int32_t> seg = {0};
      for (auto r : rows) seg.push_back(seg.back() + r);
      SgmvCost cost = SgmvCostOf(seg, h_in, h_out);
      double time = cm.SgmvKernelTime(rows, h_in, h_out);
      double achieved = cost.flop / time;
      double ai = cost.arithmetic_intensity();
      double roof = std::min(ai * cm.gpu().hbm_bytes_per_s,
                             cm.gpu().fp16_flops);
      t.AddRow({std::to_string(b), std::to_string(rows.size()),
                FormatDouble(cost.flop / 1e6, 2) + " M",
                FormatBytes(cost.io_bytes), FormatDouble(ai, 2),
                FormatSeconds(time), FormatFlops(achieved),
                FormatDouble(achieved / roof * 100.0, 1) + "%"});
    }
    std::printf("%s:\n", ToString(pop).c_str());
    t.Print();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace punica

int main() {
  punica::Run();
  return 0;
}
