// Decode-attention kernel rewrite: page-run iteration + split-KV vs the
// pre-rewrite serial kernel.
//
// The baseline replicated here is the kernel this bench replaced: one task
// per (row, head) walking the cache position-by-position through
// PagedKvCache::Entry() (an unordered_map lookup plus bounds checks per
// position), an online softmax, and a per-task heap accumulator. The
// rewrite walks contiguous page runs through KvRunCursor (one lookup per
// cursor), evaluates fixed kAttnBlockLen softmax blocks with the SimdOps
// strip entries, and optionally splits long KV ranges across workers with
// a bit-exact ascending fold (see src/model/attention.h).
//
// Both kernels run on the same cache bits in the same process, so the
// per-shape `speedup` is a same-run ratio: runner speed cancels, and CI
// can gate an absolute floor on it (decode/b1/kv4096/speedup >= 2.0 at 4
// threads) while excluding the wall-clock columns from baseline compare.
// A split sweep asserts the determinism contract where it is cheapest to
// see: every forced split size must produce byte-identical output.
//
// --json PATH   emit BENCH_attention.json ("bench": "attention")
// --threads N   pool width (default 4)
// --repeat N    best-of reps per timing (default 5)
// --smoke       small shapes, correctness + split bit-identity only (Debug
//               CI; exits non-zero on mismatch)
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "kvcache/kvcache.h"
#include "util/check.h"
#include "model/attention.h"
#include "tensor/simd.h"
#include "util/compute_context.h"
#include "util/rng.h"
#include "util/table.h"

namespace punica {
namespace {

/// Llama-7B-shaped attention: 32 query heads over 8 KV heads (GQA 4),
/// head_dim 128. One layer — the kernel under test is per-layer.
LlamaConfig BenchConfig() {
  return {.name = "attn-bench",
          .hidden_size = 4096,
          .num_layers = 1,
          .num_heads = 32,
          .num_kv_heads = 8,
          .ffn_hidden = 64,
          .vocab_size = 64};
}

/// The pre-rewrite decode kernel, kept verbatim as the measurement
/// baseline: per-position Entry() lookups, online softmax, per-task heap
/// accumulator.
void BaselineDecode(const LlamaConfig& c, const PagedKvCache& kv,
                    std::span<const SeqId> seqs, int layer,
                    std::span<const float> q, std::span<float> out,
                    const ComputeContext& ctx) {
  const SimdOps& ops = Simd();
  const int heads = c.num_heads;
  const int d = c.head_dim();
  const int group = heads / c.num_kv_heads;
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));
  const auto rows = static_cast<std::int64_t>(seqs.size());
  const std::size_t width = static_cast<std::size_t>(heads) *
                            static_cast<std::size_t>(d);
  std::vector<std::int64_t> kv_lens(seqs.size());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    kv_lens[i] = kv.SeqLen(seqs[i]);
  }
  ctx.ParallelFor(rows * heads, 1, [&](std::int64_t lo, std::int64_t hi) {
   for (std::int64_t i = lo; i < hi; ++i) {
    const std::int64_t row = i / heads;
    const int h = static_cast<int>(i % heads);
    const float* qh =
        q.data() + static_cast<std::size_t>(row) * width +
        static_cast<std::size_t>(h * d);
    const std::size_t off = static_cast<std::size_t>((h / group) * d);
    std::vector<float> acc(static_cast<std::size_t>(d), 0.0f);
    float m = -std::numeric_limits<float>::infinity();
    float s = 0.0f;
    for (std::int64_t pos = 0; pos < kv_lens[static_cast<std::size_t>(row)];
         ++pos) {
      auto k = kv.Entry(seqs[static_cast<std::size_t>(row)], layer, pos,
                        KvSlot::kKey);
      float score =
          ops.dot_f16(qh, k.data() + off, static_cast<std::size_t>(d)) *
          scale;
      float m_new = std::max(m, score);
      float corr = std::exp(m - m_new);
      float p = std::exp(score - m_new);
      auto v = kv.Entry(seqs[static_cast<std::size_t>(row)], layer, pos,
                        KvSlot::kValue);
      ops.scale_add_f16(acc.data(), corr, p, v.data() + off,
                        static_cast<std::size_t>(d));
      s = s * corr + p;
      m = m_new;
    }
    float inv = s > 0.0f ? 1.0f / s : 0.0f;
    float* oh = out.data() + static_cast<std::size_t>(row) * width +
                static_cast<std::size_t>(h * d);
    for (int j = 0; j < d; ++j) {
      oh[j] = acc[static_cast<std::size_t>(j)] * inv;
    }
   }
  });
}

struct Fixture {
  std::unique_ptr<PagedKvCache> kv;
  std::vector<SeqId> seqs;
  std::vector<float> q;
};

Fixture MakeFixture(const LlamaConfig& c, int batch, std::int64_t kv_len) {
  const std::int32_t page_size = 16;
  Fixture f;
  f.kv = std::make_unique<PagedKvCache>(KvCacheConfig{
      .num_layers = c.num_layers,
      .num_kv_heads = c.num_kv_heads,
      .head_dim = c.head_dim(),
      .page_size = page_size,
      .num_pages = static_cast<std::int32_t>(
          batch * ((kv_len + page_size - 1) / page_size + 1))});
  Pcg32 rng(0xA77E + static_cast<std::uint64_t>(kv_len) * 131 +
            static_cast<std::uint64_t>(batch));
  const auto kvd = static_cast<std::size_t>(c.kv_dim());
  for (int b = 0; b < batch; ++b) {
    SeqId seq = f.kv->CreateSequence();
    PUNICA_CHECK(f.kv->Extend(seq, kv_len));
    for (std::int64_t pos = 0; pos < kv_len; ++pos) {
      auto ke = f.kv->Entry(seq, 0, pos, KvSlot::kKey);
      auto ve = f.kv->Entry(seq, 0, pos, KvSlot::kValue);
      for (std::size_t i = 0; i < kvd; ++i) {
        ke[i] = f16(rng.NextFloat(-0.5f, 0.5f));
        ve[i] = f16(rng.NextFloat(-0.5f, 0.5f));
      }
    }
    f.seqs.push_back(seq);
  }
  f.q = RandomGaussianVector(
      static_cast<std::size_t>(batch) *
          static_cast<std::size_t>(c.num_heads) *
          static_cast<std::size_t>(c.head_dim()),
      1.0f, rng);
  return f;
}

double BestOf(int reps, const std::function<void()>& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    auto start = std::chrono::steady_clock::now();
    fn();
    auto stop = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double>(stop - start).count());
  }
  return best;
}

float MaxAbsDiff(std::span<const float> a, std::span<const float> b) {
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

struct ShapeRow {
  int batch;
  std::int64_t kv_len;
  double base_s;
  double new_s;
  double speedup;
  double pos_per_s;
  float max_diff;
};

ShapeRow MeasureShape(const ComputeContext& ctx, int batch,
                      std::int64_t kv_len, int reps) {
  LlamaConfig c = BenchConfig();
  Fixture f = MakeFixture(c, batch, kv_len);
  std::vector<float> out_base(f.q.size()), out_new(f.q.size());
  std::vector<float> scratch;
  double base_s = BestOf(reps, [&] {
    BaselineDecode(c, *f.kv, f.seqs, 0, f.q, out_base, ctx);
  });
  double new_s = BestOf(reps, [&] {
    BatchDecodeAttention(c, *f.kv, f.seqs, 0, f.q, out_new, ctx, &scratch);
  });
  return {batch,
          kv_len,
          base_s,
          new_s,
          base_s / new_s,
          static_cast<double>(batch) * static_cast<double>(kv_len) / new_s,
          MaxAbsDiff(out_base, out_new)};
}

/// Forced-split sweep on one long sequence: every split size must produce
/// byte-identical output (the fixed-block fold contract). Returns rows of
/// (split, seconds); exits the process on a mismatch.
std::vector<std::pair<int, double>> SplitSweep(int threads,
                                               std::int64_t kv_len,
                                               int reps) {
  LlamaConfig c = BenchConfig();
  Fixture f = MakeFixture(c, /*batch=*/1, kv_len);
  std::vector<float> ref(f.q.size());
  std::vector<float> scratch;
  std::vector<std::pair<int, double>> rows;
  for (int split : {1, 2, 4, 8, 16}) {
    ComputeContext ctx({.num_threads = threads, .attn_split = split});
    std::vector<float> out(f.q.size());
    double secs = BestOf(reps, [&] {
      BatchDecodeAttention(c, *f.kv, f.seqs, 0, f.q, out, ctx, &scratch);
    });
    if (split == 1) {
      ref = out;
    } else if (std::memcmp(out.data(), ref.data(),
                           out.size() * sizeof(float)) != 0) {
      std::fprintf(stderr,
                   "FAIL: split=%d output differs from split=1 "
                   "(determinism contract broken)\n",
                   split);
      std::exit(1);
    }
    rows.push_back({split, secs});
  }
  return rows;
}

int RunSmoke() {
  // Debug-CI gate: tiny shapes, correctness vs the baseline kernel and
  // split bit-identity. No timing — Debug wall-clock is meaningless.
  int failures = 0;
  for (auto [batch, kv_len] : {std::pair<int, std::int64_t>{1, 64},
                               {2, 160},
                               {3, kAttnBlockLen + 1}}) {
    ComputeContext ctx({.num_threads = 0});
    ShapeRow r = MeasureShape(ctx, batch, kv_len, /*reps=*/1);
    const char* verdict = r.max_diff <= 2e-3f ? "ok" : "FAIL";
    if (r.max_diff > 2e-3f) ++failures;
    std::printf("smoke b%d kv%lld: max |new - baseline| = %.2e  %s\n",
                batch, static_cast<long long>(kv_len), r.max_diff, verdict);
  }
  SplitSweep(/*threads=*/0, /*kv_len=*/kAttnBlockLen * 3 + 7, /*reps=*/1);
  std::printf("smoke splits {1,2,4,8,16}: byte-identical  ok\n");
  if (failures != 0) {
    std::fprintf(stderr, "FAIL: %d smoke shape(s) out of tolerance\n",
                 failures);
    return 1;
  }
  std::printf("attention smoke passed\n");
  return 0;
}

void Run(const char* json_path, int threads, int reps) {
  LlamaConfig c = BenchConfig();
  std::printf("Decode attention: page-run split-KV kernel vs pre-rewrite "
              "serial kernel\n");
  std::printf("model: %d q heads / %d kv heads / head_dim %d, f16 cache; "
              "%d threads; best of %d; SIMD %s\n\n",
              c.num_heads, c.num_kv_heads, c.head_dim(), threads, reps,
              SimdLevelName(ActiveSimdLevel()));

  ComputeContext ctx({.num_threads = threads});
  Table t({"batch", "kv_len", "baseline", "page-run", "speedup",
           "Mpos/s", "max diff"});
  std::vector<ShapeRow> rows;
  for (int batch : {1, 8}) {
    for (std::int64_t kv_len : {512, 2048, 4096, 8192}) {
      ShapeRow r = MeasureShape(ctx, batch, kv_len, reps);
      rows.push_back(r);
      t.AddRow({std::to_string(batch), std::to_string(kv_len),
                FormatDouble(r.base_s * 1e3, 2) + " ms",
                FormatDouble(r.new_s * 1e3, 2) + " ms",
                FormatDouble(r.speedup, 2) + "x",
                FormatDouble(r.pos_per_s / 1e6, 2),
                FormatDouble(r.max_diff, 5)});
    }
  }
  t.Print();

  auto splits = SplitSweep(threads, /*kv_len=*/8192, reps);
  std::printf("\nForced split-KV sweep, batch 1 x kv 8192 (byte-identical "
              "outputs asserted):\n");
  Table st({"split", "time", "Mpos/s"});
  for (auto [split, secs] : splits) {
    st.AddRow({std::to_string(split), FormatDouble(secs * 1e3, 2) + " ms",
               FormatDouble(8192.0 / secs / 1e6, 2)});
  }
  st.Print();
  std::printf(
      "\nReading the table:\n"
      " * baseline is the replaced kernel: per-position hash-map Entry()\n"
      "   lookups, online softmax, per-task heap accumulator. page-run is\n"
      "   the shipped kernel: one KvRunCursor per (row, head) walking\n"
      "   contiguous page runs with SimdOps strip calls and split-KV\n"
      "   scheduling. Both read the same cache bits in the same run, so\n"
      "   speedup is machine-independent enough for CI to gate a floor\n"
      "   (>= 2x at b1/kv4096); absolute ms and Mpos/s are wall-clock and\n"
      "   excluded from baseline comparison.\n"
      " * max diff is baseline-vs-new over f16 inputs: the kernels order\n"
      "   the softmax differently (online vs fixed-block), so they agree\n"
      "   to rounding, not bitwise. Split sizes of the NEW kernel are\n"
      "   byte-identical by construction — checked above, and across\n"
      "   threads/levels by tests/integration/determinism_test.cc.\n");

  if (json_path != nullptr) {
    FILE* json = std::fopen(json_path, "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path);
      std::exit(1);
    }
    std::fprintf(json,
                 "{\n  \"bench\": \"attention\",\n  \"threads\": %d,\n"
                 "  \"simd\": \"%s\",\n  \"rows\": [\n",
                 threads, SimdLevelName(ActiveSimdLevel()));
    bool first = true;
    for (const auto& r : rows) {
      std::fprintf(json,
                   "%s    {\"kind\": \"decode\", \"batch\": %d, "
                   "\"kv_len\": %lld, \"base_s\": %.6f, \"new_s\": %.6f, "
                   "\"speedup\": %.4f, \"pos_per_s\": %.1f, "
                   "\"max_diff\": %.6f}",
                   first ? "" : ",\n", r.batch,
                   static_cast<long long>(r.kv_len), r.base_s, r.new_s,
                   r.speedup, r.pos_per_s, r.max_diff);
      first = false;
    }
    for (auto [split, secs] : splits) {
      std::fprintf(json,
                   ",\n    {\"kind\": \"split\", \"split\": %d, "
                   "\"kv_len\": 8192, \"time_s\": %.6f, "
                   "\"pos_per_s\": %.1f}",
                   split, secs, 8192.0 / secs);
    }
    std::fprintf(json, "\n  ]\n}\n");
    if (std::ferror(json) != 0 || std::fclose(json) != 0) {
      std::fprintf(stderr, "error writing %s\n", json_path);
      std::exit(1);
    }
    std::printf("\nwrote %s\n", json_path);
  }
}

}  // namespace
}  // namespace punica

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  int threads = 4;
  int reps = 5;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (threads < 1) threads = 1;
  if (reps < 1) reps = 1;
  if (smoke) return punica::RunSmoke();
  punica::Run(json_path, threads, reps);
  return 0;
}
