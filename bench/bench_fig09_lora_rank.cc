// Figure 9: the LoRA (SGMV) operator across LoRA ranks 8/16/32/64, batch
// size 1–64, four popularity distributions, h=4096.
//
// Paper anchors: batch-1 ≈ 42 µs at every rank; Distinct at batch 64 rises
// to ≈ 72/75/89/118 µs for ranks 8/16/32/64; the shared-weight workloads
// (Uniform/Skewed/Identical) stay ≈ flat at 42–45 µs across all batch sizes
// and ranks.
#include "bench_common.h"

namespace punica {
namespace {

void Run() {
  bench::PrintHeader("Figure 9", "LoRA operator latency vs rank (h=4096)");
  CostModel cm((A100Sxm80GB()));
  const int h = 4096;

  for (int rank : {8, 16, 32, 64}) {
    std::printf("rank r=%d:\n", rank);
    Table t({"batch", "Distinct", "Uniform", "Skewed", "Identical"});
    for (int b : {1, 8, 16, 32, 48, 64}) {
      std::vector<std::string> row = {std::to_string(b)};
      for (Popularity pop : kAllPopularities) {
        auto rows = bench::SegmentRowsFor(pop, b);
        row.push_back(FormatSeconds(cm.SgmvPairLatency(rows, h, h, rank)));
      }
      t.AddRow(row);
    }
    t.Print();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace punica

int main() {
  punica::Run();
  return 0;
}
