// Figure 11: single-GPU text-generation throughput, 7B and 13B models,
// 1000 requests with ShareGPT-like lengths, FCFS, max batch 32, five
// systems × four popularity distributions.
//
// Paper anchors (7B): Punica ≈ 1044 tok/s across all distributions; vLLM
// (backbone-only) ≈ 1140 tok/s on Identical but collapses to batch-size-1–3
// on the multi-LoRA workloads; HF slowest everywhere; 13B ≈ 693 (Punica) /
// 789 (vLLM Identical).
//
// --prefill-limit N ablates the mixed-batch prefill limit (DESIGN.md §5.2).
#include <cstdlib>
#include <cstring>

#include "bench_common.h"
#include "baselines/systems.h"
#include "workload/trace.h"

namespace punica {
namespace {

void Run(int prefill_limit) {
  bench::PrintHeader("Figure 11", "Single-GPU text generation (1000 reqs, "
                                  "max batch 32)");
  CostModel cm((A100Sxm80GB()));

  for (const LlamaConfig& model : {Llama7B(), Llama13B()}) {
    std::printf("%s (prefill limit %d):\n", model.name.c_str(),
                prefill_limit);
    Table t({"system", "Distinct", "Uniform", "Skewed", "Identical",
             "mean decode batch (Uniform)"});
    for (ServingSystem sys : kAllServingSystems) {
      std::vector<std::string> row = {TraitsOf(sys).name};
      double uniform_batch = 0.0;
      for (Popularity pop : kAllPopularities) {
        TraceSpec spec;
        spec.num_requests = 1000;
        spec.popularity = pop;
        spec.seed = 0xC0FFEE;
        auto trace = GenerateClosedLoopTrace(spec);
        TextGenConfig cfg;
        cfg.prefill_limit = prefill_limit;
        TextGenResult r = SimulateTextGen(sys, trace, model, cm, cfg);
        row.push_back(FormatDouble(r.throughput_tok_s, 0) + " tok/s");
        if (pop == Popularity::kUniform) {
          uniform_batch = r.mean_decode_batch;
        }
      }
      row.push_back(FormatDouble(uniform_batch, 1));
      t.AddRow(row);
    }
    t.Print();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace punica

int main(int argc, char** argv) {
  int prefill_limit = 1;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--prefill-limit") == 0) {
      prefill_limit = std::atoi(argv[i + 1]);
    }
  }
  punica::Run(prefill_limit > 0 ? prefill_limit : 1);
  return 0;
}
