// Figure 11: single-GPU text-generation throughput, 7B and 13B models,
// 1000 requests with ShareGPT-like lengths, FCFS, max batch 32, five
// systems × four popularity distributions.
//
// Paper anchors (7B): Punica ≈ 1044 tok/s across all distributions; vLLM
// (backbone-only) ≈ 1140 tok/s on Identical but collapses to batch-size-1–3
// on the multi-LoRA workloads; HF slowest everywhere; 13B ≈ 693 (Punica) /
// 789 (vLLM Identical).
//
// --prefill-limit N ablates the mixed-batch prefill limit (DESIGN.md §5.2).
//
// The shared-prefix variant (always printed; --prefix-json PATH dumps it as
// a machine-readable artifact) reruns Punica over traces where every tenant
// carries a per-tenant system prompt, with and without the prefix index —
// reporting prefill tokens saved and the resulting tok/s. --shared-prefix-
// only skips the (slower) five-system figure tables for CI smoke runs.
//
// The chunked-prefill variant (Figure 11c, always printed) sweeps the
// per-step token budget over a long-prompt mix: decode p95 inter-token
// latency vs aggregate tok/s — the SLO tradeoff max_step_tokens buys.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_common.h"
#include "baselines/systems.h"
#include "workload/trace.h"

namespace punica {
namespace {

void Run(int prefill_limit, int tp) {
  bench::PrintHeader("Figure 11",
                     tp > 1 ? "Text generation, tensor parallel (1000 reqs, "
                              "max batch 32)"
                            : "Single-GPU text generation (1000 reqs, "
                              "max batch 32)");
  CostModel cm((A100Sxm80GB()));

  for (const LlamaConfig& model : {Llama7B(), Llama13B()}) {
    std::printf("%s (prefill limit %d, tp %d):\n", model.name.c_str(),
                prefill_limit, tp);
    Table t({"system", "Distinct", "Uniform", "Skewed", "Identical",
             "mean decode batch (Uniform)"});
    for (ServingSystem sys : kAllServingSystems) {
      std::vector<std::string> row = {TraitsOf(sys).name};
      double uniform_batch = 0.0;
      for (Popularity pop : kAllPopularities) {
        TraceSpec spec;
        spec.num_requests = 1000;
        spec.popularity = pop;
        spec.seed = 0xC0FFEE;
        auto trace = GenerateClosedLoopTrace(spec);
        TextGenConfig cfg;
        cfg.prefill_limit = prefill_limit;
        cfg.tp_degree = tp;
        TextGenResult r = SimulateTextGen(sys, trace, model, cm, cfg);
        row.push_back(FormatDouble(r.throughput_tok_s, 0) + " tok/s");
        if (pop == Popularity::kUniform) {
          uniform_batch = r.mean_decode_batch;
        }
      }
      row.push_back(FormatDouble(uniform_batch, 1));
      t.AddRow(row);
    }
    t.Print();
    std::printf("\n");
  }
}

/// Shared-system-prompt variant: Punica with vs without the prefix index
/// over traces whose tenants carry 128–512-token system prompts.
void RunSharedPrefix(int prefill_limit, const char* json_path) {
  bench::PrintHeader("Figure 11b",
                     "Shared-system-prompt traces: prefix index on/off "
                     "(Punica, 1000 reqs)");
  CostModel cm((A100Sxm80GB()));
  LlamaConfig model = Llama7B();

  FILE* json = nullptr;
  if (json_path != nullptr) {
    json = std::fopen(json_path, "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path);
      std::exit(1);
    }
    std::fprintf(json, "{\n  \"bench\": \"fig11b_shared_prefix\",\n"
                       "  \"model\": \"%s\",\n  \"rows\": [\n",
                 model.name.c_str());
  }

  Table t({"popularity", "prefill tokens (cold)", "prefill tokens (hit)",
           "saved", "tok/s off", "tok/s on", "speedup"});
  bool first = true;
  for (Popularity pop : kAllPopularities) {
    TraceSpec spec;
    spec.num_requests = 1000;
    spec.popularity = pop;
    spec.seed = 0xC0FFEE;
    spec.shared_prefix = {.enabled = true, .min_tokens = 128,
                          .max_tokens = 512};
    auto trace = GenerateClosedLoopTrace(spec);

    TextGenConfig cfg;
    cfg.prefill_limit = prefill_limit;
    cfg.prefix_cache = false;
    TextGenResult off =
        SimulateTextGen(ServingSystem::kPunica, trace, model, cm, cfg);
    cfg.prefix_cache = true;
    TextGenResult on =
        SimulateTextGen(ServingSystem::kPunica, trace, model, cm, cfg);

    double saved_frac =
        static_cast<double>(on.prefill_tokens_saved) /
        static_cast<double>(on.prefill_tokens + on.prefill_tokens_saved);
    const char* pop_name =
        pop == Popularity::kDistinct ? "Distinct"
        : pop == Popularity::kUniform ? "Uniform"
        : pop == Popularity::kSkewed ? "Skewed" : "Identical";
    t.AddRow({pop_name, std::to_string(off.prefill_tokens),
              std::to_string(on.prefill_tokens),
              FormatDouble(100.0 * saved_frac, 1) + "%",
              FormatDouble(off.throughput_tok_s, 0),
              FormatDouble(on.throughput_tok_s, 0),
              FormatDouble(on.throughput_tok_s / off.throughput_tok_s, 2) +
                  "x"});
    if (json != nullptr) {
      std::fprintf(
          json,
          "%s    {\"popularity\": \"%s\", \"prefill_tokens_cold\": %lld, "
          "\"prefill_tokens_hit\": %lld, \"prefill_tokens_saved\": %lld, "
          "\"saved_fraction\": %.4f, \"tok_s_off\": %.1f, \"tok_s_on\": "
          "%.1f}",
          first ? "" : ",\n", pop_name,
          static_cast<long long>(off.prefill_tokens),
          static_cast<long long>(on.prefill_tokens),
          static_cast<long long>(on.prefill_tokens_saved), saved_frac,
          off.throughput_tok_s, on.throughput_tok_s);
      first = false;
    }
  }
  t.Print();
  std::printf(
      "\nReading the table:\n"
      " * Every tenant's requests repeat its 128-512-token system prompt;\n"
      "   the prefix index turns those prefills into page-table aliasing.\n"
      " * Savings scale with requests-per-tenant: Identical (one tenant)\n"
      "   caches one prefix that serves everyone; Distinct (a tenant per\n"
      "   request) has no reuse and must match the cold run exactly.\n"
      " * Decode throughput is untouched — the index only shrinks prefill\n"
      "   work, so tok/s can only improve.\n");
  if (json != nullptr) {
    std::fprintf(json, "\n  ]\n}\n");
    // A full disk or dead pipe must fail the run: CI archives this file as
    // the perf-trajectory artifact, and a silent short write would gate
    // future PRs against a stale or truncated baseline.
    if (std::ferror(json) != 0 || std::fclose(json) != 0) {
      std::fprintf(stderr, "error writing %s\n", json_path);
      std::exit(1);
    }
    std::printf("\nwrote %s\n", json_path);
  }
}

/// Chunked prefill (Figure 11c): Punica over a long-prompt arrival mix,
/// sweeping the per-step token budget. Decode p95 inter-token latency is
/// the SLO the budget buys; tok/s is what it costs (per-invocation
/// overhead). Budget 0 is the atomic-prefill baseline.
void RunChunkedPrefill() {
  bench::PrintHeader("Figure 11c",
                     "Chunked prefill: decode tail latency vs step token "
                     "budget (Punica, long-prompt mix)");
  CostModel cm((A100Sxm80GB()));
  LlamaConfig model = Llama7B();

  TraceSpec spec;
  spec.num_requests = 500;
  spec.popularity = Popularity::kUniform;
  spec.seed = 0xC0FFEE;
  // Long-prompt mix: median prompt ≈ 500 tokens, heavy 2048-clipped tail —
  // the workload where one atomic prefill stalls every decode stream.
  spec.lengths.prompt_mu = 6.2;
  spec.lengths.prompt_sigma = 0.7;
  spec.lengths.output_mu = 3.4;
  spec.lengths.output_sigma = 0.6;
  auto trace = GenerateClosedLoopTrace(spec);

  struct Point {
    int prefill_limit;
    std::int64_t budget;
  };
  Table t({"prefill limit", "budget", "tok/s", "p95 ITL", "max ITL",
           "p95 TTFT", "invocations", "mean decode batch"});
  for (Point pt : {Point{1, 0}, Point{4, 0}, Point{4, 1024}, Point{4, 768},
                   Point{4, 512}, Point{1, 256}}) {
    TextGenConfig cfg;
    cfg.prefill_limit = pt.prefill_limit;
    cfg.max_step_tokens = pt.budget;
    TextGenResult r =
        SimulateTextGen(ServingSystem::kPunica, trace, model, cm, cfg);
    t.AddRow({std::to_string(pt.prefill_limit),
              pt.budget == 0 ? "off" : std::to_string(pt.budget),
              FormatDouble(r.throughput_tok_s, 0),
              FormatDouble(r.p95_inter_token_s * 1e3, 1) + " ms",
              FormatDouble(r.max_inter_token_s * 1e3, 1) + " ms",
              FormatDouble(r.ttft_p95_s, 1) + " s",
              std::to_string(r.invocations),
              FormatDouble(r.mean_decode_batch, 1)});
  }
  t.Print();
  std::printf(
      "\nReading the table:\n"
      " * The budget caps token rows per invocation (decodes included), so\n"
      "   a long prompt prefills as several chunks that share each step\n"
      "   with every in-flight decode - the decode stall shrinks from\n"
      "   whole-prompt to one chunk.\n"
      " * With the budget on, prefill_limit can rise (the budget, not the\n"
      "   request count, bounds the step): limit 4 at 768-1024 beats its\n"
      "   own atomic baseline and holds aggregate tok/s within ~0.3%% of\n"
      "   the best atomic config while cutting p95 inter-token latency\n"
      "   ~2x; smaller budgets keep buying tail at a growing\n"
      "   per-invocation overhead cost (the SLO knob).\n"
      " * p95 TTFT here is closed-loop (every request queued at t=0), so it\n"
      "   mostly measures FCFS queue depth; the open-loop table below dates\n"
      "   it from real arrivals.\n");
}

/// Open-loop arrivals (Figure 11d): the same simulator fed a Poisson
/// arrival schedule instead of an all-at-t=0 batch. TTFT and queueing are
/// dated from each request's arrival, so the sweep shows what a closed loop
/// structurally hides: below capacity TTFT is flat at ~one prefill; past
/// the knee the admission queue (and with it TTFT p95) grows with every
/// extra offered request per second.
void RunOpenLoopSlo() {
  bench::PrintHeader("Figure 11d",
                     "Open-loop arrivals: TTFT / queueing vs offered load "
                     "(Punica, 400 reqs)");
  CostModel cm((A100Sxm80GB()));
  LlamaConfig model = Llama7B();

  TraceSpec spec;
  spec.num_requests = 400;
  spec.popularity = Popularity::kUniform;
  spec.seed = 0xC0FFEE;
  auto base = GenerateClosedLoopTrace(spec);

  Table t({"offered rps", "tok/s", "TTFT p50", "TTFT p95",
           "mean queue wait", "p95 ITL"});
  for (double rate : {2.0, 4.0, 8.0, 16.0}) {
    auto trace = base;
    AssignPoissonArrivals(trace, rate, /*seed=*/0xC0FFEE);
    TextGenConfig cfg;
    cfg.prefill_limit = 4;
    cfg.max_step_tokens = 768;
    TextGenResult r =
        SimulateTextGen(ServingSystem::kPunica, trace, model, cm, cfg);
    t.AddRow({FormatDouble(rate, 1),
              FormatDouble(r.throughput_tok_s, 0),
              FormatDouble(r.ttft_p50_s * 1e3, 1) + " ms",
              FormatDouble(r.ttft_p95_s * 1e3, 1) + " ms",
              FormatDouble(r.queue_wait_mean_s * 1e3, 1) + " ms",
              FormatDouble(r.p95_inter_token_s * 1e3, 1) + " ms"});
  }
  t.Print();
  std::printf(
      "\nReading the table:\n"
      " * The arrival schedule is the keyed Poisson process the serving\n"
      "   subsystem replays (sim/arrivals.h), so this figure and\n"
      "   bench_serving sweep the same offered loads.\n"
      " * tok/s below the knee tracks the offered rate (the server idles\n"
      "   between arrivals); past it tok/s saturates and queueing absorbs\n"
      "   the difference.\n");
}

}  // namespace
}  // namespace punica

int main(int argc, char** argv) {
  int prefill_limit = 1;
  int tp = 1;
  const char* json_path = nullptr;
  bool shared_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--prefill-limit") == 0 && i + 1 < argc) {
      prefill_limit = std::atoi(argv[i + 1]);
    }
    // --tp N runs the figure tables tensor-parallel: every simulated step
    // pays the sharded per-GPU kernel terms plus the two all-reduce seams
    // (the multi-tenant rows keep their LoRA segments — adapters shard
    // with the backbone, adding no extra communication).
    if (std::strcmp(argv[i], "--tp") == 0 && i + 1 < argc) {
      tp = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--prefix-json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--shared-prefix-only") == 0) {
      shared_only = true;
    }
  }
  if (prefill_limit < 1) prefill_limit = 1;
  if (tp < 1) tp = 1;
  if (!shared_only) punica::Run(prefill_limit, tp);
  punica::RunSharedPrefix(prefill_limit, json_path);
  punica::RunChunkedPrefill();
  punica::RunOpenLoopSlo();
  return 0;
}
