// Figure 8: LoRA operator implementations — Loop vs Gather-BMM vs SGMV
// (plus the Gather and BMM reference curves), batch size 1–64, h=4096, r=16,
// under the four popularity distributions.
//
// Two sections per distribution:
//  * Projected A100 latency from the calibrated cost model (the paper's
//    numbers: SGMV 37→116 µs Distinct, ~flat elsewhere; Loop off the chart
//    on Distinct; Gather-BMM in between).
//  * Measured CPU wall-clock of the *real* numeric kernels in this repo —
//    absolute values differ (CPU, not A100) but the ordering and the
//    workload sensitivity reproduce, since they are driven by the same IO
//    asymmetries. Includes an ungrouped-SGMV ablation row (DESIGN.md §5.1).
#include "bench_common.h"
#include "baselines/lora_ops.h"
#include "core/lora.h"

namespace punica {
namespace {

struct CpuProblem {
  std::vector<LoraAB> adapters;
  std::vector<const LoraAB*> ptrs;
  std::vector<std::int32_t> seg;
  std::vector<float> x;
  std::vector<float> y;
  std::vector<float> workspace;
  int h;
  int rank;
};

CpuProblem MakeCpuProblem(std::span<const std::int32_t> rows, int h,
                          int rank) {
  CpuProblem p;
  p.h = h;
  p.rank = rank;
  p.seg.push_back(0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    p.seg.push_back(p.seg.back() + rows[i]);
    p.adapters.push_back(LoraAB::Random(h, h, rank, 7 + i));
  }
  for (const auto& a : p.adapters) p.ptrs.push_back(&a);
  Pcg32 rng(11);
  int total = p.seg.back();
  p.x = RandomGaussianVector(
      static_cast<std::size_t>(total) * static_cast<std::size_t>(h), 1.0f,
      rng);
  p.y.assign(p.x.size(), 0.0f);
  p.workspace.assign(static_cast<std::size_t>(total) *
                         static_cast<std::size_t>(rank),
                     0.0f);
  return p;
}

void Run() {
  bench::PrintHeader("Figure 8", "LoRA operator implementations (h=4096, "
                                 "r=16)");
  CostModel cm((A100Sxm80GB()));
  const int h = 4096, rank = 16;

  for (Popularity pop : kAllPopularities) {
    std::printf("%s — projected A100 latency:\n", ToString(pop).c_str());
    Table t({"batch", "Loop", "Gather", "BMM", "Gather-BMM", "SGMV",
             "SGMV(ungrouped)"});
    for (int b : {1, 8, 16, 32, 48, 64}) {
      auto rows = bench::SegmentRowsFor(pop, b);
      std::vector<std::int32_t> ungrouped(static_cast<std::size_t>(b), 1);
      t.AddRow({std::to_string(b),
                FormatSeconds(LoopLoraLatency(cm, rows, h, h, rank)),
                FormatSeconds(GatherOnlyLatency(cm, rows, h, h, rank)),
                FormatSeconds(BmmOnlyLatency(cm, rows, h, h, rank)),
                FormatSeconds(GatherBmmLoraLatency(cm, rows, h, h, rank)),
                FormatSeconds(cm.SgmvPairLatency(rows, h, h, rank)),
                FormatSeconds(cm.SgmvPairLatency(ungrouped, h, h, rank))});
    }
    t.Print();
    std::printf("\n");
  }

  // Projected tensor-parallel sweep of the in-forward addon: the adapter
  // shards follow the backbone's Megatron split, so SGMV kernel IO divides
  // by tp while the seven pipelined launches per layer do not (see
  // bench_lora_tp for the measured counterpart).
  std::printf("SGMV addon under tensor parallelism — projected per-layer "
              "latency\n(Llama-7B seams, Uniform popularity, r=%d):\n",
              rank);
  {
    LlamaConfig model = Llama7B();
    Table t({"batch", "tp=1", "tp=2", "tp=4", "tp=8"});
    for (int b : {8, 32, 64}) {
      auto rows = bench::SegmentRowsFor(Popularity::kUniform, b);
      std::vector<std::string> row = {std::to_string(b)};
      for (int tp : {1, 2, 4, 8}) {
        row.push_back(
            FormatSeconds(cm.LoraLayerAddonLatency(model, rows, rank, tp)));
      }
      t.AddRow(row);
    }
    t.Print();
    std::printf("\n");
  }

  // Real CPU kernels at a reduced h to keep runtime sensible; same shapes.
  const int h_cpu = 512;
  std::printf("Measured CPU wall-clock of the numeric kernels (h=%d, r=%d).\n"
              "Gather-BMM's extra-IO penalty reproduces on CPU; Loop's GPU\n"
              "penalty (per-model kernel-launch overhead) has no CPU "
              "equivalent:\n",
              h_cpu, rank);
  Table t({"workload", "batch", "Loop", "Gather-BMM", "SGMV"});
  for (Popularity pop : kAllPopularities) {
    for (int b : {8, 64}) {
      auto rows = bench::SegmentRowsFor(pop, b);
      CpuProblem p = MakeCpuProblem(rows, h_cpu, rank);
      double t_loop = bench::TimeCpu([&] {
        LoopLoraApply(p.y, p.x, p.ptrs, p.seg, p.h, p.h);
      });
      double t_gbmm = bench::TimeCpu([&] {
        GatherBmmLoraApply(p.y, p.x, p.ptrs, p.seg, p.h, p.h);
      });
      double t_sgmv = bench::TimeCpu([&] {
        BatchedLoraAddon(p.y, p.x, p.ptrs, p.seg, p.h, p.h, p.workspace);
      });
      t.AddRow({ToString(pop), std::to_string(b), FormatSeconds(t_loop),
                FormatSeconds(t_gbmm), FormatSeconds(t_sgmv)});
    }
  }
  t.Print();
}

}  // namespace
}  // namespace punica

int main() {
  punica::Run();
  return 0;
}
