// google-benchmark microbenchmarks of the real CPU kernels: SGMV schedules,
// baseline LoRA operators, paged attention and the full tiny-model layer.
// These measure this repo's actual numerics (not the A100 projection);
// the relative orderings mirror Fig. 8 because the IO asymmetries are the
// same.
//
// The *Threads benchmarks sweep the compute substrate's pool width over
// 1/2/4/hardware for the hot-path kernels and a full Engine::Step decode
// batch; `items_per_second` at each width gives the scaling curve (the
// speedup is the ratio against the width-1 row). All widths produce
// bit-identical outputs — the sweep measures time, never numerics.
//
// The *Simd benchmarks A/B the two dispatch paths (arg 0 = scalar, 1 =
// native AVX2+FMA+F16C) at one thread on the same shapes, so a regression
// in either path is visible independently of pool scaling. The CI bench
// smoke runs both sweeps with --benchmark_out=BENCH_kernels.json to log
// the GFLOP/s / tokens/s trajectory.
#include <benchmark/benchmark.h>

#include <optional>
#include <vector>

#include "baselines/lora_ops.h"
#include "core/lora.h"
#include "core/sgmv.h"
#include "model/attention.h"
#include "model/llama.h"
#include "runtime/engine.h"
#include "tensor/gemm.h"
#include "tensor/simd.h"
#include "util/compute_context.h"
#include "util/rng.h"
#include "workload/popularity.h"

namespace punica {
namespace {

// Sweep arg: pool width (0 = ComputeContext's default resolution, i.e.
// PUNICA_THREADS when exported, else hardware_concurrency). Wall time, not
// CPU time: the caller sleeps while workers compute, so CPU time would
// fabricate the scaling curve.
void ThreadSweep(benchmark::internal::Benchmark* b) {
  b->ArgName("threads");
  b->Arg(1)->Arg(2)->Arg(4)->Arg(0)->UseRealTime();
}

// Sweep arg: dispatch path (0 = scalar, 1 = native). Runs single-threaded so
// the rows compare per-core kernel throughput, not pool scaling.
void SimdSweep(benchmark::internal::Benchmark* b) {
  b->ArgName("native");
  b->Arg(0)->Arg(1);
}

// Forces the dispatch path selected by a *Simd benchmark's arg for the
// guard's lifetime; returns false (after SkipWithError) when native was
// requested but isn't compiled/supported in this build.
bool ForceSimdArg(benchmark::State& state,
                  std::optional<ScopedSimdLevel>& guard) {
  const bool native = state.range(0) == 1;
  if (native && !NativeSimdAvailable()) {
    state.SkipWithError("native SIMD not compiled/supported");
    return false;
  }
  guard.emplace(native ? SimdLevel::kNative : SimdLevel::kScalar);
  return true;
}

struct OpProblem {
  std::vector<LoraAB> adapters;
  std::vector<const LoraAB*> ptrs;
  std::vector<std::int32_t> seg;
  std::vector<float> x;
  std::vector<float> y;
  std::vector<float> workspace;
  int h;
};

OpProblem MakeOpProblem(int num_segments, int rows_per_segment, int h,
                        int rank) {
  OpProblem p;
  p.h = h;
  p.seg.push_back(0);
  for (int i = 0; i < num_segments; ++i) {
    p.seg.push_back(p.seg.back() + rows_per_segment);
    p.adapters.push_back(
        LoraAB::Random(h, h, rank, 100 + static_cast<std::uint64_t>(i)));
  }
  for (const auto& a : p.adapters) p.ptrs.push_back(&a);
  Pcg32 rng(5);
  int total = p.seg.back();
  p.x = RandomGaussianVector(
      static_cast<std::size_t>(total) * static_cast<std::size_t>(h), 1.0f,
      rng);
  p.y.assign(p.x.size(), 0.0f);
  p.workspace.assign(static_cast<std::size_t>(total) *
                         static_cast<std::size_t>(rank),
                     0.0f);
  return p;
}

// Args: {num_segments, rows_per_segment}. h=512, r=16 keeps CPU time sane.
void BM_SgmvLoraAddon(benchmark::State& state) {
  OpProblem p = MakeOpProblem(static_cast<int>(state.range(0)),
                              static_cast<int>(state.range(1)), 512, 16);
  for (auto _ : state) {
    BatchedLoraAddon(p.y, p.x, p.ptrs, p.seg, p.h, p.h, p.workspace);
    benchmark::DoNotOptimize(p.y.data());
  }
  state.SetItemsProcessed(state.iterations() * p.seg.back());
}
BENCHMARK(BM_SgmvLoraAddon)
    ->Args({1, 1})
    ->Args({1, 64})
    ->Args({8, 8})
    ->Args({64, 1});

void BM_LoopLora(benchmark::State& state) {
  OpProblem p = MakeOpProblem(static_cast<int>(state.range(0)),
                              static_cast<int>(state.range(1)), 512, 16);
  for (auto _ : state) {
    LoopLoraApply(p.y, p.x, p.ptrs, p.seg, p.h, p.h);
    benchmark::DoNotOptimize(p.y.data());
  }
  state.SetItemsProcessed(state.iterations() * p.seg.back());
}
BENCHMARK(BM_LoopLora)->Args({1, 64})->Args({8, 8})->Args({64, 1});

void BM_GatherBmmLora(benchmark::State& state) {
  OpProblem p = MakeOpProblem(static_cast<int>(state.range(0)),
                              static_cast<int>(state.range(1)), 512, 16);
  for (auto _ : state) {
    GatherBmmLoraApply(p.y, p.x, p.ptrs, p.seg, p.h, p.h);
    benchmark::DoNotOptimize(p.y.data());
  }
  state.SetItemsProcessed(state.iterations() * p.seg.back());
}
BENCHMARK(BM_GatherBmmLora)->Args({1, 64})->Args({8, 8})->Args({64, 1});

void BM_SgmvShrinkVsExpand(benchmark::State& state) {
  const bool expand = state.range(0) == 1;
  const int rows = 32, h = 1024, rank = 16;
  Pcg32 rng(6);
  Tensor<f16> w = expand ? Tensor<f16>({rank, h}) : Tensor<f16>({h, rank});
  for (auto& v : w.data()) {
    v = f16(static_cast<float>(rng.NextGaussian()) * 0.05f);
  }
  int h_in = expand ? rank : h;
  int h_out = expand ? h : rank;
  auto x = RandomGaussianVector(
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(h_in), 1.0f,
      rng);
  std::vector<float> y(static_cast<std::size_t>(rows) *
                           static_cast<std::size_t>(h_out),
                       0.0f);
  const f16* ptr = w.raw();
  std::vector<std::int32_t> seg = {0, rows};
  SgmvArgs args{y, x, std::span<const f16* const>(&ptr, 1), seg, h_in,
                h_out};
  for (auto _ : state) {
    if (expand) {
      SgmvExpand(args);
    } else {
      SgmvShrink(args);
    }
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SgmvShrinkVsExpand)->Arg(0)->Arg(1);

// Shared body for the decode-attention benches: the arg-shape rows and the
// scalar-vs-native sweep must measure the identical problem.
void RunBatchDecodeAttentionBench(benchmark::State& state,
                                  const ComputeContext& ctx, int batch,
                                  std::int64_t len) {
  LlamaConfig c = TinyLlama();
  KvCacheConfig kvc{.num_layers = c.num_layers,
                    .num_kv_heads = c.num_kv_heads,
                    .head_dim = c.head_dim(),
                    .page_size = 16,
                    .num_pages = 4096};
  PagedKvCache kv(kvc);
  Pcg32 rng(7);
  std::vector<SeqId> seqs;
  for (int i = 0; i < batch; ++i) {
    SeqId s = kv.CreateSequence();
    kv.Extend(s, len);
    for (std::int64_t pos = 0; pos < len; ++pos) {
      for (auto slot : {KvSlot::kKey, KvSlot::kValue}) {
        auto e = kv.Entry(s, 0, pos, slot);
        for (auto& v : e) {
          v = f16(static_cast<float>(rng.NextGaussian()) * 0.3f);
        }
      }
    }
    seqs.push_back(s);
  }
  std::size_t width = static_cast<std::size_t>(c.num_heads) *
                      static_cast<std::size_t>(c.head_dim());
  auto q = RandomGaussianVector(static_cast<std::size_t>(batch) * width, 1.0f,
                                rng);
  std::vector<float> out(q.size());
  for (auto _ : state) {
    BatchDecodeAttention(c, kv, seqs, 0, q, out, ctx);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}

void BM_BatchDecodeAttention(benchmark::State& state) {
  RunBatchDecodeAttentionBench(state, ComputeContext::Default(),
                               static_cast<int>(state.range(0)),
                               state.range(1));
}
BENCHMARK(BM_BatchDecodeAttention)
    ->Args({1, 128})
    ->Args({8, 128})
    ->Args({8, 1024});

// --- Thread-count sweep over the numeric hot path ---

// Shared bodies below: parameterized by context (and shape) so the
// *Threads and *Simd sweeps measure the identical problem — drift between
// them would make the two sweeps' rows incomparable.

void RunGemmAccF16WBench(benchmark::State& state, const ComputeContext& ctx,
                         int m, int k, int n) {
  Pcg32 rng(11);
  Tensor<f16> w({k, n});
  for (auto& v : w.data()) {
    v = f16(static_cast<float>(rng.NextGaussian()) * 0.05f);
  }
  auto x = RandomGaussianVector(static_cast<std::size_t>(m) * k, 1.0f, rng);
  std::vector<float> y(static_cast<std::size_t>(m) * n, 0.0f);
  for (auto _ : state) {
    GemmAccF16W(x, w.data(), y, m, k, n, ctx);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * m);
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * m * k * n,
      benchmark::Counter::kIsRate);
}

void BM_GemmAccF16WThreads(benchmark::State& state) {
  ComputeContext ctx({.num_threads = static_cast<int>(state.range(0))});
  RunGemmAccF16WBench(state, ctx, 32, 1024, 1024);
}
BENCHMARK(BM_GemmAccF16WThreads)->Apply(ThreadSweep);

void RunSgmvShrinkBench(benchmark::State& state, const ComputeContext& ctx) {
  OpProblem p = MakeOpProblem(/*num_segments=*/8, /*rows_per_segment=*/8,
                              /*h=*/1024, /*rank=*/16);
  std::vector<const f16*> a_ptrs;
  for (const auto* ad : p.ptrs) a_ptrs.push_back(ad->a.raw());
  std::vector<float> v(static_cast<std::size_t>(p.seg.back()) * 16, 0.0f);
  // Preallocated split-K scratch, like the serving hot path.
  std::vector<float> scratch(static_cast<std::size_t>(p.seg.back()) *
                             static_cast<std::size_t>(kMaxSplitKPartitions) *
                             16);
  SgmvArgs args{v, p.x, a_ptrs, p.seg, p.h, 16};
  for (auto _ : state) {
    SgmvShrink(args, ctx, scratch);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * p.seg.back());
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          SgmvCostOf(p.seg, p.h, 16).flop,
      benchmark::Counter::kIsRate);
}

void BM_SgmvShrinkThreads(benchmark::State& state) {
  ComputeContext ctx({.num_threads = static_cast<int>(state.range(0))});
  RunSgmvShrinkBench(state, ctx);
}
BENCHMARK(BM_SgmvShrinkThreads)->Apply(ThreadSweep);

void RunSgmvExpandBench(benchmark::State& state, const ComputeContext& ctx) {
  const int rows = 64, h = 1024, rank = 16;
  Pcg32 rng(12);
  Tensor<f16> w({rank, h});
  for (auto& v : w.data()) {
    v = f16(static_cast<float>(rng.NextGaussian()) * 0.05f);
  }
  auto x = RandomGaussianVector(static_cast<std::size_t>(rows) * rank, 1.0f,
                                rng);
  std::vector<float> y(static_cast<std::size_t>(rows) * h, 0.0f);
  const f16* ptr = w.raw();
  std::vector<std::int32_t> seg = {0, rows};
  SgmvArgs args{y, x, std::span<const f16* const>(&ptr, 1), seg, rank, h};
  for (auto _ : state) {
    SgmvExpand(args, ctx);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          SgmvCostOf(seg, rank, h).flop,
      benchmark::Counter::kIsRate);
}

void BM_SgmvExpandThreads(benchmark::State& state) {
  ComputeContext ctx({.num_threads = static_cast<int>(state.range(0))});
  RunSgmvExpandBench(state, ctx);
}
BENCHMARK(BM_SgmvExpandThreads)->Apply(ThreadSweep);

// A full Engine::Step over a continuous decode batch: the end-to-end
// hot path (projections + LoRA SGMV + paged attention + LM head).
// items_per_second is decode tokens/s.
void RunEngineDecodeStepBench(benchmark::State& state,
                              const ComputeContext& ctx) {
  const int batch = 16;
  LlamaModel model(TinyLlama(), 9, &ctx);
  model.AddLora(0, 8, 1);
  model.AddLora(1, 8, 2);
  Engine engine(&model, model.MakeKvConfig(2048),
                {.max_batch_size = batch, .prefill_limit = batch});
  auto refill = [&] {
    for (int i = 0; i < batch; ++i) {
      std::vector<std::int32_t> prompt;
      for (int t = 0; t < 16; ++t) {
        prompt.push_back(static_cast<std::int32_t>((i * 17 + t) % 100));
      }
      engine.AddRequest({.lora = i % 2,
                         .prompt_tokens = std::move(prompt),
                         .max_new_tokens = 64});
    }
    engine.Step();  // prefill everything; timed iterations are pure decode
  };
  refill();
  std::int64_t tokens = 0;
  for (auto _ : state) {
    if (!engine.HasWork()) {
      state.PauseTiming();
      refill();
      state.ResumeTiming();
    }
    StepResult r = engine.Step();
    tokens += r.new_tokens;
  }
  state.SetItemsProcessed(tokens);
}

void BM_EngineDecodeStepThreads(benchmark::State& state) {
  ComputeContext ctx({.num_threads = static_cast<int>(state.range(0))});
  RunEngineDecodeStepBench(state, ctx);
}
BENCHMARK(BM_EngineDecodeStepThreads)->Apply(ThreadSweep);

// --- Scalar-vs-native dispatch sweep (same shapes as the *Threads sweep,
// one thread; the bodies are shared so the sweeps cannot drift apart) ---

void BM_GemmAccF16WSimd(benchmark::State& state) {
  std::optional<ScopedSimdLevel> level;
  if (!ForceSimdArg(state, level)) return;
  ComputeContext ctx({.num_threads = 1});
  RunGemmAccF16WBench(state, ctx, 32, 1024, 1024);
}
BENCHMARK(BM_GemmAccF16WSimd)->Apply(SimdSweep);

// The decode-projection shape the ≥4×-per-core acceptance bar is quoted on
// (small m, LLM-scale k×n: the panel decode is amortised only 8×, so this
// is the *least* vector-friendly GEMM shape the serving path runs).
void BM_GemmAccF16WSimdDecodeShape(benchmark::State& state) {
  std::optional<ScopedSimdLevel> level;
  if (!ForceSimdArg(state, level)) return;
  ComputeContext ctx({.num_threads = 1});
  RunGemmAccF16WBench(state, ctx, 8, 4096, 4096);
}
BENCHMARK(BM_GemmAccF16WSimdDecodeShape)->Apply(SimdSweep);

void BM_SgmvShrinkSimd(benchmark::State& state) {
  std::optional<ScopedSimdLevel> level;
  if (!ForceSimdArg(state, level)) return;
  ComputeContext ctx({.num_threads = 1});
  RunSgmvShrinkBench(state, ctx);
}
BENCHMARK(BM_SgmvShrinkSimd)->Apply(SimdSweep);

void BM_SgmvExpandSimd(benchmark::State& state) {
  std::optional<ScopedSimdLevel> level;
  if (!ForceSimdArg(state, level)) return;
  ComputeContext ctx({.num_threads = 1});
  RunSgmvExpandBench(state, ctx);
}
BENCHMARK(BM_SgmvExpandSimd)->Apply(SimdSweep);

void BM_BatchDecodeAttentionSimd(benchmark::State& state) {
  std::optional<ScopedSimdLevel> level;
  if (!ForceSimdArg(state, level)) return;
  ComputeContext ctx({.num_threads = 1});
  RunBatchDecodeAttentionBench(state, ctx, /*batch=*/8, /*len=*/1024);
}
BENCHMARK(BM_BatchDecodeAttentionSimd)->Apply(SimdSweep);

// End-to-end single-core decode tokens/s per dispatch path.
void BM_EngineDecodeStepSimd(benchmark::State& state) {
  std::optional<ScopedSimdLevel> level;
  if (!ForceSimdArg(state, level)) return;
  ComputeContext ctx({.num_threads = 1});
  RunEngineDecodeStepBench(state, ctx);
}
BENCHMARK(BM_EngineDecodeStepSimd)->Apply(SimdSweep);

void BM_TinyLlamaDecodeStep(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  LlamaConfig c = TinyLlama();
  LlamaModel model(c, 9);
  model.AddLora(0, 8, 1);
  model.AddLora(1, 8, 2);
  PagedKvCache kv(model.MakeKvConfig(4096));
  std::vector<BatchEntry> entries;
  std::vector<std::int32_t> tokens;
  for (int i = 0; i < batch; ++i) {
    SeqId s = kv.CreateSequence();
    kv.Extend(s, 33);  // 32 context tokens + the decode slot
    // Group rows by LoRA (even ids first) so segments are maximal.
    entries.push_back({.seq = s,
                       .lora = i < (batch + 1) / 2 ? 0 : 1,
                       .num_tokens = 1,
                       .pos_offset = 32,
                       .is_prefill = false});
    tokens.push_back(static_cast<std::int32_t>(i % 100));
  }
  ModelBatch mb = ModelBatch::Build(std::move(entries));
  // The decode slot is rewritten in place every iteration — steady-state
  // cost of one decode step at context length 32.
  for (auto _ : state) {
    auto next = model.ForwardGreedy(mb, tokens, kv);
    benchmark::DoNotOptimize(next.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_TinyLlamaDecodeStep)->Arg(1)->Arg(8)->Arg(32);

}  // namespace
}  // namespace punica

BENCHMARK_MAIN();
