// google-benchmark microbenchmarks of the real CPU kernels: SGMV schedules,
// baseline LoRA operators, paged attention and the full tiny-model layer.
// These measure this repo's actual numerics (not the A100 projection);
// the relative orderings mirror Fig. 8 because the IO asymmetries are the
// same.
//
// The *Threads benchmarks sweep the compute substrate's pool width over
// 1/2/4/hardware for the hot-path kernels and a full Engine::Step decode
// batch; `items_per_second` at each width gives the scaling curve (the
// speedup is the ratio against the width-1 row). All widths produce
// bit-identical outputs — the sweep measures time, never numerics.
//
// The *Simd benchmarks A/B scalar against the best vector dispatch path
// (arg 0 = scalar, 1 = best of avx2/avx512) at one thread on the same
// shapes, so a regression in either path is visible independently of pool
// scaling. The CI bench smoke runs both sweeps with
// --benchmark_out=BENCH_kernels.json to log the GFLOP/s / tokens/s
// trajectory.
//
// The *Quant benchmarks sweep weight dtype (0=f16, 1=q8_0, 2=q4_0) ×
// explicit dispatch level (simd 0=scalar, 1=avx2, 2=avx512) on the decode
// acceptance shape, at one thread. They are written to a SEPARATE baseline
// file (BENCH_kernels_quant.json, --benchmark_filter='Quant'); their names
// deliberately avoid the "Threads"/"Simd" substrings so the existing
// BENCH_kernels.json filter never picks them up.
#include <benchmark/benchmark.h>

#include <optional>
#include <vector>

#include "baselines/lora_ops.h"
#include "core/lora.h"
#include "core/sgmv.h"
#include "model/attention.h"
#include "model/llama.h"
#include "runtime/engine.h"
#include "tensor/gemm.h"
#include "tensor/simd.h"
#include "util/compute_context.h"
#include "util/rng.h"
#include "workload/popularity.h"

namespace punica {
namespace {

// Sweep arg: pool width (0 = ComputeContext's default resolution, i.e.
// PUNICA_THREADS when exported, else hardware_concurrency). Wall time, not
// CPU time: the caller sleeps while workers compute, so CPU time would
// fabricate the scaling curve.
void ThreadSweep(benchmark::internal::Benchmark* b) {
  b->ArgName("threads");
  b->Arg(1)->Arg(2)->Arg(4)->Arg(0)->UseRealTime();
}

// Sweep arg: dispatch path (0 = scalar, 1 = best vector level). Runs
// single-threaded so the rows compare per-core kernel throughput, not pool
// scaling.
void SimdSweep(benchmark::internal::Benchmark* b) {
  b->ArgName("native");
  b->Arg(0)->Arg(1);
}

// Forces the dispatch path selected by a *Simd benchmark's arg for the
// guard's lifetime; returns false (after SkipWithError) when a vector path
// was requested but none is compiled/supported in this build.
bool ForceSimdArg(benchmark::State& state,
                  std::optional<ScopedSimdLevel>& guard) {
  const bool native = state.range(0) == 1;
  if (native && BestSimdLevel() == SimdLevel::kScalar) {
    state.SkipWithError("no vector SIMD compiled/supported");
    return false;
  }
  guard.emplace(native ? BestSimdLevel() : SimdLevel::kScalar);
  return true;
}

// --- Quant sweep plumbing ---

// Args: {dtype (WeightDtype: 0=f16, 1=q8_0, 2=q4_0),
//        simd  (SimdLevel: 0=scalar, 1=avx2, 2=avx512)}.
// Unavailable levels SkipWithError (the extractor drops errored rows), so
// one baseline schema serves hosts with and without avx512.
void QuantSweep(benchmark::internal::Benchmark* b) {
  b->ArgNames({"dtype", "simd"});
  for (int d = 0; d < 3; ++d) {
    for (int s = 0; s < kNumSimdLevels; ++s) b->Args({d, s});
  }
}

// Forces the explicit dispatch level in a *Quant benchmark's arg 1.
bool ForceSimdLevelArg(benchmark::State& state,
                       std::optional<ScopedSimdLevel>& guard) {
  auto level = static_cast<SimdLevel>(state.range(1));
  if (!SimdLevelAvailable(level)) {
    state.SkipWithError("SIMD level not compiled/supported on this host");
    return false;
  }
  guard.emplace(level);
  return true;
}

struct OpProblem {
  std::vector<LoraAB> adapters;
  std::vector<const LoraAB*> ptrs;
  std::vector<std::int32_t> seg;
  std::vector<float> x;
  std::vector<float> y;
  std::vector<float> workspace;
  int h;
};

OpProblem MakeOpProblem(int num_segments, int rows_per_segment, int h,
                        int rank) {
  OpProblem p;
  p.h = h;
  p.seg.push_back(0);
  for (int i = 0; i < num_segments; ++i) {
    p.seg.push_back(p.seg.back() + rows_per_segment);
    p.adapters.push_back(
        LoraAB::Random(h, h, rank, 100 + static_cast<std::uint64_t>(i)));
  }
  for (const auto& a : p.adapters) p.ptrs.push_back(&a);
  Pcg32 rng(5);
  int total = p.seg.back();
  p.x = RandomGaussianVector(
      static_cast<std::size_t>(total) * static_cast<std::size_t>(h), 1.0f,
      rng);
  p.y.assign(p.x.size(), 0.0f);
  p.workspace.assign(static_cast<std::size_t>(total) *
                         static_cast<std::size_t>(rank),
                     0.0f);
  return p;
}

// Args: {num_segments, rows_per_segment}. h=512, r=16 keeps CPU time sane.
void BM_SgmvLoraAddon(benchmark::State& state) {
  OpProblem p = MakeOpProblem(static_cast<int>(state.range(0)),
                              static_cast<int>(state.range(1)), 512, 16);
  for (auto _ : state) {
    BatchedLoraAddon(p.y, p.x, p.ptrs, p.seg, p.h, p.h, p.workspace);
    benchmark::DoNotOptimize(p.y.data());
  }
  state.SetItemsProcessed(state.iterations() * p.seg.back());
}
BENCHMARK(BM_SgmvLoraAddon)
    ->Args({1, 1})
    ->Args({1, 64})
    ->Args({8, 8})
    ->Args({64, 1});

void BM_LoopLora(benchmark::State& state) {
  OpProblem p = MakeOpProblem(static_cast<int>(state.range(0)),
                              static_cast<int>(state.range(1)), 512, 16);
  for (auto _ : state) {
    LoopLoraApply(p.y, p.x, p.ptrs, p.seg, p.h, p.h);
    benchmark::DoNotOptimize(p.y.data());
  }
  state.SetItemsProcessed(state.iterations() * p.seg.back());
}
BENCHMARK(BM_LoopLora)->Args({1, 64})->Args({8, 8})->Args({64, 1});

void BM_GatherBmmLora(benchmark::State& state) {
  OpProblem p = MakeOpProblem(static_cast<int>(state.range(0)),
                              static_cast<int>(state.range(1)), 512, 16);
  for (auto _ : state) {
    GatherBmmLoraApply(p.y, p.x, p.ptrs, p.seg, p.h, p.h);
    benchmark::DoNotOptimize(p.y.data());
  }
  state.SetItemsProcessed(state.iterations() * p.seg.back());
}
BENCHMARK(BM_GatherBmmLora)->Args({1, 64})->Args({8, 8})->Args({64, 1});

void BM_SgmvShrinkVsExpand(benchmark::State& state) {
  const bool expand = state.range(0) == 1;
  const int rows = 32, h = 1024, rank = 16;
  Pcg32 rng(6);
  Tensor<f16> w = expand ? Tensor<f16>({rank, h}) : Tensor<f16>({h, rank});
  for (auto& v : w.data()) {
    v = f16(static_cast<float>(rng.NextGaussian()) * 0.05f);
  }
  int h_in = expand ? rank : h;
  int h_out = expand ? h : rank;
  auto x = RandomGaussianVector(
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(h_in), 1.0f,
      rng);
  std::vector<float> y(static_cast<std::size_t>(rows) *
                           static_cast<std::size_t>(h_out),
                       0.0f);
  const f16* ptr = w.raw();
  std::vector<std::int32_t> seg = {0, rows};
  SgmvArgs args{y, x, std::span<const f16* const>(&ptr, 1), seg, h_in,
                h_out};
  for (auto _ : state) {
    if (expand) {
      SgmvExpand(args);
    } else {
      SgmvShrink(args);
    }
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_SgmvShrinkVsExpand)->Arg(0)->Arg(1);

// Shared body for the decode-attention benches: the arg-shape rows and the
// scalar-vs-native sweep must measure the identical problem.
void RunBatchDecodeAttentionBench(benchmark::State& state,
                                  const ComputeContext& ctx, int batch,
                                  std::int64_t len) {
  LlamaConfig c = TinyLlama();
  KvCacheConfig kvc{.num_layers = c.num_layers,
                    .num_kv_heads = c.num_kv_heads,
                    .head_dim = c.head_dim(),
                    .page_size = 16,
                    .num_pages = 4096};
  PagedKvCache kv(kvc);
  Pcg32 rng(7);
  std::vector<SeqId> seqs;
  for (int i = 0; i < batch; ++i) {
    SeqId s = kv.CreateSequence();
    kv.Extend(s, len);
    for (std::int64_t pos = 0; pos < len; ++pos) {
      for (auto slot : {KvSlot::kKey, KvSlot::kValue}) {
        auto e = kv.Entry(s, 0, pos, slot);
        for (auto& v : e) {
          v = f16(static_cast<float>(rng.NextGaussian()) * 0.3f);
        }
      }
    }
    seqs.push_back(s);
  }
  std::size_t width = static_cast<std::size_t>(c.num_heads) *
                      static_cast<std::size_t>(c.head_dim());
  auto q = RandomGaussianVector(static_cast<std::size_t>(batch) * width, 1.0f,
                                rng);
  std::vector<float> out(q.size());
  for (auto _ : state) {
    BatchDecodeAttention(c, kv, seqs, 0, q, out, ctx);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}

void BM_BatchDecodeAttention(benchmark::State& state) {
  RunBatchDecodeAttentionBench(state, ComputeContext::Default(),
                               static_cast<int>(state.range(0)),
                               state.range(1));
}
BENCHMARK(BM_BatchDecodeAttention)
    ->Args({1, 128})
    ->Args({8, 128})
    ->Args({8, 1024});

// --- Thread-count sweep over the numeric hot path ---

// Shared bodies below: parameterized by context (and shape) so the
// *Threads and *Simd sweeps measure the identical problem — drift between
// them would make the two sweeps' rows incomparable.

void RunGemmAccF16WBench(benchmark::State& state, const ComputeContext& ctx,
                         int m, int k, int n) {
  Pcg32 rng(11);
  Tensor<f16> w({k, n});
  for (auto& v : w.data()) {
    v = f16(static_cast<float>(rng.NextGaussian()) * 0.05f);
  }
  auto x = RandomGaussianVector(static_cast<std::size_t>(m) * k, 1.0f, rng);
  std::vector<float> y(static_cast<std::size_t>(m) * n, 0.0f);
  for (auto _ : state) {
    GemmAccF16W(x, w.data(), y, m, k, n, ctx);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * m);
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * m * k * n,
      benchmark::Counter::kIsRate);
}

void BM_GemmAccF16WThreads(benchmark::State& state) {
  ComputeContext ctx({.num_threads = static_cast<int>(state.range(0))});
  RunGemmAccF16WBench(state, ctx, 32, 1024, 1024);
}
BENCHMARK(BM_GemmAccF16WThreads)->Apply(ThreadSweep);

void RunSgmvShrinkBench(benchmark::State& state, const ComputeContext& ctx) {
  OpProblem p = MakeOpProblem(/*num_segments=*/8, /*rows_per_segment=*/8,
                              /*h=*/1024, /*rank=*/16);
  std::vector<const f16*> a_ptrs;
  for (const auto* ad : p.ptrs) a_ptrs.push_back(ad->a.raw());
  std::vector<float> v(static_cast<std::size_t>(p.seg.back()) * 16, 0.0f);
  // Preallocated split-K scratch, like the serving hot path.
  std::vector<float> scratch(static_cast<std::size_t>(p.seg.back()) *
                             static_cast<std::size_t>(kMaxSplitKPartitions) *
                             16);
  SgmvArgs args{v, p.x, a_ptrs, p.seg, p.h, 16};
  for (auto _ : state) {
    SgmvShrink(args, ctx, scratch);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations() * p.seg.back());
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          SgmvCostOf(p.seg, p.h, 16).flop,
      benchmark::Counter::kIsRate);
}

void BM_SgmvShrinkThreads(benchmark::State& state) {
  ComputeContext ctx({.num_threads = static_cast<int>(state.range(0))});
  RunSgmvShrinkBench(state, ctx);
}
BENCHMARK(BM_SgmvShrinkThreads)->Apply(ThreadSweep);

void RunSgmvExpandBench(benchmark::State& state, const ComputeContext& ctx) {
  const int rows = 64, h = 1024, rank = 16;
  Pcg32 rng(12);
  Tensor<f16> w({rank, h});
  for (auto& v : w.data()) {
    v = f16(static_cast<float>(rng.NextGaussian()) * 0.05f);
  }
  auto x = RandomGaussianVector(static_cast<std::size_t>(rows) * rank, 1.0f,
                                rng);
  std::vector<float> y(static_cast<std::size_t>(rows) * h, 0.0f);
  const f16* ptr = w.raw();
  std::vector<std::int32_t> seg = {0, rows};
  SgmvArgs args{y, x, std::span<const f16* const>(&ptr, 1), seg, rank, h};
  for (auto _ : state) {
    SgmvExpand(args, ctx);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * rows);
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          SgmvCostOf(seg, rank, h).flop,
      benchmark::Counter::kIsRate);
}

void BM_SgmvExpandThreads(benchmark::State& state) {
  ComputeContext ctx({.num_threads = static_cast<int>(state.range(0))});
  RunSgmvExpandBench(state, ctx);
}
BENCHMARK(BM_SgmvExpandThreads)->Apply(ThreadSweep);

// A full Engine::Step over a continuous decode batch: the end-to-end
// hot path (projections + LoRA SGMV + paged attention + LM head).
// items_per_second is decode tokens/s.
void RunEngineDecodeStepBench(benchmark::State& state,
                              const ComputeContext& ctx,
                              WeightDtype dtype = WeightDtype::kF16) {
  const int batch = 16;
  LlamaConfig config = TinyLlama();
  config.weight_dtype = dtype;
  LlamaModel model(config, 9, &ctx);
  model.AddLora(0, 8, 1);
  model.AddLora(1, 8, 2);
  Engine engine(&model, model.MakeKvConfig(2048),
                {.max_batch_size = batch, .prefill_limit = batch});
  auto refill = [&] {
    for (int i = 0; i < batch; ++i) {
      std::vector<std::int32_t> prompt;
      for (int t = 0; t < 16; ++t) {
        prompt.push_back(static_cast<std::int32_t>((i * 17 + t) % 100));
      }
      engine.AddRequest({.lora = i % 2,
                         .prompt_tokens = std::move(prompt),
                         .max_new_tokens = 64});
    }
    engine.Step();  // prefill everything; timed iterations are pure decode
  };
  refill();
  std::int64_t tokens = 0;
  for (auto _ : state) {
    if (!engine.HasWork()) {
      state.PauseTiming();
      refill();
      state.ResumeTiming();
    }
    StepResult r = engine.Step();
    tokens += r.new_tokens;
  }
  state.SetItemsProcessed(tokens);
}

void BM_EngineDecodeStepThreads(benchmark::State& state) {
  ComputeContext ctx({.num_threads = static_cast<int>(state.range(0))});
  RunEngineDecodeStepBench(state, ctx);
}
BENCHMARK(BM_EngineDecodeStepThreads)->Apply(ThreadSweep);

// --- Scalar-vs-native dispatch sweep (same shapes as the *Threads sweep,
// one thread; the bodies are shared so the sweeps cannot drift apart) ---

void BM_GemmAccF16WSimd(benchmark::State& state) {
  std::optional<ScopedSimdLevel> level;
  if (!ForceSimdArg(state, level)) return;
  ComputeContext ctx({.num_threads = 1});
  RunGemmAccF16WBench(state, ctx, 32, 1024, 1024);
}
BENCHMARK(BM_GemmAccF16WSimd)->Apply(SimdSweep);

// The decode-projection shape the ≥4×-per-core acceptance bar is quoted on
// (small m, LLM-scale k×n: the panel decode is amortised only 8×, so this
// is the *least* vector-friendly GEMM shape the serving path runs).
void BM_GemmAccF16WSimdDecodeShape(benchmark::State& state) {
  std::optional<ScopedSimdLevel> level;
  if (!ForceSimdArg(state, level)) return;
  ComputeContext ctx({.num_threads = 1});
  RunGemmAccF16WBench(state, ctx, 8, 4096, 4096);
}
BENCHMARK(BM_GemmAccF16WSimdDecodeShape)->Apply(SimdSweep);

void BM_SgmvShrinkSimd(benchmark::State& state) {
  std::optional<ScopedSimdLevel> level;
  if (!ForceSimdArg(state, level)) return;
  ComputeContext ctx({.num_threads = 1});
  RunSgmvShrinkBench(state, ctx);
}
BENCHMARK(BM_SgmvShrinkSimd)->Apply(SimdSweep);

void BM_SgmvExpandSimd(benchmark::State& state) {
  std::optional<ScopedSimdLevel> level;
  if (!ForceSimdArg(state, level)) return;
  ComputeContext ctx({.num_threads = 1});
  RunSgmvExpandBench(state, ctx);
}
BENCHMARK(BM_SgmvExpandSimd)->Apply(SimdSweep);

void BM_BatchDecodeAttentionSimd(benchmark::State& state) {
  std::optional<ScopedSimdLevel> level;
  if (!ForceSimdArg(state, level)) return;
  ComputeContext ctx({.num_threads = 1});
  RunBatchDecodeAttentionBench(state, ctx, /*batch=*/8, /*len=*/1024);
}
BENCHMARK(BM_BatchDecodeAttentionSimd)->Apply(SimdSweep);

// End-to-end single-core decode tokens/s per dispatch path.
void BM_EngineDecodeStepSimd(benchmark::State& state) {
  std::optional<ScopedSimdLevel> level;
  if (!ForceSimdArg(state, level)) return;
  ComputeContext ctx({.num_threads = 1});
  RunEngineDecodeStepBench(state, ctx);
}
BENCHMARK(BM_EngineDecodeStepSimd)->Apply(SimdSweep);

// --- Quantized-weight sweeps (separate BENCH_kernels_quant.json baseline;
// names avoid the "Threads"/"Simd" substrings on purpose) ---

/// Seeded weights at `dtype`, drawn from the same f16 master regardless of
/// dtype so every (dtype, simd) row streams the same parameters.
WeightMatrix MakeBenchWeights(int k, int n, WeightDtype dtype) {
  Pcg32 rng(11);
  Tensor<f16> w({k, n});
  for (auto& v : w.data()) {
    v = f16(static_cast<float>(rng.NextGaussian()) * 0.05f);
  }
  return WeightMatrix::FromF16(std::move(w), dtype);
}

// Replica rotation: a serving host streams every weight matrix from DRAM
// each decode step — a real model's parameters never fit cache, so the
// kernels run byte-starved. A single 4096×4096 bench matrix (9–32 MB by
// dtype) would instead sit resident in a large LLC and turn the sweep into
// a pure-ALU benchmark that hides exactly the bytes quantization saves.
// Rotating across enough identical replicas to overflow any LLC (~768 MB
// working set) restores the DRAM-streaming regime the q8_vs_f16 /
// q4_vs_f16 floors are defined in.
constexpr std::size_t kLlcOverflowBytes = 768ull << 20;

std::vector<WeightMatrix> MakeWeightReplicas(int k, int n, WeightDtype dtype) {
  WeightMatrix master = MakeBenchWeights(k, n, dtype);
  const std::size_t count =
      (kLlcOverflowBytes + master.byte_size() - 1) / master.byte_size();
  std::vector<WeightMatrix> replicas(count - 1, master);
  replicas.push_back(std::move(master));
  return replicas;
}

// `weight_passes` = how many times one iteration streams the whole
// (dtype-sized) matrix: m for the per-row GEMV loop, 1 for the panel GEMM
// (which decodes each stripe once and reuses it across the m rows).
void AddWeightTrafficCounters(benchmark::State& state, int m, int k, int n,
                              int weight_passes, const WeightMatrix& w) {
  state.SetItemsProcessed(state.iterations() * m);
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * m * k * n,
      benchmark::Counter::kIsRate);
  state.counters["weight_bytes"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * weight_passes *
          static_cast<double>(w.byte_size()),
      benchmark::Counter::kIsRate);
}

// The acceptance bench: decode GEMV at m=8/k=4096/n=4096 — m independent
// GemvAccW row calls, exactly what the LM head / decode projections run.
// The committed baseline locks the q8_vs_f16 / q4_vs_f16 speedups at the
// vector levels (see scripts/check_bench.py --min and the CI gate). The
// attainable ratio is host-physics-dependent: the bytes ratio (1.8× q8,
// 3.4× q4) is the ceiling only where per-core DRAM bandwidth is scarce
// (many cores sharing one memory system); on a host that gives one core
// the whole memory system, f16 streams at full DRAM rate and the fused
// dequant kernels hit their ALU ceiling first — see README "Performance".
void BM_QuantGemvDecodeShape(benchmark::State& state) {
  std::optional<ScopedSimdLevel> guard;
  if (!ForceSimdLevelArg(state, guard)) return;
  const auto dtype = static_cast<WeightDtype>(state.range(0));
  const int m = 8, k = 4096, n = 4096;
  ComputeContext ctx({.num_threads = 1});
  std::vector<WeightMatrix> ws = MakeWeightReplicas(k, n, dtype);
  Pcg32 rng(13);
  auto x = RandomGaussianVector(static_cast<std::size_t>(m) * k, 1.0f, rng);
  std::vector<float> y(static_cast<std::size_t>(m) * n, 0.0f);
  std::size_t r = 0;
  for (auto _ : state) {
    const WeightMatrix& w = ws[r];
    r = (r + 1) % ws.size();
    for (int i = 0; i < m; ++i) {
      GemvAccW(std::span<const float>(x).subspan(
                   static_cast<std::size_t>(i) * k, k),
               w,
               std::span<float>(y).subspan(static_cast<std::size_t>(i) * n,
                                           n),
               k, n, ctx);
    }
    benchmark::DoNotOptimize(y.data());
  }
  AddWeightTrafficCounters(state, m, k, n, m, ws[0]);
}
BENCHMARK(BM_QuantGemvDecodeShape)->Apply(QuantSweep);

// The same shape through the batched panel GEMM (m>1 amortises each
// decoded block-panel across rows).
void BM_QuantGemmDecodeShape(benchmark::State& state) {
  std::optional<ScopedSimdLevel> guard;
  if (!ForceSimdLevelArg(state, guard)) return;
  const auto dtype = static_cast<WeightDtype>(state.range(0));
  const int m = 8, k = 4096, n = 4096;
  ComputeContext ctx({.num_threads = 1});
  std::vector<WeightMatrix> ws = MakeWeightReplicas(k, n, dtype);
  Pcg32 rng(13);
  auto x = RandomGaussianVector(static_cast<std::size_t>(m) * k, 1.0f, rng);
  std::vector<float> y(static_cast<std::size_t>(m) * n, 0.0f);
  std::size_t r = 0;
  for (auto _ : state) {
    GemmAccW(x, ws[r], y, m, k, n, ctx);
    r = (r + 1) % ws.size();
    benchmark::DoNotOptimize(y.data());
  }
  AddWeightTrafficCounters(state, m, k, n, 1, ws[0]);
}
BENCHMARK(BM_QuantGemmDecodeShape)->Apply(QuantSweep);

// End-to-end single-core decode tokens/s per weight dtype, on the ambient
// dispatch path (whatever this host serves with).
void BM_QuantEngineDecodeStep(benchmark::State& state) {
  const auto dtype = static_cast<WeightDtype>(state.range(0));
  ComputeContext ctx({.num_threads = 1});
  RunEngineDecodeStepBench(state, ctx, dtype);
}
BENCHMARK(BM_QuantEngineDecodeStep)
    ->ArgName("dtype")
    ->Arg(0)
    ->Arg(1)
    ->Arg(2);

void BM_TinyLlamaDecodeStep(benchmark::State& state) {
  const auto batch = static_cast<int>(state.range(0));
  LlamaConfig c = TinyLlama();
  LlamaModel model(c, 9);
  model.AddLora(0, 8, 1);
  model.AddLora(1, 8, 2);
  PagedKvCache kv(model.MakeKvConfig(4096));
  std::vector<BatchEntry> entries;
  std::vector<std::int32_t> tokens;
  for (int i = 0; i < batch; ++i) {
    SeqId s = kv.CreateSequence();
    kv.Extend(s, 33);  // 32 context tokens + the decode slot
    // Group rows by LoRA (even ids first) so segments are maximal.
    entries.push_back({.seq = s,
                       .lora = i < (batch + 1) / 2 ? 0 : 1,
                       .num_tokens = 1,
                       .pos_offset = 32,
                       .is_prefill = false});
    tokens.push_back(static_cast<std::int32_t>(i % 100));
  }
  ModelBatch mb = ModelBatch::Build(std::move(entries));
  // The decode slot is rewritten in place every iteration — steady-state
  // cost of one decode step at context length 32.
  for (auto _ : state) {
    auto next = model.ForwardGreedy(mb, tokens, kv);
    benchmark::DoNotOptimize(next.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_TinyLlamaDecodeStep)->Arg(1)->Arg(8)->Arg(32);

}  // namespace
}  // namespace punica

BENCHMARK_MAIN();
