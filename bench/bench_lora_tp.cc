// LoRA/SGMV under tensor parallelism: the multi-tenant counterpart of the
// bench_fig12_70b_tp measured sweep.
//
// First half (deterministic, cost model): the per-layer SGMV addon at
// paper scale — LoraLayerAddonLatency across tp degrees. The adapter
// shards follow the backbone's Megatron split (B column-parallel at the
// Q/K/V/Gate/Up seams, A row-parallel at O/Down), so kernel IO divides by
// tp while the seven pipelined launch overheads do not, and the deltas
// fold into the backbone's existing all-reduces at zero extra
// communication (TpCostModelAgreement.LoraDeltaAddsNoAllReduceTerm).
//
// Second half: a *measured* numeric-tier sweep. A real Engine serves a
// decode-heavy two-adapter workload (half the streams on each adapter) at
// tp ∈ {1, 2, 4, 8}; SGMV shrink/expand runs sharded on every rank, every
// step, on all seven seams. --json PATH emits BENCH_lora_tp.json
// ("bench": "lora_tp"); scripts/check_bench.py gates the per_rank tp=4
// speedup floor in release CI, exactly like the backbone tp_scaling gate.
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "gpu/specs.h"
#include "model/llama.h"
#include "runtime/engine.h"
#include "util/compute_context.h"

namespace punica {
namespace {

constexpr int kRank = 16;
constexpr int kStreams = 8;
constexpr int kNewTokens = 64;

/// Projected A100 section: the in-forward SGMV addon per layer at 7B scale,
/// Uniform popularity (batch 32 over 8 adapters), swept over tp.
void RunProjected() {
  bench::PrintHeader("LoRA x TP",
                     "SGMV addon under Megatron sharding (7B, r=16)");
  CostModel cm((A100Sxm80GB()));
  LlamaConfig model = Llama7B();
  std::vector<std::int32_t> rows = bench::SegmentRowsFor(Popularity::kUniform,
                                                         32);
  std::printf("Projected per-layer LoRA addon, Uniform batch 32:\n");
  Table t({"tp", "addon/layer", "vs tp=1", "addon/step (all layers)"});
  double t1 = cm.LoraLayerAddonLatency(model, rows, kRank, 1);
  for (int tp : {1, 2, 4, 8}) {
    double t_tp = cm.LoraLayerAddonLatency(model, rows, kRank, tp);
    t.AddRow({std::to_string(tp), FormatSeconds(t_tp),
              FormatDouble(t1 / t_tp, 2) + "x",
              FormatSeconds(t_tp * model.num_layers)});
  }
  t.Print();
  std::printf(
      "\nKernel IO divides by tp; the 7 pipelined launches per layer do\n"
      "not, so the addon curve bends below ideal — and the deltas ride the\n"
      "backbone's existing all-reduces, so no communication term appears.\n");
}

/// The measured sweep's model: the bench_fig12 shape (divisible by every
/// swept degree), matching tests/model/tp_costmodel_agreement_test.cc.
LlamaConfig MeasuredConfig() {
  return {.name = "tp-bench",
          .hidden_size = 256,
          .num_layers = 4,
          .num_heads = 8,
          .num_kv_heads = 8,
          .ffn_hidden = 1024,
          .vocab_size = 512};
}

struct MeasuredPoint {
  int tp = 0;
  double tok_s = 0.0;
  std::int64_t tokens = 0;
};

/// Runs kStreams decode-heavy streams (8-token prompts, kNewTokens new
/// tokens each), the first half on adapter 0 and the second on adapter 1,
/// through a real Engine at the given TP degree on a pool of `threads`
/// workers; returns best-of-`reps` throughput. Every decode step pays the
/// sharded SGMV shrink/expand on all seven seams of every rank.
MeasuredPoint MeasureLoraTp(int tp, int threads, int reps) {
  LlamaConfig config = MeasuredConfig();
  ComputeContext ctx({.num_threads = threads});
  LlamaModel model(config, /*seed=*/7, &ctx, tp, /*tp_concurrent=*/tp > 1);
  model.AddLora(0, kRank, /*seed=*/21);
  model.AddLora(1, kRank, /*seed=*/22);

  double best = 1e30;
  std::int64_t tokens = 0;
  for (int r = 0; r < reps; ++r) {
    Engine engine(&model, model.MakeKvConfig(/*num_pages=*/512),
                  EngineConfig{.max_batch_size = kStreams});
    for (int s = 0; s < kStreams; ++s) {
      std::vector<std::int32_t> prompt;
      for (int i = 0; i < 8; ++i) prompt.push_back((s * 17 + i * 3) % 256);
      engine.AddRequest({.lora = s < kStreams / 2 ? 0 : 1,
                         .prompt_tokens = prompt,
                         .max_new_tokens = kNewTokens});
    }
    std::int64_t emitted = 0;
    auto start = std::chrono::steady_clock::now();
    while (engine.HasWork()) emitted += engine.Step().new_tokens;
    auto stop = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(stop - start).count();
    if (secs < best) best = secs;
    tokens = emitted;
  }
  return {tp, static_cast<double>(tokens) / best, tokens};
}

void RunMeasured(const char* json_path, int total_threads, int reps) {
  std::printf("\nMeasured numeric-tier LoRA TP sweep (real CPU execution)\n");
  std::printf("model: %d hidden / %d layers, f16 backbone + 2 f16 adapters "
              "r=%d; pool fixed at %d threads; best of %d\n\n",
              MeasuredConfig().hidden_size, MeasuredConfig().num_layers,
              kRank, total_threads, reps);

  // Roofline prediction with the LoRA segment shape threaded through
  // StepShape — the cross-validation column, as in bench_fig12. The SGMV
  // pipelined overhead is zeroed with the rest: what remains divides by tp
  // except the all-reduce payload.
  CostModel roofline((A100Sxm80GB()));
  auto& p = roofline.mutable_params();
  p.kernel_launch_s = 0.0;
  p.attn_kernel_overhead_s = 0.0;
  p.layer_overhead_s = 0.0;
  p.step_overhead_s = 0.0;
  p.allreduce_overhead_s = 0.0;
  p.sgmv_pipelined_overhead_s = 0.0;
  auto predict = [&](int tp) {
    StepShape shape;
    shape.decode_kv_lens.assign(kStreams, kNewTokens / 2);
    shape.lora_segment_rows = {kStreams / 2, kStreams / 2};
    shape.lora_rank = kRank;
    shape.tp_degree = tp;
    return roofline.StepLatency(MeasuredConfig(), shape);
  };
  double pred1 = predict(1);

  FILE* json = nullptr;
  if (json_path != nullptr) {
    json = std::fopen(json_path, "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path);
      std::exit(1);
    }
    std::fprintf(json,
                 "{\n  \"bench\": \"lora_tp\",\n"
                 "  \"total_threads\": %d,\n  \"rows\": [\n",
                 total_threads);
  }

  // Same two sweeps as the backbone bench: per_rank gives rank r one
  // worker (tp=N occupies N workers — the 1-vs-N-GPU curve the roofline
  // cross-validates); fixed_pool re-partitions a constant pool, isolating
  // the execution schedule.
  Table t({"mode", "tp", "tok/s", "speedup", "roofline speedup"});
  bool first = true;
  for (const char* mode : {"per_rank", "fixed_pool"}) {
    bool per_rank = std::strcmp(mode, "per_rank") == 0;
    MeasuredPoint base;
    for (int tp : {1, 2, 4, 8}) {
      MeasuredPoint pt = MeasureLoraTp(tp, per_rank ? tp : total_threads,
                                       reps);
      if (tp == 1) base = pt;
      double speedup = pt.tok_s / base.tok_s;
      double predicted = pred1 / predict(tp);
      t.AddRow({mode, std::to_string(tp), FormatDouble(pt.tok_s, 0),
                FormatDouble(speedup, 2) + "x",
                FormatDouble(predicted, 2) + "x"});
      if (json != nullptr) {
        std::fprintf(json,
                     "%s    {\"mode\": \"%s\", \"tp\": %d, "
                     "\"tok_s\": %.2f, \"speedup\": %.4f, "
                     "\"predicted_speedup\": %.4f}",
                     first ? "" : ",\n", mode, tp, pt.tok_s, speedup,
                     predicted);
        first = false;
      }
    }
  }
  t.Print();
  std::printf(
      "\nReading the table:\n"
      " * Both streams of every step run adapters: there is no\n"
      "   backbone-only fast path here. The sharded SGMV addon rides the\n"
      "   same rank groups and the same two all-reduce seams as the dense\n"
      "   projections, so the curve should track the backbone tp_scaling\n"
      "   sweep — a LoRA-specific collapse (e.g. adapters serialized on\n"
      "   one rank, or a third synchronization seam) shows up as this\n"
      "   bench lagging that one.\n"
      " * Token streams at every (mode, tp) are identical — determinism\n"
      "   is asserted by the test suite, this bench only times.\n"
      " * Absolute tok/s is machine-class specific; CI gates the same-run\n"
      "   speedup ratios and the deterministic roofline column.\n");
  if (json != nullptr) {
    std::fprintf(json, "\n  ]\n}\n");
    if (std::ferror(json) != 0 || std::fclose(json) != 0) {
      std::fprintf(stderr, "error writing %s\n", json_path);
      std::exit(1);
    }
    std::printf("\nwrote %s\n", json_path);
  }
}

}  // namespace
}  // namespace punica

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  int total_threads = 8;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      total_threads = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--repeat") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[i + 1]);
    }
  }
  if (total_threads < 1) total_threads = 1;
  if (reps < 1) reps = 1;
  punica::RunProjected();
  punica::RunMeasured(json_path, total_threads, reps);
  return 0;
}
