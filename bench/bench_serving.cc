// Open-loop serving sweep: offered load vs SLO attainment through the
// src/serving/ subsystem (ArrivalQueue → ServingLoop → GpuRunner, virtual
// time). The sweep walks the offered rate across the single-GPU saturation
// knee and reports the metrics a closed-loop figure cannot show: TTFT
// p50/p95 dated from arrival, mean queueing delay, and goodput — the
// fraction of *offered* requests that finished inside both SLO targets
// (TTFT and TPOT), with shed requests counting against it.
//
// Everything here runs on the discrete-event clock with cost-model
// latencies, so the artifact is bit-reproducible on any machine — CI gates
// it at the strict deterministic threshold (--json PATH writes the
// machine-readable rows; scripts/check_bench.py compares them against
// bench/baselines/BENCH_serving.json).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "gpu/costmodel.h"
#include "gpu/specs.h"
#include "model/llama.h"
#include "runtime/engine.h"
#include "runtime/engine_backend.h"
#include "runtime/runner.h"
#include "serving/arrival_queue.h"
#include "serving/load_generator.h"
#include "serving/serving_loop.h"
#include "sim/arrivals.h"
#include "util/compute_context.h"

namespace punica {
namespace {

struct SweepPoint {
  double offered_rps = 0.0;
  ServingMetrics metrics;
  double duration_s = 0.0;
};

SweepPoint RunPoint(double rate, int num_requests) {
  CostModel cm((A100Sxm80GB()));
  RunnerConfig rcfg;
  rcfg.prefill_limit = 4;
  rcfg.max_step_tokens = 768;  // the Fig. 11c operating point
  rcfg.kv_capacity_tokens = 400000;
  std::vector<std::unique_ptr<GpuRunner>> runners;
  std::vector<ExecutionBackend*> backends;
  runners.push_back(std::make_unique<GpuRunner>(0, rcfg, Llama7B(), &cm));
  backends.push_back(runners.back().get());

  OpenLoopSpec load;
  load.rate_rps = rate;
  load.num_requests = num_requests;
  load.priority_classes = 2;  // half the tenants are protected

  ServingLoopConfig cfg;
  cfg.slo = {.ttft_target_s = 1.0, .itl_target_s = 0.25};
  cfg.record_streams = false;  // metrics-only sweep
  ServingLoop loop(backends, cfg);
  loop.RunVirtual(GenerateOpenLoopLoad(load));
  return {rate, loop.metrics(), loop.end_time()};
}

void Run(const char* json_path, int num_requests) {
  bench::PrintHeader("Open-loop serving",
                     "Offered load vs SLO attainment (Punica GpuRunner, "
                     "1 GPU, virtual time)");
  std::printf("SLO: TTFT <= 1 s, TPOT <= 250 ms; goodput = good/offered "
              "(shed counts against)\n\n");

  FILE* json = nullptr;
  if (json_path != nullptr) {
    json = std::fopen(json_path, "w");
    if (json == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path);
      std::exit(1);
    }
    std::fprintf(json, "{\n  \"bench\": \"serving_open_loop\",\n"
                       "  \"num_requests\": %d,\n  \"rows\": [\n",
                 num_requests);
  }

  Table t({"offered rps", "tok/s", "TTFT p50", "TTFT p95", "queue mean",
           "goodput", "finished", "shed"});
  bool first = true;
  for (double rate : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    SweepPoint pt = RunPoint(rate, num_requests);
    const ServingMetrics& m = pt.metrics;
    double tok_s = pt.duration_s > 0.0
                       ? static_cast<double>(m.total_new_tokens) /
                             pt.duration_s
                       : 0.0;
    t.AddRow({FormatDouble(rate, 1), FormatDouble(tok_s, 0),
              FormatDouble(m.ttft.p50() * 1e3, 1) + " ms",
              FormatDouble(m.ttft.p95() * 1e3, 1) + " ms",
              FormatDouble(m.queue_wait.mean() * 1e3, 1) + " ms",
              FormatDouble(m.goodput(), 3),
              std::to_string(m.finished), std::to_string(m.shed)});
    if (json != nullptr) {
      std::fprintf(
          json,
          "%s    {\"offered_rps\": %.1f, \"tok_s\": %.2f, "
          "\"ttft_p50_s\": %.6f, \"ttft_p95_s\": %.6f, "
          "\"queue_mean_s\": %.6f, \"goodput\": %.4f, "
          "\"finished\": %lld, \"shed\": %lld}",
          first ? "" : ",\n", rate, tok_s, m.ttft.p50(), m.ttft.p95(),
          m.queue_wait.mean(), m.goodput(),
          static_cast<long long>(m.finished),
          static_cast<long long>(m.shed));
      first = false;
    }
  }
  t.Print();
  std::printf(
      "\nReading the table:\n"
      " * Below the knee TTFT is flat (~one queued prefill) and goodput is\n"
      "   ~1: the server idles between arrivals and every request meets\n"
      "   both targets.\n"
      " * Past the knee tok/s saturates at single-GPU capacity; the\n"
      "   admission door defers and then sheds unprotected requests whose\n"
      "   wait overran shed_slack x TTFT-target, so goodput — not\n"
      "   throughput — is what collapses.\n"
      " * All latencies are virtual-time and cost-model derived: the\n"
      "   artifact is bit-reproducible, so CI gates it strictly.\n");
  if (json != nullptr) {
    std::fprintf(json, "\n  ]\n}\n");
    // A short write must fail the run: CI archives this artifact and gates
    // future PRs against it.
    if (std::ferror(json) != 0 || std::fclose(json) != 0) {
      std::fprintf(stderr, "error writing %s\n", json_path);
      std::exit(1);
    }
    std::printf("\nwrote %s\n", json_path);
  }
}

/// Wall-clock RunThreaded over the *numeric* Engine tier: submitter threads
/// replay a Poisson schedule against the real clock into an ArrivalQueue,
/// and the loop drives two tiny-Llama Engines (real prefill/decode on the
/// shared thread pool) until the queue drains. Unlike the virtual sweep
/// above, every number here is machine-dependent wall time — printed for
/// the trajectory log, deliberately NOT part of the gated JSON artifact.
void RunNumericThreaded(int num_requests) {
  std::printf("\nWall-clock threaded serving (numeric Engine tier)\n");
  std::printf("2 engines x tiny-llama, real submitter threads, "
              "%d requests\n\n", num_requests);

  ComputeContext ctx;  // ambient PUNICA_THREADS / hardware default
  LlamaModel model(TinyLlama(), /*seed=*/2024, &ctx);
  model.AddLora(0, 8, 1);
  model.AddLora(1, 8, 2);

  std::vector<std::unique_ptr<Engine>> engines;
  std::vector<std::unique_ptr<EngineBackend>> backends;
  std::vector<ExecutionBackend*> raw;
  for (int g = 0; g < 2; ++g) {
    engines.push_back(std::make_unique<Engine>(
        &model, model.MakeKvConfig(/*num_pages=*/64),
        EngineConfig{.max_batch_size = 4}));
    backends.push_back(
        std::make_unique<EngineBackend>(g, engines.back().get()));
    raw.push_back(backends.back().get());
  }

  // Mean arrival gap 5 ms: fast enough that the door queues under the
  // engines' real step times, slow enough that submitters — not shedding —
  // dominate the run.
  std::vector<double> arrivals =
      PoissonArrivalsKeyed(200.0, static_cast<std::size_t>(num_requests),
                           /*seed=*/7);
  Pcg32 rng(13);
  std::vector<SubmitSpec> specs;
  for (int i = 0; i < num_requests; ++i) {
    std::vector<std::int32_t> prompt;
    int len = 6 + static_cast<int>(rng.NextU32() % 8);
    for (int t = 0; t < len; ++t) {
      prompt.push_back(static_cast<std::int32_t>(rng.NextU32() % 256));
    }
    specs.push_back({.lora = static_cast<LoraId>(i % 3 - 1),  // -1, 0, 1
                     .prompt_tokens = prompt,
                     .max_new_tokens = 24,
                     .arrival_time = arrivals[static_cast<std::size_t>(i)],
                     .priority = static_cast<std::int32_t>(i % 2)});
  }

  ServingLoopConfig cfg;
  cfg.slo = {.ttft_target_s = 0.5, .itl_target_s = 0.25};
  cfg.record_streams = false;
  ServingLoop loop(raw, cfg);

  ArrivalQueue queue(64);
  TraceSubmitter submitter(std::move(specs), /*time_scale=*/1.0);
  auto start = std::chrono::steady_clock::now();
  submitter.Start(&queue, /*num_threads=*/2);
  loop.RunThreaded(queue);
  submitter.Join();
  double wall = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();

  const ServingMetrics& m = loop.metrics();
  Table t({"wall s", "tok/s", "TTFT p50", "TTFT p95", "finished", "shed"});
  t.AddRow({FormatDouble(wall, 2),
            FormatDouble(static_cast<double>(m.total_new_tokens) / wall, 0),
            FormatDouble(m.ttft.p50() * 1e3, 1) + " ms",
            FormatDouble(m.ttft.p95() * 1e3, 1) + " ms",
            std::to_string(m.finished), std::to_string(m.shed)});
  t.Print();
  std::printf(
      "\nReal threads, real model, real clock: submitters sleep to their\n"
      "arrival stamps and block on the bounded queue; the loop admits and\n"
      "steps actual tiny-Llama engines on the shared pool. Wall numbers\n"
      "vary by machine — the deterministic virtual-time sweep above is the\n"
      "gated artifact.\n");
}

}  // namespace
}  // namespace punica

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  int num_requests = 400;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      num_requests = std::atoi(argv[i + 1]);
    }
  }
  if (num_requests < 1) num_requests = 1;
  punica::Run(json_path, num_requests);
  punica::RunNumericThreaded(/*num_requests=*/64);
  return 0;
}
