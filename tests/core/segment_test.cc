#include "core/segment.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace punica {
namespace {

TEST(SegmentTest, BuildFromGroupedIds) {
  std::vector<LoraId> ids = {7, 7, 7, 3, 3, 9};
  Segments seg = BuildSegments(ids);
  ASSERT_EQ(seg.num_segments(), 3);
  EXPECT_EQ(seg.offsets, (std::vector<std::int32_t>{0, 3, 5, 6}));
  EXPECT_EQ(seg.lora_ids, (std::vector<LoraId>{7, 3, 9}));
  EXPECT_EQ(seg.total_rows(), 6);
  EXPECT_EQ(seg.segment_rows(0), 3);
  EXPECT_EQ(seg.segment_rows(2), 1);
  EXPECT_TRUE(seg.IsValid());
}

TEST(SegmentTest, EmptyInput) {
  Segments seg = BuildSegments({});
  EXPECT_EQ(seg.num_segments(), 0);
  EXPECT_EQ(seg.total_rows(), 0);
}

TEST(SegmentTest, SingleRow) {
  std::vector<LoraId> ids = {42};
  Segments seg = BuildSegments(ids);
  ASSERT_EQ(seg.num_segments(), 1);
  EXPECT_EQ(seg.total_rows(), 1);
  EXPECT_EQ(seg.lora_ids[0], 42);
}

TEST(SegmentTest, AllDistinct) {
  std::vector<LoraId> ids = {1, 2, 3, 4};
  Segments seg = BuildSegments(ids);
  EXPECT_EQ(seg.num_segments(), 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(seg.segment_rows(i), 1);
}

TEST(SegmentTest, NonAdjacentDuplicatesStaySeparate) {
  // BuildSegments does not reorder; interleaved ids make extra segments.
  std::vector<LoraId> ids = {1, 2, 1};
  Segments seg = BuildSegments(ids);
  EXPECT_EQ(seg.num_segments(), 3);
}

TEST(SegmentTest, ValidityRejectsAdjacentDuplicates) {
  Segments seg;
  seg.offsets = {0, 1, 2};
  seg.lora_ids = {5, 5};
  EXPECT_FALSE(seg.IsValid());
}

TEST(SegmentTest, ValidityRejectsEmptySegment) {
  Segments seg;
  seg.offsets = {0, 2, 2};
  seg.lora_ids = {1, 2};
  EXPECT_FALSE(seg.IsValid());
}

TEST(GroupRowsTest, GroupsPreservingFirstAppearance) {
  std::vector<LoraId> ids = {5, 9, 5, 9, 5};
  auto perm = GroupRowsByLora(ids);
  // Group of 5 first (rows 0,2,4 in order), then 9 (rows 1,3).
  EXPECT_EQ(perm, (std::vector<std::int32_t>{0, 2, 4, 1, 3}));
  // Applying the permutation groups the ids.
  std::vector<LoraId> grouped;
  for (auto p : perm) grouped.push_back(ids[static_cast<std::size_t>(p)]);
  Segments seg = BuildSegments(grouped);
  EXPECT_EQ(seg.num_segments(), 2);
}

TEST(GroupRowsTest, AlreadyGroupedIsIdentity) {
  std::vector<LoraId> ids = {1, 1, 2, 2, 3};
  auto perm = GroupRowsByLora(ids);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(perm[i], static_cast<std::int32_t>(i));
  }
}

TEST(GroupRowsTest, RandomIdsProduceMinimalSegments) {
  Pcg32 rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 1 + static_cast<int>(rng.NextBounded(60));
    std::vector<LoraId> ids;
    std::size_t distinct = 0;
    std::vector<bool> seen(8, false);
    for (int i = 0; i < n; ++i) {
      LoraId id = rng.NextBounded(8);
      if (!seen[static_cast<std::size_t>(id)]) {
        seen[static_cast<std::size_t>(id)] = true;
        ++distinct;
      }
      ids.push_back(id);
    }
    auto perm = GroupRowsByLora(ids);
    std::vector<LoraId> grouped;
    for (auto p : perm) grouped.push_back(ids[static_cast<std::size_t>(p)]);
    Segments seg = BuildSegments(grouped);
    // Grouping is optimal: one segment per distinct id.
    EXPECT_EQ(static_cast<std::size_t>(seg.num_segments()), distinct);
  }
}

TEST(PermuteRowsTest, MovesRows) {
  std::vector<float> in = {1, 2, 3, 4, 5, 6};  // 3 rows × 2
  std::vector<std::int32_t> perm = {2, 0, 1};
  std::vector<float> out(6);
  PermuteRows(in, out, perm, 2);
  EXPECT_EQ(out, (std::vector<float>{5, 6, 1, 2, 3, 4}));
}

TEST(PermuteRowsTest, InverseRestores) {
  Pcg32 rng(13);
  int rows = 10, width = 3;
  auto in = RandomGaussianVector(static_cast<std::size_t>(rows) * width, 1.0f,
                                 rng);
  std::vector<std::int32_t> perm(static_cast<std::size_t>(rows));
  for (int i = 0; i < rows; ++i) perm[static_cast<std::size_t>(i)] = i;
  rng.Shuffle(std::span<std::int32_t>(perm));
  std::vector<float> mid(in.size()), back(in.size());
  PermuteRows(in, mid, perm, width);
  auto inv = InvertPermutation(perm);
  PermuteRows(mid, back, inv, width);
  EXPECT_EQ(back, in);
}

TEST(BatchLenTest, BuildFromLengths) {
  std::vector<std::int32_t> lens = {5, 3, 2};
  BatchLen bl = BuildBatchLen(lens, 7);
  EXPECT_EQ(bl.prefill_starts, (std::vector<std::int32_t>{0, 5, 8}));
  EXPECT_EQ(bl.prefill_tokens, 10);
  EXPECT_EQ(bl.num_decode, 7);
  EXPECT_EQ(bl.total_tokens(), 17);
  EXPECT_EQ(bl.num_prefill(), 3);
  EXPECT_TRUE(bl.IsValid());
}

TEST(BatchLenTest, DecodeOnly) {
  BatchLen bl = BuildBatchLen({}, 32);
  EXPECT_EQ(bl.total_tokens(), 32);
  EXPECT_EQ(bl.num_prefill(), 0);
  EXPECT_TRUE(bl.IsValid());
}

TEST(BatchLenTest, InvalidShapes) {
  BatchLen bl;
  bl.prefill_starts = {0, 5};
  bl.prefill_tokens = 4;  // start 5 out of range
  EXPECT_FALSE(bl.IsValid());
  BatchLen bl2;
  bl2.prefill_tokens = 3;  // tokens without any prefill request
  EXPECT_FALSE(bl2.IsValid());
}

TEST(BatchLenDeathTest, NonPositiveLengthAborts) {
  std::vector<std::int32_t> lens = {0};
  EXPECT_DEATH(BuildBatchLen(lens, 0), "PUNICA_CHECK");
}

}  // namespace
}  // namespace punica
