#include "core/lora.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tensor/gemm.h"
#include "util/rng.h"

namespace punica {
namespace {

// Dense oracle: y += x · (A·B) computed through fp32 densification.
void DenseLoraOracle(std::span<float> y, std::span<const float> x,
                     const LoraAB& ad, int rows) {
  std::vector<float> ab(static_cast<std::size_t>(ad.h_in) *
                        static_cast<std::size_t>(ad.h_out));
  for (int i = 0; i < ad.h_in; ++i) {
    for (int j = 0; j < ad.h_out; ++j) {
      float acc = 0.0f;
      for (int r = 0; r < ad.rank; ++r) {
        acc += ad.a.at({i, r}).ToFloat() * ad.b.at({r, j}).ToFloat();
      }
      ab[static_cast<std::size_t>(i) * static_cast<std::size_t>(ad.h_out) +
         static_cast<std::size_t>(j)] = acc;
    }
  }
  for (int row = 0; row < rows; ++row) {
    for (int j = 0; j < ad.h_out; ++j) {
      float acc = 0.0f;
      for (int i = 0; i < ad.h_in; ++i) {
        acc += x[static_cast<std::size_t>(row) *
                     static_cast<std::size_t>(ad.h_in) +
                 static_cast<std::size_t>(i)] *
               ab[static_cast<std::size_t>(i) *
                      static_cast<std::size_t>(ad.h_out) +
                  static_cast<std::size_t>(j)];
      }
      y[static_cast<std::size_t>(row) * static_cast<std::size_t>(ad.h_out) +
        static_cast<std::size_t>(j)] += acc;
    }
  }
}

TEST(LoraABTest, RandomShapesAndSize) {
  LoraAB w = LoraAB::Random(64, 32, 16, 7);
  EXPECT_EQ(w.a.dim(0), 64);
  EXPECT_EQ(w.a.dim(1), 16);
  EXPECT_EQ(w.b.dim(0), 16);
  EXPECT_EQ(w.b.dim(1), 32);
  EXPECT_EQ(w.byte_size(), (64 * 16 + 16 * 32) * sizeof(f16));
}

TEST(LoraABTest, DeterministicInSeed) {
  LoraAB a = LoraAB::Random(16, 16, 4, 99);
  LoraAB b = LoraAB::Random(16, 16, 4, 99);
  for (std::size_t i = 0; i < a.a.numel(); ++i) {
    EXPECT_TRUE(a.a.data()[i] == b.a.data()[i]);
  }
}

TEST(LoraAddonTest, SingleAdapterMatchesDenseOracle) {
  Pcg32 rng(5);
  const int h_in = 48, h_out = 40, rank = 8, rows = 5;
  LoraAB ad = LoraAB::Random(h_in, h_out, rank, 3);
  auto x = RandomGaussianVector(static_cast<std::size_t>(rows) * h_in, 1.0f,
                                rng);
  auto y0 = RandomGaussianVector(static_cast<std::size_t>(rows) * h_out, 1.0f,
                                 rng);

  auto y_sgmv = y0;
  LoraAddonSingle(y_sgmv, x, ad, rows);

  auto y_oracle = y0;
  DenseLoraOracle(y_oracle, x, ad, rows);

  for (std::size_t i = 0; i < y_sgmv.size(); ++i) {
    EXPECT_NEAR(y_sgmv[i], y_oracle[i], 5e-3f) << i;
  }
}

TEST(LoraAddonTest, MultiSegmentEachRowUsesItsAdapter) {
  Pcg32 rng(6);
  const int h = 32, rank = 4;
  LoraAB ad1 = LoraAB::Random(h, h, rank, 10);
  LoraAB ad2 = LoraAB::Random(h, h, rank, 20);
  std::vector<std::int32_t> seg = {0, 2, 5};
  const int rows = 5;
  auto x = RandomGaussianVector(static_cast<std::size_t>(rows) * h, 1.0f, rng);

  std::vector<float> y(static_cast<std::size_t>(rows) * h, 0.0f);
  std::vector<const LoraAB*> adapters = {&ad1, &ad2};
  std::vector<float> ws(static_cast<std::size_t>(rows) * rank);
  BatchedLoraAddon(y, x, adapters, seg, h, h, ws);

  // Oracle per segment.
  std::vector<float> y_ref(y.size(), 0.0f);
  DenseLoraOracle(std::span<float>(y_ref).first(2 * h),
                  std::span<const float>(x).first(2 * h), ad1, 2);
  DenseLoraOracle(std::span<float>(y_ref).subspan(2 * h),
                  std::span<const float>(x).subspan(2 * h), ad2, 3);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], y_ref[i], 5e-3f) << i;
  }
}

TEST(LoraAddonTest, NullAdapterLeavesRowsUnchanged) {
  Pcg32 rng(8);
  const int h = 16, rank = 4;
  LoraAB ad = LoraAB::Random(h, h, rank, 1);
  std::vector<std::int32_t> seg = {0, 1, 3};
  auto x = RandomGaussianVector(3 * h, 1.0f, rng);
  std::vector<float> y(3 * h, 1.0f);
  std::vector<const LoraAB*> adapters = {&ad, nullptr};
  std::vector<float> ws(3 * rank);
  BatchedLoraAddon(y, x, adapters, seg, h, h, ws);
  for (std::size_t i = h; i < 3 * h; ++i) {
    EXPECT_EQ(y[i], 1.0f);
  }
}

TEST(LoraAddonTest, AllNullIsNoOp) {
  std::vector<std::int32_t> seg = {0, 4};
  std::vector<float> x(4 * 8, 1.0f);
  std::vector<float> y(4 * 8, 2.0f);
  std::vector<const LoraAB*> adapters = {nullptr};
  std::vector<float> ws;  // may be empty when nothing to do
  BatchedLoraAddon(y, x, adapters, seg, 8, 8, ws);
  for (float v : y) EXPECT_EQ(v, 2.0f);
}

TEST(LoraAddonTest, MixedRanksAcrossSegments) {
  Pcg32 rng(9);
  const int h = 24;
  LoraAB lo = LoraAB::Random(h, h, 4, 2);
  LoraAB hi = LoraAB::Random(h, h, 16, 3);
  std::vector<std::int32_t> seg = {0, 3, 6};
  auto x = RandomGaussianVector(6 * h, 1.0f, rng);
  std::vector<float> y(6 * h, 0.0f);
  std::vector<const LoraAB*> adapters = {&lo, &hi};
  std::vector<float> ws(6 * 16);
  BatchedLoraAddon(y, x, adapters, seg, h, h, ws);

  std::vector<float> y_ref(y.size(), 0.0f);
  DenseLoraOracle(std::span<float>(y_ref).first(3 * h),
                  std::span<const float>(x).first(3 * h), lo, 3);
  DenseLoraOracle(std::span<float>(y_ref).subspan(3 * h),
                  std::span<const float>(x).subspan(3 * h), hi, 3);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], y_ref[i], 5e-3f) << i;
  }
}

TEST(LoraAddonCostTest, SumsShrinkAndExpand) {
  std::vector<std::int32_t> seg = {0, 8};
  SgmvCost pair = LoraAddonCostOf(seg, 4096, 4096, 16);
  SgmvCost shrink = SgmvCostOf(seg, 4096, 16);
  SgmvCost expand = SgmvCostOf(seg, 16, 4096);
  EXPECT_DOUBLE_EQ(pair.flop, shrink.flop + expand.flop);
  EXPECT_DOUBLE_EQ(pair.io_bytes, shrink.io_bytes + expand.io_bytes);
}

TEST(LoraRegistryTest, PutGetErase) {
  LoraRegistry reg;
  EXPECT_EQ(reg.Get(1), nullptr);
  std::size_t bytes = reg.Put(1, LoraAB::Random(16, 16, 4, 1));
  EXPECT_GT(bytes, 0u);
  EXPECT_EQ(reg.total_bytes(), bytes);
  EXPECT_TRUE(reg.Contains(1));
  ASSERT_NE(reg.Get(1), nullptr);
  EXPECT_EQ(reg.Get(1)->rank, 4);
  EXPECT_EQ(reg.Erase(1), bytes);
  EXPECT_EQ(reg.total_bytes(), 0u);
  EXPECT_EQ(reg.Erase(1), 0u);  // double erase is a no-op
}

TEST(LoraRegistryTest, ReplaceUpdatesBytes) {
  LoraRegistry reg;
  reg.Put(1, LoraAB::Random(16, 16, 4, 1));
  std::size_t bytes8 = reg.Put(1, LoraAB::Random(16, 16, 8, 2));
  EXPECT_EQ(reg.total_bytes(), bytes8);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.Get(1)->rank, 8);
}

TEST(LoraRegistryTest, GatherSegmentWeights) {
  LoraRegistry reg;
  reg.Put(5, LoraAB::Random(16, 16, 4, 1));
  Segments seg;
  seg.offsets = {0, 2, 4};
  seg.lora_ids = {5, 6};  // 6 unknown → nullptr (backbone-only)
  auto ptrs = reg.GatherSegmentWeights(seg);
  ASSERT_EQ(ptrs.size(), 2u);
  EXPECT_NE(ptrs[0], nullptr);
  EXPECT_EQ(ptrs[1], nullptr);
}

}  // namespace
}  // namespace punica
