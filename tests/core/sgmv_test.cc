#include "core/sgmv.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "core/lora.h"
#include "tensor/gemm.h"
#include "util/rng.h"

namespace punica {
namespace {

// Tolerance model: fp32 accumulation over fp16 weights; error grows with the
// reduction length and the different summation orders of the schedules.
float TolFor(int k, float magnitude) {
  return magnitude * kF16Epsilon * std::sqrt(static_cast<float>(k)) * 4.0f +
         1e-5f;
}

struct SgmvProblem {
  std::vector<float> x;
  std::vector<float> y_init;
  std::vector<Tensor<f16>> weights;
  std::vector<const f16*> weight_ptrs;
  std::vector<std::int32_t> seg;
  int h_in;
  int h_out;

  SgmvArgs Args(std::vector<float>& y) const {
    return SgmvArgs{y, x, weight_ptrs, seg, h_in, h_out};
  }
};

SgmvProblem MakeProblem(std::span<const std::int32_t> seg_rows, int h_in,
                        int h_out, Pcg32& rng) {
  SgmvProblem p;
  p.h_in = h_in;
  p.h_out = h_out;
  p.seg.push_back(0);
  for (auto rows : seg_rows) {
    p.seg.push_back(p.seg.back() + rows);
  }
  int total = p.seg.back();
  p.x = RandomGaussianVector(
      static_cast<std::size_t>(total) * static_cast<std::size_t>(h_in), 1.0f,
      rng);
  p.y_init = RandomGaussianVector(
      static_cast<std::size_t>(total) * static_cast<std::size_t>(h_out), 1.0f,
      rng);
  float scale = 1.0f / std::sqrt(static_cast<float>(h_in));
  for (std::size_t i = 0; i + 1 < p.seg.size(); ++i) {
    Tensor<f16> w({h_in, h_out});
    for (auto& v : w.data()) {
      v = f16(static_cast<float>(rng.NextGaussian()) * scale);
    }
    p.weights.push_back(std::move(w));
  }
  for (const auto& w : p.weights) p.weight_ptrs.push_back(w.raw());
  return p;
}

TEST(SgmvTest, SingleSegmentMatchesDenseGemm) {
  Pcg32 rng(1);
  std::vector<std::int32_t> rows = {4};
  auto p = MakeProblem(rows, 32, 8, rng);

  auto y_sgmv = p.y_init;
  SgmvShrink(p.Args(y_sgmv));

  auto y_gemm = p.y_init;
  GemmAccF16W(p.x, p.weights[0].data(), y_gemm, 4, 32, 8);

  for (std::size_t i = 0; i < y_sgmv.size(); ++i) {
    EXPECT_NEAR(y_sgmv[i], y_gemm[i], TolFor(32, 2.0f)) << i;
  }
}

TEST(SgmvTest, AccumulatesIntoY) {
  Pcg32 rng(2);
  std::vector<std::int32_t> rows = {2};
  auto p = MakeProblem(rows, 16, 4, rng);
  auto y = p.y_init;
  SgmvExpand(p.Args(y));
  // y must equal y_init + delta, not delta.
  std::vector<float> zero(p.y_init.size(), 0.0f);
  SgmvArgs args{zero, p.x, p.weight_ptrs, p.seg, p.h_in, p.h_out};
  SgmvExpand(args);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], p.y_init[i] + zero[i], 1e-4f);
  }
}

TEST(SgmvTest, NullSegmentSkipped) {
  Pcg32 rng(3);
  std::vector<std::int32_t> rows = {2, 3};
  auto p = MakeProblem(rows, 16, 4, rng);
  p.weight_ptrs[1] = nullptr;  // second segment backbone-only
  auto y = p.y_init;
  SgmvShrink(p.Args(y));
  // Rows of segment 2 must be untouched.
  for (std::size_t i = 2 * 4; i < y.size(); ++i) {
    EXPECT_EQ(y[i], p.y_init[i]);
  }
  // Rows of segment 1 must have changed.
  bool changed = false;
  for (std::size_t i = 0; i < 2 * 4; ++i) {
    changed = changed || y[i] != p.y_init[i];
  }
  EXPECT_TRUE(changed);
}

TEST(SgmvTest, EmptySegmentAllowed) {
  Pcg32 rng(4);
  SgmvProblem p;
  p.h_in = 8;
  p.h_out = 4;
  p.seg = {0, 2, 2, 4};  // middle segment empty
  p.x = RandomGaussianVector(4 * 8, 1.0f, rng);
  p.y_init.assign(4 * 4, 0.0f);
  for (int i = 0; i < 3; ++i) {
    Tensor<f16> w({8, 4});
    for (auto& v : w.data()) {
      v = f16(static_cast<float>(rng.NextGaussian()));
    }
    p.weights.push_back(std::move(w));
  }
  for (const auto& w : p.weights) p.weight_ptrs.push_back(w.raw());
  auto y1 = p.y_init;
  SgmvShrink(p.Args(y1));
  auto y2 = p.y_init;
  SgmvReference(p.Args(y2));
  for (std::size_t i = 0; i < y1.size(); ++i) {
    EXPECT_NEAR(y1[i], y2[i], 1e-4f);
  }
}

TEST(SgmvTest, SplitKPartitionsHeuristic) {
  EXPECT_EQ(SplitKPartitions(1), 1);
  EXPECT_EQ(SplitKPartitions(256), 1);
  EXPECT_EQ(SplitKPartitions(257), 2);
  EXPECT_EQ(SplitKPartitions(4096), 8);
  EXPECT_EQ(SplitKPartitions(100000), 8);  // capped
}

TEST(SgmvCostTest, PaperFormulas) {
  // FLOP = s_n·h_i·h_o·2; IO = [s_n·(h_i+h_o) + n·h_i·h_o]·2 (§7.1).
  std::vector<std::int32_t> seg = {0, 2, 5};  // n=2 segments, s_n=5
  SgmvCost c = SgmvCostOf(seg, 16, 4096);
  EXPECT_DOUBLE_EQ(c.flop, 5.0 * 16 * 4096 * 2);
  EXPECT_DOUBLE_EQ(c.io_bytes, (5.0 * (16 + 4096) + 2.0 * 16 * 4096) * 2);
  EXPECT_GT(c.arithmetic_intensity(), 0.0);
}

TEST(SgmvCostTest, IdenticalHasHigherIntensityThanDistinct) {
  // Same total rows; identical = 1 segment, distinct = 64 segments.
  std::vector<std::int32_t> identical = {0, 64};
  std::vector<std::int32_t> distinct;
  distinct.push_back(0);
  for (int i = 1; i <= 64; ++i) distinct.push_back(i);
  SgmvCost ci = SgmvCostOf(identical, 16, 4096);
  SgmvCost cd = SgmvCostOf(distinct, 16, 4096);
  EXPECT_DOUBLE_EQ(ci.flop, cd.flop);
  EXPECT_GT(cd.io_bytes, ci.io_bytes);
  EXPECT_GT(ci.arithmetic_intensity(), cd.arithmetic_intensity());
}

// --- Parameterised equivalence sweep: shrink ≡ expand ≡ reference over a
// grid of (segment layout, h_in, h_out). ---

using SweepParam = std::tuple<int, int, int, int>;  // segments, max_rows,
                                                    // h_in, h_out

class SgmvEquivalenceSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SgmvEquivalenceSweep, AllSchedulesAgree) {
  auto [num_segments, max_rows, h_in, h_out] = GetParam();
  Pcg32 rng(static_cast<std::uint64_t>(num_segments * 1000003 + max_rows * 97 +
                                       h_in * 13 + h_out));
  std::vector<std::int32_t> rows;
  for (int s = 0; s < num_segments; ++s) {
    rows.push_back(1 +
                   static_cast<std::int32_t>(rng.NextBounded(
                       static_cast<std::uint32_t>(max_rows))));
  }
  auto p = MakeProblem(rows, h_in, h_out, rng);

  auto y_ref = p.y_init;
  SgmvReference(p.Args(y_ref));
  auto y_shrink = p.y_init;
  SgmvShrink(p.Args(y_shrink));
  auto y_expand = p.y_init;
  SgmvExpand(p.Args(y_expand));

  float tol = TolFor(h_in, 4.0f);
  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    ASSERT_NEAR(y_shrink[i], y_ref[i], tol) << "shrink row-elt " << i;
    ASSERT_NEAR(y_expand[i], y_ref[i], tol) << "expand row-elt " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapeGrid, SgmvEquivalenceSweep,
    ::testing::Combine(::testing::Values(1, 2, 5, 16),   // segments
                       ::testing::Values(1, 3, 8),       // max rows/segment
                       ::testing::Values(16, 64, 300),   // h_in
                       ::testing::Values(8, 16, 128)));  // h_out

// Shrink/expand-shaped sweeps matching the LoRA use (h → r and r → h).
class SgmvLoraShapeSweep : public ::testing::TestWithParam<int> {};

TEST_P(SgmvLoraShapeSweep, ShrinkThenExpandMatchesDense) {
  int rank = GetParam();
  Pcg32 rng(static_cast<std::uint64_t>(rank) * 7 + 1);
  const int h = 128;
  const int rows = 6;
  std::vector<std::int32_t> seg_rows = {rows};
  auto shrink_p = MakeProblem(seg_rows, h, rank, rng);

  std::vector<float> v(static_cast<std::size_t>(rows) *
                           static_cast<std::size_t>(rank),
                       0.0f);
  SgmvArgs shrink{v, shrink_p.x, shrink_p.weight_ptrs, shrink_p.seg, h, rank};
  SgmvShrink(shrink);

  std::vector<float> v_ref(v.size(), 0.0f);
  GemmAccF16W(shrink_p.x, shrink_p.weights[0].data(), v_ref, rows, h, rank);
  float tol = TolFor(h, 2.0f);
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_NEAR(v[i], v_ref[i], tol);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, SgmvLoraShapeSweep,
                         ::testing::Values(8, 16, 32, 64));

// --- Edge-case segment layouts for the parallel schedules ---

TEST(SgmvEdgeTest, WidthOneSegment) {
  // A single row in its own segment — the smallest (row, block) task grid.
  Pcg32 rng(21);
  std::vector<std::int32_t> rows = {1};
  auto p = MakeProblem(rows, 300, 16, rng);
  auto y_shrink = p.y_init;
  SgmvShrink(p.Args(y_shrink));
  auto y_expand = p.y_init;
  SgmvExpand(p.Args(y_expand));
  auto y_ref = p.y_init;
  SgmvReference(p.Args(y_ref));
  float tol = TolFor(300, 4.0f);
  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    ASSERT_NEAR(y_shrink[i], y_ref[i], tol);
    ASSERT_NEAR(y_expand[i], y_ref[i], tol);
  }
}

TEST(SgmvEdgeTest, OneSegmentSpanningAllRows) {
  // One segment of width == rows (the Identical workload shape).
  Pcg32 rng(22);
  std::vector<std::int32_t> rows = {48};
  auto p = MakeProblem(rows, 64, 8, rng);
  auto y_shrink = p.y_init;
  SgmvShrink(p.Args(y_shrink));
  auto y_ref = p.y_init;
  SgmvReference(p.Args(y_ref));
  float tol = TolFor(64, 4.0f);
  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    ASSERT_NEAR(y_shrink[i], y_ref[i], tol);
  }
}

TEST(SgmvEdgeTest, AllSegmentsEmpty) {
  // rows == 0 overall: nothing to do, nothing touched.
  std::vector<float> x, y;
  Tensor<f16> w({4, 2});
  const f16* ptr = w.raw();
  std::vector<std::int32_t> seg = {0, 0};
  SgmvArgs args{y, x, std::span<const f16* const>(&ptr, 1), seg, 4, 2};
  SgmvShrink(args);
  SgmvExpand(args);
}

TEST(SgmvEdgeTest, OutputWidthOne) {
  // h_out == 1 exercises the degenerate column tile.
  Pcg32 rng(23);
  std::vector<std::int32_t> rows = {3};
  auto p = MakeProblem(rows, 40, 1, rng);
  auto y_expand = p.y_init;
  SgmvExpand(p.Args(y_expand));
  auto y_ref = p.y_init;
  SgmvReference(p.Args(y_ref));
  for (std::size_t i = 0; i < y_ref.size(); ++i) {
    ASSERT_NEAR(y_expand[i], y_ref[i], TolFor(40, 4.0f));
  }
}

TEST(SgmvEdgeTest, BitIdenticalAcrossThreadCounts) {
  Pcg32 rng(24);
  std::vector<std::int32_t> rows = {1, 5, 0, 9};
  auto p = MakeProblem(rows, 300, 16, rng);
  ComputeContext ctx1({.num_threads = 1});
  ComputeContext ctx4({.num_threads = 4});
  auto a = p.y_init;
  SgmvShrink(p.Args(a), ctx1);
  auto b = p.y_init;
  SgmvShrink(p.Args(b), ctx4);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);

  auto c = p.y_init;
  SgmvExpand(p.Args(c), ctx1);
  auto d = p.y_init;
  SgmvExpand(p.Args(d), ctx4);
  for (std::size_t i = 0; i < c.size(); ++i) ASSERT_EQ(c[i], d[i]);
}

TEST(SgmvDeathTest, MismatchedSpansAbort) {
  std::vector<float> x(8), y(3);  // wrong y size
  Tensor<f16> w({4, 2});
  const f16* ptr = w.raw();
  std::vector<std::int32_t> seg = {0, 2};
  SgmvArgs args{y, x, std::span<const f16* const>(&ptr, 1), seg, 4, 2};
  EXPECT_DEATH(SgmvShrink(args), "PUNICA_CHECK");
}

}  // namespace
}  // namespace punica
