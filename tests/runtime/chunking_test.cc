// SplitPrefillChunks is the ONE chunked-prefill split definition every tier
// steps with (numeric Engine, simulated GpuRunner, closed-loop text-gen
// simulator). These tests pin its semantics and assert the two serving
// tiers realize identical chunk sequences for the same workload — the
// "shared definition" contract of the chunked-prefill substrate.
#include "runtime/chunking.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gpu/costmodel.h"
#include "gpu/specs.h"
#include "model/config.h"
#include "runtime/engine.h"
#include "runtime/runner.h"

namespace punica {
namespace {

std::vector<std::int64_t> Split(std::vector<std::int64_t> remaining,
                                std::int64_t decodes, std::int64_t budget) {
  return SplitPrefillChunks(remaining, decodes, budget);
}

TEST(SplitPrefillChunksTest, UnlimitedBudgetRunsWholeSuffixes) {
  EXPECT_EQ(Split({100, 7}, 5, 0), (std::vector<std::int64_t>{100, 7}));
  EXPECT_EQ(Split({100}, 31, -3), (std::vector<std::int64_t>{100}));
}

TEST(SplitPrefillChunksTest, DecodesComeOffTheTopOfTheBudget) {
  // 64-token budget, 16 decodes → 48 prefill tokens FCFS.
  EXPECT_EQ(Split({100}, 16, 64), (std::vector<std::int64_t>{48}));
  EXPECT_EQ(Split({30, 100}, 16, 64), (std::vector<std::int64_t>{30, 18}));
}

TEST(SplitPrefillChunksTest, BudgetExhaustedDefersLaterPrefills) {
  EXPECT_EQ(Split({100, 50}, 0, 64), (std::vector<std::int64_t>{64, 0}));
  EXPECT_EQ(Split({64, 50}, 0, 64), (std::vector<std::int64_t>{64, 0}));
}

TEST(SplitPrefillChunksTest, ProgressFloorWhenDecodesSaturateBudget) {
  // Decodes alone exceed the budget: the head prefill still gets one token,
  // later prefills get none — prefill can never starve behind a full
  // decode batch.
  EXPECT_EQ(Split({100, 50}, 64, 64), (std::vector<std::int64_t>{1, 0}));
  EXPECT_EQ(Split({100}, 1000, 8), (std::vector<std::int64_t>{1}));
}

TEST(SplitPrefillChunksTest, ChunksNeverExceedRemaining) {
  EXPECT_EQ(Split({3, 2, 10}, 0, 8), (std::vector<std::int64_t>{3, 2, 3}));
}

TEST(SplitPrefillChunksTest, NoPrefillsIsEmpty) {
  EXPECT_TRUE(Split({}, 12, 64).empty());
}

/// Cross-tier agreement: a single long prefill stepped under the same
/// budget must produce the same per-step prefill-token sequence on the
/// numeric Engine and the simulated GpuRunner — both call the shared
/// split, and neither may drift from it.
TEST(SplitPrefillChunksTest, EngineAndRunnerRealizeIdenticalChunkSequences) {
  constexpr std::int64_t kBudget = 24;
  constexpr int kPromptLen = 100;

  // Numeric tier.
  LlamaModel model(TinyLlama(), 11);
  Engine engine(&model, model.MakeKvConfig(/*num_pages=*/64),
                EngineConfig{.max_step_tokens = kBudget,
                             .enable_prefix_cache = false});
  std::vector<std::int32_t> prompt(kPromptLen);
  for (int i = 0; i < kPromptLen; ++i) prompt[i] = (i * 7 + 3) % 97;
  engine.AddRequest({.prompt_tokens = prompt, .max_new_tokens = 2});
  std::vector<int> engine_chunks;
  while (engine.HasWork()) {
    StepResult r = engine.Step();
    if (r.prefill_tokens > 0) engine_chunks.push_back(r.prefill_tokens);
  }

  // Simulated tier, identical shape: one cold prefill, no decodes.
  CostModel cm((A100Sxm80GB()));
  GpuRunner runner(0,
                   {.max_step_tokens = kBudget,
                    .kv_capacity_tokens = 4096,
                    .enable_prefix_cache = false},
                   Llama7B(), &cm);
  ServingRequest req;
  req.id = 1;
  req.lora_id = -1;
  req.prompt_len = kPromptLen;
  req.output_len = 2;
  runner.Admit(&req, 0.0);
  std::vector<int> runner_chunks;
  double now = 0.0;
  while (runner.HasAnyWork()) {
    StepResult r = runner.Step(now);
    now += r.latency;
    if (r.prefill_tokens > 0) runner_chunks.push_back(r.prefill_tokens);
  }

  EXPECT_EQ(engine_chunks, runner_chunks);
  // And the sequence is what the shared definition says: full-budget
  // chunks (no decodes in flight), then the 4-token remainder.
  EXPECT_EQ(engine_chunks, (std::vector<int>{24, 24, 24, 24, 4}));
}

}  // namespace
}  // namespace punica
