#include "runtime/engine.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "model/llama.h"

namespace punica {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : model_(TinyLlama(), 99) {
    model_.AddLora(0, 8, 1);
    model_.AddLora(1, 8, 2);
  }

  Engine MakeEngine(int max_batch = 4, int prefill_limit = 1) {
    EngineConfig cfg;
    cfg.max_batch_size = max_batch;
    cfg.prefill_limit = prefill_limit;
    return Engine(&model_, model_.MakeKvConfig(256), cfg);
  }

  LlamaModel model_;
};

TEST_F(EngineTest, EmptyEngineNoWork) {
  Engine e = MakeEngine();
  EXPECT_FALSE(e.HasWork());
  EXPECT_TRUE(e.CanAdmit());
  EXPECT_EQ(e.working_set_size(), 0);
  auto r = e.Step();
  EXPECT_EQ(r.batch_size, 0);
  EXPECT_TRUE(r.emitted.empty());
}

TEST_F(EngineTest, PrefillEmitsFirstToken) {
  Engine e = MakeEngine();
  RequestHandle id = e.AddRequest(
      {.lora = 0, .prompt_tokens = {1, 2, 3}, .max_new_tokens = 5});
  EXPECT_TRUE(id.valid());
  auto r = e.Step();
  EXPECT_EQ(r.batch_size, 1);
  EXPECT_EQ(r.prefill_requests, 1);
  EXPECT_EQ(r.prefill_tokens, 3);
  ASSERT_EQ(r.emitted.size(), 1u);
  EXPECT_EQ(r.emitted[0].request_id, id.id());
  EXPECT_EQ(e.Output(id)->size(), 1u);
  EXPECT_EQ(e.Output(id)->front(), r.emitted[0].token);
}

TEST_F(EngineTest, PrefillLimitRespected) {
  Engine e = MakeEngine(4, 2);
  e.AddRequest({.lora = 0, .prompt_tokens = {1}, .max_new_tokens = 4});
  e.AddRequest({.lora = 0, .prompt_tokens = {2}, .max_new_tokens = 4});
  e.AddRequest({.lora = 1, .prompt_tokens = {3}, .max_new_tokens = 4});
  auto r = e.Step();
  EXPECT_EQ(r.prefill_requests, 2);  // limit 2
  EXPECT_EQ(r.batch_size, 2);
  auto r2 = e.Step();
  EXPECT_EQ(r2.prefill_requests, 1);
  EXPECT_EQ(r2.batch_size, 3);
}

TEST_F(EngineTest, OutputOfUnknownIdIsNull) {
  Engine e = MakeEngine();
  EXPECT_EQ(e.Output(123), nullptr);
  EXPECT_EQ(e.Output(RequestHandle()), nullptr);
}

TEST_F(EngineTest, OutputsPersistAfterFinish) {
  Engine e = MakeEngine();
  RequestHandle id =
      e.AddRequest({.lora = 0, .prompt_tokens = {9}, .max_new_tokens = 3});
  while (e.HasWork()) e.Step();
  ASSERT_NE(e.Output(id), nullptr);
  EXPECT_EQ(e.Output(id)->size(), 3u);
}

TEST_F(EngineTest, SameLoraRequestsShareOneSegment) {
  Engine e = MakeEngine(4);
  e.AddRequest({.lora = 0, .prompt_tokens = {1}, .max_new_tokens = 8});
  e.AddRequest({.lora = 0, .prompt_tokens = {2}, .max_new_tokens = 8});
  e.AddRequest({.lora = 0, .prompt_tokens = {3}, .max_new_tokens = 8});
  for (int i = 0; i < 3; ++i) e.Step();  // drain prefills
  auto r = e.Step();
  EXPECT_EQ(r.batch_size, 3);
  EXPECT_EQ(r.num_segments, 1);  // all rows share lora 0
}

TEST_F(EngineTest, BackboneRowsExcludedFromLoraSegments) {
  Engine e = MakeEngine(4);
  e.AddRequest({.lora = -1, .prompt_tokens = {1}, .max_new_tokens = 8});
  e.AddRequest({.lora = 0, .prompt_tokens = {2}, .max_new_tokens = 8});
  for (int i = 0; i < 2; ++i) e.Step();
  auto r = e.Step();
  EXPECT_EQ(r.batch_size, 2);
  // Two segments in the token ordering (backbone id -1 and lora 0); the
  // backbone segment carries no adapter.
  EXPECT_EQ(r.num_segments, 2);
}

TEST_F(EngineTest, PrefillTailSharesSegmentWithDecodeHead) {
  // Paper §6: "The tail of Prefill requests and the head of Decode requests
  // can share a LoRA model if possible."
  Engine e = MakeEngine(4);
  e.AddRequest({.lora = 1, .prompt_tokens = {1, 2}, .max_new_tokens = 8});
  e.Step();  // prefilled, now decoding with lora 1
  // Same lora, needs prefill.
  e.AddRequest({.lora = 1, .prompt_tokens = {3, 4}, .max_new_tokens = 8});
  auto r = e.Step();  // prefill(lora 1) + decode(lora 1)
  EXPECT_EQ(r.batch_size, 2);
  EXPECT_EQ(r.prefill_requests, 1);
  EXPECT_EQ(r.num_segments, 1);  // shared segment across the boundary
}

TEST_F(EngineTest, CancelFreesCapacity) {
  Engine e = MakeEngine(2);
  RequestHandle a =
      e.AddRequest({.lora = 0, .prompt_tokens = {1}, .max_new_tokens = 50});
  e.AddRequest({.lora = 1, .prompt_tokens = {2}, .max_new_tokens = 50});
  EXPECT_FALSE(e.CanAdmit());
  auto snap = e.Cancel(a);
  ASSERT_TRUE(snap.has_value());
  EXPECT_TRUE(e.CanAdmit());
  EXPECT_EQ(e.working_set_size(), 1);
}

TEST_F(EngineTest, StepAfterAllCancelledIsEmpty) {
  Engine e = MakeEngine();
  RequestHandle a =
      e.AddRequest({.lora = 0, .prompt_tokens = {1}, .max_new_tokens = 5});
  e.Cancel(a);
  EXPECT_FALSE(e.HasWork());
  auto r = e.Step();
  EXPECT_EQ(r.batch_size, 0);
}

TEST_F(EngineTest, ManyShortRequestsAllFinish) {
  Engine e = MakeEngine(4);
  std::vector<RequestHandle> ids;
  int finished = 0;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(e.AddRequest({.lora = i % 2,
                                .prompt_tokens = {i + 1},
                                .max_new_tokens = 2 + i}));
  }
  while (e.HasWork()) {
    finished += static_cast<int>(e.Step().finished.size());
  }
  EXPECT_EQ(finished, 4);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(e.Output(ids[i])->size(), 2 + i);
  }
}

TEST_F(EngineTest, EmittedTokensMatchOutputs) {
  Engine e = MakeEngine(3);
  RequestHandle a =
      e.AddRequest({.lora = 0, .prompt_tokens = {5, 6}, .max_new_tokens = 4});
  RequestHandle b =
      e.AddRequest({.lora = 1, .prompt_tokens = {7}, .max_new_tokens = 4});
  std::map<std::int64_t, std::vector<std::int32_t>> streamed;
  while (e.HasWork()) {
    for (auto [id, tok] : e.Step().emitted) {
      streamed[id].push_back(tok);
    }
  }
  EXPECT_EQ(streamed[a.id()], *e.Output(a));
  EXPECT_EQ(streamed[b.id()], *e.Output(b));
}

TEST_F(EngineTest, PerRequestEosStopsEarly) {
  // Find what the model emits unconstrained, then resubmit with the first
  // token that differs from the opener (streams may repeat a token) as a
  // per-request EOS: generation must stop right there.
  Engine free_engine = MakeEngine();
  RequestHandle free_id = free_engine.AddRequest(
      {.lora = 0, .prompt_tokens = {7, 7}, .max_new_tokens = 6});
  while (free_engine.HasWork()) free_engine.Step();
  const std::vector<std::int32_t>& free_run = *free_engine.Output(free_id);
  std::size_t stop_at = 1;
  while (stop_at < free_run.size() && free_run[stop_at] == free_run[0]) {
    ++stop_at;
  }
  ASSERT_LT(stop_at, free_run.size());
  std::int32_t stop = free_run[stop_at];

  Engine e = MakeEngine();
  RequestHandle id = e.AddRequest({.lora = 0,
                                   .prompt_tokens = {7, 7},
                                   .max_new_tokens = 6,
                                   .eos_token = stop});
  while (e.HasWork()) e.Step();
  EXPECT_EQ(e.Output(id)->size(), stop_at + 1);
  EXPECT_EQ(e.Output(id)->back(), stop);
}

TEST_F(EngineTest, SpecEosMustAgreeWithEngineEos) {
  EngineConfig cfg;
  cfg.max_batch_size = 2;
  cfg.eos_token = 42;
  Engine e(&model_, model_.MakeKvConfig(64), cfg);
  // Matching spec EOS is fine; a conflicting one aborts.
  e.AddRequest({.lora = 0,
                .prompt_tokens = {1},
                .max_new_tokens = 2,
                .eos_token = 42});
  EXPECT_DEATH(e.AddRequest({.lora = 0,
                             .prompt_tokens = {2},
                             .max_new_tokens = 2,
                             .eos_token = 7}),
               "disagree on the EOS");
}

TEST_F(EngineTest, SnapshotCarriesResolvedEos) {
  EngineConfig cfg;
  cfg.max_batch_size = 2;
  cfg.eos_token = 42;
  Engine e(&model_, model_.MakeKvConfig(64), cfg);
  RequestHandle id =
      e.AddRequest({.lora = 0, .prompt_tokens = {1, 2}, .max_new_tokens = 9});
  e.Step();
  auto snap = e.Cancel(id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->eos_token, 42);  // engine-wide default was resolved in

  // A destination with a different engine-wide EOS must refuse the
  // migration instead of silently changing the stop condition.
  EngineConfig other;
  other.max_batch_size = 2;
  other.eos_token = 7;
  Engine dest(&model_, model_.MakeKvConfig(64), other);
  EXPECT_DEATH(dest.AddMigrated(*snap), "changed the EOS");
}

TEST_F(EngineTest, DISABLED_KvExhaustionAborts) {
  // Documented behaviour: the engine aborts rather than silently dropping
  // tokens when the cache is exhausted (callers must migrate first). Kept
  // disabled by default because death tests on large state are slow.
  Engine tiny(&model_, model_.MakeKvConfig(1), EngineConfig{});
  tiny.AddRequest(
      {.lora = 0, .prompt_tokens = {1, 2, 3}, .max_new_tokens = 100});
  EXPECT_DEATH({
    while (tiny.HasWork()) tiny.Step();
  }, "KvCache exhausted");
}

TEST_F(EngineTest, EvictionVictimQueryNewestFirst) {
  // Tight cache: page demand of the planned step exceeds the free pool, so
  // the newest request must be named as the victim.
  Engine e(&model_, model_.MakeKvConfig(/*num_pages=*/3, /*page_size=*/4),
           EngineConfig{.max_batch_size = 4});
  RequestHandle a = e.AddRequest(
      {.lora = 0, .prompt_tokens = {1, 2, 3, 4, 5, 6}, .max_new_tokens = 20});
  e.Step();  // a holds 2 pages (6 tokens), decodes grow it
  EXPECT_TRUE(e.SelectEvictionVictims().empty());
  RequestHandle b = e.AddRequest(
      {.lora = 0, .prompt_tokens = {9, 9, 9, 9, 9}, .max_new_tokens = 20});
  // b's prefill needs 2 pages; only 1 is free → b (newest) is the victim.
  auto victims = e.SelectEvictionVictims();
  ASSERT_FALSE(victims.empty());
  EXPECT_EQ(victims[0], b.id());
  EXPECT_NE(victims[0], a.id());
}

// --- Shared-prefix KV cache ---

TEST_F(EngineTest, SharedPromptSecondRequestPrefillsOnlySuffix) {
  Engine e = MakeEngine();
  const std::vector<std::int32_t> sys = {7, 8, 9, 10, 11, 12, 13, 14,
                                         15, 16, 17, 18};
  RequestHandle a =
      e.AddRequest({.lora = 0, .prompt_tokens = sys, .max_new_tokens = 3});
  while (e.HasWork()) e.Step();
  std::vector<std::int32_t> expected = *e.Output(a);

  // Same tenant prompt again: the prefill must alias the cached prefix and
  // compute only the final token row (≥ 50% prefill-token reduction — here
  // 11 of 12 tokens are served from cache).
  RequestHandle b =
      e.AddRequest({.lora = 0, .prompt_tokens = sys, .max_new_tokens = 3});
  auto r = e.Step();
  EXPECT_EQ(r.prefill_requests, 1);
  EXPECT_EQ(r.prefill_tokens, 1);
  EXPECT_EQ(r.prefix_hit_tokens, 11);
  while (e.HasWork()) e.Step();
  // Bit-identical to the cold run — cached K/V are exactly the bits a cold
  // prefill would have written.
  EXPECT_EQ(*e.Output(b), expected);

  PrefixCacheStats s = e.prefix_cache_stats();
  EXPECT_EQ(s.lookups, 2);
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.hit_tokens, 11);
  EXPECT_GE(s.insertions, 1);
  EXPECT_GT(s.TokenSaveRate(), 0.4);
}

TEST_F(EngineTest, PrefixHitMidBatchMatchesColdEngine) {
  // Hits with other requests in flight: the batch mixes a suffix-prefill
  // with decodes. Streams must equal a cache-disabled engine's.
  auto run = [&](bool enable) {
    EngineConfig cfg;
    cfg.max_batch_size = 4;
    cfg.enable_prefix_cache = enable;
    Engine e(&model_, model_.MakeKvConfig(256), cfg);
    std::vector<RequestHandle> ids;
    ids.push_back(e.AddRequest({.lora = 0,
                                .prompt_tokens = {5, 5, 5, 5, 5, 5, 5, 5},
                                .max_new_tokens = 8}));
    ids.push_back(e.AddRequest(
        {.lora = 1, .prompt_tokens = {9, 1, 9}, .max_new_tokens = 6}));
    e.Step();
    e.Step();
    // Same tenant prompt as the first request, admitted mid-flight.
    ids.push_back(e.AddRequest({.lora = 0,
                                .prompt_tokens = {5, 5, 5, 5, 5, 5, 5, 5},
                                .max_new_tokens = 8}));
    while (e.HasWork()) e.Step();
    std::vector<std::vector<std::int32_t>> outs;
    for (auto id : ids) outs.push_back(*e.Output(id));
    return outs;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST_F(EngineTest, CancelRegistersChainForCheapMigrationRebuild) {
  const std::vector<std::int32_t> prompt = {3, 1, 4, 1, 5, 9, 2, 6};
  // Uninterrupted reference.
  Engine ref = MakeEngine();
  RequestHandle r0 = ref.AddRequest(
      {.lora = 0, .prompt_tokens = prompt, .max_new_tokens = 10});
  while (ref.HasWork()) ref.Step();
  std::vector<std::int32_t> expected = *ref.Output(r0);

  Engine e = MakeEngine();
  RequestHandle id = e.AddRequest(
      {.lora = 0, .prompt_tokens = prompt, .max_new_tokens = 10});
  for (int i = 0; i < 5; ++i) e.Step();  // prefill + 4 decodes
  auto snap = e.Cancel(id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->generated.size(), 5u);

  // The evicted chain stays cached: the rebuild prefills one token instead
  // of prompt + generated.
  RequestHandle back = e.AddMigrated(*snap);
  auto r = e.Step();
  EXPECT_EQ(r.prefill_tokens, 1);
  // The cancelled sequence covered prompt (8) + 4 decoded positions = 12
  // tokens; the 13-token rebuild chain hits all of them.
  EXPECT_EQ(r.prefix_hit_tokens, 12);
  while (e.HasWork()) e.Step();
  EXPECT_EQ(*e.Output(back), expected);
}

TEST_F(EngineTest, CacheYieldsUnderPagePressureInsteadOfAborting) {
  // Pool sized so that cached prefixes must be evicted to run the second
  // request — the engine reclaims LRU entries instead of aborting or
  // naming migration victims.
  Engine e(&model_, model_.MakeKvConfig(/*num_pages=*/6, /*page_size=*/4),
           EngineConfig{.max_batch_size = 2});
  RequestHandle a = e.AddRequest({.lora = 0,
                                  .prompt_tokens = {1, 2, 3, 4, 5, 6, 7, 8},
                                  .max_new_tokens = 4});
  while (e.HasWork()) e.Step();
  EXPECT_GT(e.prefix_cache_stats().cached_entries, 0);

  RequestHandle b = e.AddRequest(
      {.lora = 1,
       .prompt_tokens = {21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32,
                         33, 34, 35, 36},
       .max_new_tokens = 6});
  while (e.HasWork()) e.Step();
  ASSERT_NE(e.Output(b), nullptr);
  EXPECT_EQ(e.Output(b)->size(), 6u);
  EXPECT_GT(e.prefix_cache_stats().evictions, 0);
  (void)a;
}

TEST_F(EngineTest, AdmissionFailurePathsLeakNothing) {
  // The admission-failure audit: every admission-path check fires before
  // any KvCache mutation, so cancel-after-admit always restores the pool
  // regardless of fork/cold path, and a full working set never strands
  // pages.
  Engine e(&model_, model_.MakeKvConfig(64, 4),
           EngineConfig{.max_batch_size = 2});
  std::int32_t before = e.AvailablePages();
  RequestHandle a = e.AddRequest({.lora = 0,
                                  .prompt_tokens = {1, 2, 3, 4, 5, 6},
                                  .max_new_tokens = 8});
  e.Step();
  // Admit a fork-path request (hits a's registered prompt), then cancel it
  // before its prefill ever runs.
  RequestHandle b = e.AddRequest({.lora = 0,
                                  .prompt_tokens = {1, 2, 3, 4, 5, 6},
                                  .max_new_tokens = 8});
  EXPECT_FALSE(e.CanAdmit());  // working set full — callers must queue
  auto snap = e.Cancel(b);
  ASSERT_TRUE(snap.has_value());
  EXPECT_TRUE(snap->generated.empty());
  auto snap_a = e.Cancel(a);
  ASSERT_TRUE(snap_a.has_value());
  // All request references released; whatever the cache retains is
  // reclaimable.
  EXPECT_EQ(e.AvailablePages(), before);
}

TEST_F(EngineTest, HitEntryNotDoubleCountedAsReclaimablePages) {
  // Regression: CanAdmitPages must not count the hit's own entry as
  // evictable headroom while simultaneously netting out its aliased
  // pages — that admits infeasible requests which then livelock through
  // the migration path.
  Engine e(&model_, model_.MakeKvConfig(/*num_pages=*/3, /*page_size=*/4),
           EngineConfig{.max_batch_size = 2});
  const std::vector<std::int32_t> prompt = {1, 2, 3, 4, 5, 6, 7, 8};
  RequestHandle a =
      e.AddRequest({.lora = 0, .prompt_tokens = prompt, .max_new_tokens = 1});
  while (e.HasWork()) e.Step();
  (void)a;
  // The cached prompt holds 2 pages; 1 page is free.
  ASSERT_EQ(e.kv_free_pages(), 1);
  ASSERT_EQ(e.PrefixHitTokens(0, prompt, {}), 7);
  // The naive math says feasible (needs 2 net pages ≤ 1 free + 2
  // "reclaimable") — but those reclaimable pages ARE the hit:
  EXPECT_LE(e.PagesNeededForAdmission(0, prompt, {}), e.AvailablePages());
  // CanAdmitPages excludes the hit's entry and refuses.
  EXPECT_FALSE(e.CanAdmitPages(0, prompt, {}));
  // A request that fits without the contradiction is still admissible.
  const std::vector<std::int32_t> small = {1, 2, 3};
  EXPECT_TRUE(e.CanAdmitPages(0, small, {}));
}

TEST_F(EngineTest, DuplicateRegistrationAtCapDoesNotThrash) {
  // Regression: at max_cached_prefixes, re-registering an already-cached
  // prompt (the steady-state hot-tenant case) must not evict unrelated
  // entries.
  EngineConfig cfg;
  cfg.max_batch_size = 4;
  cfg.max_cached_prefixes = 2;
  Engine e(&model_, model_.MakeKvConfig(256), cfg);
  const std::vector<std::int32_t> pa = {1, 1, 1, 1, 1};
  const std::vector<std::int32_t> pb = {2, 2, 2, 2, 2};
  auto run = [&](const std::vector<std::int32_t>& p) {
    e.AddRequest({.lora = 0, .prompt_tokens = p, .max_new_tokens = 2});
    while (e.HasWork()) e.Step();
  };
  run(pa);
  run(pb);  // cache at cap: {pa, pb}
  for (int i = 0; i < 3; ++i) run(pa);  // hot tenant re-registers pa
  PrefixCacheStats s = e.prefix_cache_stats();
  EXPECT_EQ(s.evictions, 0);
  EXPECT_EQ(s.cached_entries, 2);
  EXPECT_EQ(e.PrefixHitTokens(0, pb, {}), 4);  // pb survived
}

TEST_F(EngineTest, PrefixHitTokensQueryIsPureAndPageAware) {
  Engine e(&model_, model_.MakeKvConfig(64, /*page_size=*/4), EngineConfig{});
  const std::vector<std::int32_t> prompt = {4, 4, 4, 4, 4, 4, 4, 4};
  EXPECT_EQ(e.PrefixHitTokens(0, prompt, {}), 0);
  auto lookups_before = e.prefix_cache_stats().lookups;
  RequestHandle id =
      e.AddRequest({.lora = 0, .prompt_tokens = prompt, .max_new_tokens = 2});
  while (e.HasWork()) e.Step();
  (void)id;
  EXPECT_EQ(e.PrefixHitTokens(0, prompt, {}), 7);
  // Same text under a different adapter shares nothing: K/V bits carry the
  // LoRA addon.
  EXPECT_EQ(e.PrefixHitTokens(1, prompt, {}), 0);
  // The query is pure: it never counts as a lookup.
  EXPECT_EQ(e.prefix_cache_stats().lookups, lookups_before + 1);
  // Admission needs fewer pages with the prefix cached than the cold
  // formula would claim.
  EXPECT_LT(e.PagesNeededForAdmission(0, prompt, {}),
            e.kv_config().PagesNeeded(
                static_cast<std::int64_t>(prompt.size()) + 1));
}

// --- Chunked prefill (EngineConfig::max_step_tokens) ---

std::vector<std::int32_t> LongPrompt(int len) {
  std::vector<std::int32_t> p(static_cast<std::size_t>(len));
  for (int i = 0; i < len; ++i) {
    p[static_cast<std::size_t>(i)] = (i * 13 + 7) % 97;
  }
  return p;
}

TEST_F(EngineTest, ChunkedPrefillEmitsNothingUntilFinalChunk) {
  EngineConfig cfg;
  cfg.max_step_tokens = 8;
  Engine e(&model_, model_.MakeKvConfig(256), cfg);
  RequestHandle id = e.AddRequest(
      {.lora = 0, .prompt_tokens = LongPrompt(20), .max_new_tokens = 3});
  // 20 tokens at budget 8: chunks of 8, 8, 4 — the first two steps carry a
  // partial chunk and emit nothing.
  for (int expected : {8, 8}) {
    auto r = e.Step();
    EXPECT_EQ(r.prefill_tokens, expected);
    EXPECT_EQ(r.partial_prefills, 1);
    EXPECT_TRUE(r.emitted.empty());
    EXPECT_EQ(r.new_tokens, 0);
  }
  EXPECT_EQ(e.Output(id)->size(), 0u);
  auto r = e.Step();
  EXPECT_EQ(r.prefill_tokens, 4);
  EXPECT_EQ(r.partial_prefills, 0);
  ASSERT_EQ(r.emitted.size(), 1u);
  EXPECT_EQ(r.emitted[0].request_id, id.id());
  EXPECT_EQ(r.deferred_prefill_tokens, 0);
}

TEST_F(EngineTest, ChunkedStreamsBitIdenticalToUnchunked) {
  auto run = [&](std::int64_t budget) {
    EngineConfig cfg;
    cfg.max_step_tokens = budget;
    Engine e(&model_, model_.MakeKvConfig(256), cfg);
    RequestHandle a = e.AddRequest(
        {.lora = 0, .prompt_tokens = LongPrompt(33), .max_new_tokens = 6});
    RequestHandle b = e.AddRequest(
        {.lora = 1, .prompt_tokens = {4, 2}, .max_new_tokens = 8});
    while (e.HasWork()) e.Step();
    return std::vector<std::vector<std::int32_t>>{*e.Output(a),
                                                  *e.Output(b)};
  };
  auto unchunked = run(0);
  for (std::int64_t budget : {5, 16, 128}) {
    EXPECT_EQ(run(budget), unchunked) << "budget " << budget;
  }
}

TEST_F(EngineTest, DecodesShareEveryStepWithPrefillChunks) {
  EngineConfig cfg;
  cfg.max_step_tokens = 6;
  Engine e(&model_, model_.MakeKvConfig(256), cfg);
  // Get one request decoding first.
  RequestHandle dec = e.AddRequest(
      {.lora = 0, .prompt_tokens = {1, 2}, .max_new_tokens = 32});
  e.Step();
  // A long prompt arrives: every subsequent step must mix a prefill chunk
  // with the in-flight decode (no decode stall behind the prompt).
  e.AddRequest(
      {.lora = 0, .prompt_tokens = LongPrompt(20), .max_new_tokens = 2});
  std::size_t before = e.Output(dec)->size();
  int chunk_steps = 0;
  while (e.Output(dec) != nullptr &&
         static_cast<int>(e.Output(dec)->size()) < 8) {
    auto r = e.Step();
    if (r.partial_prefills > 0) {
      ++chunk_steps;
      // The decode emitted in the same invocation as the partial chunk.
      ASSERT_EQ(r.emitted.size(), 1u);
      EXPECT_EQ(r.emitted[0].request_id, dec.id());
      // Budget 6 with one decode row → 5-token chunks.
      EXPECT_EQ(r.prefill_tokens, 5);
    }
  }
  EXPECT_GT(chunk_steps, 2);
  EXPECT_GT(e.Output(dec)->size(), before);
}

TEST_F(EngineTest, MidPrefillCancelRegistersPartialChainAndRebuilds) {
  const std::vector<std::int32_t> prompt = LongPrompt(24);
  // Uninterrupted reference stream.
  Engine ref = MakeEngine();
  RequestHandle r0 = ref.AddRequest(
      {.lora = 0, .prompt_tokens = prompt, .max_new_tokens = 5});
  while (ref.HasWork()) ref.Step();
  std::vector<std::int32_t> expected = *ref.Output(r0);

  EngineConfig cfg;
  cfg.max_step_tokens = 8;
  Engine e(&model_, model_.MakeKvConfig(256), cfg);
  RequestHandle id = e.AddRequest(
      {.lora = 0, .prompt_tokens = prompt, .max_new_tokens = 5});
  e.Step();  // one 8-token chunk; the prefill is mid-flight
  auto snap = e.Cancel(id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_TRUE(snap->generated.empty());  // no token emitted yet

  // The partially-prefilled chain was registered: the rebuild forks the 8
  // consumed tokens and prefills only the remaining 16.
  EXPECT_EQ(e.PrefixHitTokens(0, prompt, {}), 8);
  RequestHandle back = e.AddMigrated(*snap);
  auto r = e.Step();
  EXPECT_EQ(r.prefix_hit_tokens, 8);
  EXPECT_EQ(r.prefill_tokens, 8);  // budget-sized chunk of the suffix
  while (e.HasWork()) e.Step();
  EXPECT_EQ(*e.Output(back), expected);
}

TEST_F(EngineTest, VictimProjectionIsChunkGranular) {
  // Pool sized so the WHOLE prompt cannot fit next to the resident
  // request, but the next chunk can: with chunked prefill the victim
  // query must not name victims for pages the next step does not demand.
  EngineConfig cfg;
  cfg.max_step_tokens = 8;
  cfg.enable_prefix_cache = false;
  Engine e(&model_, model_.MakeKvConfig(/*num_pages=*/6, /*page_size=*/4),
           cfg);
  RequestHandle small = e.AddRequest(
      {.lora = 0, .prompt_tokens = {1, 2, 3}, .max_new_tokens = 2});
  e.Step();  // small prefilled: 1 page (3 tokens of 4 slots)
  e.AddRequest(
      {.lora = 0, .prompt_tokens = LongPrompt(16), .max_new_tokens = 2});
  // An atomic projection would price the whole 16-token prefill + a decode
  // slot (5 pages) against the 5 free pages alongside small's growth. The
  // chunked projection demands only the next chunk: budget 8 minus one
  // decode row = 7 tokens → 2 pages, plus small's decode (0 new pages:
  // 3+1 fits its page). 5 free → no victims.
  EXPECT_TRUE(e.SelectEvictionVictims().empty());
  auto r = e.Step();
  EXPECT_EQ(r.prefill_tokens, 7);  // budget 8 minus one decode row
  (void)small;
}

}  // namespace
}  // namespace punica
