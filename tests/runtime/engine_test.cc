#include "runtime/engine.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "model/llama.h"

namespace punica {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : model_(TinyLlama(), 99) {
    model_.AddLora(0, 8, 1);
    model_.AddLora(1, 8, 2);
  }

  Engine MakeEngine(int max_batch = 4, int prefill_limit = 1) {
    EngineConfig cfg;
    cfg.max_batch_size = max_batch;
    cfg.prefill_limit = prefill_limit;
    return Engine(&model_, model_.MakeKvConfig(256), cfg);
  }

  LlamaModel model_;
};

TEST_F(EngineTest, EmptyEngineNoWork) {
  Engine e = MakeEngine();
  EXPECT_FALSE(e.HasWork());
  EXPECT_TRUE(e.CanAdmit());
  EXPECT_EQ(e.working_set_size(), 0);
  auto r = e.Step();
  EXPECT_EQ(r.batch_size, 0);
  EXPECT_TRUE(r.emitted.empty());
}

TEST_F(EngineTest, PrefillEmitsFirstToken) {
  Engine e = MakeEngine();
  RequestHandle id = e.AddRequest(
      {.lora = 0, .prompt_tokens = {1, 2, 3}, .max_new_tokens = 5});
  EXPECT_TRUE(id.valid());
  auto r = e.Step();
  EXPECT_EQ(r.batch_size, 1);
  EXPECT_EQ(r.prefill_requests, 1);
  EXPECT_EQ(r.prefill_tokens, 3);
  ASSERT_EQ(r.emitted.size(), 1u);
  EXPECT_EQ(r.emitted[0].request_id, id.id());
  EXPECT_EQ(e.Output(id)->size(), 1u);
  EXPECT_EQ(e.Output(id)->front(), r.emitted[0].token);
}

TEST_F(EngineTest, PrefillLimitRespected) {
  Engine e = MakeEngine(4, 2);
  e.AddRequest({.lora = 0, .prompt_tokens = {1}, .max_new_tokens = 4});
  e.AddRequest({.lora = 0, .prompt_tokens = {2}, .max_new_tokens = 4});
  e.AddRequest({.lora = 1, .prompt_tokens = {3}, .max_new_tokens = 4});
  auto r = e.Step();
  EXPECT_EQ(r.prefill_requests, 2);  // limit 2
  EXPECT_EQ(r.batch_size, 2);
  auto r2 = e.Step();
  EXPECT_EQ(r2.prefill_requests, 1);
  EXPECT_EQ(r2.batch_size, 3);
}

TEST_F(EngineTest, OutputOfUnknownIdIsNull) {
  Engine e = MakeEngine();
  EXPECT_EQ(e.Output(123), nullptr);
  EXPECT_EQ(e.Output(RequestHandle()), nullptr);
}

TEST_F(EngineTest, OutputsPersistAfterFinish) {
  Engine e = MakeEngine();
  RequestHandle id =
      e.AddRequest({.lora = 0, .prompt_tokens = {9}, .max_new_tokens = 3});
  while (e.HasWork()) e.Step();
  ASSERT_NE(e.Output(id), nullptr);
  EXPECT_EQ(e.Output(id)->size(), 3u);
}

TEST_F(EngineTest, SameLoraRequestsShareOneSegment) {
  Engine e = MakeEngine(4);
  e.AddRequest({.lora = 0, .prompt_tokens = {1}, .max_new_tokens = 8});
  e.AddRequest({.lora = 0, .prompt_tokens = {2}, .max_new_tokens = 8});
  e.AddRequest({.lora = 0, .prompt_tokens = {3}, .max_new_tokens = 8});
  for (int i = 0; i < 3; ++i) e.Step();  // drain prefills
  auto r = e.Step();
  EXPECT_EQ(r.batch_size, 3);
  EXPECT_EQ(r.num_segments, 1);  // all rows share lora 0
}

TEST_F(EngineTest, BackboneRowsExcludedFromLoraSegments) {
  Engine e = MakeEngine(4);
  e.AddRequest({.lora = -1, .prompt_tokens = {1}, .max_new_tokens = 8});
  e.AddRequest({.lora = 0, .prompt_tokens = {2}, .max_new_tokens = 8});
  for (int i = 0; i < 2; ++i) e.Step();
  auto r = e.Step();
  EXPECT_EQ(r.batch_size, 2);
  // Two segments in the token ordering (backbone id -1 and lora 0); the
  // backbone segment carries no adapter.
  EXPECT_EQ(r.num_segments, 2);
}

TEST_F(EngineTest, PrefillTailSharesSegmentWithDecodeHead) {
  // Paper §6: "The tail of Prefill requests and the head of Decode requests
  // can share a LoRA model if possible."
  Engine e = MakeEngine(4);
  e.AddRequest({.lora = 1, .prompt_tokens = {1, 2}, .max_new_tokens = 8});
  e.Step();  // prefilled, now decoding with lora 1
  // Same lora, needs prefill.
  e.AddRequest({.lora = 1, .prompt_tokens = {3, 4}, .max_new_tokens = 8});
  auto r = e.Step();  // prefill(lora 1) + decode(lora 1)
  EXPECT_EQ(r.batch_size, 2);
  EXPECT_EQ(r.prefill_requests, 1);
  EXPECT_EQ(r.num_segments, 1);  // shared segment across the boundary
}

TEST_F(EngineTest, CancelFreesCapacity) {
  Engine e = MakeEngine(2);
  RequestHandle a =
      e.AddRequest({.lora = 0, .prompt_tokens = {1}, .max_new_tokens = 50});
  e.AddRequest({.lora = 1, .prompt_tokens = {2}, .max_new_tokens = 50});
  EXPECT_FALSE(e.CanAdmit());
  auto snap = e.Cancel(a);
  ASSERT_TRUE(snap.has_value());
  EXPECT_TRUE(e.CanAdmit());
  EXPECT_EQ(e.working_set_size(), 1);
}

TEST_F(EngineTest, StepAfterAllCancelledIsEmpty) {
  Engine e = MakeEngine();
  RequestHandle a =
      e.AddRequest({.lora = 0, .prompt_tokens = {1}, .max_new_tokens = 5});
  e.Cancel(a);
  EXPECT_FALSE(e.HasWork());
  auto r = e.Step();
  EXPECT_EQ(r.batch_size, 0);
}

TEST_F(EngineTest, ManyShortRequestsAllFinish) {
  Engine e = MakeEngine(4);
  std::vector<RequestHandle> ids;
  int finished = 0;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(e.AddRequest({.lora = i % 2,
                                .prompt_tokens = {i + 1},
                                .max_new_tokens = 2 + i}));
  }
  while (e.HasWork()) {
    finished += static_cast<int>(e.Step().finished.size());
  }
  EXPECT_EQ(finished, 4);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(e.Output(ids[i])->size(), 2 + i);
  }
}

TEST_F(EngineTest, EmittedTokensMatchOutputs) {
  Engine e = MakeEngine(3);
  RequestHandle a =
      e.AddRequest({.lora = 0, .prompt_tokens = {5, 6}, .max_new_tokens = 4});
  RequestHandle b =
      e.AddRequest({.lora = 1, .prompt_tokens = {7}, .max_new_tokens = 4});
  std::map<std::int64_t, std::vector<std::int32_t>> streamed;
  while (e.HasWork()) {
    for (auto [id, tok] : e.Step().emitted) {
      streamed[id].push_back(tok);
    }
  }
  EXPECT_EQ(streamed[a.id()], *e.Output(a));
  EXPECT_EQ(streamed[b.id()], *e.Output(b));
}

TEST_F(EngineTest, PerRequestEosStopsEarly) {
  // Find what the model emits unconstrained, then resubmit with the second
  // token as a per-request EOS: generation must stop right there.
  Engine free_engine = MakeEngine();
  RequestHandle free_id = free_engine.AddRequest(
      {.lora = 0, .prompt_tokens = {7, 7}, .max_new_tokens = 6});
  while (free_engine.HasWork()) free_engine.Step();
  std::int32_t stop = (*free_engine.Output(free_id))[1];

  Engine e = MakeEngine();
  RequestHandle id = e.AddRequest({.lora = 0,
                                   .prompt_tokens = {7, 7},
                                   .max_new_tokens = 6,
                                   .eos_token = stop});
  while (e.HasWork()) e.Step();
  EXPECT_EQ(e.Output(id)->size(), 2u);
  EXPECT_EQ(e.Output(id)->back(), stop);
}

TEST_F(EngineTest, SpecEosMustAgreeWithEngineEos) {
  EngineConfig cfg;
  cfg.max_batch_size = 2;
  cfg.eos_token = 42;
  Engine e(&model_, model_.MakeKvConfig(64), cfg);
  // Matching spec EOS is fine; a conflicting one aborts.
  e.AddRequest({.lora = 0,
                .prompt_tokens = {1},
                .max_new_tokens = 2,
                .eos_token = 42});
  EXPECT_DEATH(e.AddRequest({.lora = 0,
                             .prompt_tokens = {2},
                             .max_new_tokens = 2,
                             .eos_token = 7}),
               "disagree on the EOS");
}

TEST_F(EngineTest, SnapshotCarriesResolvedEos) {
  EngineConfig cfg;
  cfg.max_batch_size = 2;
  cfg.eos_token = 42;
  Engine e(&model_, model_.MakeKvConfig(64), cfg);
  RequestHandle id =
      e.AddRequest({.lora = 0, .prompt_tokens = {1, 2}, .max_new_tokens = 9});
  e.Step();
  auto snap = e.Cancel(id);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->eos_token, 42);  // engine-wide default was resolved in

  // A destination with a different engine-wide EOS must refuse the
  // migration instead of silently changing the stop condition.
  EngineConfig other;
  other.max_batch_size = 2;
  other.eos_token = 7;
  Engine dest(&model_, model_.MakeKvConfig(64), other);
  EXPECT_DEATH(dest.AddMigrated(*snap), "changed the EOS");
}

TEST_F(EngineTest, DISABLED_KvExhaustionAborts) {
  // Documented behaviour: the engine aborts rather than silently dropping
  // tokens when the cache is exhausted (callers must migrate first). Kept
  // disabled by default because death tests on large state are slow.
  Engine tiny(&model_, model_.MakeKvConfig(1), EngineConfig{});
  tiny.AddRequest(
      {.lora = 0, .prompt_tokens = {1, 2, 3}, .max_new_tokens = 100});
  EXPECT_DEATH({
    while (tiny.HasWork()) tiny.Step();
  }, "KvCache exhausted");
}

TEST_F(EngineTest, EvictionVictimQueryNewestFirst) {
  // Tight cache: page demand of the planned step exceeds the free pool, so
  // the newest request must be named as the victim.
  Engine e(&model_, model_.MakeKvConfig(/*num_pages=*/3, /*page_size=*/4),
           EngineConfig{.max_batch_size = 4});
  RequestHandle a = e.AddRequest(
      {.lora = 0, .prompt_tokens = {1, 2, 3, 4, 5, 6}, .max_new_tokens = 20});
  e.Step();  // a holds 2 pages (6 tokens), decodes grow it
  EXPECT_TRUE(e.SelectEvictionVictims().empty());
  RequestHandle b = e.AddRequest(
      {.lora = 0, .prompt_tokens = {9, 9, 9, 9, 9}, .max_new_tokens = 20});
  // b's prefill needs 2 pages; only 1 is free → b (newest) is the victim.
  auto victims = e.SelectEvictionVictims();
  ASSERT_FALSE(victims.empty());
  EXPECT_EQ(victims[0], b.id());
  EXPECT_NE(victims[0], a.id());
}

}  // namespace
}  // namespace punica
