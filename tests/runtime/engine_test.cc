#include "runtime/engine.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "model/llama.h"

namespace punica {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : model_(TinyLlama(), 99) {
    model_.AddLora(0, 8, 1);
    model_.AddLora(1, 8, 2);
  }

  Engine MakeEngine(int max_batch = 4, int prefill_limit = 1) {
    EngineConfig cfg;
    cfg.max_batch_size = max_batch;
    cfg.prefill_limit = prefill_limit;
    return Engine(&model_, model_.MakeKvConfig(256), cfg);
  }

  LlamaModel model_;
};

TEST_F(EngineTest, EmptyEngineNoWork) {
  Engine e = MakeEngine();
  EXPECT_FALSE(e.HasWork());
  EXPECT_TRUE(e.CanAdmit());
  EXPECT_EQ(e.working_set_size(), 0);
  auto r = e.Step();
  EXPECT_EQ(r.batch_size, 0);
  EXPECT_TRUE(r.emitted.empty());
}

TEST_F(EngineTest, PrefillEmitsFirstToken) {
  Engine e = MakeEngine();
  std::int64_t id = e.AddRequest(0, {1, 2, 3}, 5);
  auto r = e.Step();
  EXPECT_EQ(r.batch_size, 1);
  EXPECT_EQ(r.prefill_requests, 1);
  ASSERT_EQ(r.emitted.size(), 1u);
  EXPECT_EQ(r.emitted[0].first, id);
  EXPECT_EQ(e.Output(id)->size(), 1u);
  EXPECT_EQ(e.Output(id)->front(), r.emitted[0].second);
}

TEST_F(EngineTest, PrefillLimitRespected) {
  Engine e = MakeEngine(4, 2);
  e.AddRequest(0, {1}, 4);
  e.AddRequest(0, {2}, 4);
  e.AddRequest(1, {3}, 4);
  auto r = e.Step();
  EXPECT_EQ(r.prefill_requests, 2);  // limit 2
  EXPECT_EQ(r.batch_size, 2);
  auto r2 = e.Step();
  EXPECT_EQ(r2.prefill_requests, 1);
  EXPECT_EQ(r2.batch_size, 3);
}

TEST_F(EngineTest, OutputOfUnknownIdIsNull) {
  Engine e = MakeEngine();
  EXPECT_EQ(e.Output(123), nullptr);
}

TEST_F(EngineTest, OutputsPersistAfterFinish) {
  Engine e = MakeEngine();
  std::int64_t id = e.AddRequest(0, {9}, 3);
  while (e.HasWork()) e.Step();
  ASSERT_NE(e.Output(id), nullptr);
  EXPECT_EQ(e.Output(id)->size(), 3u);
}

TEST_F(EngineTest, SameLoraRequestsShareOneSegment) {
  Engine e = MakeEngine(4);
  e.AddRequest(0, {1}, 8);
  e.AddRequest(0, {2}, 8);
  e.AddRequest(0, {3}, 8);
  for (int i = 0; i < 3; ++i) e.Step();  // drain prefills
  auto r = e.Step();
  EXPECT_EQ(r.batch_size, 3);
  EXPECT_EQ(r.num_segments, 1);  // all rows share lora 0
}

TEST_F(EngineTest, BackboneRowsExcludedFromLoraSegments) {
  Engine e = MakeEngine(4);
  e.AddRequest(-1, {1}, 8);  // backbone-only
  e.AddRequest(0, {2}, 8);
  for (int i = 0; i < 2; ++i) e.Step();
  auto r = e.Step();
  EXPECT_EQ(r.batch_size, 2);
  // Two segments in the token ordering (backbone id -1 and lora 0); the
  // backbone segment carries no adapter.
  EXPECT_EQ(r.num_segments, 2);
}

TEST_F(EngineTest, PrefillTailSharesSegmentWithDecodeHead) {
  // Paper §6: "The tail of Prefill requests and the head of Decode requests
  // can share a LoRA model if possible."
  Engine e = MakeEngine(4);
  std::int64_t a = e.AddRequest(1, {1, 2}, 8);
  (void)a;
  e.Step();  // a prefilled, now decoding with lora 1
  e.AddRequest(1, {3, 4}, 8);  // same lora, needs prefill
  auto r = e.Step();           // prefill(lora 1) + decode(lora 1)
  EXPECT_EQ(r.batch_size, 2);
  EXPECT_EQ(r.prefill_requests, 1);
  EXPECT_EQ(r.num_segments, 1);  // shared segment across the boundary
}

TEST_F(EngineTest, CancelFreesCapacity) {
  Engine e = MakeEngine(2);
  std::int64_t a = e.AddRequest(0, {1}, 50);
  e.AddRequest(1, {2}, 50);
  EXPECT_FALSE(e.CanAdmit());
  auto snap = e.Cancel(a);
  ASSERT_TRUE(snap.has_value());
  EXPECT_TRUE(e.CanAdmit());
  EXPECT_EQ(e.working_set_size(), 1);
}

TEST_F(EngineTest, StepAfterAllCancelledIsEmpty) {
  Engine e = MakeEngine();
  std::int64_t a = e.AddRequest(0, {1}, 5);
  e.Cancel(a);
  EXPECT_FALSE(e.HasWork());
  auto r = e.Step();
  EXPECT_EQ(r.batch_size, 0);
}

TEST_F(EngineTest, ManyShortRequestsAllFinish) {
  Engine e = MakeEngine(4);
  std::vector<std::int64_t> ids;
  int finished = 0;
  for (int i = 0; i < 4; ++i) {
    ids.push_back(e.AddRequest(i % 2, {static_cast<std::int32_t>(i + 1)},
                               2 + i));
  }
  while (e.HasWork()) {
    finished += static_cast<int>(e.Step().finished.size());
  }
  EXPECT_EQ(finished, 4);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(e.Output(ids[i])->size(), 2 + i);
  }
}

TEST_F(EngineTest, EmittedTokensMatchOutputs) {
  Engine e = MakeEngine(3);
  std::int64_t a = e.AddRequest(0, {5, 6}, 4);
  std::int64_t b = e.AddRequest(1, {7}, 4);
  std::map<std::int64_t, std::vector<std::int32_t>> streamed;
  while (e.HasWork()) {
    for (auto [id, tok] : e.Step().emitted) {
      streamed[id].push_back(tok);
    }
  }
  EXPECT_EQ(streamed[a], *e.Output(a));
  EXPECT_EQ(streamed[b], *e.Output(b));
}

TEST_F(EngineTest, DISABLED_KvExhaustionAborts) {
  // Documented behaviour: the engine aborts rather than silently dropping
  // tokens when the cache is exhausted (callers must migrate first). Kept
  // disabled by default because death tests on large state are slow.
  Engine tiny(&model_, model_.MakeKvConfig(1), EngineConfig{});
  tiny.AddRequest(0, {1, 2, 3}, 100);
  EXPECT_DEATH({
    while (tiny.HasWork()) tiny.Step();
  }, "KvCache exhausted");
}

}  // namespace
}  // namespace punica
