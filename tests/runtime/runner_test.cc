#include "runtime/runner.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gpu/specs.h"

namespace punica {
namespace {

class RunnerTest : public ::testing::Test {
 protected:
  RunnerTest() : cm_(A100Sxm80GB()) {
    config_.max_batch_size = 4;
    config_.kv_capacity_tokens = 1000;
    config_.lora_load_latency_s = 2e-3;
  }

  GpuRunner MakeRunner() { return GpuRunner(0, config_, Llama7B(), &cm_); }

  ServingRequest MakeRequest(std::int64_t id, LoraId lora,
                             std::int32_t prompt, std::int32_t output) {
    return {.id = id,
            .lora_id = lora,
            .prompt_len = prompt,
            .output_len = output,
            .arrival_time = 0.0};
  }

  CostModel cm_;
  RunnerConfig config_;
};

TEST_F(RunnerTest, AdmissionConstraints) {
  GpuRunner runner = MakeRunner();
  auto r = MakeRequest(1, 0, 100, 10);
  EXPECT_TRUE(runner.CanAdmit(r));
  EXPECT_EQ(runner.KvTokensNeeded(r), 101);

  auto big = MakeRequest(2, 0, 2000, 10);  // exceeds 1000-token KvCache
  EXPECT_FALSE(runner.CanAdmit(big));
}

TEST_F(RunnerTest, MaxBatchSizeEnforced) {
  GpuRunner runner = MakeRunner();
  std::vector<ServingRequest> reqs;
  for (int i = 0; i < 4; ++i) reqs.push_back(MakeRequest(i, 0, 10, 5));
  for (auto& r : reqs) {
    EXPECT_TRUE(runner.CanAdmit(r));
    runner.Admit(&r, 0.0);
  }
  auto extra = MakeRequest(99, 0, 10, 5);
  EXPECT_FALSE(runner.CanAdmit(extra));
  EXPECT_EQ(runner.working_set_size(), 4);
}

TEST_F(RunnerTest, LoraLoadDelaysFirstStep) {
  GpuRunner runner = MakeRunner();
  auto r = MakeRequest(1, 5, 10, 3);
  runner.Admit(&r, 0.0);
  // Adapter copy in flight: no runnable work yet.
  EXPECT_FALSE(runner.HasRunnableWork(0.0));
  EXPECT_TRUE(runner.HasAnyWork());
  auto ready = runner.NextReadyTime(0.0);
  ASSERT_TRUE(ready.has_value());
  EXPECT_DOUBLE_EQ(*ready, 2e-3);
  EXPECT_TRUE(runner.HasRunnableWork(*ready));
}

TEST_F(RunnerTest, BackboneRequestRunsImmediately) {
  GpuRunner runner = MakeRunner();
  auto r = MakeRequest(1, -1, 10, 3);
  runner.Admit(&r, 0.0);
  EXPECT_TRUE(runner.HasRunnableWork(0.0));
}

TEST_F(RunnerTest, StepLifecyclePrefillThenDecode) {
  GpuRunner runner = MakeRunner();
  auto r = MakeRequest(1, -1, 10, 3);
  runner.Admit(&r, 0.0);

  // Step 1: prefill, emits first token.
  StepResult s1 = runner.Step(0.0);
  EXPECT_EQ(s1.batch_size, 1);
  EXPECT_EQ(s1.prefill_requests, 1);
  EXPECT_EQ(s1.prefill_tokens, 10);
  EXPECT_EQ(s1.new_tokens, 1);
  EXPECT_GT(s1.latency, 0.0);
  EXPECT_TRUE(s1.finished.empty());
  EXPECT_EQ(r.generated, 1);
  EXPECT_EQ(runner.kv_used_tokens(), 10);
  EXPECT_GT(r.first_token_time, 0.0);

  // Steps 2–3: decodes; the third token finishes the request.
  StepResult s2 = runner.Step(s1.latency);
  EXPECT_EQ(s2.prefill_requests, 0);
  EXPECT_EQ(s2.new_tokens, 1);
  EXPECT_EQ(r.generated, 2);
  StepResult s3 = runner.Step(s1.latency + s2.latency);
  ASSERT_EQ(s3.finished.size(), 1u);
  EXPECT_EQ(s3.finished[0], 1);
  EXPECT_EQ(r.phase, RequestPhase::kFinished);
  EXPECT_GT(r.finish_time, 0.0);
  // KvCache fully released.
  EXPECT_EQ(runner.kv_used_tokens(), 0);
  EXPECT_EQ(runner.working_set_size(), 0);
}

TEST_F(RunnerTest, PrefillLimitOnePerStep) {
  GpuRunner runner = MakeRunner();
  std::vector<ServingRequest> reqs;
  for (int i = 0; i < 3; ++i) reqs.push_back(MakeRequest(i, -1, 10, 5));
  for (auto& r : reqs) runner.Admit(&r, 0.0);
  StepResult s1 = runner.Step(0.0);
  EXPECT_EQ(s1.prefill_requests, 1);
  EXPECT_EQ(s1.batch_size, 1);  // two others still waiting for prefill
  StepResult s2 = runner.Step(1.0);
  EXPECT_EQ(s2.prefill_requests, 1);
  EXPECT_EQ(s2.batch_size, 2);  // one decode + one prefill
  StepResult s3 = runner.Step(2.0);
  EXPECT_EQ(s3.prefill_requests, 1);
  EXPECT_EQ(s3.batch_size, 3);
}

TEST_F(RunnerTest, FcfsPrefillOrder) {
  GpuRunner runner = MakeRunner();
  auto a = MakeRequest(10, -1, 5, 9);
  auto b = MakeRequest(11, -1, 5, 9);
  runner.Admit(&a, 0.0);
  runner.Admit(&b, 0.0);
  runner.Step(0.0);
  EXPECT_EQ(a.generated, 1);  // admitted first, prefilled first
  EXPECT_EQ(b.generated, 0);
}

TEST_F(RunnerTest, CancelReleasesKvAndSnapshots) {
  GpuRunner runner = MakeRunner();
  auto r = MakeRequest(1, -1, 50, 10);
  runner.Admit(&r, 0.0);
  runner.Step(0.0);
  EXPECT_EQ(runner.kv_used_tokens(), 50);
  auto snap = runner.Cancel(1);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->request_id, 1);
  EXPECT_EQ(snap->prompt_len, 50);
  EXPECT_EQ(snap->generated_len, 1);  // prefill emitted the first token
  EXPECT_EQ(snap->max_new_tokens, 10);
  EXPECT_EQ(runner.kv_used_tokens(), 0);
  EXPECT_FALSE(runner.Cancel(1).has_value());
}

TEST_F(RunnerTest, EvictionVictimsNewestFirst) {
  config_.kv_capacity_tokens = 112;
  GpuRunner runner = MakeRunner();
  auto a = MakeRequest(1, -1, 50, 100);
  auto b = MakeRequest(2, -1, 50, 100);
  runner.Admit(&a, 0.0);
  runner.Admit(&b, 0.0);
  runner.Step(0.0);  // prefill a (kv 50)
  runner.Step(1.0);  // prefill b + decode a (kv 101)
  // Decode steps will keep growing; eventually a third request cannot fit.
  auto c = MakeRequest(3, -1, 10, 100);
  EXPECT_TRUE(runner.CanAdmit(c));
  runner.Admit(&c, 2.0);
  // Next step wants prefill(c)=10 + decode a,b = 12 tokens on top of 101.
  auto victims = runner.SelectEvictionVictims(2.0);
  ASSERT_FALSE(victims.empty());
  EXPECT_EQ(victims[0], 3);  // newest admitted goes first
}

TEST_F(RunnerTest, MigratedRequestRePrefillsPromptPlusGenerated) {
  GpuRunner runner = MakeRunner();
  auto r = MakeRequest(1, -1, 20, 10);
  runner.Admit(&r, 0.0);
  runner.Step(0.0);
  runner.Step(1.0);
  runner.Step(2.0);
  EXPECT_EQ(r.generated, 3);
  runner.Cancel(1);  // migrate away

  GpuRunner dest(1, config_, Llama7B(), &cm_);
  dest.Admit(&r, 3.0);
  StepResult s = dest.Step(3.0);
  EXPECT_EQ(s.prefill_requests, 1);
  EXPECT_EQ(s.prefill_tokens, 23);  // prompt 20 + 3 generated (recompute)
  EXPECT_EQ(r.generated, 4);
  EXPECT_EQ(dest.kv_used_tokens(), 23);
}

TEST_F(RunnerTest, MixedLoraBatchCountsSegments) {
  GpuRunner runner = MakeRunner();
  auto a = MakeRequest(1, 100, 10, 5);
  auto b = MakeRequest(2, 200, 10, 5);
  auto c = MakeRequest(3, 100, 10, 5);
  runner.Admit(&a, 0.0);
  runner.Admit(&b, 0.0);
  runner.Admit(&c, 0.0);
  // After adapters load, all can run together (cross-LoRA batching).
  double t = 3e-3;
  EXPECT_TRUE(runner.HasRunnableWork(t));
  StepResult s1 = runner.Step(t);
  EXPECT_EQ(s1.batch_size, 1);  // prefill limit
  StepResult s2 = runner.Step(t + 1.0);
  EXPECT_EQ(s2.batch_size, 2);
  StepResult s3 = runner.Step(t + 2.0);
  EXPECT_EQ(s3.batch_size, 3);
}

TEST_F(RunnerTest, FinishOnPrefillForSingleTokenOutput) {
  GpuRunner runner = MakeRunner();
  auto r = MakeRequest(1, -1, 10, 1);  // wants exactly one token
  runner.Admit(&r, 0.0);
  StepResult s = runner.Step(0.0);
  ASSERT_EQ(s.finished.size(), 1u);
  EXPECT_EQ(r.phase, RequestPhase::kFinished);
  EXPECT_EQ(runner.working_set_size(), 0);
  EXPECT_EQ(runner.kv_used_tokens(), 0);
}

TEST_F(RunnerTest, FindAndNewest) {
  GpuRunner runner = MakeRunner();
  auto a = MakeRequest(5, -1, 10, 5);
  auto b = MakeRequest(3, -1, 10, 5);
  runner.Admit(&a, 0.0);
  runner.Admit(&b, 0.0);
  EXPECT_EQ(runner.Find(5), &a);
  EXPECT_EQ(runner.Find(3), &b);
  EXPECT_EQ(runner.Find(99), nullptr);
  EXPECT_EQ(runner.NewestRequest(), &b);  // admitted later despite lower id
}

TEST_F(RunnerTest, StepWithNoRunnableWorkIsEmpty) {
  GpuRunner runner = MakeRunner();
  StepResult s = runner.Step(0.0);
  EXPECT_EQ(s.batch_size, 0);
  EXPECT_EQ(s.latency, 0.0);
}

TEST_F(RunnerTest, KvAccountingNeverExceedsCapacity) {
  config_.kv_capacity_tokens = 200;
  GpuRunner runner = MakeRunner();
  std::vector<std::unique_ptr<ServingRequest>> reqs;
  double t = 0.0;
  for (int i = 0; i < 50; ++i) {
    auto r = std::make_unique<ServingRequest>(
        MakeRequest(i, -1, 20, 40));
    if (runner.working_set_size() < config_.max_batch_size &&
        runner.CanAdmit(*r)) {
      runner.Admit(r.get(), t);
    }
    reqs.push_back(std::move(r));
    for (auto id : runner.SelectEvictionVictims(t)) {
      runner.Cancel(id);
    }
    if (runner.HasRunnableWork(t)) {
      StepResult s = runner.Step(t);
      t += s.latency;
    }
    ASSERT_LE(runner.kv_used_tokens(), 200);
  }
}

}  // namespace
}  // namespace punica
