#include "runtime/runner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "gpu/specs.h"

namespace punica {
namespace {

class RunnerTest : public ::testing::Test {
 protected:
  RunnerTest() : cm_(A100Sxm80GB()) {
    config_.max_batch_size = 4;
    config_.kv_capacity_tokens = 1000;
    config_.lora_load_latency_s = 2e-3;
  }

  GpuRunner MakeRunner() { return GpuRunner(0, config_, Llama7B(), &cm_); }

  ServingRequest MakeRequest(std::int64_t id, LoraId lora,
                             std::int32_t prompt, std::int32_t output) {
    return {.id = id,
            .lora_id = lora,
            .prompt_len = prompt,
            .output_len = output,
            .arrival_time = 0.0};
  }

  CostModel cm_;
  RunnerConfig config_;
};

TEST_F(RunnerTest, AdmissionConstraints) {
  GpuRunner runner = MakeRunner();
  auto r = MakeRequest(1, 0, 100, 10);
  EXPECT_TRUE(runner.CanAdmit(r));
  EXPECT_EQ(runner.KvTokensNeeded(r), 101);

  auto big = MakeRequest(2, 0, 2000, 10);  // exceeds 1000-token KvCache
  EXPECT_FALSE(runner.CanAdmit(big));
}

TEST_F(RunnerTest, MaxBatchSizeEnforced) {
  GpuRunner runner = MakeRunner();
  std::vector<ServingRequest> reqs;
  for (int i = 0; i < 4; ++i) reqs.push_back(MakeRequest(i, 0, 10, 5));
  for (auto& r : reqs) {
    EXPECT_TRUE(runner.CanAdmit(r));
    runner.Admit(&r, 0.0);
  }
  auto extra = MakeRequest(99, 0, 10, 5);
  EXPECT_FALSE(runner.CanAdmit(extra));
  EXPECT_EQ(runner.working_set_size(), 4);
}

TEST_F(RunnerTest, LoraLoadDelaysFirstStep) {
  GpuRunner runner = MakeRunner();
  auto r = MakeRequest(1, 5, 10, 3);
  runner.Admit(&r, 0.0);
  // Adapter copy in flight: no runnable work yet.
  EXPECT_FALSE(runner.HasRunnableWork(0.0));
  EXPECT_TRUE(runner.HasAnyWork());
  auto ready = runner.NextReadyTime(0.0);
  ASSERT_TRUE(ready.has_value());
  EXPECT_DOUBLE_EQ(*ready, 2e-3);
  EXPECT_TRUE(runner.HasRunnableWork(*ready));
}

TEST_F(RunnerTest, BackboneRequestRunsImmediately) {
  GpuRunner runner = MakeRunner();
  auto r = MakeRequest(1, -1, 10, 3);
  runner.Admit(&r, 0.0);
  EXPECT_TRUE(runner.HasRunnableWork(0.0));
}

TEST_F(RunnerTest, StepLifecyclePrefillThenDecode) {
  GpuRunner runner = MakeRunner();
  auto r = MakeRequest(1, -1, 10, 3);
  runner.Admit(&r, 0.0);

  // Step 1: prefill, emits first token.
  StepResult s1 = runner.Step(0.0);
  EXPECT_EQ(s1.batch_size, 1);
  EXPECT_EQ(s1.prefill_requests, 1);
  EXPECT_EQ(s1.prefill_tokens, 10);
  EXPECT_EQ(s1.new_tokens, 1);
  EXPECT_GT(s1.latency, 0.0);
  EXPECT_TRUE(s1.finished.empty());
  EXPECT_EQ(r.generated, 1);
  EXPECT_EQ(runner.kv_used_tokens(), 10);
  EXPECT_GT(r.first_token_time, 0.0);

  // Steps 2–3: decodes; the third token finishes the request.
  StepResult s2 = runner.Step(s1.latency);
  EXPECT_EQ(s2.prefill_requests, 0);
  EXPECT_EQ(s2.new_tokens, 1);
  EXPECT_EQ(r.generated, 2);
  StepResult s3 = runner.Step(s1.latency + s2.latency);
  ASSERT_EQ(s3.finished.size(), 1u);
  EXPECT_EQ(s3.finished[0], 1);
  EXPECT_EQ(r.phase, RequestPhase::kFinished);
  EXPECT_GT(r.finish_time, 0.0);
  // KvCache fully released.
  EXPECT_EQ(runner.kv_used_tokens(), 0);
  EXPECT_EQ(runner.working_set_size(), 0);
}

TEST_F(RunnerTest, PrefillLimitOnePerStep) {
  GpuRunner runner = MakeRunner();
  std::vector<ServingRequest> reqs;
  for (int i = 0; i < 3; ++i) reqs.push_back(MakeRequest(i, -1, 10, 5));
  for (auto& r : reqs) runner.Admit(&r, 0.0);
  StepResult s1 = runner.Step(0.0);
  EXPECT_EQ(s1.prefill_requests, 1);
  EXPECT_EQ(s1.batch_size, 1);  // two others still waiting for prefill
  StepResult s2 = runner.Step(1.0);
  EXPECT_EQ(s2.prefill_requests, 1);
  EXPECT_EQ(s2.batch_size, 2);  // one decode + one prefill
  StepResult s3 = runner.Step(2.0);
  EXPECT_EQ(s3.prefill_requests, 1);
  EXPECT_EQ(s3.batch_size, 3);
}

TEST_F(RunnerTest, FcfsPrefillOrder) {
  GpuRunner runner = MakeRunner();
  auto a = MakeRequest(10, -1, 5, 9);
  auto b = MakeRequest(11, -1, 5, 9);
  runner.Admit(&a, 0.0);
  runner.Admit(&b, 0.0);
  runner.Step(0.0);
  EXPECT_EQ(a.generated, 1);  // admitted first, prefilled first
  EXPECT_EQ(b.generated, 0);
}

TEST_F(RunnerTest, CancelReleasesKvAndSnapshots) {
  GpuRunner runner = MakeRunner();
  auto r = MakeRequest(1, -1, 50, 10);
  runner.Admit(&r, 0.0);
  runner.Step(0.0);
  EXPECT_EQ(runner.kv_used_tokens(), 50);
  auto snap = runner.Cancel(1);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->request_id, 1);
  EXPECT_EQ(snap->prompt_len, 50);
  EXPECT_EQ(snap->generated_len, 1);  // prefill emitted the first token
  EXPECT_EQ(snap->max_new_tokens, 10);
  EXPECT_EQ(runner.kv_used_tokens(), 0);
  EXPECT_FALSE(runner.Cancel(1).has_value());
}

TEST_F(RunnerTest, EvictionVictimsNewestFirst) {
  config_.kv_capacity_tokens = 112;
  GpuRunner runner = MakeRunner();
  auto a = MakeRequest(1, -1, 50, 100);
  auto b = MakeRequest(2, -1, 50, 100);
  runner.Admit(&a, 0.0);
  runner.Admit(&b, 0.0);
  runner.Step(0.0);  // prefill a (kv 50)
  runner.Step(1.0);  // prefill b + decode a (kv 101)
  // Decode steps will keep growing; eventually a third request cannot fit.
  auto c = MakeRequest(3, -1, 10, 100);
  EXPECT_TRUE(runner.CanAdmit(c));
  runner.Admit(&c, 2.0);
  // Next step wants prefill(c)=10 + decode a,b = 12 tokens on top of 101.
  auto victims = runner.SelectEvictionVictims(2.0);
  ASSERT_FALSE(victims.empty());
  EXPECT_EQ(victims[0], 3);  // newest admitted goes first
}

TEST_F(RunnerTest, MigratedRequestRePrefillsPromptPlusGenerated) {
  GpuRunner runner = MakeRunner();
  auto r = MakeRequest(1, -1, 20, 10);
  runner.Admit(&r, 0.0);
  runner.Step(0.0);
  runner.Step(1.0);
  runner.Step(2.0);
  EXPECT_EQ(r.generated, 3);
  runner.Cancel(1);  // migrate away

  GpuRunner dest(1, config_, Llama7B(), &cm_);
  dest.Admit(&r, 3.0);
  StepResult s = dest.Step(3.0);
  EXPECT_EQ(s.prefill_requests, 1);
  EXPECT_EQ(s.prefill_tokens, 23);  // prompt 20 + 3 generated (recompute)
  EXPECT_EQ(r.generated, 4);
  EXPECT_EQ(dest.kv_used_tokens(), 23);
}

TEST_F(RunnerTest, MixedLoraBatchCountsSegments) {
  GpuRunner runner = MakeRunner();
  auto a = MakeRequest(1, 100, 10, 5);
  auto b = MakeRequest(2, 200, 10, 5);
  auto c = MakeRequest(3, 100, 10, 5);
  runner.Admit(&a, 0.0);
  runner.Admit(&b, 0.0);
  runner.Admit(&c, 0.0);
  // After adapters load, all can run together (cross-LoRA batching).
  double t = 3e-3;
  EXPECT_TRUE(runner.HasRunnableWork(t));
  StepResult s1 = runner.Step(t);
  EXPECT_EQ(s1.batch_size, 1);  // prefill limit
  StepResult s2 = runner.Step(t + 1.0);
  EXPECT_EQ(s2.batch_size, 2);
  StepResult s3 = runner.Step(t + 2.0);
  EXPECT_EQ(s3.batch_size, 3);
}

TEST_F(RunnerTest, FinishOnPrefillForSingleTokenOutput) {
  GpuRunner runner = MakeRunner();
  auto r = MakeRequest(1, -1, 10, 1);  // wants exactly one token
  runner.Admit(&r, 0.0);
  StepResult s = runner.Step(0.0);
  ASSERT_EQ(s.finished.size(), 1u);
  EXPECT_EQ(r.phase, RequestPhase::kFinished);
  EXPECT_EQ(runner.working_set_size(), 0);
  EXPECT_EQ(runner.kv_used_tokens(), 0);
}

TEST_F(RunnerTest, FindAndNewest) {
  GpuRunner runner = MakeRunner();
  auto a = MakeRequest(5, -1, 10, 5);
  auto b = MakeRequest(3, -1, 10, 5);
  runner.Admit(&a, 0.0);
  runner.Admit(&b, 0.0);
  EXPECT_EQ(runner.Find(5), &a);
  EXPECT_EQ(runner.Find(3), &b);
  EXPECT_EQ(runner.Find(99), nullptr);
  EXPECT_EQ(runner.NewestRequest(), &b);  // admitted later despite lower id
}

TEST_F(RunnerTest, StepWithNoRunnableWorkIsEmpty) {
  GpuRunner runner = MakeRunner();
  StepResult s = runner.Step(0.0);
  EXPECT_EQ(s.batch_size, 0);
  EXPECT_EQ(s.latency, 0.0);
}

TEST_F(RunnerTest, KvAccountingNeverExceedsCapacity) {
  config_.kv_capacity_tokens = 200;
  GpuRunner runner = MakeRunner();
  std::vector<std::unique_ptr<ServingRequest>> reqs;
  double t = 0.0;
  for (int i = 0; i < 50; ++i) {
    auto r = std::make_unique<ServingRequest>(
        MakeRequest(i, -1, 20, 40));
    if (runner.working_set_size() < config_.max_batch_size &&
        runner.CanAdmit(*r)) {
      runner.Admit(r.get(), t);
    }
    reqs.push_back(std::move(r));
    for (auto id : runner.SelectEvictionVictims(t)) {
      runner.Cancel(id);
    }
    if (runner.HasRunnableWork(t)) {
      StepResult s = runner.Step(t);
      t += s.latency;
    }
    ASSERT_LE(runner.kv_used_tokens(), 200);
  }
}

// --- Shared-prefix cache (simulated tier) ---

TEST_F(RunnerTest, SharedPrefixSecondPrefillChargesOnlySuffix) {
  GpuRunner runner = MakeRunner();
  auto annotate = [](ServingRequest r) {
    r.shared_prefix_len = 60;
    r.prefix_group = 7;
    return r;
  };
  auto a = annotate(MakeRequest(1, 0, 100, 4));
  runner.Admit(&a, 0.0);
  double t = 2e-3;  // adapter loaded
  StepResult s1 = runner.Step(t);
  EXPECT_EQ(s1.prefill_tokens, 100);  // cold: full prompt, registers prefix
  EXPECT_EQ(s1.prefix_hit_tokens, 0);
  EXPECT_EQ(runner.prefix_cached_tokens(), 60);
  EXPECT_EQ(runner.kv_used_tokens(), 100);  // sharing never double-charges

  auto b = annotate(MakeRequest(2, 0, 100, 4));
  EXPECT_EQ(runner.PrefixHitTokens(b), 60);
  EXPECT_EQ(runner.KvTokensNeeded(b), 41);  // 100 + 1 − 60
  runner.Admit(&b, t);
  StepResult s2 = runner.Step(t);
  EXPECT_EQ(s2.prefill_tokens, 40);  // only the uncached suffix
  EXPECT_EQ(s2.prefix_hit_tokens, 60);
  // a decoded once (its kv grew by 1); b charged 40.
  EXPECT_EQ(runner.kv_used_tokens(), 141);

  PrefixCacheStats st = runner.prefix_cache_stats();
  EXPECT_EQ(st.hits, 1);
  EXPECT_EQ(st.hit_tokens, 60);
  EXPECT_EQ(st.insertions, 1);
  EXPECT_EQ(st.cached_entries, 1);
}

TEST_F(RunnerTest, PrefixHitStepIsCheaperThanCold) {
  // The cost model's prefix-hit term: the same request is strictly cheaper
  // when the tenant prefix is cached.
  auto run_two = [&](bool share) {
    GpuRunner runner = MakeRunner();
    auto mk = [&](std::int64_t id) {
      auto r = MakeRequest(id, -1, 200, 2);
      if (share) {
        r.shared_prefix_len = 150;
        r.prefix_group = 1;
      }
      return r;
    };
    auto a = mk(1);
    runner.Admit(&a, 0.0);
    runner.Step(0.0);  // a prefill (registers when sharing)
    auto b = mk(2);
    runner.Admit(&b, 0.0);
    // Drain a so only b's prefill remains.
    runner.Cancel(1);
    return runner.Step(0.0).latency;
  };
  EXPECT_LT(run_two(true), run_two(false));
}

TEST_F(RunnerTest, IdleCachedPrefixesReclaimedUnderPressure) {
  config_.kv_capacity_tokens = 200;
  GpuRunner runner = MakeRunner();
  auto a = MakeRequest(1, -1, 100, 1);
  a.shared_prefix_len = 80;
  a.prefix_group = 3;
  runner.Admit(&a, 0.0);
  runner.Step(0.0);  // prefill + finish (output_len 1) → group idle
  EXPECT_EQ(runner.working_set_size(), 0);
  EXPECT_EQ(runner.prefix_cached_tokens(), 80);
  EXPECT_EQ(runner.kv_used_tokens(), 80);  // the cache holds the prefix

  // A fat cold request needs the cached tokens back: admission succeeds
  // (reclaimable counts as headroom) and Step evicts the idle entry
  // instead of aborting.
  auto big = MakeRequest(2, -1, 180, 2);
  EXPECT_TRUE(runner.CanAdmit(big));
  runner.Admit(&big, 0.0);
  EXPECT_TRUE(runner.SelectEvictionVictims(0.0).empty());
  StepResult s = runner.Step(0.0);
  EXPECT_EQ(s.prefill_tokens, 180);
  EXPECT_EQ(runner.prefix_cached_tokens(), 0);
  EXPECT_EQ(runner.prefix_cache_stats().evictions, 1);
  EXPECT_LE(runner.kv_used_tokens(), 200);
}

TEST_F(RunnerTest, CancelBeforePrefillLeavesAccountingIntact) {
  // Regression: a slot evicted before its prefill holds no tokens — its
  // prospective prefix_hit must not be "released" into kv_used_tokens_.
  GpuRunner runner = MakeRunner();
  auto a = MakeRequest(1, -1, 100, 2);
  a.shared_prefix_len = 60;
  a.prefix_group = 7;
  runner.Admit(&a, 0.0);
  runner.Step(0.0);  // registers the prefix; a stays resident
  std::int64_t used = runner.kv_used_tokens();

  auto b = MakeRequest(2, -1, 100, 2);
  b.shared_prefix_len = 60;
  b.prefix_group = 7;
  runner.Admit(&b, 0.0);  // prefix hit recorded at admission
  runner.Cancel(2);       // evicted before any prefill ran
  EXPECT_EQ(runner.kv_used_tokens(), used);
  // And the victim projection treats such a slot the same way.
  auto c = MakeRequest(3, -1, 100, 2);
  c.shared_prefix_len = 60;
  c.prefix_group = 7;
  runner.Admit(&c, 0.0);
  EXPECT_TRUE(runner.SelectEvictionVictims(0.0).empty());
}

TEST_F(RunnerTest, HitEntryNotDoubleCountedAsReclaimable) {
  // Regression: a hit assumes its entry stays cached, so the entry's
  // tokens cannot simultaneously serve as evictable headroom.
  config_.kv_capacity_tokens = 520;
  GpuRunner runner = MakeRunner();
  auto a = MakeRequest(1, -1, 510, 1);
  a.shared_prefix_len = 500;
  a.prefix_group = 9;
  runner.Admit(&a, 0.0);
  runner.Step(0.0);  // finishes; entry (500 tokens) idle, used=500, free=20
  EXPECT_EQ(runner.kv_used_tokens(), 500);

  auto b = MakeRequest(2, -1, 600, 2);
  b.shared_prefix_len = 500;
  b.prefix_group = 9;
  // Needs 101 tokens beyond the hit; only 20 are free and the hit's own
  // entry is not evictable headroom → must queue, not livelock.
  EXPECT_FALSE(runner.CanAdmit(b));
  // A cold request that genuinely fits after reclaiming the idle entry is
  // still admissible.
  auto c = MakeRequest(3, -1, 400, 2);
  EXPECT_TRUE(runner.CanAdmit(c));
}

TEST_F(RunnerTest, ResidentGroupPrefixNotReclaimed) {
  config_.kv_capacity_tokens = 150;
  GpuRunner runner = MakeRunner();
  auto a = MakeRequest(1, -1, 100, 50);
  a.shared_prefix_len = 80;
  a.prefix_group = 3;
  runner.Admit(&a, 0.0);
  runner.Step(0.0);  // a resident, prefix registered
  // A request that would only fit by stealing the resident group's prefix
  // must NOT be admissible — those tokens are live.
  auto big = MakeRequest(2, -1, 120, 2);
  EXPECT_FALSE(runner.CanAdmit(big));
}

// --- Chunked prefill (RunnerConfig::max_step_tokens) ---

TEST_F(RunnerTest, ChunkedPrefillSpansStepsAndEmitsAtTheEnd) {
  config_.max_step_tokens = 32;
  GpuRunner runner = MakeRunner();
  auto req = MakeRequest(1, -1, 100, 3);
  runner.Admit(&req, 0.0);
  double now = 0.0;
  // 100 tokens at budget 32 (no decodes): 32, 32, 32, 4.
  for (int expected : {32, 32, 32}) {
    auto r = runner.Step(now);
    now += r.latency;
    EXPECT_EQ(r.prefill_tokens, expected);
    EXPECT_EQ(r.partial_prefills, 1);
    EXPECT_TRUE(r.emitted.empty());
    EXPECT_EQ(req.generated, 0);
    EXPECT_GT(r.deferred_prefill_tokens, 0);
  }
  auto r = runner.Step(now);
  EXPECT_EQ(r.prefill_tokens, 4);
  EXPECT_EQ(r.partial_prefills, 0);
  ASSERT_EQ(r.emitted.size(), 1u);
  EXPECT_EQ(req.generated, 1);
  EXPECT_EQ(runner.kv_used_tokens(), 100);
}

TEST_F(RunnerTest, ChunkedPrefillStepsAreCheaperThanAtomicPrefill) {
  // The point of the budget: no single invocation carries the whole
  // prompt, so the worst-case decode stall shrinks accordingly.
  auto max_step_latency = [&](std::int64_t budget) {
    config_.max_step_tokens = budget;
    GpuRunner runner = MakeRunner();
    auto req = MakeRequest(1, -1, 600, 4);
    runner.Admit(&req, 0.0);
    double now = 0.0, worst = 0.0;
    while (runner.HasAnyWork()) {
      auto r = runner.Step(now);
      now += r.latency;
      worst = std::max(worst, r.latency);
    }
    return worst;
  };
  EXPECT_LT(max_step_latency(64), max_step_latency(0));
}

TEST_F(RunnerTest, DecodesJoinEveryChunkStep) {
  config_.max_step_tokens = 16;
  GpuRunner runner = MakeRunner();
  auto dec = MakeRequest(1, -1, 4, 40);
  runner.Admit(&dec, 0.0);
  double now = 0.0;
  now += runner.Step(now).latency;  // dec prefilled
  auto longreq = MakeRequest(2, -1, 60, 2);
  runner.Admit(&longreq, 0.0);
  int chunk_steps = 0;
  while (longreq.generated == 0) {
    auto r = runner.Step(now);
    now += r.latency;
    // Every chunk step also advanced the in-flight decode.
    EXPECT_GE(r.new_tokens, 1);
    if (r.partial_prefills > 0) {
      ++chunk_steps;
      EXPECT_EQ(r.prefill_tokens, 15);  // budget 16 minus one decode row
    }
  }
  EXPECT_GT(chunk_steps, 1);
}

TEST_F(RunnerTest, MidPrefillEvictionReleasesConsumedTokensOnly) {
  config_.max_step_tokens = 32;
  GpuRunner runner = MakeRunner();
  auto req = MakeRequest(1, -1, 100, 3);
  runner.Admit(&req, 0.0);
  double now = 0.0;
  now += runner.Step(now).latency;  // one 32-token chunk consumed
  EXPECT_EQ(runner.kv_used_tokens(), 32);
  auto snap = runner.Cancel(1);
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(runner.kv_used_tokens(), 0);
  EXPECT_EQ(snap->generated_len, 0);  // nothing emitted mid-prefill
}

TEST_F(RunnerTest, VictimProjectionIsChunkGranularUnderBudget) {
  // 140-token prompt into a 120-token pool with a resident decode: the
  // atomic projection would evict, but with a 32-token budget the next
  // chunk always fits until the pool truly runs out.
  config_.kv_capacity_tokens = 120;
  config_.max_step_tokens = 32;
  GpuRunner runner = MakeRunner();
  auto dec = MakeRequest(1, -1, 10, 30);
  runner.Admit(&dec, 0.0);
  double now = 0.0;
  now += runner.Step(now).latency;
  auto longreq = MakeRequest(2, -1, 100, 30);
  runner.Admit(&longreq, 0.0);
  // Next step: 31-token chunk + 1 decode on 11 used tokens — fits.
  EXPECT_TRUE(runner.SelectEvictionVictims(now).empty());
  auto r = runner.Step(now);
  EXPECT_EQ(r.prefill_tokens, 31);
  now += r.latency;
  // Eventually the pool fills mid-prefill and the newest request (the
  // long prompt itself) is named, releasing only its consumed chunks.
  std::vector<std::int64_t> victims;
  while (victims.empty() && runner.HasAnyWork()) {
    victims = runner.SelectEvictionVictims(now);
    if (victims.empty()) {
      auto s = runner.Step(now);
      now += s.latency;
    }
  }
  ASSERT_FALSE(victims.empty());
  EXPECT_EQ(victims.front(), 2);
}

}  // namespace
}  // namespace punica
