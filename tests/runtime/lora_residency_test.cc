#include "runtime/lora_residency.h"

#include <gtest/gtest.h>

namespace punica {
namespace {

constexpr std::int64_t kMB = 1024 * 1024;

TEST(LoraResidencyTest, FirstTouchLoads) {
  LoraResidency res(10 * kMB, 1 * kMB, 2e-3);
  double ready = res.Touch(1, 0.0);
  EXPECT_DOUBLE_EQ(ready, 2e-3);
  EXPECT_FALSE(res.IsReady(1, 0.0));
  EXPECT_TRUE(res.IsReady(1, 2e-3));
  EXPECT_EQ(res.load_count(), 1u);
  EXPECT_EQ(res.resident_count(), 1u);
  EXPECT_EQ(res.used_bytes(), 1 * kMB);
}

TEST(LoraResidencyTest, SecondTouchIsAHit) {
  LoraResidency res(10 * kMB, 1 * kMB, 2e-3);
  res.Touch(1, 0.0);
  double ready = res.Touch(1, 5.0);
  EXPECT_DOUBLE_EQ(ready, 5.0);  // already resident and loaded
  EXPECT_EQ(res.load_count(), 1u);
  EXPECT_EQ(res.hit_count(), 1u);
}

TEST(LoraResidencyTest, TouchDuringLoadReturnsLoadCompletion) {
  LoraResidency res(10 * kMB, 1 * kMB, 2e-3);
  res.Touch(1, 0.0);
  double ready = res.Touch(1, 1e-3);  // copy still in flight
  EXPECT_DOUBLE_EQ(ready, 2e-3);
}

TEST(LoraResidencyTest, LruEviction) {
  LoraResidency res(2 * kMB, 1 * kMB, 1e-3);
  res.Touch(1, 0.0);
  res.Touch(2, 1.0);
  res.Touch(1, 2.0);  // 1 is now more recent than 2
  res.Touch(3, 3.0);  // evicts 2
  EXPECT_EQ(res.resident_count(), 2u);
  EXPECT_TRUE(res.IsReady(1, 3.0));
  EXPECT_FALSE(res.IsReady(2, 10.0));  // evicted
  // Re-touching 2 is a fresh load.
  double ready = res.Touch(2, 4.0);
  EXPECT_DOUBLE_EQ(ready, 4.0 + 1e-3);
  EXPECT_EQ(res.load_count(), 4u);
}

TEST(LoraResidencyTest, PinnedAdaptersSurviveEviction) {
  LoraResidency res(2 * kMB, 1 * kMB, 1e-3);
  res.Touch(1, 0.0);
  res.Pin(1);
  res.Touch(2, 1.0);
  res.Touch(3, 2.0);  // must evict 2 (LRU unpinned), not pinned 1
  EXPECT_TRUE(res.IsReady(1, 2.0));
  EXPECT_FALSE(res.IsReady(2, 10.0));
  res.Unpin(1);
}

TEST(LoraResidencyTest, PinUnpinCounts) {
  LoraResidency res(4 * kMB, 1 * kMB, 1e-3);
  res.Touch(1, 0.0);
  res.Pin(1);
  res.Pin(1);
  res.Unpin(1);
  // Still pinned once: cannot be evicted.
  res.Touch(2, 1.0);
  res.Touch(3, 2.0);
  res.Touch(4, 3.0);
  res.Touch(5, 4.0);  // someone must go, but not 1
  EXPECT_TRUE(res.IsReady(1, 4.0));
  res.Unpin(1);
}

TEST(LoraResidencyDeathTest, AllPinnedBudgetAborts) {
  LoraResidency res(1 * kMB, 1 * kMB, 1e-3);
  res.Touch(1, 0.0);
  res.Pin(1);
  EXPECT_DEATH(res.Touch(2, 1.0), "pinned");
}

TEST(LoraResidencyDeathTest, PinUnknownAborts) {
  LoraResidency res(1 * kMB, 1 * kMB, 1e-3);
  EXPECT_DEATH(res.Pin(7), "non-resident");
  EXPECT_DEATH(res.Unpin(7), "non-resident");
}

}  // namespace
}  // namespace punica
