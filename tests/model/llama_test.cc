#include "model/llama.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace punica {
namespace {

// Drives a full prefill + greedy decode loop for one request.
std::vector<std::int32_t> Generate(LlamaModel& model, PagedKvCache& kv,
                                   LoraId lora,
                                   std::span<const std::int32_t> prompt,
                                   int steps) {
  SeqId seq = kv.CreateSequence();
  EXPECT_TRUE(kv.Extend(seq, static_cast<std::int64_t>(prompt.size())));
  std::vector<BatchEntry> entries = {
      {.seq = seq,
       .lora = lora,
       .num_tokens = static_cast<std::int32_t>(prompt.size()),
       .pos_offset = 0,
       .is_prefill = true}};
  ModelBatch batch = ModelBatch::Build(entries);
  std::vector<std::int32_t> out =
      model.ForwardGreedy(batch, prompt, kv);
  std::vector<std::int32_t> generated = {out[0]};

  for (int s = 1; s < steps; ++s) {
    std::int64_t pos = kv.SeqLen(seq);
    EXPECT_TRUE(kv.Extend(seq, 1));
    std::vector<BatchEntry> dec = {{.seq = seq,
                                    .lora = lora,
                                    .num_tokens = 1,
                                    .pos_offset = pos,
                                    .is_prefill = false}};
    ModelBatch db = ModelBatch::Build(dec);
    std::vector<std::int32_t> in = {generated.back()};
    auto next = model.ForwardGreedy(db, in, kv);
    generated.push_back(next[0]);
  }
  kv.FreeSequence(seq);
  return generated;
}

TEST(LlamaTest, ArgMax) {
  std::vector<float> logits = {0.1f, 2.5f, -1.0f, 2.4f};
  EXPECT_EQ(LlamaModel::ArgMax(logits), 1);
}

TEST(LlamaTest, GenerationIsDeterministic) {
  LlamaConfig c = TinyLlama();
  LlamaModel model(c, 42);
  PagedKvCache kv(model.MakeKvConfig(256));
  std::vector<std::int32_t> prompt = {5, 17, 99, 3};
  auto g1 = Generate(model, kv, -1, prompt, 8);
  auto g2 = Generate(model, kv, -1, prompt, 8);
  EXPECT_EQ(g1, g2);
  for (auto t : g1) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, c.vocab_size);
  }
}

TEST(LlamaTest, DifferentSeedsDifferentModels) {
  LlamaConfig c = TinyLlama();
  LlamaModel m1(c, 1), m2(c, 2);
  PagedKvCache kv1(m1.MakeKvConfig(64)), kv2(m2.MakeKvConfig(64));
  std::vector<std::int32_t> prompt = {10, 20, 30};
  auto g1 = Generate(m1, kv1, -1, prompt, 6);
  auto g2 = Generate(m2, kv2, -1, prompt, 6);
  EXPECT_NE(g1, g2);
}

TEST(LlamaTest, LoraChangesGeneration) {
  LlamaConfig c = TinyLlama();
  LlamaModel model(c, 7);
  model.AddLora(0, /*rank=*/8, /*seed=*/100);
  PagedKvCache kv(model.MakeKvConfig(128));
  std::vector<std::int32_t> prompt = {1, 2, 3, 4, 5};
  auto base = Generate(model, kv, -1, prompt, 10);
  auto adapted = Generate(model, kv, 0, prompt, 10);
  EXPECT_NE(base, adapted);
}

TEST(LlamaTest, DifferentLorasDiverge) {
  LlamaConfig c = TinyLlama();
  LlamaModel model(c, 7);
  model.AddLora(0, 8, 100);
  model.AddLora(1, 8, 200);
  PagedKvCache kv(model.MakeKvConfig(128));
  std::vector<std::int32_t> prompt = {9, 8, 7};
  auto a = Generate(model, kv, 0, prompt, 8);
  auto b = Generate(model, kv, 1, prompt, 8);
  EXPECT_NE(a, b);
}

TEST(LlamaTest, CrossLoraBatchMatchesIndividualRuns) {
  // The core SGMV promise: a batch mixing LoRA models produces exactly the
  // same logits per request as running each request alone.
  LlamaConfig c = TinyLlama();
  LlamaModel model(c, 21);
  model.AddLora(0, 8, 300);
  model.AddLora(1, 8, 400);
  PagedKvCache kv(model.MakeKvConfig(256));

  std::vector<std::int32_t> p0 = {11, 12, 13};
  std::vector<std::int32_t> p1 = {40, 41};

  // Individual runs.
  auto solo0 = Generate(model, kv, 0, p0, 1);
  auto solo1 = Generate(model, kv, 1, p1, 1);

  // Mixed batch: both prefills in one invocation.
  SeqId s0 = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(s0, 3));
  SeqId s1 = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(s1, 2));
  std::vector<BatchEntry> entries = {
      {.seq = s0, .lora = 0, .num_tokens = 3, .pos_offset = 0,
       .is_prefill = true},
      {.seq = s1, .lora = 1, .num_tokens = 2, .pos_offset = 0,
       .is_prefill = true}};
  ModelBatch batch = ModelBatch::Build(entries);
  std::vector<std::int32_t> tokens = {11, 12, 13, 40, 41};
  auto mixed = model.ForwardGreedy(batch, tokens, kv);
  ASSERT_EQ(mixed.size(), 2u);
  EXPECT_EQ(mixed[0], solo0[0]);
  EXPECT_EQ(mixed[1], solo1[0]);
}

TEST(LlamaTest, BatchedDecodeMatchesSequentialDecode) {
  LlamaConfig c = TinyLlama();
  LlamaModel model(c, 33);
  model.AddLora(0, 4, 1);
  model.AddLora(1, 4, 2);
  PagedKvCache kv(model.MakeKvConfig(256));

  std::vector<std::int32_t> p0 = {3, 1, 4};
  std::vector<std::int32_t> p1 = {1, 5};
  auto solo0 = Generate(model, kv, 0, p0, 4);
  auto solo1 = Generate(model, kv, 1, p1, 4);

  // Prefill both, then batch the decodes together.
  SeqId s0 = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(s0, 3));
  SeqId s1 = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(s1, 2));
  auto b0 = ModelBatch::Build({{.seq = s0, .lora = 0, .num_tokens = 3,
                                .pos_offset = 0, .is_prefill = true}});
  auto first0 = model.ForwardGreedy(b0, p0, kv);
  auto b1 = ModelBatch::Build({{.seq = s1, .lora = 1, .num_tokens = 2,
                                .pos_offset = 0, .is_prefill = true}});
  auto first1 = model.ForwardGreedy(b1, p1, kv);
  std::vector<std::int32_t> g0 = {first0[0]};
  std::vector<std::int32_t> g1 = {first1[0]};

  for (int s = 1; s < 4; ++s) {
    std::int64_t pos0 = kv.SeqLen(s0);
    std::int64_t pos1 = kv.SeqLen(s1);
    ASSERT_TRUE(kv.Extend(s0, 1));
    ASSERT_TRUE(kv.Extend(s1, 1));
    auto batch = ModelBatch::Build(
        {{.seq = s0, .lora = 0, .num_tokens = 1, .pos_offset = pos0,
          .is_prefill = false},
         {.seq = s1, .lora = 1, .num_tokens = 1, .pos_offset = pos1,
          .is_prefill = false}});
    std::vector<std::int32_t> in = {g0.back(), g1.back()};
    auto next = model.ForwardGreedy(batch, in, kv);
    g0.push_back(next[0]);
    g1.push_back(next[1]);
  }
  EXPECT_EQ(g0, solo0);
  EXPECT_EQ(g1, solo1);
}

TEST(LlamaDeathTest, UnloadedLoraAborts) {
  LlamaConfig c = TinyLlama();
  LlamaModel model(c, 5);
  PagedKvCache kv(model.MakeKvConfig(64));
  SeqId s = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(s, 1));
  auto batch = ModelBatch::Build({{.seq = s, .lora = 123, .num_tokens = 1,
                                   .pos_offset = 0, .is_prefill = true}});
  std::vector<std::int32_t> tokens = {0};
  EXPECT_DEATH(model.Forward(batch, tokens, kv), "unloaded LoRA");
}

}  // namespace
}  // namespace punica
