// The quantization quality gate (ISSUE acceptance): quantized backbones
// must stay functionally close to the f16 reference on the tiny Llama.
//  * Q8_0: teacher-forced greedy streams diverge from f16 in ≤ 1% of
//    steps — the f16 stream is replayed through the quantized model so one
//    early flip cannot cascade into counting every later step as divergent.
//  * Q4_0 (and Q8_0): per-step relative logit MSE — mean over steps of
//    ‖logits_q − logits_f16‖² / ‖logits_f16‖² — stays under the documented
//    bounds (q8: 1e-3, q4: 0.25; both set empirically with ≥4× margin over
//    measured values on the seeded tiny models).
// Both models draw the SAME seeded f16 master weights; only storage
// differs, so every gap measured here is pure quantization error.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "kvcache/kvcache.h"
#include "model/llama.h"

namespace punica {
namespace {

struct Rollout {
  std::vector<std::int32_t> tokens;        ///< argmax per emitted step
  std::vector<std::vector<float>> logits;  ///< logits row per emitted step
};

/// Prefills `prompt` then decodes `steps-1` more tokens. When `force` is
/// empty the model drives itself greedily; otherwise decode step t feeds
/// force[t] (teacher forcing — replay another model's stream).
Rollout RunModel(const LlamaConfig& config, std::uint64_t seed,
            std::span<const std::int32_t> prompt, int steps,
            std::span<const std::int32_t> force = {}) {
  LlamaModel model(config, seed);
  PagedKvCache kv(model.MakeKvConfig(/*num_pages=*/256));
  SeqId s = kv.CreateSequence();
  kv.Extend(s, static_cast<std::int64_t>(prompt.size()));
  ModelBatch pb = ModelBatch::Build(
      {{.seq = s,
        .lora = -1,
        .num_tokens = static_cast<std::int32_t>(prompt.size()),
        .pos_offset = 0,
        .is_prefill = true}});
  Tensor<float> first = model.Forward(pb, prompt, kv);

  Rollout r;
  auto push = [&r](const Tensor<float>& t) {
    auto row = t.row(0);
    r.logits.emplace_back(row.begin(), row.end());
    r.tokens.push_back(LlamaModel::ArgMax(row));
  };
  push(first);
  std::int64_t pos = static_cast<std::int64_t>(prompt.size());
  for (int t = 0; t + 1 < steps; ++t) {
    std::int32_t in = force.empty() ? r.tokens.back()
                                    : force[static_cast<std::size_t>(t)];
    kv.Extend(s, 1);
    ModelBatch db = ModelBatch::Build({{.seq = s,
                                        .lora = -1,
                                        .num_tokens = 1,
                                        .pos_offset = pos,
                                        .is_prefill = false}});
    std::vector<std::int32_t> ids = {in};
    Tensor<float> l = model.Forward(db, ids, kv);
    push(l);
    ++pos;
  }
  return r;
}

const std::vector<std::vector<std::int32_t>>& Prompts() {
  static const std::vector<std::vector<std::int32_t>> prompts = {
      {1, 2, 3, 4, 5, 6, 7, 8},
      {200, 150, 100, 50, 25, 12},
      {42},
      {9, 9, 9, 9, 17, 17, 17, 17, 33, 33},
  };
  return prompts;
}

struct QualityStats {
  int steps = 0;
  int mismatches = 0;
  double rel_mse_sum = 0.0;

  double divergence() const {
    return steps == 0 ? 0.0 : static_cast<double>(mismatches) / steps;
  }
  double mean_rel_mse() const {
    return steps == 0 ? 0.0 : rel_mse_sum / steps;
  }
};

/// Teacher-forced comparison of `dtype` against f16 over all prompts.
QualityStats CompareAgainstF16(WeightDtype dtype, int steps_per_prompt) {
  LlamaConfig f16_config = TinyLlama();
  LlamaConfig q_config = TinyLlama();
  q_config.weight_dtype = dtype;
  QualityStats stats;
  std::uint64_t seed = 31;
  for (const auto& prompt : Prompts()) {
    Rollout ref = RunModel(f16_config, seed, prompt, steps_per_prompt);
    Rollout quant =
        RunModel(q_config, seed, prompt, steps_per_prompt, ref.tokens);
    EXPECT_EQ(ref.logits.size(), quant.logits.size());
    for (std::size_t t = 0; t < ref.logits.size(); ++t) {
      ++stats.steps;
      if (quant.tokens[t] != ref.tokens[t]) ++stats.mismatches;
      double num = 0.0, den = 0.0;
      for (std::size_t j = 0; j < ref.logits[t].size(); ++j) {
        double d = static_cast<double>(quant.logits[t][j]) -
                   static_cast<double>(ref.logits[t][j]);
        num += d * d;
        den += static_cast<double>(ref.logits[t][j]) * ref.logits[t][j];
      }
      stats.rel_mse_sum += den > 0.0 ? num / den : 0.0;
    }
    ++seed;  // fresh weights per prompt widens the sample
  }
  return stats;
}

TEST(QuantQualityTest, Q8GreedyStreamsDivergeInAtMostOnePercentOfSteps) {
  QualityStats s = CompareAgainstF16(WeightDtype::kQ8_0,
                                     /*steps_per_prompt=*/64);
  ASSERT_GE(s.steps, 256);
  EXPECT_LE(s.divergence(), 0.01)
      << s.mismatches << " of " << s.steps << " steps diverged";
}

TEST(QuantQualityTest, Q8RelativeLogitMseUnderDocumentedBound) {
  QualityStats s = CompareAgainstF16(WeightDtype::kQ8_0,
                                     /*steps_per_prompt=*/32);
  EXPECT_LT(s.mean_rel_mse(), 1e-3) << "measured " << s.mean_rel_mse();
}

TEST(QuantQualityTest, Q4RelativeLogitMseUnderDocumentedBound) {
  QualityStats s = CompareAgainstF16(WeightDtype::kQ4_0,
                                     /*steps_per_prompt=*/32);
  EXPECT_LT(s.mean_rel_mse(), 0.25) << "measured " << s.mean_rel_mse();
}

TEST(QuantQualityTest, QuantizedForwardIsDeterministic) {
  // Two identically-seeded quantized models produce bit-identical logits —
  // quantization depends only on the f16 bits, never on ambient state.
  for (WeightDtype dtype : {WeightDtype::kQ8_0, WeightDtype::kQ4_0}) {
    LlamaConfig config = TinyLlama();
    config.weight_dtype = dtype;
    Rollout a = RunModel(config, 7, Prompts()[0], 8);
    Rollout b = RunModel(config, 7, Prompts()[0], 8);
    ASSERT_EQ(a.logits.size(), b.logits.size());
    for (std::size_t t = 0; t < a.logits.size(); ++t) {
      ASSERT_EQ(a.logits[t], b.logits[t])
          << WeightDtypeName(dtype) << " step " << t;
    }
  }
}

}  // namespace
}  // namespace punica
