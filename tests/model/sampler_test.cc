#include "model/sampler.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace punica {
namespace {

TEST(SamplerTest, ArgMaxAndTiebreak) {
  std::vector<float> logits = {1.0f, 5.0f, 5.0f, 2.0f};
  EXPECT_EQ(ArgMaxToken(logits), 1);  // lowest index among ties
}

TEST(SamplerTest, TemperatureZeroIsGreedy) {
  Sampler greedy({.temperature = 0.0});
  Pcg32 rng(1);
  std::vector<float> logits = {0.1f, 3.0f, -2.0f};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(greedy.Sample(logits, rng), 1);
  }
}

TEST(SamplerTest, TopK1IsGreedy) {
  Sampler s({.temperature = 1.0, .top_k = 1});
  Pcg32 rng(2);
  std::vector<float> logits = {0.5f, -1.0f, 4.0f, 3.9f};
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(s.Sample(logits, rng), 2);
  }
}

TEST(SamplerTest, TopKExcludesTail) {
  Sampler s({.temperature = 1.0, .top_k = 2});
  Pcg32 rng(3);
  std::vector<float> logits = {5.0f, 4.9f, -100.0f, -100.0f};
  for (int i = 0; i < 200; ++i) {
    std::int32_t tok = s.Sample(logits, rng);
    EXPECT_TRUE(tok == 0 || tok == 1) << tok;
  }
}

TEST(SamplerTest, TopPExcludesTail) {
  // Token 0 holds ~88% of the mass; top_p = 0.5 must keep only it.
  Sampler s({.temperature = 1.0, .top_p = 0.5});
  Pcg32 rng(4);
  std::vector<float> logits = {2.0f, 0.0f, 0.0f};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(s.Sample(logits, rng), 0);
  }
}

TEST(SamplerTest, SamplingFrequenciesMatchSoftmax) {
  Sampler s({.temperature = 1.0});
  Pcg32 rng(5);
  // softmax([1, 0]) ≈ [0.731, 0.269]
  std::vector<float> logits = {1.0f, 0.0f};
  std::map<std::int32_t, int> counts;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[s.Sample(logits, rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / kDraws, 0.731, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / kDraws, 0.269, 0.01);
}

TEST(SamplerTest, LowTemperatureSharpens) {
  Pcg32 rng(6);
  std::vector<float> logits = {1.0f, 0.0f};
  Sampler cold({.temperature = 0.25});
  int top = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (cold.Sample(logits, rng) == 0) ++top;
  }
  // softmax([4, 0]) ≈ [0.982, 0.018] at T=0.25.
  EXPECT_NEAR(static_cast<double>(top) / kDraws, 0.982, 0.01);
}

TEST(SamplerTest, HighTemperatureFlattens) {
  Pcg32 rng(7);
  std::vector<float> logits = {1.0f, 0.0f};
  Sampler hot({.temperature = 10.0});
  int top = 0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (hot.Sample(logits, rng) == 0) ++top;
  }
  // softmax([0.1, 0]) ≈ [0.525, 0.475].
  EXPECT_NEAR(static_cast<double>(top) / kDraws, 0.525, 0.015);
}

TEST(SamplerTest, DeterministicInRngState) {
  Sampler s({.temperature = 1.3, .top_k = 8, .top_p = 0.9});
  std::vector<float> logits;
  for (int i = 0; i < 32; ++i) {
    logits.push_back(static_cast<float>(i % 7) * 0.3f);
  }
  Pcg32 a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(s.Sample(logits, a), s.Sample(logits, b));
  }
}

TEST(SamplerDeathTest, InvalidConfigAborts) {
  EXPECT_DEATH(Sampler({.temperature = -1.0}), "PUNICA_CHECK");
  EXPECT_DEATH(Sampler({.top_p = 0.0}), "PUNICA_CHECK");
  EXPECT_DEATH(Sampler({.top_p = 1.5}), "PUNICA_CHECK");
}

TEST(SamplerDeathTest, EmptyLogitsAborts) {
  Sampler s;
  Pcg32 rng(1);
  std::vector<float> empty;
  EXPECT_DEATH(s.Sample(empty, rng), "PUNICA_CHECK");
}

}  // namespace
}  // namespace punica
