#include "model/attention.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tensor/gemm.h"
#include "util/rng.h"

namespace punica {
namespace {

LlamaConfig TestConfig() {
  LlamaConfig c;
  c.name = "attn-test";
  c.hidden_size = 32;
  c.num_layers = 2;
  c.num_heads = 4;
  c.num_kv_heads = 2;  // GQA group of 2
  c.ffn_hidden = 64;
  c.vocab_size = 64;
  return c;
}

KvCacheConfig KvConfigFor(const LlamaConfig& c, std::int32_t pages = 64) {
  return {.num_layers = c.num_layers,
          .num_kv_heads = c.num_kv_heads,
          .head_dim = c.head_dim(),
          .page_size = 4,
          .num_pages = pages};
}

// Fills K/V entries of `seq` for positions [0, len) with random values and
// returns them as dense float arrays [len, kv_dim].
struct DenseKv {
  std::vector<float> k;
  std::vector<float> v;
};
DenseKv FillRandomKv(PagedKvCache& kv, SeqId seq, int layer, std::int64_t len,
                     const LlamaConfig& c, Pcg32& rng) {
  DenseKv out;
  auto kvd = static_cast<std::size_t>(c.kv_dim());
  out.k.resize(static_cast<std::size_t>(len) * kvd);
  out.v.resize(static_cast<std::size_t>(len) * kvd);
  for (std::int64_t pos = 0; pos < len; ++pos) {
    auto ke = kv.Entry(seq, layer, pos, KvSlot::kKey);
    auto ve = kv.Entry(seq, layer, pos, KvSlot::kValue);
    for (std::size_t d = 0; d < kvd; ++d) {
      f16 kval(static_cast<float>(rng.NextGaussian()) * 0.5f);
      f16 vval(static_cast<float>(rng.NextGaussian()) * 0.5f);
      ke[d] = kval;
      ve[d] = vval;
      // Reference sees the same fp16-quantised values.
      out.k[static_cast<std::size_t>(pos) * kvd + d] = kval.ToFloat();
      out.v[static_cast<std::size_t>(pos) * kvd + d] = vval.ToFloat();
    }
  }
  return out;
}

// Dense single-token attention oracle with materialised softmax.
std::vector<float> DenseAttend(const LlamaConfig& c, const DenseKv& kv,
                               std::int64_t kv_len,
                               std::span<const float> q) {
  int hd = c.head_dim();
  int group = c.num_heads / c.num_kv_heads;
  float scale = 1.0f / std::sqrt(static_cast<float>(hd));
  std::vector<float> out(static_cast<std::size_t>(c.num_heads) *
                         static_cast<std::size_t>(hd));
  auto kvd = static_cast<std::size_t>(c.kv_dim());
  for (int h = 0; h < c.num_heads; ++h) {
    int kvh = h / group;
    std::vector<float> scores(static_cast<std::size_t>(kv_len));
    for (std::int64_t p = 0; p < kv_len; ++p) {
      float s = 0.0f;
      for (int d = 0; d < hd; ++d) {
        s += q[static_cast<std::size_t>(h * hd + d)] *
             kv.k[static_cast<std::size_t>(p) * kvd +
                  static_cast<std::size_t>(kvh * hd + d)];
      }
      scores[static_cast<std::size_t>(p)] = s * scale;
    }
    SoftmaxInPlace(scores);
    for (int d = 0; d < hd; ++d) {
      float acc = 0.0f;
      for (std::int64_t p = 0; p < kv_len; ++p) {
        acc += scores[static_cast<std::size_t>(p)] *
               kv.v[static_cast<std::size_t>(p) * kvd +
                    static_cast<std::size_t>(kvh * hd + d)];
      }
      out[static_cast<std::size_t>(h * hd + d)] = acc;
    }
  }
  return out;
}

TEST(AttentionTest, DecodeMatchesDenseOracle) {
  LlamaConfig c = TestConfig();
  PagedKvCache kv(KvConfigFor(c));
  Pcg32 rng(1);
  SeqId seq = kv.CreateSequence();
  const std::int64_t len = 13;
  ASSERT_TRUE(kv.Extend(seq, len));
  DenseKv dense = FillRandomKv(kv, seq, 0, len, c, rng);

  auto q = RandomGaussianVector(
      static_cast<std::size_t>(c.num_heads) *
          static_cast<std::size_t>(c.head_dim()),
      1.0f, rng);
  std::vector<float> out(q.size());
  std::vector<SeqId> seqs = {seq};
  BatchDecodeAttention(c, kv, seqs, 0, q, out);

  auto ref = DenseAttend(c, dense, len, q);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i], ref[i], 2e-3f) << i;
  }
}

TEST(AttentionTest, DecodeBatchRowsIndependent) {
  LlamaConfig c = TestConfig();
  PagedKvCache kv(KvConfigFor(c));
  Pcg32 rng(2);
  SeqId s1 = kv.CreateSequence();
  SeqId s2 = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(s1, 5));
  ASSERT_TRUE(kv.Extend(s2, 9));
  DenseKv d1 = FillRandomKv(kv, s1, 0, 5, c, rng);
  DenseKv d2 = FillRandomKv(kv, s2, 0, 9, c, rng);

  std::size_t width = static_cast<std::size_t>(c.num_heads) *
                      static_cast<std::size_t>(c.head_dim());
  auto q = RandomGaussianVector(2 * width, 1.0f, rng);
  std::vector<float> out(q.size());
  std::vector<SeqId> seqs = {s1, s2};
  BatchDecodeAttention(c, kv, seqs, 0, q, out);

  auto ref1 = DenseAttend(c, d1, 5, std::span<const float>(q).first(width));
  auto ref2 = DenseAttend(c, d2, 9, std::span<const float>(q).subspan(width));
  for (std::size_t i = 0; i < width; ++i) {
    EXPECT_NEAR(out[i], ref1[i], 2e-3f);
    EXPECT_NEAR(out[width + i], ref2[i], 2e-3f);
  }
}

TEST(AttentionTest, PrefillIsCausal) {
  LlamaConfig c = TestConfig();
  PagedKvCache kv(KvConfigFor(c));
  Pcg32 rng(3);
  SeqId seq = kv.CreateSequence();
  const std::int64_t len = 7;
  ASSERT_TRUE(kv.Extend(seq, len));
  DenseKv dense = FillRandomKv(kv, seq, 0, len, c, rng);

  std::size_t width = static_cast<std::size_t>(c.num_heads) *
                      static_cast<std::size_t>(c.head_dim());
  auto q = RandomGaussianVector(static_cast<std::size_t>(len) * width, 1.0f,
                                rng);
  std::vector<float> out(q.size());
  BatchPrefillAttention(c, kv, seq, 0, 0, q, out);

  // Token j must equal a dense attend over only the first j+1 positions.
  for (std::int64_t j = 0; j < len; ++j) {
    auto ref = DenseAttend(
        c, dense, j + 1,
        std::span<const float>(q).subspan(static_cast<std::size_t>(j) * width,
                                          width));
    for (std::size_t i = 0; i < width; ++i) {
      EXPECT_NEAR(out[static_cast<std::size_t>(j) * width + i], ref[i], 2e-3f)
          << "token " << j << " elt " << i;
    }
  }
}

TEST(AttentionTest, PrefillWithOffsetSeesEarlierContext) {
  // A chunk starting at pos_offset attends over [0, offset + j] — the
  // re-prefill path used by migration.
  LlamaConfig c = TestConfig();
  PagedKvCache kv(KvConfigFor(c));
  Pcg32 rng(4);
  SeqId seq = kv.CreateSequence();
  const std::int64_t total = 10, offset = 6;
  ASSERT_TRUE(kv.Extend(seq, total));
  DenseKv dense = FillRandomKv(kv, seq, 0, total, c, rng);

  std::size_t width = static_cast<std::size_t>(c.num_heads) *
                      static_cast<std::size_t>(c.head_dim());
  auto q = RandomGaussianVector(static_cast<std::size_t>(total - offset) *
                                    width,
                                1.0f, rng);
  std::vector<float> out(q.size());
  BatchPrefillAttention(c, kv, seq, 0, offset, q, out);
  for (std::int64_t j = 0; j < total - offset; ++j) {
    auto ref = DenseAttend(
        c, dense, offset + j + 1,
        std::span<const float>(q).subspan(static_cast<std::size_t>(j) * width,
                                          width));
    for (std::size_t i = 0; i < width; ++i) {
      EXPECT_NEAR(out[static_cast<std::size_t>(j) * width + i], ref[i], 2e-3f);
    }
  }
}

TEST(AttentionTest, SingleTokenPrefillEqualsDecode) {
  // The last prompt token attending over the full cache must give the same
  // result through both kernels (the paper's mixed batch relies on this).
  LlamaConfig c = TestConfig();
  PagedKvCache kv(KvConfigFor(c));
  Pcg32 rng(5);
  SeqId seq = kv.CreateSequence();
  const std::int64_t len = 6;
  ASSERT_TRUE(kv.Extend(seq, len));
  FillRandomKv(kv, seq, 1, len, c, rng);

  std::size_t width = static_cast<std::size_t>(c.num_heads) *
                      static_cast<std::size_t>(c.head_dim());
  auto q = RandomGaussianVector(width, 1.0f, rng);
  std::vector<float> out_prefill(width);
  BatchPrefillAttention(c, kv, seq, 1, len - 1, q, out_prefill);
  std::vector<float> out_decode(width);
  std::vector<SeqId> seqs = {seq};
  BatchDecodeAttention(c, kv, seqs, 1, q, out_decode);
  for (std::size_t i = 0; i < width; ++i) {
    EXPECT_NEAR(out_prefill[i], out_decode[i], 1e-5f);
  }
}

TEST(AttentionTest, LayersAreIsolated) {
  LlamaConfig c = TestConfig();
  PagedKvCache kv(KvConfigFor(c));
  Pcg32 rng(6);
  SeqId seq = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(seq, 4));
  DenseKv l0 = FillRandomKv(kv, seq, 0, 4, c, rng);
  DenseKv l1 = FillRandomKv(kv, seq, 1, 4, c, rng);

  std::size_t width = static_cast<std::size_t>(c.num_heads) *
                      static_cast<std::size_t>(c.head_dim());
  auto q = RandomGaussianVector(width, 1.0f, rng);
  std::vector<SeqId> seqs = {seq};
  std::vector<float> out0(width), out1(width);
  BatchDecodeAttention(c, kv, seqs, 0, q, out0);
  BatchDecodeAttention(c, kv, seqs, 1, q, out1);
  auto ref0 = DenseAttend(c, l0, 4, q);
  auto ref1 = DenseAttend(c, l1, 4, q);
  for (std::size_t i = 0; i < width; ++i) {
    EXPECT_NEAR(out0[i], ref0[i], 2e-3f);
    EXPECT_NEAR(out1[i], ref1[i], 2e-3f);
  }
}

TEST(AttentionTest, UniformValuesGiveUniformOutput) {
  // If all V entries are identical, attention output equals V regardless of
  // the score distribution — a softmax-normalisation sanity check.
  LlamaConfig c = TestConfig();
  PagedKvCache kv(KvConfigFor(c));
  Pcg32 rng(7);
  SeqId seq = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(seq, 5));
  for (std::int64_t pos = 0; pos < 5; ++pos) {
    auto ke = kv.Entry(seq, 0, pos, KvSlot::kKey);
    auto ve = kv.Entry(seq, 0, pos, KvSlot::kValue);
    for (std::size_t d = 0; d < ke.size(); ++d) {
      ke[d] = f16(static_cast<float>(rng.NextGaussian()));
      ve[d] = f16(0.75f);
    }
  }
  std::size_t width = static_cast<std::size_t>(c.num_heads) *
                      static_cast<std::size_t>(c.head_dim());
  auto q = RandomGaussianVector(width, 1.0f, rng);
  std::vector<float> out(width);
  std::vector<SeqId> seqs = {seq};
  BatchDecodeAttention(c, kv, seqs, 0, q, out);
  for (float v : out) EXPECT_NEAR(v, 0.75f, 1e-3f);
}

}  // namespace
}  // namespace punica
