#include "model/attention.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "tensor/gemm.h"
#include "util/rng.h"

namespace punica {
namespace {

LlamaConfig TestConfig() {
  LlamaConfig c;
  c.name = "attn-test";
  c.hidden_size = 32;
  c.num_layers = 2;
  c.num_heads = 4;
  c.num_kv_heads = 2;  // GQA group of 2
  c.ffn_hidden = 64;
  c.vocab_size = 64;
  return c;
}

KvCacheConfig KvConfigFor(const LlamaConfig& c, std::int32_t pages = 64) {
  return {.num_layers = c.num_layers,
          .num_kv_heads = c.num_kv_heads,
          .head_dim = c.head_dim(),
          .page_size = 4,
          .num_pages = pages};
}

// Fills K/V entries of `seq` for positions [0, len) with random values and
// returns them as dense float arrays [len, kv_dim].
struct DenseKv {
  std::vector<float> k;
  std::vector<float> v;
};
DenseKv FillRandomKv(PagedKvCache& kv, SeqId seq, int layer, std::int64_t len,
                     const LlamaConfig& c, Pcg32& rng) {
  DenseKv out;
  auto kvd = static_cast<std::size_t>(c.kv_dim());
  out.k.resize(static_cast<std::size_t>(len) * kvd);
  out.v.resize(static_cast<std::size_t>(len) * kvd);
  for (std::int64_t pos = 0; pos < len; ++pos) {
    auto ke = kv.Entry(seq, layer, pos, KvSlot::kKey);
    auto ve = kv.Entry(seq, layer, pos, KvSlot::kValue);
    for (std::size_t d = 0; d < kvd; ++d) {
      f16 kval(static_cast<float>(rng.NextGaussian()) * 0.5f);
      f16 vval(static_cast<float>(rng.NextGaussian()) * 0.5f);
      ke[d] = kval;
      ve[d] = vval;
      // Reference sees the same fp16-quantised values.
      out.k[static_cast<std::size_t>(pos) * kvd + d] = kval.ToFloat();
      out.v[static_cast<std::size_t>(pos) * kvd + d] = vval.ToFloat();
    }
  }
  return out;
}

// Dense single-token attention oracle with materialised softmax.
std::vector<float> DenseAttend(const LlamaConfig& c, const DenseKv& kv,
                               std::int64_t kv_len,
                               std::span<const float> q) {
  int hd = c.head_dim();
  int group = c.num_heads / c.num_kv_heads;
  float scale = 1.0f / std::sqrt(static_cast<float>(hd));
  std::vector<float> out(static_cast<std::size_t>(c.num_heads) *
                         static_cast<std::size_t>(hd));
  auto kvd = static_cast<std::size_t>(c.kv_dim());
  for (int h = 0; h < c.num_heads; ++h) {
    int kvh = h / group;
    std::vector<float> scores(static_cast<std::size_t>(kv_len));
    for (std::int64_t p = 0; p < kv_len; ++p) {
      float s = 0.0f;
      for (int d = 0; d < hd; ++d) {
        s += q[static_cast<std::size_t>(h * hd + d)] *
             kv.k[static_cast<std::size_t>(p) * kvd +
                  static_cast<std::size_t>(kvh * hd + d)];
      }
      scores[static_cast<std::size_t>(p)] = s * scale;
    }
    SoftmaxInPlace(scores);
    for (int d = 0; d < hd; ++d) {
      float acc = 0.0f;
      for (std::int64_t p = 0; p < kv_len; ++p) {
        acc += scores[static_cast<std::size_t>(p)] *
               kv.v[static_cast<std::size_t>(p) * kvd +
                    static_cast<std::size_t>(kvh * hd + d)];
      }
      out[static_cast<std::size_t>(h * hd + d)] = acc;
    }
  }
  return out;
}

TEST(AttentionTest, DecodeMatchesDenseOracle) {
  LlamaConfig c = TestConfig();
  PagedKvCache kv(KvConfigFor(c));
  Pcg32 rng(1);
  SeqId seq = kv.CreateSequence();
  const std::int64_t len = 13;
  ASSERT_TRUE(kv.Extend(seq, len));
  DenseKv dense = FillRandomKv(kv, seq, 0, len, c, rng);

  auto q = RandomGaussianVector(
      static_cast<std::size_t>(c.num_heads) *
          static_cast<std::size_t>(c.head_dim()),
      1.0f, rng);
  std::vector<float> out(q.size());
  std::vector<SeqId> seqs = {seq};
  BatchDecodeAttention(c, kv, seqs, 0, q, out);

  auto ref = DenseAttend(c, dense, len, q);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i], ref[i], 2e-3f) << i;
  }
}

TEST(AttentionTest, DecodeBatchRowsIndependent) {
  LlamaConfig c = TestConfig();
  PagedKvCache kv(KvConfigFor(c));
  Pcg32 rng(2);
  SeqId s1 = kv.CreateSequence();
  SeqId s2 = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(s1, 5));
  ASSERT_TRUE(kv.Extend(s2, 9));
  DenseKv d1 = FillRandomKv(kv, s1, 0, 5, c, rng);
  DenseKv d2 = FillRandomKv(kv, s2, 0, 9, c, rng);

  std::size_t width = static_cast<std::size_t>(c.num_heads) *
                      static_cast<std::size_t>(c.head_dim());
  auto q = RandomGaussianVector(2 * width, 1.0f, rng);
  std::vector<float> out(q.size());
  std::vector<SeqId> seqs = {s1, s2};
  BatchDecodeAttention(c, kv, seqs, 0, q, out);

  auto ref1 = DenseAttend(c, d1, 5, std::span<const float>(q).first(width));
  auto ref2 = DenseAttend(c, d2, 9, std::span<const float>(q).subspan(width));
  for (std::size_t i = 0; i < width; ++i) {
    EXPECT_NEAR(out[i], ref1[i], 2e-3f);
    EXPECT_NEAR(out[width + i], ref2[i], 2e-3f);
  }
}

TEST(AttentionTest, PrefillIsCausal) {
  LlamaConfig c = TestConfig();
  PagedKvCache kv(KvConfigFor(c));
  Pcg32 rng(3);
  SeqId seq = kv.CreateSequence();
  const std::int64_t len = 7;
  ASSERT_TRUE(kv.Extend(seq, len));
  DenseKv dense = FillRandomKv(kv, seq, 0, len, c, rng);

  std::size_t width = static_cast<std::size_t>(c.num_heads) *
                      static_cast<std::size_t>(c.head_dim());
  auto q = RandomGaussianVector(static_cast<std::size_t>(len) * width, 1.0f,
                                rng);
  std::vector<float> out(q.size());
  BatchPrefillAttention(c, kv, seq, 0, 0, q, out);

  // Token j must equal a dense attend over only the first j+1 positions.
  for (std::int64_t j = 0; j < len; ++j) {
    auto ref = DenseAttend(
        c, dense, j + 1,
        std::span<const float>(q).subspan(static_cast<std::size_t>(j) * width,
                                          width));
    for (std::size_t i = 0; i < width; ++i) {
      EXPECT_NEAR(out[static_cast<std::size_t>(j) * width + i], ref[i], 2e-3f)
          << "token " << j << " elt " << i;
    }
  }
}

TEST(AttentionTest, PrefillWithOffsetSeesEarlierContext) {
  // A chunk starting at pos_offset attends over [0, offset + j] — the
  // re-prefill path used by migration.
  LlamaConfig c = TestConfig();
  PagedKvCache kv(KvConfigFor(c));
  Pcg32 rng(4);
  SeqId seq = kv.CreateSequence();
  const std::int64_t total = 10, offset = 6;
  ASSERT_TRUE(kv.Extend(seq, total));
  DenseKv dense = FillRandomKv(kv, seq, 0, total, c, rng);

  std::size_t width = static_cast<std::size_t>(c.num_heads) *
                      static_cast<std::size_t>(c.head_dim());
  auto q = RandomGaussianVector(static_cast<std::size_t>(total - offset) *
                                    width,
                                1.0f, rng);
  std::vector<float> out(q.size());
  BatchPrefillAttention(c, kv, seq, 0, offset, q, out);
  for (std::int64_t j = 0; j < total - offset; ++j) {
    auto ref = DenseAttend(
        c, dense, offset + j + 1,
        std::span<const float>(q).subspan(static_cast<std::size_t>(j) * width,
                                          width));
    for (std::size_t i = 0; i < width; ++i) {
      EXPECT_NEAR(out[static_cast<std::size_t>(j) * width + i], ref[i], 2e-3f);
    }
  }
}

TEST(AttentionTest, SingleTokenPrefillEqualsDecode) {
  // The last prompt token attending over the full cache must give the same
  // result through both kernels (the paper's mixed batch relies on this).
  LlamaConfig c = TestConfig();
  PagedKvCache kv(KvConfigFor(c));
  Pcg32 rng(5);
  SeqId seq = kv.CreateSequence();
  const std::int64_t len = 6;
  ASSERT_TRUE(kv.Extend(seq, len));
  FillRandomKv(kv, seq, 1, len, c, rng);

  std::size_t width = static_cast<std::size_t>(c.num_heads) *
                      static_cast<std::size_t>(c.head_dim());
  auto q = RandomGaussianVector(width, 1.0f, rng);
  std::vector<float> out_prefill(width);
  BatchPrefillAttention(c, kv, seq, 1, len - 1, q, out_prefill);
  std::vector<float> out_decode(width);
  std::vector<SeqId> seqs = {seq};
  BatchDecodeAttention(c, kv, seqs, 1, q, out_decode);
  for (std::size_t i = 0; i < width; ++i) {
    EXPECT_NEAR(out_prefill[i], out_decode[i], 1e-5f);
  }
}

TEST(AttentionTest, LayersAreIsolated) {
  LlamaConfig c = TestConfig();
  PagedKvCache kv(KvConfigFor(c));
  Pcg32 rng(6);
  SeqId seq = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(seq, 4));
  DenseKv l0 = FillRandomKv(kv, seq, 0, 4, c, rng);
  DenseKv l1 = FillRandomKv(kv, seq, 1, 4, c, rng);

  std::size_t width = static_cast<std::size_t>(c.num_heads) *
                      static_cast<std::size_t>(c.head_dim());
  auto q = RandomGaussianVector(width, 1.0f, rng);
  std::vector<SeqId> seqs = {seq};
  std::vector<float> out0(width), out1(width);
  BatchDecodeAttention(c, kv, seqs, 0, q, out0);
  BatchDecodeAttention(c, kv, seqs, 1, q, out1);
  auto ref0 = DenseAttend(c, l0, 4, q);
  auto ref1 = DenseAttend(c, l1, 4, q);
  for (std::size_t i = 0; i < width; ++i) {
    EXPECT_NEAR(out0[i], ref0[i], 2e-3f);
    EXPECT_NEAR(out1[i], ref1[i], 2e-3f);
  }
}

TEST(AttentionTest, UniformValuesGiveUniformOutput) {
  // If all V entries are identical, attention output equals V regardless of
  // the score distribution — a softmax-normalisation sanity check.
  LlamaConfig c = TestConfig();
  PagedKvCache kv(KvConfigFor(c));
  Pcg32 rng(7);
  SeqId seq = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(seq, 5));
  for (std::int64_t pos = 0; pos < 5; ++pos) {
    auto ke = kv.Entry(seq, 0, pos, KvSlot::kKey);
    auto ve = kv.Entry(seq, 0, pos, KvSlot::kValue);
    for (std::size_t d = 0; d < ke.size(); ++d) {
      ke[d] = f16(static_cast<float>(rng.NextGaussian()));
      ve[d] = f16(0.75f);
    }
  }
  std::size_t width = static_cast<std::size_t>(c.num_heads) *
                      static_cast<std::size_t>(c.head_dim());
  auto q = RandomGaussianVector(width, 1.0f, rng);
  std::vector<float> out(width);
  std::vector<SeqId> seqs = {seq};
  BatchDecodeAttention(c, kv, seqs, 0, q, out);
  for (float v : out) EXPECT_NEAR(v, 0.75f, 1e-3f);
}

TEST(AttentionTest, DecodeAtPageAndBlockBoundaries) {
  // kv_len landing exactly on / one past a page boundary (page_size 4) and
  // on / one past the fixed softmax block (kAttnBlockLen) must all match
  // the oracle — the run iterator's edge cases.
  LlamaConfig c = TestConfig();
  for (std::int64_t len :
       {std::int64_t{4}, std::int64_t{5}, std::int64_t{8}, std::int64_t{9},
        kAttnBlockLen, kAttnBlockLen + 1}) {
    PagedKvCache kv(KvConfigFor(c));
    Pcg32 rng(100 + static_cast<std::uint64_t>(len));
    SeqId seq = kv.CreateSequence();
    ASSERT_TRUE(kv.Extend(seq, len));
    DenseKv dense = FillRandomKv(kv, seq, 0, len, c, rng);
    std::size_t width = static_cast<std::size_t>(c.num_heads) *
                        static_cast<std::size_t>(c.head_dim());
    auto q = RandomGaussianVector(width, 1.0f, rng);
    std::vector<float> out(width);
    std::vector<SeqId> seqs = {seq};
    BatchDecodeAttention(c, kv, seqs, 0, q, out);
    auto ref = DenseAttend(c, dense, len, q);
    for (std::size_t i = 0; i < width; ++i) {
      EXPECT_NEAR(out[i], ref[i], 2e-3f) << "len " << len << " elt " << i;
    }
  }
}

TEST(AttentionTest, ForcedSplitsBitIdenticalAndMatchOracle) {
  // Split size is purely a scheduling knob: forced S ∈ {1, 3, huge} must
  // produce bit-identical outputs (fixed-block fold) and match the oracle.
  LlamaConfig c = TestConfig();
  PagedKvCache kv(KvConfigFor(c));
  Pcg32 rng(11);
  SeqId seq = kv.CreateSequence();
  const std::int64_t len = 200;  // spans two kAttnBlockLen blocks
  ASSERT_TRUE(kv.Extend(seq, len));
  DenseKv dense = FillRandomKv(kv, seq, 0, len, c, rng);
  std::size_t width = static_cast<std::size_t>(c.num_heads) *
                      static_cast<std::size_t>(c.head_dim());
  auto q = RandomGaussianVector(width, 1.0f, rng);
  std::vector<SeqId> seqs = {seq};

  ComputeContext base({.num_threads = 4, .attn_split = 1});
  std::vector<float> ref_out(width);
  BatchDecodeAttention(c, kv, seqs, 0, q, ref_out, base);
  auto oracle = DenseAttend(c, dense, len, q);
  for (std::size_t i = 0; i < width; ++i) {
    EXPECT_NEAR(ref_out[i], oracle[i], 2e-3f) << i;
  }

  // heads × kv_len = 800 requested; the resolver clamps to kMaxAttnSplit,
  // far beyond the 2 available blocks — the degenerate oversplit case.
  for (int s : {3, c.num_heads * static_cast<int>(len)}) {
    ComputeContext ctx({.num_threads = 4, .attn_split = s});
    std::vector<float> out(width);
    BatchDecodeAttention(c, kv, seqs, 0, q, out, ctx);
    EXPECT_EQ(std::memcmp(out.data(), ref_out.data(),
                          width * sizeof(float)),
              0)
        << "split " << s << " changed the stream";
  }
}

TEST(AttentionTest, RangedGqaMatchesFullUnderSplit) {
  // Each TP rank's head range, computed under a forced split, must be
  // bit-identical to its slice of the full-width result: per-(row, head)
  // math is independent and the fold order is fixed.
  LlamaConfig c = TestConfig();  // 4 heads, 2 kv heads (GQA group 2)
  PagedKvCache kv(KvConfigFor(c));
  Pcg32 rng(12);
  SeqId s1 = kv.CreateSequence();
  SeqId s2 = kv.CreateSequence();
  ASSERT_TRUE(kv.Extend(s1, 150));
  ASSERT_TRUE(kv.Extend(s2, 33));
  FillRandomKv(kv, s1, 0, 150, c, rng);
  FillRandomKv(kv, s2, 0, 33, c, rng);

  int hd = c.head_dim();
  std::size_t width = static_cast<std::size_t>(c.num_heads * hd);
  auto q = RandomGaussianVector(2 * width, 1.0f, rng);
  std::vector<SeqId> seqs = {s1, s2};
  ComputeContext ctx({.num_threads = 4, .attn_split = 3});
  std::vector<float> full(q.size());
  BatchDecodeAttention(c, kv, seqs, 0, q, full, ctx);

  for (int head_begin : {0, 2}) {  // the two GQA groups
    int head_end = head_begin + 2;
    std::size_t part = static_cast<std::size_t>(2 * hd);
    std::vector<float> qr(2 * part), outr(2 * part);
    for (int row = 0; row < 2; ++row) {
      std::copy_n(q.begin() + row * width +
                      static_cast<std::size_t>(head_begin * hd),
                  part, qr.begin() + static_cast<std::size_t>(row) * part);
    }
    BatchDecodeAttentionRanged(c, kv, seqs, 0, qr, outr, head_begin,
                               head_end, ctx);
    for (int row = 0; row < 2; ++row) {
      EXPECT_EQ(std::memcmp(
                    outr.data() + static_cast<std::size_t>(row) * part,
                    full.data() + row * width +
                        static_cast<std::size_t>(head_begin * hd),
                    part * sizeof(float)),
                0)
          << "row " << row << " heads [" << head_begin << "," << head_end
          << ")";
    }
  }
}

TEST(AttentionTest, PrefillRangedHonoursSplitAndMatchesFull) {
  // The ranged prefill variant goes through the same split machinery; a
  // forced split must leave its stream bit-identical to the full result.
  LlamaConfig c = TestConfig();
  PagedKvCache kv(KvConfigFor(c));
  Pcg32 rng(13);
  SeqId seq = kv.CreateSequence();
  const std::int64_t total = 140, offset = 132;  // rows see > 1 block
  ASSERT_TRUE(kv.Extend(seq, total));
  FillRandomKv(kv, seq, 0, total, c, rng);

  int hd = c.head_dim();
  std::size_t width = static_cast<std::size_t>(c.num_heads * hd);
  std::int64_t chunk = total - offset;
  auto q = RandomGaussianVector(static_cast<std::size_t>(chunk) * width,
                                1.0f, rng);
  std::vector<float> full(q.size());
  BatchPrefillAttention(c, kv, seq, 0, offset, q, full,
                        ComputeContext({.num_threads = 4, .attn_split = 1}));

  ComputeContext ctx({.num_threads = 4, .attn_split = 3});
  std::size_t part = static_cast<std::size_t>(2 * hd);
  for (int head_begin : {0, 2}) {
    std::vector<float> qr(static_cast<std::size_t>(chunk) * part);
    std::vector<float> outr(qr.size());
    for (std::int64_t j = 0; j < chunk; ++j) {
      std::copy_n(q.begin() + static_cast<std::size_t>(j) * width +
                      static_cast<std::size_t>(head_begin * hd),
                  part, qr.begin() + static_cast<std::size_t>(j) * part);
    }
    BatchPrefillAttentionRanged(c, kv, seq, 0, offset, qr, outr, head_begin,
                                head_begin + 2, ctx);
    for (std::int64_t j = 0; j < chunk; ++j) {
      EXPECT_EQ(std::memcmp(
                    outr.data() + static_cast<std::size_t>(j) * part,
                    full.data() + static_cast<std::size_t>(j) * width +
                        static_cast<std::size_t>(head_begin * hd),
                    part * sizeof(float)),
                0)
          << "token " << j << " head_begin " << head_begin;
    }
  }
}

}  // namespace
}  // namespace punica
