// Cross-validation between the measured tensor-parallel execution tier and
// the analytical cost model — the TP counterpart of
// costmodel_paper_anchors_test, which pins the model to the paper's numbers.
//
// Part A pins the model's own 70B TP scaling curve (deterministic, every
// build): monotone, sublinear, inside a band recorded from the calibrated
// model, with the all-reduce term visibly paid and the KvCache capacity
// freed by sharding growing with tp. It also checks the analytic invariant
// Part B measures against: with every fixed overhead zeroed the model is a
// pure roofline, and a decode step's predicted speedup at degree tp is
// exactly tp (all byte and FLOP terms divide by tp).
//
// Part B runs the real numeric model in per-rank-worker configuration
// (tp ranks × 1 worker each, vs tp=1 × 1 worker) and bounds the measured
// speedup against that roofline prediction. It needs real parallel
// hardware and un-instrumented code, so it skips itself on small hosts and
// in non-Release builds; CI's release job is where it bites.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gpu/costmodel.h"
#include "gpu/specs.h"
#include "kvcache/kvcache.h"
#include "model/config.h"
#include "model/llama.h"
#include "util/rng.h"

namespace punica {
namespace {

// Fig. 12 decode shape: Llama-2 70B, batch 32, mid-stream KV length.
constexpr int kBatch = 32;
constexpr std::int64_t kKvLen = 1550;

TEST(TpCostModelAgreement, SeventyBDecodeSpeedupCurve) {
  CostModel cm(A100Sxm80GB());
  LlamaConfig c = Llama70B();
  double t1 = cm.DecodeStepLatency(c, kBatch, kKvLen, 1);
  std::vector<int> degrees = {2, 4, 8};
  // Calibrated-model values: 1.33 / 1.92 / 2.48. The band is ±20% so
  // parameter recalibration can move the curve without retuning the test,
  // while regressions that flatten or invert the curve still fail.
  std::vector<double> expected = {1.33, 1.92, 2.48};
  double prev = 1.0;
  for (std::size_t i = 0; i < degrees.size(); ++i) {
    int tp = degrees[i];
    double speedup = t1 / cm.DecodeStepLatency(c, kBatch, kKvLen, tp);
    SCOPED_TRACE("tp=" + std::to_string(tp));
    EXPECT_GT(speedup, prev);                  // monotone
    EXPECT_LT(speedup, static_cast<double>(tp));  // sublinear: decode is
    // bandwidth-bound and the per-layer all-reduces + step overhead do not
    // shard, so the curve must bend below ideal.
    EXPECT_GT(speedup, expected[i] * 0.8);
    EXPECT_LT(speedup, expected[i] * 1.2);
    prev = speedup;
  }
}

TEST(TpCostModelAgreement, AllReduceTermIsVisible) {
  // Zeroing only the all-reduce overhead must strictly improve every tp>1
  // latency: the communication seam the concurrent executor synchronizes at
  // is a real term in the model, not a free barrier.
  CostModel with(A100Sxm80GB());
  CostModel without(A100Sxm80GB());
  without.mutable_params().allreduce_overhead_s = 0.0;
  LlamaConfig c = Llama70B();
  EXPECT_EQ(with.DecodeStepLatency(c, kBatch, kKvLen, 1),
            without.DecodeStepLatency(c, kBatch, kKvLen, 1));
  for (int tp : {2, 4, 8}) {
    EXPECT_LT(without.DecodeStepLatency(c, kBatch, kKvLen, tp),
              with.DecodeStepLatency(c, kBatch, kKvLen, tp))
        << "tp=" << tp;
  }
}

TEST(TpCostModelAgreement, KvCapacityGrowsWithSharding) {
  CostModel cm(A100Sxm80GB());
  LlamaConfig c = Llama70B();
  // 70B f16 weights exceed one 80 GB GPU: capacity only exists under TP.
  EXPECT_EQ(cm.KvCacheCapacityTokens(c, 1), 0);
  std::int64_t prev = 0;
  for (int tp : {2, 4, 8}) {
    std::int64_t cap = cm.KvCacheCapacityTokens(c, tp);
    EXPECT_GT(cap, prev) << "tp=" << tp;
    prev = cap;
  }
  // Superlinear growth: doubling tp more than doubles free KV bytes because
  // the weight shard halves too.
  EXPECT_GT(cm.KvCacheCapacityTokens(c, 8),
            2 * cm.KvCacheCapacityTokens(c, 4));
}

CostModel RooflineOnly() {
  CostModel cm(A100Sxm80GB());
  auto& p = cm.mutable_params();
  p.kernel_launch_s = 0.0;
  p.attn_kernel_overhead_s = 0.0;
  p.layer_overhead_s = 0.0;
  p.step_overhead_s = 0.0;
  p.allreduce_overhead_s = 0.0;
  return cm;
}

/// The numeric-tier TP bench shape (bench_fig12_70b_tp.cc): big enough that
/// per-rank GEMMs dominate, divisible by every swept degree.
LlamaConfig BenchConfig() {
  return {.name = "tp-bench",
          .hidden_size = 256,
          .num_layers = 4,
          .num_heads = 8,
          .num_kv_heads = 8,
          .ffn_hidden = 1024,
          .vocab_size = 512};
}

TEST(TpCostModelAgreement, RooflinePredictsNearIdealComputeScaling) {
  // With every fixed overhead zeroed the model is a pure roofline and each
  // compute term — weight stream, GEMM FLOPs, KV gather, LM head bytes —
  // divides by tp. Only the ring all-reduce *payload* (a bandwidth term,
  // not an overhead constant) survives, so predicted decode speedup sits
  // just below ideal: within 10% of tp, never above it. This is the
  // analytic prediction the measured test below is bounded against.
  CostModel cm = RooflineOnly();
  for (const LlamaConfig& c : {Llama70B(), BenchConfig()}) {
    double t1 = cm.DecodeStepLatency(c, 8, 64, 1);
    for (int tp : {2, 4, 8}) {
      double speedup = t1 / cm.DecodeStepLatency(c, 8, 64, tp);
      SCOPED_TRACE(c.name + " tp=" + std::to_string(tp));
      EXPECT_LE(speedup, static_cast<double>(tp));
      EXPECT_GT(speedup, 0.90 * tp);
    }
  }
}

TEST(TpCostModelAgreement, LoraAddonKernelTimeDividesByTp) {
  // The SGMV addon follows the backbone's Megatron split: B column-sharded
  // at the Q/K/V/Gate/Up seams, A row-sharded at O/Down. Kernel IO and
  // FLOPs divide by tp; the per-pair pipelined launch overhead does not.
  // With that overhead zeroed the division must be exact — this is the
  // analytic half of the per-rank SGMV speedup the lora_tp bench measures.
  LlamaConfig c = Llama70B();
  std::vector<std::int32_t> segs = {8, 8, 8, 8};
  CostModel kernels_only(A100Sxm80GB());
  kernels_only.mutable_params().sgmv_pipelined_overhead_s = 0.0;
  double base = kernels_only.LoraLayerAddonLatency(c, segs, /*rank=*/16, 1);
  for (int tp : {2, 4, 8}) {
    EXPECT_DOUBLE_EQ(base / tp,
                     kernels_only.LoraLayerAddonLatency(c, segs, 16, tp))
        << "tp=" << tp;
  }
  // With the launch overheads back, the addon keeps a non-sharding floor of
  // seven pipelined pairs per layer — speedup must bend below ideal.
  CostModel cm(A100Sxm80GB());
  double t1 = cm.LoraLayerAddonLatency(c, segs, 16, 1);
  for (int tp : {2, 4, 8}) {
    double t = cm.LoraLayerAddonLatency(c, segs, 16, tp);
    EXPECT_GT(t, t1 / tp) << "tp=" << tp;
    EXPECT_GE(t, 7.0 * cm.params().sgmv_pipelined_overhead_s);
  }
}

TEST(TpCostModelAgreement, LoraDeltaAddsNoAllReduceTerm) {
  // The execution tier folds every rank's row-parallel LoRA delta into the
  // backbone's existing post-attention / post-MLP all-reduces (x·A_r·B
  // summed over ranks IS x·A·B), so serving adapters under TP costs zero
  // extra communication. Cross-validate that the model agrees: the LoRA
  // delta — step(lora) − step(backbone) at identical token shape — must be
  // independent of the all-reduce overhead at every degree (to fp rounding:
  // an actual extra per-layer all-reduce would move the delta by ~24 ms,
  // fifteen orders of magnitude above the tolerance).
  StepShape backbone;
  backbone.decode_kv_lens.assign(kBatch, kKvLen);
  StepShape lora = backbone;
  lora.lora_segment_rows = {8, 8, 8, 8};
  lora.lora_rank = 16;
  LlamaConfig c = Llama70B();
  CostModel with(A100Sxm80GB());
  CostModel without(A100Sxm80GB());
  without.mutable_params().allreduce_overhead_s = 0.0;
  for (int tp : {1, 2, 4, 8}) {
    backbone.tp_degree = tp;
    lora.tp_degree = tp;
    double delta_with = with.StepLatency(c, lora) - with.StepLatency(c, backbone);
    double delta_without =
        without.StepLatency(c, lora) - without.StepLatency(c, backbone);
    EXPECT_NEAR(delta_with, delta_without, 1e-12) << "tp=" << tp;
    EXPECT_GT(delta_with, 0.0) << "tp=" << tp;
    if (tp > 1) {
      // …while the all-reduce term itself stays visible in the LoRA step.
      EXPECT_LT(without.StepLatency(c, lora), with.StepLatency(c, lora))
          << "tp=" << tp;
    }
  }
  // And the delta is pure SGMV: with every overhead zeroed it divides by tp
  // exactly, layer count and all.
  CostModel roofline = RooflineOnly();
  roofline.mutable_params().sgmv_pipelined_overhead_s = 0.0;
  backbone.tp_degree = 1;
  lora.tp_degree = 1;
  double delta1 =
      roofline.StepLatency(c, lora) - roofline.StepLatency(c, backbone);
  for (int tp : {2, 4, 8}) {
    backbone.tp_degree = tp;
    lora.tp_degree = tp;
    double delta =
        roofline.StepLatency(c, lora) - roofline.StepLatency(c, backbone);
    EXPECT_NEAR(delta, delta1 / tp, 1e-12) << "tp=" << tp;
  }
}

/// Median-free best-of-N timing of `steps` decode Forward calls.
double TimeDecodeSteps(LlamaModel& model, const ModelBatch& batch,
                       std::span<const std::int32_t> ids, PagedKvCache& kv,
                       int steps, int reps) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    for (int s = 0; s < steps; ++s) model.Forward(batch, ids, kv);
    auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best / steps;
}

TEST(TpCostModelAgreement, MeasuredPerRankScalingTracksRoofline) {
#ifndef NDEBUG
  GTEST_SKIP() << "timing test: Release builds only";
#endif
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw < 4) GTEST_SKIP() << "needs >= 4 hardware threads, have " << hw;

  // Per-rank-worker configuration: degree tp runs on tp workers (one per
  // rank group), so each rank's compute shrinks by tp while its worker
  // count stays 1 — the measured analogue of the roofline's per-GPU terms.
  // The prediction (ideal tp, by the test above) is an upper envelope;
  // the band below allows scheduling noise, the unsharded embedding/LM-head
  // serial fraction, and shared caches, but fails if concurrency collapses
  // (ratio → 1/tp) or something double-counts work (ratio > 1.25).
  LlamaConfig c = BenchConfig();
  CostModel roofline = RooflineOnly();
  const int kSeqs = 8;
  const std::int64_t kHist = 64;

  auto measure = [&](int tp) {
    ComputeContext ctx({.num_threads = tp});
    LlamaModel model(c, 7, &ctx, tp, /*tp_concurrent=*/tp > 1);
    PagedKvCache kv(model.MakeKvConfig(/*num_pages=*/256, /*page_size=*/16));
    Pcg32 rng(11);
    std::vector<BatchEntry> specs;
    for (int s = 0; s < kSeqs; ++s) {
      SeqId id = kv.CreateSequence();
      EXPECT_TRUE(kv.Extend(id, kHist + 1));
      for (int l = 0; l < c.num_layers; ++l) {
        for (std::int64_t p = 0; p < kHist; ++p) {
          for (auto slot : {KvSlot::kKey, KvSlot::kValue}) {
            auto e = kv.Entry(id, l, p, slot);
            for (auto& v : e) {
              v = f16(static_cast<float>(rng.NextGaussian()) * 0.25f);
            }
          }
        }
      }
      specs.push_back({.seq = id, .lora = -1, .num_tokens = 1,
                       .pos_offset = kHist, .is_prefill = false});
    }
    ModelBatch batch = ModelBatch::Build(specs);
    std::vector<std::int32_t> ids(kSeqs, 3);
    return TimeDecodeSteps(model, batch, ids, kv, /*steps=*/4, /*reps=*/5);
  };

  double t1 = measure(1);
  double pred1 = roofline.DecodeStepLatency(c, kSeqs, kHist, 1);
  for (int tp : {2, 4}) {
    if (tp > hw) break;
    double t = measure(tp);
    double measured = t1 / t;
    double predicted =
        pred1 / roofline.DecodeStepLatency(c, kSeqs, kHist, tp);
    double ratio = measured / predicted;
    RecordProperty("measured_speedup_tp" + std::to_string(tp), measured);
    EXPECT_GT(ratio, 0.30) << "tp=" << tp << " measured " << measured
                           << "x vs predicted " << predicted << "x";
    EXPECT_LT(ratio, 1.25) << "tp=" << tp << " measured " << measured
                           << "x vs predicted " << predicted << "x";
  }
}

TEST(TpCostModelAgreement, MeasuredLoraTpScalingTracksRoofline) {
#ifndef NDEBUG
  GTEST_SKIP() << "timing test: Release builds only";
#endif
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw < 4) GTEST_SKIP() << "needs >= 4 hardware threads, have " << hw;

  // The LoRA-active analogue of the per-rank scaling test above: half the
  // decode batch runs adapter 0, half adapter 1, so every step pays the
  // sharded SGMV shrink/expand on all seven seams plus the backbone. The
  // roofline prediction threads the same lora_segment_rows through
  // StepShape; agreement here pins the measured execution tier to the
  // cost-model term the lora_tp CI gate freezes.
  LlamaConfig c = BenchConfig();
  CostModel roofline = RooflineOnly();
  const int kSeqs = 8;
  const std::int64_t kHist = 64;
  const int kRank = 16;

  auto measure = [&](int tp) {
    ComputeContext ctx({.num_threads = tp});
    LlamaModel model(c, 7, &ctx, tp, /*tp_concurrent=*/tp > 1);
    model.AddLora(0, kRank, /*seed=*/21);
    model.AddLora(1, kRank, /*seed=*/22);
    PagedKvCache kv(model.MakeKvConfig(/*num_pages=*/256, /*page_size=*/16));
    Pcg32 rng(11);
    std::vector<BatchEntry> specs;
    for (int s = 0; s < kSeqs; ++s) {
      SeqId id = kv.CreateSequence();
      EXPECT_TRUE(kv.Extend(id, kHist + 1));
      for (int l = 0; l < c.num_layers; ++l) {
        for (std::int64_t p = 0; p < kHist; ++p) {
          for (auto slot : {KvSlot::kKey, KvSlot::kValue}) {
            auto e = kv.Entry(id, l, p, slot);
            for (auto& v : e) {
              v = f16(static_cast<float>(rng.NextGaussian()) * 0.25f);
            }
          }
        }
      }
      specs.push_back({.seq = id, .lora = s < kSeqs / 2 ? 0 : 1,
                       .num_tokens = 1, .pos_offset = kHist,
                       .is_prefill = false});
    }
    ModelBatch batch = ModelBatch::Build(specs);
    std::vector<std::int32_t> ids(kSeqs, 3);
    return TimeDecodeSteps(model, batch, ids, kv, /*steps=*/4, /*reps=*/5);
  };

  auto predict = [&](int tp) {
    StepShape shape;
    shape.decode_kv_lens.assign(kSeqs, kHist);
    shape.lora_segment_rows = {kSeqs / 2, kSeqs / 2};
    shape.lora_rank = kRank;
    shape.tp_degree = tp;
    return roofline.StepLatency(c, shape);
  };

  double t1 = measure(1);
  double pred1 = predict(1);
  for (int tp : {2, 4}) {
    if (tp > hw) break;
    double measured = t1 / measure(tp);
    double predicted = pred1 / predict(tp);
    double ratio = measured / predicted;
    RecordProperty("lora_measured_speedup_tp" + std::to_string(tp), measured);
    EXPECT_GT(ratio, 0.30) << "tp=" << tp << " measured " << measured
                           << "x vs predicted " << predicted << "x";
    EXPECT_LT(ratio, 1.25) << "tp=" << tp << " measured " << measured
                           << "x vs predicted " << predicted << "x";
  }
}

}  // namespace
}  // namespace punica
